// The external test package breaks the import cycle bench_test ←
// internal/experiments ← confmask (the incremental benchmark drives the
// public ImportCheckpoint/Anonymize API).
package confmask_test

// This file provides one testing.B benchmark per table and figure of the
// paper's evaluation (§7), plus micro-benchmarks for the substrates the
// pipeline is built on.
//
// Each figure benchmark regenerates that figure's data. To keep a default
// `go test -bench=.` run in minutes rather than hours, the per-iteration
// figure benchmarks run on the small-network catalog (Enterprise,
// University, Backbone, FatTree04); the full eight-network reproduction —
// the numbers recorded in EXPERIMENTS.md — is produced by
// `go run ./cmd/confmask-bench`.

import (
	"math/rand"
	"testing"

	"confmask/internal/anonymize"
	"confmask/internal/config"
	"confmask/internal/experiments"
	"confmask/internal/kdegree"
	"confmask/internal/netgen"
	"confmask/internal/sim"
)

func smallRunner() *experiments.Runner {
	r := experiments.NewRunner(1)
	r.Nets = netgen.SmallCatalog()
	return r
}

func benchErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable2 regenerates Table 2 (network inventory) over the full
// catalog.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(1)
		_, err := r.Table2()
		benchErr(b, err)
	}
}

// BenchmarkFigure5 regenerates the route anonymity measurement.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure5()
		benchErr(b, err)
	}
}

// BenchmarkFigure6 regenerates the topology anonymity measurement.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure6()
		benchErr(b, err)
	}
}

// BenchmarkFigure7 regenerates the clustering coefficient comparison.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure7()
		benchErr(b, err)
	}
}

// BenchmarkFigure8 regenerates the exact path preservation comparison
// against NetHide.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure8()
		benchErr(b, err)
	}
}

// BenchmarkFigure9 regenerates the specification preservation comparison.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure9()
		benchErr(b, err)
	}
}

// BenchmarkFigure10 regenerates the strawman comparison (N_r and U_C).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure10()
		benchErr(b, err)
	}
}

// BenchmarkFigure11 regenerates the k_R → N_r sweep (and Figure 13's U_C
// readings, which come from the same runs).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure11()
		benchErr(b, err)
	}
}

// BenchmarkFigure12 regenerates the k_H → N_r sweep (and Figure 14's U_C
// readings).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure12()
		benchErr(b, err)
	}
}

// BenchmarkFigure15 regenerates the privacy–utility correlation.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure15()
		benchErr(b, err)
	}
}

// BenchmarkFigure16 regenerates the running-time comparison.
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := smallRunner().Figure16()
		benchErr(b, err)
	}
}

// BenchmarkTable3 regenerates the injected-line breakdown (University
// network; the full grid is produced by cmd/confmask-bench).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := smallRunner()
		_, err := r.Table3()
		benchErr(b, err)
	}
}

// BenchmarkAnonymize measures the end-to-end pipeline per network at the
// default parameters (the quantity behind Fig. 16's ConfMask bars).
func BenchmarkAnonymize(b *testing.B) {
	for _, spec := range netgen.Catalog() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			cfg, err := spec.Build()
			benchErr(b, err)
			opts := anonymize.DefaultOptions()
			opts.Seed = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, err := anonymize.Run(cfg, opts)
				benchErr(b, err)
			}
		})
	}
}

// BenchmarkSimulate measures the control-plane simulator (the Batfish
// substitute) per network.
func BenchmarkSimulate(b *testing.B) {
	for _, spec := range netgen.Catalog() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			cfg, err := spec.Build()
			benchErr(b, err)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := sim.Simulate(cfg)
				benchErr(b, err)
			}
		})
	}
}

// parVariants are the worker-pool settings the parallelism benchmarks
// compare: 1 is the plain sequential engine, 0 lets the pool size follow
// GOMAXPROCS, and 4 pins a fixed fan-out so numbers are comparable across
// machines.
var parVariants = []struct {
	name    string
	workers int
}{
	{"seq", 1},
	{"par4", 4},
	{"gomaxprocs", 0},
}

// parNetworks are the two networks the parallelism comparison runs on:
// Backbone is the small BGP+OSPF mix, FatTree08 the largest pure-OSPF
// network and the pipeline's dominant cost in Figure 16.
func parNetworks(b *testing.B) []struct {
	name string
	cfg  *config.Network
} {
	b.Helper()
	backbone, err := netgen.Backbone()
	benchErr(b, err)
	fatTree, err := netgen.FatTree08()
	benchErr(b, err)
	return []struct {
		name string
		cfg  *config.Network
	}{
		{"Backbone", backbone},
		{"FatTree08", fatTree},
	}
}

// BenchmarkSimulateParallelism records sequential-vs-parallel wall clock
// for one full control-plane simulation. Output is byte-identical across
// variants (TestParallelismByteIdentical); only the wall clock moves.
func BenchmarkSimulateParallelism(b *testing.B) {
	for _, net := range parNetworks(b) {
		for _, v := range parVariants {
			b.Run(net.name+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := sim.SimulateOpts(net.cfg, sim.Options{Parallelism: v.workers})
					benchErr(b, err)
				}
			})
		}
	}
}

// BenchmarkSimulateIncremental measures the rebuild-avoiding loop shape
// Algorithm 1 now uses: one Build, then per-iteration InvalidateFilters +
// SimulateNet reusing the cached filter-independent core. Compare against
// BenchmarkSimulateParallelism/seq, which pays the full Build+SPF cost
// every round — the ratio is the per-iteration saving of the incremental
// engine.
func BenchmarkSimulateIncremental(b *testing.B) {
	for _, net := range parNetworks(b) {
		b.Run(net.name, func(b *testing.B) {
			view, err := sim.Build(net.cfg)
			benchErr(b, err)
			sim.SimulateNet(view) // warm the cached core, as iteration 1 does
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view.InvalidateFilters()
				sim.SimulateNet(view)
			}
		})
	}
}

// BenchmarkAnonymizeParallelism records the end-to-end pipeline wall
// clock at each worker-pool setting on the two reference networks.
func BenchmarkAnonymizeParallelism(b *testing.B) {
	for _, net := range parNetworks(b) {
		for _, v := range parVariants {
			b.Run(net.name+"/"+v.name, func(b *testing.B) {
				opts := anonymize.DefaultOptions()
				opts.Seed = 1
				opts.Parallelism = v.workers
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, _, err := anonymize.Run(net.cfg, opts)
					benchErr(b, err)
				}
			})
		}
	}
}

// BenchmarkExtractDataPlane measures full host-to-host path extraction
// with a cold per-destination cache: each iteration re-simulates (outside
// the timer) so the engine cannot answer from the previous iteration's
// memo. The naive-walker baseline and the dirty-round variant live in
// internal/sim's benchmark of the same name, which can reach the
// unexported reference walker.
func BenchmarkExtractDataPlane(b *testing.B) {
	for _, net := range parNetworks(b) {
		hosts := net.cfg.Hosts()
		for _, v := range parVariants {
			b.Run(net.name+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					snap, err := sim.SimulateOpts(net.cfg, sim.Options{Parallelism: v.workers})
					benchErr(b, err)
					b.StartTimer()
					snap.DataPlaneFor(hosts)
				}
			})
		}
	}
}

// BenchmarkKDegree measures the Liu–Terzi degree anonymization step alone.
func BenchmarkKDegree(b *testing.B) {
	cfg, err := netgen.USCarrier()
	benchErr(b, err)
	snap, err := sim.Simulate(cfg)
	benchErr(b, err)
	topo := snap.Net.Topology()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := topo.RouterSubgraph()
		_, err := kdegree.Anonymize(g, 6, rand.New(rand.NewSource(1)))
		benchErr(b, err)
	}
}

// BenchmarkParseRender measures the configuration codec round trip.
func BenchmarkParseRender(b *testing.B) {
	cfg, err := netgen.Enterprise()
	benchErr(b, err)
	texts := cfg.Render()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := config.ParseNetwork(texts)
		benchErr(b, err)
		net.Render()
	}
}

// BenchmarkAblationNoRouteAnonymity isolates Algorithm 1 (route
// equivalence) from Algorithm 2 — the ablation DESIGN.md calls out for the
// cost split between the two route stages.
func BenchmarkAblationNoRouteAnonymity(b *testing.B) {
	cfg, err := netgen.Bics()
	benchErr(b, err)
	opts := anonymize.DefaultOptions()
	opts.Seed = 1
	opts.SkipRouteAnonymity = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := anonymize.Run(cfg, opts)
		benchErr(b, err)
	}
}

// BenchmarkAblationStrawman1 measures the fast-but-leaky baseline on the
// same network for comparison with BenchmarkAblationNoRouteAnonymity.
func BenchmarkAblationStrawman1(b *testing.B) {
	cfg, err := netgen.Bics()
	benchErr(b, err)
	opts := anonymize.DefaultOptions()
	opts.Seed = 1
	opts.Strategy = anonymize.Strawman1
	opts.SkipRouteAnonymity = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := anonymize.Run(cfg, opts)
		benchErr(b, err)
	}
}
