// Command confmask-bench regenerates every table and figure of the
// ConfMask paper's evaluation (§7) on the synthetic evaluation networks
// and prints them in the same shape the paper reports.
//
// Usage:
//
//	confmask-bench [-seed N] [-full] [-only table2,fig5,...]
//
// -full includes the slowest strawman-2 runs (Bics, USCarrier); without it
// those rows print as "skipped". The "dataplane" experiment additionally
// writes its measurements as JSON (-dataplane-out, default
// BENCH_dataplane.json), the "query" experiment — the
// attacker-vs-verifier benchmark — writes -query-out (default
// BENCH_query.json), and the "incremental" experiment — full run vs
// checkpoint-seeded resubmission of a one-router edit — writes
// -incremental-out (default BENCH_incremental.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"confmask/internal/experiments"
	"confmask/internal/version"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for all anonymization runs")
	full := flag.Bool("full", false, "include the slowest strawman-2 runs")
	only := flag.String("only", "", "comma-separated experiment list (default: all)")
	parallelism := flag.Int("parallelism", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	dataplaneOut := flag.String("dataplane-out", "BENCH_dataplane.json", "file the dataplane experiment writes its measurements to (empty = don't write)")
	queryOut := flag.String("query-out", "BENCH_query.json", "file the query experiment writes its measurements to (empty = don't write)")
	incrementalOut := flag.String("incremental-out", "BENCH_incremental.json", "file the incremental experiment writes its measurements to (empty = don't write)")
	scaleOut := flag.String("scale-out", "BENCH_scale.json", "file the scale experiment writes its measurements to (empty = don't write)")
	scaleSmoke := flag.Bool("scale-smoke", false, "restrict the scale experiment to FatTree08 (CI smoke budget)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("confmask-bench", version.String())
		return
	}

	r := experiments.NewRunner(*seed)
	r.Full = *full
	r.Parallelism = *parallelism

	wanted := map[string]bool{}
	if *only != "" {
		for _, e := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}
	want := func(name string) bool { return len(wanted) == 0 || wanted[name] }

	start := time.Now()
	if want("table2") {
		must(printTable2(r))
	}
	if want("fig5") {
		must(printFig5(r))
	}
	if want("fig6") {
		must(printFig6(r))
	}
	if want("fig7") {
		must(printFig7(r))
	}
	if want("fig8") {
		must(printFig8(r))
	}
	if want("fig9") {
		must(printFig9(r))
	}
	if want("fig10") {
		must(printFig10(r))
	}
	if want("fig11") || want("fig13") {
		must(printFig1113(r))
	}
	if want("fig12") || want("fig14") {
		must(printFig1214(r))
	}
	if want("fig15") {
		must(printFig15(r))
	}
	if want("fig16") {
		must(printFig16(r))
	}
	if want("table3") {
		must(printTable3(r))
	}
	if want("security") {
		must(printSecurity(r))
	}
	if want("dataplane") {
		must(printDataPlane(r, *dataplaneOut))
	}
	if want("query") {
		must(printQuery(r, *queryOut))
	}
	if want("incremental") {
		must(printIncremental(r, *incrementalOut))
	}
	if want("scale") && (len(wanted) > 0 || *scaleSmoke) {
		// The full scale experiment takes minutes (it now climbs through
		// the thousand-router S3/S4 networks), so a default all-experiments
		// run only includes it in smoke form; ask for `-only scale` to
		// measure the large networks.
		must(printScale(r, *scaleOut, *scaleSmoke))
	}
	fmt.Printf("\ntotal harness time: %v\n", time.Since(start).Round(time.Millisecond))
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "confmask-bench:", err)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func printTable2(r *experiments.Runner) error {
	rows, err := r.Table2()
	if err != nil {
		return err
	}
	header("Table 2: evaluation networks")
	fmt.Printf("%-3s %-11s %4s %4s %4s %13s %s\n", "ID", "Network", "|R|", "|H|", "|E|", "#config lines", "Type")
	for _, row := range rows {
		fmt.Printf("%-3s %-11s %4d %4d %4d %13d %s\n", row.ID, row.Name, row.Routers, row.Hosts, row.Links, row.ConfigLines, row.Type)
	}
	return nil
}

func printFig5(r *experiments.Runner) error {
	rows, err := r.Figure5()
	if err != nil {
		return err
	}
	header("Figure 5: route anonymity N_r between edge routers (k_R=6, k_H=2)")
	fmt.Printf("%-11s %9s %9s %9s %9s\n", "Network", "orig-min", "orig-avg", "anon-min", "anon-avg")
	sum := 0.0
	for _, row := range rows {
		fmt.Printf("%-11s %9d %9.2f %9d %9.2f\n", row.Net, row.OrigMin, row.OrigAvg, row.AnonMin, row.AnonAvg)
		sum += row.AnonAvg
	}
	fmt.Printf("average anonymized N_r: %.2f (paper: ~1.93)\n", sum/float64(len(rows)))
	return nil
}

func printFig6(r *experiments.Runner) error {
	rows, err := r.Figure6()
	if err != nil {
		return err
	}
	header("Figure 6: min #routers sharing a degree (k_R=6, k_H=2)")
	fmt.Printf("%-11s %6s %6s %6s\n", "Network", "orig", "anon", "k_R")
	for _, row := range rows {
		ok := ""
		if row.Anon < row.KR {
			ok = "  VIOLATION"
		}
		fmt.Printf("%-11s %6d %6d %6d%s\n", row.Net, row.Orig, row.Anon, row.KR, ok)
	}
	return nil
}

func printFig7(r *experiments.Runner) error {
	rows, err := r.Figure7()
	if err != nil {
		return err
	}
	header("Figure 7: clustering coefficient (k_R=6, k_H=2)")
	fmt.Printf("%-11s %8s %8s %8s\n", "Network", "orig", "anon", "|Δ|")
	sum := 0.0
	for _, row := range rows {
		d := row.Anon - row.Orig
		if d < 0 {
			d = -d
		}
		sum += d
		fmt.Printf("%-11s %8.3f %8.3f %8.3f\n", row.Net, row.Orig, row.Anon, d)
	}
	fmt.Printf("average |Δ|: %.3f (paper: ~0.075)\n", sum/float64(len(rows)))
	return nil
}

func printFig8(r *experiments.Runner) error {
	rows, err := r.Figure8()
	if err != nil {
		return err
	}
	header("Figure 8: proportion of exactly kept host-to-host paths")
	fmt.Printf("%-11s %9s %9s\n", "Network", "ConfMask", "NetHide")
	for _, row := range rows {
		fmt.Printf("%-11s %8.1f%% %8.1f%%\n", row.Net, 100*row.ConfMask, 100*row.NetHide)
	}
	fmt.Println("(paper: ConfMask 100% by SFE; NetHide <30%, avg ~15%)")
	return nil
}

func printFig9(r *experiments.Runner) error {
	rows, err := r.Figure9()
	if err != nil {
		return err
	}
	header("Figure 9: preserved network specifications (k_R=6, k_H=4)")
	fmt.Printf("%-11s %8s %8s %9s %9s %9s\n", "Network", "kept-CM", "kept-NH", "intro-CM", "intro-NH", "fake-CM")
	var kc, kn, ic, in, fc float64
	for _, row := range rows {
		fmt.Printf("%-11s %7.1f%% %7.1f%% %8.2fx %8.2fx %8.1f%%\n",
			row.Net, 100*row.KeptCM, 100*row.KeptNH, row.IntroCM, row.IntroNH, 100*row.FakeFracCM)
		kc += row.KeptCM
		kn += row.KeptNH
		ic += row.IntroCM
		in += row.IntroNH
		fc += row.FakeFracCM
	}
	n := float64(len(rows))
	_ = in
	fmt.Printf("averages: kept CM %.1f%% vs NH %.1f%% (paper 91.3%% vs 65.2%%); CM introduces %.2fx the original specs (paper 3.55x); fake %.1f%% (paper 96.9%%)\n",
		100*kc/n, 100*kn/n, ic/n, 100*fc/n)
	return nil
}

func printFig10(r *experiments.Runner) error {
	rows, err := r.Figure10()
	if err != nil {
		return err
	}
	header("Figure 10: anonymity and utility vs strawmen (k_R=6, k_H=2)")
	fmt.Printf("%-11s %8s %8s %8s %8s %8s %8s\n", "Network", "Nr-CM", "Nr-S1", "Nr-S2", "UC-CM", "UC-S1", "UC-S2")
	for _, row := range rows {
		s2nr, s2uc := fmt.Sprintf("%8.2f", row.NrS2), fmt.Sprintf("%8.3f", row.UCS2)
		if row.Skipped {
			s2nr, s2uc = " skipped", " skipped"
		}
		fmt.Printf("%-11s %8.2f %8.2f %s %8.3f %8.3f %s\n", row.Net, row.NrCM, row.NrS1, s2nr, row.UCCM, row.UCS1, s2uc)
	}
	fmt.Println("(paper: avg N_r 1.98/1.83/1.81; S1 injects ~21% more lines, S2 ~13% fewer)")
	return nil
}

func printFig1113(r *experiments.Runner) error {
	rows, err := r.Figure11()
	if err != nil {
		return err
	}
	header("Figures 11 & 13: impact of k_R on N_r and U_C (k_H=2)")
	fmt.Printf("%-11s %4s %8s %8s\n", "Network", "k_R", "N_r", "U_C")
	for _, row := range rows {
		fmt.Printf("%-11s %4d %8.2f %8.3f\n", row.Net, row.KR, row.Nr, row.UC)
	}
	return nil
}

func printFig1214(r *experiments.Runner) error {
	rows, err := r.Figure12()
	if err != nil {
		return err
	}
	header("Figures 12 & 14: impact of k_H on N_r and U_C (k_R=6)")
	fmt.Printf("%-11s %4s %8s %8s\n", "Network", "k_H", "N_r", "U_C")
	for _, row := range rows {
		fmt.Printf("%-11s %4d %8.2f %8.3f\n", row.Net, row.KH, row.Nr, row.UC)
	}
	return nil
}

func printFig15(r *experiments.Runner) error {
	res, err := r.Figure15()
	if err != nil {
		return err
	}
	header("Figure 15: route anonymity vs configuration utility")
	fmt.Printf("%d sweep points; Pearson r = %.2f (paper: -0.36)\n", len(res.Points), res.Pearson)
	return nil
}

func printFig16(r *experiments.Runner) error {
	rows, err := r.Figure16()
	if err != nil {
		return err
	}
	header("Figure 16: running time comparison (k_R=6, k_H=2)")
	fmt.Printf("%-11s %12s %12s %12s %18s\n", "Network", "strawman1", "ConfMask", "strawman2", "iters S1/CM/S2")
	for _, row := range rows {
		s2 := row.S2.Round(time.Millisecond).String()
		iters := fmt.Sprintf("%d/%d/%d", row.ItersS1, row.ItersCM, row.ItersS2)
		if row.Skipped {
			s2 = "skipped"
			iters = fmt.Sprintf("%d/%d/-", row.ItersS1, row.ItersCM)
		}
		fmt.Printf("%-11s %12v %12v %12s %18s\n", row.Net,
			row.S1.Round(time.Millisecond), row.CM.Round(time.Millisecond), s2, iters)
	}
	fmt.Println("(paper: S1 fastest, S2 8-100x slower; with Batfish the iteration count IS the cost)")
	return nil
}

func printSecurity(r *experiments.Runner) error {
	rows, err := r.SecurityAnalysis()
	if err != nil {
		return err
	}
	header("Security analysis (extension): de-anonymization attacks vs outputs")
	fmt.Printf("%-11s %10s %10s %8s %8s %10s\n", "Network", "deny-CM", "deny-S1", "SPT-TP", "unconf", "max-reid")
	for _, row := range rows {
		fmt.Printf("%-11s %10d %10d %8d %8d %9.3f\n",
			row.Net, row.DenyPatternCM, row.DenyPatternS1, row.SPTTruePos, row.Unconfigured, row.MaxReidentConfidence)
	}
	fmt.Println("(expected: deny-S1 >> deny-CM; SPT-TP = 0; unconf = 0; max-reid ≤ 1/k_R)")
	return nil
}

func printDataPlane(r *experiments.Runner, out string) error {
	rows, err := r.DataPlaneBench()
	if err != nil {
		return err
	}
	header("Data-plane extraction engine (full seq/par + one dirty fixing round)")
	fmt.Printf("%-11s %5s %6s %9s %9s %11s %11s %6s\n", "Network", "|H|", "pairs", "seq-ms", "par-ms", "full-rnd-ms", "dirty-rnd-ms", "dirty")
	for _, row := range rows {
		fmt.Printf("%-11s %5d %6d %9.2f %9.2f %11.2f %11.2f %6d\n",
			row.Net, row.Hosts, row.Pairs, row.SeqMS, row.ParMS, row.FullRoundMS, row.DirtyRoundMS, row.DirtyDests)
	}
	if out == "" {
		return nil
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func printQuery(r *experiments.Runner, out string) error {
	rows, err := r.QueryBench(nil, 0)
	if err != nil {
		return err
	}
	header("Attacker vs verifier: query utility vs re-identification leakage")
	fmt.Printf("%-11s %4s %4s %5s %7s %8s %10s %10s %11s %10s\n",
		"Network", "k_R", "k_H", "p", "queries", "utility", "true-max", "unmatched", "shared-mean", "shared-max")
	for _, row := range rows {
		fmt.Printf("%-11s %4d %4d %5.2f %7d %7.1f%% %10.4f %10d %11.4f %10.4f\n",
			row.Net, row.KR, row.KH, row.NoiseP, row.Queries,
			100*row.Utility, row.ReidentTrueMax, row.ReidentUnmatched,
			row.ReidentSharedMean, row.ReidentSharedMax)
	}
	fmt.Println("(expected: shared-max ≤ 1/k_R at every setting; utility high — SFE preserves real forwarding)")
	if out == "" {
		return nil
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func printIncremental(r *experiments.Runner, out string) error {
	rows, err := r.IncrementalBench()
	if err != nil {
		return err
	}
	header("Incremental resubmission: full run vs checkpoint-seeded one-router edit")
	fmt.Printf("%-11s %5s %-12s %10s %10s %9s %-10s %s\n",
		"Network", "|D|", "edited", "full-ms", "incr-ms", "speedup", "reused", "identical")
	for _, row := range rows {
		fmt.Printf("%-11s %5d %-12s %10.1f %10.1f %8.1fx %-10s %v\n",
			row.Net, row.Devices, row.EditedDevice, row.FullMS, row.IncrementalMS,
			row.Speedup, row.ReusedStage, row.ByteIdentical)
	}
	fmt.Println("(expected: ≥10x — the resumed run skips preprocess/topology/equivalence/anonymity and only re-renders)")
	if out == "" {
		return nil
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func printTable3(r *experiments.Runner) error {
	rows, err := r.Table3()
	if err != nil {
		return err
	}
	header("Table 3: injected configuration lines by category")
	fmt.Printf("%-11s %4s %4s %10s %8s %10s %8s\n", "Network", "k_R", "k_H", "#protocol", "#filter", "#interface", "#total")
	for _, row := range rows {
		fmt.Printf("%-11s %4d %4d %10d %8d %10d %8d\n",
			row.Net, row.KR, row.KH, row.Protocol, row.Filter, row.Interface, row.TotalLines)
	}
	return nil
}

func printScale(r *experiments.Runner, out string, smoke bool) error {
	rows, err := r.ScaleBench(smoke)
	if err != nil {
		return err
	}
	title := "Thousand-router scale: digest vs full extraction, pipeline stages"
	if smoke {
		title += " (smoke subset)"
	}
	header(title)
	fmt.Printf("%-17s %7s %5s %6s %10s %9s %9s %8s %9s %9s %11s %5s\n",
		"Network", "routers", "|H|", "links", "simulate", "digest", "full", "speedup",
		"dig-heap", "full-heap", "pipeline", "iters")
	for _, row := range rows {
		full, fullHeap, speedup := fmt.Sprintf("%.0fms", row.ExtractFullMS),
			fmt.Sprintf("%.1fM", float64(row.PeakHeapFullBytes)/(1<<20)), "-"
		if row.ExtractFullSkipped {
			full, fullHeap = "skip", "skip"
		} else if row.ExtractDigestMS > 0 {
			speedup = fmt.Sprintf("%.1fx", row.ExtractFullMS/row.ExtractDigestMS)
		}
		fmt.Printf("%-17s %7d %5d %6d %8.0fms %7.0fms %9s %8s %8.1fM %9s %9.0fms %5d\n",
			row.Net, row.Routers, row.Hosts, row.Links,
			row.SimulateMS, row.ExtractDigestMS, full, speedup,
			float64(row.PeakHeapDigestBytes)/(1<<20), fullHeap,
			row.PipelineTotalMS, row.EquivIterations)
	}
	fmt.Println("(expected: digest extraction ≥2x faster and several-times-lower peak heap than full at FatTree16;")
	fmt.Println(" digest working set is bounded by workers × one destination's memos, the output by 16B/pair;")
	fmt.Println(" 'skip' marks the fully materialized strawman withheld above the host cap — see extract_full_skipped)")
	if out == "" {
		return nil
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
