package main

// Client mode: talk to a running confmaskd daemon. The payload shapes
// mirror internal/service (Request, Status, Event) but are redeclared
// here the way an external API consumer would write them, so the CLI
// only depends on the wire format.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"confmask"
)

type jobStatus struct {
	ID        string           `json:"id"`
	State     string           `json:"state"`
	Stage     string           `json:"stage"`
	Iteration int              `json:"iteration"`
	Error     string           `json:"error"`
	Report    *confmask.Report `json:"report"`
}

type jobEvent struct {
	Seq       int       `json:"seq"`
	Time      time.Time `json:"time"`
	State     string    `json:"state"`
	Stage     string    `json:"stage"`
	Iteration int       `json:"iteration"`
	Message   string    `json:"message"`
	Error     string    `json:"error"`
}

type jobResult struct {
	ID      string            `json:"id"`
	Configs map[string]string `json:"configs"`
	Report  *confmask.Report  `json:"report"`
}

type apiError struct {
	Error string `json:"error"`
}

// Client-side retry policy. Every confmask API call is idempotent against
// the daemon — submissions dedup by content hash, status/result are reads,
// cancel converges — so transient failures (connection refused, 5xx) and
// queue-full 429s are retried with capped exponential backoff. A 429's
// Retry-After header, when present, overrides the computed backoff.
var (
	retryAttempts = 4
	retryBase     = 250 * time.Millisecond
	retryCap      = 5 * time.Second
)

// parseRetryAfter parses a Retry-After header value per RFC 9110 §10.2.3:
// either a non-negative integer of seconds or an HTTP-date (any of the
// three formats http.ParseTime accepts). Garbage and dates in the past
// parse to 0, meaning "no usable hint" — the caller falls back to its
// computed backoff.
func parseRetryAfter(s string) time.Duration {
	if s == "" {
		return 0
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 0 {
			return 0
		}
		return time.Duration(n) * time.Second
	}
	if t, err := http.ParseTime(s); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// daemonHint rewraps a connection-refused failure with an actionable
// message — by far the most common client-mode error is that no daemon
// is listening where -server points.
func daemonHint(server string, err error) error {
	if err == nil || !errors.Is(err, syscall.ECONNREFUSED) {
		return err
	}
	return fmt.Errorf("%v\nis confmaskd running at %s? start one with:\n  confmaskd -addr :8619 -data-dir ~/.confmask\nor point -server at a running daemon", err, server)
}

// retryable classifies one attempt's failure by status code: 0 (no
// response: connection refused, reset, timeout) and 429/5xx responses are
// worth retrying, other HTTP errors are not.
func retryable(code int) bool {
	return code == 0 || code == http.StatusTooManyRequests || code >= 500
}

// callJSON performs one API request with retries and decodes the response
// into out, turning non-2xx responses into errors carrying the server's
// message.
func callJSON(method, url string, body, out any) error {
	return callJSONHeader(method, url, nil, body, out)
}

// callJSONHeader is callJSON with extra request headers (e.g. X-Tenant).
func callJSONHeader(method, url string, hdr map[string]string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	backoff := retryBase
	var lastErr error
	for attempt := 1; ; attempt++ {
		code, retryAfter, err := callJSONOnce(method, url, hdr, buf, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= retryAttempts || !retryable(code) {
			return lastErr
		}
		delay := backoff
		if retryAfter > 0 {
			delay = retryAfter
		}
		fmt.Fprintf(os.Stderr, "request failed (%v); retrying in %v (attempt %d/%d)\n", err, delay, attempt, retryAttempts)
		time.Sleep(delay)
		backoff *= 2
		if backoff > retryCap {
			backoff = retryCap
		}
	}
}

// callJSONOnce performs a single attempt. It returns the HTTP status code
// (0 when the request never got a response) and, for 429s, the parsed
// Retry-After duration.
func callJSONOnce(method, url string, hdr map[string]string, body []byte, out any) (code int, retryAfter time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		var ae apiError
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return resp.StatusCode, retryAfter, fmt.Errorf("%s: %s", resp.Status, ae.Error)
		}
		return resp.StatusCode, retryAfter, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return resp.StatusCode, 0, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.StatusCode, 0, err
	}
	return resp.StatusCode, 0, nil
}

// terminalState reports whether a job state string means the daemon will
// emit no further events for the job in this process (requeued included:
// the job only moves again after a daemon restart).
func terminalState(s string) bool {
	switch s {
	case "done", "failed", "cancelled", "requeued":
		return true
	}
	return false
}

// streamEvents follows a job's NDJSON event stream, printing one line per
// event, and returns the terminal state. The stream rides the client retry
// policy: a transient disconnect mid-follow — the daemon restarting, a
// proxy dropping the connection, a graceful shutdown closing follower
// streams — reconnects with the last-seen ?after=<seq> cursor instead of
// aborting, so no event is lost or printed twice. Progress resets the
// attempt budget; only consecutive failures without a new event give up.
func streamEvents(server, id string, after int) (string, error) {
	state := ""
	backoff := retryBase
	attempts := 0
	for {
		st, last, code, retryAfter, err := streamEventsOnce(server, id, after)
		if st != "" {
			state = st
		}
		if last > after {
			after = last
			attempts, backoff = 0, retryBase
		}
		if err == nil && terminalState(state) {
			return state, nil
		}
		if err == nil {
			// Clean end of stream before a terminal event: the daemon shut
			// down gracefully mid-follow. Same recovery as a dropped
			// connection.
			err = fmt.Errorf("event stream ended before job %s finished", id)
			code = 0
		}
		attempts++
		if attempts >= retryAttempts || !retryable(code) {
			return state, err
		}
		delay := backoff
		if retryAfter > 0 {
			delay = retryAfter
		}
		fmt.Fprintf(os.Stderr, "event stream interrupted (%v); reconnecting from seq %d in %v (attempt %d/%d)\n",
			err, after, delay, attempts, retryAttempts)
		time.Sleep(delay)
		backoff *= 2
		if backoff > retryCap {
			backoff = retryCap
		}
	}
}

// streamEventsOnce makes one connection to the event stream and consumes it
// until it ends. It returns the last state and event seq seen, the HTTP
// status code of a non-200 response (0 for connection-level failures), and
// the parsed Retry-After duration when the daemon sent one.
func streamEventsOnce(server, id string, after int) (state string, last, code int, retryAfter time.Duration, err error) {
	url := fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", server, id, after)
	resp, err := http.Get(url)
	if err != nil {
		return "", after, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return "", after, resp.StatusCode, retryAfter, fmt.Errorf("%s: %s", resp.Status, ae.Error)
		}
		return "", after, resp.StatusCode, retryAfter, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	last = after
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e jobEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			// A torn line from a dropped connection; everything before it
			// printed fine, so reconnect from the last whole event.
			return state, last, 0, 0, fmt.Errorf("bad event line: %w", err)
		}
		state = e.State
		if e.Seq > last {
			last = e.Seq
		}
		switch {
		case e.Stage != "" && e.Iteration > 0:
			fmt.Printf("  [%s] %s iteration %d\n", e.State, e.Stage, e.Iteration)
		case e.Stage != "":
			fmt.Printf("  [%s] %s\n", e.State, e.Stage)
		case e.Error != "":
			fmt.Printf("  [%s] error: %s\n", e.State, e.Error)
		default:
			fmt.Printf("  [%s] %s\n", e.State, e.Message)
		}
	}
	return state, last, 0, 0, sc.Err()
}

// cmdSubmit submits a configuration bundle to a confmaskd daemon and,
// with -wait, follows progress and fetches the result.
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8619", "confmaskd base URL")
	in := fs.String("in", "", "input configuration directory")
	net := fs.String("net", "", "submit a built-in example network instead of -in")
	kr := fs.Int("kr", 6, "topology anonymity parameter k_R")
	kh := fs.Int("kh", 2, "route anonymity parameter k_H")
	p := fs.Float64("p", 0.1, "route anonymity noise probability")
	seed := fs.Int64("seed", 0, "random seed")
	strategy := fs.String("strategy", "confmask", "route equivalence strategy")
	fakeRouters := fs.Int("fake-routers", 0, "add N fake routers (scale obfuscation)")
	parallelism := fs.Int("parallelism", 0, "simulation worker pool size on the daemon (0 = daemon default)")
	base := fs.String("base", "", `incremental resubmission: base job ID, or "auto" to discover one by config overlap`)
	tenant := fs.String("tenant", "", "tenant name sent as X-Tenant (empty = the daemon's default tenant)")
	wait := fs.Bool("wait", false, "stream progress and wait for the job to finish")
	out := fs.String("out", "", "with -wait: write the anonymized configs to this directory")
	verify := fs.Bool("verify", false, "with -wait: locally verify the result against the input")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var configs map[string]string
	var err error
	switch {
	case *in != "" && *net != "":
		return fmt.Errorf("submit takes -in or -net, not both")
	case *in != "":
		configs, err = confmask.ReadConfigDir(*in)
	case *net != "":
		configs, err = confmask.GenerateExample(*net)
	default:
		return fmt.Errorf("submit requires -in or -net")
	}
	if err != nil {
		return err
	}
	req := map[string]any{
		"configs": configs,
		"options": confmask.Options{KR: *kr, KH: *kh, NoiseP: *p, Seed: *seed, Strategy: *strategy, FakeRouters: *fakeRouters, Parallelism: *parallelism},
	}
	if *base != "" {
		req["base_job"] = *base
	}
	var hdr map[string]string
	if *tenant != "" {
		hdr = map[string]string{"X-Tenant": *tenant}
	}
	var st jobStatus
	if err := callJSONHeader("POST", *server+"/v1/jobs", hdr, req, &st); err != nil {
		return daemonHint(*server, err)
	}
	fmt.Printf("job %s %s (%d devices)\n", st.ID, st.State, len(configs))
	if !*wait {
		fmt.Printf("follow with: confmask status -server %s -id %s -events\n", *server, st.ID)
		return nil
	}
	state, err := streamEvents(*server, st.ID, 0)
	if err != nil {
		return err
	}
	if state != "done" {
		if err := callJSON("GET", *server+"/v1/jobs/"+st.ID, nil, &st); err != nil {
			return err
		}
		if st.Error != "" {
			return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		return fmt.Errorf("job %s ended %s", st.ID, st.State)
	}
	var res jobResult
	if err := callJSON("GET", *server+"/v1/jobs/"+st.ID+"/result", nil, &res); err != nil {
		return err
	}
	if rep := res.Report; rep != nil {
		fmt.Printf("done: fake links %d, fake hosts %d, filters %d, %d iterations, U_C %.3f\n",
			len(rep.FakeLinks), len(rep.FakeHosts), rep.FiltersAdded, rep.Iterations, rep.UC)
	}
	if *verify {
		if err := confmask.Verify(configs, res.Configs); err != nil {
			return fmt.Errorf("verification of daemon result failed: %w", err)
		}
		fmt.Println("verified: anonymized network is functionally equivalent")
	}
	if *out != "" {
		if err := confmask.WriteConfigDir(*out, res.Configs); err != nil {
			return err
		}
		fmt.Printf("wrote %d device configurations to %s\n", len(res.Configs), *out)
	}
	return nil
}

// cmdStatus prints a job's status, or follows its event stream.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8619", "confmaskd base URL")
	id := fs.String("id", "", "job ID")
	events := fs.Bool("events", false, "stream the job's progress events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("status requires -id")
	}
	if *events {
		_, err := streamEvents(*server, *id, 0)
		return daemonHint(*server, err)
	}
	var st jobStatus
	if err := callJSON("GET", *server+"/v1/jobs/"+*id, nil, &st); err != nil {
		return daemonHint(*server, err)
	}
	fmt.Printf("job %s: %s", st.ID, st.State)
	if st.Stage != "" {
		fmt.Printf(" (stage %s", st.Stage)
		if st.Iteration > 0 {
			fmt.Printf(", iteration %d", st.Iteration)
		}
		fmt.Printf(")")
	}
	if st.Error != "" {
		fmt.Printf(": %s", st.Error)
	}
	fmt.Println()
	if st.Report != nil {
		fmt.Printf("  fake links %d, fake hosts %d, filters %d, %d iterations, U_C %.3f\n",
			len(st.Report.FakeLinks), len(st.Report.FakeHosts), st.Report.FiltersAdded, st.Report.Iterations, st.Report.UC)
	}
	return nil
}

// cmdCancel cancels a queued or running job.
func cmdCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8619", "confmaskd base URL")
	id := fs.String("id", "", "job ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("cancel requires -id")
	}
	var st jobStatus
	if err := callJSON("DELETE", *server+"/v1/jobs/"+*id, nil, &st); err != nil {
		return daemonHint(*server, err)
	}
	fmt.Printf("job %s: cancel requested (state %s)\n", st.ID, st.State)
	return nil
}

// Verification query API wire shapes (POST /v1/jobs/{id}/query).
type verifyQuery struct {
	ID       string `json:"id,omitempty"`
	Kind     string `json:"kind"`
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	Via      string `json:"via,omitempty"`
	FailNode string `json:"fail_node,omitempty"`
	FailLink string `json:"fail_link,omitempty"`
}

// verifyLine is one NDJSON response line: either a per-query result or,
// on the final line, the batch stats document.
type verifyLine struct {
	Index     int    `json:"index"`
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Holds     bool   `json:"holds"`
	Status    string `json:"status"`
	Paths     int    `json:"paths"`
	Delivered int    `json:"delivered"`
	Changed   bool   `json:"changed"`
	Error     string `json:"error"`
	Stats     *struct {
		Queries        int64 `json:"queries"`
		WhatIfRetraced int64 `json:"whatif_retraced"`
		WhatIfReused   int64 `json:"whatif_reused"`
	} `json:"stats"`
}

// postNDJSON performs a streaming POST with the client retry policy
// applied to pre-stream failures (no connection, 429, 5xx); once a 2xx
// header arrives, the caller owns the stream and nothing is retried.
func postNDJSON(url string, body []byte) (*http.Response, error) {
	backoff := retryBase
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		code := 0
		var retryAfter time.Duration
		if err == nil {
			if resp.StatusCode < 300 {
				return resp, nil
			}
			code = resp.StatusCode
			// Honor the daemon's Retry-After (sent with queue-full 429s)
			// over the fixed exponential schedule, like callJSON does.
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			var ae apiError
			if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
				err = fmt.Errorf("%s: %s", resp.Status, ae.Error)
			} else {
				err = fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
			}
		}
		if attempt >= retryAttempts || !retryable(code) {
			return nil, err
		}
		delay := backoff
		if retryAfter > 0 {
			delay = retryAfter
		}
		fmt.Fprintf(os.Stderr, "request failed (%v); retrying in %v (attempt %d/%d)\n", err, delay, attempt, retryAttempts)
		time.Sleep(delay)
		backoff *= 2
		if backoff > retryCap {
			backoff = retryCap
		}
	}
}

// cmdQuery sends a verification batch to a done job and prints the
// streamed answers. The batch comes from -file (a JSON document, "-"
// for stdin) or from the single-query flags.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8619", "confmaskd base URL")
	id := fs.String("id", "", "job ID")
	file := fs.String("file", "", `batch file: {"queries":[...]} or a bare JSON array ("-" reads stdin)`)
	kind := fs.String("kind", "", "single query: reachability|waypoint|pathdiff|isolation|whatif")
	src := fs.String("src", "", "single query: source device")
	dst := fs.String("dst", "", "single query: destination host")
	via := fs.String("via", "", "single query: waypoint device (kind=waypoint)")
	failNode := fs.String("fail-node", "", "single query: failed node (kind=whatif)")
	failLink := fs.String("fail-link", "", `single query: failed link "a<->b" (kind=whatif)`)
	raw := fs.Bool("json", false, "print the raw NDJSON response instead of a summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("query requires -id")
	}
	var batch struct {
		Queries []verifyQuery `json:"queries"`
	}
	switch {
	case *file != "" && *kind != "":
		return fmt.Errorf("query takes -file or -kind flags, not both")
	case *file != "":
		var data []byte
		var err error
		if *file == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*file)
		}
		if err != nil {
			return err
		}
		// Accept both the request envelope and a bare query array.
		if err := json.Unmarshal(data, &batch); err != nil || len(batch.Queries) == 0 {
			if aerr := json.Unmarshal(data, &batch.Queries); aerr != nil {
				return fmt.Errorf("batch file %s: %v", *file, err)
			}
		}
	case *kind != "":
		batch.Queries = []verifyQuery{{
			Kind: *kind, Src: *src, Dst: *dst, Via: *via,
			FailNode: *failNode, FailLink: *failLink,
		}}
	default:
		return fmt.Errorf("query requires -file or -kind/-src/-dst")
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	resp, err := postNDJSON(*server+"/v1/jobs/"+*id+"/query", body)
	if err != nil {
		return daemonHint(*server, err)
	}
	defer resp.Body.Close()
	if *raw {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	failures := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var line verifyLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("bad result line: %w", err)
		}
		if line.Stats != nil {
			fmt.Printf("%d queries answered (what-if retraced %d, reused %d)\n",
				line.Stats.Queries, line.Stats.WhatIfRetraced, line.Stats.WhatIfReused)
			continue
		}
		name := line.ID
		if name == "" {
			name = fmt.Sprintf("#%d", line.Index)
		}
		switch {
		case line.Error != "":
			failures++
			fmt.Printf("  %-12s %-12s error: %s\n", name, line.Kind, line.Error)
		default:
			verdict := "holds"
			if !line.Holds {
				verdict = "FAILS"
			}
			extra := ""
			if line.Kind == "whatif" && line.Changed {
				extra = ", paths changed"
			}
			fmt.Printf("  %-12s %-12s %s (%s, %d/%d paths delivered%s)\n",
				name, line.Kind, verdict, line.Status, line.Delivered, line.Paths, extra)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d queries were malformed", failures, len(batch.Queries))
	}
	return nil
}
