// Command confmask anonymizes a directory of Cisco-IOS-style router
// configurations, hiding the network topology and routing paths while
// preserving functional equivalence.
//
// Usage:
//
//	confmask anonymize -in <dir> -out <dir> [-kr 6] [-kh 2] [-p 0.1] [-seed N] [-pii key]
//	confmask verify -orig <dir> -anon <dir>
//	confmask inspect -in <dir>
//	confmask trace -in <dir> -src <host> -dst <host>
//	confmask example -net FatTree04 -out <dir>
//
// Client mode for a running confmaskd daemon:
//
//	confmask submit -server <url> (-in <dir> | -net <name>) [-wait] [-out <dir>]
//	confmask status -server <url> -id <job> [-events]
//	confmask query  -server <url> -id <job> (-file <batch.json> | -kind <k> -src <dev> -dst <host>)
//	confmask cancel -server <url> -id <job>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"confmask"
	"confmask/internal/version"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "anonymize":
		err = cmdAnonymize(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "routes":
		err = cmdRoutes(os.Args[2:])
	case "example":
		err = cmdExample(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "cancel":
		err = cmdCancel(os.Args[2:])
	case "-version", "--version", "version":
		fmt.Println("confmask", version.String())
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "confmask:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `confmask — privacy-preserving configuration sharing

subcommands:
  anonymize -in <dir> -out <dir> [-kr N] [-kh N] [-p F] [-seed N] [-strategy S] [-pii key]
  verify    -orig <dir> -anon <dir>
  inspect   -in <dir>
  trace     -in <dir> -src <host> -dst <host>
  routes    -in <dir> -router <name>
  submit    -server <url> (-in <dir> | -net <name>) [-kr N] [-kh N] [-seed N] [-tenant T] [-wait] [-out <dir>] [-verify]
  status    -server <url> -id <job> [-events]
  query     -server <url> -id <job> (-file <batch.json> | -kind K -src S -dst D [-via V] [-fail-node N] [-fail-link "a<->b"]) [-json]
  cancel    -server <url> -id <job>
  version
  example   -net <A..H|name> -out <dir>   (built-in evaluation networks:`, strings.Join(confmask.ExampleNetworks(), ", ")+")")
}

func cmdAnonymize(args []string) error {
	fs := flag.NewFlagSet("anonymize", flag.ExitOnError)
	in := fs.String("in", "", "input configuration directory")
	out := fs.String("out", "", "output directory")
	kr := fs.Int("kr", 6, "topology anonymity parameter k_R")
	kh := fs.Int("kh", 2, "route anonymity parameter k_H")
	p := fs.Float64("p", 0.1, "route anonymity noise probability")
	seed := fs.Int64("seed", 0, "random seed")
	strategy := fs.String("strategy", "confmask", "route equivalence strategy (confmask|strawman1|strawman2)")
	fakeRouters := fs.Int("fake-routers", 0, "also hide the router count by adding N fake routers (IGP networks)")
	parallelism := fs.Int("parallelism", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
	pii := fs.String("pii", "", "when set, also apply keyed PII anonymization with this key")
	verify := fs.Bool("verify", true, "verify functional equivalence after anonymizing")
	reportPath := fs.String("report", "", "write a Markdown audit of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("anonymize requires -in and -out")
	}
	configs, err := confmask.ReadConfigDir(*in)
	if err != nil {
		return err
	}
	opts := confmask.Options{KR: *kr, KH: *kh, NoiseP: *p, Seed: *seed, Strategy: *strategy, FakeRouters: *fakeRouters, Parallelism: *parallelism}
	anon, rep, err := confmask.Anonymize(configs, opts)
	if err != nil {
		return err
	}
	if *verify {
		if err := confmask.Verify(configs, anon); err != nil {
			return fmt.Errorf("post-anonymization verification failed: %w", err)
		}
		fmt.Println("verified: anonymized network is functionally equivalent")
	}
	if *reportPath != "" {
		md, safe, err := confmask.Audit(configs, anon, opts)
		if err != nil {
			return fmt.Errorf("audit: %w", err)
		}
		if err := os.WriteFile(*reportPath, []byte(md), 0o644); err != nil {
			return err
		}
		verdict := "safe to share"
		if !safe {
			verdict = "REVIEW REQUIRED"
		}
		fmt.Printf("audit written to %s (%s)\n", *reportPath, verdict)
	}
	if *pii != "" {
		var names map[string]string
		anon, names, err = confmask.ApplyPII(anon, []byte(*pii))
		if err != nil {
			return err
		}
		fmt.Printf("PII stage renamed %d devices (keep the mapping private)\n", len(names))
	}
	if err := confmask.WriteConfigDir(*out, anon); err != nil {
		return err
	}
	fmt.Printf("anonymized %d devices → %s\n", len(anon), *out)
	fmt.Printf("  fake links: %d, fake hosts: %d, filters: %d\n", len(rep.FakeLinks), len(rep.FakeHosts), rep.FiltersAdded)
	fmt.Printf("  injected %d of %d lines (U_C = %.3f) in %v\n", rep.LinesAdded, rep.LinesTotal, rep.UC, rep.Duration)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	orig := fs.String("orig", "", "original configuration directory")
	anon := fs.String("anon", "", "anonymized configuration directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *orig == "" || *anon == "" {
		return fmt.Errorf("verify requires -orig and -anon")
	}
	o, err := confmask.ReadConfigDir(*orig)
	if err != nil {
		return err
	}
	a, err := confmask.ReadConfigDir(*anon)
	if err != nil {
		return err
	}
	if err := confmask.Verify(o, a); err != nil {
		return err
	}
	fmt.Println("functionally equivalent")
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "configuration directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect requires -in")
	}
	configs, err := confmask.ReadConfigDir(*in)
	if err != nil {
		return err
	}
	info, err := confmask.Inspect(configs)
	if err != nil {
		return err
	}
	fmt.Printf("routers: %d\nhosts: %d\nlinks: %d\nconfig lines: %d\nprotocols: %s\nk-degree anonymity (k_d): %d\n",
		info.Routers, info.Hosts, info.Links, info.ConfigLines, strings.Join(info.Protocols, ","), info.MinSameDegree)
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	in := fs.String("in", "", "configuration directory")
	src := fs.String("src", "", "source host")
	dst := fs.String("dst", "", "destination host")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *src == "" || *dst == "" {
		return fmt.Errorf("trace requires -in, -src, -dst")
	}
	configs, err := confmask.ReadConfigDir(*in)
	if err != nil {
		return err
	}
	paths, ok, err := confmask.Trace(configs, *src, *dst)
	if err != nil {
		return err
	}
	for _, p := range paths {
		fmt.Println(strings.Join(p, " → "))
	}
	if !ok {
		return fmt.Errorf("some paths do not deliver")
	}
	return nil
}

func cmdRoutes(args []string) error {
	fs := flag.NewFlagSet("routes", flag.ExitOnError)
	in := fs.String("in", "", "configuration directory")
	router := fs.String("router", "", "router hostname")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *router == "" {
		return fmt.Errorf("routes requires -in and -router")
	}
	configs, err := confmask.ReadConfigDir(*in)
	if err != nil {
		return err
	}
	routes, err := confmask.Routes(configs, *router)
	if err != nil {
		return err
	}
	for _, r := range routes {
		fmt.Printf("%-20s %-10s metric %-6d via %s\n", r.Prefix, r.Source, r.Metric, strings.Join(r.NextHops, ", "))
	}
	return nil
}

func cmdExample(args []string) error {
	fs := flag.NewFlagSet("example", flag.ExitOnError)
	net := fs.String("net", "", "network ID or name")
	out := fs.String("out", "", "output directory")
	list := fs.Bool("list", false, "list available networks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list || *net == "" {
		names := confmask.ExampleNetworks()
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return nil
	}
	if *out == "" {
		return fmt.Errorf("example requires -out")
	}
	configs, err := confmask.GenerateExample(*net)
	if err != nil {
		return err
	}
	if err := confmask.WriteConfigDir(*out, configs); err != nil {
		return err
	}
	fmt.Printf("wrote %d device configurations to %s\n", len(configs), *out)
	return nil
}
