package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCLIWorkflow(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig")
	anon := filepath.Join(dir, "anon")

	if err := cmdExample([]string{"-net", "Backbone", "-out", orig}); err != nil {
		t.Fatalf("example: %v", err)
	}
	entries, err := os.ReadDir(orig)
	if err != nil || len(entries) != 20 { // 11 routers + 9 hosts
		t.Fatalf("example wrote %d files (%v)", len(entries), err)
	}
	if err := cmdInspect([]string{"-in", orig}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := cmdAnonymize([]string{"-in", orig, "-out", anon, "-kr", "4", "-seed", "9"}); err != nil {
		t.Fatalf("anonymize: %v", err)
	}
	if err := cmdVerify([]string{"-orig", orig, "-anon", anon}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := cmdTrace([]string{"-in", anon, "-src", "h1", "-dst", "h9"}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if err := cmdRoutes([]string{"-in", anon, "-router", "r1"}); err != nil {
		t.Fatalf("routes: %v", err)
	}
}

func TestCLIAnonymizeWithPII(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig")
	anon := filepath.Join(dir, "anon")
	if err := cmdExample([]string{"-net", "Backbone", "-out", orig}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnonymize([]string{"-in", orig, "-out", anon, "-kr", "4", "-pii", "secret"}); err != nil {
		t.Fatalf("anonymize with PII: %v", err)
	}
	entries, err := os.ReadDir(anon)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no output written: %v", err)
	}
	for _, e := range entries {
		if e.Name() == "r1.cfg" {
			t.Fatal("PII stage left original hostnames in file names")
		}
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdAnonymize([]string{"-in", "", "-out", ""}); err == nil {
		t.Fatal("missing dirs accepted")
	}
	if err := cmdVerify([]string{"-orig", "", "-anon", ""}); err == nil {
		t.Fatal("missing dirs accepted")
	}
	if err := cmdInspect([]string{"-in", ""}); err == nil {
		t.Fatal("missing dir accepted")
	}
	if err := cmdTrace([]string{"-in", "nope"}); err == nil {
		t.Fatal("missing hosts accepted")
	}
	if err := cmdExample([]string{"-net", "unknown", "-out", t.TempDir()}); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestCLIExampleList(t *testing.T) {
	if err := cmdExample([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}
