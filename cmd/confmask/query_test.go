package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"confmask"
	"confmask/internal/query"
	"confmask/internal/service"
)

// TestCLIQueryNoDaemon asserts the client turns a refused connection
// into an actionable "is confmaskd running" message instead of a bare
// dial error.
func TestCLIQueryNoDaemon(t *testing.T) {
	// A freshly closed listener's port refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	old := retryAttempts
	retryAttempts = 1
	defer func() { retryAttempts = old }()

	for _, args := range [][]string{
		{"query", "-server", "http://" + addr, "-id", "j1", "-kind", "reachability", "-src", "a", "-dst", "b"},
		{"status", "-server", "http://" + addr, "-id", "j1"},
		{"cancel", "-server", "http://" + addr, "-id", "j1"},
	} {
		var err error
		switch args[0] {
		case "query":
			err = cmdQuery(args[1:])
		case "status":
			err = cmdStatus(args[1:])
		case "cancel":
			err = cmdCancel(args[1:])
		}
		if err == nil {
			t.Fatalf("%s against dead server succeeded", args[0])
		}
		if !strings.Contains(err.Error(), "is confmaskd running") {
			t.Fatalf("%s error lacks daemon hint: %v", args[0], err)
		}
	}
}

// TestCLIQueryRoundTrip runs a daemon in-process, completes a job, and
// exercises the query subcommand in both single-query and batch-file
// form.
func TestCLIQueryRoundTrip(t *testing.T) {
	s := service.New(service.Config{Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	configs, err := confmask.GenerateExample("Enterprise")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"configs": configs,
		"options": confmask.Options{KR: 6, KH: 2, NoiseP: 0.1, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("job ended %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap, err := query.FromConfigs(configs, 1)
	if err != nil {
		t.Fatal(err)
	}
	hosts := snap.Hosts()
	if len(hosts) < 2 {
		t.Fatalf("need 2 hosts, have %v", hosts)
	}

	if err := cmdQuery([]string{"-server", ts.URL, "-id", st.ID,
		"-kind", "reachability", "-src", hosts[0], "-dst", hosts[1]}); err != nil {
		t.Fatalf("single query: %v", err)
	}

	batch := map[string]any{"queries": []map[string]any{
		{"id": "r1", "kind": "reachability", "src": hosts[0], "dst": hosts[1]},
		{"id": "w1", "kind": "whatif", "src": hosts[0], "dst": hosts[1], "fail_node": hosts[0]},
	}}
	data, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(t.TempDir(), "batch.json")
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-server", ts.URL, "-id", st.ID, "-file", file, "-json"}); err != nil {
		t.Fatalf("batch query: %v", err)
	}

	// A malformed query makes the command fail after printing answers.
	bad := map[string]any{"queries": []map[string]any{
		{"kind": "bogus", "src": hosts[0], "dst": hosts[1]},
	}}
	data, _ = json.Marshal(bad)
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-server", ts.URL, "-id", st.ID, "-file", file}); err == nil {
		t.Fatal("malformed batch reported success")
	}

	// Unknown job: 404 is not retried and not masked by the hint.
	if err := cmdQuery([]string{"-server", ts.URL, "-id", "j999999-nope",
		"-kind", "reachability", "-src", hosts[0], "-dst", hosts[1]}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job error: %v", err)
	}
}
