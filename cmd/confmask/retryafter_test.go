package main

import (
	"testing"
	"time"
)

func TestParseRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"0", 0},
		{"1", time.Second},
		{"120", 2 * time.Minute},
		{"-5", 0},   // negative seconds are invalid → no hint
		{"", 0},     // absent header
		{"1.5", 0},  // delta-seconds is an integer; fractions are garbage
		{"  3", 0},  // RFC 9110 delta-seconds has no whitespace
		{"soon", 0}, // garbage → fall back to computed backoff
		{"Mon, not a date", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	// A future IMF-fixdate parses to roughly the interval until it.
	future := time.Now().Add(90 * time.Second).UTC().Format(time.RFC1123)
	// http.ParseTime wants "GMT", which RFC1123 renders as "UTC".
	future = future[:len(future)-3] + "GMT"
	d := parseRetryAfter(future)
	if d < 80*time.Second || d > 90*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want ~90s", future, d)
	}

	// A past date means "retry now": no wait, not a negative one.
	past := "Mon, 02 Jan 2006 15:04:05 GMT"
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("parseRetryAfter(past) = %v, want 0", d)
	}

	// The obsolete RFC 850 and asctime formats are accepted too.
	asctime := time.Now().Add(60 * time.Second).UTC().Format(time.ANSIC)
	d = parseRetryAfter(asctime)
	if d < 50*time.Second || d > 60*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want ~60s", asctime, d)
	}
}
