package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamEventsReconnectsFromCursor drops the event stream mid-follow
// and checks the client reconnects with the last-seen ?after=<seq> cursor,
// finishing the follow without losing or duplicating events.
func TestStreamEventsReconnectsFromCursor(t *testing.T) {
	oldBase := retryBase
	retryBase = time.Millisecond
	defer func() { retryBase = oldBase }()

	var conns atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch conns.Add(1) {
		case 1:
			if got := r.URL.Query().Get("after"); got != "0" {
				t.Errorf("first connect: after=%q, want 0", got)
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"seq":1,"state":"queued","message":"queued"}`)
			fmt.Fprintln(w, `{"seq":2,"state":"running","message":"started"}`)
			w.(http.Flusher).Flush()
			// Kill the connection mid-stream: the client must treat this as
			// transient and resume, not abort the follow.
			panic(http.ErrAbortHandler)
		default:
			if got := r.URL.Query().Get("after"); got != "2" {
				t.Errorf("reconnect: after=%q, want 2", got)
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"seq":3,"state":"running","stage":"topology"}`)
			fmt.Fprintln(w, `{"seq":4,"state":"done","message":"done"}`)
		}
	}))
	defer srv.Close()

	state, err := streamEvents(srv.URL, "j000001-abc", 0)
	if err != nil {
		t.Fatalf("streamEvents: %v", err)
	}
	if state != "done" {
		t.Fatalf("state = %q, want done", state)
	}
	if n := conns.Load(); n != 2 {
		t.Fatalf("connections = %d, want 2", n)
	}
}

// TestStreamEventsGivesUpWithoutProgress pins the failure mode: a stream
// that keeps dying without delivering any new event exhausts the attempt
// budget instead of reconnecting forever.
func TestStreamEventsGivesUpWithoutProgress(t *testing.T) {
	oldBase, oldAttempts := retryBase, retryAttempts
	retryBase, retryAttempts = time.Millisecond, 3
	defer func() { retryBase, retryAttempts = oldBase, oldAttempts }()

	var conns atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		panic(http.ErrAbortHandler)
	}))
	defer srv.Close()

	if _, err := streamEvents(srv.URL, "j000001-abc", 0); err == nil {
		t.Fatal("streamEvents succeeded against a server that always drops")
	}
	if n := conns.Load(); n != 3 {
		t.Fatalf("connections = %d, want 3 (attempt budget)", n)
	}
}

// TestPostNDJSONHonorsRetryAfter serves one 429 carrying Retry-After: 1 and
// checks the retry waits that long instead of the 1ms fixed backoff.
func TestPostNDJSONHonorsRetryAfter(t *testing.T) {
	oldBase := retryBase
	retryBase = time.Millisecond
	defer func() { retryBase = oldBase }()

	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"queue full"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	start := time.Now()
	resp, err := postNDJSON(srv.URL, []byte("{}"))
	if err != nil {
		t.Fatalf("postNDJSON: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v; Retry-After: 1 not honored", elapsed)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("calls = %d, want 2", n)
	}
}
