// Command confmaskd is the ConfMask anonymization service daemon: a
// long-running HTTP/JSON server that accepts anonymization jobs, runs
// them on a bounded worker pool with a FIFO queue and per-job timeouts,
// and streams per-stage progress.
//
// Usage:
//
//	confmaskd [-addr :8619] [-workers N] [-queue N] [-job-timeout 15m]
//	          [-data-dir DIR] [-pprof-addr 127.0.0.1:6060]
//	          [-node-id NAME] [-lease-ttl 15s] [-heartbeat 5s]
//	          [-tenant-quota N] [-tenant-rate R] [-tenant-burst N]
//
// With -data-dir the daemon is crash-safe: submissions and job events are
// journaled, stage checkpoints are persisted, and a restart against the
// same directory replays the journal — finished jobs stay queryable,
// unfinished jobs re-enqueue and resume from their last checkpoint with
// results byte-identical to an uninterrupted run.
//
// Several daemons may share one -data-dir to form a worker fleet: each
// claims jobs under a fenced lease (-node-id, -lease-ttl, -heartbeat),
// a coordinator loop requeues jobs whose owner died, and stale owners
// are fenced off the journal. Multi-tenant fairness rides on the
// X-Tenant submit header: per-tenant queues drained by deficit-weighted
// round-robin, -tenant-quota concurrent jobs per tenant, and a
// -tenant-rate/-tenant-burst token bucket answering 429 + Retry-After.
//
// Endpoints:
//
//	POST   /v1/jobs             submit {"configs": {...}, "options": {...}}
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/events NDJSON progress stream (replay + follow)
//	GET    /v1/jobs/{id}/result anonymized configs + report (when done)
//	POST   /v1/jobs/{id}/query  verification query batch in, NDJSON answers out
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness
//	GET    /metrics             job counters + per-stage histograms
//
// The existing confmask CLI is the matching client: `confmask submit`,
// `confmask status`, `confmask query`, `confmask cancel`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"confmask/internal/faults"
	"confmask/internal/service"
	"confmask/internal/version"
)

func main() {
	addr := flag.String("addr", ":8619", "listen address")
	workers := flag.Int("workers", 2, "concurrent anonymization jobs")
	queue := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	jobTimeout := flag.Duration("job-timeout", 15*time.Minute, "per-job wall-clock budget")
	stageTimeout := flag.Duration("stage-timeout", 10*time.Minute, "watchdog: max time a pipeline stage may go without progress")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for running jobs before stopping them")
	parallelism := flag.Int("parallelism", 0, "default per-job simulation parallelism (0 = GOMAXPROCS; jobs may override)")
	dataDir := flag.String("data-dir", "", "journal directory for crash-safe job recovery (empty = in-memory only)")
	maxRestarts := flag.Int("max-restarts", 3, "max daemon starts that may execute one journaled job before it fails")
	maxQueryBatch := flag.Int("max-query-batch", 4096, "max predicates per verification query batch")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-predicate evaluation budget on the query endpoint")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints (empty = disabled; bind to localhost)")
	nodeID := flag.String("node-id", "", "worker identity for lease ownership in a shared data dir (empty = hostname; must differ per daemon on one host)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "job lease duration; a worker silent this long loses its jobs to the fleet")
	heartbeat := flag.Duration("heartbeat", 0, "lease renewal interval for running jobs (0 = lease-ttl/3)")
	tenantQuota := flag.Int("tenant-quota", 0, "max concurrently running jobs per tenant (0 = unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant submit rate limit in jobs/sec, token bucket (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant submit burst size (0 = derived from -tenant-rate)")
	faultSpec := flag.String("fault", "", "fault injection spec for chaos testing, e.g. 'service.journal.sync=drop,worker.run=panic@2' (testing only)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("confmaskd", version.String())
		return
	}
	if *faultSpec != "" {
		if err := faults.ArmSpec(*faultSpec); err != nil {
			log.Fatalf("bad -fault spec: %v", err)
		}
		log.Printf("FAULT INJECTION ARMED: %s", *faultSpec)
	}

	svc, err := service.Open(service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		JobTimeout:    *jobTimeout,
		StageTimeout:  *stageTimeout,
		Parallelism:   *parallelism,
		DataDir:       *dataDir,
		MaxRestarts:   *maxRestarts,
		MaxQueryBatch: *maxQueryBatch,
		QueryTimeout:  *queryTimeout,
		NodeID:        *nodeID,
		LeaseTTL:      *leaseTTL,
		Heartbeat:     *heartbeat,
		TenantQuota:   *tenantQuota,
		TenantRate:    *tenantRate,
		TenantBurst:   float64(*tenantBurst),
	})
	if err != nil {
		log.Fatalf("open service: %v", err)
	}

	// Profiling listener, separate from the API: pprof handlers are never
	// mounted on the job mux, so the default (no -pprof-addr) exposes
	// nothing, and when enabled the operator chooses a loopback-only bind.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", pln.Addr())
			if err := http.Serve(pln, mux); err != nil {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	// Listen before announcing: with -addr 127.0.0.1:0 the kernel picks the
	// port, and supervisors (and the recovery tests) parse it from the log.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: svc}

	errc := make(chan error, 1)
	go func() {
		log.Printf("confmaskd %s listening on %s (node %s, %d workers, queue %d, job timeout %v, data dir %q)",
			version.String(), ln.Addr(), svc.NodeID(), *workers, *queue, *jobTimeout, *dataDir)
		errc <- httpSrv.Serve(ln)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v, draining (running jobs get %v)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job service first — new submissions already get 503, but
	// clients can keep polling status and following event streams while
	// running jobs finish; those streams end as jobs reach terminal
	// states, which is what lets the HTTP shutdown below return. With a
	// data dir, jobs still running at the deadline are requeued durably
	// (draining → requeued) instead of cancelled.
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("drain timed out, remaining jobs were stopped")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("confmaskd stopped")
}
