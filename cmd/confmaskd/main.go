// Command confmaskd is the ConfMask anonymization service daemon: a
// long-running HTTP/JSON server that accepts anonymization jobs, runs
// them on a bounded worker pool with a FIFO queue and per-job timeouts,
// and streams per-stage progress.
//
// Usage:
//
//	confmaskd [-addr :8619] [-workers N] [-queue N] [-job-timeout 15m]
//
// Endpoints:
//
//	POST   /v1/jobs             submit {"configs": {...}, "options": {...}}
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/events NDJSON progress stream (replay + follow)
//	GET    /v1/jobs/{id}/result anonymized configs + report (when done)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness
//	GET    /metrics             job counters + per-stage histograms
//
// The existing confmask CLI is the matching client: `confmask submit`,
// `confmask status`, `confmask cancel`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"confmask/internal/service"
	"confmask/internal/version"
)

func main() {
	addr := flag.String("addr", ":8619", "listen address")
	workers := flag.Int("workers", 2, "concurrent anonymization jobs")
	queue := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	jobTimeout := flag.Duration("job-timeout", 15*time.Minute, "per-job wall-clock budget")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for running jobs before cancelling them")
	parallelism := flag.Int("parallelism", 0, "default per-job simulation parallelism (0 = GOMAXPROCS; jobs may override)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("confmaskd", version.String())
		return
	}

	svc := service.New(service.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		Parallelism: *parallelism,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	errc := make(chan error, 1)
	go func() {
		log.Printf("confmaskd %s listening on %s (%d workers, queue %d, job timeout %v)",
			version.String(), *addr, *workers, *queue, *jobTimeout)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v, draining (running jobs get %v)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the job service first — new submissions already get 503, but
	// clients can keep polling status and following event streams while
	// running jobs finish; those streams end as jobs reach terminal
	// states, which is what lets the HTTP shutdown below return.
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("drain timed out, running jobs were cancelled")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("confmaskd stopped")
}
