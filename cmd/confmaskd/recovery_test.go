package main

// End-to-end crash recovery: a real confmaskd process is SIGKILLed in the
// middle of a job — no drain, no warning — and a second process started on
// the same -data-dir must finish both the interrupted job and the one
// still queued, with results byte-identical to an uninterrupted in-process
// run. This is the acceptance test for the durable journal + stage
// checkpoint machinery; the in-process variants live in internal/service.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"

	"confmask"
)

var listenRE = regexp.MustCompile(`listening on (\S+:\d+)`)

// daemon is one spawned confmaskd process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon launches the binary and waits for its listen line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		d := &daemon{cmd: cmd, base: "http://" + addr}
		t.Cleanup(func() {
			if d.cmd.Process != nil {
				_ = d.cmd.Process.Kill()
				_ = d.cmd.Wait()
			}
		})
		return d
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("daemon never announced its listen address")
		return nil
	}
}

// kill9 delivers SIGKILL and reaps the process.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait()
}

type wireStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Stage    string `json:"stage"`
	Error    string `json:"error"`
	Restarts int    `json:"restarts"`
}

func (d *daemon) submit(t *testing.T, configs map[string]string, opts confmask.Options) wireStatus {
	t.Helper()
	body, err := json.Marshal(map[string]any{"configs": configs, "options": opts})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("submit: %s", resp.Status)
	}
	var st wireStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (d *daemon) status(t *testing.T, id string) (wireStatus, error) {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id)
	if err != nil {
		return wireStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return wireStatus{}, fmt.Errorf("status %s: %s", id, resp.Status)
	}
	var st wireStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return wireStatus{}, err
	}
	return st, nil
}

func (d *daemon) result(t *testing.T, id string) map[string]string {
	t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %s", id, resp.Status)
	}
	var doc struct {
		Configs map[string]string `json:"configs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Configs
}

func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) wireStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := d.status(t, id)
		if err == nil {
			switch st.State {
			case "done":
				return st
			case "failed", "cancelled":
				t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return wireStatus{}
}

// buildDaemon compiles the confmaskd binary into a temp dir once per call.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "confmaskd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build confmaskd: %v\n%s", err, out)
	}
	return bin
}

func (d *daemon) metrics(t *testing.T) map[string]any {
	t.Helper()
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()

	configs, err := confmask.GenerateExample("Enterprise")
	if err != nil {
		t.Fatal(err)
	}
	optsA := confmask.Options{KR: 6, KH: 3, NoiseP: 0.5, Seed: 1001}
	optsB := confmask.Options{KR: 6, KH: 2, NoiseP: 0.1, Seed: 1002}

	// Reference outputs from uninterrupted in-process runs.
	wantA, _, err := confmask.Anonymize(configs, optsA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, _, err := confmask.Anonymize(configs, optsB)
	if err != nil {
		t.Fatal(err)
	}

	// First daemon: one worker so job B stays queued behind job A, and a
	// delay fault in the equivalence stage to hold the kill window open.
	d1 := startDaemon(t, bin,
		"-workers", "1",
		"-data-dir", dataDir,
		"-fault", "anonymize.stage.equivalence=delay:300ms",
	)
	stA := d1.submit(t, configs, optsA)
	stB := d1.submit(t, configs, optsB)
	if stA.ID == stB.ID {
		t.Fatal("distinct requests deduplicated")
	}

	// Wait until job A is visibly inside the equivalence stage (its
	// topology checkpoint is on disk; the journal shows it running), then
	// kill the daemon without any warning.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := d1.status(t, stA.ID)
		if err == nil && st.State == "running" && st.Stage == "equivalence" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never reached equivalence")
		}
		time.Sleep(10 * time.Millisecond)
	}
	d1.kill9(t)

	// The second daemon replays the journal: job A resumes from its last
	// checkpoint, job B runs from scratch. No fault flag this time.
	d2 := startDaemon(t, bin, "-workers", "2", "-data-dir", dataDir)
	finalA := d2.waitDone(t, stA.ID, 2*time.Minute)
	finalB := d2.waitDone(t, stB.ID, 2*time.Minute)
	if finalA.Restarts != 1 {
		t.Errorf("job A restarts = %d, want 1", finalA.Restarts)
	}
	if finalB.Restarts != 0 {
		t.Errorf("job B restarts = %d, want 0", finalB.Restarts)
	}

	for _, tc := range []struct {
		id   string
		want map[string]string
		name string
	}{
		{stA.ID, wantA, "killed mid-equivalence"},
		{stB.ID, wantB, "queued at kill"},
	} {
		got := d2.result(t, tc.id)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d configs, want %d", tc.name, len(got), len(tc.want))
		}
		for name, text := range tc.want {
			if got[name] != text {
				t.Fatalf("%s: config %s differs from uninterrupted run", tc.name, name)
			}
		}
	}

	// The journal directory must reflect the finished state: results on
	// disk, and the final stage checkpoint retained — it is what
	// incremental resubmissions seed from, across restarts.
	for _, id := range []string{stA.ID, stB.ID} {
		if _, err := os.Stat(filepath.Join(dataDir, "jobs", id, "result.json")); err != nil {
			t.Errorf("job %s result not persisted: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(dataDir, "jobs", id, "checkpoint.json")); err != nil {
			t.Errorf("job %s final checkpoint not retained: %v", id, err)
		}
	}

	// A third start over a fully-terminal journal must replay cleanly and
	// still serve the old results.
	d2.kill9(t)
	d3 := startDaemon(t, bin, "-data-dir", dataDir)
	st, err := d3.status(t, stA.ID)
	if err != nil || st.State != "done" {
		t.Fatalf("done job after re-replay: %+v, %v", st, err)
	}
	got := d3.result(t, stA.ID)
	for name, text := range wantA {
		if got[name] != text {
			t.Fatalf("re-replayed result: config %s differs", name)
		}
	}
}

// TestTwoNodeSIGKILL is the worker-fleet acceptance test: two live daemons
// share one -data-dir with distinct node identities and short leases. The
// node running a job is SIGKILLed mid-equivalence; the survivor's
// coordinator must notice the expired lease within the TTL, requeue the
// job, claim a higher epoch, and finish it byte-identical to an
// uninterrupted run — with no restart of either process.
func TestTwoNodeSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()

	configs, err := confmask.GenerateExample("Enterprise")
	if err != nil {
		t.Fatal(err)
	}
	opts := confmask.Options{KR: 6, KH: 3, NoiseP: 0.5, Seed: 2001}
	want, _, err := confmask.Anonymize(configs, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Node A gets the job and a delay fault to hold the kill window open;
	// node B idles with the same short lease parameters, rescanning every
	// heartbeat. Distinct -node-id values are what let two daemons on one
	// host tell their leases apart.
	fleet := []string{"-workers", "1", "-data-dir", dataDir, "-lease-ttl", "1s", "-heartbeat", "200ms"}
	dA := startDaemon(t, bin, append(fleet,
		"-node-id", "node-a",
		"-fault", "anonymize.stage.equivalence=delay:300ms",
	)...)
	dB := startDaemon(t, bin, append(fleet, "-node-id", "node-b")...)

	st := dA.submit(t, configs, opts)

	// Wait until the job is visibly mid-equivalence (topology checkpoint on
	// disk, lease held by node-a), then kill node A cold.
	deadline := time.Now().Add(60 * time.Second)
	for {
		s, err := dA.status(t, st.ID)
		if err == nil && s.State == "running" && s.Stage == "equivalence" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached equivalence on node A")
		}
		time.Sleep(10 * time.Millisecond)
	}
	dA.kill9(t)

	// Node B takes over after the lease expires: same job ID, one more
	// start, resumed from node A's checkpoint.
	final := dB.waitDone(t, st.ID, 2*time.Minute)
	if final.Restarts != 1 {
		t.Errorf("taken-over job restarts = %d, want 1", final.Restarts)
	}
	got := dB.result(t, st.ID)
	if len(got) != len(want) {
		t.Fatalf("takeover result has %d configs, want %d", len(got), len(want))
	}
	for name, text := range want {
		if got[name] != text {
			t.Fatalf("config %s differs from uninterrupted run after takeover", name)
		}
	}

	m := dB.metrics(t)
	for key, min := range map[string]float64{"leases_expired_total": 1, "jobs_requeued_total": 1} {
		v, ok := m[key].(float64)
		if !ok || v < min {
			t.Errorf("survivor metric %s = %v, want >= %v", key, m[key], min)
		}
	}
	if m["node_id"] != "node-b" {
		t.Errorf("survivor node_id = %v, want node-b", m["node_id"])
	}
}
