// Command netgen emits the paper's Table 2 evaluation networks as
// directories of Cisco-IOS-style configuration files — the workloads every
// experiment in this repository runs on.
//
// Usage:
//
//	netgen -out <dir>          # all eight networks, one subdirectory each
//	netgen -net FatTree04 -out <dir>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"confmask"
	"confmask/internal/version"
)

func main() {
	net := flag.String("net", "", "single network ID or name (default: all)")
	out := flag.String("out", "", "output directory")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("netgen", version.String())
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "netgen: -out is required")
		os.Exit(2)
	}
	names := confmask.ExampleNetworks()
	if *net != "" {
		names = []string{*net}
	}
	for _, name := range names {
		configs, err := confmask.GenerateExample(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		dir := filepath.Join(*out, name)
		if err := confmask.WriteConfigDir(dir, configs); err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%-11s %3d devices → %s\n", name, len(configs), dir)
	}
}
