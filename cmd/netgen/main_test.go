package main

import (
	"os"
	"path/filepath"
	"testing"

	"confmask"
)

// TestEmittedNetworksReloadable writes one evaluation network to disk and
// reloads it through the public API.
func TestEmittedNetworksReloadable(t *testing.T) {
	dir := t.TempDir()
	configs, err := confmask.GenerateExample("Backbone")
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "Backbone")
	if err := confmask.WriteConfigDir(out, configs); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(configs) {
		t.Fatalf("wrote %d files, want %d", len(entries), len(configs))
	}
	loaded, err := confmask.ReadConfigDir(out)
	if err != nil {
		t.Fatal(err)
	}
	info, err := confmask.Inspect(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if info.Routers != 11 || info.Hosts != 9 {
		t.Fatalf("reloaded network wrong: %+v", info)
	}
}
