// Package confmask is a privacy-preserving network-configuration sharing
// toolkit: it anonymizes the topology and routing paths implicit in
// Cisco-IOS-style router configurations while preserving functional
// equivalence — every host-to-host forwarding path of the original network
// survives exactly. It is a from-scratch reproduction of ConfMask
// (Wang et al., ACM SIGCOMM 2024).
//
// The package operates on plain configuration text keyed by file name, so
// a minimal use is:
//
//	configs, _ := confmask.GenerateExample("FatTree04")
//	anon, report, err := confmask.Anonymize(configs, confmask.DefaultOptions())
//
// Anonymize runs the full pipeline: k_R-degree topology anonymization
// (fake links with SFE-compliant costs), route-equivalence fixing
// (Algorithm 1 of the paper), and k_H route anonymity (fake twin hosts
// with randomized filters, Algorithm 2). Verify re-simulates both networks
// and asserts functional equivalence; ApplyPII is the add-on stage for
// prefix-preserving IP and hostname anonymization.
package confmask

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"confmask/internal/anonymize"
	"confmask/internal/config"
	"confmask/internal/netgen"
	"confmask/internal/report"
	"confmask/internal/sim"
	"confmask/internal/spec"
)

// Options configures Anonymize.
type Options struct {
	// KR is the topology anonymity parameter k_R: after anonymization at
	// least KR routers share every occurring router degree. Default 6.
	KR int
	// KH is the route anonymity parameter k_H: each real host gains KH−1
	// fake twins on the same ingress router. Default 2.
	KH int
	// NoiseP is the probability a fake-host FIB entry receives a deny
	// filter (route diversification). Default 0.1.
	NoiseP float64
	// Seed drives all randomness; equal seeds reproduce outputs exactly.
	Seed int64
	// Strategy selects the route-equivalence algorithm: "confmask"
	// (default, Algorithm 1), or the evaluation baselines "strawman1" /
	// "strawman2".
	Strategy string
	// FakeRouters additionally hides the router count by adding this
	// many fake routers with generated configurations (the paper's §9
	// scale-obfuscation extension; IGP-only networks).
	FakeRouters int
	// OutputSyntax selects the emitted configuration syntax: "" keeps
	// the input's (auto-detected) syntax, "ios" and "junos" force one.
	OutputSyntax string
	// Parallelism bounds the simulation engine's worker pool: 0 (or
	// negative) uses GOMAXPROCS, 1 forces sequential execution. The
	// anonymized output is byte-identical at any setting, so this only
	// trades wall-clock time for CPU.
	Parallelism int
	// Progress, when non-nil, receives pipeline stage transitions: one
	// call per stage plus one per route-equivalence iteration. It runs
	// synchronously on the pipeline goroutine, so it must return quickly;
	// it is ignored by JSON encoding (daemon job requests carry every
	// other field).
	Progress ProgressFunc `json:"-"`
	// Checkpoint, when non-nil, receives a resumable pipeline snapshot
	// after each completed stage (topology, equivalence, anonymity).
	// Like Progress it runs synchronously on the pipeline goroutine and
	// is excluded from JSON; confmaskd persists these snapshots so a
	// restarted daemon resumes jobs instead of replaying them.
	Checkpoint func(*Checkpoint) `json:"-"`
	// Resume, when non-nil, restarts the pipeline from the checkpoint:
	// completed stages are skipped and the random stream is
	// fast-forwarded, so the output is byte-identical to an
	// uninterrupted run with the same configs and options (seed
	// included). Excluded from JSON: a resumed job is still the same job.
	Resume *Checkpoint `json:"-"`
}

// Checkpoint is a resumable pipeline snapshot: the intermediate network in
// rendered form plus the bookkeeping (random-stream position, artifact
// marks, partial report) needed to continue a run in a fresh process with
// byte-identical output. It JSON-round-trips, which is how the service
// journal stores it.
type Checkpoint = anonymize.StageCheckpoint

// ProgressFunc observes pipeline progress. Stages arrive in order:
// "preprocess", "topology", "equivalence" (once per Algorithm 1 /
// strawman iteration, iteration ≥ 1), "anonymity" (Algorithm 2), and
// "render". Iteration is 0 for non-iterative stages.
type ProgressFunc func(stage string, iteration int)

// Stage names reported to Options.Progress, in pipeline order.
const (
	StagePreprocess  = "preprocess"
	StageTopology    = "topology"
	StageEquivalence = "equivalence"
	StageAnonymity   = "anonymity"
	StageRender      = "render"
)

// DefaultOptions returns the paper's default parameters (k_R=6, k_H=2,
// p=0.1).
func DefaultOptions() Options {
	return Options{KR: 6, KH: 2, NoiseP: 0.1, Strategy: "confmask"}
}

func (o Options) internal() (anonymize.Options, error) {
	opts := anonymize.DefaultOptions()
	if o.KR > 0 {
		opts.KR = o.KR
	}
	if o.KH > 0 {
		opts.KH = o.KH
	}
	if o.NoiseP > 0 {
		opts.NoiseP = o.NoiseP
	}
	opts.Seed = o.Seed
	opts.FakeRouters = o.FakeRouters
	opts.Parallelism = o.Parallelism
	opts.Progress = o.Progress
	opts.Checkpoint = o.Checkpoint
	opts.Resume = o.Resume
	switch strings.ToLower(o.Strategy) {
	case "", "confmask":
		opts.Strategy = anonymize.ConfMask
	case "strawman1":
		opts.Strategy = anonymize.Strawman1
	case "strawman2":
		opts.Strategy = anonymize.Strawman2
	default:
		return opts, fmt.Errorf("confmask: unknown strategy %q", o.Strategy)
	}
	return opts, nil
}

// Report summarizes what anonymization changed.
type Report struct {
	// FakeLinks lists added router-to-router links as "a<->b".
	FakeLinks []string
	// FakeHosts lists added twin hosts.
	FakeHosts []string
	// FakeRouters lists routers added by scale obfuscation.
	FakeRouters []string
	// Iterations is the number of route-equivalence fixing rounds.
	Iterations int
	// FiltersAdded counts route filters from equivalence fixing plus the
	// kept route-anonymity noise filters.
	FiltersAdded int
	// LinesAdded / LinesTotal give the configuration utility inputs
	// (N_l and P_l); UC is 1 − N_l/P_l.
	LinesAdded int
	LinesTotal int
	UC         float64
	// Duration is the end-to-end pipeline wall time.
	Duration time.Duration
	// Stages is the per-stage wall-time breakdown, keyed by the Stage*
	// constants ("preprocess", "topology", "equivalence", "anonymity",
	// "render"). Stages that did not run (e.g. "anonymity" with KH=1) are
	// absent.
	Stages map[string]time.Duration
	// StageAlloc is the per-stage heap-allocation breakdown in bytes
	// (runtime.MemStats.TotalAlloc deltas), keyed like Stages. It is the
	// memory-side view of the same pipeline run: a stage whose allocation
	// grows quadratically with the network shows up here long before the
	// process OOMs.
	StageAlloc map[string]uint64
}

// parseAny parses configurations in either supported syntax, auto-detected
// per input set (mixed-syntax sets are keyed off the first file).
func parseAny(configs map[string]string) (*config.Network, string, error) {
	syntax := "ios"
	for _, text := range configs {
		syntax = config.DetectSyntax(text)
		break
	}
	var net *config.Network
	var err error
	if syntax == "junos" {
		net, err = config.ParseJunosNetwork(configs)
	} else {
		net, err = config.ParseNetwork(configs)
	}
	return net, syntax, err
}

func renderAs(net *config.Network, syntax string) map[string]string {
	if syntax == "junos" {
		return net.RenderJunos()
	}
	return net.Render()
}

// Anonymize parses the configurations (text keyed by an arbitrary label,
// e.g. file name; Cisco-IOS-style and Junos-style syntaxes are
// auto-detected), runs the ConfMask pipeline, and returns the anonymized
// configurations keyed by hostname, in the input's syntax unless
// Options.OutputSyntax overrides it. It is AnonymizeContext with a
// background context: non-cancellable, no deadline.
func Anonymize(configs map[string]string, o Options) (map[string]string, *Report, error) {
	return AnonymizeContext(context.Background(), configs, o)
}

// AnonymizeContext is Anonymize with cancellation: the pipeline observes
// ctx between stages and between Algorithm 1 / strawman-2 iterations
// (where long runs spend their time) and returns ctx.Err() once it fires.
// Options.Progress, when set, observes the stage transitions.
func AnonymizeContext(ctx context.Context, configs map[string]string, o Options) (map[string]string, *Report, error) {
	opts, err := o.internal()
	if err != nil {
		return nil, nil, err
	}
	net, syntax, err := parseAny(configs)
	if err != nil {
		return nil, nil, err
	}
	if o.OutputSyntax != "" {
		syntax = o.OutputSyntax
	}
	anon, rep, err := anonymize.RunContext(ctx, net, opts)
	if err != nil {
		return nil, nil, err
	}
	if o.Progress != nil {
		o.Progress(StageRender, 0)
	}
	renderStart := time.Now()
	out := renderAs(anon, syntax)
	renderTime := time.Since(renderStart)
	stages := map[string]time.Duration{
		StagePreprocess:  rep.Timing.Preprocess,
		StageTopology:    rep.Timing.Topology,
		StageEquivalence: rep.Timing.RouteEquiv,
		StageRender:      renderTime,
	}
	if rep.Timing.RouteAnon > 0 {
		stages[StageAnonymity] = rep.Timing.RouteAnon
	}
	stageAlloc := map[string]uint64{
		StagePreprocess:  rep.Alloc.Preprocess,
		StageTopology:    rep.Alloc.Topology,
		StageEquivalence: rep.Alloc.RouteEquiv,
	}
	if rep.Timing.RouteAnon > 0 {
		stageAlloc[StageAnonymity] = rep.Alloc.RouteAnon
	}
	r := &Report{
		FakeHosts:    append([]string(nil), rep.FakeHosts...),
		FakeRouters:  append([]string(nil), rep.FakeRouters...),
		Iterations:   rep.EquivIterations,
		FiltersAdded: rep.EquivFilters + rep.AnonFilters,
		LinesAdded:   rep.AddedLines.Total(),
		LinesTotal:   rep.TotalLines,
		UC:           rep.UC,
		Duration:     rep.Timing.Total() + renderTime,
		Stages:       stages,
		StageAlloc:   stageAlloc,
	}
	for _, e := range rep.FakeEdges {
		r.FakeLinks = append(r.FakeLinks, e.A+"<->"+e.B)
	}
	return out, r, nil
}

// Verify re-simulates both configuration sets and returns an error unless
// they are functionally equivalent: identical forwarding paths between
// every pair of hosts present in the original network.
func Verify(original, anonymized map[string]string) error {
	o, _, err := parseAny(original)
	if err != nil {
		return fmt.Errorf("confmask: original: %w", err)
	}
	a, _, err := parseAny(anonymized)
	if err != nil {
		return fmt.Errorf("confmask: anonymized: %w", err)
	}
	so, err := sim.Simulate(o)
	if err != nil {
		return fmt.Errorf("confmask: simulate original: %w", err)
	}
	sa, err := sim.Simulate(a)
	if err != nil {
		return fmt.Errorf("confmask: simulate anonymized: %w", err)
	}
	hosts := o.Hosts()
	for _, h := range hosts {
		if a.Device(h) == nil {
			return fmt.Errorf("confmask: host %s missing from anonymized network", h)
		}
	}
	diffs := sim.DiffPairs(so.DataPlaneFor(hosts), sa.DataPlaneFor(hosts), hosts)
	if len(diffs) > 0 {
		return fmt.Errorf("confmask: %d host pairs forward differently (first: %s→%s)", len(diffs), diffs[0].Src, diffs[0].Dst)
	}
	return nil
}

// ApplyPII applies the PII add-on stage: keyed prefix-preserving IP
// anonymization plus hostname substitution. It returns the rewritten
// configurations (keyed by new hostname) and the old→new hostname map,
// which the data owner keeps private.
func ApplyPII(configs map[string]string, key []byte) (map[string]string, map[string]string, error) {
	net, syntax, err := parseAny(configs)
	if err != nil {
		return nil, nil, err
	}
	anon, names := anonymize.ApplyPII(net, key)
	return renderAs(anon, syntax), names, nil
}

// Info describes a parsed network.
type Info struct {
	Routers, Hosts, Links int
	ConfigLines           int
	// MinSameDegree is k_d: the minimum number of routers sharing a
	// router degree (the network is k-degree anonymous for k ≤ k_d).
	MinSameDegree int
	// Protocols lists the routing protocols in use.
	Protocols []string
}

// Inspect parses configurations and reports the recoverable structure —
// exactly what an adversary extracts (§2.2 of the paper).
func Inspect(configs map[string]string) (*Info, error) {
	net, _, err := parseAny(configs)
	if err != nil {
		return nil, err
	}
	view, err := sim.Build(net)
	if err != nil {
		return nil, err
	}
	g := view.Topology()
	protos := map[string]bool{}
	for _, r := range net.Routers() {
		d := net.Device(r)
		if d.OSPF != nil {
			protos["ospf"] = true
		}
		if d.RIP != nil {
			protos["rip"] = true
		}
		if d.EIGRP != nil {
			protos["eigrp"] = true
		}
		if d.BGP != nil {
			protos["bgp"] = true
		}
	}
	var plist []string
	for p := range protos {
		plist = append(plist, p)
	}
	sort.Strings(plist)
	return &Info{
		Routers:       len(net.Routers()),
		Hosts:         len(net.Hosts()),
		Links:         g.NumEdges(),
		ConfigLines:   net.LineStats().Total(),
		MinSameDegree: g.MinSameDegreeCount(),
		Protocols:     plist,
	}, nil
}

// Trace simulates the network and returns every forwarding path from host
// src to host dst as device-name sequences (ECMP branches included). The
// boolean reports whether traffic is delivered on all paths.
func Trace(configs map[string]string, src, dst string) ([][]string, bool, error) {
	net, _, err := parseAny(configs)
	if err != nil {
		return nil, false, err
	}
	snap, err := sim.Simulate(net)
	if err != nil {
		return nil, false, err
	}
	paths := snap.Trace(src, dst)
	if len(paths) == 0 {
		return nil, false, fmt.Errorf("confmask: no path data for %s→%s (unknown hosts?)", src, dst)
	}
	ok := true
	var out [][]string
	for _, p := range paths {
		out = append(out, append([]string(nil), p.Hops...))
		if p.Status != sim.Delivered {
			ok = false
		}
	}
	return out, ok, nil
}

// Audit builds a pre-sharing review of an anonymized bundle: it re-checks
// functional equivalence, runs this repository's de-anonymization attacks
// against the output, and renders a Markdown report. safe is true when no
// red flag was found (the output may be shared as-is).
func Audit(original, anonymized map[string]string, o Options) (markdown string, safe bool, err error) {
	opts, err := o.internal()
	if err != nil {
		return "", false, err
	}
	on, _, err := parseAny(original)
	if err != nil {
		return "", false, err
	}
	an, _, err := parseAny(anonymized)
	if err != nil {
		return "", false, err
	}
	a, err := report.BuildFromNetworks("configuration bundle", on, an, opts)
	if err != nil {
		return "", false, err
	}
	return a.Markdown(), a.Safe(), nil
}

// SpecComparison reports how the specifications (reachability, waypoint,
// load-balance policies) mined from an anonymized network relate to the
// original's — the utility evidence a data holder can attach when sharing.
type SpecComparison struct {
	// Kept / Missing / Introduced are canonical policy strings.
	Kept, Missing, Introduced []string
	// KeptFraction is |Kept| / |original specs|.
	KeptFraction float64
	// IntroducedFakeFraction is the share of introduced policies that
	// only reference fake hosts (benign by construction).
	IntroducedFakeFraction float64
}

// MineSpecs simulates the network and mines its specification set in
// Config2Spec's shape — per (source router, destination host) policies:
// Reachability(router→host), Waypoint(router→host via device), and
// LoadBalance(router→host over n paths), as canonical strings.
func MineSpecs(configs map[string]string) ([]string, error) {
	net, _, err := parseAny(configs)
	if err != nil {
		return nil, err
	}
	snap, err := sim.Simulate(net)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, p := range spec.Mine(snap, net.Routers(), net.Hosts()) {
		out = append(out, p.Key())
	}
	return out, nil
}

// CompareSpecs mines both networks and diffs their specification sets.
func CompareSpecs(original, anonymized map[string]string) (*SpecComparison, error) {
	o, _, err := parseAny(original)
	if err != nil {
		return nil, err
	}
	a, _, err := parseAny(anonymized)
	if err != nil {
		return nil, err
	}
	so, err := sim.Simulate(o)
	if err != nil {
		return nil, err
	}
	sa, err := sim.Simulate(a)
	if err != nil {
		return nil, err
	}
	origSpecs := spec.Mine(so, o.Routers(), o.Hosts())
	anonSpecs := spec.Mine(sa, a.Routers(), a.Hosts())
	cmp := spec.Compare(origSpecs, anonSpecs, spec.IsFakeBySuffix())
	out := &SpecComparison{
		KeptFraction:           cmp.KeptFraction(),
		IntroducedFakeFraction: cmp.FakeFraction(),
	}
	for _, p := range cmp.Kept {
		out.Kept = append(out.Kept, p.Key())
	}
	for _, p := range cmp.Missing {
		out.Missing = append(out.Missing, p.Key())
	}
	for _, p := range cmp.Introduced {
		out.Introduced = append(out.Introduced, p.Key())
	}
	return out, nil
}

// RouteInfo is one forwarding-table entry of a simulated router.
type RouteInfo struct {
	// Prefix is the destination in CIDR form.
	Prefix string
	// Source is the installing protocol: connected, static, ebgp, eigrp,
	// ospf, rip, or ibgp.
	Source string
	// Metric is the protocol metric (0 for connected/static).
	Metric int
	// NextHops lists the next-hop devices with outgoing interfaces as
	// "device (interface)".
	NextHops []string
}

// Routes simulates the network and returns the named router's forwarding
// table in prefix order — the `show ip route` of the simulator, useful
// for debugging shared bundles without real hardware.
func Routes(configs map[string]string, router string) ([]RouteInfo, error) {
	net, _, err := parseAny(configs)
	if err != nil {
		return nil, err
	}
	if d := net.Device(router); d == nil {
		return nil, fmt.Errorf("confmask: unknown device %q", router)
	}
	snap, err := sim.Simulate(net)
	if err != nil {
		return nil, err
	}
	fib := snap.FIB(router)
	var out []RouteInfo
	for _, p := range fib.Prefixes() {
		rt := fib[p]
		info := RouteInfo{Prefix: p.String(), Source: rt.Source.String(), Metric: rt.Metric}
		for _, nh := range rt.NextHops {
			info.NextHops = append(info.NextHops, fmt.Sprintf("%s (%s)", nh.Device, nh.Iface))
		}
		out = append(out, info)
	}
	return out, nil
}

// ExampleNetworks lists the built-in evaluation networks (the paper's
// Table 2) available to GenerateExample.
func ExampleNetworks() []string {
	var out []string
	for _, s := range netgen.Catalog() {
		out = append(out, s.Name)
	}
	return out
}

// GenerateExample builds one of the built-in evaluation networks and
// returns its configurations keyed by hostname. Accepted names are the
// Table 2 IDs ("A".."H") or names ("Enterprise", "FatTree04", ...).
func GenerateExample(name string) (map[string]string, error) {
	s, err := netgen.ByID(name)
	if err != nil {
		return nil, err
	}
	cfg, err := s.Build()
	if err != nil {
		return nil, err
	}
	return cfg.Render(), nil
}

// ReadConfigDir loads every configuration file in dir, keyed by file
// name. Subdirectories, non-regular files (sockets, devices, dangling
// symlinks), hidden files, and editor leftovers (*.bak, *.orig, *.swp,
// *.tmp, *~) are skipped — a real config drop often carries those, and
// parsing a backup copy would silently double a router.
func ReadConfigDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || skipConfigFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		// Stat (not the entry's Lstat-like Type) so a symlink counts as
		// what it points at; anything not a regular file is skipped.
		fi, err := os.Stat(path)
		if err != nil || !fi.Mode().IsRegular() {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		out[e.Name()] = string(data)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("confmask: no configuration files in %s", dir)
	}
	return out, nil
}

// skipConfigFile reports whether a directory entry is clearly not a
// configuration: hidden files and common backup/editor suffixes.
func skipConfigFile(name string) bool {
	if strings.HasPrefix(name, ".") || strings.HasSuffix(name, "~") {
		return true
	}
	switch strings.ToLower(filepath.Ext(name)) {
	case ".bak", ".orig", ".swp", ".tmp":
		return true
	}
	return false
}

// WriteConfigDir writes configurations into dir (created if needed), one
// ".cfg" file per device.
func WriteConfigDir(dir string, configs map[string]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, text := range configs {
		fn := name
		if !strings.HasSuffix(fn, ".cfg") {
			fn += ".cfg"
		}
		if err := os.WriteFile(filepath.Join(dir, fn), []byte(text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
