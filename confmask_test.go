package confmask

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func exampleConfigs(t *testing.T, name string) map[string]string {
	t.Helper()
	configs, err := GenerateExample(name)
	if err != nil {
		t.Fatalf("GenerateExample(%s): %v", name, err)
	}
	return configs
}

func TestAnonymizeEndToEnd(t *testing.T) {
	configs := exampleConfigs(t, "Enterprise")
	opts := DefaultOptions()
	opts.Seed = 5
	anon, rep, err := Anonymize(configs, opts)
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if err := Verify(configs, anon); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(rep.FakeHosts) != 8 { // k_H−1 per host, 8 hosts
		t.Fatalf("fake hosts = %d", len(rep.FakeHosts))
	}
	if rep.UC <= 0 || rep.UC >= 1 {
		t.Fatalf("U_C = %v", rep.UC)
	}
	if rep.LinesTotal <= rep.LinesAdded {
		t.Fatalf("line accounting wrong: %+v", rep)
	}
	info, err := Inspect(anon)
	if err != nil {
		t.Fatal(err)
	}
	if info.MinSameDegree < opts.KR {
		t.Fatalf("k_d = %d < %d", info.MinSameDegree, opts.KR)
	}
}

func TestAnonymizeBadStrategy(t *testing.T) {
	configs := exampleConfigs(t, "Backbone")
	opts := DefaultOptions()
	opts.Strategy = "nonsense"
	if _, _, err := Anonymize(configs, opts); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

func TestAnonymizeBadConfigs(t *testing.T) {
	if _, _, err := Anonymize(map[string]string{"x": "interface Y\n"}, DefaultOptions()); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestVerifyDetectsDifference(t *testing.T) {
	configs := exampleConfigs(t, "Backbone")
	broken := map[string]string{}
	for k, v := range configs {
		broken[k] = v
	}
	// Raise an OSPF cost on a transit link: forwarding changes.
	for name, text := range broken {
		if strings.Contains(text, "router ospf") && strings.Contains(text, "to-r2") {
			broken[name] = strings.Replace(text, "interface GigabitEthernet1/0/0\n", "interface GigabitEthernet1/0/0\n ip ospf cost 200\n", 1)
			_ = name
			break
		}
	}
	if err := Verify(configs, broken); err == nil {
		t.Skip("cost change did not alter forwarding on this topology")
	}
}

func TestVerifyMissingHost(t *testing.T) {
	configs := exampleConfigs(t, "Backbone")
	partial := map[string]string{}
	for k, v := range configs {
		if k != "h1" {
			partial[k] = v
		}
	}
	if err := Verify(configs, partial); err == nil {
		t.Fatal("expected error when a host disappears")
	}
}

func TestTraceAPI(t *testing.T) {
	configs := exampleConfigs(t, "Backbone")
	paths, ok, err := Trace(configs, "h1", "h9")
	if err != nil || !ok {
		t.Fatalf("Trace: %v ok=%v", err, ok)
	}
	if len(paths) == 0 || paths[0][0] != "h1" {
		t.Fatalf("paths = %v", paths)
	}
	if _, _, err := Trace(configs, "h1", "nope"); err == nil {
		t.Fatal("expected error for unknown host")
	}
}

func TestApplyPIIAPI(t *testing.T) {
	configs := exampleConfigs(t, "Backbone")
	anon, names, err := ApplyPII(configs, []byte("key"))
	if err != nil {
		t.Fatal(err)
	}
	if len(anon) != len(configs) || len(names) != len(configs) {
		t.Fatalf("size mismatch: %d %d", len(anon), len(names))
	}
	for _, text := range anon {
		if strings.Contains(text, "hostname r1\n") {
			t.Fatal("original hostname leaked")
		}
	}
}

func TestMineAndCompareSpecs(t *testing.T) {
	configs := exampleConfigs(t, "Backbone")
	specs, err := MineSpecs(configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no specs mined")
	}
	opts := DefaultOptions()
	opts.Seed = 3
	anon, _, err := Anonymize(configs, opts)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareSpecs(configs, anon)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.KeptFraction != 1 {
		t.Fatalf("ConfMask must keep every spec; kept %v (missing %v)", cmp.KeptFraction, cmp.Missing)
	}
	if len(cmp.Introduced) > 0 && cmp.IntroducedFakeFraction < 0.9 {
		t.Fatalf("introduced specs should overwhelmingly reference fake hosts: %v", cmp.IntroducedFakeFraction)
	}
}

func TestExampleNetworksAndGenerate(t *testing.T) {
	names := ExampleNetworks()
	if len(names) != 8 {
		t.Fatalf("networks = %v", names)
	}
	if _, err := GenerateExample("B"); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateExample("unknown"); err == nil {
		t.Fatal("expected error")
	}
}

func TestReadWriteConfigDir(t *testing.T) {
	dir := t.TempDir()
	configs := exampleConfigs(t, "Backbone")
	if err := WriteConfigDir(filepath.Join(dir, "out"), configs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfigDir(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(configs) {
		t.Fatalf("read %d files, wrote %d", len(got), len(configs))
	}
	// Files parse back into the same network.
	if err := Verify(configs, got); err != nil {
		t.Fatalf("round-tripped configs not equivalent: %v", err)
	}
	if _, err := ReadConfigDir(filepath.Join(dir, "empty")); err == nil {
		t.Fatal("expected error for missing dir")
	}
	empty := filepath.Join(dir, "emptydir")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadConfigDir(empty); err == nil {
		t.Fatal("expected error for empty dir")
	}
}

func TestReadConfigDirSkipsNonConfigs(t *testing.T) {
	dir := t.TempDir()
	configs := exampleConfigs(t, "Backbone")
	if err := WriteConfigDir(dir, configs); err != nil {
		t.Fatal(err)
	}
	// A nested folder (with a config-looking file inside), a backup copy
	// of a real config, and a hidden file must all be ignored.
	sub := filepath.Join(dir, "archive")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		filepath.Join(sub, "old-r1.cfg"),
		filepath.Join(dir, "r1.cfg.bak"),
		filepath.Join(dir, ".DS_Store"),
		filepath.Join(dir, "r2.cfg~"),
	} {
		if err := os.WriteFile(f, []byte("hostname duplicate\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadConfigDir(dir)
	if err != nil {
		t.Fatalf("ReadConfigDir: %v", err)
	}
	if len(got) != len(configs) {
		t.Fatalf("read %d files, want the %d real configs", len(got), len(configs))
	}
	for name := range got {
		if strings.HasSuffix(name, ".bak") || strings.HasSuffix(name, "~") || strings.HasPrefix(name, ".") {
			t.Fatalf("non-config %q was read", name)
		}
	}
	// The junk must not change what the bundle parses into.
	if err := Verify(configs, got); err != nil {
		t.Fatalf("bundle with junk files not equivalent: %v", err)
	}
}

func TestAnonymizeContextCancelAndProgress(t *testing.T) {
	configs := exampleConfigs(t, "Enterprise")
	opts := DefaultOptions()
	opts.Seed = 5

	// A pre-cancelled context stops the pipeline before any work.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := AnonymizeContext(cancelled, configs, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}

	// A full run reports stages in pipeline order, ending with render.
	var stages []string
	var equivIters int
	opts.Progress = func(stage string, iteration int) {
		if len(stages) == 0 || stages[len(stages)-1] != stage {
			stages = append(stages, stage)
		}
		if stage == StageEquivalence && iteration > equivIters {
			equivIters = iteration
		}
	}
	anon, rep, err := AnonymizeContext(context.Background(), configs, opts)
	if err != nil {
		t.Fatalf("AnonymizeContext: %v", err)
	}
	want := []string{StagePreprocess, StageTopology, StageEquivalence, StageAnonymity, StageRender}
	if strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	if equivIters != rep.Iterations {
		t.Fatalf("progress saw %d equivalence iterations, report says %d", equivIters, rep.Iterations)
	}

	// Context plumbing must not change the output: same seed, same result.
	opts.Progress = nil
	direct, _, err := Anonymize(configs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(anon) {
		t.Fatalf("context run produced %d configs, direct run %d", len(anon), len(direct))
	}
	for name, text := range direct {
		if anon[name] != text {
			t.Fatalf("config %s differs between context and direct runs", name)
		}
	}
}

func TestRoutesAPI(t *testing.T) {
	configs := exampleConfigs(t, "Backbone")
	routes, err := Routes(configs, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("empty FIB")
	}
	sources := map[string]bool{}
	for _, r := range routes {
		if len(r.NextHops) == 0 {
			t.Fatalf("route %s has no next hops", r.Prefix)
		}
		sources[r.Source] = true
	}
	// A BGP+OSPF border router must hold connected, OSPF, and BGP routes.
	for _, want := range []string{"connected", "ospf"} {
		if !sources[want] {
			t.Errorf("missing %s routes (got %v)", want, sources)
		}
	}
	if !sources["ebgp"] && !sources["ibgp"] {
		t.Errorf("missing BGP routes (got %v)", sources)
	}
	if _, err := Routes(configs, "nope"); err == nil {
		t.Fatal("unknown router accepted")
	}
}

func TestAuditAPI(t *testing.T) {
	configs := exampleConfigs(t, "Backbone")
	opts := DefaultOptions()
	opts.KR = 4
	opts.Seed = 6
	anon, _, err := Anonymize(configs, opts)
	if err != nil {
		t.Fatal(err)
	}
	md, safe, err := Audit(configs, anon, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Fatalf("ConfMask output should audit safe:\n%s", md)
	}
	if !strings.Contains(md, "SAFE TO SHARE") {
		t.Fatal("verdict missing from audit markdown")
	}
	// An un-anonymized bundle audits as equivalent but with k_d likely
	// below k_R → not necessarily unsafe; instead audit a tampered one.
	broken := map[string]string{}
	for k, v := range anon {
		broken[k] = strings.ReplaceAll(v, "deny", "permit")
	}
	_, safe2, err := Audit(configs, broken, opts)
	if err != nil {
		t.Fatal(err)
	}
	if safe2 {
		t.Fatal("bundle with disabled filters must not audit safe")
	}
}

func TestInspectAPI(t *testing.T) {
	configs := exampleConfigs(t, "University")
	info, err := Inspect(configs)
	if err != nil {
		t.Fatal(err)
	}
	if info.Routers != 13 || info.Hosts != 8 || info.Links != 25 {
		t.Fatalf("info = %+v", info)
	}
	if strings.Join(info.Protocols, ",") != "bgp,ospf" {
		t.Fatalf("protocols = %v", info.Protocols)
	}
}
