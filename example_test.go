package confmask_test

import (
	"fmt"
	"log"

	"confmask"
)

// ExampleAnonymize anonymizes a built-in network with the paper's default
// parameters and verifies functional equivalence.
func ExampleAnonymize() {
	configs, err := confmask.GenerateExample("Enterprise")
	if err != nil {
		log.Fatal(err)
	}
	opts := confmask.DefaultOptions() // k_R=6, k_H=2, p=0.1
	opts.Seed = 1
	anon, report, err := confmask.Anonymize(configs, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fake hosts added:", len(report.FakeHosts))
	fmt.Println("equivalent:", confmask.Verify(configs, anon) == nil)
	// Output:
	// fake hosts added: 8
	// equivalent: true
}

// ExampleInspect shows what an adversary can recover from raw
// configurations.
func ExampleInspect() {
	configs, err := confmask.GenerateExample("Backbone")
	if err != nil {
		log.Fatal(err)
	}
	info, err := confmask.Inspect(configs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d routers, %d hosts, %d links\n", info.Routers, info.Hosts, info.Links)
	// Output:
	// 11 routers, 9 hosts, 22 links
}

// ExampleTrace simulates forwarding between two hosts.
func ExampleTrace() {
	configs, err := confmask.GenerateExample("Backbone")
	if err != nil {
		log.Fatal(err)
	}
	paths, delivered, err := confmask.Trace(configs, "h1", "h4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paths:", len(paths), "delivered:", delivered)
	// Output:
	// paths: 1 delivered: true
}
