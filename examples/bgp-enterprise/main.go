// BGP enterprise sharing: anonymizing a multi-AS network.
//
// BGP networks need two-level topology anonymization (§4.2 of the paper):
// the router graph inside each AS is k-anonymized independently, then the
// AS-level supergraph is anonymized by adding eBGP links between randomly
// chosen border routers. Route equivalence must then hold across eBGP,
// iBGP, and the intra-AS IGP simultaneously.
//
// This example anonymizes the built-in University network (three ASes,
// BGP+OSPF), shows that inter-AS paths survive exactly, that fake eBGP
// sessions appear in the shared configs, and finishes with the PII add-on
// stage (prefix-preserving IP anonymization + hostname substitution).
//
// Run with: go run ./examples/bgp-enterprise
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"confmask"
)

func main() {
	configs, err := confmask.GenerateExample("University")
	if err != nil {
		log.Fatal(err)
	}

	opts := confmask.DefaultOptions()
	opts.KR = 6
	opts.KH = 2
	opts.Seed = 99
	anon, report, err := confmask.Anonymize(configs, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := confmask.Verify(configs, anon); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized %d-device BGP+OSPF network, equivalence verified\n", len(configs))
	fmt.Printf("fake links: %s\n", strings.Join(report.FakeLinks, ", "))

	// Inter-AS forwarding is preserved exactly: h1 sits in the core AS,
	// h5 in a department AS.
	for _, pair := range [][2]string{{"h1", "h5"}, {"h5", "h1"}, {"h3", "h6"}} {
		orig, _, err := confmask.Trace(configs, pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		anonP, _, err := confmask.Trace(anon, pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		if strings.Join(orig[0], ",") != strings.Join(anonP[0], ",") {
			log.Fatalf("%s→%s path changed", pair[0], pair[1])
		}
		fmt.Printf("%s→%s preserved: %s\n", pair[0], pair[1], strings.Join(orig[0], " → "))
	}

	// Count the eBGP sessions visible in the shared configs: the fake
	// inter-AS links add plausible sessions an adversary cannot tell
	// apart from real ones.
	count := func(cfgs map[string]string) int {
		n := 0
		for _, text := range cfgs {
			n += strings.Count(text, "remote-as")
		}
		return n
	}
	fmt.Printf("BGP neighbor statements: %d before → %d after\n", count(configs), count(anon))

	// PII add-on: prefix-preserving addresses, substituted hostnames.
	shared, names, err := confmask.ApplyPII(anon, []byte("org-secret-key"))
	if err != nil {
		log.Fatal(err)
	}
	var renames []string
	for old, nn := range names {
		if strings.HasPrefix(old, "r1") {
			renames = append(renames, old+"→"+nn)
		}
	}
	sort.Strings(renames)
	fmt.Printf("PII stage renamed %d devices (e.g. %s)\n", len(names), strings.Join(renames[:2], ", "))

	// The fully shared bundle still simulates and still hides structure.
	info, err := confmask.Inspect(shared)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shareable bundle: %d routers, %d hosts, %d links, protocols=%s, k_d=%d\n",
		info.Routers, info.Hosts, info.Links, strings.Join(info.Protocols, "+"), info.MinSameDegree)
}
