// Fat-tree troubleshooting: the paper's §2.3 motivating case study.
//
// Users report high delay and loss from host hA to host hB in a FatTree-04
// network. The root cause is a QoS misconfiguration on a core router: a
// traffic policy remarks management traffic to a low-priority DSCP class,
// which then starves in a congested WRR queue on a downstream aggregation
// router. The operator wants outside help but cannot share raw configs.
//
// The case study's point: an anonymization that rewrites forwarding paths
// (like NetHide's virtual topology) hides the misconfigured waypoint, and
// the remote engineer proposes fixes on fake interfaces. ConfMask preserves
// every path exactly, so the trace still crosses the misconfigured core
// router and the QoS lines survive verbatim — the problem stays
// diagnosable on the anonymized network.
//
// Run with: go run ./examples/fattree-troubleshoot
package main

import (
	"fmt"
	"log"
	"strings"

	"confmask"
)

const (
	hostA    = "h3-0-0" // pod 3 user
	hostB    = "h1-0-0" // pod 1 service
	qosLines = `!
traffic classifier is_mgmt_traffic
traffic behavior remark_mgmt_dscp
qos queue 2 wrr weight 10
qos queue 7 wrr weight 90
`
)

func main() {
	configs, err := confmask.GenerateExample("FatTree04")
	if err != nil {
		log.Fatal(err)
	}

	// Find the routers the hA→hB traffic actually crosses, then plant the
	// misconfiguration on the core router of that path (the paper's c2).
	paths, _, err := confmask.Trace(configs, hostA, hostB)
	if err != nil {
		log.Fatal(err)
	}
	var core string
	for _, hop := range paths[0] {
		if strings.HasPrefix(hop, "core") {
			core = hop
			break
		}
	}
	if core == "" {
		log.Fatal("no core router on the path")
	}
	fmt.Printf("symptomatic flow %s→%s crosses %d ECMP paths; first: %s\n",
		hostA, hostB, len(paths), strings.Join(paths[0], " → "))
	fmt.Printf("planting QoS misconfiguration on %s (low-priority remark for mgmt traffic)\n\n", core)
	configs[core] += qosLines

	// Anonymize and verify.
	opts := confmask.DefaultOptions()
	opts.Seed = 7
	anon, report, err := confmask.Anonymize(configs, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := confmask.Verify(configs, anon); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized: %d fake links, %d fake hosts, U_C=%.3f — functional equivalence verified\n",
		len(report.FakeLinks), len(report.FakeHosts), report.UC)

	// Diagnosability check 1: the trace in the shared configs still
	// crosses the misconfigured core router (waypoint preserved).
	anonPaths, _, err := confmask.Trace(anon, hostA, hostB)
	if err != nil {
		log.Fatal(err)
	}
	onPath := false
	for _, p := range anonPaths {
		for _, hop := range p {
			if hop == core {
				onPath = true
			}
		}
	}
	if !onPath {
		log.Fatalf("waypoint %s lost — root cause would be invisible", core)
	}
	fmt.Printf("waypoint preserved: anonymized trace still crosses %s\n", core)

	// Diagnosability check 2: the QoS lines survive verbatim, so the
	// remote engineer sees the wrong DSCP remark and the starved queue.
	if !strings.Contains(anon[core], "remark_mgmt_dscp") || !strings.Contains(anon[core], "wrr weight 10") {
		log.Fatal("QoS misconfiguration lines were altered by anonymization")
	}
	fmt.Printf("root-cause lines intact on %s:\n", core)
	for _, ln := range strings.Split(anon[core], "\n") {
		if strings.Contains(ln, "mgmt") || strings.Contains(ln, "wrr") {
			fmt.Printf("    %s\n", ln)
		}
	}

	// Meanwhile the sensitive structure is hidden.
	info, err := confmask.Inspect(anon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared network hides the real topology: %d links (was 48), k_d=%d\n",
		info.Links, info.MinSameDegree)
	fmt.Println("an engineer can now debug the QoS issue without learning the real fabric")
}
