// Quickstart: anonymize a network and verify functional equivalence.
//
// This example generates a small built-in enterprise network (the paper's
// network A), inspects the sensitive structure an adversary could recover,
// anonymizes it with the default parameters (k_R=6, k_H=2), verifies that
// every host-to-host forwarding path is preserved exactly, and shows what
// changed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"confmask"
)

func main() {
	// 1. Obtain configurations. A real user calls
	//    confmask.ReadConfigDir("path/to/configs") instead.
	configs, err := confmask.GenerateExample("Enterprise")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d device configurations\n", len(configs))

	// 2. What can an adversary learn from the raw files?
	before, err := confmask.Inspect(configs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: %d routers, %d hosts, %d links, k_d=%d (topology fully recoverable)\n",
		before.Routers, before.Hosts, before.Links, before.MinSameDegree)

	// 3. Anonymize with the paper's default parameters.
	opts := confmask.DefaultOptions()
	opts.Seed = 2024
	anon, report, err := confmask.Anonymize(configs, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized in %v: %d fake links, %d fake hosts, %d route filters\n",
		report.Duration.Round(1e6), len(report.FakeLinks), len(report.FakeHosts), report.FiltersAdded)
	fmt.Printf("injected %d of %d lines (configuration utility U_C = %.3f)\n",
		report.LinesAdded, report.LinesTotal, report.UC)

	// 4. Verify the paper's headline guarantee: functional equivalence.
	if err := confmask.Verify(configs, anon); err != nil {
		log.Fatalf("equivalence check failed: %v", err)
	}
	fmt.Println("verified: all original host-to-host paths preserved exactly")

	// 5. The anonymized topology is k-degree anonymous.
	after, err := confmask.Inspect(anon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after: %d routers, %d hosts, %d links, k_d=%d (≥ k_R=%d)\n",
		after.Routers, after.Hosts, after.Links, after.MinSameDegree, opts.KR)

	// 6. Forwarding is unchanged for real hosts — compare a trace.
	origPath, _, err := confmask.Trace(configs, "h1", "h8")
	if err != nil {
		log.Fatal(err)
	}
	anonPath, _, err := confmask.Trace(anon, "h1", "h8")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("h1→h8 original:    %s\n", strings.Join(origPath[0], " → "))
	fmt.Printf("h1→h8 anonymized:  %s\n", strings.Join(anonPath[0], " → "))
}
