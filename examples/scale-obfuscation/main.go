// Scale obfuscation: hiding the router count (the paper's §9 extension).
//
// ConfMask's core pipeline keeps the set of routers fixed — the paper
// argues the count alone identifies little — but sketches an extension
// where graph-anonymization algorithms that *add nodes* plug into the same
// workflow. This example exercises that extension: fake routers with
// generated configurations join the topology before k-degree
// anonymization, so the shared network overstates the fleet while every
// real forwarding path still survives exactly.
//
// It also demonstrates the multi-vendor codec: the anonymized bundle is
// emitted in Junos-style syntax even though the input was Cisco-IOS-style.
//
// Run with: go run ./examples/scale-obfuscation
package main

import (
	"fmt"
	"log"
	"strings"

	"confmask"
)

func main() {
	configs, err := confmask.GenerateExample("Bics")
	if err != nil {
		log.Fatal(err)
	}
	before, err := confmask.Inspect(configs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original carrier network: %d routers, %d hosts, %d links\n",
		before.Routers, before.Hosts, before.Links)

	opts := confmask.DefaultOptions()
	opts.Seed = 11
	opts.FakeRouters = 8
	anon, report, err := confmask.Anonymize(configs, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := confmask.Verify(configs, anon); err != nil {
		log.Fatal(err)
	}
	after, err := confmask.Inspect(anon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared network:           %d routers (+%d fake: %s, ...)\n",
		after.Routers, len(report.FakeRouters), strings.Join(report.FakeRouters[:3], ", "))
	fmt.Printf("k-degree anonymity over ALL routers (real and fake): k_d=%d ≥ k_R=%d\n",
		after.MinSameDegree, opts.KR)
	fmt.Println("functional equivalence verified: no real path touches a fake router,")
	fmt.Println("yet each fake router holds ordinary routing tables and blends in")

	// Emit the shareable bundle in a different vendor syntax.
	junosOpts := confmask.Options{KR: 1, KH: 1, Seed: 1, OutputSyntax: "junos"}
	junos, _, err := confmask.Anonymize(anon, junosOpts)
	if err != nil {
		log.Fatal(err)
	}
	sample := ""
	for name, text := range junos {
		if strings.HasPrefix(name, "fr") {
			sample = name + ":\n"
			for i, ln := range strings.Split(text, "\n") {
				if i == 6 {
					break
				}
				sample += "    " + ln + "\n"
			}
			break
		}
	}
	fmt.Printf("\nfake router emitted in Junos syntax, indistinguishable in form:\n%s", sample)
	fmt.Printf("(%d devices total in the Junos bundle)\n", len(junos))
}
