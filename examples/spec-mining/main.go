// Spec mining: quantifying the utility of an anonymized network.
//
// Before sharing anonymized configurations, a data holder can attach
// evidence that downstream analyses will still be valid. This example
// mines Config2Spec-style specifications — Reachability, Waypoint, and
// LoadBalance policies — from the original and the anonymized network and
// diffs them, the methodology behind Fig. 9 of the paper.
//
// Expected outcome (and the contrast with NetHide): ConfMask keeps 100% of
// the original specifications because the data plane is preserved exactly;
// everything it introduces references only fake hosts.
//
// Run with: go run ./examples/spec-mining
package main

import (
	"fmt"
	"log"
	"strings"

	"confmask"
)

func main() {
	configs, err := confmask.GenerateExample("Backbone")
	if err != nil {
		log.Fatal(err)
	}

	origSpecs, err := confmask.MineSpecs(configs)
	if err != nil {
		log.Fatal(err)
	}
	byType := map[string]int{}
	for _, s := range origSpecs {
		byType[strings.SplitN(s, "|", 2)[0]]++
	}
	fmt.Printf("original network: %d specifications (%d reachability, %d waypoint, %d loadbalance)\n",
		len(origSpecs), byType["reachability"], byType["waypoint"], byType["loadbalance"])

	opts := confmask.DefaultOptions()
	opts.KH = 4 // the paper's Fig. 9 setting
	opts.Seed = 17
	anon, _, err := confmask.Anonymize(configs, opts)
	if err != nil {
		log.Fatal(err)
	}

	cmp, err := confmask.CompareSpecs(configs, anon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after ConfMask (k_R=6, k_H=4):\n")
	fmt.Printf("  kept:       %d/%d (%.1f%%)\n", len(cmp.Kept), len(cmp.Kept)+len(cmp.Missing), 100*cmp.KeptFraction)
	fmt.Printf("  missing:    %d\n", len(cmp.Missing))
	fmt.Printf("  introduced: %d, of which %.1f%% reference only fake hosts\n",
		len(cmp.Introduced), 100*cmp.IntroducedFakeFraction)

	if len(cmp.Missing) > 0 {
		log.Fatalf("unexpected: ConfMask lost specifications: %v", cmp.Missing[:min(3, len(cmp.Missing))])
	}
	fmt.Println("\nsample introduced (benign, fake-host) specifications:")
	for i, s := range cmp.Introduced {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", s)
	}
	fmt.Println("\nevery original specification survives — downstream verification")
	fmt.Println("tools (reachability audits, waypoint checks) give identical answers")
	fmt.Println("on the shared network.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
