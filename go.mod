module confmask

go 1.22
