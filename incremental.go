package confmask

import (
	"fmt"
	"sort"

	"confmask/internal/anonymize"
	"confmask/internal/config"
	"confmask/internal/sim"
)

// ImportCheckpoint adapts a finished base run's checkpoint so it can seed a
// run over an edited copy of the same network. It succeeds only when the
// edit is decision-identical: every device in newConfigs parses to the same
// semantic content as its counterpart in baseConfigs (config.SemanticDiff),
// differing at most in fields the pipeline never reads — free-text
// interface descriptions and unrecognized passthrough lines. For such an
// edit the pipeline would make exactly the same choices (same simulations,
// same fake artifacts, same RNG draws), so the base checkpoint is valid for
// the new input once the cosmetic fields are transplanted into its
// intermediate configs. Resuming from the returned checkpoint then yields
// output byte-identical to a from-scratch run over newConfigs, while
// skipping every stage the checkpoint covers — including preprocessing.
//
// The checkpoint must cover the whole decision-making pipeline for the
// options in o: stage "anonymity", or stage "equivalence" when k_H ≤ 1
// disables route anonymity. Both bundles must be Cisco-IOS-style (the
// checkpoint's intermediate form), and o must not redirect output to
// another syntax.
//
// It returns the adapted checkpoint and the sorted hostnames whose
// cosmetic content changed. The error, when non-nil, names the first gate
// that failed; callers fall back to a full run and can surface the reason.
func ImportCheckpoint(base *Checkpoint, baseConfigs, newConfigs map[string]string, o Options) (*Checkpoint, []string, error) {
	if base == nil || len(base.Configs) == 0 {
		return nil, nil, fmt.Errorf("base job has no checkpoint")
	}
	effKH := o.KH
	if effKH == 0 {
		effKH = DefaultOptions().KH
	}
	switch base.Stage {
	case "anonymity":
	case "equivalence":
		if effKH > 1 {
			return nil, nil, fmt.Errorf("base checkpoint stops at %q but k_H=%d requires the anonymity stage", base.Stage, effKH)
		}
	default:
		return nil, nil, fmt.Errorf("base checkpoint stage %q does not cover the pipeline", base.Stage)
	}
	if o.OutputSyntax != "" && o.OutputSyntax != "ios" {
		return nil, nil, fmt.Errorf("output syntax %q is not the checkpoint's intermediate syntax", o.OutputSyntax)
	}
	for name, text := range baseConfigs {
		if s := config.DetectSyntax(text); s != "ios" {
			return nil, nil, fmt.Errorf("base config %s is %s, not ios", name, s)
		}
	}
	for name, text := range newConfigs {
		if s := config.DetectSyntax(text); s != "ios" {
			return nil, nil, fmt.Errorf("edited config %s is %s, not ios", name, s)
		}
	}
	baseNet, err := config.ParseNetwork(baseConfigs)
	if err != nil {
		return nil, nil, fmt.Errorf("parse base configs: %w", err)
	}
	newNet, err := config.ParseNetwork(newConfigs)
	if err != nil {
		return nil, nil, fmt.Errorf("parse edited configs: %w", err)
	}
	baseNames, newNames := baseNet.Names(), newNet.Names()
	if len(baseNames) != len(newNames) {
		return nil, nil, fmt.Errorf("device set changed: %d vs %d devices", len(baseNames), len(newNames))
	}
	for _, name := range newNames {
		if baseNet.Device(name) == nil {
			return nil, nil, fmt.Errorf("device %s is not in the base job", name)
		}
		if d := config.SemanticDiff(baseNet.Device(name), newNet.Device(name)); d != "" {
			return nil, nil, fmt.Errorf("device %s changed semantically: %s", name, d)
		}
	}

	cpNet, err := config.ParseNetwork(base.Configs)
	if err != nil {
		return nil, nil, fmt.Errorf("parse base checkpoint: %w", err)
	}
	// Transplant the cosmetic fields. Anonymization only ever appends to a
	// device — injected interfaces land after the originals and passthrough
	// lines are untouched — so the first len(newDev.Interfaces) interfaces
	// of the checkpointed device are the originals, in input order.
	baseRender, newRender := baseNet.Render(), newNet.Render()
	var edited []string
	for _, name := range newNames {
		newDev, cpDev := newNet.Device(name), cpNet.Device(name)
		if cpDev == nil {
			return nil, nil, fmt.Errorf("device %s missing from base checkpoint", name)
		}
		if len(cpDev.Interfaces) < len(newDev.Interfaces) {
			return nil, nil, fmt.Errorf("device %s has fewer interfaces in the base checkpoint", name)
		}
		if baseRender[name] != newRender[name] {
			edited = append(edited, name)
		}
		cpDev.Extra = append([]string(nil), newDev.Extra...)
		for i, ni := range newDev.Interfaces {
			cpDev.Interfaces[i].Description = ni.Description
			cpDev.Interfaces[i].Extra = append([]string(nil), ni.Extra...)
		}
	}
	sort.Strings(edited)

	injected := make(map[string][]string, len(base.InjectedIfaces))
	for dev, ifs := range base.InjectedIfaces {
		injected[dev] = append([]string(nil), ifs...)
	}
	// The baseline digest columns survive the edit untouched: path keys
	// are device names and statuses, which a decision-identical edit
	// cannot change, so the seeded resume skips re-extracting every
	// destination should a later stage need the baseline plane.
	var digests *anonymize.BaselineDigestDoc
	if d := base.BaselineDigests; d != nil {
		digests = &anonymize.BaselineDigestDoc{
			Hosts: append([]string(nil), d.Hosts...),
			Cols:  make(map[string]string, len(d.Cols)),
		}
		for dst, col := range d.Cols {
			digests.Cols[dst] = col
		}
	}
	return &Checkpoint{
		Stage:           base.Stage,
		Configs:         cpNet.Render(),
		RNGDraws:        base.RNGDraws,
		InjectedIfaces:  injected,
		Report:          base.Report,
		BaselineDigests: digests,
	}, edited, nil
}

// ClassifyEdit gives a best-effort routing-impact summary of an edit that
// was too semantic for ImportCheckpoint, using the cross-snapshot filter
// diff (sim.DiffNetworks): it reports how many destination prefixes the
// filter changes can disturb, or that the change is structural and affects
// all destinations. It returns "" when either bundle fails to parse or
// build — classification is advisory and never blocks a full run.
func ClassifyEdit(baseConfigs, newConfigs map[string]string) string {
	baseNet, _, err := parseAny(baseConfigs)
	if err != nil {
		return ""
	}
	newNet, _, err := parseAny(newConfigs)
	if err != nil {
		return ""
	}
	d, err := sim.DiffNetworks(baseNet, newNet)
	if err != nil {
		return ""
	}
	switch {
	case d.All():
		return "edit affects all destinations"
	case d.Empty():
		return "edit has no filter-visible routing impact"
	default:
		return fmt.Sprintf("filter changes affect %d destination prefix(es)", len(d.Prefixes()))
	}
}
