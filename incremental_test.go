package confmask

import (
	"strings"
	"testing"
)

func incrementalOptions() Options {
	return Options{KR: 4, KH: 2, NoiseP: 0.1, Seed: 42}
}

// editCosmetic appends an unrecognized (passthrough) line to one device's
// config and returns the edited bundle plus the device it touched.
func editCosmetic(t *testing.T, configs map[string]string) (map[string]string, string) {
	t.Helper()
	edited := make(map[string]string, len(configs))
	for k, v := range configs {
		edited[k] = v
	}
	for name := range edited {
		edited[name] += "snmp-server community edited RO\n"
		return edited, name
	}
	t.Fatal("empty bundle")
	return nil, ""
}

func TestImportCheckpointByteIdentity(t *testing.T) {
	configs, err := GenerateExample("Enterprise")
	if err != nil {
		t.Fatal(err)
	}
	o := incrementalOptions()

	var last *Checkpoint
	withCP := o
	withCP.Checkpoint = func(cp *Checkpoint) { last = cp }
	if _, _, err := Anonymize(configs, withCP); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint emitted")
	}
	if last.Stage != "anonymity" {
		t.Fatalf("final checkpoint stage = %q, want anonymity", last.Stage)
	}

	edited, dev := editCosmetic(t, configs)
	cp, touched, err := ImportCheckpoint(last, configs, edited, o)
	if err != nil {
		t.Fatalf("ImportCheckpoint: %v", err)
	}
	if len(touched) != 1 || touched[0] != dev {
		t.Fatalf("edited devices = %v, want [%s]", touched, dev)
	}
	// The baseline digest plane is edit-invariant (path keys never see
	// cosmetic fields), so the adapted checkpoint must carry it forward
	// for seeded resumes.
	if last.BaselineDigests != nil {
		if cp.BaselineDigests == nil {
			t.Fatal("adapted checkpoint dropped the baseline digests")
		}
		if len(cp.BaselineDigests.Cols) != len(last.BaselineDigests.Cols) {
			t.Fatalf("adapted digest columns %d, want %d",
				len(cp.BaselineDigests.Cols), len(last.BaselineDigests.Cols))
		}
	}

	var stagesRun []string
	fast := o
	fast.Resume = cp
	fast.Progress = func(stage string, _ int) { stagesRun = append(stagesRun, stage) }
	fastOut, fastRep, err := Anonymize(edited, fast)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	refOut, refRep, err := Anonymize(edited, o)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	if len(fastOut) != len(refOut) {
		t.Fatalf("device count %d vs %d", len(fastOut), len(refOut))
	}
	for name, want := range refOut {
		if got := fastOut[name]; got != want {
			t.Fatalf("resumed output for %s differs from from-scratch run", name)
		}
	}
	if !strings.Contains(fastOut[dev], "snmp-server community edited RO") {
		t.Fatalf("edit lost from anonymized output of %s", dev)
	}
	if fastRep.UC != refRep.UC || fastRep.LinesTotal != refRep.LinesTotal {
		t.Fatalf("report mismatch: UC %v vs %v, lines %d vs %d",
			fastRep.UC, refRep.UC, fastRep.LinesTotal, refRep.LinesTotal)
	}
	// The resumed run must not have re-simulated: preprocess is skipped
	// when the checkpoint covers every stage that reads the baseline, so
	// the only stage left to visit is render. (Report timings still carry
	// the base run's stage costs — resume semantics — so assert on the
	// stages actually entered, not on the report.)
	if len(stagesRun) != 1 || stagesRun[0] != StageRender {
		t.Fatalf("resumed run entered stages %v, want [render]", stagesRun)
	}
}

func TestImportCheckpointRejectsSemanticEdit(t *testing.T) {
	configs, err := GenerateExample("Enterprise")
	if err != nil {
		t.Fatal(err)
	}
	o := incrementalOptions()
	var last *Checkpoint
	withCP := o
	withCP.Checkpoint = func(cp *Checkpoint) { last = cp }
	if _, _, err := Anonymize(configs, withCP); err != nil {
		t.Fatal(err)
	}

	// A static route is a routing decision, not a cosmetic edit.
	edited := make(map[string]string, len(configs))
	var dev string
	for k, v := range configs {
		edited[k] = v
		if dev == "" {
			dev = k
		}
	}
	edited[dev] += "ip route 203.0.113.0 255.255.255.0 Null0\n"
	if _, _, err := ImportCheckpoint(last, configs, edited, o); err == nil {
		t.Fatal("semantic edit accepted")
	} else if !strings.Contains(err.Error(), "changed semantically") {
		t.Fatalf("unexpected gate: %v", err)
	}

	// k_H > 1 demands the anonymity stage.
	eqCP := *last
	eqCP.Stage = "equivalence"
	if _, _, err := ImportCheckpoint(&eqCP, configs, configs, o); err == nil {
		t.Fatal("equivalence checkpoint accepted for k_H=2")
	}
}
