package anonymize

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"

	"confmask/internal/config"
	"confmask/internal/kdegree"
	"confmask/internal/netaddr"
	"confmask/internal/netbuild"
	"confmask/internal/sim"
)

// routeAnonymity is Algorithm 2 (§5.3): add k_H − 1 fake twin hosts per
// real host on the same ingress router, each with a fresh prefix outside
// the original address space, then randomly (probability p per FIB entry
// next hop) add deny filters for the fake destinations so their routes
// diverge from the real twins' — while repairing any filter combination
// that breaks a fake host's reachability.
//
// It returns the fake host names and the number of noise filters kept.
// Cancellation is observed between repair rounds (each costs a filter
// re-derivation plus dirty re-traces), the same granularity as
// Algorithm 1's per-iteration checks.
func routeAnonymity(ctx context.Context, out *config.Network, pool *netaddr.Pool, base *baseline, opts Options, rng *rand.Rand) ([]string, int, error) {
	kH, p := opts.KH, opts.NoiseP
	gw := base.snap.Net.GatewayOf
	var fakeHosts []string
	fakePrefix := make(map[string]netip.Prefix)
	realOf := make(map[string]string)
	for _, h := range base.hosts {
		router := gw[h]
		for i := 1; i < kH; i++ {
			name := fmt.Sprintf("%s-fk%d", h, i)
			for out.Device(name) != nil {
				name += "x"
			}
			pfx, err := netbuild.AddHostLAN(out, pool, name, router, netbuild.HostOpts{
				Injected:     true,
				AdvertiseBGP: out.Device(router).BGP != nil,
			})
			if err != nil {
				return nil, 0, err
			}
			fakeHosts = append(fakeHosts, name)
			fakePrefix[name] = pfx
			realOf[name] = h
		}
	}

	// Expected reachability: a fake twin should be reachable from a router
	// exactly when its real twin was in the original network. One dense
	// delivered vector per real host answers every router at once from the
	// base snapshot's per-destination census (sim.DeliveredFrom) — no path
	// materialization — and is cached across repair rounds; k_H = 1 runs
	// pay nothing.
	routers := out.Routers()
	expect := make(map[string][]bool, len(base.hosts))
	expectFor := func(h string) []bool {
		v, ok := expect[h]
		if !ok {
			v = base.snap.DeliveredFrom(h, routers)
			expect[h] = v
		}
		return v
	}

	// The fake twins changed the topology, so one fresh Build is needed;
	// from here on only filters change, so the repair loop reuses the view.
	view, err := sim.Build(out)
	if err != nil {
		return nil, 0, err
	}
	snap := sim.SimulateNetOpts(view, opts.simOpts())

	// Noise pass: per FIB entry for a fake destination, per next hop, flip
	// a p-coin and deny.
	type rec struct {
		router string
		nh     sim.NextHop
		pfx    netip.Prefix
		src    sim.Source
	}
	var recs []rec
	for _, r := range out.Routers() {
		fib := snap.FIB(r)
		if fib == nil {
			continue
		}
		for _, fh := range fakeHosts {
			rt := fib[fakePrefix[fh]]
			if rt == nil || rt.Source == sim.SrcConnected || rt.Source == sim.SrcStatic {
				continue
			}
			for _, nh := range rt.NextHops {
				if rng.Float64() >= p {
					continue
				}
				if addFilter(out, snap.Net, r, nh, rt.Prefix, rt.Source) {
					recs = append(recs, rec{router: r, nh: nh, pfx: rt.Prefix, src: rt.Source})
				}
			}
		}
	}

	// Repair pass: while some fake host that should be reachable from a
	// router is not, remove the local noise filters for it there. Every
	// black-hole point necessarily holds a local filter (only filters
	// remove candidates), so each round removes at least one record and
	// the loop terminates.
	//
	// Each round only re-checks dirty destinations: InvalidateFilters
	// reports which prefixes had deny decisions change since the previous
	// round (round 0's diff covers the whole noise pass), and a fake host
	// whose prefix is untouched kept the reachability it had when last
	// checked — its FIB entries are byte-identical (per-prefix filter
	// independence, see sim.FilterDiff).
	//
	// Rounds split into two phases. Phase 1 computes each dirty fake
	// host's delivered vector over all routers — a pure read of the round
	// snapshot's per-destination census — sharded across hub-separated
	// router partitions (anonymityGroups, the same decomposition Algorithm
	// 3 partitions by). Phase 2 applies the removal decisions sequentially
	// in the global fakeHosts × routers order against the same (stale
	// within the round) vectors — exactly the order and the data the
	// pre-partition loop used, since its own checks also read the
	// unchanged round snapshot. Output is therefore byte-identical at any
	// worker count and whether or not the graph decomposes.
	groups, _ := anonymityGroups(view, fakeHosts, gw, realOf, opts.KR)
	workers := opts.simOpts().Workers()
	broken := make(map[string]bool)
	for round := 0; round <= len(recs); round++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		diff := view.InvalidateFilters()
		snap = sim.SimulateNetOpts(view, opts.simOpts())

		// Phase 1: delivered vectors for the round's dirty fake hosts.
		// Hosts found broken last round stay dirty even when their prefix
		// is clean (a failed removal leaves them broken with unchanged
		// filters, which must surface as an error below).
		dirtyByGroup := make([][]string, len(groups))
		for gi, g := range groups {
			for _, fh := range g {
				if round > 0 && !broken[fh] && !diff.Affects(fakePrefix[fh]) {
					continue
				}
				dirtyByGroup[gi] = append(dirtyByGroup[gi], fh)
			}
		}
		vecByGroup := make([][][]bool, len(groups))
		sim.ForEachIndex(workers, len(groups), func(gi int) {
			vecs := make([][]bool, len(dirtyByGroup[gi]))
			for i, fh := range dirtyByGroup[gi] {
				vecs[i] = snap.DeliveredFrom(fh, routers)
			}
			vecByGroup[gi] = vecs
		})
		got := make(map[string][]bool)
		for gi, fhs := range dirtyByGroup {
			for i, fh := range fhs {
				got[fh] = vecByGroup[gi][i]
			}
		}

		// Phase 2: sequential removal in global order.
		removedAny := false
		brokenAny := false
		for _, fh := range fakeHosts {
			vec, dirty := got[fh]
			if !dirty {
				continue
			}
			broken[fh] = false
			exp := expectFor(realOf[fh])
			for ri, r := range routers {
				if !exp[ri] || vec[ri] {
					continue
				}
				brokenAny = true
				broken[fh] = true
				kept := recs[:0]
				for _, rc := range recs {
					if rc.router == r && rc.pfx == fakePrefix[fh] {
						if removeFilterDeny(out, snap.Net, rc.router, rc.nh, rc.pfx, rc.src) {
							removedAny = true
							continue
						}
					}
					kept = append(kept, rc)
				}
				recs = kept
			}
		}
		if !brokenAny {
			return fakeHosts, len(recs), nil
		}
		if !removedAny {
			return nil, 0, fmt.Errorf("route anonymity: unreachable fake host with no local filter to remove")
		}
	}
	return fakeHosts, len(recs), nil
}

// anonymityGroups shards the fake hosts for the repair loop's phase-1
// delivery checks: the hub-separated router partitions of the working
// network (kdegree.Partition — the decomposition Algorithm 3
// parallelizes by) group the fake hosts by the partition holding their
// gateway. Grouping is purely a sharding decision — phase 1 is read-only
// and phase 2 applies removals in global order — so it can never change
// the output, and any failure to decompose (small network, no hub
// separation, a gateway outside every partition such as a host attached
// directly to a hub) falls back to the global path: one group holding
// every fake host, checked as a single shard. The second return reports
// whether the hub decomposition applied.
func anonymityGroups(view *sim.Net, fakeHosts []string, gw, realOf map[string]string, kR int) ([][]string, bool) {
	global := [][]string{fakeHosts}
	g := view.Topology().RouterSubgraph()
	if g.NumNodes() < partitionMinRouters {
		return global, false
	}
	parts := kdegree.Partition(g, kR)
	if parts == nil {
		return global, false
	}
	partOf := make(map[string]int)
	for pi, part := range parts {
		for _, r := range part {
			partOf[r] = pi
		}
	}
	groups := make([][]string, len(parts))
	for _, fh := range fakeHosts {
		pi, ok := partOf[gw[realOf[fh]]]
		if !ok {
			return global, false
		}
		groups[pi] = append(groups[pi], fh)
	}
	out := groups[:0]
	for _, grp := range groups {
		if len(grp) > 0 {
			out = append(out, grp)
		}
	}
	if len(out) == 0 {
		return global, false
	}
	return out, true
}

// realTwin recovers a fake host's real twin from its name pattern.
// routeAnonymity records the mapping at twin creation (realOf) instead of
// scanning; this recovery exists for callers that only see rendered
// output, such as the anonymity metrics tests.
func realTwin(fh string, hosts []string) string {
	for _, h := range hosts {
		if len(fh) > len(h) && fh[:len(h)] == h && fh[len(h):len(h)+3] == "-fk" {
			return h
		}
	}
	return ""
}

func delivered(ps []sim.Path) bool {
	for _, p := range ps {
		if p.Status == sim.Delivered {
			return true
		}
	}
	return false
}
