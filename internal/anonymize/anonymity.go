package anonymize

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"

	"confmask/internal/config"
	"confmask/internal/netaddr"
	"confmask/internal/netbuild"
	"confmask/internal/sim"
)

// routeAnonymity is Algorithm 2 (§5.3): add k_H − 1 fake twin hosts per
// real host on the same ingress router, each with a fresh prefix outside
// the original address space, then randomly (probability p per FIB entry
// next hop) add deny filters for the fake destinations so their routes
// diverge from the real twins' — while repairing any filter combination
// that breaks a fake host's reachability.
//
// It returns the fake host names and the number of noise filters kept.
// Cancellation is observed between repair rounds (each costs a filter
// re-derivation plus dirty re-traces), the same granularity as
// Algorithm 1's per-iteration checks.
func routeAnonymity(ctx context.Context, out *config.Network, pool *netaddr.Pool, base *baseline, opts Options, rng *rand.Rand) ([]string, int, error) {
	kH, p := opts.KH, opts.NoiseP
	gw := base.snap.Net.GatewayOf
	var fakeHosts []string
	fakePrefix := make(map[string]netip.Prefix)
	realOf := make(map[string]string)
	for _, h := range base.hosts {
		router := gw[h]
		for i := 1; i < kH; i++ {
			name := fmt.Sprintf("%s-fk%d", h, i)
			for out.Device(name) != nil {
				name += "x"
			}
			pfx, err := netbuild.AddHostLAN(out, pool, name, router, netbuild.HostOpts{
				Injected:     true,
				AdvertiseBGP: out.Device(router).BGP != nil,
			})
			if err != nil {
				return nil, 0, err
			}
			fakeHosts = append(fakeHosts, name)
			fakePrefix[name] = pfx
			realOf[name] = h
		}
	}

	// Expected reachability: a fake twin should be reachable from a router
	// exactly when its real twin was in the original network. The base
	// snapshot's per-destination engine memoizes these traces, so each
	// (router, real host) answer is computed at most once and k_H = 1 runs
	// pay nothing.
	expectFake := func(r, fh string) bool {
		real := realOf[fh]
		if real == "" {
			return false
		}
		return delivered(base.snap.TraceFrom(r, real))
	}

	// The fake twins changed the topology, so one fresh Build is needed;
	// from here on only filters change, so the repair loop reuses the view.
	view, err := sim.Build(out)
	if err != nil {
		return nil, 0, err
	}
	snap := sim.SimulateNetOpts(view, opts.simOpts())

	// Noise pass: per FIB entry for a fake destination, per next hop, flip
	// a p-coin and deny.
	type rec struct {
		router string
		nh     sim.NextHop
		pfx    netip.Prefix
		src    sim.Source
	}
	var recs []rec
	for _, r := range out.Routers() {
		fib := snap.FIB(r)
		if fib == nil {
			continue
		}
		for _, fh := range fakeHosts {
			rt := fib[fakePrefix[fh]]
			if rt == nil || rt.Source == sim.SrcConnected || rt.Source == sim.SrcStatic {
				continue
			}
			for _, nh := range rt.NextHops {
				if rng.Float64() >= p {
					continue
				}
				if addFilter(out, snap.Net, r, nh, rt.Prefix, rt.Source) {
					recs = append(recs, rec{router: r, nh: nh, pfx: rt.Prefix, src: rt.Source})
				}
			}
		}
	}

	// Repair pass: while some fake host that should be reachable from a
	// router is not, remove the local noise filters for it there. Every
	// black-hole point necessarily holds a local filter (only filters
	// remove candidates), so each round removes at least one record and
	// the loop terminates.
	//
	// Each round only re-traces dirty destinations: InvalidateFilters
	// reports which prefixes had deny decisions change since the previous
	// round (round 0's diff covers the whole noise pass), and a fake host
	// whose prefix is untouched kept the reachability it had when last
	// checked — its FIB entries are byte-identical (per-prefix filter
	// independence, see sim.FilterDiff).
	broken := make(map[string]bool)
	for round := 0; round <= len(recs); round++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		diff := view.InvalidateFilters()
		snap = sim.SimulateNetOpts(view, opts.simOpts())
		removedAny := false
		brokenAny := false
		for _, fh := range fakeHosts {
			// Hosts found broken last round stay dirty even when their
			// prefix is clean (a failed removal leaves them broken with
			// unchanged filters, which must surface as an error below).
			if round > 0 && !broken[fh] && !diff.Affects(fakePrefix[fh]) {
				continue
			}
			broken[fh] = false
			for _, r := range out.Routers() {
				if !expectFake(r, fh) || delivered(snap.TraceFrom(r, fh)) {
					continue
				}
				brokenAny = true
				broken[fh] = true
				kept := recs[:0]
				for _, rc := range recs {
					if rc.router == r && rc.pfx == fakePrefix[fh] {
						if removeFilterDeny(out, snap.Net, rc.router, rc.nh, rc.pfx, rc.src) {
							removedAny = true
							continue
						}
					}
					kept = append(kept, rc)
				}
				recs = kept
			}
		}
		if !brokenAny {
			return fakeHosts, len(recs), nil
		}
		if !removedAny {
			return nil, 0, fmt.Errorf("route anonymity: unreachable fake host with no local filter to remove")
		}
	}
	return fakeHosts, len(recs), nil
}

// realTwin recovers a fake host's real twin from its name pattern.
// routeAnonymity records the mapping at twin creation (realOf) instead of
// scanning; this recovery exists for callers that only see rendered
// output, such as the anonymity metrics tests.
func realTwin(fh string, hosts []string) string {
	for _, h := range hosts {
		if len(fh) > len(h) && fh[:len(h)] == h && fh[len(h):len(h)+3] == "-fk" {
			return h
		}
	}
	return ""
}

func delivered(ps []sim.Path) bool {
	for _, p := range ps {
		if p.Status == sim.Delivered {
			return true
		}
	}
	return false
}
