package anonymize

import (
	"fmt"
	"math/rand"
	"net/netip"

	"confmask/internal/config"
	"confmask/internal/netaddr"
	"confmask/internal/netbuild"
	"confmask/internal/sim"
)

// routeAnonymity is Algorithm 2 (§5.3): add k_H − 1 fake twin hosts per
// real host on the same ingress router, each with a fresh prefix outside
// the original address space, then randomly (probability p per FIB entry
// next hop) add deny filters for the fake destinations so their routes
// diverge from the real twins' — while repairing any filter combination
// that breaks a fake host's reachability.
//
// It returns the fake host names and the number of noise filters kept.
func routeAnonymity(out *config.Network, pool *netaddr.Pool, base *baseline, opts Options, rng *rand.Rand) ([]string, int, error) {
	kH, p := opts.KH, opts.NoiseP
	gw := base.snap.Net.GatewayOf
	var fakeHosts []string
	fakePrefix := make(map[string]netip.Prefix)
	for _, h := range base.hosts {
		router := gw[h]
		for i := 1; i < kH; i++ {
			name := fmt.Sprintf("%s-fk%d", h, i)
			for out.Device(name) != nil {
				name += "x"
			}
			pfx, err := netbuild.AddHostLAN(out, pool, name, router, netbuild.HostOpts{
				Injected:     true,
				AdvertiseBGP: out.Device(router).BGP != nil,
			})
			if err != nil {
				return nil, 0, err
			}
			fakeHosts = append(fakeHosts, name)
			fakePrefix[name] = pfx
		}
	}

	// Expected reachability: a fake twin should be reachable from a router
	// exactly when its real twin was in the original network.
	expect := make(map[sim.Pair]bool)
	for _, h := range base.hosts {
		for _, r := range base.cfg.Routers() {
			expect[sim.Pair{Src: r, Dst: h}] = delivered(base.snap.TraceFrom(r, h))
		}
	}
	expectFake := func(r, fh string) bool {
		real := realTwin(fh, base.hosts)
		if real == "" {
			return false
		}
		return expect[sim.Pair{Src: r, Dst: real}]
	}

	// The fake twins changed the topology, so one fresh Build is needed;
	// from here on only filters change, so the repair loop reuses the view.
	view, err := sim.Build(out)
	if err != nil {
		return nil, 0, err
	}
	snap := sim.SimulateNetOpts(view, opts.simOpts())

	// Noise pass: per FIB entry for a fake destination, per next hop, flip
	// a p-coin and deny.
	type rec struct {
		router string
		nh     sim.NextHop
		pfx    netip.Prefix
		src    sim.Source
	}
	var recs []rec
	for _, r := range out.Routers() {
		fib := snap.FIB(r)
		if fib == nil {
			continue
		}
		for _, fh := range fakeHosts {
			rt := fib[fakePrefix[fh]]
			if rt == nil || rt.Source == sim.SrcConnected || rt.Source == sim.SrcStatic {
				continue
			}
			for _, nh := range rt.NextHops {
				if rng.Float64() >= p {
					continue
				}
				if addFilter(out, snap.Net, r, nh, rt.Prefix, rt.Source) {
					recs = append(recs, rec{router: r, nh: nh, pfx: rt.Prefix, src: rt.Source})
				}
			}
		}
	}

	// Repair pass: while some fake host that should be reachable from a
	// router is not, remove the local noise filters for it there. Every
	// black-hole point necessarily holds a local filter (only filters
	// remove candidates), so each round removes at least one record and
	// the loop terminates.
	for round := 0; round <= len(recs); round++ {
		view.InvalidateFilters()
		snap = sim.SimulateNetOpts(view, opts.simOpts())
		removedAny := false
		brokenAny := false
		for _, fh := range fakeHosts {
			for _, r := range out.Routers() {
				if !expectFake(r, fh) || delivered(snap.TraceFrom(r, fh)) {
					continue
				}
				brokenAny = true
				kept := recs[:0]
				for _, rc := range recs {
					if rc.router == r && rc.pfx == fakePrefix[fh] {
						if removeFilterDeny(out, snap.Net, rc.router, rc.nh, rc.pfx, rc.src) {
							removedAny = true
							continue
						}
					}
					kept = append(kept, rc)
				}
				recs = kept
			}
		}
		if !brokenAny {
			return fakeHosts, len(recs), nil
		}
		if !removedAny {
			return nil, 0, fmt.Errorf("route anonymity: unreachable fake host with no local filter to remove")
		}
	}
	return fakeHosts, len(recs), nil
}

// realTwin maps a fake host name back to its real twin.
func realTwin(fh string, hosts []string) string {
	for _, h := range hosts {
		if len(fh) > len(h) && fh[:len(h)] == h && fh[len(h):len(h)+3] == "-fk" {
			return h
		}
	}
	return ""
}

func delivered(ps []sim.Path) bool {
	for _, p := range ps {
		if p.Status == sim.Delivered {
			return true
		}
	}
	return false
}
