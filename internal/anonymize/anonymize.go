// Package anonymize implements the ConfMask anonymization pipeline of the
// paper (Fig. 3): preprocessing, topology anonymization (§4.2), route
// equivalence via Algorithm 1 (§5.2), route anonymity via Algorithm 2
// (§5.3), and the strawman baselines of §4.3 used in the evaluation.
//
// The pipeline only ever adds configuration — fake interfaces, fake hosts,
// network statements, eBGP neighbor statements, and distribute-list route
// filters — never editing or deleting an existing line. Combined with the
// SFE conditions enforced by Algorithm 1, the anonymized network is
// functionally equivalent to the original: every host-to-host forwarding
// path is preserved exactly.
package anonymize

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"confmask/internal/config"
	"confmask/internal/netaddr"
	"confmask/internal/sim"
	"confmask/internal/topology"
)

// Strategy selects the route-equivalence algorithm of step 2.1.
type Strategy int

const (
	// ConfMask is Algorithm 1: per-iteration global FIB scan, filtering
	// every wrong next hop over a fake link (§5.2).
	ConfMask Strategy = iota
	// Strawman1 filters every real host prefix on every fake interface
	// (§4.3). Fast but de-anonymizable: the unified pattern exposes the
	// fake links.
	Strawman1
	// Strawman2 fixes one divergent hop per host pair per iteration based
	// on traceroute comparisons (§4.3). Conservative but slow.
	Strawman2
)

func (s Strategy) String() string {
	switch s {
	case ConfMask:
		return "confmask"
	case Strawman1:
		return "strawman1"
	case Strawman2:
		return "strawman2"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a pipeline run. The zero value is not useful; start
// from DefaultOptions.
type Options struct {
	// KR is the topology anonymity parameter k_R (Definition 3.1).
	KR int
	// KH is the route anonymity parameter k_H: each real host gains
	// KH−1 fake twins (§5.3).
	KH int
	// NoiseP is Algorithm 2's filter probability p (the paper uses 0.1).
	NoiseP float64
	// Seed drives all randomness; equal seeds give identical outputs.
	Seed int64
	// Strategy selects the route-equivalence algorithm.
	Strategy Strategy
	// MaxIterations caps the fixing loops (Algorithm 1 / strawman 2).
	MaxIterations int
	// SkipRouteAnonymity disables step 2.2 (used by ablation benches).
	SkipRouteAnonymity bool
	// Parallelism bounds the simulation engine's worker pool; ≤ 0 uses
	// GOMAXPROCS and 1 forces sequential execution. The anonymized
	// output is identical at any setting (and any machine): the engine
	// only fans out independent per-router work.
	Parallelism int
	// FakeRouters enables the paper's §9 "network scale obfuscation"
	// extension: this many fake routers are added (with generated
	// configurations and fake links) before topology anonymization, so
	// the shared network also hides the router count. Functional
	// equivalence still holds: no original path can enter a fake router,
	// and Algorithm 1 filters any new path that tries. Only IGP networks
	// are supported — auto-generating believable BGP speakers is the open
	// problem the paper defers.
	FakeRouters int
	// Progress, when non-nil, is invoked at the start of every pipeline
	// stage ("preprocess", "topology", "equivalence", "anonymity") and
	// once per route-equivalence fixing iteration (iteration ≥ 1; 0 for
	// non-iterative stages). It runs synchronously on the pipeline
	// goroutine and must be fast.
	Progress func(stage string, iteration int)
	// Checkpoint, when non-nil, receives a resumable StageCheckpoint
	// after each completed stage ("topology", "equivalence",
	// "anonymity"). It runs synchronously on the pipeline goroutine;
	// persisting the snapshot (and any retries doing so) happens on the
	// job's time budget, which is intentional — a checkpoint that cannot
	// be stored is a job that cannot claim durability.
	Checkpoint func(*StageCheckpoint)
	// Resume, when non-nil, restarts the pipeline from the checkpoint:
	// stages up to and including Resume.Stage are skipped, the
	// intermediate network is reloaded from the checkpoint, and the RNG
	// is fast-forwarded to the recorded stream position, so the final
	// output is byte-identical to the uninterrupted run. The caller must
	// pass the same original configurations and options (including the
	// seed) as the interrupted run.
	Resume *StageCheckpoint
}

// progress reports a stage transition when a callback is configured.
func (o Options) progress(stage string, iteration int) {
	if o.Progress != nil {
		o.Progress(stage, iteration)
	}
}

// simOpts translates the pipeline options into engine options.
func (o Options) simOpts() sim.Options {
	return sim.Options{Parallelism: o.Parallelism}
}

// DefaultOptions returns the paper's default parameters: k_R = 6, k_H = 2,
// p = 0.1.
func DefaultOptions() Options {
	return Options{KR: 6, KH: 2, NoiseP: 0.1, Strategy: ConfMask, MaxIterations: 256}
}

// Timing records per-stage wall time (Fig. 16).
type Timing struct {
	Preprocess time.Duration
	Topology   time.Duration
	RouteEquiv time.Duration
	RouteAnon  time.Duration
}

// Total returns the end-to-end duration.
func (t Timing) Total() time.Duration {
	return t.Preprocess + t.Topology + t.RouteEquiv + t.RouteAnon
}

// Alloc records per-stage heap allocation (runtime.MemStats.TotalAlloc
// deltas, in bytes) — the memory analogue of Timing. Cumulative allocation
// is the observable that exposes quadratic blowups regardless of when the
// GC happens to run; live-heap peaks are sampled separately by the scale
// benchmark.
type Alloc struct {
	Preprocess uint64
	Topology   uint64
	RouteEquiv uint64
	RouteAnon  uint64
}

// Total returns the end-to-end allocation.
func (a Alloc) Total() uint64 {
	return a.Preprocess + a.Topology + a.RouteEquiv + a.RouteAnon
}

// totalAlloc reads the process's cumulative allocated-bytes counter. One
// ReadMemStats stop-the-world per stage boundary is noise next to a
// control-plane simulation.
func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// Report describes everything a pipeline run changed.
type Report struct {
	// FakeEdges are the router-to-router links added for k_R anonymity.
	FakeEdges []topology.Edge
	// FakeHosts are the twin hosts added for k_H anonymity.
	FakeHosts []string
	// FakeRouters are the routers added by the scale-obfuscation
	// extension (empty unless Options.FakeRouters > 0).
	FakeRouters []string
	// EquivIterations counts route-equivalence fixing iterations.
	EquivIterations int
	// EquivFilters counts deny rules added by step 2.1.
	EquivFilters int
	// AnonFilters counts deny rules added (and kept) by step 2.2.
	AnonFilters int
	// AddedLines is the injected-line breakdown (Table 3).
	AddedLines config.Stats
	// TotalLines is the anonymized network's line count P_l.
	TotalLines int
	// UC is the configuration utility U_C = 1 − N_l/P_l.
	UC float64
	// Timing is the per-stage wall time.
	Timing Timing
	// Alloc is the per-stage heap allocation.
	Alloc Alloc
}

// Run anonymizes a copy of cfg and returns it with a report; cfg itself is
// not modified. It returns an error when the input fails to simulate, when
// k_R exceeds the router count, or when a fixing loop fails to converge
// within Options.MaxIterations. It is RunContext with a background
// context: non-cancellable, no deadline.
func Run(cfg *config.Network, opts Options) (*config.Network, *Report, error) {
	return RunContext(context.Background(), cfg, opts)
}

// RunContext is Run with cancellation: the pipeline observes ctx between
// stages and between fixing-loop iterations (where long runs spend their
// time), returning ctx.Err() as soon as it fires. A cancelled run returns
// no partial output.
func RunContext(ctx context.Context, cfg *config.Network, opts Options) (*config.Network, *Report, error) {
	if opts.KR < 1 || opts.KH < 1 {
		return nil, nil, fmt.Errorf("anonymize: k_R and k_H must be ≥ 1 (got %d, %d)", opts.KR, opts.KH)
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 256
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	src := newCountingSource(opts.Seed)
	rng := rand.New(src)
	rep := &Report{}
	origStats := cfg.LineStats()

	var (
		out     *config.Network
		pool    *netaddr.Pool
		err     error
		resumed = 0 // rank of the checkpointed stage being resumed from
	)
	if opts.Resume != nil {
		out, pool, rep, err = resumeState(opts.Resume, src)
		if err != nil {
			return nil, nil, err
		}
		resumed = stageRank(opts.Resume.Stage)
	} else {
		out = cfg.Clone()
		pool = netaddr.NewPool(cfg.UsedPrefixes(), nil)
	}

	// Preprocessing: simulate the original network, recording its
	// topology, data plane, and per-router next hops as the baseline.
	// It reruns on resume rather than being checkpointed — it is a pure
	// function of the original input and checkpointing its large derived
	// state would cost more than recomputing it — but it is skipped
	// entirely when the checkpoint already covers every stage that reads
	// the baseline (a cross-job incremental resume of a finished run).
	var base *baseline
	var t0 time.Time
	needBase := resumed < stageRank("equivalence") ||
		(resumed < stageRank("anonymity") && !opts.SkipRouteAnonymity && opts.KH > 1)
	if needBase {
		opts.progress("preprocess", 0)
		t0 = time.Now()
		a0 := totalAlloc()
		var digestSeed map[string][]byte
		if opts.Resume != nil {
			digestSeed = baselineDigestSeed(opts.Resume, cfg.Hosts())
		}
		base, err = newBaseline(cfg, opts.simOpts(), digestSeed)
		if err != nil {
			return nil, nil, fmt.Errorf("anonymize: preprocessing: %w", err)
		}
		rep.Timing.Preprocess = time.Since(t0)
		rep.Alloc.Preprocess = totalAlloc() - a0
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	if resumed < stageRank("topology") {
		// Step 0.5 (extension, §9): scale obfuscation with fake routers.
		if opts.FakeRouters > 0 {
			names, err := addFakeRouters(out, pool, base, opts.FakeRouters, rng)
			if err != nil {
				return nil, nil, fmt.Errorf("anonymize: fake routers: %w", err)
			}
			rep.FakeRouters = names
		}

		// Step 1: topology anonymization.
		opts.progress("topology", 0)
		t0 = time.Now()
		a0 := totalAlloc()
		fake, err := anonymizeTopology(out, pool, base, opts, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("anonymize: topology: %w", err)
		}
		rep.FakeEdges = fake
		rep.Timing.Topology = time.Since(t0)
		rep.Alloc.Topology = totalAlloc() - a0
		opts.emitCheckpoint("topology", out, src, rep, base)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	if resumed < stageRank("equivalence") {
		// Step 2.1: route equivalence.
		t0 = time.Now()
		a0 := totalAlloc()
		switch opts.Strategy {
		case ConfMask:
			rep.EquivIterations, rep.EquivFilters, err = routeEquivalence(ctx, out, base, opts)
		case Strawman1:
			opts.progress("equivalence", 1)
			rep.EquivIterations, rep.EquivFilters, err = strawman1(out, base, opts)
		case Strawman2:
			rep.EquivIterations, rep.EquivFilters, err = strawman2(ctx, out, base, opts)
		default:
			err = fmt.Errorf("unknown strategy %v", opts.Strategy)
		}
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, nil, ctxErr
			}
			return nil, nil, fmt.Errorf("anonymize: route equivalence (%v): %w", opts.Strategy, err)
		}
		rep.Timing.RouteEquiv = time.Since(t0)
		rep.Alloc.RouteEquiv = totalAlloc() - a0
		opts.emitCheckpoint("equivalence", out, src, rep, base)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	if resumed < stageRank("anonymity") {
		// Step 2.2: route anonymity.
		if !opts.SkipRouteAnonymity && opts.KH > 1 {
			opts.progress("anonymity", 0)
			t0 = time.Now()
			a0 := totalAlloc()
			hosts, filters, err := routeAnonymity(ctx, out, pool, base, opts, rng)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, nil, ctxErr
				}
				return nil, nil, fmt.Errorf("anonymize: route anonymity: %w", err)
			}
			rep.FakeHosts = hosts
			rep.AnonFilters = filters
			rep.Timing.RouteAnon = time.Since(t0)
			rep.Alloc.RouteAnon = totalAlloc() - a0
			opts.emitCheckpoint("anonymity", out, src, rep, base)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	newStats := out.LineStats()
	rep.AddedLines = newStats.Sub(origStats)
	rep.TotalLines = newStats.Total()
	rep.UC = config.UtilityUC(cfg, out)
	return out, rep, nil
}

// baseline is the preprocessed view of the original network Algorithm 1
// compares against: its topology (edge set E), data plane, and the
// DP[r, dest] next-hop index.
type baseline struct {
	cfg  *config.Network
	snap *sim.Snapshot
	topo *topology.Graph
	// dpDig is the original data plane as per-pair 128-bit digests — all
	// the ConfMask pipeline needs for its equivalence checks, at 16 bytes
	// per ordered pair instead of materialized path sets. It is built
	// lazily (dpDigOnce): route anonymity never reads it, so a resume
	// that skips the equivalence stage skips the extraction entirely.
	// dpCols, when non-nil, seeds the extraction with per-destination
	// columns recovered from a checkpoint (sim.PairDigestsForSeeded), so
	// a resumed run re-derives only destinations the seed doesn't cover.
	// dpDigDone flags completed extraction for checkpoint export without
	// forcing it; the pipeline is single-goroutine at every read site.
	dpDigOnce sync.Once
	dpDig     *sim.PairDigests
	dpDigDone bool
	dpCols    map[string][]byte
	// dp is the fully materialized data plane, built lazily: only the
	// strawman baselines compare per-pair hop sequences.
	dpOnce sync.Once
	dp     *sim.DataPlane
	hosts  []string
	// dests is every destination Algorithm 1 preserves: all host LAN
	// prefixes plus the external equivalence-class prefixes of §9
	// (Internet destinations originated via discard statics).
	dests []netip.Prefix
	// external is the subset of dests that are equivalence classes.
	external []netip.Prefix
	// nextHops[r][destPrefixString] is the set of original next-hop
	// devices of router r for a destination.
	nextHops map[string]map[string]map[string]bool
}

func newBaseline(cfg *config.Network, simOpts sim.Options, digestSeed map[string][]byte) (*baseline, error) {
	snap, err := sim.SimulateOpts(cfg, simOpts)
	if err != nil {
		return nil, err
	}
	b := &baseline{
		cfg:      cfg,
		snap:     snap,
		topo:     snap.Net.Topology(),
		dpCols:   digestSeed,
		hosts:    cfg.Hosts(),
		external: snap.Net.ExternalDestinations(),
		nextHops: make(map[string]map[string]map[string]bool),
	}
	for _, h := range b.hosts {
		b.dests = append(b.dests, snap.Net.HostPrefix[h])
	}
	b.dests = append(b.dests, b.external...)
	for _, r := range cfg.Routers() {
		idx := make(map[string]map[string]bool)
		for _, p := range b.dests {
			set := make(map[string]bool)
			for _, nh := range snap.NextHopRouters(r, p) {
				set[nh] = true
			}
			idx[p.String()] = set
		}
		b.nextHops[r] = idx
	}
	return b, nil
}

// digests extracts (once) the original data plane's per-pair digest
// view, honoring any checkpoint-recovered seed columns.
func (b *baseline) digests() *sim.PairDigests {
	b.dpDigOnce.Do(func() {
		b.dpDig = b.snap.PairDigestsForSeeded(b.hosts, b.dpCols)
		b.dpDigDone = true
	})
	return b.dpDig
}

// dataPlane materializes the original network's full data plane on first
// use. The ConfMask pipeline itself never calls this — it compares dpDig
// digests — so large runs avoid holding H² path sets for the baseline.
func (b *baseline) dataPlane() *sim.DataPlane {
	b.dpOnce.Do(func() { b.dp = b.snap.DataPlaneFor(b.hosts) })
	return b.dp
}
