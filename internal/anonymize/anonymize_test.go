package anonymize

import (
	"sort"
	"strings"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netgen"
	"confmask/internal/sim"
)

// ospfNet builds a 7-router OSPF network with varied costs and 4 hosts.
func ospfNet(t *testing.T) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.OSPF)
	for _, r := range []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7"} {
		b.Router(r)
	}
	b.LinkCost("r1", "r2", 1, 1)
	b.LinkCost("r2", "r3", 1, 1)
	b.Link("r3", "r4")
	b.Link("r4", "r5")
	b.Link("r5", "r6")
	b.Link("r6", "r1")
	b.Link("r2", "r7")
	b.Link("r7", "r5")
	b.Host("h1", "r1").Host("h3", "r3").Host("h5", "r5").Host("h7", "r7")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// bgpNet builds a 3-AS network: AS100 (2 routers), AS200 (3), AS300 (2).
func bgpNet(t *testing.T) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.BGPOSPF)
	b.RouterAS("a1", 100).RouterAS("a2", 100)
	b.RouterAS("b1", 200).RouterAS("b2", 200).RouterAS("b3", 200)
	b.RouterAS("c1", 300).RouterAS("c2", 300)
	b.Link("a1", "a2")
	b.Link("b1", "b2").Link("b2", "b3").Link("b1", "b3")
	b.Link("c1", "c2")
	b.Link("a2", "b1") // AS100–AS200
	b.Link("b3", "c1") // AS200–AS300
	b.Host("ha", "a1").Host("hb", "b2").Host("hc", "c2")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func ripNet(t *testing.T) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.RIP)
	for _, r := range []string{"r1", "r2", "r3", "r4", "r5"} {
		b.Router(r)
	}
	b.Link("r1", "r2").Link("r2", "r3").Link("r3", "r4").Link("r4", "r5").Link("r5", "r1")
	b.Host("h1", "r1").Host("h3", "r3").Host("h4", "r4")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// checkPipeline runs Run and asserts the paper's end-to-end guarantees.
func checkPipeline(t *testing.T, cfg *config.Network, opts Options) (*config.Network, *Report) {
	t.Helper()
	anon, rep, err := Run(cfg, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Functional equivalence: identical host-to-host data planes.
	origSnap, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatalf("simulate original: %v", err)
	}
	anonSnap, err := sim.Simulate(anon)
	if err != nil {
		t.Fatalf("simulate anonymized: %v", err)
	}
	hosts := cfg.Hosts()
	origDP := origSnap.DataPlaneFor(hosts)
	anonDP := anonSnap.DataPlaneFor(hosts)
	if diffs := sim.DiffPairs(origDP, anonDP, hosts); len(diffs) != 0 {
		t.Fatalf("functional equivalence violated for %d pairs, first %v", len(diffs), diffs[0])
	}

	// k_R topology anonymity on the anonymized router graph.
	if kd := anonSnap.Net.Topology().MinSameDegreeCount(); kd < opts.KR {
		t.Fatalf("k_d = %d < k_R = %d", kd, opts.KR)
	}

	// Topology preservation: supergraph property.
	origTopo := origSnap.Net.Topology()
	anonTopo := anonSnap.Net.Topology()
	for _, e := range origTopo.Edges() {
		if !anonTopo.HasEdge(e.A, e.B) {
			t.Fatalf("original edge %v missing after anonymization", e)
		}
	}

	// Fake host count.
	wantFakes := (opts.KH - 1) * len(hosts)
	if opts.SkipRouteAnonymity {
		wantFakes = 0
	}
	if len(rep.FakeHosts) != wantFakes {
		t.Fatalf("fake hosts = %d, want %d", len(rep.FakeHosts), wantFakes)
	}

	// Every fake host must be reachable from every real host that can
	// reach its real twin (reachability preservation of Algorithm 2).
	for _, fh := range rep.FakeHosts {
		real := realTwin(fh, hosts)
		for _, src := range hosts {
			if src == real {
				continue
			}
			if origDP.Reachable(src, real) && !deliveredAny(anonSnap, src, fh) {
				t.Fatalf("fake host %s unreachable from %s", fh, src)
			}
		}
	}

	// Add-only: every original configuration line survives verbatim.
	for name, origText := range cfg.Render() {
		anonText := anon.Device(name).Render()
		if !linesSubset(origText, anonText) {
			t.Fatalf("device %s lost original lines", name)
		}
	}

	// Utility bookkeeping.
	if rep.UC <= 0 || rep.UC > 1 {
		t.Fatalf("U_C = %v out of range", rep.UC)
	}
	added := rep.AddedLines
	if added.Interface < 0 || added.Protocol < 0 || added.Filter < 0 || added.Other < 0 {
		t.Fatalf("negative added-line category: %+v", added)
	}
	return anon, rep
}

func deliveredAny(s *sim.Snapshot, src, dst string) bool {
	for _, p := range s.Trace(src, dst) {
		if p.Status == sim.Delivered {
			return true
		}
	}
	return false
}

// linesSubset reports whether every non-separator line of a appears in b
// with at least the same multiplicity.
func linesSubset(a, b string) bool {
	count := func(s string) map[string]int {
		m := make(map[string]int)
		for _, ln := range strings.Split(s, "\n") {
			ln = strings.TrimSpace(ln)
			if ln == "" || ln == "!" {
				continue
			}
			m[ln]++
		}
		return m
	}
	ca, cb := count(a), count(b)
	for ln, n := range ca {
		if cb[ln] < n {
			return false
		}
	}
	return true
}

func TestPipelineOSPF(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 7
	_, rep := checkPipeline(t, ospfNet(t), opts)
	if rep.EquivIterations < 1 {
		t.Fatalf("iterations = %d", rep.EquivIterations)
	}
}

func TestPipelineBGP(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 2
	opts.Seed = 11
	checkPipeline(t, bgpNet(t), opts)
}

func TestPipelineRIP(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 3
	checkPipeline(t, ripNet(t), opts)
}

func TestPipelineKH4(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.KH = 4
	opts.Seed = 19
	checkPipeline(t, ospfNet(t), opts)
}

func TestPipelineSkipRouteAnonymity(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.SkipRouteAnonymity = true
	_, rep := checkPipeline(t, ospfNet(t), opts)
	if rep.AnonFilters != 0 || len(rep.FakeHosts) != 0 {
		t.Fatalf("route anonymity ran despite skip: %+v", rep)
	}
}

func TestPipelineStrawman1(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Strategy = Strawman1
	opts.Seed = 5
	_, rep1 := checkPipeline(t, ospfNet(t), opts)

	opts.Strategy = ConfMask
	_, repCM := checkPipeline(t, ospfNet(t), opts)
	// Strawman 1 filters everything on every fake interface: it must
	// inject at least as many equivalence filters as ConfMask.
	if rep1.EquivFilters < repCM.EquivFilters {
		t.Fatalf("strawman1 filters %d < confmask %d", rep1.EquivFilters, repCM.EquivFilters)
	}
	if rep1.EquivIterations != 1 {
		t.Fatalf("strawman1 iterations = %d, want 1", rep1.EquivIterations)
	}
}

func TestPipelineStrawman2(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Strategy = Strawman2
	opts.Seed = 5
	_, rep2 := checkPipeline(t, ospfNet(t), opts)
	if rep2.EquivIterations < 1 {
		t.Fatalf("strawman2 iterations = %d", rep2.EquivIterations)
	}
}

func TestPipelineStrawman2BGP(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 2
	opts.Strategy = Strawman2
	opts.Seed = 23
	checkPipeline(t, bgpNet(t), opts)
}

func TestPipelineDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 42
	a1, _, err := Run(ospfNet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Run(ospfNet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	r1 := a1.Render()
	r2 := a2.Render()
	if len(r1) != len(r2) {
		t.Fatalf("device counts differ: %d vs %d", len(r1), len(r2))
	}
	for name, text := range r1 {
		if r2[name] != text {
			t.Fatalf("device %s differs across identical seeds", name)
		}
	}
}

func TestPipelineSeedsDiffer(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 1
	a1, _, err := Run(ospfNet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = 2
	a2, _, err := Run(ospfNet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for name, text := range a1.Render() {
		if a2.Device(name) == nil || a2.Device(name).Render() != text {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical outputs (randomization broken)")
	}
}

func TestRunDoesNotMutateInput(t *testing.T) {
	cfg := ospfNet(t)
	before := cfg.Render()
	opts := DefaultOptions()
	opts.KR = 3
	if _, _, err := Run(cfg, opts); err != nil {
		t.Fatal(err)
	}
	after := cfg.Render()
	for name, text := range before {
		if after[name] != text {
			t.Fatalf("Run mutated input device %s", name)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = 100 // more than routers available
	if _, _, err := Run(cfg, opts); err == nil {
		t.Fatal("expected error for k_R > routers")
	}
	opts = DefaultOptions()
	opts.KR = 0
	if _, _, err := Run(cfg, opts); err == nil {
		t.Fatal("expected error for k_R = 0")
	}
}

func TestApplyPII(t *testing.T) {
	cfg := ospfNet(t)
	anon, names := ApplyPII(cfg, []byte("secret-key"))
	if len(names) != len(cfg.Devices) {
		t.Fatalf("name map size %d", len(names))
	}
	// Same device count, all renamed.
	if len(anon.Devices) != len(cfg.Devices) {
		t.Fatalf("device count changed")
	}
	for old, new_ := range names {
		if anon.Device(new_) == nil {
			t.Fatalf("renamed device %s→%s missing", old, new_)
		}
		if old == new_ {
			t.Fatalf("device %s not renamed", old)
		}
	}
	// The rewritten network must still simulate with an isomorphic data
	// plane: same number of delivered paths per renamed pair.
	s1, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.Simulate(anon)
	if err != nil {
		t.Fatalf("anonymized network fails to simulate: %v", err)
	}
	for _, src := range cfg.Hosts() {
		for _, dst := range cfg.Hosts() {
			if src == dst {
				continue
			}
			p1 := s1.Trace(src, dst)
			p2 := s2.Trace(names[src], names[dst])
			if len(p1) != len(p2) {
				t.Fatalf("path count differs for %s→%s: %d vs %d", src, dst, len(p1), len(p2))
			}
			for i := range p1 {
				if p1[i].Status != p2[i].Status || len(p1[i].Hops) != len(p2[i].Hops) {
					t.Fatalf("path shape differs for %s→%s", src, dst)
				}
				for j, hop := range p1[i].Hops {
					if names[hop] != p2[i].Hops[j] {
						t.Fatalf("hop mismatch %s→%s: %v vs %v", src, dst, p1[i].Hops, p2[i].Hops)
					}
				}
			}
		}
	}
}

func TestApplyPIIDeterministic(t *testing.T) {
	cfg := ospfNet(t)
	a1, _ := ApplyPII(cfg, []byte("k"))
	a2, _ := ApplyPII(cfg, []byte("k"))
	for name, text := range a1.Render() {
		if a2.Device(name) == nil || a2.Device(name).Render() != text {
			t.Fatal("PII stage not deterministic under equal keys")
		}
	}
}

func TestRealTwin(t *testing.T) {
	hosts := []string{"h1", "h12"}
	if got := realTwin("h1-fk1", hosts); got != "h1" {
		t.Fatalf("realTwin = %q", got)
	}
	if got := realTwin("h12-fk2", hosts); got != "h12" {
		t.Fatalf("realTwin = %q", got)
	}
	if got := realTwin("unrelated", hosts); got != "" {
		t.Fatalf("realTwin = %q", got)
	}
}

func TestFakeEdgesReported(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 13
	anon, rep, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	origSnap, _ := sim.Simulate(cfg)
	anonSnap, _ := sim.Simulate(anon)
	origTopo := origSnap.Net.Topology().RouterSubgraph()
	anonTopo := anonSnap.Net.Topology().RouterSubgraph()
	var gained []string
	for _, e := range anonTopo.Edges() {
		if !origTopo.HasEdge(e.A, e.B) {
			gained = append(gained, e.A+"-"+e.B)
		}
	}
	var reported []string
	for _, e := range rep.FakeEdges {
		reported = append(reported, e.A+"-"+e.B)
	}
	sort.Strings(gained)
	sort.Strings(reported)
	// Parallel fake links may collapse onto one topology edge, so the
	// reported set must cover the gained set.
	gm := map[string]bool{}
	for _, e := range reported {
		gm[e] = true
	}
	for _, e := range gained {
		if !gm[e] {
			t.Fatalf("gained edge %s not reported (reported %v)", e, reported)
		}
	}
}
