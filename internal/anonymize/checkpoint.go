package anonymize

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"confmask/internal/config"
	"confmask/internal/netaddr"
	"confmask/internal/topology"
)

// StageCheckpoint is a resumable snapshot of the pipeline taken at a stage
// boundary. It is everything a fresh process needs to continue the run and
// produce output byte-identical to an uninterrupted one:
//
//   - the intermediate network, as rendered IOS configuration text
//     (render ∘ parse round-trips the model exactly);
//   - the random-stream position, as a count of consumed source draws
//     (the pipeline's RNG is seeded, so replaying the count realigns it);
//   - the pool-independent bookkeeping a render cannot carry (the
//     Injected flags that mark anonymization artifacts);
//   - the partial report accumulated so far.
//
// The prefix pool needs no explicit state: allocation is "first free block
// not overlapping any used prefix", and every allocated prefix appears in
// the rendered intermediate configuration, so rebuilding the pool from the
// checkpoint's UsedPrefixes reproduces the allocation cursor exactly.
type StageCheckpoint struct {
	// Stage is the completed stage: "topology", "equivalence", or
	// "anonymity".
	Stage string `json:"stage"`
	// Configs is the intermediate network in rendered IOS form, keyed by
	// hostname.
	Configs map[string]string `json:"configs"`
	// RNGDraws counts the random source draws consumed up to the stage
	// boundary.
	RNGDraws uint64 `json:"rng_draws"`
	// InjectedIfaces maps device name → interface names whose Injected
	// flag was set; the flag is deliberately never rendered, so it must
	// ride along out of band.
	InjectedIfaces map[string][]string `json:"injected_ifaces,omitempty"`
	// Report is the partial report at the stage boundary (utility metrics
	// are recomputed at the end of the run and may be zero here).
	Report *Report `json:"report"`
	// BaselineDigests, when present, carries the preprocessed baseline's
	// per-destination digest columns, so a resumed run's equivalence
	// stage seeds its digest plane instead of re-extracting every
	// destination (sim.PairDigestsForSeeded).
	BaselineDigests *BaselineDigestDoc `json:"baseline_digests,omitempty"`
}

// BaselineDigestDoc is the serialized form of the baseline's per-pair
// digest plane: per-destination columns (hex of
// sim.PairDigests.ExportColumns) over an explicit host order. The host
// list gates reuse — a resume only seeds from the doc when its hosts
// match the input's host list exactly, since the column layout is
// defined by that order.
type BaselineDigestDoc struct {
	Hosts []string          `json:"hosts"`
	Cols  map[string]string `json:"cols"`
}

// baselineDigestSeed decodes the checkpoint's digest doc into seed
// columns for newBaseline, or nil when the doc is absent or was taken
// over a different host list. Individual columns that fail to decode
// are dropped (they fall back to extraction); hex length mismatches
// are caught downstream by the seeded extractor's column-length gate.
func baselineDigestSeed(cp *StageCheckpoint, hosts []string) map[string][]byte {
	doc := cp.BaselineDigests
	if doc == nil || !slices.Equal(doc.Hosts, hosts) {
		return nil
	}
	seed := make(map[string][]byte, len(doc.Cols))
	for dst, h := range doc.Cols {
		col, err := hex.DecodeString(h)
		if err != nil {
			continue
		}
		seed[dst] = col
	}
	return seed
}

// stageRank orders the checkpointable stages; resuming at a stage skips
// every stage of equal or lower rank.
func stageRank(stage string) int {
	switch stage {
	case "topology":
		return 1
	case "equivalence":
		return 2
	case "anonymity":
		return 3
	default:
		return 0
	}
}

// countingSource wraps a rand.Source64 and counts draws. Both Int63 and
// Uint64 of the standard source advance the underlying generator by exactly
// one step, so the count is a complete description of the stream position:
// fast-forwarding a fresh seeded source by n draws reproduces the stream a
// previous process left off at.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// skip advances the source by n draws without using the values.
func (s *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.n += n
}

// injectedIfaces collects the Injected interface marks of a network for a
// checkpoint.
func injectedIfaces(n *config.Network) map[string][]string {
	out := make(map[string][]string)
	for _, name := range n.Names() {
		d := n.Device(name)
		var ifs []string
		for _, i := range d.Interfaces {
			if i.Injected {
				ifs = append(ifs, i.Name)
			}
		}
		if len(ifs) > 0 {
			sort.Strings(ifs)
			out[name] = ifs
		}
	}
	return out
}

// restoreInjected re-applies Injected marks onto a network parsed back from
// a checkpoint (the renderer intentionally omits them so that shared output
// carries no artifact markers).
func restoreInjected(n *config.Network, marks map[string][]string) {
	for name, ifs := range marks {
		d := n.Device(name)
		if d == nil {
			continue
		}
		for _, ifname := range ifs {
			if i := d.Interface(ifname); i != nil {
				i.Injected = true
			}
		}
	}
}

// cloneReportForCheckpoint copies the resumable report fields. Timing is
// carried so a resumed run's report still accounts for pre-crash stage
// time; the line-accounting fields are recomputed at the end of every run.
func cloneReportForCheckpoint(rep *Report) *Report {
	c := *rep
	c.FakeEdges = append([]topology.Edge(nil), rep.FakeEdges...)
	c.FakeHosts = append([]string(nil), rep.FakeHosts...)
	c.FakeRouters = append([]string(nil), rep.FakeRouters...)
	return &c
}

// emitCheckpoint snapshots the pipeline at a completed stage boundary and
// hands it to the Checkpoint callback. The snapshot is self-contained: the
// callback may serialize it, persist it, or drop it at will.
//
// The baseline's digest plane rides along whenever it exists: at the
// topology boundary the ConfMask strategy forces the extraction (the
// very next stage needs the plane anyway, so the work is moved, not
// added), and later boundaries export whatever the run computed — so a
// process that dies mid-equivalence resumes without re-deriving a
// single clean destination.
func (o Options) emitCheckpoint(stage string, out *config.Network, src *countingSource, rep *Report, base *baseline) {
	if o.Checkpoint == nil {
		return
	}
	cp := &StageCheckpoint{
		Stage:          stage,
		Configs:        out.Render(),
		RNGDraws:       src.n,
		InjectedIfaces: injectedIfaces(out),
		Report:         cloneReportForCheckpoint(rep),
	}
	if base != nil {
		if stage == "topology" && o.Strategy == ConfMask {
			base.digests()
		}
		if base.dpDigDone {
			cols := base.dpDig.ExportColumns()
			doc := &BaselineDigestDoc{
				Hosts: append([]string(nil), base.hosts...),
				Cols:  make(map[string]string, len(cols)),
			}
			for dst, col := range cols {
				doc.Cols[dst] = hex.EncodeToString(col)
			}
			cp.BaselineDigests = doc
		}
	}
	o.Checkpoint(cp)
}

// resumeState rebuilds the pipeline's working state from a checkpoint:
// the intermediate network, a prefix pool whose allocation cursor matches
// the interrupted run, and the partial report.
func resumeState(cp *StageCheckpoint, src *countingSource) (*config.Network, *netaddr.Pool, *Report, error) {
	if stageRank(cp.Stage) == 0 {
		return nil, nil, nil, fmt.Errorf("anonymize: checkpoint has unknown stage %q", cp.Stage)
	}
	out, err := config.ParseNetwork(cp.Configs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("anonymize: parse checkpoint configs: %w", err)
	}
	restoreInjected(out, cp.InjectedIfaces)
	pool := netaddr.NewPool(out.UsedPrefixes(), nil)
	src.skip(cp.RNGDraws)
	rep := &Report{}
	if cp.Report != nil {
		rep = cloneReportForCheckpoint(cp.Report)
	}
	return out, pool, rep, nil
}
