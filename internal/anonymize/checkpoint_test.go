package anonymize

import (
	"context"
	"encoding/json"
	"errors"
	"slices"
	"testing"

	"confmask/internal/config"
)

// runCollectingCheckpoints runs the pipeline once, capturing every stage
// checkpoint and the final rendered output.
func runCollectingCheckpoints(t *testing.T, cfg *config.Network, opts Options) ([]*StageCheckpoint, map[string]string, *Report) {
	t.Helper()
	var cps []*StageCheckpoint
	opts.Checkpoint = func(cp *StageCheckpoint) { cps = append(cps, cp) }
	out, rep, err := Run(cfg, opts)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	return cps, out.Render(), rep
}

// assertSameRender fails unless the two rendered networks are byte-equal.
func assertSameRender(t *testing.T, want, got map[string]string, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d configs, want %d", label, len(got), len(want))
	}
	for name, text := range want {
		if got[name] != text {
			t.Fatalf("%s: config %s differs from uninterrupted run", label, name)
		}
	}
}

// TestCheckpointResumeByteIdentical is the core crash-safety property: for
// every stage checkpoint, a fresh pipeline resumed from it must produce
// output byte-identical to the uninterrupted run — including the stages
// that draw randomness after the resume point. The checkpoint is pushed
// through a JSON round trip first, exactly as the service journal stores
// it.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name     string
		strategy Strategy
		net      func(*testing.T) *config.Network
	}{
		{"ospf-confmask", ConfMask, ospfNet},
		{"bgp-confmask", ConfMask, bgpNet},
		{"ospf-strawman1", Strawman1, ospfNet},
		{"ospf-strawman2", Strawman2, ospfNet},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.net(t)
			opts := DefaultOptions()
			opts.KR = 3
			opts.KH = 3
			opts.NoiseP = 0.5 // high enough to exercise the repair loop
			opts.Seed = 42
			opts.Strategy = tc.strategy
			cps, want, wantRep := runCollectingCheckpoints(t, cfg, opts)
			if len(cps) != 3 {
				t.Fatalf("got %d checkpoints, want 3 (topology, equivalence, anonymity)", len(cps))
			}
			for _, cp := range cps {
				buf, err := json.Marshal(cp)
				if err != nil {
					t.Fatalf("marshal checkpoint %s: %v", cp.Stage, err)
				}
				var restored StageCheckpoint
				if err := json.Unmarshal(buf, &restored); err != nil {
					t.Fatalf("unmarshal checkpoint %s: %v", cp.Stage, err)
				}
				ropts := opts
				ropts.Resume = &restored
				out, rep, err := Run(cfg, ropts)
				if err != nil {
					t.Fatalf("resume from %s: %v", cp.Stage, err)
				}
				assertSameRender(t, want, out.Render(), "resume from "+cp.Stage)
				if rep.EquivIterations != wantRep.EquivIterations ||
					rep.EquivFilters != wantRep.EquivFilters ||
					rep.AnonFilters != wantRep.AnonFilters ||
					len(rep.FakeHosts) != len(wantRep.FakeHosts) ||
					len(rep.FakeEdges) != len(wantRep.FakeEdges) {
					t.Fatalf("resume from %s: report diverged: %+v vs %+v", cp.Stage, rep, wantRep)
				}
			}
		})
	}
}

// TestCheckpointResumeUsesDirtyRetrace resumes from the equivalence
// checkpoint, which forces Algorithm 2's repair loop — the
// DataPlaneForDirty consumer — to run against a network view rebuilt from
// persisted state. The FilterDiff cache of the interrupted process is gone,
// so the resumed run must re-derive its dirty sets from scratch and still
// converge to byte-identical output.
func TestCheckpointResumeUsesDirtyRetrace(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = 3
	opts.KH = 4
	opts.NoiseP = 0.9 // near-certain filter noise: the repair loop must fire
	opts.Seed = 7
	cps, want, _ := runCollectingCheckpoints(t, cfg, opts)
	var equivCP *StageCheckpoint
	for _, cp := range cps {
		if cp.Stage == "equivalence" {
			equivCP = cp
		}
	}
	if equivCP == nil {
		t.Fatal("no equivalence checkpoint")
	}
	ropts := opts
	ropts.Resume = equivCP
	out, rep, err := Run(cfg, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FakeHosts) == 0 {
		t.Fatal("anonymity stage did not run after resume")
	}
	assertSameRender(t, want, out.Render(), "resume before Algorithm 2")
}

// TestCancelMidAlgorithm2 cancels the pipeline while Algorithm 2 runs and
// asserts it returns ctx.Err() with no partial output. The cancel lands in
// the anonymity stage via the progress callback, and the repair loop's
// per-round context check is what must observe it.
func TestCancelMidAlgorithm2(t *testing.T) {
	cfg := ospfNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.KR = 3
	opts.KH = 3
	opts.NoiseP = 0.5
	opts.Seed = 3
	opts.Progress = func(stage string, iter int) {
		if stage == "anonymity" {
			cancel() // pipeline is inside step 2.2 when this returns
		}
	}
	out, rep, err := RunContext(ctx, cfg, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil || rep != nil {
		t.Fatal("cancelled run returned partial output")
	}
}

// TestResumeBadCheckpoint exercises the failure paths: unknown stage and
// unparsable intermediate configs fail cleanly.
func TestResumeBadCheckpoint(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = 3
	opts.Resume = &StageCheckpoint{Stage: "wat"}
	if _, _, err := Run(cfg, opts); err == nil {
		t.Fatal("unknown stage accepted")
	}
	opts.Resume = &StageCheckpoint{Stage: "topology", Configs: map[string]string{"x": "interface Y\n"}}
	if _, _, err := Run(cfg, opts); err == nil {
		t.Fatal("garbage checkpoint configs accepted")
	}
}

// TestCheckpointCarriesBaselineDigests pins the digest payload of stage
// checkpoints: under the ConfMask strategy the topology checkpoint
// already carries the baseline's per-destination digest columns (forced
// there because equivalence needs the plane immediately after), later
// checkpoints keep them, and the host list matches the input's. A
// resume whose doc was taken over a different host list must ignore the
// seed and still converge byte-identically.
func TestCheckpointCarriesBaselineDigests(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = 3
	opts.KH = 2
	opts.Seed = 11
	cps, want, _ := runCollectingCheckpoints(t, cfg, opts)
	hosts := cfg.Hosts()
	for _, cp := range cps {
		doc := cp.BaselineDigests
		if doc == nil {
			t.Fatalf("checkpoint %s carries no baseline digests", cp.Stage)
		}
		if !slices.Equal(doc.Hosts, hosts) {
			t.Fatalf("checkpoint %s digest hosts %v, want %v", cp.Stage, doc.Hosts, hosts)
		}
		if len(doc.Cols) != len(hosts) {
			t.Fatalf("checkpoint %s has %d digest columns, want %d", cp.Stage, len(doc.Cols), len(hosts))
		}
		for dst, col := range doc.Cols {
			if len(col) != 2*16*len(hosts) {
				t.Fatalf("checkpoint %s column %s is %d hex chars, want %d", cp.Stage, dst, len(col), 2*16*len(hosts))
			}
		}
	}

	// Host-list mismatch: the seed is ignored, the digests are
	// re-extracted, and the resume stays byte-identical.
	cp := *cps[0]
	doc := *cp.BaselineDigests
	doc.Hosts = append(append([]string(nil), doc.Hosts...), "no-such-host")
	cp.BaselineDigests = &doc
	ropts := opts
	ropts.Resume = &cp
	out, _, err := Run(cfg, ropts)
	if err != nil {
		t.Fatalf("resume with mismatched digest hosts: %v", err)
	}
	assertSameRender(t, want, out.Render(), "resume with mismatched digest hosts")
}

// TestCheckpointDigestSeedIsUsed proves the seeded resume path consumes
// the checkpointed columns rather than re-deriving them: a deliberately
// corrupted column makes the resumed equivalence stage's convergence
// assertion compare anonymized digests against the corrupted baseline,
// which must surface as a divergence error. (A resume that silently
// re-extracted would succeed — and silently waste the work the
// checkpoint was meant to save.)
func TestCheckpointDigestSeedIsUsed(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = 3
	opts.KH = 2
	opts.Seed = 11
	cps, _, _ := runCollectingCheckpoints(t, cfg, opts)
	if cps[0].Stage != "topology" {
		t.Fatalf("first checkpoint is %s, want topology", cps[0].Stage)
	}
	cp := *cps[0]
	doc := *cp.BaselineDigests
	doc.Cols = make(map[string]string, len(cp.BaselineDigests.Cols))
	for d, c := range cp.BaselineDigests.Cols {
		doc.Cols[d] = c
	}
	victim := doc.Hosts[0]
	col := []byte(doc.Cols[victim])
	// Flip a nibble of the (hosts[1], victim) digest — offset 16 bytes
	// into the column — not the (victim, victim) diagonal slot, which
	// the seeder zeroes regardless.
	if col[32] == 'f' {
		col[32] = '0'
	} else {
		col[32] = 'f'
	}
	doc.Cols[victim] = string(col)
	cp.BaselineDigests = &doc
	ropts := opts
	ropts.Resume = &cp
	if _, _, err := Run(cfg, ropts); err == nil {
		t.Fatal("resume with corrupted digest seed converged — seed was recomputed, not reused")
	}
}
