package anonymize

import (
	"testing"

	"confmask/internal/sim"
)

// TestPipelineKHOne: k_H = 1 means no fake hosts and no Algorithm 2, but
// topology anonymization and route equivalence still run.
func TestPipelineKHOne(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.KH = 1
	opts.Seed = 2
	_, rep := checkPipeline(t, ospfNet(t), opts)
	if len(rep.FakeHosts) != 0 || rep.AnonFilters != 0 {
		t.Fatalf("k_H=1 must add nothing: %+v", rep)
	}
}

// TestPipelineMaxNoise: p = 1.0 tries to filter every fake-host FIB entry;
// the reachability repair must claw back enough filters that every fake
// host stays reachable.
func TestPipelineMaxNoise(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.NoiseP = 1.0
	opts.Seed = 4
	checkPipeline(t, ospfNet(t), opts)
}

// TestPipelineKREqualsRouterCount: the extreme k_R forces a near-complete
// router graph and must still preserve the data plane.
func TestPipelineKRMax(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = len(cfg.Routers())
	opts.Seed = 10
	checkPipeline(t, cfg, opts)
}

// TestPipelineIdempotentEquivalence: anonymizing an already-anonymized
// network again must still be functionally equivalent to it.
func TestPipelineIdempotentEquivalence(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 1
	first, _, err := Run(ospfNet(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = 2
	second, _, err := Run(first, opts)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sim.Simulate(first)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.Simulate(second)
	if err != nil {
		t.Fatal(err)
	}
	hosts := first.Hosts() // includes the first round's fake hosts
	if diffs := sim.DiffPairs(s1.DataPlaneFor(hosts), s2.DataPlaneFor(hosts), hosts); len(diffs) != 0 {
		t.Fatalf("double anonymization changed forwarding for %d pairs", len(diffs))
	}
}

// TestStrategyStrings pins the Strategy enum's display names used in CLI
// flags and reports.
func TestStrategyStrings(t *testing.T) {
	if ConfMask.String() != "confmask" || Strawman1.String() != "strawman1" || Strawman2.String() != "strawman2" {
		t.Fatal("strategy names wrong")
	}
}

// TestTimingAccounted ensures the report's stage timings sum to Total.
func TestTimingAccounted(t *testing.T) {
	tm := Timing{Preprocess: 1, Topology: 2, RouteEquiv: 3, RouteAnon: 4}
	if tm.Total() != 10 {
		t.Fatalf("Total = %d", tm.Total())
	}
}
