package anonymize

import (
	"testing"

	"confmask/internal/config"
	"confmask/internal/netgen"
)

func eigrpNet(t *testing.T) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.EIGRP)
	for _, r := range []string{"r1", "r2", "r3", "r4", "r5"} {
		b.Router(r)
	}
	b.Link("r1", "r2").Link("r2", "r3").Link("r3", "r4").Link("r4", "r5").Link("r5", "r1").Link("r2", "r5")
	b.Host("h1", "r1").Host("h3", "r3").Host("h4", "r4")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// A non-default delay exercises the "same link properties" clause of
	// the distance-vector SFE condition.
	cfg.Device("r2").Interfaces[0].Delay = 30
	return cfg
}

func TestPipelineEIGRP(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 12
	_, rep := checkPipeline(t, eigrpNet(t), opts)
	if len(rep.FakeEdges) == 0 {
		t.Skip("no fake edges needed; filters untested on this seed")
	}
}

func TestPipelineEIGRPStrawmen(t *testing.T) {
	for _, strat := range []Strategy{Strawman1, Strawman2} {
		opts := DefaultOptions()
		opts.KR = 3
		opts.Seed = 12
		opts.Strategy = strat
		checkPipeline(t, eigrpNet(t), opts)
	}
}

func TestPipelineEIGRPFakeRouters(t *testing.T) {
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 12
	opts.FakeRouters = 2
	_, rep := checkPipeline(t, eigrpNet(t), opts)
	if len(rep.FakeRouters) != 2 {
		t.Fatalf("fake routers = %v", rep.FakeRouters)
	}
}
