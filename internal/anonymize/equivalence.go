package anonymize

import (
	"context"
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"strings"

	"confmask/internal/config"
	"confmask/internal/sim"
)

// addFilter installs a distribute-list deny rule for prefix p at router r
// against the next hop nh, choosing the attachment point the way the
// paper's implementation does (§6): eBGP-learned routes get a deny on the
// corresponding `neighbor ... distribute-list ... in`, and IGP-learned (or
// iBGP-resolved) routes get a deny on the `distribute-list prefix ... in
// <interface>` of the next-hop interface. It reports whether a new deny
// rule was added (false when the rule already existed or no attachment
// point exists).
func addFilter(cfg *config.Network, view *sim.Net, r string, nh sim.NextHop, p netip.Prefix, src sim.Source) bool {
	d := cfg.Device(r)
	if d == nil {
		return false
	}
	if src == sim.SrcEBGP {
		return addNeighborFilter(cfg, view, d, nh, p)
	}
	return addInterfaceFilter(d, nh.Iface, p, src)
}

// addNeighborFilter denies p on the BGP session riding the link behind nh.
func addNeighborFilter(cfg *config.Network, view *sim.Net, d *config.Device, nh sim.NextHop, p netip.Prefix) bool {
	if d.BGP == nil {
		return false
	}
	// Locate the far-end address of the link used by the next hop, then
	// the matching neighbor statement.
	var peerAddr netip.Addr
	for _, l := range view.LinksOf(d.Hostname) {
		local, _ := l.Local(d.Hostname)
		other, _ := l.Other(d.Hostname)
		if local.Iface == nh.Iface && other.Device == nh.Device {
			peerAddr = other.Addr
			break
		}
	}
	if !peerAddr.IsValid() {
		return false
	}
	for _, nb := range d.BGP.Neighbors {
		if nb.Addr != peerAddr {
			continue
		}
		name := nb.DistributeListIn
		if name == "" {
			name = "CMF-BGP-" + sanitize(peerAddr.String())
			nb.DistributeListIn = name
		}
		pl := d.EnsurePrefixList(name)
		if pl.Denies(p) {
			return false
		}
		pl.Deny(p)
		return true
	}
	return false
}

// igpInFilters selects the inbound distribute-list map of the protocol
// that learned the route, keyed by the route's source — not by whichever
// protocol happens to be configured first. On a multi-protocol device the
// old first-configured selection attached RIP/EIGRP denies to the OSPF
// process, where they filter nothing, so Algorithm 1 stalled: the second
// iteration saw the deny already present and reported no change while the
// wrong route survived. SrcIBGP routes resolve their next hops through
// OSPF, and the installation-time rejection point is the OSPF interface
// filter (see bgpFIBRoutes), so they attach there too.
//
// When create is set a missing filter map is allocated; tag names the
// protocol for generated list names, keeping the per-protocol lists of a
// shared interface distinct.
func igpInFilters(d *config.Device, src sim.Source, create bool) (filters map[string]string, tag string) {
	switch src {
	case sim.SrcOSPF, sim.SrcIBGP:
		if d.OSPF == nil {
			return nil, ""
		}
		if d.OSPF.InFilters == nil && create {
			d.OSPF.InFilters = make(map[string]string)
		}
		return d.OSPF.InFilters, "OSPF"
	case sim.SrcEIGRP:
		if d.EIGRP == nil {
			return nil, ""
		}
		if d.EIGRP.InFilters == nil && create {
			d.EIGRP.InFilters = make(map[string]string)
		}
		return d.EIGRP.InFilters, "EIGRP"
	case sim.SrcRIP:
		if d.RIP == nil {
			return nil, ""
		}
		if d.RIP.InFilters == nil && create {
			d.RIP.InFilters = make(map[string]string)
		}
		return d.RIP.InFilters, "RIP"
	}
	return nil, ""
}

// addInterfaceFilter denies p on the inbound distribute-list of iface for
// the protocol that learned the route.
func addInterfaceFilter(d *config.Device, iface string, p netip.Prefix, src sim.Source) bool {
	filters, tag := igpInFilters(d, src, true)
	if filters == nil {
		return false
	}
	name, ok := filters[iface]
	if !ok {
		name = "CMF-" + tag + "-" + sanitize(iface)
		filters[iface] = name
	}
	pl := d.EnsurePrefixList(name)
	if pl.Denies(p) {
		return false
	}
	pl.Deny(p)
	return true
}

// removeFilterDeny removes a deny rule previously added for p at router r
// against nh; used by Algorithm 2's reachability repair.
func removeFilterDeny(cfg *config.Network, view *sim.Net, r string, nh sim.NextHop, p netip.Prefix, src sim.Source) bool {
	d := cfg.Device(r)
	if d == nil {
		return false
	}
	if src == sim.SrcEBGP && d.BGP != nil {
		for _, l := range view.LinksOf(r) {
			local, _ := l.Local(r)
			other, _ := l.Other(r)
			if local.Iface != nh.Iface || other.Device != nh.Device {
				continue
			}
			for _, nb := range d.BGP.Neighbors {
				if nb.Addr == other.Addr && nb.DistributeListIn != "" {
					if pl := d.PrefixList(nb.DistributeListIn); pl != nil {
						return pl.RemoveDeny(p)
					}
				}
			}
		}
		return false
	}
	filters, _ := igpInFilters(d, src, false)
	if name, ok := filters[nh.Iface]; ok {
		if pl := d.PrefixList(name); pl != nil {
			return pl.RemoveDeny(p)
		}
	}
	return false
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// routeEquivalence is Algorithm 1 (§5.2): repeatedly simulate the
// intermediate network and, for every ⟨router, host destination⟩ FIB entry
// whose next hop is neither an original next hop nor reached over an
// original link, add a deny filter for that destination on the fake link.
// The loop ends when an iteration adds no filter, at which point the SFE
// conditions hold; a final data-plane comparison asserts functional
// equivalence. Cancellation is observed between iterations — each
// iteration costs a control-plane simulation, so this is where long jobs
// must notice a dead context.
//
// The network view is built once and reused: the loop only adds
// distribute-list entries, so each iteration re-derives just the filter
// view (InvalidateFilters) instead of repeating link discovery, SPF, and
// BGP session discovery.
func routeEquivalence(ctx context.Context, out *config.Network, base *baseline, opts Options) (int, int, error) {
	filters := 0
	view, err := sim.Build(out)
	if err != nil {
		return 0, filters, err
	}
	maxIter := opts.MaxIterations
	for iter := 1; iter <= maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return iter - 1, filters, err
		}
		opts.progress("equivalence", iter)
		if iter > 1 {
			view.InvalidateFilters()
		}
		snap := sim.SimulateNetOpts(view, opts.simOpts())
		// The scan fans out per router: addFilter only ever mutates the
		// scanned router's own device (its prefix lists and distribute-list
		// maps), and its add-or-skip decision reads only the snapshot, the
		// immutable baseline, and that same device — so routers are
		// independent within an iteration and the filters added are
		// identical at any worker count. Per-slot counts merge after the
		// join.
		routers := out.Routers()
		counts := make([]int, len(routers))
		sim.ForEachIndex(opts.simOpts().Workers(), len(routers), func(ri int) {
			r := routers[ri]
			fib := snap.FIB(r)
			if fib == nil {
				return
			}
			orig, known := base.nextHops[r]
			if !known {
				// A fake router (scale-obfuscation extension): it never
				// carries original traffic — wrong paths through it are
				// filtered at the real routers feeding it — and leaving
				// its tables unfiltered is what keeps it inconspicuous.
				return
			}
			for _, p := range base.dests {
				rt := fib[p]
				if rt == nil || rt.Source == sim.SrcConnected || rt.Source == sim.SrcStatic {
					continue
				}
				for _, nh := range rt.NextHops {
					if orig[p.String()][nh.Device] {
						continue // an original next hop
					}
					if base.topo.HasEdge(r, nh.Device) {
						continue // (r, nxt) ∈ E: real link, fixed upstream
					}
					if addFilter(out, snap.Net, r, nh, p, rt.Source) {
						counts[ri]++
					}
				}
			}
		})
		changed := 0
		for _, c := range counts {
			changed += c
		}
		filters += changed
		if changed == 0 {
			// Functional-equivalence assertion over digests: per-pair
			// 128-bit fingerprints of the canonical path sets, extracted
			// through transient per-destination engines — no H² path
			// materialization for either side of the comparison.
			anonDig := snap.PairDigestsFor(base.hosts)
			if pairs := base.digests().DiffPairs(anonDig); len(pairs) != 0 {
				return iter, filters, fmt.Errorf("converged after %d iterations but %d host pairs still differ (first: %v)", iter, len(pairs), pairs[0])
			}
			// External equivalence classes: every router's next-hop set
			// must match the original exactly (the route-equivalence
			// requirement extended to §9 Internet destinations). Compare
			// the sorted slices element-wise — joined strings would let a
			// name containing the separator alias a different set.
			for _, r := range base.cfg.Routers() {
				for _, p := range base.external {
					got := snap.NextHopRouters(r, p)
					want := make([]string, 0, len(base.nextHops[r][p.String()]))
					for nh := range base.nextHops[r][p.String()] {
						want = append(want, nh)
					}
					sort.Strings(want)
					if !slices.Equal(got, want) {
						return iter, filters, fmt.Errorf("external destination %v diverged on %s: %q vs %q", p, r, got, want)
					}
				}
			}
			return iter, filters, nil
		}
	}
	return maxIter, filters, fmt.Errorf("no convergence within %d iterations", maxIter)
}
