package anonymize

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"confmask/internal/config"
	"confmask/internal/sim"
)

// addFilter installs a distribute-list deny rule for prefix p at router r
// against the next hop nh, choosing the attachment point the way the
// paper's implementation does (§6): eBGP-learned routes get a deny on the
// corresponding `neighbor ... distribute-list ... in`, and IGP-learned (or
// iBGP-resolved) routes get a deny on the `distribute-list prefix ... in
// <interface>` of the next-hop interface. It reports whether a new deny
// rule was added (false when the rule already existed or no attachment
// point exists).
func addFilter(cfg *config.Network, view *sim.Net, r string, nh sim.NextHop, p netip.Prefix, src sim.Source) bool {
	d := cfg.Device(r)
	if d == nil {
		return false
	}
	if src == sim.SrcEBGP {
		return addNeighborFilter(cfg, view, d, nh, p)
	}
	return addInterfaceFilter(d, nh.Iface, p)
}

// addNeighborFilter denies p on the BGP session riding the link behind nh.
func addNeighborFilter(cfg *config.Network, view *sim.Net, d *config.Device, nh sim.NextHop, p netip.Prefix) bool {
	if d.BGP == nil {
		return false
	}
	// Locate the far-end address of the link used by the next hop, then
	// the matching neighbor statement.
	var peerAddr netip.Addr
	for _, l := range view.LinksOf(d.Hostname) {
		local, _ := l.Local(d.Hostname)
		other, _ := l.Other(d.Hostname)
		if local.Iface == nh.Iface && other.Device == nh.Device {
			peerAddr = other.Addr
			break
		}
	}
	if !peerAddr.IsValid() {
		return false
	}
	for _, nb := range d.BGP.Neighbors {
		if nb.Addr != peerAddr {
			continue
		}
		name := nb.DistributeListIn
		if name == "" {
			name = "CMF-BGP-" + sanitize(peerAddr.String())
			nb.DistributeListIn = name
		}
		pl := d.EnsurePrefixList(name)
		if pl.Denies(p) {
			return false
		}
		pl.Deny(p)
		return true
	}
	return false
}

// addInterfaceFilter denies p on the IGP inbound distribute-list of iface.
func addInterfaceFilter(d *config.Device, iface string, p netip.Prefix) bool {
	var filters map[string]string
	switch {
	case d.OSPF != nil:
		if d.OSPF.InFilters == nil {
			d.OSPF.InFilters = make(map[string]string)
		}
		filters = d.OSPF.InFilters
	case d.EIGRP != nil:
		if d.EIGRP.InFilters == nil {
			d.EIGRP.InFilters = make(map[string]string)
		}
		filters = d.EIGRP.InFilters
	case d.RIP != nil:
		if d.RIP.InFilters == nil {
			d.RIP.InFilters = make(map[string]string)
		}
		filters = d.RIP.InFilters
	default:
		return false
	}
	name, ok := filters[iface]
	if !ok {
		name = "CMF-" + sanitize(iface)
		filters[iface] = name
	}
	pl := d.EnsurePrefixList(name)
	if pl.Denies(p) {
		return false
	}
	pl.Deny(p)
	return true
}

// removeFilterDeny removes a deny rule previously added for p at router r
// against nh; used by Algorithm 2's reachability repair.
func removeFilterDeny(cfg *config.Network, view *sim.Net, r string, nh sim.NextHop, p netip.Prefix, src sim.Source) bool {
	d := cfg.Device(r)
	if d == nil {
		return false
	}
	if src == sim.SrcEBGP && d.BGP != nil {
		for _, l := range view.LinksOf(r) {
			local, _ := l.Local(r)
			other, _ := l.Other(r)
			if local.Iface != nh.Iface || other.Device != nh.Device {
				continue
			}
			for _, nb := range d.BGP.Neighbors {
				if nb.Addr == other.Addr && nb.DistributeListIn != "" {
					if pl := d.PrefixList(nb.DistributeListIn); pl != nil {
						return pl.RemoveDeny(p)
					}
				}
			}
		}
		return false
	}
	var filters map[string]string
	switch {
	case d.OSPF != nil:
		filters = d.OSPF.InFilters
	case d.EIGRP != nil:
		filters = d.EIGRP.InFilters
	case d.RIP != nil:
		filters = d.RIP.InFilters
	}
	if name, ok := filters[nh.Iface]; ok {
		if pl := d.PrefixList(name); pl != nil {
			return pl.RemoveDeny(p)
		}
	}
	return false
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// routeEquivalence is Algorithm 1 (§5.2): repeatedly simulate the
// intermediate network and, for every ⟨router, host destination⟩ FIB entry
// whose next hop is neither an original next hop nor reached over an
// original link, add a deny filter for that destination on the fake link.
// The loop ends when an iteration adds no filter, at which point the SFE
// conditions hold; a final data-plane comparison asserts functional
// equivalence. Cancellation is observed between iterations — each
// iteration costs a full control-plane simulation, so this is where long
// jobs must notice a dead context.
func routeEquivalence(ctx context.Context, out *config.Network, base *baseline, opts Options) (int, int, error) {
	filters := 0
	maxIter := opts.MaxIterations
	for iter := 1; iter <= maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return iter - 1, filters, err
		}
		opts.progress("equivalence", iter)
		snap, err := sim.Simulate(out)
		if err != nil {
			return iter, filters, err
		}
		changed := 0
		for _, r := range out.Routers() {
			fib := snap.FIB(r)
			if fib == nil {
				continue
			}
			orig, known := base.nextHops[r]
			if !known {
				// A fake router (scale-obfuscation extension): it never
				// carries original traffic — wrong paths through it are
				// filtered at the real routers feeding it — and leaving
				// its tables unfiltered is what keeps it inconspicuous.
				continue
			}
			for _, p := range base.dests {
				rt := fib[p]
				if rt == nil || rt.Source == sim.SrcConnected || rt.Source == sim.SrcStatic {
					continue
				}
				for _, nh := range rt.NextHops {
					if orig[p.String()][nh.Device] {
						continue // an original next hop
					}
					if base.topo.HasEdge(r, nh.Device) {
						continue // (r, nxt) ∈ E: real link, fixed upstream
					}
					if addFilter(out, snap.Net, r, nh, p, rt.Source) {
						changed++
					}
				}
			}
		}
		filters += changed
		if changed == 0 {
			dp := snap.DataPlaneFor(base.hosts)
			if !sim.EqualOver(base.dp, dp, base.hosts) {
				pairs := sim.DiffPairs(base.dp, dp, base.hosts)
				return iter, filters, fmt.Errorf("converged after %d iterations but %d host pairs still differ (first: %v)", iter, len(pairs), pairs[0])
			}
			// External equivalence classes: every router's next-hop set
			// must match the original exactly (the route-equivalence
			// requirement extended to §9 Internet destinations).
			for _, r := range base.cfg.Routers() {
				for _, p := range base.external {
					got := strings.Join(snap.NextHopRouters(r, p), ",")
					var want []string
					for nh := range base.nextHops[r][p.String()] {
						want = append(want, nh)
					}
					sort.Strings(want)
					if got != strings.Join(want, ",") {
						return iter, filters, fmt.Errorf("external destination %v diverged on %s: %q vs %q", p, r, got, strings.Join(want, ","))
					}
				}
			}
			return iter, filters, nil
		}
	}
	return maxIter, filters, fmt.Errorf("no convergence within %d iterations", maxIter)
}
