package anonymize

import (
	"net/netip"
	"strings"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netbuild"
	"confmask/internal/sim"
)

// externalNet is the 3-AS chain plus two external equivalence-class
// prefixes: one announced from the AS100 edge, one from the AS300 edge —
// the §9 "Internet hosts" extension.
func externalNet(t *testing.T) (*config.Network, []netip.Prefix) {
	t.Helper()
	cfg := bgpNet(t)
	pool := netbuild.PoolFor(cfg)
	var ecs []netip.Prefix
	for _, r := range []string{"a1", "c2"} {
		p, err := netbuild.AddExternalDestination(cfg, pool, r)
		if err != nil {
			t.Fatal(err)
		}
		ecs = append(ecs, p)
	}
	return cfg, ecs
}

func TestExternalDestinationsSimulate(t *testing.T) {
	cfg, ecs := externalNet(t)
	snap, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := snap.Net.ExternalDestinations()
	if len(got) != 2 {
		t.Fatalf("external destinations = %v", got)
	}
	// Every router must hold a route for each EC: discard at the origin,
	// BGP elsewhere.
	for _, r := range cfg.Routers() {
		for _, p := range ecs {
			nhs := snap.NextHopRouters(r, p)
			if len(nhs) == 0 {
				t.Fatalf("router %s has no route to EC %v", r, p)
			}
		}
	}
	// The origin's entry is the discard anchor.
	a1 := snap.FIB("a1")[ecs[0]]
	if a1 == nil || a1.Source != sim.SrcStatic || a1.NextHops[0].Device != sim.DiscardDevice {
		t.Fatalf("origin anchor wrong: %+v", a1)
	}
}

// TestPipelinePreservesExternalDestinations is the §9 extension's
// equivalence guarantee: after anonymization every router forwards
// traffic for external equivalence classes exactly as before.
func TestPipelinePreservesExternalDestinations(t *testing.T) {
	cfg, ecs := externalNet(t)
	opts := DefaultOptions()
	opts.KR = 2
	opts.Seed = 13
	anon, _ := checkPipeline(t, cfg, opts) // host-level guarantees

	so, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := sim.Simulate(anon)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cfg.Routers() {
		for _, p := range ecs {
			want := strings.Join(so.NextHopRouters(r, p), ",")
			got := strings.Join(sa.NextHopRouters(r, p), ",")
			if want != got {
				t.Fatalf("EC %v next hops changed on %s: %q → %q", p, r, want, got)
			}
		}
	}
}

func TestExternalDestinationRoundTrip(t *testing.T) {
	cfg, ecs := externalNet(t)
	parsed, err := config.ParseNetwork(cfg.Render())
	if err != nil {
		t.Fatal(err)
	}
	d := parsed.Device("a1")
	found := false
	for _, s := range d.Statics {
		if s.Discard && s.Prefix == ecs[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("Null0 static lost in round trip")
	}
}

func TestAddExternalDestinationErrors(t *testing.T) {
	cfg := ospfNet(t) // no BGP
	pool := netbuild.PoolFor(cfg)
	if _, err := netbuild.AddExternalDestination(cfg, pool, "r1"); err == nil {
		t.Fatal("external destination on non-BGP router accepted")
	}
	if _, err := netbuild.AddExternalDestination(cfg, pool, "missing"); err == nil {
		t.Fatal("unknown router accepted")
	}
}
