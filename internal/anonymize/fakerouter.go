package anonymize

import (
	"fmt"
	"math/rand"

	"confmask/internal/config"
	"confmask/internal/netaddr"
	"confmask/internal/netbuild"
)

// addFakeRouters implements the paper's §9 network-scale-obfuscation
// extension: it generates n fake routers with plausible configurations and
// wires each to 2–3 random real routers over fake links.
//
// Safety argument (the reason functional equivalence is unaffected): no
// original routing path traverses a fake router, because entering one
// requires a fake link out of a *real* router, and Algorithm 1 filters
// every wrong next hop over fake links at the real side. The fake routers
// themselves are never filtered — filtering them would imprint the very
// "denies everything" pattern an adversary could hunt for — so they hold
// ordinary routing tables and even carry fake-host traffic, which is what
// makes them blend in.
//
// Link costs follow the same invariant as fake links (SFE link-state
// condition 2): a through-path p_i → fr → p_j must never cost less than
// the original distance dist(p_i, p_j), or remote routers would re-rank
// their *real* next hops — a distortion no fake-link filter can repair.
// Each attachment therefore carries cost ⌈D/2⌉, where D is the maximum
// original pairwise distance among the attachment points, making every
// through-path cost 2⌈D/2⌉ ≥ D ≥ dist(p_i, p_j). Ties that arise at the
// attachment routers themselves ride fake links and are rejected by
// Algorithm 1 as usual. RIP needs no tuning: its hop metric shortcuts are
// blocked at reception by the same filters.
//
// Only IGP (OSPF/RIP) networks are supported: auto-generating BGP speakers
// that are indistinguishable from human-configured ones is the open
// problem the paper explicitly leaves to future work.
func addFakeRouters(out *config.Network, pool *netaddr.Pool, base *baseline, n int, rng *rand.Rand) ([]string, error) {
	routers := out.Routers()
	if len(routers) == 0 {
		return nil, fmt.Errorf("no routers to attach to")
	}
	var proto struct {
		ospf, rip, eigrp, bgp bool
		eigrpASN              int
	}
	for _, r := range routers {
		d := out.Device(r)
		proto.ospf = proto.ospf || d.OSPF != nil
		proto.rip = proto.rip || d.RIP != nil
		proto.bgp = proto.bgp || d.BGP != nil
		if d.EIGRP != nil {
			proto.eigrp = true
			proto.eigrpASN = d.EIGRP.ASN
		}
	}
	if proto.bgp {
		return nil, fmt.Errorf("scale obfuscation supports IGP-only networks (BGP router synthesis is future work)")
	}

	var names []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("fr%d", i+1)
		for out.Device(name) != nil {
			name += "x"
		}
		d := &config.Device{Hostname: name, Kind: config.RouterKind}
		switch {
		case proto.ospf:
			d.OSPF = &config.OSPF{ProcessID: 1, InFilters: map[string]string{}}
		case proto.eigrp:
			d.EIGRP = &config.EIGRP{ASN: proto.eigrpASN, InFilters: map[string]string{}}
		case proto.rip:
			d.RIP = &config.RIP{InFilters: map[string]string{}}
		}
		out.Add(d)

		// Attach to 2–3 distinct random real routers. Degree ≥ 2 keeps
		// the fake router from being a conspicuous stub.
		degree := 2 + rng.Intn(2)
		if degree > len(routers) {
			degree = len(routers)
		}
		perm := rng.Perm(len(routers))
		peers := make([]string, 0, degree)
		for j := 0; j < degree; j++ {
			peers = append(peers, routers[perm[j]])
		}
		// Distance-preserving cost for OSPF attachments.
		maxDist := 0
		for _, a := range peers {
			for _, b := range peers {
				if d, ok := base.snap.OSPFDist.Dist(a, b); ok && d > maxDist {
					maxDist = d
				}
			}
		}
		cost := (maxDist + 1) / 2
		if cost < 1 {
			cost = 0 // default cost; e.g. RIP networks
		}
		for _, peer := range peers {
			if _, err := netbuild.AddP2PLink(out, pool, name, peer, netbuild.LinkOpts{
				CostA: cost, CostB: cost, Injected: true,
			}); err != nil {
				return nil, err
			}
		}
		names = append(names, name)
	}
	return names, nil
}
