package anonymize

import (
	"testing"

	"confmask/internal/sim"
)

func TestPipelineFakeRouters(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 21
	opts.FakeRouters = 3
	anon, rep := checkPipeline(t, cfg, opts)
	if len(rep.FakeRouters) != 3 {
		t.Fatalf("fake routers = %v", rep.FakeRouters)
	}
	if got := len(anon.Routers()); got != len(cfg.Routers())+3 {
		t.Fatalf("router count %d, want %d", got, len(cfg.Routers())+3)
	}
	// The fake routers must be reachable parts of the IGP (they hold
	// routing tables), yet no real host traffic may traverse them.
	snap, err := sim.Simulate(anon)
	if err != nil {
		t.Fatal(err)
	}
	dp := snap.DataPlaneFor(cfg.Hosts())
	fake := map[string]bool{}
	for _, fr := range rep.FakeRouters {
		fake[fr] = true
		if len(snap.FIB(fr)) == 0 {
			t.Fatalf("fake router %s has an empty FIB (conspicuous)", fr)
		}
	}
	for pair, paths := range dp.Pairs {
		for _, p := range paths {
			for _, hop := range p.Hops {
				if fake[hop] {
					t.Fatalf("real traffic %v traverses fake router %s: %v", pair, hop, p.Hops)
				}
			}
		}
	}
}

func TestPipelineFakeRoutersRIP(t *testing.T) {
	cfg := ripNet(t)
	opts := DefaultOptions()
	opts.KR = 3
	opts.Seed = 8
	opts.FakeRouters = 2
	_, rep := checkPipeline(t, cfg, opts)
	if len(rep.FakeRouters) != 2 {
		t.Fatalf("fake routers = %v", rep.FakeRouters)
	}
}

func TestFakeRoutersRejectBGP(t *testing.T) {
	cfg := bgpNet(t)
	opts := DefaultOptions()
	opts.KR = 2
	opts.FakeRouters = 1
	if _, _, err := Run(cfg, opts); err == nil {
		t.Fatal("expected error: BGP router synthesis is unsupported")
	}
}

func TestFakeRoutersCountedInAnonymity(t *testing.T) {
	cfg := ospfNet(t)
	opts := DefaultOptions()
	opts.KR = 4
	opts.Seed = 33
	opts.FakeRouters = 2
	anon, _, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Simulate(anon)
	if err != nil {
		t.Fatal(err)
	}
	// k_R must hold over the graph *including* the fake routers.
	if kd := snap.Net.Topology().MinSameDegreeCount(); kd < opts.KR {
		t.Fatalf("k_d = %d < %d with fake routers present", kd, opts.KR)
	}
}
