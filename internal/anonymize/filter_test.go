package anonymize

import (
	"net/netip"
	"testing"

	"confmask/internal/sim"
)

func TestAddFilterOSPFInterface(t *testing.T) {
	cfg := ospfNet(t)
	view, err := sim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := netip.MustParsePrefix("10.99.0.0/24")
	l := view.LinkBetween("r1", "r2")
	local, _ := l.Local("r1")
	nh := sim.NextHop{Device: "r2", Iface: local.Iface}

	if !addFilter(cfg, view, "r1", nh, p, sim.SrcOSPF) {
		t.Fatal("first addFilter returned false")
	}
	if addFilter(cfg, view, "r1", nh, p, sim.SrcOSPF) {
		t.Fatal("duplicate addFilter returned true")
	}
	d := cfg.Device("r1")
	name := d.OSPF.InFilters[local.Iface]
	if name == "" || !d.PrefixList(name).Denies(p) {
		t.Fatalf("filter not installed: %v", d.OSPF.InFilters)
	}
	// iBGP-resolved routes use the same interface attachment.
	if addFilter(cfg, view, "r1", nh, p, sim.SrcIBGP) {
		t.Fatal("iBGP path should hit the same existing deny")
	}

	if !removeFilterDeny(cfg, view, "r1", nh, p, sim.SrcOSPF) {
		t.Fatal("removeFilterDeny failed")
	}
	if d.PrefixList(name).Denies(p) {
		t.Fatal("deny survived removal")
	}
	if removeFilterDeny(cfg, view, "r1", nh, p, sim.SrcOSPF) {
		t.Fatal("double removal returned true")
	}
}

func TestAddFilterBGPNeighbor(t *testing.T) {
	cfg := bgpNet(t)
	view, err := sim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := netip.MustParsePrefix("10.99.0.0/24")
	l := view.LinkBetween("a2", "b1") // eBGP link
	local, _ := l.Local("a2")
	nh := sim.NextHop{Device: "b1", Iface: local.Iface}
	if !addFilter(cfg, view, "a2", nh, p, sim.SrcEBGP) {
		t.Fatal("eBGP addFilter failed")
	}
	found := false
	for _, nb := range cfg.Device("a2").BGP.Neighbors {
		if nb.DistributeListIn != "" && cfg.Device("a2").PrefixList(nb.DistributeListIn) != nil {
			if cfg.Device("a2").PrefixList(nb.DistributeListIn).Denies(p) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("neighbor distribute-list not installed")
	}
	if !removeFilterDeny(cfg, view, "a2", nh, p, sim.SrcEBGP) {
		t.Fatal("eBGP removeFilterDeny failed")
	}
}

func TestAddFilterUnknownTargets(t *testing.T) {
	cfg := ospfNet(t)
	view, err := sim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := netip.MustParsePrefix("10.99.0.0/24")
	if addFilter(cfg, view, "missing", sim.NextHop{}, p, sim.SrcOSPF) {
		t.Fatal("filter on unknown router accepted")
	}
	// eBGP filter when the device has no BGP process.
	if addFilter(cfg, view, "r1", sim.NextHop{Device: "r2", Iface: "x"}, p, sim.SrcEBGP) {
		t.Fatal("eBGP filter on non-BGP device accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("GigabitEthernet1/0/3"); got != "GigabitEthernet1-0-3" {
		t.Fatalf("sanitize = %q", got)
	}
	if got := sanitize("10.0.0.1"); got != "10-0-0-1" {
		t.Fatalf("sanitize = %q", got)
	}
}

func TestFakeLinkCostsDefaults(t *testing.T) {
	cfg := ripNet(t)
	base, err := newBaseline(cfg, sim.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// RIP network: no OSPF distances → protocol-default costs.
	a, b := fakeLinkCosts(base, "r1", "r3")
	if a != 0 || b != 0 {
		t.Fatalf("RIP fake link costs = %d,%d, want defaults", a, b)
	}
	cfg2 := ospfNet(t)
	base2, err := newBaseline(cfg2, sim.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// OSPF: min_cost both directions; r1–r3 shortest path is 1+1 = 2.
	a2, b2 := fakeLinkCosts(base2, "r1", "r3")
	if a2 != 2 || b2 != 2 {
		t.Fatalf("OSPF fake link costs = %d,%d, want 2,2", a2, b2)
	}
}
