package anonymize

import (
	"context"
	"net/netip"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netaddr"
	"confmask/internal/netbuild"
	"confmask/internal/netgen"
	"confmask/internal/sim"
)

// TestAddInterfaceFilterSourceKeyed pins the attachment rule: the deny
// must land on the inbound distribute-list of the protocol that learned
// the route. The pre-fix code attached to the first configured protocol
// (OSPF won), where a RIP/EIGRP deny filters nothing.
func TestAddInterfaceFilterSourceKeyed(t *testing.T) {
	p := netip.MustParsePrefix("10.9.0.0/24")
	d := &config.Device{
		Hostname: "r",
		Kind:     config.RouterKind,
		OSPF:     &config.OSPF{ProcessID: 1},
		RIP:      &config.RIP{},
		EIGRP:    &config.EIGRP{ASN: 100},
	}
	if !addInterfaceFilter(d, "Ethernet0", p, sim.SrcRIP) {
		t.Fatal("RIP deny not added")
	}
	if len(d.RIP.InFilters) != 1 || len(d.OSPF.InFilters) != 0 || len(d.EIGRP.InFilters) != 0 {
		t.Fatalf("RIP deny attached to wrong protocol: ospf=%v eigrp=%v rip=%v",
			d.OSPF.InFilters, d.EIGRP.InFilters, d.RIP.InFilters)
	}
	if !addInterfaceFilter(d, "Ethernet0", p, sim.SrcEIGRP) {
		t.Fatal("EIGRP deny not added")
	}
	if len(d.EIGRP.InFilters) != 1 {
		t.Fatalf("EIGRP deny missing: %v", d.EIGRP.InFilters)
	}
	// The two protocols filtering the same interface must use distinct
	// lists, or one protocol's denies would leak into the other's view.
	if d.RIP.InFilters["Ethernet0"] == d.EIGRP.InFilters["Ethernet0"] {
		t.Fatalf("protocols share list %q", d.RIP.InFilters["Ethernet0"])
	}
	// iBGP routes resolve through OSPF and filter at the OSPF attachment.
	if !addInterfaceFilter(d, "Ethernet1", p, sim.SrcIBGP) {
		t.Fatal("iBGP deny not added")
	}
	if _, ok := d.OSPF.InFilters["Ethernet1"]; !ok {
		t.Fatalf("iBGP deny not on OSPF: %v", d.OSPF.InFilters)
	}
	// Re-adding is idempotent; removal is source-keyed the same way.
	if addInterfaceFilter(d, "Ethernet0", p, sim.SrcRIP) {
		t.Fatal("duplicate deny reported as added")
	}
	cfg := config.NewNetwork()
	cfg.Add(d)
	if !removeFilterDeny(cfg, nil, "r", sim.NextHop{Iface: "Ethernet0"}, p, sim.SrcRIP) {
		t.Fatal("RIP deny not removed")
	}
	// The EIGRP deny on the same interface must survive a RIP removal.
	if removeFilterDeny(cfg, nil, "r", sim.NextHop{Iface: "Ethernet0"}, p, sim.SrcRIP) {
		t.Fatal("second removal reported success")
	}
	if pl := d.PrefixList(d.EIGRP.InFilters["Ethernet0"]); pl == nil || !pl.Denies(p) {
		t.Fatal("EIGRP deny lost on RIP removal")
	}
}

// multiProtoNet is a 5-ring RIP network whose r1 additionally carries an
// OSPF process — the configuration mix that exposed the first-configured
// protocol bug in addInterfaceFilter.
func multiProtoNet(t *testing.T) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.RIP)
	for _, r := range []string{"r1", "r2", "r3", "r4", "r5"} {
		b.Router(r)
	}
	b.Link("r1", "r2").Link("r2", "r3").Link("r3", "r4").Link("r4", "r5").Link("r5", "r1")
	b.Host("h1", "r1").Host("h3", "r3")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Device("r1").OSPF = &config.OSPF{ProcessID: 1, InFilters: map[string]string{}}
	return cfg
}

// TestRouteEquivalenceMultiProtocol reproduces the Algorithm 1 stall: a
// fake link carrying RIP advertisements into a router that also runs
// OSPF. The pre-fix attachment put the deny on the OSPF process, so the
// wrong RIP route survived, the second iteration saw the deny as already
// present (changed == 0), and convergence failed with differing data
// planes. With source-keyed attachment the loop converges and restores
// the original forwarding exactly.
func TestRouteEquivalenceMultiProtocol(t *testing.T) {
	cfg := multiProtoNet(t)
	base, err := newBaseline(cfg, sim.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A fake chord r1—r3, RIP-enabled on both ends: r1 learns h3's prefix
	// at metric 2 over it, beating the real metric-3 path via r2.
	out := cfg.Clone()
	pool := netaddr.NewPool(out.UsedPrefixes(), nil)
	pfx, err := netbuild.AddP2PLink(out, pool, "r1", "r3", netbuild.LinkOpts{Injected: true, NoProtocol: true})
	if err != nil {
		t.Fatal(err)
	}
	out.Device("r1").RIP.Networks = append(out.Device("r1").RIP.Networks, pfx)
	out.Device("r3").RIP.Networks = append(out.Device("r3").RIP.Networks, pfx)

	opts := DefaultOptions()
	iters, filters, err := routeEquivalence(context.Background(), out, base, opts)
	if err != nil {
		t.Fatalf("routeEquivalence: %v", err)
	}
	if filters == 0 {
		t.Fatal("fake chord produced no filters; scenario broken")
	}
	r1 := out.Device("r1")
	if len(r1.OSPF.InFilters) != 0 {
		t.Fatalf("deny attached to r1's OSPF process: %v", r1.OSPF.InFilters)
	}
	if len(r1.RIP.InFilters) == 0 {
		t.Fatal("no deny on r1's RIP process")
	}
	t.Logf("converged in %d iterations, %d filters", iters, filters)

	snap, err := sim.Simulate(out)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.EqualOver(base.dataPlane(), snap.DataPlaneFor(base.hosts), base.hosts) {
		t.Fatal("data planes differ after convergence")
	}
}
