package anonymize

import (
	"fmt"
	"net/netip"

	"confmask/internal/config"
	"confmask/internal/netaddr"
)

// ApplyPII is the PII add-on stage of the workflow (Fig. 3 "other add-on
// steps", §9): prefix-preserving anonymization of every IP address
// (Crypto-PAn style, keyed), plus hostname substitution. ConfMask treats
// this as a downstream plug-in after topology and route anonymization; the
// rewrite is purely syntactic, so topology and routing behavior — already
// anonymized by the main pipeline — are preserved exactly (addresses that
// shared a prefix still share one).
//
// It returns a fresh network plus the hostname substitution map
// (old → new), which the data owner keeps private.
func ApplyPII(cfg *config.Network, key []byte) (*config.Network, map[string]string) {
	an := netaddr.NewAnonymizer(key)
	names := make(map[string]string, len(cfg.Devices))
	ri, hi := 0, 0
	for _, name := range cfg.Names() {
		if cfg.Device(name).Kind == config.HostKind {
			hi++
			names[name] = fmt.Sprintf("host-%02d", hi)
		} else {
			ri++
			names[name] = fmt.Sprintf("router-%02d", ri)
		}
	}

	out := config.NewNetwork()
	for _, name := range cfg.Names() {
		d := cfg.Device(name).Clone()
		d.Hostname = names[name]
		for _, i := range d.Interfaces {
			if i.Addr.IsValid() {
				// Prefix preservation means interfaces sharing a subnet
				// keep sharing the (anonymized) subnet, so links survive.
				i.Addr = netip.PrefixFrom(an.Addr(i.Addr.Addr()), i.Addr.Bits())
			}
			if peer, ok := cutPrefix(i.Description, "to-"); ok {
				if nn, known := names[peer]; known {
					i.Description = "to-" + nn
				}
			}
		}
		if d.OSPF != nil {
			for k := range d.OSPF.Networks {
				d.OSPF.Networks[k] = an.Prefix(d.OSPF.Networks[k])
			}
		}
		if d.RIP != nil {
			for k := range d.RIP.Networks {
				d.RIP.Networks[k] = an.Prefix(d.RIP.Networks[k])
			}
		}
		if d.BGP != nil {
			if d.BGP.RouterID.IsValid() {
				d.BGP.RouterID = an.Addr(d.BGP.RouterID)
			}
			for k := range d.BGP.Networks {
				d.BGP.Networks[k] = an.Prefix(d.BGP.Networks[k])
			}
			for _, nb := range d.BGP.Neighbors {
				nb.Addr = an.Addr(nb.Addr)
			}
		}
		for _, pl := range d.PrefixLists {
			for k := range pl.Rules {
				if pl.Rules[k].Prefix.Bits() > 0 {
					pl.Rules[k].Prefix = an.Prefix(pl.Rules[k].Prefix)
				}
			}
		}
		for k := range d.Statics {
			if d.Statics[k].Prefix.Bits() > 0 {
				d.Statics[k].Prefix = an.Prefix(d.Statics[k].Prefix)
			}
			d.Statics[k].NextHop = an.Addr(d.Statics[k].NextHop)
		}
		out.Add(d)
	}
	return out, names
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}
