package anonymize

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"confmask/internal/sim"
)

// TestAppendixBProperties verifies, one by one, the routing utility
// properties that the paper's Appendix B proves follow from functional
// equivalence: reachability, path lengths, black holes, multipath
// consistency, waypointing, and routing loops. The pipeline's DP-equality
// check implies all of them; this test asserts each named property
// directly so a regression pinpoints which one broke.
func TestAppendixBProperties(t *testing.T) {
	cfg := bgpNet(t)
	opts := DefaultOptions()
	opts.KR = 2
	opts.Seed = 77
	anon, _, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	so, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := sim.Simulate(anon)
	if err != nil {
		t.Fatal(err)
	}
	hosts := cfg.Hosts()
	origDP := so.DataPlaneFor(hosts)
	anonDP := sa.DataPlaneFor(hosts)

	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			key := sim.Pair{Src: src, Dst: dst}
			op := origDP.Pairs[key]
			ap := anonDP.Pairs[key]

			// (1) Reachability.
			if origDP.Reachable(src, dst) != anonDP.Reachable(src, dst) {
				t.Fatalf("reachability changed for %s→%s", src, dst)
			}
			// (2) Path lengths: the multiset of delivered path lengths.
			if lengths(op) != lengths(ap) {
				t.Fatalf("path lengths changed for %s→%s: %v vs %v", src, dst, lengths(op), lengths(ap))
			}
			// (3) Black holes and (6) routing loops: status multisets.
			if statuses(op) != statuses(ap) {
				t.Fatalf("path statuses changed for %s→%s", src, dst)
			}
			// (4) Multipath consistency: number of delivered paths.
			if len(origDP.Delivered(src, dst)) != len(anonDP.Delivered(src, dst)) {
				t.Fatalf("multipath fan-out changed for %s→%s", src, dst)
			}
			// (5) Waypointing: the common interior routers.
			if waypoints(origDP.Delivered(src, dst)) != waypoints(anonDP.Delivered(src, dst)) {
				t.Fatalf("waypoints changed for %s→%s", src, dst)
			}
		}
	}
}

func lengths(ps []sim.Path) string {
	var ls []int
	for _, p := range ps {
		if p.Status == sim.Delivered {
			ls = append(ls, len(p.Hops))
		}
	}
	sort.Ints(ls)
	return fmt.Sprint(ls)
}

func statuses(ps []sim.Path) string {
	var ss []string
	for _, p := range ps {
		ss = append(ss, p.Status.String())
	}
	sort.Strings(ss)
	return strings.Join(ss, ",")
}

func waypoints(ps []sim.Path) string {
	counts := map[string]int{}
	for _, p := range ps {
		seen := map[string]bool{}
		for i := 1; i+1 < len(p.Hops); i++ {
			seen[p.Hops[i]] = true
		}
		for r := range seen {
			counts[r]++
		}
	}
	var common []string
	for r, c := range counts {
		if c == len(ps) {
			common = append(common, r)
		}
	}
	sort.Strings(common)
	return strings.Join(common, ",")
}
