package anonymize

import (
	"fmt"
	"math/rand"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netgen"
)

// randomNet builds a random connected network: a spanning tree plus random
// extra links, random OSPF costs, and hosts on random routers.
func randomNet(t *testing.T, proto netgen.Proto, rng *rand.Rand) *config.Network {
	t.Helper()
	n := 6 + rng.Intn(12)
	b := netgen.NewBuilder(proto)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("r%02d", i)
		b.Router(names[i])
	}
	type edge struct{ a, b int }
	used := map[edge]bool{}
	link := func(i, j int) {
		if i == j {
			return
		}
		a, c := i, j
		if a > c {
			a, c = c, a
		}
		if used[edge{a, c}] {
			return
		}
		used[edge{a, c}] = true
		cost := 0
		if proto == netgen.OSPF && rng.Intn(2) == 0 {
			cost = 1 + rng.Intn(20)
		}
		b.LinkCost(names[i], names[j], cost, cost)
	}
	for i := 1; i < n; i++ {
		link(i, rng.Intn(i))
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		link(rng.Intn(n), rng.Intn(n))
	}
	hosts := 2 + rng.Intn(3)
	for h := 0; h < hosts; h++ {
		b.Host(fmt.Sprintf("h%02d", h), names[rng.Intn(n)])
	}
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestPipelineRandomOSPF fuzzes the full pipeline over random OSPF
// topologies: every run must satisfy all end-to-end guarantees
// (functional equivalence, k-anonymity, add-only, fake-host
// reachability) that checkPipeline asserts.
func TestPipelineRandomOSPF(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		cfg := randomNet(t, netgen.OSPF, rng)
		opts := DefaultOptions()
		opts.KR = 2 + rng.Intn(3)
		opts.Seed = rng.Int63()
		t.Run(fmt.Sprintf("trial%02d-kr%d", trial, opts.KR), func(t *testing.T) {
			checkPipeline(t, cfg, opts)
		})
	}
}

// TestPipelineRandomRIP does the same for distance-vector networks.
func TestPipelineRandomRIP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		cfg := randomNet(t, netgen.RIP, rng)
		opts := DefaultOptions()
		opts.KR = 2 + rng.Intn(2)
		opts.Seed = rng.Int63()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			checkPipeline(t, cfg, opts)
		})
	}
}

// TestPipelineRandomEIGRP covers the delay-metric distance-vector case.
func TestPipelineRandomEIGRP(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		cfg := randomNet(t, netgen.EIGRP, rng)
		// Random delays exercise the metric-preservation requirement.
		for _, r := range cfg.Routers() {
			for _, i := range cfg.Device(r).Interfaces {
				if rng.Intn(3) == 0 {
					i.Delay = 1 + rng.Intn(50)
				}
			}
		}
		opts := DefaultOptions()
		opts.KR = 2 + rng.Intn(2)
		opts.Seed = rng.Int63()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			checkPipeline(t, cfg, opts)
		})
	}
}

// TestPipelineRandomWithFakeRouters fuzzes the scale-obfuscation
// extension.
func TestPipelineRandomWithFakeRouters(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 6; trial++ {
		cfg := randomNet(t, netgen.OSPF, rng)
		opts := DefaultOptions()
		opts.KR = 2
		opts.Seed = rng.Int63()
		opts.FakeRouters = 1 + rng.Intn(3)
		t.Run(fmt.Sprintf("trial%02d-fr%d", trial, opts.FakeRouters), func(t *testing.T) {
			_, rep := checkPipeline(t, cfg, opts)
			if len(rep.FakeRouters) != opts.FakeRouters {
				t.Fatalf("fake routers = %d, want %d", len(rep.FakeRouters), opts.FakeRouters)
			}
		})
	}
}
