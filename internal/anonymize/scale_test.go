package anonymize

import (
	"fmt"
	"testing"
	"time"

	"confmask/internal/config"
	"confmask/internal/netgen"
	"confmask/internal/sim"
)

// TestPartitionPathParallelismIdentity pins the tentpole invariant on the
// partition-parallel topology path: for a network above partitionMinRouters
// (MultiRegion10x30, 300 routers — Partition splits it into its 10 regions
// plus the backbone hubs) the anonymized output is byte-identical at any
// Options.Parallelism. Skipped under -short.
func TestPartitionPathParallelismIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("partition-path identity test skipped in short mode")
	}
	cfg, err := netgen.MultiRegion10x30()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cfg.Routers()); n < partitionMinRouters {
		t.Fatalf("MultiRegion10x30 has %d routers, below the partition gate %d", n, partitionMinRouters)
	}
	var want map[string]string
	for _, par := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Seed = 1
		opts.Parallelism = par
		anon, _, err := Run(cfg, opts)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		got := anon.Render()
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("Parallelism=%d: %d devices vs %d", par, len(got), len(want))
		}
		for name, text := range want {
			if got[name] != text {
				t.Fatalf("Parallelism=%d: device %s renders differently", par, name)
			}
		}
	}
}

// TestPipelineLargeNetworks runs the full pipeline on every Table 2
// evaluation network at the paper's default parameters and verifies
// functional equivalence and k-anonymity at scale. Skipped under -short.
func TestPipelineLargeNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("large-network pipeline test skipped in short mode")
	}
	for _, spec := range netgen.Catalog() {
		spec := spec
		t.Run(spec.ID+"-"+spec.Name, func(t *testing.T) {
			cfg, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Seed = 1
			start := time.Now()
			anon, rep, err := Run(cfg, opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			t.Logf("total=%v pre=%v topo=%v equiv=%v(iters=%d filters=%d) anon=%v(filters=%d) fakeEdges=%d UC=%.3f",
				time.Since(start), rep.Timing.Preprocess, rep.Timing.Topology,
				rep.Timing.RouteEquiv, rep.EquivIterations, rep.EquivFilters,
				rep.Timing.RouteAnon, rep.AnonFilters, len(rep.FakeEdges), rep.UC)

			anonSnap, err := sim.Simulate(anon)
			if err != nil {
				t.Fatal(err)
			}
			if kd := anonSnap.Net.Topology().MinSameDegreeCount(); kd < opts.KR {
				t.Fatalf("k_d = %d < %d", kd, opts.KR)
			}
			origSnap, err := sim.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hosts := cfg.Hosts()
			if diffs := sim.DiffPairs(origSnap.DataPlaneFor(hosts), anonSnap.DataPlaneFor(hosts), hosts); len(diffs) != 0 {
				t.Fatalf("functional equivalence violated for %d pairs (first %v)", len(diffs), diffs[0])
			}
		})
	}
}

// ringNet builds a uniform-degree ring of n routers with hosts spread on
// distinct routers: above the partition gate in size, but hub-free (the
// hub threshold is 3× the ~2 average degree, which no router reaches),
// so kdegree.Partition returns nil and every partition-parallel consumer
// must take its global fallback path.
func ringNet(t *testing.T, n, hosts int) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.OSPF)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("r%03d", i)
		b.Router(names[i])
	}
	for i := range names {
		b.Link(names[i], names[(i+1)%n])
	}
	for i := 0; i < hosts; i++ {
		b.Host(fmt.Sprintf("h%d", i), names[i*(n/hosts)])
	}
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestAnonymityGroupsDecomposition pins anonymityGroups' two regimes.
// MultiRegion10x30 decomposes: hub-separated partitions group the fake
// hosts by gateway, covering every fake host across more than one group.
// The ring net passes the size gate but has no hubs, so the groups must
// collapse to the single global group with the decomposition flag off —
// the crafted global-fallback case of the repair loop.
func TestAnonymityGroupsDecomposition(t *testing.T) {
	setup := func(t *testing.T, cfg *config.Network) (*sim.Net, []string, map[string]string, map[string]string) {
		t.Helper()
		view, err := sim.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var fakeHosts []string
		realOf := make(map[string]string)
		for _, h := range cfg.Hosts() {
			fh := h + "-fk1"
			fakeHosts = append(fakeHosts, fh)
			realOf[fh] = h
		}
		return view, fakeHosts, view.GatewayOf, realOf
	}

	mr, err := netgen.MultiRegion10x30()
	if err != nil {
		t.Fatal(err)
	}
	view, fakeHosts, gw, realOf := setup(t, mr)
	groups, applied := anonymityGroups(view, fakeHosts, gw, realOf, 6)
	if !applied {
		t.Fatal("MultiRegion10x30 did not decompose")
	}
	if len(groups) < 2 {
		t.Fatalf("MultiRegion10x30 decomposed into %d group(s), want ≥ 2", len(groups))
	}
	covered := 0
	for _, g := range groups {
		covered += len(g)
	}
	if covered != len(fakeHosts) {
		t.Fatalf("groups cover %d fake hosts, want %d", covered, len(fakeHosts))
	}

	ring := ringNet(t, partitionMinRouters+10, 6)
	view, fakeHosts, gw, realOf = setup(t, ring)
	groups, applied = anonymityGroups(view, fakeHosts, gw, realOf, 6)
	if applied {
		t.Fatal("hub-free ring decomposed; want global fallback")
	}
	if len(groups) != 1 || len(groups[0]) != len(fakeHosts) {
		t.Fatalf("fallback groups = %d groups, want 1 global group of %d", len(groups), len(fakeHosts))
	}
}

// TestAnonymityFallbackParallelismIdentity runs the full pipeline over
// the crafted global-fallback ring at Parallelism 1 and 4: output must
// be byte-identical, pinning that the repair loop's sharding (degenerate
// single shard here) never leaks into the result.
func TestAnonymityFallbackParallelismIdentity(t *testing.T) {
	cfg := ringNet(t, partitionMinRouters+10, 6)
	assertParallelismIdentity(t, cfg, 0.5)
}

// TestFatTreeParallelismIdentity pins workers=1 vs workers=N
// byte-identity on the fat-trees, whose uniform degree distribution
// also lands Algorithm 2 in the global group (no hubs to separate):
// FatTree08 always, FatTree16 — the S1 scale network — unless -short.
func TestFatTreeParallelismIdentity(t *testing.T) {
	t.Run("FatTree08", func(t *testing.T) {
		cfg, err := netgen.FatTree08()
		if err != nil {
			t.Fatal(err)
		}
		assertParallelismIdentity(t, cfg, 0.1)
	})
	t.Run("FatTree16", func(t *testing.T) {
		if testing.Short() {
			t.Skip("FatTree16 parallelism identity skipped in short mode")
		}
		cfg, err := netgen.FatTree16()
		if err != nil {
			t.Fatal(err)
		}
		assertParallelismIdentity(t, cfg, 0.1)
	})
}

// assertParallelismIdentity anonymizes cfg at Parallelism 1 and 4 with
// the given noise probability and fails on any rendered-output
// difference.
func assertParallelismIdentity(t *testing.T, cfg *config.Network, noiseP float64) {
	t.Helper()
	var want map[string]string
	for _, par := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Seed = 1
		opts.NoiseP = noiseP
		opts.Parallelism = par
		anon, _, err := Run(cfg, opts)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		got := anon.Render()
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("Parallelism=%d: %d devices vs %d", par, len(got), len(want))
		}
		for name, text := range want {
			if got[name] != text {
				t.Fatalf("Parallelism=%d: device %s renders differently", par, name)
			}
		}
	}
}
