package anonymize

import (
	"testing"
	"time"

	"confmask/internal/netgen"
	"confmask/internal/sim"
)

// TestPartitionPathParallelismIdentity pins the tentpole invariant on the
// partition-parallel topology path: for a network above partitionMinRouters
// (MultiRegion10x30, 300 routers — Partition splits it into its 10 regions
// plus the backbone hubs) the anonymized output is byte-identical at any
// Options.Parallelism. Skipped under -short.
func TestPartitionPathParallelismIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("partition-path identity test skipped in short mode")
	}
	cfg, err := netgen.MultiRegion10x30()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cfg.Routers()); n < partitionMinRouters {
		t.Fatalf("MultiRegion10x30 has %d routers, below the partition gate %d", n, partitionMinRouters)
	}
	var want map[string]string
	for _, par := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Seed = 1
		opts.Parallelism = par
		anon, _, err := Run(cfg, opts)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		got := anon.Render()
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("Parallelism=%d: %d devices vs %d", par, len(got), len(want))
		}
		for name, text := range want {
			if got[name] != text {
				t.Fatalf("Parallelism=%d: device %s renders differently", par, name)
			}
		}
	}
}

// TestPipelineLargeNetworks runs the full pipeline on every Table 2
// evaluation network at the paper's default parameters and verifies
// functional equivalence and k-anonymity at scale. Skipped under -short.
func TestPipelineLargeNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("large-network pipeline test skipped in short mode")
	}
	for _, spec := range netgen.Catalog() {
		spec := spec
		t.Run(spec.ID+"-"+spec.Name, func(t *testing.T) {
			cfg, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Seed = 1
			start := time.Now()
			anon, rep, err := Run(cfg, opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			t.Logf("total=%v pre=%v topo=%v equiv=%v(iters=%d filters=%d) anon=%v(filters=%d) fakeEdges=%d UC=%.3f",
				time.Since(start), rep.Timing.Preprocess, rep.Timing.Topology,
				rep.Timing.RouteEquiv, rep.EquivIterations, rep.EquivFilters,
				rep.Timing.RouteAnon, rep.AnonFilters, len(rep.FakeEdges), rep.UC)

			anonSnap, err := sim.Simulate(anon)
			if err != nil {
				t.Fatal(err)
			}
			if kd := anonSnap.Net.Topology().MinSameDegreeCount(); kd < opts.KR {
				t.Fatalf("k_d = %d < %d", kd, opts.KR)
			}
			origSnap, err := sim.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hosts := cfg.Hosts()
			if diffs := sim.DiffPairs(origSnap.DataPlaneFor(hosts), anonSnap.DataPlaneFor(hosts), hosts); len(diffs) != 0 {
				t.Fatalf("functional equivalence violated for %d pairs (first %v)", len(diffs), diffs[0])
			}
		})
	}
}
