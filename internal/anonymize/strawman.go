package anonymize

import (
	"context"
	"fmt"
	"net/netip"

	"confmask/internal/config"
	"confmask/internal/sim"
)

// strawman1 is the first baseline of §4.3: drop every real host prefix on
// every fake interface, using a single shared RejPfxs list per router —
// Listing 3's pattern. It fixes routing in one pass (a single simulation
// verifies), but the unified pattern makes the fake links identifiable: the
// interfaces that always bind a minimal shared deny set are the fakes.
func strawman1(out *config.Network, base *baseline, opts Options) (int, int, error) {
	filters := 0
	view, err := sim.Build(out)
	if err != nil {
		return 0, filters, err
	}
	for _, r := range out.Routers() {
		d := out.Device(r)
		for _, i := range d.Interfaces {
			if !i.Injected {
				continue
			}
			for _, h := range base.hosts {
				p := base.snap.Net.HostPrefix[h]
				if denyAllOn(out, view, d, i, p, "RejPfxs") {
					filters++
				}
			}
		}
	}
	// Only filters were added, so the view is reusable for the verifying
	// simulation after re-deriving the filter caches.
	view.InvalidateFilters()
	snap := sim.SimulateNetOpts(view, opts.simOpts())
	dp := snap.DataPlaneFor(base.hosts)
	if !sim.EqualOver(base.dataPlane(), dp, base.hosts) {
		pairs := sim.DiffPairs(base.dataPlane(), dp, base.hosts)
		if len(pairs) == 0 {
			return 1, filters, fmt.Errorf("strawman1 left data planes different")
		}
		return 1, filters, fmt.Errorf("strawman1 left %d host pairs different (first: %v)", len(pairs), pairs[0])
	}
	return 1, filters, nil
}

// denyAllOn attaches the shared list to the fake interface (IGP
// distribute-list, or the BGP neighbor using that interface) and denies p.
func denyAllOn(cfg *config.Network, view *sim.Net, d *config.Device, i *config.Interface, p netip.Prefix, listName string) bool {
	// BGP session on this interface?
	if d.BGP != nil {
		for _, l := range view.LinksOf(d.Hostname) {
			local, _ := l.Local(d.Hostname)
			if local.Iface != i.Name {
				continue
			}
			other, _ := l.Other(d.Hostname)
			for _, nb := range d.BGP.Neighbors {
				if nb.Addr == other.Addr {
					if nb.DistributeListIn == "" {
						nb.DistributeListIn = listName
					}
					pl := d.EnsurePrefixList(nb.DistributeListIn)
					if pl.Denies(p) {
						return false
					}
					pl.Deny(p)
					return true
				}
			}
		}
	}
	var filters map[string]string
	switch {
	case d.OSPF != nil:
		filters = d.OSPF.InFilters
	case d.EIGRP != nil:
		filters = d.EIGRP.InFilters
	case d.RIP != nil:
		filters = d.RIP.InFilters
	default:
		return false
	}
	if _, ok := filters[i.Name]; !ok {
		filters[i.Name] = listName
	}
	pl := d.EnsurePrefixList(filters[i.Name])
	if pl.Denies(p) {
		return false
	}
	pl.Deny(p)
	return true
}

// strawman2 is the second baseline of §4.3: per iteration, traceroute every
// host pair, compare with the original path set, and fix exactly one
// divergent hop per pair — the deepest fake link on a divergent path —
// then re-simulate. Conservative in injected lines but slow, because a
// single wrong hop per pair is repaired per (expensive) simulation round.
func strawman2(ctx context.Context, out *config.Network, base *baseline, opts Options) (int, int, error) {
	filters := 0
	view, err := sim.Build(out)
	if err != nil {
		return 0, filters, err
	}
	maxIter := opts.MaxIterations
	// Each fixing round adds filters for a handful of destination
	// prefixes; the diff from InvalidateFilters lets DataPlaneForDirty
	// re-trace only those destinations and carry the rest of the previous
	// round's data plane forward.
	var prev *sim.DataPlane
	var diff *sim.FilterDiff
	for iter := 1; iter <= maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return iter - 1, filters, err
		}
		opts.progress("equivalence", iter)
		if iter > 1 {
			diff = view.InvalidateFilters()
		}
		snap := sim.SimulateNetOpts(view, opts.simOpts())
		dp := snap.DataPlaneForDirty(base.hosts, prev, diff)
		prev = dp
		diffs := sim.DiffPairs(base.dataPlane(), dp, base.hosts)
		if len(diffs) == 0 {
			return iter, filters, nil
		}
		changed := 0
		for _, pair := range diffs {
			if fixOneHop(out, snap, base, pair) {
				changed++
			}
		}
		filters += changed
		if changed == 0 {
			return iter, filters, fmt.Errorf("strawman2 stuck with %d differing pairs (first: %v)", len(diffs), diffs[0])
		}
	}
	return maxIter, filters, fmt.Errorf("strawman2: no convergence within %d iterations", maxIter)
}

// fixOneHop finds, on some divergent anonymized path for the pair, the
// fake link closest to the destination and denies the destination prefix
// there. Divergent paths with no fake hop are skipped (their cause is an
// upstream pair fixed in a later iteration).
func fixOneHop(out *config.Network, snap *sim.Snapshot, base *baseline, pair sim.Pair) bool {
	dstPfx := base.snap.Net.HostPrefix[pair.Dst]
	origKeys := make(map[string]bool)
	for _, p := range base.dataPlane().Pairs[pair] {
		origKeys[p.Key()] = true
	}
	for _, path := range snap.Trace(pair.Src, pair.Dst) {
		if origKeys[path.Key()] {
			continue
		}
		// Walk from the destination backward looking for a fake link.
		for i := len(path.Hops) - 2; i >= 1; i-- {
			a, b := path.Hops[i], path.Hops[i+1]
			if out.Device(b).Kind != config.RouterKind {
				continue
			}
			if base.topo.HasEdge(a, b) {
				continue // real link
			}
			rt := snap.FIB(a)[dstPfx]
			if rt == nil {
				continue
			}
			for _, nh := range rt.NextHops {
				if nh.Device != b {
					continue
				}
				if addFilter(out, snap.Net, a, nh, dstPfx, rt.Source) {
					return true
				}
			}
		}
	}
	return false
}
