package anonymize

import (
	"fmt"
	"math/rand"
	"sort"

	"confmask/internal/config"
	"confmask/internal/kdegree"
	"confmask/internal/netaddr"
	"confmask/internal/netbuild"
	"confmask/internal/sim"
	"confmask/internal/topology"
)

// partitionMinRouters gates the partition-parallel topology path: below
// this router count the global algorithm runs (and every pinned Table 2
// output stays byte-identical — the largest, USCarrier, has 161 routers).
const partitionMinRouters = 200

// anonymizeTopology is Step 1 of the pipeline (§4.2): it adds fake links
// until the router graph is k_R-degree anonymous, writing matching
// interface and protocol configuration into out.
//
// For pure IGP networks the whole router graph is anonymized at once. For
// BGP networks the paper's two-level scheme applies: each AS's internal
// router graph is anonymized independently (with k clamped to the AS
// size), then the AS-level supergraph is anonymized, realizing each new
// AS-to-AS edge as an eBGP link between randomly chosen border routers;
// a final intra-AS repair pass restores any router degrees perturbed by
// the new border interfaces.
//
// Fake OSPF links carry cost min_cost(a, b) — the original shortest-path
// cost between their endpoints — as the link-state SFE condition requires.
//
// Pure IGP networks of at least partitionMinRouters routers take the
// partition-parallel path (kdegree.AnonymizeParallel): pods/regions
// anonymize concurrently over opts.Parallelism workers with a
// cross-partition fixup pass. The gate is a pure function of the input
// network, so output stays deterministic; every Table 2 network is far
// below the threshold and keeps its exact pre-partition output.
func anonymizeTopology(out *config.Network, pool *netaddr.Pool, base *baseline, opts Options, rng *rand.Rand) ([]topology.Edge, error) {
	kR := opts.KR
	// The working graph reflects the network as it currently stands —
	// including any fake routers the scale-obfuscation extension added —
	// so the k_R guarantee covers every router the adversary will see.
	view, err := sim.Build(out)
	if err != nil {
		return nil, err
	}
	work := view.Topology().RouterSubgraph()
	asOf := make(map[string]string) // router → AS label ("" when no BGP)
	multiAS := false
	asSet := make(map[string]bool)
	for _, r := range out.Routers() {
		if d := out.Device(r); d.BGP != nil {
			lbl := fmt.Sprintf("AS%d", d.BGP.ASN)
			asOf[r] = lbl
			asSet[lbl] = true
		}
	}
	if len(asSet) > 1 {
		multiAS = true
	}

	var added []topology.Edge
	apply := func(edges []topology.Edge) error {
		for _, e := range edges {
			// Cross-AS additions become eBGP links (no OSPF cost);
			// same-domain additions carry min_cost per the SFE condition.
			// fakeLinkCosts distinguishes the two via the original OSPF
			// distance matrix.
			costA, costB := fakeLinkCosts(base, e.A, e.B)
			opts := netbuild.LinkOpts{CostA: costA, CostB: costB, Injected: true}
			if _, err := netbuild.AddP2PLink(out, pool, e.A, e.B, opts); err != nil {
				return err
			}
			_ = work.AddEdge(e.A, e.B)
			added = append(added, e)
		}
		return nil
	}

	if !multiAS {
		g := work.Clone()
		var res *kdegree.Result
		if g.NumNodes() >= partitionMinRouters {
			res, err = kdegree.AnonymizeParallel(g, kR, opts.simOpts().Workers(), rng)
		} else {
			res, err = kdegree.Anonymize(g, kR, rng)
		}
		if err != nil {
			return nil, err
		}
		if err := apply(res.Added); err != nil {
			return nil, err
		}
		return added, nil
	}

	// BGP: intra-AS pass, then AS-level pass, then a global repair pass so
	// the whole router graph (the view an adversary measures, Fig. 6)
	// meets k_R even after border interfaces perturbed intra-AS degrees.
	if err := anonymizeIntraAS(out, work, asOf, kR, rng, apply); err != nil {
		return nil, err
	}
	if err := anonymizeASLevel(out, work, asOf, kR, rng, apply); err != nil {
		return nil, err
	}
	g := work.Clone()
	res, err := kdegree.Anonymize(g, kR, rng)
	if err != nil {
		return nil, err
	}
	if err := apply(res.Added); err != nil {
		return nil, err
	}
	return added, nil
}

// anonymizeIntraAS anonymizes each AS's induced intra-AS router graph.
func anonymizeIntraAS(out *config.Network, work *topology.Graph, asOf map[string]string, kR int, rng *rand.Rand, apply func([]topology.Edge) error) error {
	for _, as := range sortedASLabels(asOf) {
		members := membersOf(asOf, as)
		sub := inducedSubgraph(work, members)
		k := kR
		if k > len(members) {
			k = len(members)
		}
		res, err := kdegree.Anonymize(sub, k, rng)
		if err != nil {
			return fmt.Errorf("AS %s: %w", as, err)
		}
		if err := apply(res.Added); err != nil {
			return err
		}
	}
	return nil
}

// anonymizeASLevel anonymizes the AS supergraph and realizes each new AS
// edge as an eBGP link between randomly chosen border routers.
func anonymizeASLevel(out *config.Network, work *topology.Graph, asOf map[string]string, kR int, rng *rand.Rand, apply func([]topology.Edge) error) error {
	super := work.Supergraph(asOf)
	k := kR
	if n := super.NumNodes(); k > n {
		k = n
	}
	res, err := kdegree.Anonymize(super, k, rng)
	if err != nil {
		return fmt.Errorf("AS supergraph: %w", err)
	}
	for _, e := range res.Added {
		a := pickBorderRouter(work, asOf, e.A, rng)
		b := pickBorderRouter(work, asOf, e.B, rng)
		if a == "" || b == "" {
			return fmt.Errorf("AS edge %v: no border router available", e)
		}
		if err := apply([]topology.Edge{topology.CanonEdge(a, b)}); err != nil {
			return err
		}
	}
	return nil
}

// pickBorderRouter selects a random border router of an AS: a member with
// at least one inter-AS edge, falling back to any member.
func pickBorderRouter(work *topology.Graph, asOf map[string]string, as string, rng *rand.Rand) string {
	members := membersOf(asOf, as)
	var borders []string
	for _, m := range members {
		for _, n := range work.Neighbors(m) {
			if other, ok := asOf[n]; ok && other != as {
				borders = append(borders, m)
				break
			}
		}
	}
	if len(borders) == 0 {
		borders = members
	}
	if len(borders) == 0 {
		return ""
	}
	if rng == nil {
		return borders[0]
	}
	return borders[rng.Intn(len(borders))]
}

// fakeLinkCosts returns the OSPF costs for a fake link between routers a
// and b: min_cost(a→b) and min_cost(b→a) in the original network. When no
// OSPF distance exists (RIP networks, disconnected domains) the protocol
// default applies.
func fakeLinkCosts(base *baseline, a, b string) (int, int) {
	da, oka := base.snap.OSPFDist.Dist(a, b)
	db, okb := base.snap.OSPFDist.Dist(b, a)
	if !oka || !okb {
		return 0, 0
	}
	return da, db
}

func sortedASLabels(asOf map[string]string) []string {
	set := make(map[string]bool)
	for _, as := range asOf {
		set[as] = true
	}
	out := make([]string, 0, len(set))
	for as := range set {
		out = append(out, as)
	}
	sort.Strings(out)
	return out
}

func membersOf(asOf map[string]string, as string) []string {
	var out []string
	for r, a := range asOf {
		if a == as {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// inducedSubgraph returns the subgraph of g induced by the given router
// set (intra-AS links only).
func inducedSubgraph(g *topology.Graph, members []string) *topology.Graph {
	in := make(map[string]bool, len(members))
	sub := topology.New()
	for _, m := range members {
		in[m] = true
		sub.AddNode(m, topology.Router)
	}
	for _, m := range members {
		for _, n := range g.Neighbors(m) {
			if in[n] && m < n {
				_ = sub.AddEdge(m, n)
			}
		}
	}
	return sub
}
