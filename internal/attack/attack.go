// Package attack implements the de-anonymization techniques the paper
// discusses (§3.2, §4.3): given only the *shared* (anonymized)
// configurations — exactly the adversary model of §2.2 — each attack
// tries to tell fake links and fake hosts apart from real ones.
//
//   - UnconfiguredInterfaces: interfaces carrying no routing protocol are
//     the fake links of the naive strawman (§3.2 step 1).
//   - LargeCostLinks: links whose cost exceeds every shortest-path
//     alternative carry no traffic — the "set a large cost" strawman
//     (§3.2 step 2ii) — and are identified by SPT computation.
//   - SharedDenyPattern: interfaces/neighbors that always bind a common
//     minimal deny set across all routers expose strawman 1's unified
//     filtering (§4.3, Listing 3).
//   - DegreeReidentification: matching an auxiliary (true) degree
//     sequence against the shared topology — the attack k-degree
//     anonymity is designed to blunt.
//
// The experiments use these to show that ConfMask's output resists the
// structural attacks that break the strawmen, and that its k-anonymity
// caps re-identification confidence at 1/k.
package attack

import (
	"sort"

	"confmask/internal/config"
	"confmask/internal/sim"
	"confmask/internal/topology"
)

// LinkSuspicion marks a router-to-router link an attack flags as fake.
type LinkSuspicion struct {
	Link   topology.Edge
	Reason string
}

// UnconfiguredInterfaces flags links whose endpoint interfaces do not
// participate in any routing protocol — the giveaway of adding bare fake
// interfaces without protocol configuration.
func UnconfiguredInterfaces(cfg *config.Network) ([]LinkSuspicion, error) {
	view, err := sim.Build(cfg)
	if err != nil {
		return nil, err
	}
	var out []LinkSuspicion
	for _, l := range view.Links {
		da := cfg.Device(l.A.Device)
		db := cfg.Device(l.B.Device)
		if da.Kind != config.RouterKind || db.Kind != config.RouterKind {
			continue
		}
		if !interfaceRouted(da, l.A.Iface) || !interfaceRouted(db, l.B.Iface) {
			out = append(out, LinkSuspicion{
				Link:   topology.CanonEdge(l.A.Device, l.B.Device),
				Reason: "no routing protocol on interface",
			})
		}
	}
	return dedupe(out), nil
}

// interfaceRouted reports whether the interface participates in OSPF, RIP,
// or carries a BGP session address.
func interfaceRouted(d *config.Device, iface string) bool {
	i := d.Interface(iface)
	if i == nil || !i.Addr.IsValid() {
		return false
	}
	if d.OSPF != nil {
		for _, nw := range d.OSPF.Networks {
			if nw.Contains(i.Addr.Addr()) {
				return true
			}
		}
	}
	if d.RIP != nil {
		for _, nw := range d.RIP.Networks {
			if nw.Contains(i.Addr.Addr()) {
				return true
			}
		}
	}
	if d.EIGRP != nil {
		for _, nw := range d.EIGRP.Networks {
			if nw.Contains(i.Addr.Addr()) {
				return true
			}
		}
	}
	if d.BGP != nil {
		// An interface hosting an eBGP session subnet is routed.
		for _, nb := range d.BGP.Neighbors {
			if i.Addr.Masked().Contains(nb.Addr) {
				return true
			}
		}
	}
	return false
}

// LargeCostLinks flags OSPF links that cannot carry traffic because their
// cost strictly exceeds the best alternative path between their endpoints
// — the SPT attack against the "sufficiently large cost" strawman.
func LargeCostLinks(cfg *config.Network) ([]LinkSuspicion, error) {
	snap, err := sim.Simulate(cfg)
	if err != nil {
		return nil, err
	}
	var out []LinkSuspicion
	for _, l := range snap.Net.Links {
		da := cfg.Device(l.A.Device)
		db := cfg.Device(l.B.Device)
		if da.Kind != config.RouterKind || db.Kind != config.RouterKind {
			continue
		}
		ia := da.Interface(l.A.Iface)
		ib := db.Interface(l.B.Iface)
		if ia == nil || ib == nil {
			continue
		}
		distAB, okAB := snap.OSPFDist.Dist(l.A.Device, l.B.Device)
		distBA, okBA := snap.OSPFDist.Dist(l.B.Device, l.A.Device)
		if !okAB || !okBA {
			continue
		}
		// The SPF distance already includes this link as a candidate; if
		// the direct cost is strictly above the distance in both
		// directions, no shortest path ever uses the link.
		if ia.Cost() > distAB && ib.Cost() > distBA {
			out = append(out, LinkSuspicion{
				Link:   topology.CanonEdge(l.A.Device, l.B.Device),
				Reason: "cost exceeds best alternative path (dead link)",
			})
		}
	}
	return dedupe(out), nil
}

// SharedDenyPattern flags interfaces and BGP neighbors that bind a deny
// set shared verbatim across several routers — strawman 1's unified
// "reject every host" lists. minShared is the number of routers that must
// exhibit the identical deny multiset before it counts as a pattern
// (2 is the paper's implicit setting: any repetition is suspicious).
// Single-prefix deny sets are ignored: they repeat by chance under
// ConfMask's randomized per-destination filters, whereas the strawman's
// giveaway is a *multi-prefix* list (one entry per real host) copied
// verbatim everywhere (§4.3, Listing 3).
func SharedDenyPattern(cfg *config.Network, minShared int) []LinkSuspicion {
	if minShared < 2 {
		minShared = 2
	}
	// Canonical deny-set signature per (device, attachment).
	type site struct {
		dev   string
		iface string
	}
	sigs := make(map[string][]site)
	for _, name := range cfg.Names() {
		d := cfg.Device(name)
		if d.Kind != config.RouterKind {
			continue
		}
		record := func(iface, list string) {
			pl := d.PrefixList(list)
			if pl == nil {
				return
			}
			var denies []string
			for _, r := range pl.Rules {
				if r.Deny {
					denies = append(denies, r.Prefix.String())
				}
			}
			if len(denies) < 2 {
				return
			}
			sort.Strings(denies)
			key := ""
			for _, s := range denies {
				key += s + ";"
			}
			sigs[key] = append(sigs[key], site{dev: name, iface: iface})
		}
		if d.OSPF != nil {
			for iface, list := range d.OSPF.InFilters {
				record(iface, list)
			}
		}
		if d.RIP != nil {
			for iface, list := range d.RIP.InFilters {
				record(iface, list)
			}
		}
		if d.BGP != nil {
			for _, nb := range d.BGP.Neighbors {
				if nb.DistributeListIn != "" {
					record("bgp:"+nb.Addr.String(), nb.DistributeListIn)
				}
			}
		}
	}
	var out []LinkSuspicion
	for _, sites := range sigs {
		devs := make(map[string]bool)
		for _, s := range sites {
			devs[s.dev] = true
		}
		if len(devs) < minShared {
			continue
		}
		for _, s := range sites {
			out = append(out, LinkSuspicion{
				Link:   topology.Edge{A: s.dev, B: s.iface},
				Reason: "identical deny set repeated across routers",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link.A != out[j].Link.A {
			return out[i].Link.A < out[j].Link.A
		}
		return out[i].Link.B < out[j].Link.B
	})
	return out
}

// Score summarizes an attack's quality against ground truth.
type Score struct {
	// TruePositives are flagged links that are actually fake;
	// FalsePositives are flagged real links; FalseNegatives are fake
	// links the attack missed.
	TruePositives, FalsePositives, FalseNegatives int
}

// Precision is TP / (TP + FP); 1 when nothing was flagged.
func (s Score) Precision() float64 {
	den := s.TruePositives + s.FalsePositives
	if den == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(den)
}

// Recall is TP / (TP + FN); 1 when nothing was fake.
func (s Score) Recall() float64 {
	den := s.TruePositives + s.FalseNegatives
	if den == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(den)
}

// ScoreLinks grades flagged links against the true fake-link set.
func ScoreLinks(flagged []LinkSuspicion, fake []topology.Edge) Score {
	fakeSet := make(map[topology.Edge]bool, len(fake))
	for _, e := range fake {
		fakeSet[topology.CanonEdge(e.A, e.B)] = true
	}
	var s Score
	seen := make(map[topology.Edge]bool)
	for _, f := range flagged {
		e := topology.CanonEdge(f.Link.A, f.Link.B)
		if seen[e] {
			continue
		}
		seen[e] = true
		if fakeSet[e] {
			s.TruePositives++
		} else {
			s.FalsePositives++
		}
	}
	for e := range fakeSet {
		if !seen[e] {
			s.FalseNegatives++
		}
	}
	return s
}

// DegreeReidentification models the auxiliary-knowledge attack k-degree
// anonymity defends against: the adversary knows the true router degree of
// a target (e.g. from partial leaks) and tries to locate it in the shared
// topology. The returned confidence for each router is 1/|candidates with
// the same degree| — with k-anonymity in force it is at most 1/k.
func DegreeReidentification(shared *topology.Graph, trueDegree int) (candidates []string, confidence float64) {
	for _, r := range shared.NodesOf(topology.Router) {
		if shared.RouterDegree(r) == trueDegree {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		return nil, 0
	}
	return candidates, 1 / float64(len(candidates))
}

// ReidentSummary aggregates the degree re-identification attack over a
// whole network under two adversary models.
type ReidentSummary struct {
	// Routers is the number of true routers attacked.
	Routers int `json:"routers"`
	// True-degree model: the adversary knows each router's degree in the
	// hidden original network. Unmatched counts routers whose true degree
	// occurs nowhere in the shared graph — the attack yields nothing for
	// them (confidence 0); fake links typically make this the common case.
	Unmatched      int     `json:"unmatched"`
	MeanConfidence float64 `json:"mean_confidence"`
	MaxConfidence  float64 `json:"max_confidence"`
	// Strongest-knowledge model: the adversary somehow knows the target's
	// degree in the shared graph itself. This upper-bounds every
	// degree-based attack, and k-degree anonymity still caps it at 1/k_R.
	SharedMean float64 `json:"shared_mean_confidence"`
	SharedMax  float64 `json:"shared_max_confidence"`
}

// ReidentifyAll runs DegreeReidentification against shared for every
// router of trueTopo, under both the true-degree and the
// strongest-knowledge adversary models.
func ReidentifyAll(trueTopo, shared *topology.Graph) ReidentSummary {
	var s ReidentSummary
	var sum, sharedSum float64
	for _, r := range trueTopo.NodesOf(topology.Router) {
		s.Routers++
		cands, conf := DegreeReidentification(shared, trueTopo.RouterDegree(r))
		if len(cands) == 0 {
			s.Unmatched++
		} else {
			sum += conf
			if conf > s.MaxConfidence {
				s.MaxConfidence = conf
			}
		}
		if _, sconf := DegreeReidentification(shared, shared.RouterDegree(r)); sconf > 0 {
			sharedSum += sconf
			if sconf > s.SharedMax {
				s.SharedMax = sconf
			}
		}
	}
	if s.Routers > 0 {
		s.MeanConfidence = sum / float64(s.Routers)
		s.SharedMean = sharedSum / float64(s.Routers)
	}
	return s
}

func dedupe(in []LinkSuspicion) []LinkSuspicion {
	seen := make(map[topology.Edge]bool)
	out := in[:0]
	for _, s := range in {
		if seen[s.Link] {
			continue
		}
		seen[s.Link] = true
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link.A != out[j].Link.A {
			return out[i].Link.A < out[j].Link.A
		}
		return out[i].Link.B < out[j].Link.B
	})
	return out
}
