package attack

import (
	"testing"

	"confmask/internal/anonymize"
	"confmask/internal/config"
	"confmask/internal/netbuild"
	"confmask/internal/netgen"
	"confmask/internal/sim"
	"confmask/internal/topology"
)

func square(t *testing.T) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.OSPF)
	for _, r := range []string{"r1", "r2", "r3", "r4"} {
		b.Router(r)
	}
	b.LinkCost("r1", "r3", 1, 1).LinkCost("r3", "r2", 1, 1).Link("r1", "r2").Link("r2", "r4")
	b.Host("h1", "r1").Host("h4", "r4")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestUnconfiguredInterfacesDetectsBareFakeLink(t *testing.T) {
	cfg := square(t)
	pool := netbuild.PoolFor(cfg)
	// Strawman step 1: fake link without protocol registration.
	if _, err := netbuild.AddP2PLink(cfg, pool, "r1", "r4", netbuild.LinkOpts{NoProtocol: true, Injected: true}); err != nil {
		t.Fatal(err)
	}
	flagged, err := UnconfiguredInterfaces(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 1 || flagged[0].Link != topology.CanonEdge("r1", "r4") {
		t.Fatalf("flagged = %v", flagged)
	}
}

func TestUnconfiguredInterfacesCleanOnConfMaskOutput(t *testing.T) {
	cfg := square(t)
	opts := anonymize.DefaultOptions()
	opts.KR = 2
	opts.Seed = 3
	anon, _, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	flagged, err := UnconfiguredInterfaces(anon)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 0 {
		t.Fatalf("ConfMask output leaked unconfigured interfaces: %v", flagged)
	}
}

func TestLargeCostLinksDetectsDeadLink(t *testing.T) {
	// A ring has no naturally dead links: every link is the shortest
	// path between its endpoints.
	b := netgen.NewBuilder(netgen.OSPF)
	for _, r := range []string{"r1", "r2", "r3", "r4"} {
		b.Router(r)
	}
	b.Link("r1", "r2").Link("r2", "r3").Link("r3", "r4").Link("r4", "r1")
	b.Host("h1", "r1").Host("h3", "r3")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pool := netbuild.PoolFor(cfg)
	// Strawman step 2(ii): fake link with a prohibitively large cost.
	if _, err := netbuild.AddP2PLink(cfg, pool, "r1", "r3", netbuild.LinkOpts{CostA: 10000, CostB: 10000, Injected: true}); err != nil {
		t.Fatal(err)
	}
	flagged, err := LargeCostLinks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 1 || flagged[0].Link != topology.CanonEdge("r1", "r3") {
		t.Fatalf("flagged = %v", flagged)
	}
}

func TestLargeCostLinksCleanOnConfMaskOutput(t *testing.T) {
	cfg := square(t)
	opts := anonymize.DefaultOptions()
	opts.KR = 2
	opts.Seed = 3
	anon, rep, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	flagged, err := LargeCostLinks(anon)
	if err != nil {
		t.Fatal(err)
	}
	// ConfMask's matched-cost fake links are never dead by cost alone.
	score := ScoreLinks(flagged, rep.FakeEdges)
	if score.TruePositives > 0 {
		t.Fatalf("SPT attack identified ConfMask fake links: %v", flagged)
	}
}

func TestSharedDenyPatternDetectsStrawman1(t *testing.T) {
	cfg, err := netgen.Enterprise()
	if err != nil {
		t.Fatal(err)
	}
	opts := anonymize.DefaultOptions()
	opts.Seed = 3
	opts.Strategy = anonymize.Strawman1
	anonS1, _, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	s1Flags := SharedDenyPattern(anonS1, 2)
	if len(s1Flags) == 0 {
		t.Fatal("strawman 1's unified deny pattern went undetected")
	}

	opts.Strategy = anonymize.ConfMask
	anonCM, _, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	cmFlags := SharedDenyPattern(anonCM, 2)
	if len(cmFlags) >= len(s1Flags) {
		t.Fatalf("ConfMask (%d flags) should expose far less pattern than strawman 1 (%d flags)",
			len(cmFlags), len(s1Flags))
	}
}

func TestDegreeReidentificationBoundedByK(t *testing.T) {
	cfg, err := netgen.Enterprise()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	origTopo := snap.Net.Topology()

	opts := anonymize.DefaultOptions()
	opts.Seed = 9
	anon, _, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	anonSnap, err := sim.Simulate(anon)
	if err != nil {
		t.Fatal(err)
	}
	sharedTopo := anonSnap.Net.Topology()

	// Attack every router using its true degree as auxiliary knowledge.
	// Note the adversary's best auxiliary degree may not even occur in
	// the shared graph (degrees changed); when it does, k-anonymity caps
	// the confidence.
	for _, r := range origTopo.NodesOf(topology.Router) {
		trueDeg := sharedTopo.RouterDegree(r) // strongest aux knowledge: the shared degree
		cands, conf := DegreeReidentification(sharedTopo, trueDeg)
		if len(cands) == 0 {
			t.Fatalf("router %s vanished from shared graph", r)
		}
		if conf > 1.0/float64(opts.KR)+1e-9 {
			t.Fatalf("re-identification confidence %v exceeds 1/k_R for %s", conf, r)
		}
	}
}

func TestReidentifyAll(t *testing.T) {
	cfg, err := netgen.Enterprise()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	origTopo := snap.Net.Topology()

	// Against itself: every router matches its own degree class, so
	// nothing is unmatched and confidences are sane.
	self := ReidentifyAll(origTopo, origTopo)
	if self.Routers != len(origTopo.NodesOf(topology.Router)) {
		t.Fatalf("attacked %d routers, topology has %d", self.Routers, len(origTopo.NodesOf(topology.Router)))
	}
	if self.Unmatched != 0 {
		t.Fatalf("unmatched against self: %d", self.Unmatched)
	}
	if self.MaxConfidence <= 0 || self.MaxConfidence > 1 || self.MeanConfidence > self.MaxConfidence {
		t.Fatalf("degenerate self summary: %+v", self)
	}

	// Against the anonymized network: any router the adversary still
	// locates is hidden among at least k_R candidates.
	opts := anonymize.DefaultOptions()
	opts.Seed = 9
	anon, _, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	anonSnap, err := sim.Simulate(anon)
	if err != nil {
		t.Fatal(err)
	}
	sum := ReidentifyAll(origTopo, anonSnap.Net.Topology())
	if sum.Routers != self.Routers {
		t.Fatalf("router count changed: %+v", sum)
	}
	cap := 1.0/float64(opts.KR) + 1e-9
	if sum.MaxConfidence > cap {
		t.Fatalf("max confidence %v exceeds 1/k_R=%v", sum.MaxConfidence, 1.0/float64(opts.KR))
	}
	// Even the strongest degree knowledge is capped by k-anonymity, and
	// every original router still exists in the shared graph, so the
	// strongest attack always matches something.
	if sum.SharedMax > cap {
		t.Fatalf("shared-degree max confidence %v exceeds 1/k_R", sum.SharedMax)
	}
	if sum.SharedMax <= 0 || sum.SharedMean <= 0 {
		t.Fatalf("strongest-knowledge attack found nothing: %+v", sum)
	}
}

func TestScoreLinks(t *testing.T) {
	fake := []topology.Edge{topology.CanonEdge("a", "b"), topology.CanonEdge("c", "d")}
	flagged := []LinkSuspicion{
		{Link: topology.CanonEdge("b", "a")}, // TP (canonicalized)
		{Link: topology.CanonEdge("x", "y")}, // FP
		{Link: topology.CanonEdge("x", "y")}, // duplicate, ignored
	}
	s := ScoreLinks(flagged, fake)
	if s.TruePositives != 1 || s.FalsePositives != 1 || s.FalseNegatives != 1 {
		t.Fatalf("score = %+v", s)
	}
	if s.Precision() != 0.5 || s.Recall() != 0.5 {
		t.Fatalf("precision/recall = %v/%v", s.Precision(), s.Recall())
	}
	empty := ScoreLinks(nil, nil)
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatalf("degenerate score = %+v", empty)
	}
}
