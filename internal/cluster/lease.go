// Package cluster is confmaskd's distributed execution layer: lease-based
// job ownership with epoch fencing over a shared journal directory, a
// deficit-round-robin scheduler with per-tenant queues and quotas, and a
// per-tenant token-bucket rate limiter. The package is storage-agnostic in
// spirit but filesystem-backed in practice: two daemons sharing one
// -data-dir coordinate exclusively through files, so a worker fleet needs
// nothing beyond a shared (local or network) directory.
//
// Ownership model. Every job directory carries a lease (lease.json): the
// owning node's ID, a monotonically increasing epoch, and a deadline the
// owner pushes forward on a heartbeat ticker. A worker claims a job by
// bumping the epoch through an O_EXCL lock file — the filesystem arbitrates
// concurrent claimants — and the epoch is the fencing token: every journal
// write the owner makes afterwards carries it, renewals and state-boundary
// writes re-verify it against lease.json, and journal replay discards
// records written under an epoch older than a later claim. A node that
// stalls past its deadline is fenced out the moment another node claims the
// next epoch: its renewals fail, its appends are refused, and whatever it
// managed to write before noticing is dropped at replay.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"confmask/internal/faults"
)

// Lease is the persisted ownership record of one job directory.
type Lease struct {
	// Owner is the node ID of the current (or last) claimant.
	Owner string `json:"owner"`
	// Epoch is the fencing token: it increases by exactly one per claim and
	// never repeats, so any two owners in a job's history are ordered.
	Epoch int `json:"epoch"`
	// Deadline is the wall-clock instant the lease expires unless renewed.
	Deadline time.Time `json:"deadline"`
	// Released marks a lease its owner gave up deliberately (job reached a
	// terminal state, or a graceful drain requeued it): the job is claimable
	// immediately, without waiting out the deadline.
	Released bool `json:"released,omitempty"`
}

var (
	// ErrHeld reports that another node holds an unexpired lease; the caller
	// must not run the job and should retry only after the lease can expire.
	ErrHeld = errors.New("cluster: lease held by another node")
	// ErrFenced reports that the caller's epoch is no longer the lease's
	// epoch: a newer claim exists and every write under the old epoch must
	// be refused.
	ErrFenced = errors.New("cluster: lease fenced by a newer epoch")
)

// Manager claims, renews, and inspects leases for one node.
type Manager struct {
	node string
	ttl  time.Duration
	now  func() time.Time // injectable clock for deterministic tests
}

// NewManager builds a lease manager for the given node ID and lease TTL.
func NewManager(node string, ttl time.Duration) *Manager {
	return &Manager{node: node, ttl: ttl, now: time.Now}
}

// Node returns the manager's node ID.
func (m *Manager) Node() string { return m.node }

func leasePath(dir string) string { return filepath.Join(dir, "lease.json") }

// Read returns the job directory's current lease; the zero Lease (Epoch 0)
// when none has ever been claimed.
func (m *Manager) Read(dir string) (Lease, error) {
	data, err := os.ReadFile(leasePath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return Lease{}, nil
		}
		return Lease{}, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		// A torn lease write: claimable, like no lease at all. The epoch is
		// recovered from the lock files, which are written first.
		return Lease{}, nil
	}
	return l, nil
}

// Claimable reports whether a lease no longer protects its job: never
// claimed, deliberately released, expired past its deadline, or owned by
// this node itself (a node's own stale lease — left by a crash and restart
// under the same ID — must never deadlock it). The "cluster.lease.expire"
// fault point forces true for leases held by other nodes, so chaos tests
// can induce takeover and split-brain deterministically instead of waiting
// out a deadline.
func (m *Manager) Claimable(l Lease) bool {
	if l.Epoch == 0 || l.Released || l.Owner == m.node {
		return true
	}
	if err := faults.Fire("cluster.lease.expire"); err != nil {
		return true
	}
	return m.now().After(l.Deadline)
}

// unpublishedClaims inspects claim lock files with epochs beyond the
// published lease. Locks are created before lease.json is updated, so an
// epoch can be locked but never published in exactly two situations: the
// claimant crashed mid-claim, or the claim is in flight right now. The two
// are told apart by the lock file's age against the lease TTL — the same
// liveness bound the lease itself uses. It returns the highest epoch among
// stale (crashed) locks, and whether any lock looks in-flight.
func (m *Manager) unpublishedClaims(dir string, above int) (staleMax int, inFlight bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, false
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "lease.") || !strings.HasSuffix(name, ".lock") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "lease."), ".lock"))
		if err != nil || n <= above {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if m.now().Sub(info.ModTime()) > m.ttl {
			if n > staleMax {
				staleMax = n
			}
		} else {
			inFlight = true
		}
	}
	return staleMax, inFlight
}

// Acquire claims the job directory for this node: it bumps the epoch via an
// O_EXCL lock file (the filesystem rejects the second of two concurrent
// claimants) and publishes the new lease. ErrHeld when another node's lease
// is still live, a concurrent claim won the race, or a claim is in flight.
func (m *Manager) Acquire(dir string) (*Handle, error) {
	if err := faults.Fire("cluster.lease.acquire"); err != nil {
		return nil, fmt.Errorf("lease acquire: %w", err)
	}
	cur, err := m.Read(dir)
	if err != nil {
		return nil, fmt.Errorf("lease acquire: %w", err)
	}
	if !m.Claimable(cur) {
		return nil, fmt.Errorf("%w (owner %s, epoch %d)", ErrHeld, cur.Owner, cur.Epoch)
	}
	next := cur.Epoch + 1
	staleMax, inFlight := m.unpublishedClaims(dir, cur.Epoch)
	if inFlight {
		// A fresh lock beyond the published epoch means another claimant
		// is between lock-create and lease-publish right now. Backing off
		// (rather than escalating past it) is what keeps two concurrent
		// claimants from both winning.
		return nil, fmt.Errorf("%w (claim in flight)", ErrHeld)
	}
	if staleMax >= next {
		// A claimant crashed after locking these epochs but before
		// publishing: the epochs are burned (the locks are permanent
		// EEXIST) and the claim moves past them.
		next = staleMax + 1
	}
	lock := filepath.Join(dir, fmt.Sprintf("lease.%d.lock", next))
	f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			// Lost the race for this epoch: whoever created the lock owns
			// the claim. Do NOT escalate to the next epoch — that would
			// fence a legitimate owner.
			return nil, fmt.Errorf("%w (epoch %d claim raced)", ErrHeld, next)
		}
		return nil, fmt.Errorf("lease acquire: %w", err)
	}
	fmt.Fprintf(f, "%s\n", m.node)
	f.Close()
	// Between the Claimable check and winning the lock another claimant
	// may have published a newer lease (it locked, published, and released
	// or expired again — or our scan simply raced its publish). Re-read
	// before publishing so a lower epoch never overwrites a higher one.
	if recheck, err := m.Read(dir); err != nil || recheck.Epoch >= next {
		return nil, fmt.Errorf("%w (lease advanced to epoch %d during claim)", ErrHeld, recheck.Epoch)
	}
	deadline := m.now().Add(m.ttl)
	if err := m.write(dir, Lease{Owner: m.node, Epoch: next, Deadline: deadline}); err != nil {
		return nil, fmt.Errorf("lease acquire: %w", err)
	}
	// Old lock files are garbage once superseded; best-effort cleanup keeps
	// the directory from accumulating one file per takeover.
	for k := next - 2; k > 0; k-- {
		if os.Remove(filepath.Join(dir, fmt.Sprintf("lease.%d.lock", k))) != nil {
			break
		}
	}
	return &Handle{m: m, dir: dir, epoch: next, deadline: deadline}, nil
}

// write publishes a lease atomically (temp + fsync + rename), so readers
// never observe a torn record.
func (m *Manager) write(dir string, l Lease) error {
	buf, err := json.Marshal(l)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".lease-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), leasePath(dir))
}

// Handle is one node's live claim on a job. It is the fencing token carrier:
// the journal checks Valid before buffered appends and Verify at fsync
// boundaries, and the heartbeat calls Renew on a ticker — those callers run
// on different goroutines, so the handle locks around its validity state. A
// Handle that loses its lease is invalid forever.
type Handle struct {
	m     *Manager
	dir   string
	epoch int

	mu       sync.Mutex
	deadline time.Time
	invalid  bool
}

// Epoch returns the fencing token.
func (h *Handle) Epoch() int { return h.epoch }

// Owner returns the claiming node's ID.
func (h *Handle) Owner() string { return h.m.node }

// Deadline returns the lease deadline as of the last acquire/renew.
func (h *Handle) Deadline() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deadline
}

// Valid reports whether the handle has not observed losing its lease. It is
// the cheap, local fencing check; Verify is the authoritative one.
func (h *Handle) Valid() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.invalid
}

// Verify re-reads the lease from disk and confirms this handle still owns
// it. Any mismatch — newer epoch, different owner, released — invalidates
// the handle and returns ErrFenced.
func (h *Handle) Verify() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.verifyLocked()
}

func (h *Handle) verifyLocked() error {
	if h.invalid {
		return fmt.Errorf("%w (epoch %d)", ErrFenced, h.epoch)
	}
	cur, err := h.m.Read(h.dir)
	if err != nil {
		return err
	}
	if cur.Epoch != h.epoch || cur.Owner != h.m.node || cur.Released {
		h.invalid = true
		return fmt.Errorf("%w (held epoch %d, current epoch %d owner %s)", ErrFenced, h.epoch, cur.Epoch, cur.Owner)
	}
	return nil
}

// Renew pushes the deadline forward by the manager's TTL, verifying the
// lease is still this handle's first. The "cluster.lease.renew" fault point
// makes a heartbeat lose its lease on demand.
func (h *Handle) Renew() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := faults.Fire("cluster.lease.renew"); err != nil {
		h.invalid = true
		return fmt.Errorf("lease renew: %w", err)
	}
	if err := h.verifyLocked(); err != nil {
		return err
	}
	deadline := h.m.now().Add(h.m.ttl)
	if err := h.m.write(h.dir, Lease{Owner: h.m.node, Epoch: h.epoch, Deadline: deadline}); err != nil {
		h.invalid = true
		return fmt.Errorf("lease renew: %w", err)
	}
	h.deadline = deadline
	return nil
}

// Release gives the lease up deliberately, marking the job claimable
// without a deadline wait. Releasing a lease the handle no longer owns is a
// no-op: the newer owner's record must not be overwritten.
func (h *Handle) Release() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.invalid || h.verifyLocked() != nil {
		return
	}
	h.invalid = true
	_ = h.m.write(h.dir, Lease{Owner: h.m.node, Epoch: h.epoch, Deadline: h.deadline, Released: true})
}
