package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"confmask/internal/faults"
)

func testManager(t *testing.T, node string, ttl time.Duration) (*Manager, *time.Time) {
	t.Helper()
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	m := NewManager(node, ttl)
	m.now = func() time.Time { return now }
	return m, &now
}

func TestLeaseAcquireRenewRelease(t *testing.T) {
	dir := t.TempDir()
	m, now := testManager(t, "node-a", time.Minute)

	h, err := m.Acquire(dir)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if h.Epoch() != 1 || h.Owner() != "node-a" {
		t.Fatalf("handle = epoch %d owner %s, want epoch 1 node-a", h.Epoch(), h.Owner())
	}
	l, err := m.Read(dir)
	if err != nil || l.Epoch != 1 || l.Owner != "node-a" || l.Released {
		t.Fatalf("read lease = %+v, %v", l, err)
	}
	if !l.Deadline.Equal(now.Add(time.Minute)) {
		t.Fatalf("deadline = %v, want %v", l.Deadline, now.Add(time.Minute))
	}

	*now = now.Add(30 * time.Second)
	if err := h.Renew(); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if l, _ = m.Read(dir); !l.Deadline.Equal(now.Add(time.Minute)) {
		t.Fatalf("renewed deadline = %v, want %v", l.Deadline, now.Add(time.Minute))
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("verify after renew: %v", err)
	}

	h.Release()
	if l, _ = m.Read(dir); !l.Released {
		t.Fatalf("lease not released: %+v", l)
	}
	if h.Valid() {
		t.Fatal("handle still valid after release")
	}
}

func TestLeaseHeldByLiveOwner(t *testing.T) {
	dir := t.TempDir()
	a, _ := testManager(t, "node-a", time.Minute)
	b, _ := testManager(t, "node-b", time.Minute)

	if _, err := a.Acquire(dir); err != nil {
		t.Fatalf("acquire a: %v", err)
	}
	if _, err := b.Acquire(dir); !errors.Is(err, ErrHeld) {
		t.Fatalf("acquire b = %v, want ErrHeld", err)
	}
}

func TestLeaseExpiryAllowsTakeoverAndFencesOldOwner(t *testing.T) {
	dir := t.TempDir()
	a, nowA := testManager(t, "node-a", time.Minute)
	b, nowB := testManager(t, "node-b", time.Minute)

	ha, err := a.Acquire(dir)
	if err != nil {
		t.Fatalf("acquire a: %v", err)
	}

	// Advance both clocks past A's deadline: B may take over.
	*nowA = nowA.Add(2 * time.Minute)
	*nowB = nowB.Add(2 * time.Minute)
	hb, err := b.Acquire(dir)
	if err != nil {
		t.Fatalf("acquire b after expiry: %v", err)
	}
	if hb.Epoch() != 2 {
		t.Fatalf("takeover epoch = %d, want 2", hb.Epoch())
	}

	// A is now fenced on every path.
	if err := ha.Verify(); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale verify = %v, want ErrFenced", err)
	}
	if ha.Valid() {
		t.Fatal("stale handle still valid after failed verify")
	}
	if err := ha.Renew(); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale renew = %v, want ErrFenced", err)
	}
	// A stale release must not clobber B's lease.
	ha.Release()
	if l, _ := b.Read(dir); l.Epoch != 2 || l.Owner != "node-b" || l.Released {
		t.Fatalf("lease after stale release = %+v, want node-b epoch 2 live", l)
	}
	if err := hb.Verify(); err != nil {
		t.Fatalf("new owner verify: %v", err)
	}
}

func TestLeaseOwnNodeStaleClaimable(t *testing.T) {
	// A node restarting under the same ID finds its own lease from before
	// the crash — unexpired, because the heartbeat was running until the
	// kill. It must be able to reclaim immediately, at a higher epoch.
	dir := t.TempDir()
	a, _ := testManager(t, "node-a", time.Hour)
	h1, err := a.Acquire(dir)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	h2, err := a.Acquire(dir)
	if err != nil {
		t.Fatalf("self reclaim: %v", err)
	}
	if h2.Epoch() != 2 {
		t.Fatalf("reclaim epoch = %d, want 2", h2.Epoch())
	}
	// The pre-crash incarnation's handle is fenced by the reclaim.
	if err := h1.Verify(); !errors.Is(err, ErrFenced) {
		t.Fatalf("old incarnation verify = %v, want ErrFenced", err)
	}
}

func TestLeaseConcurrentClaimExactlyOneWinner(t *testing.T) {
	dir := t.TempDir()
	const claimants = 8
	var wg sync.WaitGroup
	wins := make(chan int, claimants)
	for i := 0; i < claimants; i++ {
		m, _ := testManager(t, "node-"+string(rune('a'+i)), time.Minute)
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := m.Acquire(dir)
			if err == nil {
				wins <- h.Epoch()
			} else if !errors.Is(err, ErrHeld) {
				t.Errorf("loser error = %v, want ErrHeld", err)
			}
		}()
	}
	wg.Wait()
	close(wins)
	var epochs []int
	for e := range wins {
		epochs = append(epochs, e)
	}
	if len(epochs) != 1 || epochs[0] != 1 {
		t.Fatalf("winners = %v, want exactly one at epoch 1", epochs)
	}
}

func TestLeaseCrashedClaimEpochNotReused(t *testing.T) {
	// A claimant that crashed after creating its lock file but before
	// publishing lease.json must not deadlock the next claimant, and its
	// locked epoch must never be reused.
	dir := t.TempDir()
	ghost := filepath.Join(dir, "lease.3.lock")
	if err := os.WriteFile(ghost, []byte("ghost\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, now := testManager(t, "node-a", time.Minute)

	// While the ghost lock is fresh the claim could be in flight: back off.
	if err := os.Chtimes(ghost, *now, *now); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(dir); !errors.Is(err, ErrHeld) {
		t.Fatalf("acquire with fresh ghost lock = %v, want ErrHeld", err)
	}

	// Once it outlives the TTL the claimant is dead and its epoch burned.
	stale := now.Add(-2 * time.Minute)
	if err := os.Chtimes(ghost, stale, stale); err != nil {
		t.Fatal(err)
	}
	h, err := m.Acquire(dir)
	if err != nil {
		t.Fatalf("acquire around ghost lock: %v", err)
	}
	if h.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4 (ghost locked 3)", h.Epoch())
	}
}

func TestLeaseTornJSONClaimable(t *testing.T) {
	dir := t.TempDir()
	m, _ := testManager(t, "node-a", time.Minute)
	h1, err := m.Acquire(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn lease write: truncated JSON. The epoch survives in
	// the lock files, so the next claim still moves forward — once the
	// lock has aged past the TTL and cannot be an in-flight claim.
	if err := os.WriteFile(leasePath(dir), []byte(`{"owner":"node-a","ep`), 0o644); err != nil {
		t.Fatal(err)
	}
	b, nowB := testManager(t, "node-b", time.Minute)
	stale := nowB.Add(-2 * time.Minute)
	if err := os.Chtimes(filepath.Join(dir, "lease.1.lock"), stale, stale); err != nil {
		t.Fatal(err)
	}
	h2, err := b.Acquire(dir)
	if err != nil {
		t.Fatalf("acquire over torn lease: %v", err)
	}
	if h2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", h2.Epoch())
	}
	_ = h1
}

func TestLeaseFaultPoints(t *testing.T) {
	dir := t.TempDir()
	a, _ := testManager(t, "node-a", time.Hour)
	b, _ := testManager(t, "node-b", time.Hour)

	// cluster.lease.acquire: injected failure surfaces from Acquire.
	faults.Reset()
	if err := faults.ArmSpec("cluster.lease.acquire=error"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(dir); err == nil || errors.Is(err, ErrHeld) {
		t.Fatalf("acquire under fault = %v, want injected error", err)
	}
	faults.Reset()

	h, err := a.Acquire(dir)
	if err != nil {
		t.Fatal(err)
	}

	// cluster.lease.expire: B may claim over A's live, unexpired lease —
	// the deterministic stand-in for deadline expiry.
	if err := faults.ArmSpec("cluster.lease.expire=error"); err != nil {
		t.Fatal(err)
	}
	hb, err := b.Acquire(dir)
	faults.Reset()
	if err != nil {
		t.Fatalf("forced-expiry acquire = %v", err)
	}
	if hb.Epoch() != 2 {
		t.Fatalf("forced takeover epoch = %d, want 2", hb.Epoch())
	}
	if err := h.Verify(); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced verify = %v, want ErrFenced", err)
	}

	// cluster.lease.renew: heartbeat loss invalidates the handle.
	if err := faults.ArmSpec("cluster.lease.renew=error"); err != nil {
		t.Fatal(err)
	}
	err = hb.Renew()
	faults.Reset()
	if err == nil {
		t.Fatal("renew under fault succeeded")
	}
	if hb.Valid() {
		t.Fatal("handle valid after failed renew")
	}
}
