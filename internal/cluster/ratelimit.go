package cluster

import (
	"math"
	"sync"
	"time"
)

// RateLimiter is a per-tenant token bucket for submit admission control.
// Each tenant's bucket refills at rate tokens per second up to burst; a
// submission spends one token, and a tenant with an empty bucket is told
// how long until the next token exists (the service maps that to 429 +
// Retry-After).
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter refilling rate tokens/second per tenant
// with the given burst capacity. burst is clamped to at least 1 so a
// positive rate always admits something.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// Allow spends one token from the tenant's bucket. When the bucket is
// empty it returns false and the duration until one token will have
// refilled — the Retry-After hint. The caller passes now explicitly so
// tests drive the clock deterministically.
func (r *RateLimiter) Allow(tenant string, now time.Time) (bool, time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: r.burst, last: now}
		r.buckets[tenant] = b
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(r.burst, b.tokens+elapsed*r.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if r.rate <= 0 {
		// Zero refill with an empty bucket: never admissible again. The
		// service treats rate <= 0 as "unlimited" and skips the limiter,
		// so this is a defensive answer, not a reachable steady state.
		return false, time.Hour
	}
	wait := time.Duration((1 - b.tokens) / r.rate * float64(time.Second))
	if wait < time.Second {
		// Retry-After is whole seconds on the wire; rounding up keeps the
		// client from retrying a hair early and eating another 429.
		wait = time.Second
	}
	return false, wait
}
