package cluster

import (
	"sort"
	"sync"
)

// SchedOptions configures a Scheduler.
type SchedOptions struct {
	// Capacity bounds the total number of queued items across all tenants;
	// Push returns false at the bound (the service maps that to 429).
	// <= 0 means unbounded.
	Capacity int
	// Quantum is the deficit added to a tenant per round-robin visit, in
	// cost units. A tenant dispatches items while its accumulated deficit
	// covers the head item's cost, so the long-run share of each tenant is
	// proportional to its quantum regardless of item sizes. <= 0 defaults
	// to 1.
	Quantum int
	// Quota caps how many items per tenant may be dispatched-but-not-Done
	// at once (per-tenant running-job quota on this node). <= 0 means
	// unlimited.
	Quota int
}

// Scheduler is a deficit-weighted round-robin dispatcher over per-tenant
// FIFO queues. Producers Push items with a cost; consumers block in Next
// until an item is dispatchable, and call Done when they finish it so
// per-tenant quotas free up. A tenant flooding the queue cannot starve the
// others: each visit grants one quantum of deficit, and dispatch stops the
// moment the head item costs more than the tenant has saved up.
type Scheduler[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	opts   SchedOptions
	queues map[string]*tenantQueue[T]
	// ring holds the round-robin visit order: tenants are appended when
	// their queue becomes non-empty and removed when it drains.
	ring   []string
	cursor int
	// visiting marks that the cursor tenant has already been granted its
	// quantum for the current visit: a tenant mid-burst across several
	// Next calls must not earn another quantum per call.
	visiting bool
	queued   int
	closed   bool
}

type schedItem[T any] struct {
	v    T
	cost int
}

type tenantQueue[T any] struct {
	items   []schedItem[T]
	deficit int
	running int
}

// NewScheduler builds a scheduler with the given options.
func NewScheduler[T any](opts SchedOptions) *Scheduler[T] {
	if opts.Quantum <= 0 {
		opts.Quantum = 1
	}
	s := &Scheduler[T]{opts: opts, queues: make(map[string]*tenantQueue[T])}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Push enqueues an item for a tenant. It returns false when the scheduler
// is at capacity or closed; the item is not queued in either case.
func (s *Scheduler[T]) Push(tenant string, v T, cost int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || (s.opts.Capacity > 0 && s.queued >= s.opts.Capacity) {
		return false
	}
	s.pushLocked(tenant, v, cost)
	return true
}

// PushForce enqueues an item regardless of capacity. Recovery paths —
// journal replay, coordinator requeue — use it: a job that already exists
// durably must never be dropped for backpressure. Returns false only when
// the scheduler is closed.
func (s *Scheduler[T]) PushForce(tenant string, v T, cost int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.pushLocked(tenant, v, cost)
	return true
}

func (s *Scheduler[T]) pushLocked(tenant string, v T, cost int) {
	if cost < 1 {
		cost = 1
	}
	q := s.queues[tenant]
	if q == nil {
		q = &tenantQueue[T]{}
		s.queues[tenant] = q
	}
	if len(q.items) == 0 {
		s.ring = append(s.ring, tenant)
	}
	q.items = append(q.items, schedItem[T]{v: v, cost: cost})
	s.queued++
	s.cond.Broadcast()
}

// Next blocks until an item is dispatchable and returns it with its
// tenant. ok is false the moment the scheduler is closed — queued items
// are deliberately not dispatched after Close, so a shutting-down worker
// pool stops immediately and the owner drains the queues with DrainAll.
func (s *Scheduler[T]) Next() (v T, tenant string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			var zero T
			return zero, "", false
		}
		if v, tenant, ok := s.nextLocked(); ok {
			return v, tenant, true
		}
		s.cond.Wait()
	}
}

// nextLocked runs the DRR sweep: starting at the cursor, visit tenants in
// ring order, granting one quantum per visit (not per call — a tenant
// bursting across several Next calls keeps its single grant), and dispatch
// the head when the saved deficit covers its cost. Deficit-short tenants
// keep their savings and earn another quantum next lap, so any queued item
// dispatches after finitely many laps; the sweep returns false only when
// the ring is empty or a full lap found every tenant quota-blocked — the
// states a Push or Done can change.
func (s *Scheduler[T]) nextLocked() (T, string, bool) {
	var zero T
	for {
		if len(s.ring) == 0 {
			return zero, "", false
		}
		grantable := false
		for lap := 0; lap < len(s.ring); lap++ {
			if s.cursor >= len(s.ring) {
				s.cursor = 0
			}
			tenant := s.ring[s.cursor]
			q := s.queues[tenant]
			if s.opts.Quota > 0 && q.running >= s.opts.Quota {
				// Quota-blocked tenants are skipped without earning
				// deficit: banking quantum while blocked would let a
				// tenant burst far past its fair share the moment a slot
				// frees.
				s.endVisitLocked()
				continue
			}
			grantable = true
			if !s.visiting {
				q.deficit += s.opts.Quantum
				s.visiting = true
			}
			if q.deficit >= q.items[0].cost {
				item := q.items[0]
				q.items = q.items[1:]
				q.deficit -= item.cost
				q.running++
				s.queued--
				if len(q.items) == 0 {
					// Classic DRR: an emptied queue forfeits its saved
					// deficit and leaves the ring until it has items again.
					q.deficit = 0
					s.ring = append(s.ring[:s.cursor], s.ring[s.cursor+1:]...)
					s.visiting = false
				} else if q.deficit < q.items[0].cost {
					// The visit's deficit is spent; the next call moves on.
					s.endVisitLocked()
				}
				return item.v, tenant, true
			}
			// Deficit does not cover the head item yet; the savings carry
			// to the next lap, and the visit moves on.
			s.endVisitLocked()
		}
		if !grantable {
			return zero, "", false
		}
	}
}

func (s *Scheduler[T]) endVisitLocked() {
	s.visiting = false
	s.cursor++
}

// Done releases one unit of a tenant's running quota.
func (s *Scheduler[T]) Done(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[tenant]; q != nil && q.running > 0 {
		q.running--
		s.cond.Broadcast()
	}
}

// Close stops dispatch: blocked Next calls return ok=false once nothing is
// dispatchable, and further Push calls are refused.
func (s *Scheduler[T]) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

// DrainAll removes and returns every queued item (any tenant order), for
// shutdown paths that journal still-queued jobs as requeued.
func (s *Scheduler[T]) DrainAll() []T {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []T
	tenants := make([]string, 0, len(s.queues))
	for t := range s.queues {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		q := s.queues[t]
		for _, it := range q.items {
			out = append(out, it.v)
		}
		q.items = nil
		q.deficit = 0
	}
	s.ring = nil
	s.cursor = 0
	s.visiting = false
	s.queued = 0
	return out
}

// Depths returns the queued-item count per tenant (tenants with empty
// queues omitted), for metrics gauges.
func (s *Scheduler[T]) Depths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for t, q := range s.queues {
		if len(q.items) > 0 {
			out[t] = len(q.items)
		}
	}
	return out
}

// Len returns the total number of queued items.
func (s *Scheduler[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}
