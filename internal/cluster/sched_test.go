package cluster

import (
	"testing"
	"time"
)

// drain pulls n items synchronously; every item must already be
// dispatchable (the test fails via timeout otherwise).
func drain(t *testing.T, s *Scheduler[string], n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	done := make(chan string)
	for i := 0; i < n; i++ {
		go func() {
			v, _, ok := s.Next()
			if !ok {
				v = "<closed>"
			}
			done <- v
		}()
		select {
		case v := <-done:
			out = append(out, v)
		case <-time.After(5 * time.Second):
			t.Fatalf("Next blocked after %d items: %v", i, out)
		}
	}
	return out
}

func TestSchedDRRInterleavesFloodedTenant(t *testing.T) {
	// Tenant A floods four unit-cost jobs before tenant B submits one.
	// With quantum == cost, DRR must dispatch B within the first two
	// slots instead of letting A's backlog run first.
	s := NewScheduler[string](SchedOptions{Quantum: 1})
	for i := 0; i < 4; i++ {
		s.Push("a", "a"+string(rune('1'+i)), 1)
	}
	s.Push("b", "b1", 1)
	order := drain(t, s, 5)
	posB := -1
	for i, v := range order {
		if v == "b1" {
			posB = i
		}
	}
	if posB < 0 || posB > 1 {
		t.Fatalf("b1 dispatched at position %d in %v, want within first two", posB, order)
	}
}

func TestSchedDeficitAccountsForCost(t *testing.T) {
	// A's jobs cost 4 each, B's cost 1 each, quantum 1: over one full
	// cycle B must dispatch ~4 jobs per A job — byte share, not job
	// share, is what DRR equalizes.
	s := NewScheduler[string](SchedOptions{Quantum: 1})
	for i := 0; i < 2; i++ {
		s.Push("a", "A", 4)
	}
	for i := 0; i < 8; i++ {
		s.Push("b", "B", 1)
	}
	order := drain(t, s, 10)
	// Count B dispatches before the first A dispatch: A needs 4 laps of
	// quantum before its head is affordable, and B dispatches each lap.
	bBefore := 0
	for _, v := range order {
		if v == "A" {
			break
		}
		bBefore++
	}
	if bBefore < 3 {
		t.Fatalf("only %d B jobs before first A in %v, want >= 3", bBefore, order)
	}
}

func TestSchedQuotaBlocksTenant(t *testing.T) {
	s := NewScheduler[string](SchedOptions{Quantum: 1, Quota: 1})
	s.Push("a", "a1", 1)
	s.Push("a", "a2", 1)
	s.Push("b", "b1", 1)

	first := drain(t, s, 2)
	// a1 dispatches, then a is quota-blocked: the second item must be b1.
	if first[0] != "a1" || first[1] != "b1" {
		t.Fatalf("order = %v, want [a1 b1]", first)
	}

	// a2 is not dispatchable until a's slot frees.
	got := make(chan string, 1)
	go func() {
		v, _, _ := s.Next()
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("dispatched %q while tenant a over quota", v)
	case <-time.After(50 * time.Millisecond):
	}
	s.Done("a")
	select {
	case v := <-got:
		if v != "a2" {
			t.Fatalf("after Done got %q, want a2", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked after Done")
	}
}

func TestSchedCapacity(t *testing.T) {
	s := NewScheduler[string](SchedOptions{Capacity: 2})
	if !s.Push("a", "a1", 1) || !s.Push("b", "b1", 1) {
		t.Fatal("pushes under capacity refused")
	}
	if s.Push("a", "a2", 1) {
		t.Fatal("push over capacity accepted")
	}
	if !s.PushForce("a", "a2", 1) {
		t.Fatal("PushForce refused while open")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if d := s.Depths(); d["a"] != 2 || d["b"] != 1 {
		t.Fatalf("Depths = %v", d)
	}
}

func TestSchedCloseUnblocksNext(t *testing.T) {
	s := NewScheduler[string](SchedOptions{})
	done := make(chan bool)
	go func() {
		_, _, ok := s.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned ok=true from closed empty scheduler")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
	if s.Push("a", "x", 1) || s.PushForce("a", "x", 1) {
		t.Fatal("push accepted after Close")
	}
}

func TestSchedCloseStopsDispatch(t *testing.T) {
	// Close stops dispatch even with items queued: a shutting-down worker
	// pool must not start new jobs. The owner recovers them via DrainAll.
	s := NewScheduler[string](SchedOptions{})
	s.Push("a", "a1", 1)
	s.Close()
	if _, _, ok := s.Next(); ok {
		t.Fatal("closed scheduler dispatched")
	}
	if got := s.DrainAll(); len(got) != 1 || got[0] != "a1" {
		t.Fatalf("DrainAll after Close = %v, want [a1]", got)
	}
}

func TestSchedDrainAll(t *testing.T) {
	s := NewScheduler[string](SchedOptions{})
	s.Push("b", "b1", 1)
	s.Push("a", "a1", 1)
	s.Push("a", "a2", 1)
	got := s.DrainAll()
	if len(got) != 3 {
		t.Fatalf("DrainAll = %v, want 3 items", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after drain = %d", s.Len())
	}
	if len(s.DrainAll()) != 0 {
		t.Fatal("second DrainAll returned items")
	}
}

func TestRateLimiterBurstAndRefill(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r := NewRateLimiter(1, 2) // 1 token/s, burst 2

	for i := 0; i < 2; i++ {
		if ok, _ := r.Allow("a", now); !ok {
			t.Fatalf("burst submit %d denied", i)
		}
	}
	ok, retry := r.Allow("a", now)
	if ok {
		t.Fatal("over-burst submit admitted")
	}
	if retry < time.Second {
		t.Fatalf("Retry-After = %v, want >= 1s", retry)
	}

	// Tenants are independent buckets.
	if ok, _ := r.Allow("b", now); !ok {
		t.Fatal("fresh tenant denied")
	}

	// After the refill interval a token exists again.
	if ok, _ := r.Allow("a", now.Add(retry)); !ok {
		t.Fatal("submit after Retry-After still denied")
	}
}

func TestRateLimiterRetryAfterWholeSeconds(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	r := NewRateLimiter(10, 1) // refill in 100ms, but hint rounds up to 1s
	if ok, _ := r.Allow("a", now); !ok {
		t.Fatal("first submit denied")
	}
	ok, retry := r.Allow("a", now)
	if ok || retry != time.Second {
		t.Fatalf("Allow = %v/%v, want denied with 1s hint", ok, retry)
	}
}
