package config

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRouter() *Device {
	d := &Device{Hostname: "r1", Kind: RouterKind}
	d.Interfaces = append(d.Interfaces,
		&Interface{
			Name:        "GigabitEthernet0/0",
			Addr:        netip.MustParsePrefix("10.0.0.0/31"),
			Description: "to-r2",
			OSPFCost:    5,
		},
		&Interface{
			Name:  "GigabitEthernet0/1",
			Addr:  netip.MustParsePrefix("10.1.0.1/24"),
			Extra: []string{"trust dscp", "qos wrr 1 to 7"},
		},
	)
	d.OSPF = &OSPF{
		ProcessID: 1,
		Networks: []netip.Prefix{
			netip.MustParsePrefix("10.0.0.0/31"),
			netip.MustParsePrefix("10.1.0.0/24"),
		},
		InFilters: map[string]string{"GigabitEthernet0/0": "RejPfxs"},
	}
	d.BGP = &BGP{
		ASN:      65001,
		RouterID: netip.MustParseAddr("1.1.1.1"),
		Networks: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/24")},
		Neighbors: []*BGPNeighbor{
			{Addr: netip.MustParseAddr("10.0.0.1"), RemoteAS: 65002, DistributeListIn: "RejPfxs"},
		},
	}
	pl := d.EnsurePrefixList("RejPfxs")
	pl.Deny(netip.MustParsePrefix("10.9.0.0/24"))
	pl.Rules = append(pl.Rules, PrefixRule{Seq: 100, Deny: false, Prefix: netip.MustParsePrefix("0.0.0.0/0"), Le: 32})
	d.Extra = []string{"banner motd ^internal use only^"}
	return d
}

func sampleHost() *Device {
	return &Device{
		Hostname: "h1",
		Kind:     HostKind,
		Interfaces: []*Interface{
			{Name: "eth0", Addr: netip.MustParsePrefix("10.1.0.2/24")},
		},
		Statics: []StaticRoute{{
			Prefix:  netip.MustParsePrefix("0.0.0.0/0"),
			NextHop: netip.MustParseAddr("10.1.0.1"),
		}},
	}
}

func TestRenderParseRoundTripRouter(t *testing.T) {
	d := sampleRouter()
	text := d.Render()
	got, err := ParseDevice(text)
	if err != nil {
		t.Fatalf("ParseDevice: %v\n%s", err, text)
	}
	if got.Render() != text {
		t.Fatalf("round trip diverged:\n--- first ---\n%s\n--- second ---\n%s", text, got.Render())
	}
}

func TestRenderParseRoundTripHost(t *testing.T) {
	d := sampleHost()
	text := d.Render()
	got, err := ParseDevice(text)
	if err != nil {
		t.Fatalf("ParseDevice: %v", err)
	}
	if got.Kind != HostKind {
		t.Fatalf("host kind lost: %v", got.Kind)
	}
	if got.Render() != text {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", text, got.Render())
	}
}

func TestParsePreservesUnknownLines(t *testing.T) {
	text := "hostname c2\n!\ninterface GigabitEthernet1/0/13\n ip address 10.25.17.25 255.255.255.254\n description to-AGG3-1\n traffic-policy mark_agg31_high_priority inbound\n!\ntraffic classifier is_mgmt_traffic\n"
	d, err := ParseDevice(text)
	if err != nil {
		t.Fatalf("ParseDevice: %v", err)
	}
	i := d.Interface("GigabitEthernet1/0/13")
	if i == nil {
		t.Fatal("interface missing")
	}
	if len(i.Extra) != 1 || !strings.Contains(i.Extra[0], "traffic-policy") {
		t.Fatalf("interface extra lost: %v", i.Extra)
	}
	if len(d.Extra) != 1 || !strings.Contains(d.Extra[0], "traffic classifier") {
		t.Fatalf("device extra lost: %v", d.Extra)
	}
}

func TestParseCIDRInterface(t *testing.T) {
	text := "hostname r9\ninterface Ethernet0/0\n ip address 192.168.3.1/30\n"
	d, err := ParseDevice(text)
	if err != nil {
		t.Fatal(err)
	}
	want := netip.MustParsePrefix("192.168.3.1/30")
	if d.Interfaces[0].Addr != want {
		t.Fatalf("got %v want %v", d.Interfaces[0].Addr, want)
	}
}

func TestParseOSPFWildcardNetwork(t *testing.T) {
	text := "hostname r9\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n network 10.1.0.0/24 area 0\n"
	d, err := ParseDevice(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OSPF.Networks) != 2 {
		t.Fatalf("networks = %v", d.OSPF.Networks)
	}
	if d.OSPF.Networks[0] != netip.MustParsePrefix("10.0.0.0/31") {
		t.Fatalf("wildcard network = %v", d.OSPF.Networks[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"interface X\n",                                                      // no hostname
		"hostname x\nrouter bgp notanumber\n",                                // bad ASN
		"hostname x\nip route 10.0.0.0 bad 1.2.3.4\n",                        // bad mask
		"hostname x\nrouter ospf 1\n network bad\n",                          // bad network
		"hostname x\nrouter bgp 1\n neighbor 1.2.3.4 distribute-list L in\n", // filter before neighbor
	}
	for _, c := range cases {
		if _, err := ParseDevice(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestParseNetworkDuplicateHostname(t *testing.T) {
	texts := map[string]string{
		"a.cfg": "hostname same\n",
		"b.cfg": "hostname same\n",
	}
	if _, err := ParseNetwork(texts); err == nil {
		t.Fatal("duplicate hostnames must be rejected")
	}
}

func TestLineStatsMatchesRender(t *testing.T) {
	for _, d := range []*Device{sampleRouter(), sampleHost()} {
		want := 0
		for _, line := range strings.Split(d.Render(), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || line == "!" {
				continue
			}
			want++
		}
		if got := d.LineStats().Total(); got != want {
			t.Errorf("%s: LineStats=%d rendered=%d", d.Hostname, got, want)
		}
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{Interface: 5, Protocol: 3, Filter: 2, Other: 1}
	b := Stats{Interface: 1, Protocol: 1, Filter: 1, Other: 1}
	if got := a.Sub(b); got != (Stats{4, 2, 1, 0}) {
		t.Fatalf("Sub = %+v", got)
	}
	if got := b.Add(b); got != (Stats{2, 2, 2, 2}) {
		t.Fatalf("Add = %+v", got)
	}
}

func TestUtilityUC(t *testing.T) {
	n := NewNetwork()
	n.Add(sampleRouter())
	clone := n.Clone()
	if uc := UtilityUC(n, clone); uc != 1 {
		t.Fatalf("identical networks U_C = %v, want 1", uc)
	}
	// Add 10 filter rules; U_C must drop below 1.
	d := clone.Device("r1")
	pl := d.EnsurePrefixList("More")
	for i := 0; i < 10; i++ {
		pl.Deny(netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 20, byte(i), 0}), 24))
	}
	uc := UtilityUC(n, clone)
	if uc >= 1 || uc <= 0 {
		t.Fatalf("U_C = %v", uc)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleRouter()
	c := d.Clone()
	c.Interfaces[0].Description = "changed"
	c.OSPF.InFilters["GigabitEthernet0/9"] = "X"
	c.BGP.Neighbors[0].DistributeListIn = "Y"
	c.PrefixLists[0].Deny(netip.MustParsePrefix("172.31.0.0/24"))
	if d.Interfaces[0].Description == "changed" {
		t.Fatal("interface mutation leaked")
	}
	if _, ok := d.OSPF.InFilters["GigabitEthernet0/9"]; ok {
		t.Fatal("filter map shared")
	}
	if d.BGP.Neighbors[0].DistributeListIn == "Y" {
		t.Fatal("neighbor shared")
	}
	if d.PrefixLists[0].Denies(netip.MustParsePrefix("172.31.0.0/24")) {
		t.Fatal("prefix list shared")
	}
}

func TestPrefixListDenyIdempotent(t *testing.T) {
	pl := &PrefixList{Name: "L"}
	p := netip.MustParsePrefix("10.2.0.0/24")
	pl.Deny(p)
	pl.Deny(p)
	if len(pl.Rules) != 1 {
		t.Fatalf("duplicate deny: %v", pl.Rules)
	}
	if !pl.Denies(p) {
		t.Fatal("Denies false after Deny")
	}
	if !pl.RemoveDeny(p) {
		t.Fatal("RemoveDeny found nothing")
	}
	if pl.Denies(p) {
		t.Fatal("Denies true after RemoveDeny")
	}
	if pl.RemoveDeny(p) {
		t.Fatal("RemoveDeny removed twice")
	}
}

func TestUsedPrefixes(t *testing.T) {
	n := NewNetwork()
	n.Add(sampleRouter())
	n.Add(sampleHost())
	used := n.UsedPrefixes()
	want := map[string]bool{
		"10.0.0.0/31": true, "10.1.0.0/24": true, "10.9.0.0/24": true,
	}
	got := map[string]bool{}
	for _, p := range used {
		got[p.String()] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing used prefix %s (got %v)", w, used)
		}
	}
	if got["0.0.0.0/0"] {
		t.Error("default route must not count as a used subnet")
	}
}

func TestNextInterfaceName(t *testing.T) {
	d := sampleRouter()
	n1 := d.NextInterfaceName()
	d.Interfaces = append(d.Interfaces, &Interface{Name: n1})
	n2 := d.NextInterfaceName()
	if n1 == n2 {
		t.Fatalf("NextInterfaceName repeated %q", n1)
	}
}

func TestInterfaceCostDefault(t *testing.T) {
	i := &Interface{}
	if i.Cost() != DefaultOSPFCost {
		t.Fatalf("default cost = %d", i.Cost())
	}
	i.OSPFCost = 3
	if i.Cost() != 3 {
		t.Fatalf("explicit cost = %d", i.Cost())
	}
}

func TestInterfaceByAddr(t *testing.T) {
	d := sampleRouter()
	if d.InterfaceByAddr(netip.MustParseAddr("10.0.0.0")) == nil {
		t.Fatal("lookup by address failed")
	}
	if d.InterfaceByAddr(netip.MustParseAddr("9.9.9.9")) != nil {
		t.Fatal("phantom interface")
	}
}

// Property: mask and wildcard strings round-trip every prefix length.
func TestMaskRoundTrip(t *testing.T) {
	f := func(b uint8) bool {
		bits := int(b % 33)
		m, ok := maskBits(maskString(bits))
		w, ok2 := wildcardBitsOf(wildcardString(bits))
		return ok && ok2 && m == bits && w == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskBitsRejectsNonContiguous(t *testing.T) {
	if _, ok := maskBits("255.0.255.0"); ok {
		t.Fatal("non-contiguous mask accepted")
	}
	if _, ok := wildcardBitsOf("0.255.0.255"); ok {
		t.Fatal("non-contiguous wildcard accepted")
	}
}

// Property: rendering is deterministic and parse(render(d)) re-renders
// identically for devices with randomized filter maps.
func TestRenderDeterministic(t *testing.T) {
	d := sampleRouter()
	if d.Render() != d.Render() {
		t.Fatal("render not deterministic")
	}
}

func TestParseRIPStanza(t *testing.T) {
	text := "hostname r1\nrouter rip\n version 2\n network 10.0.0.0/24\n distribute-list prefix F in Eth0\n"
	d, err := ParseDevice(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.RIP == nil || len(d.RIP.Networks) != 1 || d.RIP.InFilters["Eth0"] != "F" {
		t.Fatalf("RIP parse wrong: %+v", d.RIP)
	}
}

func TestParseEIGRPStanza(t *testing.T) {
	text := "hostname r1\ninterface Eth0\n ip address 10.0.0.1 255.255.255.0\n delay 77\n!\nrouter eigrp 212\n network 10.0.0.0/24\n"
	d, err := ParseDevice(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.EIGRP == nil || d.EIGRP.ASN != 212 || len(d.EIGRP.Networks) != 1 {
		t.Fatalf("EIGRP parse wrong: %+v", d.EIGRP)
	}
	if d.Interfaces[0].Delay != 77 {
		t.Fatalf("delay lost: %+v", d.Interfaces[0])
	}
	if d.Render() != ParseMust(t, d.Render()).Render() {
		t.Fatal("EIGRP round trip diverged")
	}
}

func ParseMust(t *testing.T, text string) *Device {
	t.Helper()
	d, err := ParseDevice(text)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseTrailingWhitespaceAndCRLF(t *testing.T) {
	text := "hostname r1\r\ninterface Eth0\r\n ip address 10.0.0.1 255.255.255.0\t\r\n"
	d, err := ParseDevice(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.Interfaces[0].Addr.Addr().String() != "10.0.0.1" {
		t.Fatalf("CRLF parse wrong: %+v", d.Interfaces[0])
	}
}

func TestParseBGPWithoutRouterID(t *testing.T) {
	text := "hostname r1\nrouter bgp 65000\n network 10.1.0.0 mask 255.255.255.0\n"
	d, err := ParseDevice(text)
	if err != nil {
		t.Fatal(err)
	}
	if d.BGP.RouterID.IsValid() {
		t.Fatal("phantom router-id")
	}
	if d.Render() != ParseMust(t, d.Render()).Render() {
		t.Fatal("round trip diverged")
	}
}

func TestDefaultDelayValue(t *testing.T) {
	i := &Interface{}
	if i.DelayValue() != DefaultDelay {
		t.Fatalf("default delay = %d", i.DelayValue())
	}
	i.Delay = 3
	if i.DelayValue() != 3 {
		t.Fatalf("explicit delay = %d", i.DelayValue())
	}
}
