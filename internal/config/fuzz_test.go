package config

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at both configuration parsers. The
// parsers sit on the daemon's submission path — a panic here is a panic
// inside a worker — so the invariant is simple: any input either parses or
// returns an error, and whatever parses must survive a render → re-parse
// round trip (the same round trip the checkpoint resume machinery relies
// on).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"hostname r1\n",
		"hostname r1\ninterface GigabitEthernet0/0\n ip address 10.0.0.1 255.255.255.0\n!\n",
		"hostname r1\nrouter ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n!\n",
		"hostname r1\nrouter bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n!\n",
		"hostname h1\n! device: host\ninterface eth0\n ip address 192.168.1.10 255.255.255.0\n!\n",
		"ip access-list standard BLOCK\n deny 10.1.0.0 0.0.255.255\n permit any\n!\n",
		"ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24\n",
		"set system host-name r1\nset interfaces ge-0/0/0 unit 0 family inet address 10.0.0.1/24\n",
		"set protocols ospf area 0.0.0.0 interface ge-0/0/0.0\n",
		"hostname \x00weird\ninterface \xff\n",
		strings.Repeat("interface Loopback0\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, err := ParseDevice(text)
		if err == nil && d != nil {
			// Round trip: rendering a parsed device and re-parsing it must
			// succeed — the journal checkpoint format depends on it.
			if _, rerr := ParseDevice(d.Render()); rerr != nil {
				t.Fatalf("render of parsed device does not re-parse: %v", rerr)
			}
		}
		jd, err := ParseJunosDevice(text)
		if err == nil && jd != nil {
			if _, rerr := ParseJunosDevice(jd.RenderJunos()); rerr != nil {
				t.Fatalf("junos render of parsed device does not re-parse: %v", rerr)
			}
		}
	})
}
