package config

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// This file implements a second vendor syntax for the same device model:
// Junos-style flat `set` statements. The paper notes ConfMask "is easily
// extendable to more protocols and vendors using the same logic" (§6);
// this codec demonstrates that: the anonymization pipeline operates on the
// vendor-neutral model, so a network captured in Junos syntax anonymizes
// identically and can be re-emitted in either syntax.
//
// The dialect is the natural flat-config subset needed for our model.
// Junos expresses IGP participation per interface rather than via network
// statements, so rendering projects each network statement onto the
// interfaces it covers, and parsing recovers network statements from the
// listed interfaces' subnets — a semantics-preserving round trip, because
// enablement is decided by address containment in both forms.

// RenderJunos returns the device configuration as Junos-style `set`
// statements.
func (d *Device) RenderJunos() string {
	var b strings.Builder
	fmt.Fprintf(&b, "set system host-name %s\n", junosString(d.Hostname))
	if d.Kind == HostKind {
		b.WriteString("set system services host-endpoint\n")
	}

	for _, i := range d.Interfaces {
		if i.Description != "" {
			fmt.Fprintf(&b, "set interfaces %s description %s\n", i.Name, junosString(i.Description))
		}
		if i.Addr.IsValid() {
			fmt.Fprintf(&b, "set interfaces %s unit 0 family inet address %s\n", i.Name, i.Addr)
		}
		if i.Delay > 0 {
			fmt.Fprintf(&b, "set interfaces %s delay %d\n", i.Name, i.Delay)
		}
		for _, x := range i.Extra {
			fmt.Fprintf(&b, "set interfaces %s apply-macro extra %s\n", i.Name, junosString(strings.TrimSpace(x)))
		}
	}

	if d.OSPF != nil {
		for _, i := range d.Interfaces {
			if !coveredBy(i, d.OSPF.Networks) {
				continue
			}
			fmt.Fprintf(&b, "set protocols ospf area 0.0.0.0 interface %s", i.Name)
			if i.OSPFCost > 0 {
				fmt.Fprintf(&b, " metric %d", i.OSPFCost)
			}
			b.WriteString("\n")
		}
		for _, iface := range sortedKeys(d.OSPF.InFilters) {
			fmt.Fprintf(&b, "set protocols ospf import-list %s interface %s\n", d.OSPF.InFilters[iface], iface)
		}
	}
	if d.RIP != nil {
		for _, i := range d.Interfaces {
			if coveredBy(i, d.RIP.Networks) {
				fmt.Fprintf(&b, "set protocols rip group internal neighbor %s\n", i.Name)
			}
		}
		for _, iface := range sortedKeys(d.RIP.InFilters) {
			fmt.Fprintf(&b, "set protocols rip import-list %s interface %s\n", d.RIP.InFilters[iface], iface)
		}
	}
	if d.EIGRP != nil {
		for _, i := range d.Interfaces {
			if coveredBy(i, d.EIGRP.Networks) {
				fmt.Fprintf(&b, "set protocols eigrp %d interface %s\n", d.EIGRP.ASN, i.Name)
			}
		}
		for _, iface := range sortedKeys(d.EIGRP.InFilters) {
			fmt.Fprintf(&b, "set protocols eigrp %d import-list %s interface %s\n", d.EIGRP.ASN, d.EIGRP.InFilters[iface], iface)
		}
	}
	if d.BGP != nil {
		fmt.Fprintf(&b, "set routing-options autonomous-system %d\n", d.BGP.ASN)
		if d.BGP.RouterID.IsValid() {
			fmt.Fprintf(&b, "set routing-options router-id %s\n", d.BGP.RouterID)
		}
		for _, p := range sortedPrefixes(d.BGP.Networks) {
			fmt.Fprintf(&b, "set protocols bgp export-network %s\n", p.Masked())
		}
		nbrs := append([]*BGPNeighbor(nil), d.BGP.Neighbors...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].Addr.Compare(nbrs[j].Addr) < 0 })
		for _, nb := range nbrs {
			fmt.Fprintf(&b, "set protocols bgp group peers neighbor %s peer-as %d\n", nb.Addr, nb.RemoteAS)
			if nb.DistributeListIn != "" {
				fmt.Fprintf(&b, "set protocols bgp group peers neighbor %s import %s\n", nb.Addr, nb.DistributeListIn)
			}
		}
	}

	for _, pl := range d.PrefixLists {
		for _, r := range pl.Rules {
			action := "permit"
			if r.Deny {
				action = "deny"
			}
			if r.Le > 0 {
				fmt.Fprintf(&b, "set policy-options prefix-list %s seq %d %s %s le %d\n", pl.Name, r.Seq, action, r.Prefix.Masked(), r.Le)
			} else {
				fmt.Fprintf(&b, "set policy-options prefix-list %s seq %d %s %s\n", pl.Name, r.Seq, action, r.Prefix.Masked())
			}
		}
	}
	for _, s := range d.Statics {
		fmt.Fprintf(&b, "set routing-options static route %s next-hop %s\n", s.Prefix.Masked(), s.NextHop)
	}
	for _, x := range d.Extra {
		fmt.Fprintf(&b, "set apply-macro extra \"%s\"\n", strings.TrimSpace(x))
	}
	return b.String()
}

func coveredBy(i *Interface, networks []netip.Prefix) bool {
	if !i.Addr.IsValid() {
		return false
	}
	for _, nw := range networks {
		if nw.Contains(i.Addr.Addr()) {
			return true
		}
	}
	return false
}

// ParseJunosDevice parses Junos-style `set` statements into a Device.
func ParseJunosDevice(text string) (*Device, error) {
	d := &Device{Kind: RouterKind}
	type igpIface struct {
		name   string
		metric int
	}
	var ospfIfaces, ripIfaces, eigrpIfaces []igpIface
	var ospfFilters = map[string]string{}
	var ripFilters = map[string]string{}
	var eigrpFilters = map[string]string{}
	eigrpASN := 0
	bgpASN := 0

	iface := func(name string) *Interface {
		if i := d.Interface(name); i != nil {
			return i
		}
		i := &Interface{Name: name}
		d.Interfaces = append(d.Interfaces, i)
		return i
	}

	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := fieldsQuoted(line)
		if len(f) < 2 || f[0] != "set" {
			return nil, fmt.Errorf("config: junos line %d: expected `set ...`: %q", ln+1, line)
		}
		f = f[1:]
		switch {
		case match(f, "system", "host-name", "*"):
			d.Hostname = f[2]
		case match(f, "system", "services", "host-endpoint"):
			d.Kind = HostKind
		case match(f, "interfaces", "*", "description", "*"):
			iface(f[1]).Description = f[3]
		case match(f, "interfaces", "*", "unit", "0", "family", "inet", "address", "*"):
			p, err := netip.ParsePrefix(f[7])
			if err != nil {
				return nil, fmt.Errorf("config: junos line %d: bad address %q", ln+1, f[7])
			}
			iface(f[1]).Addr = p
		case match(f, "interfaces", "*", "delay", "*"):
			v, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, fmt.Errorf("config: junos line %d: bad delay %q", ln+1, f[3])
			}
			iface(f[1]).Delay = v
		case match(f, "interfaces", "*", "apply-macro", "extra", "*"):
			i := iface(f[1])
			i.Extra = append(i.Extra, f[4])
		case match(f, "protocols", "ospf", "area", "*", "interface", "*", "metric", "*"):
			m, err := strconv.Atoi(f[7])
			if err != nil {
				return nil, fmt.Errorf("config: junos line %d: bad metric %q", ln+1, f[7])
			}
			ospfIfaces = append(ospfIfaces, igpIface{name: f[5], metric: m})
		case match(f, "protocols", "ospf", "area", "*", "interface", "*"):
			ospfIfaces = append(ospfIfaces, igpIface{name: f[5]})
		case match(f, "protocols", "ospf", "import-list", "*", "interface", "*"):
			ospfFilters[f[5]] = f[3]
		case match(f, "protocols", "rip", "group", "*", "neighbor", "*"):
			ripIfaces = append(ripIfaces, igpIface{name: f[5]})
		case match(f, "protocols", "rip", "import-list", "*", "interface", "*"):
			ripFilters[f[5]] = f[3]
		case match(f, "protocols", "eigrp", "*", "interface", "*"):
			eigrpIfaces = append(eigrpIfaces, igpIface{name: f[4]})
			eigrpASN = atoiOr(f[2], eigrpASN)
		case match(f, "protocols", "eigrp", "*", "import-list", "*", "interface", "*"):
			eigrpFilters[f[6]] = f[4]
			eigrpASN = atoiOr(f[2], eigrpASN)
		case match(f, "routing-options", "autonomous-system", "*"):
			asn, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, fmt.Errorf("config: junos line %d: bad AS %q", ln+1, f[2])
			}
			bgpASN = asn
		case match(f, "routing-options", "router-id", "*"):
			id, err := netip.ParseAddr(f[2])
			if err != nil {
				return nil, fmt.Errorf("config: junos line %d: bad router-id %q", ln+1, f[2])
			}
			d.ensureBGP().RouterID = id
		case match(f, "protocols", "bgp", "export-network", "*"):
			p, err := netip.ParsePrefix(f[3])
			if err != nil {
				return nil, fmt.Errorf("config: junos line %d: bad network %q", ln+1, f[3])
			}
			b := d.ensureBGP()
			b.Networks = append(b.Networks, p.Masked())
		case match(f, "protocols", "bgp", "group", "*", "neighbor", "*", "peer-as", "*"):
			addr, err := netip.ParseAddr(f[5])
			asn, err2 := strconv.Atoi(f[7])
			if err != nil || err2 != nil {
				return nil, fmt.Errorf("config: junos line %d: bad neighbor %q", ln+1, line)
			}
			b := d.ensureBGP()
			b.Neighbors = append(b.Neighbors, &BGPNeighbor{Addr: addr, RemoteAS: asn})
		case match(f, "protocols", "bgp", "group", "*", "neighbor", "*", "import", "*"):
			addr, err := netip.ParseAddr(f[5])
			if err != nil {
				return nil, fmt.Errorf("config: junos line %d: bad neighbor %q", ln+1, f[5])
			}
			b := d.ensureBGP()
			nb := b.neighbor(addr)
			if nb == nil {
				return nil, fmt.Errorf("config: junos line %d: import for unknown neighbor %s", ln+1, addr)
			}
			nb.DistributeListIn = f[7]
		case match(f, "policy-options", "prefix-list", "*", "seq", "*", "*", "*") ||
			match(f, "policy-options", "prefix-list", "*", "seq", "*", "*", "*", "le", "*"):
			if err := d.parseJunosPrefixRule(f); err != nil {
				return nil, fmt.Errorf("config: junos line %d: %v", ln+1, err)
			}
		case match(f, "routing-options", "static", "route", "*", "next-hop", "*"):
			p, err := netip.ParsePrefix(f[3])
			nh, err2 := netip.ParseAddr(f[5])
			if err != nil || err2 != nil {
				return nil, fmt.Errorf("config: junos line %d: bad static %q", ln+1, line)
			}
			d.Statics = append(d.Statics, StaticRoute{Prefix: p.Masked(), NextHop: nh})
		case match(f, "apply-macro", "extra", "*"):
			d.Extra = append(d.Extra, f[2])
		default:
			return nil, fmt.Errorf("config: junos line %d: unrecognized statement %q", ln+1, line)
		}
	}
	if d.Hostname == "" {
		return nil, fmt.Errorf("config: junos: missing host-name")
	}

	// Recover network statements from per-interface protocol enablement.
	toNetworks := func(ifaces []igpIface) []netip.Prefix {
		var out []netip.Prefix
		seen := map[netip.Prefix]bool{}
		for _, ii := range ifaces {
			i := d.Interface(ii.name)
			if i == nil || !i.Addr.IsValid() {
				continue
			}
			p := i.Addr.Masked()
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
		return out
	}
	if len(ospfIfaces) > 0 || len(ospfFilters) > 0 {
		d.OSPF = &OSPF{ProcessID: 1, Networks: toNetworks(ospfIfaces), InFilters: ospfFilters}
		for _, ii := range ospfIfaces {
			if ii.metric > 0 {
				if i := d.Interface(ii.name); i != nil {
					i.OSPFCost = ii.metric
				}
			}
		}
	}
	if len(ripIfaces) > 0 || len(ripFilters) > 0 {
		d.RIP = &RIP{Networks: toNetworks(ripIfaces), InFilters: ripFilters}
	}
	if len(eigrpIfaces) > 0 || len(eigrpFilters) > 0 {
		d.EIGRP = &EIGRP{ASN: eigrpASN, Networks: toNetworks(eigrpIfaces), InFilters: eigrpFilters}
	}
	if bgpASN != 0 {
		d.ensureBGP().ASN = bgpASN
	}
	return d, nil
}

func (d *Device) ensureBGP() *BGP {
	if d.BGP == nil {
		d.BGP = &BGP{}
	}
	return d.BGP
}

func (d *Device) parseJunosPrefixRule(f []string) error {
	// policy-options prefix-list NAME seq N ACTION PREFIX [le N]
	seq, err := strconv.Atoi(f[4])
	if err != nil {
		return fmt.Errorf("bad seq %q", f[4])
	}
	var deny bool
	switch f[5] {
	case "deny":
		deny = true
	case "permit":
	default:
		return fmt.Errorf("bad action %q", f[5])
	}
	p, err := netip.ParsePrefix(f[6])
	if err != nil {
		return fmt.Errorf("bad prefix %q", f[6])
	}
	le := 0
	if len(f) >= 9 && f[7] == "le" {
		le, err = strconv.Atoi(f[8])
		if err != nil {
			return fmt.Errorf("bad le %q", f[8])
		}
	}
	pl := d.EnsurePrefixList(f[2])
	pl.Rules = append(pl.Rules, PrefixRule{Seq: seq, Deny: deny, Prefix: p.Masked(), Le: le})
	return nil
}

// match reports whether fields follow the pattern; "*" matches any token.
func match(f []string, pattern ...string) bool {
	if len(f) != len(pattern) {
		return false
	}
	for i, p := range pattern {
		if p != "*" && f[i] != p {
			return false
		}
	}
	return true
}

func atoiOr(s string, def int) int {
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}

// junosString renders a free-form value (hostname, description) as a
// single field fieldsQuoted will recover verbatim: values with spaces are
// quoted, and embedded double quotes — which the field syntax cannot
// represent — are dropped, matching what parsing them would yield anyway.
func junosString(s string) string {
	s = strings.ReplaceAll(s, `"`, "")
	if strings.Contains(s, " ") {
		return `"` + s + `"`
	}
	return s
}

// fieldsQuoted splits on spaces but keeps double-quoted spans as one field
// (without the quotes).
func fieldsQuoted(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
			if !inQuote {
				out = append(out, cur.String())
				cur.Reset()
			}
		case r == ' ' && !inQuote:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// RenderJunos renders the whole network in Junos syntax keyed by hostname.
func (n *Network) RenderJunos() map[string]string {
	out := make(map[string]string, len(n.Devices))
	for name, d := range n.Devices {
		out[name] = d.RenderJunos()
	}
	return out
}

// ParseJunosNetwork parses a set of Junos-style configurations.
func ParseJunosNetwork(texts map[string]string) (*Network, error) {
	n := NewNetwork()
	for label, text := range texts {
		d, err := ParseJunosDevice(text)
		if err != nil {
			return nil, fmt.Errorf("config: %s: %v", label, err)
		}
		if n.Device(d.Hostname) != nil {
			return nil, fmt.Errorf("config: duplicate hostname %q (from %s)", d.Hostname, label)
		}
		n.Add(d)
	}
	return n, nil
}

// DetectSyntax guesses whether a configuration text is Cisco-IOS-style or
// Junos-style by its leading statements.
func DetectSyntax(text string) string {
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		if strings.HasPrefix(line, "set ") {
			return "junos"
		}
		return "ios"
	}
	return "ios"
}
