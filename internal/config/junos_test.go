package config

import (
	"net/netip"
	"strings"
	"testing"
)

func TestJunosRoundTripRouter(t *testing.T) {
	d := sampleRouter()
	text := d.RenderJunos()
	got, err := ParseJunosDevice(text)
	if err != nil {
		t.Fatalf("ParseJunosDevice: %v\n%s", err, text)
	}
	if got.RenderJunos() != text {
		t.Fatalf("junos round trip diverged:\n--- first ---\n%s\n--- second ---\n%s", text, got.RenderJunos())
	}
}

func TestJunosRoundTripHost(t *testing.T) {
	d := sampleHost()
	text := d.RenderJunos()
	got, err := ParseJunosDevice(text)
	if err != nil {
		t.Fatalf("ParseJunosDevice: %v", err)
	}
	if got.Kind != HostKind {
		t.Fatal("host kind lost")
	}
	if got.RenderJunos() != text {
		t.Fatal("junos host round trip diverged")
	}
}

func TestJunosCrossSyntaxEquivalence(t *testing.T) {
	// IOS → model → Junos → model: the two models must render the same
	// IOS text (i.e. the Junos projection loses nothing the simulator
	// reads). Network statements are normalized to the covered interface
	// subnets, so compare the semantic fields.
	d := sampleRouter()
	viaJunos, err := ParseJunosDevice(d.RenderJunos())
	if err != nil {
		t.Fatal(err)
	}
	if viaJunos.Hostname != d.Hostname {
		t.Fatal("hostname changed")
	}
	if len(viaJunos.Interfaces) != len(d.Interfaces) {
		t.Fatalf("interface count %d vs %d", len(viaJunos.Interfaces), len(d.Interfaces))
	}
	for idx, i := range d.Interfaces {
		j := viaJunos.Interface(i.Name)
		if j == nil || j.Addr != i.Addr || j.OSPFCost != i.OSPFCost || j.Description != i.Description {
			t.Fatalf("interface %d mismatch: %+v vs %+v", idx, i, j)
		}
		if strings.Join(j.Extra, "|") != strings.Join(i.Extra, "|") {
			t.Fatalf("interface extras mismatch: %v vs %v", i.Extra, j.Extra)
		}
	}
	if (viaJunos.OSPF == nil) != (d.OSPF == nil) {
		t.Fatal("OSPF presence changed")
	}
	if viaJunos.OSPF.InFilters["GigabitEthernet0/0"] != "RejPfxs" {
		t.Fatalf("OSPF filters lost: %v", viaJunos.OSPF.InFilters)
	}
	if viaJunos.BGP == nil || viaJunos.BGP.ASN != d.BGP.ASN || len(viaJunos.BGP.Neighbors) != 1 {
		t.Fatalf("BGP lost: %+v", viaJunos.BGP)
	}
	if viaJunos.BGP.Neighbors[0].DistributeListIn != "RejPfxs" {
		t.Fatal("BGP import filter lost")
	}
	if len(viaJunos.PrefixLists) != len(d.PrefixLists) {
		t.Fatal("prefix lists lost")
	}
}

func TestJunosEIGRPAndDelay(t *testing.T) {
	d := &Device{Hostname: "r1", Kind: RouterKind}
	d.Interfaces = append(d.Interfaces, &Interface{
		Name:  "ge-0/0/0",
		Addr:  netip.MustParsePrefix("10.0.0.0/31"),
		Delay: 55,
	})
	d.EIGRP = &EIGRP{
		ASN:       100,
		Networks:  []netip.Prefix{netip.MustParsePrefix("10.0.0.0/31")},
		InFilters: map[string]string{"ge-0/0/0": "F"},
	}
	d.EnsurePrefixList("F").Deny(netip.MustParsePrefix("10.5.0.0/24"))
	text := d.RenderJunos()
	got, err := ParseJunosDevice(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if got.EIGRP == nil || got.EIGRP.ASN != 100 {
		t.Fatalf("EIGRP lost: %+v", got.EIGRP)
	}
	if got.Interfaces[0].Delay != 55 {
		t.Fatalf("delay lost: %+v", got.Interfaces[0])
	}
	if got.EIGRP.InFilters["ge-0/0/0"] != "F" {
		t.Fatalf("EIGRP filter lost: %v", got.EIGRP.InFilters)
	}
	if got.RenderJunos() != text {
		t.Fatal("round trip diverged")
	}
}

func TestJunosParseErrors(t *testing.T) {
	cases := []string{
		"delete something\n",     // not a set statement
		"set system host-name\n", // missing value → unrecognized
		"set interfaces ge-0 unit 0 family inet address notanip\n",
		"set protocols bgp group peers neighbor 1.2.3.4 import L\n", // unknown neighbor
	}
	for _, c := range cases {
		if _, err := ParseJunosDevice("set system host-name x\n" + c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
	if _, err := ParseJunosDevice("set apply-macro extra \"x\"\n"); err == nil {
		t.Error("missing hostname accepted")
	}
}

func TestDetectSyntax(t *testing.T) {
	if DetectSyntax("hostname r1\n!\n") != "ios" {
		t.Fatal("IOS not detected")
	}
	if DetectSyntax("# comment\nset system host-name r1\n") != "junos" {
		t.Fatal("Junos not detected")
	}
	if DetectSyntax("") != "ios" {
		t.Fatal("default should be ios")
	}
}

func TestFieldsQuoted(t *testing.T) {
	got := fieldsQuoted(`set interfaces x description "to r2 uplink" end`)
	want := []string{"set", "interfaces", "x", "description", "to r2 uplink", "end"}
	if len(got) != len(want) {
		t.Fatalf("fields = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("field %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestJunosNetworkRoundTrip(t *testing.T) {
	n := NewNetwork()
	n.Add(sampleRouter())
	n.Add(sampleHost())
	texts := n.RenderJunos()
	got, err := ParseJunosNetwork(texts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Devices) != 2 {
		t.Fatalf("devices = %d", len(got.Devices))
	}
	dup := map[string]string{"a": texts["r1"], "b": texts["r1"]}
	if _, err := ParseJunosNetwork(dup); err == nil {
		t.Fatal("duplicate hostname accepted")
	}
}
