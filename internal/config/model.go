// Package config models Cisco-IOS-style router and host configurations:
// an in-memory structured form, a text renderer, a parser that round-trips
// the rendered form, and line accounting used by the paper's configuration
// utility metric U_C = 1 − N_l/P_l.
//
// The model covers the subset of IOS that ConfMask manipulates — interfaces
// with addresses and OSPF costs, OSPF/RIP/BGP processes, prefix lists, and
// distribute-list filter attachments — and preserves any other lines
// verbatim so that unrelated configuration (QoS policies, banners, ...)
// survives anonymization untouched, as the paper requires.
package config

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// DeviceKind distinguishes routers from end hosts.
type DeviceKind int

const (
	// RouterKind is an L3 forwarding device running routing protocols.
	RouterKind DeviceKind = iota
	// HostKind is an end host with a single address and a default route.
	HostKind
)

func (k DeviceKind) String() string {
	if k == HostKind {
		return "host"
	}
	return "router"
}

// Device is one device's configuration.
type Device struct {
	Hostname   string
	Kind       DeviceKind
	Interfaces []*Interface
	OSPF       *OSPF
	RIP        *RIP
	EIGRP      *EIGRP
	BGP        *BGP
	// PrefixLists holds named prefix lists in insertion order.
	PrefixLists []*PrefixList
	// Statics holds static routes (hosts use one default route).
	Statics []StaticRoute
	// Extra preserves unrecognized top-level lines verbatim.
	Extra []string
}

// Interface is a layer-3 interface.
type Interface struct {
	Name        string
	Addr        netip.Prefix // interface address with prefix length
	Description string
	// OSPFCost is the `ip ospf cost` value; 0 means unset (DefaultOSPFCost).
	OSPFCost int
	// Delay is the `delay` value in tens of microseconds; 0 means unset
	// (DefaultDelay). EIGRP's simplified metric sums it along the path.
	Delay int
	// Extra preserves unrecognized lines inside the interface stanza.
	Extra []string
	// Injected marks interfaces added by anonymization. It is
	// bookkeeping only and never rendered, so an adversary reading the
	// output cannot see it; tests use it to audit the pipeline.
	Injected bool
}

// DefaultOSPFCost is the link cost used when an interface has no explicit
// `ip ospf cost` line (the paper's running example uses 10).
const DefaultOSPFCost = 10

// Cost returns the effective OSPF cost of the interface.
func (i *Interface) Cost() int {
	if i.OSPFCost > 0 {
		return i.OSPFCost
	}
	return DefaultOSPFCost
}

// OSPF is a `router ospf` process. Only area 0 is modelled.
type OSPF struct {
	ProcessID int
	Networks  []netip.Prefix
	// InFilters maps an interface name to the prefix-list applied with
	// `distribute-list prefix <name> in <interface>`. ConfMask's route
	// filters for OSPF networks attach here.
	InFilters map[string]string
}

// RIP is a `router rip` process (version 2).
type RIP struct {
	Networks []netip.Prefix
	// InFilters maps an interface name to the prefix-list applied with
	// `distribute-list prefix <name> in <interface>`.
	InFilters map[string]string
}

// EIGRP is a `router eigrp` process. The simulator uses a simplified
// additive delay metric (the dominant term of EIGRP's composite metric on
// uniform-bandwidth links).
type EIGRP struct {
	ASN      int
	Networks []netip.Prefix
	// InFilters maps an interface name to the prefix-list applied with
	// `distribute-list prefix <name> in <interface>`.
	InFilters map[string]string
}

// DefaultDelay is the interface delay used when no `delay` line is
// present (10 = 100 µs, the Ethernet default).
const DefaultDelay = 10

// DelayValue returns the effective interface delay.
func (i *Interface) DelayValue() int {
	if i.Delay > 0 {
		return i.Delay
	}
	return DefaultDelay
}

// BGP is a `router bgp` process.
type BGP struct {
	ASN       int
	RouterID  netip.Addr
	Networks  []netip.Prefix
	Neighbors []*BGPNeighbor
}

// BGPNeighbor is one `neighbor` of a BGP process.
type BGPNeighbor struct {
	Addr     netip.Addr
	RemoteAS int
	// DistributeListIn names the prefix-list applied inbound with
	// `neighbor <addr> distribute-list <name> in`.
	DistributeListIn string
}

// PrefixList is a named ordered prefix list. A prefix matches the list when
// it equals a rule's prefix; processing stops at the first match, and a
// list with no match permits (our lists end with an explicit permit-any).
type PrefixList struct {
	Name  string
	Rules []PrefixRule
}

// PrefixRule is one `ip prefix-list` entry.
type PrefixRule struct {
	Seq    int
	Deny   bool
	Prefix netip.Prefix
	// Le, when nonzero, renders as `le <n>` and widens the match to any
	// more-specific prefix up to length n (used for permit-any tails).
	Le int
}

// StaticRoute is an `ip route` statement. Discard routes
// (`ip route <net> <mask> Null0`) anchor locally originated prefixes the
// way operators announce aggregates and external equivalence classes into
// BGP: the network statement requires a matching RIB entry, and Null0
// provides one.
type StaticRoute struct {
	Prefix  netip.Prefix
	NextHop netip.Addr
	Discard bool // true for Null0 routes; NextHop is then unset
}

// Network is a set of device configurations keyed by hostname.
type Network struct {
	Devices map[string]*Device
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{Devices: make(map[string]*Device)}
}

// Add inserts a device, replacing any existing device of the same hostname.
func (n *Network) Add(d *Device) { n.Devices[d.Hostname] = d }

// Device returns the device with the given hostname, or nil.
func (n *Network) Device(name string) *Device { return n.Devices[name] }

// Names returns all hostnames in sorted order.
func (n *Network) Names() []string {
	out := make([]string, 0, len(n.Devices))
	for name := range n.Devices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Routers returns the hostnames of all router devices in sorted order.
func (n *Network) Routers() []string { return n.ofKind(RouterKind) }

// Hosts returns the hostnames of all host devices in sorted order.
func (n *Network) Hosts() []string { return n.ofKind(HostKind) }

func (n *Network) ofKind(k DeviceKind) []string {
	var out []string
	for name, d := range n.Devices {
		if d.Kind == k {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := NewNetwork()
	for _, d := range n.Devices {
		c.Add(d.Clone())
	}
	return c
}

// Clone returns a deep copy of the device.
func (d *Device) Clone() *Device {
	c := &Device{
		Hostname: d.Hostname,
		Kind:     d.Kind,
		Extra:    append([]string(nil), d.Extra...),
		Statics:  append([]StaticRoute(nil), d.Statics...),
	}
	for _, i := range d.Interfaces {
		ci := *i
		ci.Extra = append([]string(nil), i.Extra...)
		c.Interfaces = append(c.Interfaces, &ci)
	}
	if d.OSPF != nil {
		c.OSPF = &OSPF{
			ProcessID: d.OSPF.ProcessID,
			Networks:  append([]netip.Prefix(nil), d.OSPF.Networks...),
			InFilters: cloneStringMap(d.OSPF.InFilters),
		}
	}
	if d.RIP != nil {
		c.RIP = &RIP{
			Networks:  append([]netip.Prefix(nil), d.RIP.Networks...),
			InFilters: cloneStringMap(d.RIP.InFilters),
		}
	}
	if d.EIGRP != nil {
		c.EIGRP = &EIGRP{
			ASN:       d.EIGRP.ASN,
			Networks:  append([]netip.Prefix(nil), d.EIGRP.Networks...),
			InFilters: cloneStringMap(d.EIGRP.InFilters),
		}
	}
	if d.BGP != nil {
		cb := &BGP{
			ASN:      d.BGP.ASN,
			RouterID: d.BGP.RouterID,
			Networks: append([]netip.Prefix(nil), d.BGP.Networks...),
		}
		for _, nb := range d.BGP.Neighbors {
			cn := *nb
			cb.Neighbors = append(cb.Neighbors, &cn)
		}
		c.BGP = cb
	}
	for _, pl := range d.PrefixLists {
		cp := &PrefixList{Name: pl.Name, Rules: append([]PrefixRule(nil), pl.Rules...)}
		c.PrefixLists = append(c.PrefixLists, cp)
	}
	return c
}

func cloneStringMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Interface returns the interface with the given name, or nil.
func (d *Device) Interface(name string) *Interface {
	for _, i := range d.Interfaces {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// InterfaceByAddr returns the interface whose address equals addr, or nil.
func (d *Device) InterfaceByAddr(addr netip.Addr) *Interface {
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() && i.Addr.Addr() == addr {
			return i
		}
	}
	return nil
}

// PrefixList returns the named prefix list, or nil.
func (d *Device) PrefixList(name string) *PrefixList {
	for _, pl := range d.PrefixLists {
		if pl.Name == name {
			return pl
		}
	}
	return nil
}

// EnsurePrefixList returns the named prefix list, creating it (with a
// trailing permit-any so that undeclared prefixes stay permitted) if it
// does not exist yet.
func (d *Device) EnsurePrefixList(name string) *PrefixList {
	if pl := d.PrefixList(name); pl != nil {
		return pl
	}
	pl := &PrefixList{Name: name}
	d.PrefixLists = append(d.PrefixLists, pl)
	return pl
}

// Deny appends a deny rule for pfx (idempotent).
func (pl *PrefixList) Deny(pfx netip.Prefix) {
	for _, r := range pl.Rules {
		if r.Deny && r.Prefix == pfx {
			return
		}
	}
	seq := 5
	if n := len(pl.Rules); n > 0 {
		seq = pl.Rules[n-1].Seq + 5
	}
	pl.Rules = append(pl.Rules, PrefixRule{Seq: seq, Deny: true, Prefix: pfx})
}

// Denies reports whether the list denies exactly pfx.
func (pl *PrefixList) Denies(pfx netip.Prefix) bool {
	for _, r := range pl.Rules {
		if r.Prefix == pfx || (r.Le >= pfx.Bits() && r.Prefix.Overlaps(pfx) && r.Prefix.Bits() <= pfx.Bits()) {
			return r.Deny
		}
	}
	return false // implicit permit for our generated lists
}

// RemoveDeny deletes the deny rule for pfx if present and reports whether a
// rule was removed.
func (pl *PrefixList) RemoveDeny(pfx netip.Prefix) bool {
	for i, r := range pl.Rules {
		if r.Deny && r.Prefix == pfx {
			pl.Rules = append(pl.Rules[:i], pl.Rules[i+1:]...)
			return true
		}
	}
	return false
}

// UsedPrefixes returns every prefix that appears anywhere in the network's
// configurations (interface subnets, protocol networks, statics, prefix
// lists), masked to subnet form. Fake prefixes must avoid all of these.
func (n *Network) UsedPrefixes() []netip.Prefix {
	seen := make(map[netip.Prefix]bool)
	add := func(p netip.Prefix) {
		// A default route (/0) is not an allocated subnet and would
		// blanket the whole address space.
		if p.IsValid() && p.Bits() > 0 {
			seen[p.Masked()] = true
		}
	}
	for _, d := range n.Devices {
		for _, i := range d.Interfaces {
			add(i.Addr)
		}
		if d.OSPF != nil {
			for _, p := range d.OSPF.Networks {
				add(p)
			}
		}
		if d.RIP != nil {
			for _, p := range d.RIP.Networks {
				add(p)
			}
		}
		if d.EIGRP != nil {
			for _, p := range d.EIGRP.Networks {
				add(p)
			}
		}
		if d.BGP != nil {
			for _, p := range d.BGP.Networks {
				add(p)
			}
		}
		for _, s := range d.Statics {
			add(s.Prefix)
		}
		for _, pl := range d.PrefixLists {
			for _, r := range pl.Rules {
				add(r.Prefix)
			}
		}
	}
	out := make([]netip.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// NextInterfaceName returns a fresh interface name on the device following
// the GigabitEthernet<unit>/0/<port> convention used by our renderer.
func (d *Device) NextInterfaceName() string {
	for port := 0; ; port++ {
		name := fmt.Sprintf("GigabitEthernet1/0/%d", port)
		if d.Interface(name) == nil {
			return name
		}
	}
}

// String implements fmt.Stringer with a short summary, not the rendered
// configuration; use Render for the config text.
func (d *Device) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s, %d ifaces", d.Hostname, d.Kind, len(d.Interfaces))
	if d.OSPF != nil {
		b.WriteString(", ospf")
	}
	if d.RIP != nil {
		b.WriteString(", rip")
	}
	if d.EIGRP != nil {
		fmt.Fprintf(&b, ", eigrp:%d", d.EIGRP.ASN)
	}
	if d.BGP != nil {
		fmt.Fprintf(&b, ", bgp:%d", d.BGP.ASN)
	}
	b.WriteString(")")
	return b.String()
}
