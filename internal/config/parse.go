package config

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ParseDevice parses Cisco-IOS-style configuration text into a Device. It
// accepts everything Render produces (the two round-trip), plus small
// variations: CIDR interface addresses and `network <cidr> area 0` OSPF
// statements. Lines it does not understand are preserved verbatim in the
// appropriate Extra slice so no information is lost.
func ParseDevice(text string) (*Device, error) {
	d := &Device{Kind: RouterKind}
	lines := strings.Split(text, "\n")

	type blockKind int
	const (
		blkNone blockKind = iota
		blkIface
		blkOSPF
		blkRIP
		blkBGP
	)
	const blkEIGRP = blkBGP + 1
	cur := blkNone
	var curIface *Interface

	for ln, raw := range lines {
		line := strings.TrimRight(raw, " \t\r")
		if line == "" {
			continue
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "!" {
			cur = blkNone
			curIface = nil
			continue
		}
		if strings.HasPrefix(trimmed, "!") {
			if strings.TrimSpace(strings.TrimPrefix(trimmed, "!")) == "device: host" {
				d.Kind = HostKind
			}
			continue
		}
		indented := strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t")
		f := strings.Fields(trimmed)
		if len(f) == 0 {
			// Unicode whitespace (\v, \f, …) survives the line trim above
			// but yields no fields.
			continue
		}

		if !indented {
			cur = blkNone
			curIface = nil
			switch {
			case f[0] == "hostname" && len(f) >= 2:
				d.Hostname = f[1]
			case f[0] == "interface" && len(f) >= 2:
				curIface = &Interface{Name: f[1]}
				d.Interfaces = append(d.Interfaces, curIface)
				cur = blkIface
			case f[0] == "router" && len(f) >= 2 && f[1] == "ospf":
				pid := 1
				if len(f) >= 3 {
					pid, _ = strconv.Atoi(f[2])
				}
				d.OSPF = &OSPF{ProcessID: pid, InFilters: map[string]string{}}
				cur = blkOSPF
			case f[0] == "router" && len(f) >= 2 && f[1] == "rip":
				d.RIP = &RIP{InFilters: map[string]string{}}
				cur = blkRIP
			case f[0] == "router" && len(f) >= 3 && f[1] == "eigrp":
				asn, err := strconv.Atoi(f[2])
				if err != nil {
					return nil, fmt.Errorf("config: line %d: bad EIGRP AS %q", ln+1, f[2])
				}
				d.EIGRP = &EIGRP{ASN: asn, InFilters: map[string]string{}}
				cur = blkEIGRP
			case f[0] == "router" && len(f) >= 3 && f[1] == "bgp":
				asn, err := strconv.Atoi(f[2])
				if err != nil {
					return nil, fmt.Errorf("config: line %d: bad BGP ASN %q", ln+1, f[2])
				}
				d.BGP = &BGP{ASN: asn}
				cur = blkBGP
			case f[0] == "ip" && len(f) >= 2 && f[1] == "prefix-list":
				if err := d.parsePrefixListLine(f); err != nil {
					return nil, fmt.Errorf("config: line %d: %v", ln+1, err)
				}
			case f[0] == "ip" && len(f) >= 5 && f[1] == "route":
				bits, ok := maskBits(f[3])
				addr, err1 := netip.ParseAddr(f[2])
				if !ok || err1 != nil {
					return nil, fmt.Errorf("config: line %d: bad static route %q", ln+1, trimmed)
				}
				if f[4] == "Null0" {
					d.Statics = append(d.Statics, StaticRoute{
						Prefix:  netip.PrefixFrom(addr, bits).Masked(),
						Discard: true,
					})
					continue
				}
				nh, err2 := netip.ParseAddr(f[4])
				if err2 != nil {
					return nil, fmt.Errorf("config: line %d: bad static route %q", ln+1, trimmed)
				}
				d.Statics = append(d.Statics, StaticRoute{
					Prefix:  netip.PrefixFrom(addr, bits).Masked(),
					NextHop: nh,
				})
			default:
				d.Extra = append(d.Extra, trimmed)
			}
			continue
		}

		// Indented: belongs to the current block.
		switch cur {
		case blkIface:
			d.parseIfaceLine(curIface, f, trimmed)
		case blkOSPF:
			if err := parseIGPLine(f, trimmed, &d.OSPF.Networks, d.OSPF.InFilters, true); err != nil {
				return nil, fmt.Errorf("config: line %d: %v", ln+1, err)
			}
		case blkRIP:
			if trimmed == "version 2" {
				continue
			}
			if err := parseIGPLine(f, trimmed, &d.RIP.Networks, d.RIP.InFilters, false); err != nil {
				return nil, fmt.Errorf("config: line %d: %v", ln+1, err)
			}
		case blkEIGRP:
			if err := parseIGPLine(f, trimmed, &d.EIGRP.Networks, d.EIGRP.InFilters, false); err != nil {
				return nil, fmt.Errorf("config: line %d: %v", ln+1, err)
			}
		case blkBGP:
			if err := d.parseBGPLine(f, trimmed); err != nil {
				return nil, fmt.Errorf("config: line %d: %v", ln+1, err)
			}
		default:
			d.Extra = append(d.Extra, trimmed)
		}
	}
	if d.Hostname == "" {
		return nil, fmt.Errorf("config: missing hostname")
	}
	return d, nil
}

func (d *Device) parseIfaceLine(i *Interface, f []string, trimmed string) {
	switch {
	case f[0] == "description":
		i.Description = strings.TrimSpace(strings.TrimPrefix(trimmed, "description"))
	case f[0] == "ip" && len(f) >= 3 && f[1] == "address":
		if strings.Contains(f[2], "/") {
			if p, err := netip.ParsePrefix(f[2]); err == nil {
				i.Addr = p
				return
			}
		} else if len(f) >= 4 {
			addr, err := netip.ParseAddr(f[2])
			bits, ok := maskBits(f[3])
			if err == nil && ok {
				i.Addr = netip.PrefixFrom(addr, bits)
				return
			}
		}
		i.Extra = append(i.Extra, trimmed)
	case f[0] == "ip" && len(f) >= 4 && f[1] == "ospf" && f[2] == "cost":
		if c, err := strconv.Atoi(f[3]); err == nil {
			i.OSPFCost = c
			return
		}
		i.Extra = append(i.Extra, trimmed)
	case f[0] == "delay" && len(f) >= 2:
		if v, err := strconv.Atoi(f[1]); err == nil {
			i.Delay = v
			return
		}
		i.Extra = append(i.Extra, trimmed)
	default:
		i.Extra = append(i.Extra, trimmed)
	}
}

// parseIGPLine handles `network ...` and `distribute-list ...` inside OSPF
// and RIP stanzas. withArea selects the OSPF wildcard-mask network syntax.
func parseIGPLine(f []string, trimmed string, networks *[]netip.Prefix, filters map[string]string, withArea bool) error {
	switch {
	case f[0] == "network":
		if len(f) >= 2 && strings.Contains(f[1], "/") {
			p, err := netip.ParsePrefix(f[1])
			if err != nil {
				return fmt.Errorf("bad network %q", trimmed)
			}
			*networks = append(*networks, p.Masked())
			return nil
		}
		if withArea && len(f) >= 3 {
			addr, err := netip.ParseAddr(f[1])
			bits, ok := wildcardBitsOf(f[2])
			if err != nil || !ok {
				return fmt.Errorf("bad network %q", trimmed)
			}
			*networks = append(*networks, netip.PrefixFrom(addr, bits).Masked())
			return nil
		}
		return fmt.Errorf("bad network %q", trimmed)
	case f[0] == "distribute-list" && len(f) >= 5 && f[1] == "prefix" && f[3] == "in":
		filters[f[4]] = f[2]
		return nil
	default:
		return fmt.Errorf("unrecognized protocol line %q", trimmed)
	}
}

func (d *Device) parseBGPLine(f []string, trimmed string) error {
	switch {
	case f[0] == "bgp" && len(f) >= 3 && f[1] == "router-id":
		id, err := netip.ParseAddr(f[2])
		if err != nil {
			return fmt.Errorf("bad router-id %q", trimmed)
		}
		d.BGP.RouterID = id
	case f[0] == "network" && len(f) >= 4 && f[2] == "mask":
		addr, err := netip.ParseAddr(f[1])
		bits, ok := maskBits(f[3])
		if err != nil || !ok {
			return fmt.Errorf("bad BGP network %q", trimmed)
		}
		d.BGP.Networks = append(d.BGP.Networks, netip.PrefixFrom(addr, bits).Masked())
	case f[0] == "network" && len(f) >= 2 && strings.Contains(f[1], "/"):
		p, err := netip.ParsePrefix(f[1])
		if err != nil {
			return fmt.Errorf("bad BGP network %q", trimmed)
		}
		d.BGP.Networks = append(d.BGP.Networks, p.Masked())
	case f[0] == "neighbor" && len(f) >= 4 && f[2] == "remote-as":
		addr, err := netip.ParseAddr(f[1])
		asn, err2 := strconv.Atoi(f[3])
		if err != nil || err2 != nil {
			return fmt.Errorf("bad neighbor %q", trimmed)
		}
		d.BGP.Neighbors = append(d.BGP.Neighbors, &BGPNeighbor{Addr: addr, RemoteAS: asn})
	case f[0] == "neighbor" && len(f) >= 5 && f[2] == "distribute-list" && f[4] == "in":
		addr, err := netip.ParseAddr(f[1])
		if err != nil {
			return fmt.Errorf("bad neighbor %q", trimmed)
		}
		nb := d.BGP.neighbor(addr)
		if nb == nil {
			return fmt.Errorf("distribute-list for unknown neighbor %s", addr)
		}
		nb.DistributeListIn = f[3]
	default:
		return fmt.Errorf("unrecognized BGP line %q", trimmed)
	}
	return nil
}

func (b *BGP) neighbor(addr netip.Addr) *BGPNeighbor {
	for _, nb := range b.Neighbors {
		if nb.Addr == addr {
			return nb
		}
	}
	return nil
}

// parsePrefixListLine handles `ip prefix-list NAME seq N deny|permit P [le N]`.
func (d *Device) parsePrefixListLine(f []string) error {
	if len(f) < 7 || f[3] != "seq" {
		return fmt.Errorf("bad prefix-list line")
	}
	name := f[2]
	seq, err := strconv.Atoi(f[4])
	if err != nil {
		return fmt.Errorf("bad prefix-list seq %q", f[4])
	}
	var deny bool
	switch f[5] {
	case "deny":
		deny = true
	case "permit":
		deny = false
	default:
		return fmt.Errorf("bad prefix-list action %q", f[5])
	}
	p, err := netip.ParsePrefix(f[6])
	if err != nil {
		return fmt.Errorf("bad prefix-list prefix %q", f[6])
	}
	le := 0
	if len(f) >= 9 && f[7] == "le" {
		le, err = strconv.Atoi(f[8])
		if err != nil {
			return fmt.Errorf("bad prefix-list le %q", f[8])
		}
	}
	pl := d.EnsurePrefixList(name)
	pl.Rules = append(pl.Rules, PrefixRule{Seq: seq, Deny: deny, Prefix: p.Masked(), Le: le})
	return nil
}

// ParseNetwork parses a set of configurations keyed by an arbitrary label
// (e.g. file name); devices are re-keyed by their hostname lines.
func ParseNetwork(texts map[string]string) (*Network, error) {
	n := NewNetwork()
	for label, text := range texts {
		d, err := ParseDevice(text)
		if err != nil {
			return nil, fmt.Errorf("config: %s: %v", label, err)
		}
		if n.Device(d.Hostname) != nil {
			return nil, fmt.Errorf("config: duplicate hostname %q (from %s)", d.Hostname, label)
		}
		n.Add(d)
	}
	return n, nil
}
