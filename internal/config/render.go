package config

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Render returns the device configuration as Cisco-IOS-style text. The
// output is deterministic: stanzas appear in a fixed order and collections
// are sorted, so rendering the same model twice yields identical text and
// line-count diffs are meaningful.
func (d *Device) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n", d.Hostname)
	if d.Kind == HostKind {
		b.WriteString("! device: host\n")
	}
	b.WriteString("!\n")

	for _, i := range d.Interfaces {
		fmt.Fprintf(&b, "interface %s\n", i.Name)
		if i.Description != "" {
			fmt.Fprintf(&b, " description %s\n", i.Description)
		}
		if i.Addr.IsValid() {
			fmt.Fprintf(&b, " ip address %s %s\n", i.Addr.Addr(), maskString(i.Addr.Bits()))
		}
		if i.OSPFCost > 0 {
			fmt.Fprintf(&b, " ip ospf cost %d\n", i.OSPFCost)
		}
		if i.Delay > 0 {
			fmt.Fprintf(&b, " delay %d\n", i.Delay)
		}
		for _, x := range i.Extra {
			fmt.Fprintf(&b, " %s\n", strings.TrimRight(x, "\n"))
		}
		b.WriteString("!\n")
	}

	if d.OSPF != nil {
		fmt.Fprintf(&b, "router ospf %d\n", d.OSPF.ProcessID)
		for _, p := range sortedPrefixes(d.OSPF.Networks) {
			fmt.Fprintf(&b, " network %s %s area 0\n", p.Masked().Addr(), wildcardString(p.Bits()))
		}
		for _, iface := range sortedKeys(d.OSPF.InFilters) {
			fmt.Fprintf(&b, " distribute-list prefix %s in %s\n", d.OSPF.InFilters[iface], iface)
		}
		b.WriteString("!\n")
	}

	if d.RIP != nil {
		b.WriteString("router rip\n version 2\n")
		for _, p := range sortedPrefixes(d.RIP.Networks) {
			fmt.Fprintf(&b, " network %s\n", p.Masked())
		}
		for _, iface := range sortedKeys(d.RIP.InFilters) {
			fmt.Fprintf(&b, " distribute-list prefix %s in %s\n", d.RIP.InFilters[iface], iface)
		}
		b.WriteString("!\n")
	}

	if d.EIGRP != nil {
		fmt.Fprintf(&b, "router eigrp %d\n", d.EIGRP.ASN)
		for _, p := range sortedPrefixes(d.EIGRP.Networks) {
			fmt.Fprintf(&b, " network %s\n", p.Masked())
		}
		for _, iface := range sortedKeys(d.EIGRP.InFilters) {
			fmt.Fprintf(&b, " distribute-list prefix %s in %s\n", d.EIGRP.InFilters[iface], iface)
		}
		b.WriteString("!\n")
	}

	if d.BGP != nil {
		fmt.Fprintf(&b, "router bgp %d\n", d.BGP.ASN)
		if d.BGP.RouterID.IsValid() {
			fmt.Fprintf(&b, " bgp router-id %s\n", d.BGP.RouterID)
		}
		for _, p := range sortedPrefixes(d.BGP.Networks) {
			fmt.Fprintf(&b, " network %s mask %s\n", p.Masked().Addr(), maskString(p.Bits()))
		}
		nbrs := append([]*BGPNeighbor(nil), d.BGP.Neighbors...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].Addr.Compare(nbrs[j].Addr) < 0 })
		for _, nb := range nbrs {
			fmt.Fprintf(&b, " neighbor %s remote-as %d\n", nb.Addr, nb.RemoteAS)
			if nb.DistributeListIn != "" {
				fmt.Fprintf(&b, " neighbor %s distribute-list %s in\n", nb.Addr, nb.DistributeListIn)
			}
		}
		b.WriteString("!\n")
	}

	for _, pl := range d.PrefixLists {
		for _, r := range pl.Rules {
			action := "permit"
			if r.Deny {
				action = "deny"
			}
			if r.Le > 0 {
				fmt.Fprintf(&b, "ip prefix-list %s seq %d %s %s le %d\n", pl.Name, r.Seq, action, r.Prefix.Masked(), r.Le)
			} else {
				fmt.Fprintf(&b, "ip prefix-list %s seq %d %s %s\n", pl.Name, r.Seq, action, r.Prefix.Masked())
			}
		}
		if len(pl.Rules) > 0 {
			b.WriteString("!\n")
		}
	}

	for _, s := range d.Statics {
		if s.Discard {
			fmt.Fprintf(&b, "ip route %s %s Null0\n", s.Prefix.Masked().Addr(), maskString(s.Prefix.Bits()))
		} else {
			fmt.Fprintf(&b, "ip route %s %s %s\n", s.Prefix.Masked().Addr(), maskString(s.Prefix.Bits()), s.NextHop)
		}
	}
	if len(d.Statics) > 0 {
		b.WriteString("!\n")
	}

	for _, x := range d.Extra {
		fmt.Fprintf(&b, "%s\n", strings.TrimRight(x, "\n"))
	}
	return b.String()
}

// Render returns the whole network as a map from hostname to rendered
// configuration text.
func (n *Network) Render() map[string]string {
	out := make(map[string]string, len(n.Devices))
	for name, d := range n.Devices {
		out[name] = d.Render()
	}
	return out
}

// maskString renders a prefix length as a dotted subnet mask.
func maskString(bits int) string {
	m := maskUint(bits)
	return fmt.Sprintf("%d.%d.%d.%d", byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
}

// wildcardString renders a prefix length as a dotted wildcard (inverse)
// mask, the form OSPF network statements use.
func wildcardString(bits int) string {
	m := ^maskUint(bits)
	return fmt.Sprintf("%d.%d.%d.%d", byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
}

func maskUint(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return 0xFFFFFFFF
	}
	return ^uint32(0) << (32 - bits)
}

// maskBits converts a dotted mask to a prefix length; ok is false when the
// mask is not contiguous.
func maskBits(mask string) (int, bool) {
	a, err := netip.ParseAddr(mask)
	if err != nil || !a.Is4() {
		return 0, false
	}
	b := a.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	bits := 0
	for v&0x80000000 != 0 {
		bits++
		v <<= 1
	}
	if v != 0 {
		return 0, false
	}
	return bits, true
}

// wildcardBitsOf converts a dotted wildcard mask to a prefix length.
func wildcardBitsOf(wc string) (int, bool) {
	a, err := netip.ParseAddr(wc)
	if err != nil || !a.Is4() {
		return 0, false
	}
	b := a.As4()
	v := ^(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	bits := 0
	for v&0x80000000 != 0 {
		bits++
		v <<= 1
	}
	if v != 0 {
		return 0, false
	}
	return bits, true
}

func sortedPrefixes(in []netip.Prefix) []netip.Prefix {
	out := append([]netip.Prefix(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
