package config

import (
	"fmt"
	"net/netip"
)

// SemanticDiff compares two parsed devices on every field the
// anonymization pipeline and the simulator read, and returns "" when they
// are pipeline-indistinguishable: running the pipeline on a network where
// a replaces b makes exactly the same decisions (same simulations, same
// fake artifacts, same RNG draws) as on one containing b. A non-empty
// return names the first semantic difference found.
//
// The deliberately ignored fields are the ones nothing in the pipeline
// reads: Device.Extra (unrecognized top-level lines), Interface.Extra
// (unrecognized interface lines), and Interface.Description — all free
// text preserved verbatim by the renderer. (anonymize.ApplyPII rewrites
// "to-<peer>" descriptions, but ApplyPII is the data holder's separate
// post-processing stage, never part of the anonymization pipeline whose
// checkpoints this comparison gates.) Injected is pipeline bookkeeping
// that inputs never carry.
//
// Order sensitivity mirrors the renderer, because a checkpoint transplant
// must also reproduce a from-scratch run byte for byte: interfaces,
// prefix lists, and static routes compare positionally (rendered in slice
// order), while protocol network statements and BGP neighbors compare as
// sets (rendered sorted).
func SemanticDiff(a, b *Device) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return "device missing"
	}
	if a.Hostname != b.Hostname {
		return fmt.Sprintf("hostname %q vs %q", a.Hostname, b.Hostname)
	}
	if a.Kind != b.Kind {
		return fmt.Sprintf("kind %v vs %v", a.Kind, b.Kind)
	}
	if len(a.Interfaces) != len(b.Interfaces) {
		return fmt.Sprintf("%d vs %d interfaces", len(a.Interfaces), len(b.Interfaces))
	}
	for i, ai := range a.Interfaces {
		bi := b.Interfaces[i]
		switch {
		case ai.Name != bi.Name:
			return fmt.Sprintf("interface %d is %q vs %q (order matters)", i, ai.Name, bi.Name)
		case ai.Addr != bi.Addr:
			return fmt.Sprintf("interface %s: address %v vs %v", ai.Name, ai.Addr, bi.Addr)
		case ai.OSPFCost != bi.OSPFCost:
			return fmt.Sprintf("interface %s: ospf cost %d vs %d", ai.Name, ai.OSPFCost, bi.OSPFCost)
		case ai.Delay != bi.Delay:
			return fmt.Sprintf("interface %s: delay %d vs %d", ai.Name, ai.Delay, bi.Delay)
		}
	}
	if d := diffOSPF(a.OSPF, b.OSPF); d != "" {
		return d
	}
	if d := diffRIP(a.RIP, b.RIP); d != "" {
		return d
	}
	if d := diffEIGRP(a.EIGRP, b.EIGRP); d != "" {
		return d
	}
	if d := diffBGP(a.BGP, b.BGP); d != "" {
		return d
	}
	if len(a.PrefixLists) != len(b.PrefixLists) {
		return fmt.Sprintf("%d vs %d prefix lists", len(a.PrefixLists), len(b.PrefixLists))
	}
	for i, apl := range a.PrefixLists {
		bpl := b.PrefixLists[i]
		if apl.Name != bpl.Name {
			return fmt.Sprintf("prefix list %d is %q vs %q (order matters)", i, apl.Name, bpl.Name)
		}
		if len(apl.Rules) != len(bpl.Rules) {
			return fmt.Sprintf("prefix list %s: %d vs %d rules", apl.Name, len(apl.Rules), len(bpl.Rules))
		}
		for k, ar := range apl.Rules {
			if ar != bpl.Rules[k] {
				return fmt.Sprintf("prefix list %s: rule %d differs", apl.Name, k)
			}
		}
	}
	if len(a.Statics) != len(b.Statics) {
		return fmt.Sprintf("%d vs %d static routes", len(a.Statics), len(b.Statics))
	}
	for i, as := range a.Statics {
		if as != b.Statics[i] {
			return fmt.Sprintf("static route %d differs (%v vs %v)", i, as.Prefix, b.Statics[i].Prefix)
		}
	}
	return ""
}

func diffOSPF(a, b *OSPF) string {
	switch {
	case (a == nil) != (b == nil):
		return "ospf presence differs"
	case a == nil:
		return ""
	case a.ProcessID != b.ProcessID:
		return fmt.Sprintf("ospf process %d vs %d", a.ProcessID, b.ProcessID)
	}
	if d := diffPrefixSets("ospf networks", a.Networks, b.Networks); d != "" {
		return d
	}
	return diffFilterMaps("ospf", a.InFilters, b.InFilters)
}

func diffRIP(a, b *RIP) string {
	switch {
	case (a == nil) != (b == nil):
		return "rip presence differs"
	case a == nil:
		return ""
	}
	if d := diffPrefixSets("rip networks", a.Networks, b.Networks); d != "" {
		return d
	}
	return diffFilterMaps("rip", a.InFilters, b.InFilters)
}

func diffEIGRP(a, b *EIGRP) string {
	switch {
	case (a == nil) != (b == nil):
		return "eigrp presence differs"
	case a == nil:
		return ""
	case a.ASN != b.ASN:
		return fmt.Sprintf("eigrp AS %d vs %d", a.ASN, b.ASN)
	}
	if d := diffPrefixSets("eigrp networks", a.Networks, b.Networks); d != "" {
		return d
	}
	return diffFilterMaps("eigrp", a.InFilters, b.InFilters)
}

func diffBGP(a, b *BGP) string {
	switch {
	case (a == nil) != (b == nil):
		return "bgp presence differs"
	case a == nil:
		return ""
	case a.ASN != b.ASN:
		return fmt.Sprintf("bgp AS %d vs %d", a.ASN, b.ASN)
	case a.RouterID != b.RouterID:
		return fmt.Sprintf("bgp router-id %v vs %v", a.RouterID, b.RouterID)
	}
	if d := diffPrefixSets("bgp networks", a.Networks, b.Networks); d != "" {
		return d
	}
	if len(a.Neighbors) != len(b.Neighbors) {
		return fmt.Sprintf("bgp: %d vs %d neighbors", len(a.Neighbors), len(b.Neighbors))
	}
	byAddr := make(map[netip.Addr]*BGPNeighbor, len(b.Neighbors))
	for _, nb := range b.Neighbors {
		byAddr[nb.Addr] = nb
	}
	for _, an := range a.Neighbors {
		bn, ok := byAddr[an.Addr]
		if !ok {
			return fmt.Sprintf("bgp neighbor %v only on one side", an.Addr)
		}
		if an.RemoteAS != bn.RemoteAS || an.DistributeListIn != bn.DistributeListIn {
			return fmt.Sprintf("bgp neighbor %v differs", an.Addr)
		}
	}
	return ""
}

func diffPrefixSets(what string, a, b []netip.Prefix) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s: %d vs %d entries", what, len(a), len(b))
	}
	set := make(map[netip.Prefix]int, len(a))
	for _, p := range a {
		set[p]++
	}
	for _, p := range b {
		if set[p] == 0 {
			return fmt.Sprintf("%s: %v only on one side", what, p)
		}
		set[p]--
	}
	return ""
}

func diffFilterMaps(proto string, a, b map[string]string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s: %d vs %d distribute-lists", proto, len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			return fmt.Sprintf("%s: distribute-list on %s differs", proto, k)
		}
	}
	return ""
}
