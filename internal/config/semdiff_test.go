package config

import (
	"net/netip"
	"strings"
	"testing"
)

func semdiffDevice() *Device {
	return &Device{
		Hostname: "r1",
		Kind:     RouterKind,
		Interfaces: []*Interface{
			{Name: "Ethernet0", Addr: netip.MustParsePrefix("10.0.0.1/24"), Description: "to-r2", OSPFCost: 5},
			{Name: "Ethernet1", Addr: netip.MustParsePrefix("10.0.1.1/24"), Extra: []string{" shutdown-timer 5"}},
		},
		OSPF: &OSPF{
			ProcessID: 1,
			Networks:  []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24"), netip.MustParsePrefix("10.0.1.0/24")},
			InFilters: map[string]string{"Ethernet0": "pl-in"},
		},
		BGP: &BGP{
			ASN:      65001,
			RouterID: netip.MustParseAddr("10.0.0.1"),
			Networks: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")},
			Neighbors: []*BGPNeighbor{
				{Addr: netip.MustParseAddr("10.0.0.2"), RemoteAS: 65002, DistributeListIn: "pl-in"},
				{Addr: netip.MustParseAddr("10.0.1.2"), RemoteAS: 65003},
			},
		},
		PrefixLists: []*PrefixList{
			{Name: "pl-in", Rules: []PrefixRule{{Seq: 5, Deny: true, Prefix: netip.MustParsePrefix("10.9.0.0/16"), Le: 32}}},
		},
		Statics: []StaticRoute{{Prefix: netip.MustParsePrefix("10.8.0.0/16"), NextHop: netip.MustParseAddr("10.0.0.2")}},
		Extra:   []string{"banner motd ^old^"},
	}
}

func TestSemanticDiffIgnoresCosmeticEdits(t *testing.T) {
	a := semdiffDevice()
	b := semdiffDevice()
	b.Extra = []string{"banner motd ^new^", "service timestamps"}
	b.Interfaces[0].Description = "uplink to r2 (edited)"
	b.Interfaces[1].Extra = nil
	if d := SemanticDiff(a, b); d != "" {
		t.Fatalf("cosmetic edit reported as semantic: %s", d)
	}
}

func TestSemanticDiffOrderInsensitiveFields(t *testing.T) {
	a := semdiffDevice()
	b := semdiffDevice()
	// Render sorts protocol networks and BGP neighbors, so reordering
	// them must not register as a semantic change.
	b.OSPF.Networks[0], b.OSPF.Networks[1] = b.OSPF.Networks[1], b.OSPF.Networks[0]
	b.BGP.Neighbors[0], b.BGP.Neighbors[1] = b.BGP.Neighbors[1], b.BGP.Neighbors[0]
	if d := SemanticDiff(a, b); d != "" {
		t.Fatalf("reordered set-like fields reported as semantic: %s", d)
	}
}

func TestSemanticDiffDetectsSemanticEdits(t *testing.T) {
	cases := []struct {
		name string
		edit func(d *Device)
		want string
	}{
		{"hostname", func(d *Device) { d.Hostname = "r9" }, "hostname"},
		{"kind", func(d *Device) { d.Kind = HostKind }, "kind"},
		{"iface-addr", func(d *Device) { d.Interfaces[0].Addr = netip.MustParsePrefix("10.0.0.9/24") }, "address"},
		{"iface-cost", func(d *Device) { d.Interfaces[0].OSPFCost = 7 }, "ospf cost"},
		{"iface-delay", func(d *Device) { d.Interfaces[1].Delay = 20 }, "delay"},
		{"iface-order", func(d *Device) {
			d.Interfaces[0], d.Interfaces[1] = d.Interfaces[1], d.Interfaces[0]
		}, "order matters"},
		{"iface-removed", func(d *Device) { d.Interfaces = d.Interfaces[:1] }, "interfaces"},
		{"ospf-network", func(d *Device) {
			d.OSPF.Networks = append(d.OSPF.Networks, netip.MustParsePrefix("10.7.0.0/24"))
		}, "ospf networks"},
		{"ospf-gone", func(d *Device) { d.OSPF = nil }, "ospf presence"},
		{"rip-added", func(d *Device) { d.RIP = &RIP{} }, "rip presence"},
		{"eigrp-added", func(d *Device) { d.EIGRP = &EIGRP{ASN: 7} }, "eigrp presence"},
		{"filter", func(d *Device) { d.OSPF.InFilters["Ethernet0"] = "pl-other" }, "distribute-list"},
		{"bgp-asn", func(d *Device) { d.BGP.ASN = 65009 }, "bgp AS"},
		{"bgp-neighbor", func(d *Device) { d.BGP.Neighbors[0].RemoteAS = 65009 }, "neighbor"},
		{"prefix-rule", func(d *Device) { d.PrefixLists[0].Rules[0].Le = 24 }, "rule"},
		{"static", func(d *Device) { d.Statics[0].Discard = true }, "static route"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := semdiffDevice()
			tc.edit(b)
			d := SemanticDiff(semdiffDevice(), b)
			if d == "" {
				t.Fatalf("edit not detected")
			}
			if !strings.Contains(d, tc.want) {
				t.Fatalf("diff %q does not mention %q", d, tc.want)
			}
		})
	}
}

func TestSemanticDiffNil(t *testing.T) {
	if d := SemanticDiff(nil, nil); d != "" {
		t.Fatalf("nil vs nil: %s", d)
	}
	if d := SemanticDiff(semdiffDevice(), nil); d == "" {
		t.Fatal("nil mismatch not detected")
	}
}
