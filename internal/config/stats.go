package config

// Stats counts configuration lines by the categories the paper's Table 3
// reports: interface lines, routing-protocol lines, and filter lines
// (prefix lists plus the distribute-list lines that attach them). Blank
// lines and `!` separators are not counted.
type Stats struct {
	Interface int // interface stanza lines (incl. the `interface` line)
	Protocol  int // router ospf/rip/bgp stanza lines except filters
	Filter    int // prefix-list lines and distribute-list attachments
	Other     int // hostname, statics, comments, preserved extras
}

// Total returns the number of counted configuration lines.
func (s Stats) Total() int { return s.Interface + s.Protocol + s.Filter + s.Other }

// Sub returns the per-category difference s − o. With ConfMask's
// add-only guarantee every field of the result is non-negative; the result
// is the Table 3 "added lines" breakdown.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Interface: s.Interface - o.Interface,
		Protocol:  s.Protocol - o.Protocol,
		Filter:    s.Filter - o.Filter,
		Other:     s.Other - o.Other,
	}
}

// Add returns the per-category sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Interface: s.Interface + o.Interface,
		Protocol:  s.Protocol + o.Protocol,
		Filter:    s.Filter + o.Filter,
		Other:     s.Other + o.Other,
	}
}

// LineStats counts the device's rendered configuration lines by category.
// It mirrors Render exactly, so LineStats(d).Total() equals the number of
// non-separator lines in d.Render().
func (d *Device) LineStats() Stats {
	var s Stats
	s.Other++ // hostname
	if d.Kind == HostKind {
		s.Other++ // device marker comment
	}
	for _, i := range d.Interfaces {
		s.Interface++ // interface <name>
		if i.Description != "" {
			s.Interface++
		}
		if i.Addr.IsValid() {
			s.Interface++
		}
		if i.OSPFCost > 0 {
			s.Interface++
		}
		if i.Delay > 0 {
			s.Interface++
		}
		s.Interface += len(i.Extra)
	}
	if d.OSPF != nil {
		s.Protocol++ // router ospf
		s.Protocol += len(d.OSPF.Networks)
		s.Filter += len(d.OSPF.InFilters)
	}
	if d.RIP != nil {
		s.Protocol += 2 // router rip + version 2
		s.Protocol += len(d.RIP.Networks)
		s.Filter += len(d.RIP.InFilters)
	}
	if d.EIGRP != nil {
		s.Protocol++ // router eigrp
		s.Protocol += len(d.EIGRP.Networks)
		s.Filter += len(d.EIGRP.InFilters)
	}
	if d.BGP != nil {
		s.Protocol++ // router bgp
		if d.BGP.RouterID.IsValid() {
			s.Protocol++
		}
		s.Protocol += len(d.BGP.Networks)
		for _, nb := range d.BGP.Neighbors {
			s.Protocol++ // neighbor remote-as
			if nb.DistributeListIn != "" {
				s.Filter++
			}
		}
	}
	for _, pl := range d.PrefixLists {
		s.Filter += len(pl.Rules)
	}
	s.Other += len(d.Statics)
	s.Other += len(d.Extra)
	return s
}

// LineStats sums LineStats over every device in the network.
func (n *Network) LineStats() Stats {
	var s Stats
	for _, d := range n.Devices {
		s = s.Add(d.LineStats())
	}
	return s
}

// UtilityUC computes the paper's configuration utility metric
// U_C = 1 − N_l/P_l for an anonymized network relative to the original,
// where N_l is the number of injected lines and P_l the anonymized total.
func UtilityUC(original, anonymized *Network) float64 {
	po := original.LineStats().Total()
	pa := anonymized.LineStats().Total()
	if pa == 0 {
		return 1
	}
	nl := pa - po
	if nl < 0 {
		nl = 0
	}
	return 1 - float64(nl)/float64(pa)
}
