package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"confmask/internal/config"
	"confmask/internal/netgen"
	"confmask/internal/sim"
)

// DataPlaneBenchRow is one network's data-plane extraction measurement:
// full extraction cost sequential vs parallel, and the cost of one
// filter-mutation round with full re-extraction vs dirty-destination
// re-tracing — the round shape of Algorithm 2's repair loop and
// strawman 2's fixing loop.
type DataPlaneBenchRow struct {
	Net   string  `json:"net"`
	Hosts int     `json:"hosts"`
	Pairs int     `json:"pairs"`
	SeqMS float64 `json:"seq_ms"` // full extraction, parallelism 1
	ParMS float64 `json:"par_ms"` // full extraction, parallelism GOMAXPROCS
	// FullRoundMS / DirtyRoundMS time one round after a single-destination
	// filter change: re-extract everything vs re-trace only dirty
	// destinations (DataPlaneForDirty with the InvalidateFilters diff).
	FullRoundMS  float64 `json:"full_round_ms"`
	DirtyRoundMS float64 `json:"dirty_round_ms"`
	DirtyDests   int     `json:"dirty_dests"`
}

// dataPlaneBenchNets picks the reference networks (Backbone, FatTree08)
// from the Runner's catalog; a restricted catalog without them (tests)
// measures whatever it holds.
func (r *Runner) dataPlaneBenchNets() []netgen.Spec {
	var out []netgen.Spec
	for _, s := range r.Nets {
		if s.Name == "Backbone" || s.Name == "FatTree08" {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = r.Nets
	}
	return out
}

// DataPlaneBench measures the destination-sharded extraction engine on
// the reference networks. Every timing is a best-of-three over a cold
// per-destination cache (a fresh simulation per measurement, excluded
// from the timing).
func (r *Runner) DataPlaneBench() ([]DataPlaneBenchRow, error) {
	var rows []DataPlaneBenchRow
	for _, spec := range r.dataPlaneBenchNets() {
		cfg, err := spec.Build()
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", spec.ID, err)
		}
		view, err := sim.Build(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.ID, err)
		}
		hosts := cfg.Hosts()
		row := DataPlaneBenchRow{
			Net:   spec.Name,
			Hosts: len(hosts),
			Pairs: len(hosts) * (len(hosts) - 1),
		}

		extract := func(workers int) float64 {
			best := time.Duration(0)
			for i := 0; i < 3; i++ {
				snap := sim.SimulateNetOpts(view, sim.Options{Parallelism: workers})
				t0 := time.Now()
				snap.DataPlaneFor(hosts)
				if d := time.Since(t0); best == 0 || d < best {
					best = d
				}
			}
			return float64(best.Microseconds()) / 1000
		}
		row.SeqMS = extract(1)
		row.ParMS = extract(0)

		// One fixing-loop round: deny one host prefix at its gateway, then
		// compare full re-extraction against dirty re-tracing.
		prevSnap := sim.SimulateNetOpts(view, sim.Options{Parallelism: 1})
		prev := prevSnap.DataPlaneFor(hosts)
		gw := view.GatewayOf[hosts[0]]
		pfx := view.HostPrefix[hosts[0]]
		if !attachBenchDeny(cfg.Device(gw), pfx) {
			rows = append(rows, row)
			continue
		}
		diff := view.InvalidateFilters()
		for _, h := range hosts {
			if diff.Affects(view.HostPrefix[h]) {
				row.DirtyDests++
			}
		}
		var full, dirty time.Duration
		for i := 0; i < 3; i++ {
			snap := sim.SimulateNetOpts(view, sim.Options{Parallelism: 1})
			t0 := time.Now()
			snap.DataPlaneFor(hosts)
			if d := time.Since(t0); full == 0 || d < full {
				full = d
			}
			snap = sim.SimulateNetOpts(view, sim.Options{Parallelism: 1})
			t0 = time.Now()
			snap.DataPlaneForDirty(hosts, prev, diff)
			if d := time.Since(t0); dirty == 0 || d < dirty {
				dirty = d
			}
		}
		row.FullRoundMS = float64(full.Microseconds()) / 1000
		row.DirtyRoundMS = float64(dirty.Microseconds()) / 1000
		rows = append(rows, row)
	}
	return rows, nil
}

// attachBenchDeny adds an inbound distribute-list denying pfx on the
// device's first interface, whichever IGP it runs.
func attachBenchDeny(d *config.Device, pfx netip.Prefix) bool {
	if d == nil || len(d.Interfaces) == 0 {
		return false
	}
	iface := d.Interfaces[0].Name
	var filters map[string]string
	switch {
	case d.OSPF != nil:
		if d.OSPF.InFilters == nil {
			d.OSPF.InFilters = make(map[string]string)
		}
		filters = d.OSPF.InFilters
	case d.RIP != nil:
		if d.RIP.InFilters == nil {
			d.RIP.InFilters = make(map[string]string)
		}
		filters = d.RIP.InFilters
	case d.EIGRP != nil:
		if d.EIGRP.InFilters == nil {
			d.EIGRP.InFilters = make(map[string]string)
		}
		filters = d.EIGRP.InFilters
	default:
		return false
	}
	name, ok := filters[iface]
	if !ok {
		name = "DPBENCH-" + iface
		filters[iface] = name
	}
	d.EnsurePrefixList(name).Deny(pfx)
	return true
}
