package experiments

import (
	"testing"

	"confmask/internal/netgen"
)

// testRunner restricts the catalog to two small networks (one BGP+OSPF,
// one OSPF fat-tree) so the whole experiment suite runs in seconds.
func testRunner(t *testing.T) *Runner {
	t.Helper()
	r := NewRunner(1)
	a, err := netgen.ByID("A")
	if err != nil {
		t.Fatal(err)
	}
	g, err := netgen.ByID("G")
	if err != nil {
		t.Fatal(err)
	}
	r.Nets = []netgen.Spec{a, g}
	r.Full = true
	return r
}

func TestTable2(t *testing.T) {
	rows, err := testRunner(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Routers != 10 || rows[0].Hosts != 8 || rows[0].Links != 26 {
		t.Fatalf("Enterprise row wrong: %+v", rows[0])
	}
	if rows[0].ConfigLines <= 0 {
		t.Fatal("missing line count")
	}
}

func TestFigure5RouteAnonymityGrows(t *testing.T) {
	rows, err := testRunner(t).Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.AnonAvg < row.OrigAvg {
			t.Errorf("%s: anonymization reduced N_r: %v < %v", row.Net, row.AnonAvg, row.OrigAvg)
		}
		if row.AnonMin < 1 {
			t.Errorf("%s: anon min N_r = %d", row.Net, row.AnonMin)
		}
	}
}

func TestFigure6AnonymityGuarantee(t *testing.T) {
	rows, err := testRunner(t).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Anon < row.KR {
			t.Errorf("%s: k_d=%d < k_R=%d", row.Net, row.Anon, row.KR)
		}
	}
}

func TestFigure7Bounds(t *testing.T) {
	rows, err := testRunner(t).Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Orig < 0 || row.Orig > 1 || row.Anon < 0 || row.Anon > 1 {
			t.Errorf("%s: CC out of range: %+v", row.Net, row)
		}
	}
}

func TestFigure8ConfMaskKeepsAllPaths(t *testing.T) {
	rows, err := testRunner(t).Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.ConfMask != 1 {
			t.Errorf("%s: ConfMask P_U = %v, want 1 (SFE)", row.Net, row.ConfMask)
		}
		if row.NetHide >= 0.5 {
			t.Errorf("%s: NetHide P_U = %v, expected well below ConfMask", row.Net, row.NetHide)
		}
	}
}

func TestFigure9SpecPreservation(t *testing.T) {
	rows, err := testRunner(t).Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.KeptCM != 1 {
			t.Errorf("%s: ConfMask kept %v of specs, want all", row.Net, row.KeptCM)
		}
		if row.KeptCM <= row.KeptNH {
			t.Errorf("%s: ConfMask (%v) should beat NetHide (%v)", row.Net, row.KeptCM, row.KeptNH)
		}
		if row.FakeFracCM < 0.9 {
			t.Errorf("%s: only %v of introduced specs are fake-host ones", row.Net, row.FakeFracCM)
		}
	}
}

func TestFigure10StrategiesComparable(t *testing.T) {
	rows, err := testRunner(t).Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Skipped {
			t.Errorf("%s skipped despite Full", row.Net)
		}
		// Strawman 1 filters everything: it can never inject fewer lines
		// than ConfMask (U_C ordering of the paper's Fig. 10 right side).
		if row.UCS1 > row.UCCM+1e-9 {
			t.Errorf("%s: U_C(S1)=%v > U_C(CM)=%v", row.Net, row.UCS1, row.UCCM)
		}
	}
}

func TestSweepAndFigure15(t *testing.T) {
	r := testRunner(t)
	res, err := r.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
	if res.Pearson < -1 || res.Pearson > 1 {
		t.Fatalf("Pearson out of range: %v", res.Pearson)
	}
	// Figures 11–14 are filtered views of the same sweep.
	f11, err := r.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f11 {
		if p.KH != 2 {
			t.Fatalf("Figure11 leaked k_H=%d point", p.KH)
		}
	}
	f12, err := r.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f12 {
		if p.KR != 6 {
			t.Fatalf("Figure12 leaked k_R=%d point", p.KR)
		}
	}
}

func TestFigure16Ordering(t *testing.T) {
	rows, err := testRunner(t).Figure16()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.CM <= 0 || row.S1 <= 0 || row.S2 <= 0 {
			t.Errorf("%s: non-positive timing: %+v", row.Net, row)
		}
	}
}

func TestTable3(t *testing.T) {
	r := testRunner(t)
	b, err := netgen.ByID("B")
	if err != nil {
		t.Fatal(err)
	}
	r.Nets = append(r.Nets, b)
	rows, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // University × 4 parameter combos
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Protocol < 0 || row.Filter < 0 || row.Interface < 0 {
			t.Errorf("negative added lines: %+v", row)
		}
		if row.TotalLines <= 0 {
			t.Errorf("missing total: %+v", row)
		}
	}
}

func TestSecurityAnalysis(t *testing.T) {
	rows, err := testRunner(t).SecurityAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Unconfigured != 0 {
			t.Errorf("%s: ConfMask output has unconfigured fake interfaces", row.Net)
		}
		if row.SPTTruePos != 0 {
			t.Errorf("%s: SPT attack identified ConfMask fake links", row.Net)
		}
		if row.MaxReidentConfidence > 1.0/6+1e-9 {
			t.Errorf("%s: re-identification confidence %v exceeds 1/k_R", row.Net, row.MaxReidentConfidence)
		}
		if row.DenyPatternS1 < row.DenyPatternCM {
			t.Errorf("%s: strawman1 (%d) should expose at least as much deny pattern as ConfMask (%d)",
				row.Net, row.DenyPatternS1, row.DenyPatternCM)
		}
	}
	// Enterprise gains fake links, so strawman 1's unified lists must be
	// strictly more detectable there.
	if rows[0].Net != "Enterprise" || rows[0].DenyPatternS1 <= rows[0].DenyPatternCM {
		t.Errorf("Enterprise: S1=%d CM=%d, want strict exposure gap", rows[0].DenyPatternS1, rows[0].DenyPatternCM)
	}
}

func TestRunCaching(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Figure5(); err != nil {
		t.Fatal(err)
	}
	n := len(r.runs)
	if _, err := r.Figure6(); err != nil { // same parameters → cached
		t.Fatal(err)
	}
	if len(r.runs) != n {
		t.Fatalf("Figure6 re-ran cached pipelines: %d → %d", n, len(r.runs))
	}
}
