package experiments

import (
	"time"

	"confmask/internal/anonymize"
	"confmask/internal/metrics"
	"confmask/internal/nethide"
	"confmask/internal/sim"
	"confmask/internal/spec"
)

// Default parameters of the paper's evaluation (§7).
const (
	defaultKR = 6
	defaultKH = 2
	fig9KH    = 4
)

// Table2Row is one row of Table 2: the evaluation networks.
type Table2Row struct {
	ID, Name, Type        string
	Routers, Hosts, Links int
	ConfigLines           int
}

// Table2 rebuilds the evaluation networks and reports their sizes.
func (r *Runner) Table2() ([]Table2Row, error) {
	var out []Table2Row
	for _, s := range r.Nets {
		b, err := r.base(s)
		if err != nil {
			return nil, err
		}
		out = append(out, Table2Row{
			ID: s.ID, Name: s.Name, Type: s.Type,
			Routers:     len(b.Cfg.Routers()),
			Hosts:       len(b.Cfg.Hosts()),
			Links:       b.Topo.NumEdges(),
			ConfigLines: b.Cfg.LineStats().Total(),
		})
	}
	return out, nil
}

// Fig5Row reports route anonymity N_r (distinct paths between edge-router
// pairs) before and after anonymization with k_R=6, k_H=2.
type Fig5Row struct {
	Net              string
	OrigMin, AnonMin int
	OrigAvg, AnonAvg float64
}

// Figure5 measures N_r across all networks at the default parameters.
func (r *Runner) Figure5() ([]Fig5Row, error) {
	var out []Fig5Row
	for _, s := range r.Nets {
		b, err := r.base(s)
		if err != nil {
			return nil, err
		}
		d, err := r.run(s, defaultKR, defaultKH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		orig := metrics.ComputeRouteAnonymity(b.DP, b.Snap.Net.GatewayOf)
		anon := metrics.ComputeRouteAnonymity(d.DPAll, d.Snap.Net.GatewayOf)
		out = append(out, Fig5Row{
			Net:     s.Name,
			OrigMin: orig.Min, AnonMin: anon.Min,
			OrigAvg: orig.Avg, AnonAvg: anon.Avg,
		})
	}
	return out, nil
}

// Fig6Row reports topology anonymity: the minimum number of routers
// sharing a degree, before and after anonymization.
type Fig6Row struct {
	Net        string
	Orig, Anon int
	KR         int
}

// Figure6 measures k_d across all networks at k_R=6.
func (r *Runner) Figure6() ([]Fig6Row, error) {
	var out []Fig6Row
	for _, s := range r.Nets {
		b, err := r.base(s)
		if err != nil {
			return nil, err
		}
		d, err := r.run(s, defaultKR, defaultKH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Row{
			Net:  s.Name,
			Orig: b.Topo.MinSameDegreeCount(),
			Anon: d.Snap.Net.Topology().MinSameDegreeCount(),
			KR:   defaultKR,
		})
	}
	return out, nil
}

// Fig7Row reports the clustering coefficient before and after.
type Fig7Row struct {
	Net        string
	Orig, Anon float64
}

// Figure7 measures topology utility (clustering coefficient) at k_R=6.
func (r *Runner) Figure7() ([]Fig7Row, error) {
	var out []Fig7Row
	for _, s := range r.Nets {
		b, err := r.base(s)
		if err != nil {
			return nil, err
		}
		d, err := r.run(s, defaultKR, defaultKH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7Row{
			Net:  s.Name,
			Orig: b.Topo.ClusteringCoefficient(),
			Anon: d.Snap.Net.Topology().ClusteringCoefficient(),
		})
	}
	return out, nil
}

// Fig8Row reports the fraction of exactly-kept host-to-host paths P_U.
type Fig8Row struct {
	Net               string
	ConfMask, NetHide float64
}

// Figure8 compares path preservation between ConfMask and NetHide.
func (r *Runner) Figure8() ([]Fig8Row, error) {
	var out []Fig8Row
	for _, s := range r.Nets {
		b, err := r.base(s)
		if err != nil {
			return nil, err
		}
		d, err := r.run(s, defaultKR, defaultKH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		hosts := b.Cfg.Hosts()
		nh := nethide.Obfuscate(b.Topo, nethide.Options{Seed: r.Seed})
		out = append(out, Fig8Row{
			Net:      s.Name,
			ConfMask: sim.ExactlyKeptFraction(b.DP, d.DPReal, hosts),
			NetHide:  sim.ExactlyKeptFraction(b.DP, nh.DataPlane(hosts), hosts),
		})
	}
	return out, nil
}

// Fig9Row reports specification preservation (Config2Spec-style).
type Fig9Row struct {
	Net string
	// KeptCM/KeptNH: fraction of original specs preserved.
	KeptCM, KeptNH float64
	// IntroCM/IntroNH: introduced specs as a ratio of original count.
	IntroCM, IntroNH float64
	// FakeFracCM: share of ConfMask-introduced specs that reference fake
	// entities (benign by construction).
	FakeFracCM float64
}

// Figure9 mines specifications from original, ConfMask (k_H=4), and
// NetHide data planes and diffs them.
func (r *Runner) Figure9() ([]Fig9Row, error) {
	var out []Fig9Row
	for _, s := range r.Nets {
		b, err := r.base(s)
		if err != nil {
			return nil, err
		}
		d, err := r.run(s, defaultKR, fig9KH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		hosts := b.Cfg.Hosts()
		routers := b.Cfg.Routers()
		origSpecs := spec.Mine(b.Snap, routers, hosts)
		cmSpecs := spec.Mine(d.Snap, routers, d.Anon.Hosts())
		nh := nethide.Obfuscate(b.Topo, nethide.Options{Seed: r.Seed})
		nhSpecs := spec.Mine(nh, routers, hosts)

		cm := spec.Compare(origSpecs, cmSpecs, spec.IsFakeBySuffix())
		nhc := spec.Compare(origSpecs, nhSpecs, nil)
		out = append(out, Fig9Row{
			Net:        s.Name,
			KeptCM:     cm.KeptFraction(),
			KeptNH:     nhc.KeptFraction(),
			IntroCM:    cm.IntroducedRatio(),
			IntroNH:    nhc.IntroducedRatio(),
			FakeFracCM: cm.FakeFraction(),
		})
	}
	return out, nil
}

// Fig10Row compares ConfMask with the two strawmen on route anonymity and
// configuration utility. Skipped==true marks rows omitted because
// strawman 2 is impractically slow on that network without Runner.Full.
type Fig10Row struct {
	Net              string
	NrCM, NrS1, NrS2 float64
	UCCM, UCS1, UCS2 float64
	Skipped          bool
}

// Figure10 runs all three route-equivalence strategies at k_R=6, k_H=2.
func (r *Runner) Figure10() ([]Fig10Row, error) {
	var out []Fig10Row
	for _, s := range r.Nets {
		cm, err := r.run(s, defaultKR, defaultKH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		s1, err := r.run(s, defaultKR, defaultKH, anonymize.Strawman1)
		if err != nil {
			return nil, err
		}
		row := Fig10Row{
			Net:  s.Name,
			NrCM: metrics.ComputeRouteAnonymity(cm.DPAll, cm.Snap.Net.GatewayOf).Avg,
			NrS1: metrics.ComputeRouteAnonymity(s1.DPAll, s1.Snap.Net.GatewayOf).Avg,
			UCCM: cm.Report.UC,
			UCS1: s1.Report.UC,
		}
		if r.Full || !slowForStrawman2(s.ID) {
			s2, err := r.run(s, defaultKR, defaultKH, anonymize.Strawman2)
			if err != nil {
				return nil, err
			}
			row.NrS2 = metrics.ComputeRouteAnonymity(s2.DPAll, s2.Snap.Net.GatewayOf).Avg
			row.UCS2 = s2.Report.UC
		} else {
			row.Skipped = true
		}
		out = append(out, row)
	}
	return out, nil
}

// SweepRow is one (network, k_R, k_H) data point, shared by Figs. 11–15.
type SweepRow struct {
	Net    string
	KR, KH int
	Nr     float64
	UC     float64
}

// sweep runs the parameter grid of §7.3: k_R ∈ {2,6,10} at k_H=2 and
// k_H ∈ {2,4,6} at k_R=6.
func (r *Runner) sweep() ([]SweepRow, error) {
	combos := [][2]int{{2, 2}, {6, 2}, {10, 2}, {6, 4}, {6, 6}}
	var out []SweepRow
	for _, s := range r.Nets {
		for _, c := range combos {
			kR, kH := c[0], c[1]
			if kR > len(r.bases[s.ID].Cfg.Routers()) {
				continue
			}
			d, err := r.run(s, kR, kH, anonymize.ConfMask)
			if err != nil {
				return nil, err
			}
			out = append(out, SweepRow{
				Net: s.Name, KR: kR, KH: kH,
				Nr: metrics.ComputeRouteAnonymity(d.DPAll, d.Snap.Net.GatewayOf).Avg,
				UC: d.Report.UC,
			})
		}
	}
	return out, nil
}

// ensureBases builds all baselines before sweep() consults r.bases.
func (r *Runner) ensureBases() error {
	for _, s := range r.Nets {
		if _, err := r.base(s); err != nil {
			return err
		}
	}
	return nil
}

// Figure11 reports N_r as k_R varies (k_H = 2).
func (r *Runner) Figure11() ([]SweepRow, error) {
	return r.sweepFilter(func(p SweepRow) bool { return p.KH == 2 })
}

// Figure12 reports N_r as k_H varies (k_R = 6).
func (r *Runner) Figure12() ([]SweepRow, error) {
	return r.sweepFilter(func(p SweepRow) bool { return p.KR == 6 })
}

// Figure13 reports U_C as k_R varies (k_H = 2); same points as Figure11.
func (r *Runner) Figure13() ([]SweepRow, error) { return r.Figure11() }

// Figure14 reports U_C as k_H varies (k_R = 6); same points as Figure12.
func (r *Runner) Figure14() ([]SweepRow, error) { return r.Figure12() }

func (r *Runner) sweepFilter(keep func(SweepRow) bool) ([]SweepRow, error) {
	if err := r.ensureBases(); err != nil {
		return nil, err
	}
	all, err := r.sweep()
	if err != nil {
		return nil, err
	}
	var out []SweepRow
	for _, p := range all {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out, nil
}

// Fig15Result is the privacy–utility trade-off scatter with its Pearson
// correlation (the paper reports r ≈ −0.36).
type Fig15Result struct {
	Points  []SweepRow
	Pearson float64
}

// Figure15 correlates N_r against U_C over the whole sweep.
func (r *Runner) Figure15() (*Fig15Result, error) {
	if err := r.ensureBases(); err != nil {
		return nil, err
	}
	pts, err := r.sweep()
	if err != nil {
		return nil, err
	}
	var nr, uc []float64
	for _, p := range pts {
		nr = append(nr, p.Nr)
		uc = append(uc, p.UC)
	}
	return &Fig15Result{Points: pts, Pearson: metrics.Pearson(nr, uc)}, nil
}

// Fig16Row compares end-to-end running time of the three strategies, and
// their route-equivalence iteration counts — the number of full
// simulations each needs, which is the cost driver when the simulator is
// Batfish (the paper's setting: strawman 1 needs one, ConfMask a few,
// strawman 2 many).
type Fig16Row struct {
	Net                       string
	S1, CM, S2                time.Duration
	ItersS1, ItersCM, ItersS2 int
	Skipped                   bool // S2 omitted (see Runner.Full)
}

// Figure16 measures anonymization wall time per strategy at the default
// parameters.
func (r *Runner) Figure16() ([]Fig16Row, error) {
	var out []Fig16Row
	for _, s := range r.Nets {
		cm, err := r.run(s, defaultKR, defaultKH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		s1, err := r.run(s, defaultKR, defaultKH, anonymize.Strawman1)
		if err != nil {
			return nil, err
		}
		row := Fig16Row{
			Net: s.Name,
			CM:  cm.Wall, ItersCM: cm.Report.EquivIterations,
			S1: s1.Wall, ItersS1: s1.Report.EquivIterations,
		}
		if r.Full || !slowForStrawman2(s.ID) {
			s2, err := r.run(s, defaultKR, defaultKH, anonymize.Strawman2)
			if err != nil {
				return nil, err
			}
			row.S2 = s2.Wall
			row.ItersS2 = s2.Report.EquivIterations
		} else {
			row.Skipped = true
		}
		out = append(out, row)
	}
	return out, nil
}

// Table3Row is the injected-line breakdown per network and parameters.
type Table3Row struct {
	Net        string
	KR, KH     int
	Protocol   int
	Filter     int
	Interface  int
	TotalLines int
}

// Table3 reproduces the appendix table: added routing-protocol, filter,
// and interface lines for the parameter grid the paper reports.
func (r *Runner) Table3() ([]Table3Row, error) {
	combos := [][2]int{{2, 2}, {6, 2}, {6, 4}, {10, 2}}
	ids := map[string]bool{"B": true, "D": true, "E": true, "H": true}
	var out []Table3Row
	for _, s := range r.Nets {
		if !ids[s.ID] {
			continue
		}
		for _, c := range combos {
			d, err := r.run(s, c[0], c[1], anonymize.ConfMask)
			if err != nil {
				return nil, err
			}
			out = append(out, Table3Row{
				Net: s.Name, KR: c[0], KH: c[1],
				Protocol:   d.Report.AddedLines.Protocol,
				Filter:     d.Report.AddedLines.Filter,
				Interface:  d.Report.AddedLines.Interface,
				TotalLines: d.Report.TotalLines,
			})
		}
	}
	// USCarrier at the default parameters, matching the paper's last row.
	for _, s := range r.Nets {
		if s.ID != "F" {
			continue
		}
		d, err := r.run(s, defaultKR, defaultKH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		out = append(out, Table3Row{
			Net: s.Name, KR: defaultKR, KH: defaultKH,
			Protocol:   d.Report.AddedLines.Protocol,
			Filter:     d.Report.AddedLines.Filter,
			Interface:  d.Report.AddedLines.Interface,
			TotalLines: d.Report.TotalLines,
		})
	}
	return out, nil
}
