package experiments

import (
	"fmt"
	"sort"
	"time"

	"confmask"
	"confmask/internal/netgen"
)

// IncrementalBenchRow is one network's incremental-resubmission
// measurement: the cost of a from-scratch anonymization vs re-anonymizing
// a one-router cosmetic edit by importing the first run's final stage
// checkpoint (confmask.ImportCheckpoint + resume). ByteIdentical reports
// the correctness half of the claim — the incremental output matched a
// from-scratch run of the edited bundle byte for byte.
type IncrementalBenchRow struct {
	Net          string  `json:"net"`
	Devices      int     `json:"devices"`
	EditedDevice string  `json:"edited_device"`
	FullMS       float64 `json:"full_ms"`
	// IncrementalMS covers the whole incremental path: manifest-style
	// import (parse, semantic gate, checkpoint patch) plus the resumed
	// pipeline run.
	IncrementalMS float64 `json:"incremental_ms"`
	Speedup       float64 `json:"speedup"`
	ReusedStage   string  `json:"reused_stage"`
	ByteIdentical bool    `json:"byte_identical"`
}

// incrementalBenchNets picks the reference network (FatTree08) from the
// Runner's catalog; a restricted catalog without it (tests) measures
// whatever it holds.
func (r *Runner) incrementalBenchNets() []netgen.Spec {
	var out []netgen.Spec
	for _, s := range r.Nets {
		if s.Name == "FatTree08" {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = r.Nets
	}
	return out
}

// IncrementalBench measures cross-job incremental anonymization on the
// reference network: one full run retaining its final checkpoint, then a
// cosmetic one-router edit resubmitted through ImportCheckpoint. A
// non-byte-identical incremental result is an error, not a slow row — the
// optimization is only allowed to exist because it provably changes
// nothing.
func (r *Runner) IncrementalBench() ([]IncrementalBenchRow, error) {
	var rows []IncrementalBenchRow
	for _, spec := range r.incrementalBenchNets() {
		cfg, err := spec.Build()
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", spec.ID, err)
		}
		configs := cfg.Render()
		o := confmask.Options{KR: 6, KH: 2, NoiseP: 0.1, Seed: r.Seed, Parallelism: r.Parallelism}

		var last *confmask.Checkpoint
		withCP := o
		withCP.Checkpoint = func(cp *confmask.Checkpoint) { last = cp }
		t0 := time.Now()
		if _, _, err := confmask.Anonymize(configs, withCP); err != nil {
			return nil, fmt.Errorf("experiments: %s full run: %w", spec.ID, err)
		}
		full := time.Since(t0)
		if last == nil {
			return nil, fmt.Errorf("experiments: %s full run emitted no checkpoint", spec.ID)
		}

		// The edit: one cosmetic (passthrough) line on one router —
		// deterministically the lexically smallest device name.
		names := make([]string, 0, len(configs))
		for name := range configs {
			names = append(names, name)
		}
		sort.Strings(names)
		dev := names[0]
		edited := make(map[string]string, len(configs))
		for k, v := range configs {
			edited[k] = v
		}
		edited[dev] += "snmp-server community confmask-incremental RO\n"

		t0 = time.Now()
		cp, _, err := confmask.ImportCheckpoint(last, configs, edited, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s import: %w", spec.ID, err)
		}
		fast := o
		fast.Resume = cp
		incOut, _, err := confmask.Anonymize(edited, fast)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s incremental run: %w", spec.ID, err)
		}
		inc := time.Since(t0)

		refOut, _, err := confmask.Anonymize(edited, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s reference run: %w", spec.ID, err)
		}
		identical := len(incOut) == len(refOut)
		for name, want := range refOut {
			if incOut[name] != want {
				identical = false
				break
			}
		}
		if !identical {
			return nil, fmt.Errorf("experiments: %s incremental output differs from from-scratch run", spec.ID)
		}

		rows = append(rows, IncrementalBenchRow{
			Net:           spec.Name,
			Devices:       len(configs),
			EditedDevice:  dev,
			FullMS:        float64(full.Microseconds()) / 1000,
			IncrementalMS: float64(inc.Microseconds()) / 1000,
			Speedup:       float64(full) / float64(inc),
			ReusedStage:   cp.Stage,
			ByteIdentical: identical,
		})
	}
	return rows, nil
}
