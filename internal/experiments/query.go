package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"confmask/internal/anonymize"
	"confmask/internal/attack"
	"confmask/internal/config"
	"confmask/internal/netgen"
	"confmask/internal/query"
	"confmask/internal/sim"
)

// The attacker-vs-verifier benchmark quantifies ConfMask's bargain from
// both ends at once. The verifier's side: a party holding only the
// anonymized configurations answers verification queries (reachability,
// waypoint, isolation, what-if) against them — utility is the fraction
// of queries whose answers match the hidden original network. The
// attacker's side: the same shared artifact is attacked with degree
// re-identification — leakage is the adversary's confidence in locating
// a true router. Sweeping (k_R, k_H, p) shows the trade: stronger
// anonymity should push leakage down while keeping utility high, since
// functional equivalence preserves real forwarding behavior.

// QueryBenchSetting is one anonymization parameter point.
type QueryBenchSetting struct {
	KR     int
	KH     int
	NoiseP float64
}

// DefaultQueryBenchSettings spans the paper's default (6,2,0.1), a
// stronger topology setting, and a stronger route setting with more
// noise.
func DefaultQueryBenchSettings() []QueryBenchSetting {
	return []QueryBenchSetting{
		{KR: 6, KH: 2, NoiseP: 0.1},
		{KR: 10, KH: 2, NoiseP: 0.1},
		{KR: 6, KH: 4, NoiseP: 0.3},
	}
}

// QueryBenchRow is one (network, setting) measurement.
type QueryBenchRow struct {
	Net     string  `json:"net"`
	KR      int     `json:"k_r"`
	KH      int     `json:"k_h"`
	NoiseP  float64 `json:"noise_p"`
	Queries int     `json:"queries"`
	// Utility is the fraction of queries answered identically (verdict,
	// status classification, and what-if change flag) by the original and
	// the anonymized network.
	Utility       float64            `json:"utility"`
	UtilityByKind map[string]float64 `json:"utility_by_kind"`
	// Leakage: the degree re-identification attack over all true routers
	// against the shared topology — the true-degree adversary, plus the
	// strongest-knowledge (shared-degree) upper bound.
	ReidentUnmatched  int     `json:"reident_unmatched"`
	ReidentTrueMean   float64 `json:"reident_true_mean_confidence"`
	ReidentTrueMax    float64 `json:"reident_true_max_confidence"`
	ReidentSharedMean float64 `json:"reident_shared_mean_confidence"`
	ReidentSharedMax  float64 `json:"reident_shared_max_confidence"`
}

// queryWorkload generates a deterministic mixed batch over the original
// network's hosts and routers — names that exist in both the original
// and the anonymized network, so every query is answerable on each side.
func queryWorkload(cfg *config.Network, n int, seed int64) []query.Query {
	hosts := cfg.Hosts()
	routers := cfg.Routers()
	rng := rand.New(rand.NewSource(seed))
	qs := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		switch i % 4 {
		case 0:
			qs = append(qs, query.Query{Kind: query.Reachability, Src: src, Dst: dst})
		case 1:
			qs = append(qs, query.Query{Kind: query.Waypoint, Src: src, Dst: dst, Via: routers[rng.Intn(len(routers))]})
		case 2:
			qs = append(qs, query.Query{Kind: query.Isolation, Src: src, Dst: dst})
		case 3:
			qs = append(qs, query.Query{Kind: query.WhatIf, Src: src, Dst: dst, FailNode: routers[rng.Intn(len(routers))]})
		}
	}
	return qs
}

// sameAnswer is the utility equality: identical verdict, identical path
// classification, identical what-if change flag, identical error (both
// usually empty).
func sameAnswer(a, b query.Result) bool {
	return a.Holds == b.Holds && a.Status == b.Status && a.Changed == b.Changed && a.Error == b.Error
}

// QueryBench measures utility vs leakage per setting on the Enterprise
// network (BGP+OSPF) and the FatTree04 network (pure OSPF, enough
// routers for degree classes to differ across k_R). Nil settings selects
// DefaultQueryBenchSettings; nQueries <= 0 selects 400. The Runner's run
// cache is bypassed deliberately: its key has no noise dimension, and
// this experiment sweeps p.
func (r *Runner) QueryBench(settings []QueryBenchSetting, nQueries int) ([]QueryBenchRow, error) {
	if settings == nil {
		settings = DefaultQueryBenchSettings()
	}
	if nQueries <= 0 {
		nQueries = 400
	}
	ctx := context.Background()
	var out []QueryBenchRow
	for _, netID := range []string{"A", "G"} {
		spec, err := netgen.ByID(netID)
		if err != nil {
			return nil, err
		}
		b, err := r.base(spec)
		if err != nil {
			return nil, err
		}
		engOrig := query.New(b.Snap, query.Options{})
		for i, s := range settings {
			opts := anonymize.DefaultOptions()
			opts.KR = s.KR
			opts.KH = s.KH
			opts.NoiseP = s.NoiseP
			opts.Seed = r.Seed
			opts.MaxIterations = 4096
			opts.Parallelism = r.Parallelism
			anon, _, err := anonymize.Run(b.Cfg, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: query bench %s k_R=%d k_H=%d p=%v: %w",
					spec.ID, s.KR, s.KH, s.NoiseP, err)
			}
			snapAnon, err := sim.SimulateOpts(anon, sim.Options{Parallelism: r.Parallelism})
			if err != nil {
				return nil, fmt.Errorf("experiments: query bench: simulate anonymized: %w", err)
			}
			engAnon := query.New(snapAnon, query.Options{Baseline: b.Snap})

			qs := queryWorkload(b.Cfg, nQueries, r.Seed+int64(i))
			resOrig := engOrig.Run(ctx, qs)
			resAnon := engAnon.Run(ctx, qs)

			same, total := map[string]int{}, map[string]int{}
			identical := 0
			for j := range qs {
				k := string(qs[j].Kind)
				total[k]++
				if sameAnswer(resOrig[j], resAnon[j]) {
					identical++
					same[k]++
				}
			}
			byKind := make(map[string]float64, len(total))
			for k, n := range total {
				byKind[k] = float64(same[k]) / float64(n)
			}
			leak := attack.ReidentifyAll(b.Topo, snapAnon.Net.Topology())
			out = append(out, QueryBenchRow{
				Net:               spec.Name,
				KR:                s.KR,
				KH:                s.KH,
				NoiseP:            s.NoiseP,
				Queries:           nQueries,
				Utility:           float64(identical) / float64(nQueries),
				UtilityByKind:     byKind,
				ReidentUnmatched:  leak.Unmatched,
				ReidentTrueMean:   leak.MeanConfidence,
				ReidentTrueMax:    leak.MaxConfidence,
				ReidentSharedMean: leak.SharedMean,
				ReidentSharedMax:  leak.SharedMax,
			})
		}
	}
	return out, nil
}
