package experiments

import (
	"reflect"
	"testing"
)

func TestQueryBench(t *testing.T) {
	r := testRunner(t)
	settings := []QueryBenchSetting{{KR: 6, KH: 2, NoiseP: 0.1}}
	rows, err := r.QueryBench(settings, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // one setting × (Enterprise, FatTree04)
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	if row.Queries != 60 || row.KR != 6 || row.KH != 2 {
		t.Fatalf("row parameters wrong: %+v", row)
	}
	if row.Utility < 0 || row.Utility > 1 {
		t.Fatalf("utility out of range: %+v", row)
	}
	// Functional equivalence preserves real forwarding, so a mostly
	// host-to-host workload should agree far more often than chance.
	if row.Utility < 0.5 {
		t.Fatalf("utility %.2f implausibly low", row.Utility)
	}
	if row.ReidentTrueMax > 1.0/float64(row.KR)+1e-9 {
		t.Fatalf("true-degree reident max %.4f exceeds 1/k_R: %+v", row.ReidentTrueMax, row)
	}
	if row.ReidentSharedMax > 1.0/float64(row.KR)+1e-9 || row.ReidentSharedMax <= 0 {
		t.Fatalf("shared-degree reident max %.4f out of (0, 1/k_R]: %+v", row.ReidentSharedMax, row)
	}
	if len(row.UtilityByKind) == 0 {
		t.Fatalf("missing per-kind breakdown: %+v", row)
	}

	// Deterministic: the same runner parameters reproduce the rows.
	again, err := testRunner(t).QueryBench(settings, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Fatalf("query bench not deterministic:\n%+v\nvs\n%+v", rows, again)
	}
}
