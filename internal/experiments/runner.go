// Package experiments regenerates every table and figure of the paper's
// evaluation (§7): Table 2 (networks), Figs. 5–16, and Table 3 (injected
// line breakdown). Each experiment returns structured rows; the
// cmd/confmask-bench binary renders them, and bench_test.go wraps them in
// testing.B benchmarks.
//
// Absolute values depend on the synthetic substrates (see DESIGN.md); the
// experiments reproduce the paper's *shape*: who wins, anonymity
// guarantees holding, correlation signs, parameter trends.
package experiments

import (
	"fmt"
	"time"

	"confmask/internal/anonymize"
	"confmask/internal/config"
	"confmask/internal/netgen"
	"confmask/internal/sim"
	"confmask/internal/topology"
)

// Runner caches built networks, baseline simulations, and anonymization
// runs so that experiments sharing parameters do not repeat work.
type Runner struct {
	// Seed drives all pipeline randomness.
	Seed int64
	// Full includes the slowest combinations (strawman 2 on the largest
	// networks); when false those rows are skipped and marked.
	Full bool
	// Nets restricts the catalog (nil = all eight networks).
	Nets []netgen.Spec
	// Parallelism is passed through to the simulation engine (0 =
	// GOMAXPROCS). Results are identical at any setting, so cached runs
	// stay comparable.
	Parallelism int

	bases map[string]*baseData
	runs  map[runKey]*runData
}

// NewRunner returns a Runner over the full Table 2 catalog.
func NewRunner(seed int64) *Runner {
	return &Runner{
		Seed:  seed,
		Nets:  netgen.Catalog(),
		bases: make(map[string]*baseData),
		runs:  make(map[runKey]*runData),
	}
}

type runKey struct {
	netID    string
	kR, kH   int
	strategy anonymize.Strategy
}

// baseData is the original network plus its simulation artifacts.
type baseData struct {
	Spec netgen.Spec
	Cfg  *config.Network
	Snap *sim.Snapshot
	DP   *sim.DataPlane
	Topo *topology.Graph
}

// runData is one anonymization run plus its simulation artifacts.
type runData struct {
	Anon   *config.Network
	Report *anonymize.Report
	Snap   *sim.Snapshot
	// DPAll covers all hosts including fake twins; DPReal only the
	// original hosts.
	DPAll  *sim.DataPlane
	DPReal *sim.DataPlane
	Wall   time.Duration
}

// base builds (and caches) the original network artifacts.
func (r *Runner) base(spec netgen.Spec) (*baseData, error) {
	if b, ok := r.bases[spec.ID]; ok {
		return b, nil
	}
	cfg, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s: %w", spec.ID, err)
	}
	snap, err := sim.SimulateOpts(cfg, sim.Options{Parallelism: r.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("experiments: simulate %s: %w", spec.ID, err)
	}
	b := &baseData{
		Spec: spec,
		Cfg:  cfg,
		Snap: snap,
		DP:   snap.ExtractDataPlane(),
		Topo: snap.Net.Topology(),
	}
	r.bases[spec.ID] = b
	return b, nil
}

// run executes (and caches) one anonymization with the given parameters.
func (r *Runner) run(spec netgen.Spec, kR, kH int, strategy anonymize.Strategy) (*runData, error) {
	key := runKey{netID: spec.ID, kR: kR, kH: kH, strategy: strategy}
	if d, ok := r.runs[key]; ok {
		return d, nil
	}
	b, err := r.base(spec)
	if err != nil {
		return nil, err
	}
	opts := anonymize.DefaultOptions()
	opts.KR = kR
	opts.KH = kH
	opts.Seed = r.Seed
	opts.Strategy = strategy
	opts.MaxIterations = 4096
	opts.Parallelism = r.Parallelism
	start := time.Now()
	anon, rep, err := anonymize.Run(b.Cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s k_R=%d k_H=%d %v: %w", spec.ID, kR, kH, strategy, err)
	}
	wall := time.Since(start)
	snap, err := sim.SimulateOpts(anon, sim.Options{Parallelism: r.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: simulate anonymized: %w", spec.ID, err)
	}
	d := &runData{
		Anon:   anon,
		Report: rep,
		Snap:   snap,
		DPAll:  snap.ExtractDataPlane(),
		DPReal: snap.DataPlaneFor(b.Cfg.Hosts()),
		Wall:   wall,
	}
	r.runs[key] = d
	return d, nil
}

// slowForStrawman2 marks the networks where strawman 2's one-hop-per-pair
// pace makes a run impractically long for a default harness invocation.
func slowForStrawman2(id string) bool { return id == "D" || id == "F" }
