package experiments

import (
	"fmt"
	"runtime"
	"time"

	"confmask/internal/anonymize"
	"confmask/internal/netgen"
	"confmask/internal/sim"
)

// ScaleStage is one pipeline stage's wall clock and heap allocation.
type ScaleStage struct {
	MS         float64 `json:"ms"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// ScaleBenchRow is one network's scale measurement: control-plane
// simulation and data-plane extraction wall clock (digest-based vs fully
// materialized, each with sampled peak live heap), plus the full
// anonymization pipeline's per-stage wall clock and allocation.
type ScaleBenchRow struct {
	Net     string `json:"net"`
	Routers int    `json:"routers"`
	Hosts   int    `json:"hosts"`
	Links   int    `json:"links"`

	// SimulateMS is one control-plane simulation of the original network.
	SimulateMS float64 `json:"simulate_ms"`
	// ExtractDigestMS / ExtractFullMS time per-pair data-plane extraction
	// as 128-bit digests (transient per-destination engines, no H² path
	// materialization) vs as fully materialized path sets; the peak fields
	// are the highest live heap (runtime.MemStats.HeapInuse) sampled while
	// each extraction ran, after a forced GC baseline.
	ExtractDigestMS     float64 `json:"extract_digest_ms"`
	PeakHeapDigestBytes uint64  `json:"peak_heap_digest_bytes"`
	ExtractFullMS       float64 `json:"extract_full_ms"`
	PeakHeapFullBytes   uint64  `json:"peak_heap_full_bytes"`
	// ExtractFullSkipped marks nets whose fully materialized extraction
	// was not run: above fullExtractMaxHosts hosts the H² path-set plane
	// is the intractable strawman the digest plane replaces (FatTree32
	// would materialize ~270M paths), so the row reports digests only.
	ExtractFullSkipped bool `json:"extract_full_skipped,omitempty"`

	// Pipeline is the full anonymization run at the paper's default
	// parameters, keyed by stage ("preprocess", "topology", "equivalence",
	// "anonymity").
	Pipeline              map[string]ScaleStage `json:"pipeline"`
	PipelineTotalMS       float64               `json:"pipeline_total_ms"`
	PeakHeapPipelineBytes uint64                `json:"peak_heap_pipeline_bytes"`
	FakeEdges             int                   `json:"fake_edges"`
	EquivIterations       int                   `json:"equiv_iterations"`
}

// heapSampler polls the live-heap gauge on a short ticker and keeps the
// maximum. Sampling can miss a short spike between ticks; for the
// multi-second extractions measured here the error is a tick's worth of
// allocation, not a phase.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > s.peak {
				s.peak = ms.HeapInuse
			}
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
	return s
}

// Peak stops the sampler and returns the highest HeapInuse observed.
func (s *heapSampler) Peak() uint64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// fullExtractMaxHosts bounds the fully materialized data-plane strawman:
// its cost is H² pairs times ECMP width, which at 1024 hosts is hundreds
// of millions of paths — the measurement would dominate the whole bench.
const fullExtractMaxHosts = 512

// scaleBenchNets picks the scale trajectory: FatTree08 (the Table 2
// anchor) plus the whole scale catalog S1–S4, thousand-router networks
// included — the interned streaming SPF core and the census-based
// Algorithm 2 delivery checks brought FatTree32 and MultiRegion32x32
// inside the default budget. Smoke mode — the CI budget — keeps only
// FatTree08.
func (r *Runner) scaleBenchNets(smoke bool) []netgen.Spec {
	var out []netgen.Spec
	for _, s := range r.Nets {
		if s.Name == "FatTree08" {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = append(out, r.Nets...)
	}
	if smoke {
		return out
	}
	return append(out, netgen.ScaleCatalog()...)
}

// ScaleBench measures the partition-parallel / memory-bounded scale path.
// Each measurement is a single run — the networks are large enough that
// one run dominates noise, and the artifact's claims (digest speedup,
// sub-quadratic peak heap) are order-of-magnitude, not percent-level.
func (r *Runner) ScaleBench(smoke bool) ([]ScaleBenchRow, error) {
	var rows []ScaleBenchRow
	simOpts := sim.Options{Parallelism: r.Parallelism}
	for _, spec := range r.scaleBenchNets(smoke) {
		cfg, err := spec.Build()
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", spec.ID, err)
		}
		view, err := sim.Build(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.ID, err)
		}
		hosts := cfg.Hosts()
		row := ScaleBenchRow{
			Net:     spec.Name,
			Routers: len(cfg.Routers()),
			Hosts:   len(hosts),
			Links:   view.Topology().NumEdges(),
		}

		t0 := time.Now()
		snap := sim.SimulateNetOpts(view, simOpts)
		row.SimulateMS = msSince(t0)

		// Digest extraction: transient engines, peak heap bounded by the
		// worker count times one destination's suffix memos.
		runtime.GC()
		hs := startHeapSampler()
		t0 = time.Now()
		dig := snap.PairDigestsFor(hosts)
		row.ExtractDigestMS = msSince(t0)
		row.PeakHeapDigestBytes = hs.Peak()
		runtime.KeepAlive(dig)

		// Full extraction: every host pair's path set materialized, the
		// pre-digest baseline the pipeline no longer pays. Beyond the host
		// cap the strawman itself is the bottleneck (hours of wall clock at
		// a thousand hosts), so the contrast is measured on the nets where
		// both sides terminate and skipped — explicitly — elsewhere.
		if len(hosts) <= fullExtractMaxHosts {
			runtime.GC()
			hs = startHeapSampler()
			t0 = time.Now()
			dp := snap.DataPlaneFor(hosts)
			row.ExtractFullMS = msSince(t0)
			row.PeakHeapFullBytes = hs.Peak()
			runtime.KeepAlive(dp)
			dp = nil
			_ = dp
		} else {
			row.ExtractFullSkipped = true
		}
		snap = nil
		_ = snap

		// Full pipeline at the paper's defaults; per-stage wall clock and
		// allocation come from the pipeline's own report.
		opts := anonymize.DefaultOptions()
		opts.Seed = r.Seed
		opts.Parallelism = r.Parallelism
		opts.MaxIterations = 4096
		runtime.GC()
		hs = startHeapSampler()
		_, rep, err := anonymize.Run(cfg, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: pipeline: %w", spec.ID, err)
		}
		row.PeakHeapPipelineBytes = hs.Peak()
		row.Pipeline = map[string]ScaleStage{
			"preprocess":  {MS: ms(rep.Timing.Preprocess), AllocBytes: rep.Alloc.Preprocess},
			"topology":    {MS: ms(rep.Timing.Topology), AllocBytes: rep.Alloc.Topology},
			"equivalence": {MS: ms(rep.Timing.RouteEquiv), AllocBytes: rep.Alloc.RouteEquiv},
			"anonymity":   {MS: ms(rep.Timing.RouteAnon), AllocBytes: rep.Alloc.RouteAnon},
		}
		row.PipelineTotalMS = ms(rep.Timing.Total())
		row.FakeEdges = len(rep.FakeEdges)
		row.EquivIterations = rep.EquivIterations
		rows = append(rows, row)
	}
	return rows, nil
}

func ms(d time.Duration) float64   { return float64(d.Microseconds()) / 1000 }
func msSince(t0 time.Time) float64 { return ms(time.Since(t0)) }
