package experiments

import (
	"confmask/internal/anonymize"
	"confmask/internal/attack"
	"confmask/internal/topology"
)

// SecurityRow reports, per network, how the de-anonymization attacks of
// §3.2/§4.3 fare against ConfMask's output versus strawman 1's. This is an
// extension experiment (the paper argues these properties qualitatively;
// here they are measured).
type SecurityRow struct {
	Net string
	// DenyPatternCM / DenyPatternS1: attachments flagged by the
	// shared-deny-set attack (strawman 1's unified RejPfxs pattern).
	DenyPatternCM, DenyPatternS1 int
	// SPTTruePos is the number of ConfMask fake links identified by the
	// shortest-path-tree dead-link attack (0 expected: fake links carry
	// matched costs and real traffic from fake hosts).
	SPTTruePos int
	// Unconfigured is the number of links flagged for missing protocol
	// configuration in ConfMask's output (0 expected).
	Unconfigured int
	// MaxReidentConfidence is the adversary's best degree-based
	// re-identification confidence over all routers (≤ 1/k_R expected).
	MaxReidentConfidence float64
}

// SecurityAnalysis attacks the anonymized outputs at the default
// parameters.
func (r *Runner) SecurityAnalysis() ([]SecurityRow, error) {
	var out []SecurityRow
	for _, s := range r.Nets {
		cm, err := r.run(s, defaultKR, defaultKH, anonymize.ConfMask)
		if err != nil {
			return nil, err
		}
		s1, err := r.run(s, defaultKR, defaultKH, anonymize.Strawman1)
		if err != nil {
			return nil, err
		}
		row := SecurityRow{Net: s.Name}
		row.DenyPatternCM = len(attack.SharedDenyPattern(cm.Anon, 2))
		row.DenyPatternS1 = len(attack.SharedDenyPattern(s1.Anon, 2))

		spt, err := attack.LargeCostLinks(cm.Anon)
		if err != nil {
			return nil, err
		}
		row.SPTTruePos = attack.ScoreLinks(spt, cm.Report.FakeEdges).TruePositives

		unconf, err := attack.UnconfiguredInterfaces(cm.Anon)
		if err != nil {
			return nil, err
		}
		row.Unconfigured = len(unconf)

		shared := cm.Snap.Net.Topology()
		for _, router := range shared.NodesOf(topology.Router) {
			_, conf := attack.DegreeReidentification(shared, shared.RouterDegree(router))
			if conf > row.MaxReidentConfidence {
				row.MaxReidentConfidence = conf
			}
		}
		out = append(out, row)
	}
	return out, nil
}
