// Package faults is a deterministic fault-injection harness for crash and
// failure testing. Production code declares named injection points by
// calling Fire at the places where reality can go wrong — a journal append,
// an fsync, a pipeline stage — and tests (or the hidden confmaskd -fault
// flag) arm those points to panic, return an error, delay, or drop the
// guarded operation.
//
// The design goals, in order:
//
//  1. Zero cost when nothing is armed: Fire is one atomic load.
//  2. Determinism: a fault fires on exact hit counts, never on timers or
//     randomness, so a chaos test that passes once passes always.
//  3. Greppability: every injection point is a dotted literal string at its
//     Fire call site ("service.journal.append", "worker.run", ...), so the
//     full catalogue is one grep away.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed injection point does when it fires.
type Mode int

const (
	// ModeError makes Fire return an error.
	ModeError Mode = iota
	// ModePanic makes Fire panic.
	ModePanic
	// ModeDelay makes Fire sleep for Injection.Delay, then return nil.
	ModeDelay
	// ModeDrop makes Fire return ErrDropped: the caller must skip the
	// guarded operation (e.g. skip an fsync) but otherwise proceed.
	ModeDrop
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeDrop:
		return "drop"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrDropped is returned by Fire at a point armed with ModeDrop. Callers
// that guard a skippable side effect (an fsync, a cache write) check for it
// with errors.Is and skip the effect.
var ErrDropped = fmt.Errorf("faults: operation dropped")

// Injection describes what happens at an armed point.
type Injection struct {
	// Mode selects the failure behavior.
	Mode Mode
	// Message annotates the injected panic or error; a default naming the
	// point is used when empty.
	Message string
	// Delay is the sleep duration for ModeDelay.
	Delay time.Duration
	// On, when > 0, fires only on the On-th hit of the point (1-based) and
	// disarms afterwards — "drop the process's NEXT fsync" is On: 1. When
	// 0 the point fires on every hit.
	On int
}

// armed is one registered injection with its hit counter.
type armed struct {
	inj  Injection
	hits int
}

var (
	// enabled is the fast-path gate: false ⇒ Fire returns nil immediately.
	enabled atomic.Bool

	mu     sync.Mutex
	points map[string]*armed
	// counts records every Fire call per point while any point is armed;
	// tests use it to assert a code path actually passed an injection site.
	counts map[string]int
)

// Arm registers an injection at the named point, replacing any previous one.
func Arm(point string, inj Injection) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*armed)
		counts = make(map[string]int)
	}
	points[point] = &armed{inj: inj}
	enabled.Store(true)
}

// Disarm removes the injection at the named point.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, point)
	if len(points) == 0 {
		enabled.Store(false)
	}
}

// Reset disarms every point and clears the hit counters. Tests that Arm
// must defer a Reset.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	counts = nil
	enabled.Store(false)
}

// Hits reports how many times Fire has been called for the point since the
// last Reset, counting only calls made while some point was armed.
func Hits(point string) int {
	mu.Lock()
	defer mu.Unlock()
	return counts[point]
}

// Fire consults the registry for the named point. It returns nil when the
// point is not armed (the overwhelmingly common case: one atomic load). An
// armed point panics, sleeps, or returns an error according to its
// Injection; ErrDropped signals the caller to skip the guarded operation.
func Fire(point string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	if counts != nil {
		counts[point]++
	}
	a, ok := points[point]
	if !ok {
		mu.Unlock()
		return nil
	}
	a.hits++
	if a.inj.On > 0 {
		if a.hits != a.inj.On {
			mu.Unlock()
			return nil
		}
		// One-shot: disarm so the retry path sees a healthy point.
		delete(points, point)
		if len(points) == 0 {
			enabled.Store(false)
		}
	}
	inj := a.inj
	mu.Unlock()

	msg := inj.Message
	if msg == "" {
		msg = "injected fault at " + point
	}
	switch inj.Mode {
	case ModePanic:
		panic("faults: " + msg)
	case ModeDelay:
		time.Sleep(inj.Delay)
		return nil
	case ModeDrop:
		return fmt.Errorf("%w (%s)", ErrDropped, point)
	default:
		return fmt.Errorf("faults: %s", msg)
	}
}

// Armed lists the currently armed points in sorted order.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for p := range points {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ArmSpec parses and arms a comma-separated fault specification, the format
// of confmaskd's hidden -fault flag:
//
//	point=mode[:param][@n][,point=mode...]
//
// where mode is panic, error, delay, or drop; param is the message (panic,
// error) or a duration (delay); and @n restricts the fault to the n-th hit
// of the point (one-shot). Examples:
//
//	worker.run=panic:boom@1
//	service.journal.sync=drop@2,anonymize.stage.equivalence=delay:200ms
func ArmSpec(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, rest, ok := strings.Cut(part, "=")
		if !ok || point == "" {
			return fmt.Errorf("faults: bad spec %q (want point=mode[:param][@n])", part)
		}
		var inj Injection
		if at := strings.LastIndex(rest, "@"); at >= 0 {
			n, err := strconv.Atoi(rest[at+1:])
			if err != nil || n < 1 {
				return fmt.Errorf("faults: bad hit count in %q", part)
			}
			inj.On = n
			rest = rest[:at]
		}
		mode, param, _ := strings.Cut(rest, ":")
		switch mode {
		case "panic":
			inj.Mode = ModePanic
			inj.Message = param
		case "error":
			inj.Mode = ModeError
			inj.Message = param
		case "delay":
			inj.Mode = ModeDelay
			d, err := time.ParseDuration(param)
			if err != nil {
				return fmt.Errorf("faults: bad delay in %q: %v", part, err)
			}
			inj.Delay = d
		case "drop":
			inj.Mode = ModeDrop
		default:
			return fmt.Errorf("faults: unknown mode %q in %q", mode, part)
		}
		Arm(point, inj)
	}
	return nil
}
