package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestUnarmedFireIsNil(t *testing.T) {
	defer Reset()
	if err := Fire("nothing.armed.here"); err != nil {
		t.Fatalf("unarmed Fire = %v", err)
	}
}

func TestErrorAndDropModes(t *testing.T) {
	defer Reset()
	Arm("p.err", Injection{Mode: ModeError, Message: "boom"})
	err := Fire("p.err")
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error mode: %v", err)
	}
	Arm("p.drop", Injection{Mode: ModeDrop})
	if err := Fire("p.drop"); !errors.Is(err, ErrDropped) {
		t.Fatalf("drop mode: %v", err)
	}
	// An armed point keeps firing when On is unset.
	if err := Fire("p.err"); err == nil {
		t.Fatal("second hit did not fire")
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	Arm("p.panic", Injection{Mode: ModePanic})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "p.panic") {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = Fire("p.panic")
	t.Fatal("unreachable")
}

func TestOneShotOnNthHit(t *testing.T) {
	defer Reset()
	Arm("p.nth", Injection{Mode: ModeError, On: 3})
	for i := 1; i <= 2; i++ {
		if err := Fire("p.nth"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Fire("p.nth"); err == nil {
		t.Fatal("third hit did not fire")
	}
	// One-shot: disarmed afterwards (and with no point left armed the
	// fast path stops counting, so Hits stays at 3).
	if err := Fire("p.nth"); err != nil {
		t.Fatalf("fired after one-shot: %v", err)
	}
	if got := Hits("p.nth"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestDelayMode(t *testing.T) {
	defer Reset()
	Arm("p.delay", Injection{Mode: ModeDelay, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Fire("p.delay"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay too short: %v", d)
	}
}

func TestArmSpec(t *testing.T) {
	defer Reset()
	err := ArmSpec("a.b=panic:oops@2, c.d=delay:50ms ,e.f=drop,g.h=error")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a.b", "c.d", "e.f", "g.h"}
	got := Armed()
	if len(got) != len(want) {
		t.Fatalf("Armed() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Armed() = %v, want %v", got, want)
		}
	}
	if err := Fire("a.b"); err != nil {
		t.Fatalf("a.b first hit: %v", err)
	}
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), "oops") {
				t.Errorf("a.b second hit recover = %v", r)
			}
		}()
		_ = Fire("a.b")
	}()
	if !errors.Is(Fire("e.f"), ErrDropped) {
		t.Fatal("e.f did not drop")
	}

	for _, bad := range []string{"nomode", "p=wat", "p=delay:xx", "p=panic@0", "=panic"} {
		if err := ArmSpec(bad); err == nil {
			t.Fatalf("ArmSpec(%q) accepted", bad)
		}
	}
}
