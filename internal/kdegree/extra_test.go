package kdegree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"confmask/internal/topology"
)

// TestAnonymizeScaleFreeGraphs stresses the realizer on preferential-
// attachment-style graphs — the degree-skewed shape of real carrier
// topologies and the hardest case for small k (hub classes are tiny).
func TestAnonymizeScaleFreeGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(60)
		g := topology.New()
		names := make([]string, n)
		degs := make([]int, n)
		for i := 0; i < n; i++ {
			names[i] = nodeName(i)
			g.AddNode(names[i], topology.Router)
		}
		// Preferential attachment: connect each new node to existing
		// nodes weighted by degree.
		total := 0
		_ = g.AddEdge(names[0], names[1])
		degs[0], degs[1] = 1, 1
		total = 2
		for i := 2; i < n; i++ {
			m := 1 + rng.Intn(2)
			for j := 0; j < m; j++ {
				pick := rng.Intn(total + i) // +i gives every node base weight
				target := 0
				acc := 0
				for x := 0; x < i; x++ {
					acc += degs[x] + 1
					if pick < acc {
						target = x
						break
					}
				}
				if err := g.AddEdge(names[i], names[target]); err == nil {
					degs[i]++
					degs[target]++
					total += 2
				}
			}
		}
		for _, k := range []int{2, 3, 5} {
			gc := g.Clone()
			if _, err := Anonymize(gc, k, rng); err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if kd := gc.MinSameDegreeCount(); kd < k {
				t.Fatalf("trial %d: k_d=%d < %d", trial, kd, k)
			}
			// Supergraph property.
			for _, e := range g.Edges() {
				if !gc.HasEdge(e.A, e.B) {
					t.Fatalf("trial %d: lost edge %v", trial, e)
				}
			}
		}
	}
}

// Property: the DP's total increment equals the sum of per-element
// increases and is minimal among contiguous groupings for small inputs
// (brute-force cross-check).
func TestAnonymousTargetsOptimalSmall(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		degs := make([]int, len(raw))
		for i, v := range raw {
			degs[i] = int(v % 8)
		}
		k := 2
		got := AnonymousTargets(degs, k)
		cost := 0
		for i := range degs {
			cost += got[i] - degs[i]
		}
		best := bruteForceCost(degs, k)
		return cost == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceCost enumerates all contiguous groupings of the sorted-desc
// sequence with group sizes ≥ k and returns the minimum raise cost.
func bruteForceCost(degs []int, k int) int {
	d := append([]int(nil), degs...)
	// sort desc
	for i := 0; i < len(d); i++ {
		for j := i + 1; j < len(d); j++ {
			if d[j] > d[i] {
				d[i], d[j] = d[j], d[i]
			}
		}
	}
	n := len(d)
	if n < k {
		// One group raised to max.
		c := 0
		for _, v := range d {
			c += d[0] - v
		}
		return c
	}
	const inf = int(^uint(0) >> 1)
	memo := make([]int, n+1)
	for i := range memo {
		memo[i] = -1
	}
	var solve func(start int) int
	solve = func(start int) int {
		if start == n {
			return 0
		}
		if n-start < k {
			return inf
		}
		if memo[start] >= 0 {
			return memo[start]
		}
		best := inf
		for end := start + k; end <= n; end++ {
			rest := solve(end)
			if rest == inf {
				continue
			}
			c := 0
			for t := start; t < end; t++ {
				c += d[start] - d[t]
			}
			if c+rest < best {
				best = c + rest
			}
		}
		memo[start] = best
		return best
	}
	return solve(0)
}
