// Package kdegree implements k-degree graph anonymization in the style of
// Liu & Terzi (SIGMOD 2008), restricted to the edge-addition-only variant
// ConfMask requires: the anonymized graph is a supergraph of the original,
// so every original router and link survives (the topology-preservation
// half of functional equivalence), and after anonymization every router
// degree is shared by at least k routers (Definition 3.1 of the paper).
//
// The degree-sequence step is the exact O(n·k) dynamic program of
// Liu–Terzi; because degrees may only grow, each group of the sorted
// sequence is raised to the group's maximum, which also preserves the
// graph's highest degree (a property the paper calls out in §4.2).
// Realization greedily pairs residual demand, and — because not every
// k-anonymous sequence is realizable as a supergraph — the whole procedure
// iterates on the updated degree sequence until the anonymity definition
// holds, forcing progress when the greedy step stalls. Termination is
// guaranteed: degrees only grow and the complete graph is k-anonymous for
// any k ≤ n.
package kdegree

import (
	"fmt"
	"math/rand"
	"sort"

	"confmask/internal/topology"
)

// Result reports what Anonymize did.
type Result struct {
	// Added lists the fake router-to-router edges, in insertion order.
	Added []topology.Edge
	// Iterations counts sequence-anonymization rounds.
	Iterations int
}

// Anonymize adds router-to-router edges to g in place until the router
// degree sequence is k-anonymous. Host nodes and host links are ignored
// (ConfMask anonymizes the router graph; fake hosts are a later stage).
// The rng drives tie-breaking between equally good partners so repeated
// runs with different seeds yield different fake topologies.
func Anonymize(g *topology.Graph, k int, rng *rand.Rand) (*Result, error) {
	return AnonymizeOffsets(g, k, nil, rng)
}

// AnonymizeOffsets is Anonymize over *effective* degrees: router r counts
// as having degree RouterDegree(r) + offsets[r]. A nil offsets map is the
// plain algorithm. The partition-parallel path (see partition.go) hands
// each partition its induced subgraph plus the fixed cross-partition
// degree of every member as offsets, so a partition anonymizes the
// routers' true global degrees while only ever adding intra-partition
// edges.
func AnonymizeOffsets(g *topology.Graph, k int, offsets map[string]int, rng *rand.Rand) (*Result, error) {
	routers := g.NodesOf(topology.Router)
	n := len(routers)
	if k <= 1 {
		return &Result{}, nil
	}
	if k > n {
		return nil, fmt.Errorf("kdegree: k=%d exceeds the %d routers available", k, n)
	}

	res := &Result{}
	// Every round either finishes or adds at least one edge, and the
	// complete graph (bounded by n(n−1)/2 additions) is k-anonymous for
	// any k ≤ n, so this bound guarantees termination. (With offsets the
	// complete graph need not be k-anonymous — a partition whose members
	// have irreconcilable external degrees exhausts the bound and returns
	// the error below; AnonymizeParallel falls back to the global pass.)
	maxRounds := n*(n-1)/2 + 2
	for round := 0; round < maxRounds; round++ {
		if minSameDegreeCount(g, routers, offsets) >= k {
			res.Iterations = round
			return res, nil
		}
		degs := make([]int, n)
		for i, r := range routers {
			degs[i] = g.RouterDegree(r) + offsets[r]
		}
		targets := AnonymousTargets(degs, k)
		added := realize(g, routers, targets, offsets, rng, res)
		if minSameDegreeCount(g, routers, offsets) >= k {
			res.Iterations = round + 1
			return res, nil
		}
		if added == 0 {
			// The greedy step stalled (e.g. all residual pairs already
			// adjacent). Force progress by joining the two lowest-degree
			// non-adjacent routers; the next round re-plans on the new
			// sequence.
			if !forceEdge(g, routers, offsets, res) {
				// Complete graph: without offsets every degree equals n-1,
				// which is k-anonymous for all k ≤ n, so this is
				// unreachable — defensive only. With offsets it is the
				// irreconcilable-partition exit.
				break
			}
		}
	}
	if minSameDegreeCount(g, routers, offsets) >= k {
		return res, nil
	}
	return nil, fmt.Errorf("kdegree: failed to reach %d-degree anonymity", k)
}

// minSameDegreeCount is Graph.MinSameDegreeCount over effective degrees.
func minSameDegreeCount(g *topology.Graph, routers []string, offsets map[string]int) int {
	if len(routers) == 0 {
		return 0
	}
	counts := make(map[int]int)
	for _, r := range routers {
		counts[g.RouterDegree(r)+offsets[r]]++
	}
	min := len(routers)
	for _, c := range counts {
		if c < min {
			min = c
		}
	}
	return min
}

// AnonymousTargets computes, for an arbitrary-order degree slice, the
// cheapest element-wise-≥ k-anonymous degree sequence using the Liu–Terzi
// dynamic program, returning targets aligned with the input order.
func AnonymousTargets(degs []int, k int) []int {
	n := len(degs)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	if k > n {
		k = n
	}
	// Sort descending, remembering positions.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return degs[idx[a]] > degs[idx[b]] })
	d := make([]int, n)
	for i, j := range idx {
		d[i] = degs[j]
	}

	// cost(i,j): raise d[i..j] (inclusive) to d[i].
	prefix := make([]int, n+1)
	for i, v := range d {
		prefix[i+1] = prefix[i] + v
	}
	cost := func(i, j int) int {
		return (j-i+1)*d[i] - (prefix[j+1] - prefix[i])
	}

	const inf = int(^uint(0) >> 1)
	da := make([]int, n)  // da[j]: min cost anonymizing d[0..j]
	cut := make([]int, n) // cut[j]: start of the last group
	for j := 0; j < n; j++ {
		da[j] = inf
		if j+1 < k {
			continue
		}
		if j+1 < 2*k {
			da[j] = cost(0, j)
			cut[j] = 0
			continue
		}
		// Last group starts at t+1 with size in [k, 2k-1].
		for t := j - 2*k + 1; t <= j-k; t++ {
			if t < 0 || da[t] == inf {
				continue
			}
			c := da[t] + cost(t+1, j)
			if c < da[j] {
				da[j] = c
				cut[j] = t + 1
			}
		}
		// Also allow a single group covering everything so far.
		if c := cost(0, j); c < da[j] {
			da[j] = c
			cut[j] = 0
		}
	}

	// Walk the cuts back and assign group maxima.
	tgt := make([]int, n)
	j := n - 1
	for j >= 0 {
		start := cut[j]
		for t := start; t <= j; t++ {
			tgt[t] = d[start]
		}
		j = start - 1
	}
	for i, orig := range idx {
		out[orig] = tgt[i]
	}
	return out
}

// realize greedily adds edges between routers with positive residual
// demand, never duplicating an edge. Returns the number of edges added.
func realize(g *topology.Graph, routers []string, targets []int, offsets map[string]int, rng *rand.Rand, res *Result) int {
	residual := make(map[string]int, len(routers))
	for i, r := range routers {
		residual[r] = targets[i] - g.RouterDegree(r) - offsets[r]
	}
	added := 0
	for {
		u := pickMaxResidual(routers, residual, "", g, rng)
		if u == "" {
			return added
		}
		w := pickMaxResidual(routers, residual, u, g, rng)
		if w == "" {
			// u has demand but no residual-positive partner — the
			// lone-residual case (e.g. a unique hub whose class must be
			// joined by exactly one other node, k=2). Borrow a
			// zero-residual partner with the lowest degree: its class
			// shift is re-planned by the outer loop, and preferring low
			// degrees keeps the graph's maximum degree untouched.
			w = pickLowestDegreePartner(routers, u, g, offsets)
			if w == "" {
				residual[u] = 0 // adjacent to everyone; give up on u
				continue
			}
		}
		if err := g.AddEdge(u, w); err != nil {
			residual[u] = 0
			continue
		}
		res.Added = append(res.Added, topology.CanonEdge(u, w))
		residual[u]--
		residual[w]--
		added++
	}
}

// pickLowestDegreePartner returns the non-adjacent router with the lowest
// effective degree (ties broken by name), or "" when u is adjacent to all.
func pickLowestDegreePartner(routers []string, u string, g *topology.Graph, offsets map[string]int) string {
	best := ""
	bestDeg := -1
	for _, r := range routers {
		if r == u || g.HasEdge(u, r) {
			continue
		}
		d := g.RouterDegree(r) + offsets[r]
		if best == "" || d < bestDeg || (d == bestDeg && r < best) {
			best = r
			bestDeg = d
		}
	}
	return best
}

// pickMaxResidual returns a router with the highest positive residual that
// is not `exclude` and (when exclude is set) not adjacent to it; ties are
// broken uniformly at random. Empty string means no candidate.
func pickMaxResidual(routers []string, residual map[string]int, exclude string, g *topology.Graph, rng *rand.Rand) string {
	best := 0
	var cands []string
	for _, r := range routers {
		if r == exclude || residual[r] <= 0 {
			continue
		}
		if exclude != "" && g.HasEdge(exclude, r) {
			continue
		}
		switch {
		case residual[r] > best:
			best = residual[r]
			cands = cands[:0]
			cands = append(cands, r)
		case residual[r] == best:
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	if rng == nil {
		return cands[0]
	}
	return cands[rng.Intn(len(cands))]
}

// forceEdge joins the two lowest-effective-degree non-adjacent routers;
// false when the router graph is complete.
func forceEdge(g *topology.Graph, routers []string, offsets map[string]int, res *Result) bool {
	byDeg := append([]string(nil), routers...)
	sort.Slice(byDeg, func(i, j int) bool {
		di, dj := g.RouterDegree(byDeg[i])+offsets[byDeg[i]], g.RouterDegree(byDeg[j])+offsets[byDeg[j]]
		if di != dj {
			return di < dj
		}
		return byDeg[i] < byDeg[j]
	})
	for i := 0; i < len(byDeg); i++ {
		for j := i + 1; j < len(byDeg); j++ {
			if !g.HasEdge(byDeg[i], byDeg[j]) {
				if err := g.AddEdge(byDeg[i], byDeg[j]); err == nil {
					res.Added = append(res.Added, topology.CanonEdge(byDeg[i], byDeg[j]))
					return true
				}
			}
		}
	}
	return false
}
