package kdegree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"confmask/internal/topology"
)

func starGraph(leaves int) *topology.Graph {
	g := topology.New()
	g.AddNode("hub", topology.Router)
	for i := 0; i < leaves; i++ {
		name := "leaf" + string(rune('a'+i))
		g.AddNode(name, topology.Router)
		_ = g.AddEdge("hub", name)
	}
	return g
}

func TestAnonymousTargetsSimple(t *testing.T) {
	got := AnonymousTargets([]int{5, 3, 3, 1}, 2)
	// Sorted desc: 5 3 3 1 → groups {5,3},{3,1} cost 2+2=4, or {5,3,3,1}
	// cost 0+2+2+4=8, or {5,3,3},{?} infeasible (last group size 1).
	want := []int{5, 5, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("targets = %v, want %v", got, want)
		}
	}
}

func TestAnonymousTargetsSingleGroup(t *testing.T) {
	got := AnonymousTargets([]int{4, 2, 1}, 3)
	for _, v := range got {
		if v != 4 {
			t.Fatalf("targets = %v, want all 4", got)
		}
	}
}

func TestAnonymousTargetsEmptyAndDegenerate(t *testing.T) {
	if got := AnonymousTargets(nil, 3); len(got) != 0 {
		t.Fatalf("empty input → %v", got)
	}
	got := AnonymousTargets([]int{7}, 5)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("singleton → %v", got)
	}
}

// Property: targets are element-wise ≥ input, the multiset of target values
// is k-anonymous, and the maximum degree never grows.
func TestAnonymousTargetsProperties(t *testing.T) {
	f := func(raw []uint8, kk uint8) bool {
		if len(raw) == 0 {
			return true
		}
		degs := make([]int, len(raw))
		maxIn := 0
		for i, v := range raw {
			degs[i] = int(v % 16)
			if degs[i] > maxIn {
				maxIn = degs[i]
			}
		}
		k := int(kk%5) + 1
		got := AnonymousTargets(degs, k)
		counts := map[int]int{}
		maxOut := 0
		for i, v := range got {
			if v < degs[i] {
				return false // must only increase
			}
			if v > maxOut {
				maxOut = v
			}
			counts[v]++
		}
		if maxOut != maxIn {
			return false // highest degree must be preserved
		}
		keff := k
		if keff > len(degs) {
			keff = len(degs)
		}
		for _, c := range counts {
			if c < keff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymizeStar(t *testing.T) {
	// Star: hub degree 5, leaves degree 1 → already 1-anonymous but the
	// hub is unique, so k=2 requires work.
	g := starGraph(5)
	orig := g.Clone()
	res, err := Anonymize(g, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if got := g.MinSameDegreeCount(); got < 2 {
		t.Fatalf("k_d = %d after anonymization", got)
	}
	// Supergraph property: every original edge must survive.
	for _, e := range orig.Edges() {
		if !g.HasEdge(e.A, e.B) {
			t.Fatalf("original edge %v removed", e)
		}
	}
	// Added edges must be reported exactly.
	diff := topology.DiffEdges(orig, g)
	if len(diff) != len(res.Added) {
		t.Fatalf("reported %d added edges, graph gained %d", len(res.Added), len(diff))
	}
}

func TestAnonymizeAlreadyAnonymous(t *testing.T) {
	// A 4-cycle is 4-anonymous (all degrees 2).
	g := topology.New()
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		g.AddNode(n, topology.Router)
	}
	_ = g.AddEdge("a", "b")
	_ = g.AddEdge("b", "c")
	_ = g.AddEdge("c", "d")
	_ = g.AddEdge("d", "a")
	res, err := Anonymize(g, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 0 {
		t.Fatalf("added %v to an already-anonymous graph", res.Added)
	}
}

func TestAnonymizeKTooLarge(t *testing.T) {
	g := starGraph(2)
	if _, err := Anonymize(g, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for k > #routers")
	}
}

func TestAnonymizeKOne(t *testing.T) {
	g := starGraph(3)
	res, err := Anonymize(g, 1, nil)
	if err != nil || len(res.Added) != 0 {
		t.Fatalf("k=1 should be a no-op, got %v, %v", res, err)
	}
}

func TestAnonymizeIgnoresHosts(t *testing.T) {
	g := starGraph(4)
	g.AddNode("h1", topology.Host)
	_ = g.AddEdge("h1", "hub")
	_, err := Anonymize(g, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Neighbors("h1") {
		if n != "hub" {
			t.Fatalf("host gained fake edge to %s", n)
		}
	}
}

// Property: anonymization succeeds on random graphs and yields
// k-anonymity with only added edges.
func TestAnonymizeRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(20)
		g := topology.New()
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = nodeName(i)
			g.AddNode(names[i], topology.Router)
		}
		// Random connected-ish graph.
		for i := 1; i < n; i++ {
			_ = g.AddEdge(names[i], names[rng.Intn(i)])
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				_ = g.AddEdge(names[a], names[b])
			}
		}
		orig := g.Clone()
		k := 2 + rng.Intn(4)
		if k > n {
			k = n
		}
		if _, err := Anonymize(g, k, rng); err != nil {
			t.Fatalf("trial %d (n=%d,k=%d): %v", trial, n, k, err)
		}
		if got := g.MinSameDegreeCount(); got < k {
			t.Fatalf("trial %d: k_d=%d < k=%d", trial, got, k)
		}
		for _, e := range orig.Edges() {
			if !g.HasEdge(e.A, e.B) {
				t.Fatalf("trial %d: edge %v lost", trial, e)
			}
		}
	}
}

func TestAnonymizeDeterministicUnderSeed(t *testing.T) {
	build := func() *topology.Graph { return starGraph(6) }
	g1, g2 := build(), build()
	r1, _ := Anonymize(g1, 3, rand.New(rand.NewSource(99)))
	r2, _ := Anonymize(g2, 3, rand.New(rand.NewSource(99)))
	if len(r1.Added) != len(r2.Added) {
		t.Fatalf("nondeterministic: %v vs %v", r1.Added, r2.Added)
	}
	for i := range r1.Added {
		if r1.Added[i] != r2.Added[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, r1.Added[i], r2.Added[i])
		}
	}
}

// TestAnonymizeUniqueHubK2 is the lone-residual regression: a graph with a
// unique high-degree hub whose class must gain exactly one member. The
// greedy realizer has no residual partner for the node being raised and
// must borrow a zero-residual one.
func TestAnonymizeUniqueHubK2(t *testing.T) {
	g := topology.New()
	n := 40
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = nodeName(i)
		g.AddNode(names[i], topology.Router)
	}
	// Ring + a hub connected to half the nodes.
	for i := 0; i < n; i++ {
		_ = g.AddEdge(names[i], names[(i+1)%n])
	}
	for i := 2; i < n/2; i += 1 {
		_ = g.AddEdge(names[0], names[i])
	}
	if g.MinSameDegreeCount() >= 2 {
		t.Skip("construction did not produce a unique class")
	}
	if _, err := Anonymize(g, 2, rand.New(rand.NewSource(4))); err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if kd := g.MinSameDegreeCount(); kd < 2 {
		t.Fatalf("k_d = %d", kd)
	}
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestTargetsSortedInputsAgree(t *testing.T) {
	// The DP must be order-independent: shuffling the input permutes the
	// output identically.
	degs := []int{9, 1, 4, 4, 2, 7, 7, 3}
	k := 3
	base := AnonymousTargets(degs, k)
	perm := []int{3, 0, 7, 5, 1, 6, 2, 4}
	shuffled := make([]int, len(degs))
	for i, p := range perm {
		shuffled[i] = degs[p]
	}
	got := AnonymousTargets(shuffled, k)
	want := make([]int, len(degs))
	for i, p := range perm {
		want[i] = base[p]
	}
	// Same multiset mapping: sorted views must agree, and each position's
	// target must be ≥ its degree.
	sortedGot := append([]int(nil), got...)
	sortedWant := append([]int(nil), want...)
	sort.Ints(sortedGot)
	sort.Ints(sortedWant)
	for i := range sortedGot {
		if sortedGot[i] != sortedWant[i] {
			t.Fatalf("permutation changed target multiset: %v vs %v", got, want)
		}
	}
}
