package kdegree

import (
	"math/rand"
	"sort"
	"sync"

	"confmask/internal/topology"
)

// This file is the partition-parallel variant of k-degree anonymization.
// Structured networks at scale — fat-tree pods, carrier regions — consist
// of many similar components joined through a small set of high-degree
// hubs (cores, gateway POPs). Partition exploits that: removing the hubs
// splits the router graph into independent components, the hubs form a
// partition of their own, and each partition can be anonymized
// concurrently because:
//
//   - Every partition anonymizes its members' true global degrees: the
//     induced subgraph plus a fixed per-router offset for edges that
//     leave the partition (AnonymizeOffsets). Intra-partition edge
//     additions never change a degree outside the partition, so the
//     offsets stay valid for the whole run.
//   - A degree multiset that is k-anonymous within every partition is
//     k-anonymous globally: any degree value present anywhere appears at
//     least k times inside whichever partition contributed it.
//
// Each partition draws from its own seeded RNG; the seeds come from the
// caller's RNG in deterministic partition order before any worker starts,
// and results are merged back in partition order — so the output is
// byte-identical at any worker count, the invariant every pipeline test
// pins. A cross-partition fixup pass re-checks the global definition and
// falls back to the sequential global algorithm in the (defensive) cases
// where per-partition anonymization cannot close the gap.

// hubFactor marks a router as a hub when its degree is at least this
// multiple of the average router degree.
const hubFactor = 3

// Partition splits g's routers into disjoint sets for independent
// anonymization: hub routers (degree ≥ hubFactor × average) form one set,
// each connected component left after hub removal forms another, and sets
// smaller than minSize are folded together (smallest-first) so every
// partition can host a k-anonymous degree class of size minSize. Returns
// nil when the structure yields no useful decomposition (no hubs, a
// single component, or everything collapses back into one set) — the
// caller should use the global algorithm.
func Partition(g *topology.Graph, minSize int) [][]string {
	routers := g.NodesOf(topology.Router)
	n := len(routers)
	if n == 0 {
		return nil
	}
	total := 0
	deg := make(map[string]int, n)
	for _, r := range routers {
		deg[r] = g.RouterDegree(r)
		total += deg[r]
	}
	avg := float64(total) / float64(n)
	hub := make(map[string]bool)
	var hubs []string
	for _, r := range routers {
		if float64(deg[r]) >= hubFactor*avg && deg[r] > 0 {
			hub[r] = true
			hubs = append(hubs, r)
		}
	}
	if len(hubs) == 0 {
		return nil
	}

	// Connected components of the non-hub region (BFS in sorted order for
	// determinism).
	visited := make(map[string]bool, n)
	var parts [][]string
	for _, root := range routers {
		if hub[root] || visited[root] {
			continue
		}
		comp := []string{root}
		visited[root] = true
		for i := 0; i < len(comp); i++ {
			for _, nb := range g.Neighbors(comp[i]) {
				if hub[nb] || visited[nb] || g.KindOf(nb) != topology.Router {
					continue
				}
				visited[nb] = true
				comp = append(comp, nb)
			}
		}
		sort.Strings(comp)
		parts = append(parts, comp)
	}
	if len(parts) < 2 {
		return nil
	}
	parts = append(parts, hubs)

	// Fold undersized partitions together, smallest-first (ties by first
	// member name), until every partition can host a degree class of
	// minSize members. Fake edges may join any router pair, so merged
	// partitions need not be adjacent.
	for {
		sort.Slice(parts, func(i, j int) bool {
			if len(parts[i]) != len(parts[j]) {
				return len(parts[i]) < len(parts[j])
			}
			return parts[i][0] < parts[j][0]
		})
		if len(parts) < 2 || len(parts[0]) >= minSize {
			break
		}
		merged := append(parts[0], parts[1]...)
		sort.Strings(merged)
		parts = append([][]string{merged}, parts[2:]...)
	}
	if len(parts) < 2 {
		return nil
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i][0] < parts[j][0] })
	return parts
}

// AnonymizeParallel is Anonymize decomposed over Partition: independent
// partitions anonymize concurrently on up to `workers` goroutines
// (workers ≤ 1 runs them sequentially — the result is identical either
// way). It falls back to the plain global algorithm when the graph does
// not decompose or a partition proves irreconcilable.
func AnonymizeParallel(g *topology.Graph, k int, workers int, rng *rand.Rand) (*Result, error) {
	parts := Partition(g, k)
	if parts == nil {
		return Anonymize(g, k, rng)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(parts) {
		workers = len(parts)
	}

	// Sub-seeds are drawn sequentially from the caller's RNG in partition
	// order, before any concurrency starts: the main RNG stream advances
	// by exactly len(parts) draws regardless of worker count, which keeps
	// checkpoint fast-forward and the byte-identical-output invariant
	// intact.
	seeds := make([]int64, len(parts))
	for i := range parts {
		seeds[i] = rng.Int63()
	}

	type partResult struct {
		res *Result
		err error
	}
	results := make([]partResult, len(parts))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(parts) {
					return
				}
				sub, offsets := inducedWithOffsets(g, parts[i])
				res, err := AnonymizeOffsets(sub, k, offsets, rand.New(rand.NewSource(seeds[i])))
				results[i] = partResult{res: res, err: err}
			}
		}()
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			// Irreconcilable partition (e.g. hubs whose external degrees
			// cannot be equalized with intra-partition edges): the global
			// algorithm still terminates, so use it on the untouched
			// graph. The decision depends only on the input, so output
			// determinism is preserved.
			return Anonymize(g, k, rng)
		}
	}

	// Deterministic merge in partition order.
	out := &Result{}
	for _, r := range results {
		for _, e := range r.res.Added {
			if err := g.AddEdge(e.A, e.B); err != nil {
				return nil, err
			}
			out.Added = append(out.Added, e)
		}
		if r.res.Iterations > out.Iterations {
			out.Iterations = r.res.Iterations
		}
	}

	// Cross-partition fixup: per-partition k-anonymity over effective
	// degrees implies the global definition, so this pass is normally a
	// no-op — it exists to catch the implication's preconditions being
	// violated (defensively) and to repair with the exact global
	// algorithm rather than fail.
	if g.MinSameDegreeCount() < k {
		fix, err := Anonymize(g, k, rng)
		if err != nil {
			return nil, err
		}
		out.Added = append(out.Added, fix.Added...)
		out.Iterations += fix.Iterations
	}
	return out, nil
}

// inducedWithOffsets builds the subgraph induced by members plus each
// member's cross-partition router degree (its fixed external offset).
func inducedWithOffsets(g *topology.Graph, members []string) (*topology.Graph, map[string]int) {
	in := make(map[string]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	sub := topology.New()
	for _, m := range members {
		sub.AddNode(m, topology.Router)
	}
	offsets := make(map[string]int, len(members))
	for _, m := range members {
		ext := 0
		for _, nb := range g.Neighbors(m) {
			if g.KindOf(nb) != topology.Router {
				continue
			}
			if !in[nb] {
				ext++
				continue
			}
			if m < nb {
				_ = sub.AddEdge(m, nb)
			}
		}
		offsets[m] = ext
	}
	return sub, offsets
}
