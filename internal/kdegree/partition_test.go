package kdegree

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"confmask/internal/topology"
)

// hubPodGraph builds the structure Partition targets: `hubs` core routers
// in a ring, `pods` rings of `podSize` routers each, with every pod's
// gateway (member 0) uplinked to two hubs. Hub degree ends up well above
// 3× the average while gateways stay below it.
func hubPodGraph(hubs, pods, podSize int) *topology.Graph {
	g := topology.New()
	for h := 0; h < hubs; h++ {
		g.AddNode(fmt.Sprintf("hub%02d", h), topology.Router)
	}
	for h := 0; h < hubs; h++ {
		_ = g.AddEdge(fmt.Sprintf("hub%02d", h), fmt.Sprintf("hub%02d", (h+1)%hubs))
	}
	for p := 0; p < pods; p++ {
		for i := 0; i < podSize; i++ {
			g.AddNode(fmt.Sprintf("p%02d-%02d", p, i), topology.Router)
		}
		for i := 0; i < podSize; i++ {
			_ = g.AddEdge(fmt.Sprintf("p%02d-%02d", p, i), fmt.Sprintf("p%02d-%02d", p, (i+1)%podSize))
		}
		gw := fmt.Sprintf("p%02d-00", p)
		_ = g.AddEdge(gw, fmt.Sprintf("hub%02d", p%hubs))
		_ = g.AddEdge(gw, fmt.Sprintf("hub%02d", (p+1)%hubs))
	}
	return g
}

func TestPartitionStructure(t *testing.T) {
	g := hubPodGraph(4, 12, 12)
	parts := Partition(g, 2)
	if parts == nil {
		t.Fatal("expected a decomposition, got nil")
	}
	// Every router appears in exactly one partition.
	seen := make(map[string]int)
	for _, p := range parts {
		for _, r := range p {
			seen[r]++
		}
	}
	for _, r := range g.NodesOf(topology.Router) {
		if seen[r] != 1 {
			t.Fatalf("router %s appears %d times across partitions", r, seen[r])
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("partitions cover %d routers, graph has %d", len(seen), g.NumNodes())
	}
	// The four hubs form one partition; each pod ring forms another.
	if len(parts) != 13 {
		t.Fatalf("got %d partitions, want 13 (12 pods + hubs)", len(parts))
	}
	var hubPart []string
	for _, p := range parts {
		if p[0] == "hub00" {
			hubPart = p
		}
	}
	if want := []string{"hub00", "hub01", "hub02", "hub03"}; !reflect.DeepEqual(hubPart, want) {
		t.Fatalf("hub partition = %v, want %v", hubPart, want)
	}
	// Deterministic: same input, same output.
	if again := Partition(g, 2); !reflect.DeepEqual(parts, again) {
		t.Fatal("Partition is not deterministic")
	}
}

func TestPartitionNoDecomposition(t *testing.T) {
	// A plain ring has no hubs — every degree equals the average.
	ring := topology.New()
	for i := 0; i < 20; i++ {
		ring.AddNode(fmt.Sprintf("r%02d", i), topology.Router)
	}
	for i := 0; i < 20; i++ {
		_ = ring.AddEdge(fmt.Sprintf("r%02d", i), fmt.Sprintf("r%02d", (i+1)%20))
	}
	if parts := Partition(ring, 2); parts != nil {
		t.Fatalf("ring should not decompose, got %d partitions", len(parts))
	}
	// A star's singleton leaves fold back into one set when minSize
	// exceeds what any fold short of everything can reach, collapsing to
	// fewer than two partitions.
	if parts := Partition(starGraph(8), 9); parts != nil {
		t.Fatalf("star should collapse, got %v", parts)
	}
	if parts := Partition(topology.New(), 2); parts != nil {
		t.Fatalf("empty graph → %v", parts)
	}
}

func TestPartitionFoldsSmall(t *testing.T) {
	g := hubPodGraph(4, 12, 12)
	parts := Partition(g, 30)
	if parts == nil {
		t.Fatal("expected a decomposition, got nil")
	}
	for _, p := range parts[:len(parts)-1] {
		// All partitions except possibly the last must meet minSize; the
		// fold loop stops when the smallest does.
		if len(p) < 30 {
			t.Fatalf("partition of size %d below minSize 30: %v", len(p), p[:3])
		}
	}
}

func TestAnonymizeOffsets(t *testing.T) {
	// A 6-ring where one router carries two external (offset) edges:
	// effective degrees {4,2,2,2,2,2}. At k=2 the algorithm must raise
	// some other router to 4 without ever seeing the external edges.
	g := topology.New()
	for i := 0; i < 6; i++ {
		g.AddNode(fmt.Sprintf("r%d", i), topology.Router)
	}
	for i := 0; i < 6; i++ {
		_ = g.AddEdge(fmt.Sprintf("r%d", i), fmt.Sprintf("r%d", (i+1)%6))
	}
	offsets := map[string]int{"r0": 2}
	res, err := AnonymizeOffsets(g, 2, offsets, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("AnonymizeOffsets: %v", err)
	}
	routers := g.NodesOf(topology.Router)
	if got := minSameDegreeCount(g, routers, offsets); got < 2 {
		degs := make([]int, len(routers))
		for i, r := range routers {
			degs[i] = g.RouterDegree(r) + offsets[r]
		}
		t.Fatalf("effective degrees not 2-anonymous after realization: %v (added %v)", degs, res.Added)
	}
	if len(res.Added) == 0 {
		t.Fatal("expected fake edges to be added")
	}
}

func TestAnonymizeParallelMatchesSequentialWorkers(t *testing.T) {
	const k = 2
	base := hubPodGraph(4, 12, 12)
	var want *Result
	var wantEdges map[string]bool
	for _, workers := range []int{1, 4, 16} {
		g := base.Clone()
		res, err := AnonymizeParallel(g, k, workers, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := g.MinSameDegreeCount(); got < k {
			t.Fatalf("workers=%d: MinSameDegreeCount=%d, want ≥ %d", workers, got, k)
		}
		edges := make(map[string]bool, len(res.Added))
		for _, e := range res.Added {
			edges[e.A+"|"+e.B] = true
			if !g.HasEdge(e.A, e.B) {
				t.Fatalf("workers=%d: reported edge %v missing from graph", workers, e)
			}
		}
		if want == nil {
			want, wantEdges = res, edges
			continue
		}
		if !reflect.DeepEqual(res.Added, want.Added) {
			t.Fatalf("workers=%d: added edges differ from workers=1:\n%v\nvs\n%v", workers, res.Added, want.Added)
		}
		if !reflect.DeepEqual(edges, wantEdges) {
			t.Fatalf("workers=%d: edge sets differ", workers)
		}
	}
}

func TestAnonymizeParallelFallbackMatchesGlobal(t *testing.T) {
	// A ring does not decompose, so AnonymizeParallel must produce exactly
	// what Anonymize produces from the same seed.
	mk := func() *topology.Graph {
		g := topology.New()
		for i := 0; i < 20; i++ {
			g.AddNode(fmt.Sprintf("r%02d", i), topology.Router)
		}
		for i := 0; i < 20; i++ {
			_ = g.AddEdge(fmt.Sprintf("r%02d", i), fmt.Sprintf("r%02d", (i+1)%20))
		}
		// Perturb one degree so there is work to do.
		g.AddNode("stub", topology.Router)
		_ = g.AddEdge("r00", "stub")
		return g
	}
	g1, g2 := mk(), mk()
	seq, err := Anonymize(g1, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	par, err := AnonymizeParallel(g2, 3, 8, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Added, par.Added) {
		t.Fatalf("fallback differs from global:\n%v\nvs\n%v", seq.Added, par.Added)
	}
}

func TestInducedWithOffsets(t *testing.T) {
	g := hubPodGraph(4, 12, 12)
	sub, offsets := inducedWithOffsets(g, []string{"p00-00", "p00-01", "p00-02"})
	if sub.NumNodes() != 3 {
		t.Fatalf("induced subgraph has %d nodes, want 3", sub.NumNodes())
	}
	// p00-00 keeps its ring edge to p00-01 inside; its other ring edge
	// (to p00-11) and both hub uplinks become offsets.
	if !sub.HasEdge("p00-00", "p00-01") || !sub.HasEdge("p00-01", "p00-02") {
		t.Fatal("intra-member ring edges missing from induced subgraph")
	}
	if sub.HasEdge("p00-00", "p00-02") {
		t.Fatal("unexpected edge in induced subgraph")
	}
	want := map[string]int{"p00-00": 3, "p00-01": 0, "p00-02": 1}
	if !reflect.DeepEqual(offsets, want) {
		t.Fatalf("offsets = %v, want %v", offsets, want)
	}
	// Effective degrees in the subgraph must equal global degrees.
	for r, off := range offsets {
		if sub.RouterDegree(r)+off != g.RouterDegree(r) {
			t.Fatalf("%s: effective %d ≠ global %d", r, sub.RouterDegree(r)+off, g.RouterDegree(r))
		}
	}
}
