// Package metrics computes the evaluation metrics of the paper's §7:
// route anonymity N_r (distinct routing paths between edge-router pairs),
// route utility P_U (exactly-kept host-to-host paths — provided by
// internal/sim), topology anonymity k_d and clustering coefficient
// (provided by internal/topology), configuration utility U_C (provided by
// internal/config), and the Pearson correlation used in Fig. 15.
package metrics

import (
	"math"
	"sort"
	"strings"

	"confmask/internal/sim"
)

// RouteAnonymity summarizes N_r over edge-router pairs.
type RouteAnonymity struct {
	// Min and Avg are over ordered edge-router pairs with at least one
	// delivered path between attached hosts.
	Min int
	Avg float64
	// Pairs is the number of edge-router pairs measured.
	Pairs int
}

// ComputeRouteAnonymity counts, for every ordered pair of edge routers
// (routers with attached hosts), the number of distinct router-level paths
// observed between hosts behind them — the paper's N_r (Figs. 5, 10–12).
// The data plane should include fake hosts so that ConfMask's k_H twins
// contribute their diverging paths.
//
// Each host pair contributes one representative path — the canonical
// first of its ECMP set — matching the paper's measurement: a
// deterministic probe observes a single path per host connection, so the
// anonymity set per edge-router pair grows with the number of host
// connections whose observed paths differ (the fake twins whose routes
// ConfMask's noise filters diverted), not with the raw ECMP fan-out.
func ComputeRouteAnonymity(dp *sim.DataPlane, gatewayOf map[string]string) RouteAnonymity {
	distinct := make(map[[2]string]map[string]bool)
	for pair, paths := range dp.Pairs {
		gwS, okS := gatewayOf[pair.Src]
		gwD, okD := gatewayOf[pair.Dst]
		if !okS || !okD || gwS == gwD {
			continue
		}
		for _, p := range paths {
			if p.Status != sim.Delivered || len(p.Hops) < 3 {
				continue
			}
			key := [2]string{gwS, gwD}
			if distinct[key] == nil {
				distinct[key] = make(map[string]bool)
			}
			// Router-level path: strip the host endpoints.
			distinct[key][strings.Join(p.Hops[1:len(p.Hops)-1], ">")] = true
			break // canonical representative; Trace returns sorted paths
		}
	}
	out := RouteAnonymity{Min: -1}
	total := 0
	for _, set := range distinct {
		n := len(set)
		total += n
		if out.Min == -1 || n < out.Min {
			out.Min = n
		}
		out.Pairs++
	}
	if out.Pairs > 0 {
		out.Avg = float64(total) / float64(out.Pairs)
	}
	if out.Min == -1 {
		out.Min = 0
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples; it returns 0 when either sample is constant or the lengths
// mismatch.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// GatewaysWithFakes extends a gateway map with the fake twins' gateways:
// each fake host sits on the same ingress router as its real twin, but its
// own entry comes from the anonymized network view.
func GatewaysWithFakes(view *sim.Net) map[string]string {
	out := make(map[string]string, len(view.GatewayOf))
	for h, gw := range view.GatewayOf {
		out[h] = gw
	}
	return out
}

// Quantiles returns the q-quantiles (e.g. 0.5 for median) of a sample.
func Quantiles(sample []float64, qs ...float64) []float64 {
	if len(sample) == 0 {
		return make([]float64, len(qs))
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		pos := q * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		out[i] = s[lo]*(1-frac) + s[hi]*frac
	}
	return out
}
