package metrics

import (
	"math"
	"testing"

	"confmask/internal/sim"
)

func delivered(hops ...string) sim.Path {
	return sim.Path{Hops: hops, Status: sim.Delivered}
}

func TestComputeRouteAnonymityBasic(t *testing.T) {
	dp := &sim.DataPlane{Pairs: map[sim.Pair][]sim.Path{
		// Real host pair and its fake twin take different paths between
		// the same edge routers r1→r9.
		{Src: "h1", Dst: "h2"}:     {delivered("h1", "r1", "r5", "r9", "h2")},
		{Src: "h1", Dst: "h2-fk1"}: {delivered("h1", "r1", "r6", "r9", "h2-fk1")},
		// A pair on a single shared gateway is ignored.
		{Src: "h3", Dst: "h4"}: {delivered("h3", "r2", "h4")},
	}}
	gw := map[string]string{"h1": "r1", "h2": "r9", "h2-fk1": "r9", "h3": "r2", "h4": "r2"}
	got := ComputeRouteAnonymity(dp, gw)
	if got.Pairs != 1 {
		t.Fatalf("pairs = %d, want 1", got.Pairs)
	}
	if got.Min != 2 || got.Avg != 2 {
		t.Fatalf("N_r = min %d avg %v, want 2/2", got.Min, got.Avg)
	}
}

func TestComputeRouteAnonymityRepresentativePath(t *testing.T) {
	// One host pair with a large ECMP set must count as ONE observed
	// path, not len(ECMP) paths.
	dp := &sim.DataPlane{Pairs: map[sim.Pair][]sim.Path{
		{Src: "h1", Dst: "h2"}: {
			delivered("h1", "r1", "ra", "r9", "h2"),
			delivered("h1", "r1", "rb", "r9", "h2"),
			delivered("h1", "r1", "rc", "r9", "h2"),
		},
	}}
	gw := map[string]string{"h1": "r1", "h2": "r9"}
	got := ComputeRouteAnonymity(dp, gw)
	if got.Min != 1 || got.Avg != 1 {
		t.Fatalf("ECMP fan-out leaked into N_r: %+v", got)
	}
}

func TestComputeRouteAnonymityIgnoresFailures(t *testing.T) {
	dp := &sim.DataPlane{Pairs: map[sim.Pair][]sim.Path{
		{Src: "h1", Dst: "h2"}: {{Hops: []string{"h1", "r1"}, Status: sim.BlackHoled}},
	}}
	gw := map[string]string{"h1": "r1", "h2": "r9"}
	got := ComputeRouteAnonymity(dp, gw)
	if got.Pairs != 0 || got.Min != 0 {
		t.Fatalf("failure paths counted: %+v", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if r := Pearson(x, []float64{2, 4, 6, 8}); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive r = %v", r)
	}
	if r := Pearson(x, []float64{8, 6, 4, 2}); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative r = %v", r)
	}
	if r := Pearson(x, []float64{5, 5, 5, 5}); r != 0 {
		t.Fatalf("constant sample r = %v", r)
	}
	if r := Pearson(x, []float64{1, 2}); r != 0 {
		t.Fatalf("mismatched lengths r = %v", r)
	}
	// Symmetry.
	y := []float64{3, 1, 4, 1}
	if Pearson(x, y) != Pearson(y, x) {
		t.Fatal("Pearson not symmetric")
	}
}

func TestQuantiles(t *testing.T) {
	s := []float64{4, 1, 3, 2}
	got := Quantiles(s, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 2.5 || got[2] != 4 {
		t.Fatalf("quantiles = %v", got)
	}
	if out := Quantiles(nil, 0.5); out[0] != 0 {
		t.Fatalf("empty sample quantile = %v", out)
	}
}

func TestGatewaysWithFakes(t *testing.T) {
	view := &sim.Net{GatewayOf: map[string]string{"h1": "r1", "h1-fk1": "r1"}}
	got := GatewaysWithFakes(view)
	if got["h1"] != "r1" || got["h1-fk1"] != "r1" {
		t.Fatalf("gateways = %v", got)
	}
}
