// Package netaddr provides IPv4 prefix bookkeeping for configuration
// anonymization: allocation of fresh prefixes that are guaranteed not to
// collide with any address space already present in a network, and a
// deterministic prefix-preserving address anonymizer in the style of
// Crypto-PAn (Xu et al., ICNP 2002).
//
// ConfMask requires that every fake link and fake host receives an IP
// prefix "that is not included by any network that appeared in the original
// network configurations" (§5.3 of the paper), so that added filters for
// fake destinations can never interfere with real routes. The Pool type
// enforces exactly that invariant.
package netaddr

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"net/netip"
	"sort"
)

// Pool allocates IPv4 prefixes that do not overlap any reserved prefix.
// The zero value is not usable; construct with NewPool.
//
// Allocation walks candidate supernets (by default the RFC 1918 blocks) in
// order, carving fixed-size prefixes and skipping any candidate that
// overlaps a reserved or previously allocated prefix. Allocation order is
// deterministic, which keeps the whole anonymization pipeline reproducible
// under a fixed seed.
type Pool struct {
	reserved []netip.Prefix // sorted by address for overlap checks
	supers   []netip.Prefix // candidate supernets to carve from
	cursor   map[int]netip.Addr
}

// DefaultSupernets is the candidate space new prefixes are carved from:
// the three RFC 1918 blocks, walked in order.
func DefaultSupernets() []netip.Prefix {
	return []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("172.16.0.0/12"),
		netip.MustParsePrefix("192.168.0.0/16"),
	}
}

// NewPool returns a Pool that will never allocate a prefix overlapping any
// element of used. The supernets argument selects the candidate space; nil
// selects DefaultSupernets.
func NewPool(used []netip.Prefix, supernets []netip.Prefix) *Pool {
	if supernets == nil {
		supernets = DefaultSupernets()
	}
	p := &Pool{
		supers: supernets,
		cursor: make(map[int]netip.Addr, len(supernets)),
	}
	for i, s := range supernets {
		p.cursor[i] = s.Addr()
	}
	p.reserved = append(p.reserved, used...)
	sortPrefixes(p.reserved)
	return p
}

// Reserve marks pfx as in use so it will never be returned by Alloc.
func (p *Pool) Reserve(pfx netip.Prefix) {
	p.reserved = append(p.reserved, pfx)
	sortPrefixes(p.reserved)
}

// Overlaps reports whether pfx overlaps any reserved prefix.
func (p *Pool) Overlaps(pfx netip.Prefix) bool {
	for _, r := range p.reserved {
		if r.Overlaps(pfx) {
			return true
		}
	}
	return false
}

// Alloc carves and reserves a fresh prefix of the given length. It returns
// an error only when every candidate supernet is exhausted, which for
// realistic network sizes (thousands of links) cannot happen within the
// RFC 1918 space.
func (p *Pool) Alloc(bits int) (netip.Prefix, error) {
	if bits < 0 || bits > 32 {
		return netip.Prefix{}, fmt.Errorf("netaddr: invalid prefix length /%d", bits)
	}
	for i, s := range p.supers {
		if bits < s.Bits() {
			continue // requested block larger than the supernet
		}
		addr := p.cursor[i]
		for s.Contains(addr) {
			cand := netip.PrefixFrom(addr, bits).Masked()
			next, ok := nextBlock(cand)
			if !p.Overlaps(cand) {
				p.reserved = append(p.reserved, cand)
				sortPrefixes(p.reserved)
				if ok {
					p.cursor[i] = next.Addr()
				} else {
					p.cursor[i] = s.Addr().Prev() // exhausted; Contains fails next time
				}
				return cand, nil
			}
			if !ok {
				break
			}
			addr = next.Addr()
		}
	}
	return netip.Prefix{}, fmt.Errorf("netaddr: address space exhausted for /%d", bits)
}

// AllocP2P allocates a /31 point-to-point link prefix and returns the two
// usable addresses in order.
func (p *Pool) AllocP2P() (pfx netip.Prefix, a, b netip.Addr, err error) {
	pfx, err = p.Alloc(31)
	if err != nil {
		return netip.Prefix{}, netip.Addr{}, netip.Addr{}, err
	}
	a = pfx.Addr()
	b = a.Next()
	return pfx, a, b, nil
}

// AllocLAN allocates a /24 host LAN prefix and returns the gateway (.1) and
// host (.2) addresses.
func (p *Pool) AllocLAN() (pfx netip.Prefix, gw, host netip.Addr, err error) {
	pfx, err = p.Alloc(24)
	if err != nil {
		return netip.Prefix{}, netip.Addr{}, netip.Addr{}, err
	}
	gw = pfx.Addr().Next()
	host = gw.Next()
	return pfx, gw, host, nil
}

// nextBlock returns the prefix immediately following pfx at the same
// length, and false if pfx is the last block in the IPv4 space.
func nextBlock(pfx netip.Prefix) (netip.Prefix, bool) {
	a4 := pfx.Addr().As4()
	v := uint64(a4[0])<<24 | uint64(a4[1])<<16 | uint64(a4[2])<<8 | uint64(a4[3])
	step := uint64(1) << (32 - pfx.Bits())
	v += step
	if v > 0xFFFFFFFF {
		return netip.Prefix{}, false
	}
	var out [4]byte
	out[0] = byte(v >> 24)
	out[1] = byte(v >> 16)
	out[2] = byte(v >> 8)
	out[3] = byte(v)
	return netip.PrefixFrom(netip.AddrFrom4(out), pfx.Bits()), true
}

func sortPrefixes(s []netip.Prefix) {
	sort.Slice(s, func(i, j int) bool {
		if c := s[i].Addr().Compare(s[j].Addr()); c != 0 {
			return c < 0
		}
		return s[i].Bits() < s[j].Bits()
	})
}

// Anonymizer is a deterministic prefix-preserving IPv4 address anonymizer.
// Two addresses sharing an n-bit prefix map to two addresses sharing an
// n-bit prefix, the defining property of Crypto-PAn. The bit-flip decision
// at each depth is derived from an HMAC-SHA256 PRF keyed by a caller
// secret, so the mapping is stable across runs with the same key.
//
// ConfMask treats PII obfuscation (including IP anonymization) as an
// add-on stage after topology and route anonymization (§9); Anonymizer is
// that add-on.
type Anonymizer struct {
	key []byte
}

// NewAnonymizer returns an Anonymizer keyed with the given secret.
func NewAnonymizer(key []byte) *Anonymizer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Anonymizer{key: k}
}

// Addr maps an IPv4 address to its anonymized form.
func (an *Anonymizer) Addr(a netip.Addr) netip.Addr {
	if !a.Is4() {
		return a
	}
	in := a.As4()
	v := uint32(in[0])<<24 | uint32(in[1])<<16 | uint32(in[2])<<8 | uint32(in[3])
	var out uint32
	for i := 0; i < 32; i++ {
		// The flip bit for position i depends only on the i-bit prefix of
		// the input, which is exactly what makes the scheme
		// prefix-preserving.
		prefix := v >> (32 - i) // top i bits, right-aligned (0 when i==0)
		mac := hmac.New(sha256.New, an.key)
		var buf [5]byte
		buf[0] = byte(i)
		buf[1] = byte(prefix >> 24)
		buf[2] = byte(prefix >> 16)
		buf[3] = byte(prefix >> 8)
		buf[4] = byte(prefix)
		mac.Write(buf[:])
		flip := mac.Sum(nil)[0] & 1
		bit := (v >> (31 - i)) & 1
		out = out<<1 | (bit ^ uint32(flip))
	}
	var o [4]byte
	o[0] = byte(out >> 24)
	o[1] = byte(out >> 16)
	o[2] = byte(out >> 8)
	o[3] = byte(out)
	return netip.AddrFrom4(o)
}

// Prefix maps a prefix by anonymizing its base address and keeping its
// length; because Addr is prefix-preserving the result respects subnet
// structure.
func (an *Anonymizer) Prefix(p netip.Prefix) netip.Prefix {
	return netip.PrefixFrom(an.Addr(p.Addr()), p.Bits()).Masked()
}
