package netaddr

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestPoolAvoidsUsedPrefixes(t *testing.T) {
	used := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/16"),
		netip.MustParsePrefix("10.1.2.0/24"),
	}
	p := NewPool(used, nil)
	for i := 0; i < 100; i++ {
		pfx, err := p.Alloc(24)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		for _, u := range used {
			if u.Overlaps(pfx) {
				t.Fatalf("allocated %v overlaps used %v", pfx, u)
			}
		}
	}
}

func TestPoolAllocationsAreDisjoint(t *testing.T) {
	p := NewPool(nil, nil)
	var got []netip.Prefix
	for i := 0; i < 200; i++ {
		pfx, err := p.Alloc(30)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		for _, g := range got {
			if g.Overlaps(pfx) {
				t.Fatalf("allocation %v overlaps earlier %v", pfx, g)
			}
		}
		got = append(got, pfx)
	}
}

func TestPoolDeterministic(t *testing.T) {
	a := NewPool(nil, nil)
	b := NewPool(nil, nil)
	for i := 0; i < 50; i++ {
		pa, _ := a.Alloc(31)
		pb, _ := b.Alloc(31)
		if pa != pb {
			t.Fatalf("allocation %d diverged: %v vs %v", i, pa, pb)
		}
	}
}

func TestPoolP2PAndLAN(t *testing.T) {
	p := NewPool(nil, nil)
	pfx, a, b, err := p.AllocP2P()
	if err != nil {
		t.Fatalf("AllocP2P: %v", err)
	}
	if pfx.Bits() != 31 || !pfx.Contains(a) || !pfx.Contains(b) || a == b {
		t.Fatalf("bad p2p allocation %v %v %v", pfx, a, b)
	}
	lan, gw, host, err := p.AllocLAN()
	if err != nil {
		t.Fatalf("AllocLAN: %v", err)
	}
	if lan.Bits() != 24 || !lan.Contains(gw) || !lan.Contains(host) || gw == host {
		t.Fatalf("bad LAN allocation %v %v %v", lan, gw, host)
	}
	if lan.Overlaps(pfx) {
		t.Fatalf("LAN %v overlaps P2P %v", lan, pfx)
	}
}

func TestPoolReserve(t *testing.T) {
	p := NewPool(nil, nil)
	r := netip.MustParsePrefix("10.0.0.0/9")
	p.Reserve(r)
	pfx, err := p.Alloc(24)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if r.Overlaps(pfx) {
		t.Fatalf("allocated %v inside reserved %v", pfx, r)
	}
}

func TestPoolExhaustion(t *testing.T) {
	small := []netip.Prefix{netip.MustParsePrefix("10.0.0.0/30")}
	p := NewPool(nil, small)
	if _, err := p.Alloc(31); err != nil {
		t.Fatalf("first alloc: %v", err)
	}
	if _, err := p.Alloc(31); err != nil {
		t.Fatalf("second alloc: %v", err)
	}
	if _, err := p.Alloc(31); err == nil {
		t.Fatalf("expected exhaustion error")
	}
}

func TestPoolRejectsBadLength(t *testing.T) {
	p := NewPool(nil, nil)
	if _, err := p.Alloc(33); err == nil {
		t.Fatal("expected error for /33")
	}
	if _, err := p.Alloc(-1); err == nil {
		t.Fatal("expected error for /-1")
	}
}

func TestAnonymizerDeterministic(t *testing.T) {
	a1 := NewAnonymizer([]byte("key"))
	a2 := NewAnonymizer([]byte("key"))
	addr := netip.MustParseAddr("192.168.1.77")
	if a1.Addr(addr) != a2.Addr(addr) {
		t.Fatal("same key must map identically")
	}
	a3 := NewAnonymizer([]byte("other"))
	if a1.Addr(addr) == a3.Addr(addr) {
		t.Fatal("different keys should map differently (overwhelmingly likely)")
	}
}

// TestAnonymizerPrefixPreserving is the defining Crypto-PAn property: the
// length of the longest common prefix is preserved by the mapping.
func TestAnonymizerPrefixPreserving(t *testing.T) {
	an := NewAnonymizer([]byte("secret"))
	f := func(x, y uint32) bool {
		a := addrOf(x)
		b := addrOf(y)
		return lcp(an.Addr(a), an.Addr(b)) == lcp(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAnonymizerInjective: distinct addresses map to distinct addresses
// (follows from prefix preservation, but checked directly).
func TestAnonymizerInjective(t *testing.T) {
	an := NewAnonymizer([]byte("secret"))
	f := func(x, y uint32) bool {
		if x == y {
			return true
		}
		return an.Addr(addrOf(x)) != an.Addr(addrOf(y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymizerPrefixMasked(t *testing.T) {
	an := NewAnonymizer([]byte("secret"))
	p := netip.MustParsePrefix("10.1.2.0/24")
	got := an.Prefix(p)
	if got.Bits() != 24 {
		t.Fatalf("length changed: %v", got)
	}
	if got != got.Masked() {
		t.Fatalf("result not masked: %v", got)
	}
}

func TestAnonymizerIgnoresIPv6(t *testing.T) {
	an := NewAnonymizer([]byte("secret"))
	v6 := netip.MustParseAddr("2001:db8::1")
	if an.Addr(v6) != v6 {
		t.Fatal("IPv6 addresses should pass through unchanged")
	}
}

func addrOf(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func lcp(a, b netip.Addr) int {
	x := a.As4()
	y := b.As4()
	va := uint32(x[0])<<24 | uint32(x[1])<<16 | uint32(x[2])<<8 | uint32(x[3])
	vb := uint32(y[0])<<24 | uint32(y[1])<<16 | uint32(y[2])<<8 | uint32(y[3])
	n := 0
	for n < 32 && (va>>(31-n))&1 == (vb>>(31-n))&1 {
		n++
	}
	return n
}

func TestAllocSkipsTooSmallSupernets(t *testing.T) {
	p := NewPool(nil, nil)
	// A /8 fits only in 10.0.0.0/8; the second request must fail after
	// the other supernets are skipped (they are /12 and /16).
	if _, err := p.Alloc(8); err != nil {
		t.Fatalf("first /8: %v", err)
	}
	if _, err := p.Alloc(8); err == nil {
		t.Fatal("expected exhaustion for second /8")
	}
	// Smaller blocks still succeed from the remaining supernets.
	if _, err := p.Alloc(24); err != nil {
		t.Fatalf("/24 after /8 exhaustion: %v", err)
	}
}

func TestAllocCrossesIntoNextSupernet(t *testing.T) {
	small := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/24"),
		netip.MustParsePrefix("172.16.0.0/24"),
	}
	p := NewPool([]netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")}, small)
	got, err := p.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if got != netip.MustParsePrefix("172.16.0.0/24") {
		t.Fatalf("expected fallback to second supernet, got %v", got)
	}
}

func TestNextBlock(t *testing.T) {
	p := netip.MustParsePrefix("10.0.0.0/24")
	n, ok := nextBlock(p)
	if !ok || n != netip.MustParsePrefix("10.0.1.0/24") {
		t.Fatalf("nextBlock(%v) = %v, %v", p, n, ok)
	}
	last := netip.MustParsePrefix("255.255.255.0/24")
	if _, ok := nextBlock(last); ok {
		t.Fatalf("expected end of space after %v", last)
	}
}
