// Package netbuild contains the low-level configuration editing shared by
// the evaluation-network generators (internal/netgen) and the anonymizer
// (internal/anonymize): creating point-to-point links, attaching host LANs,
// and registering new subnets with whatever routing protocols the touched
// devices run.
//
// Everything here strictly *adds* configuration — interfaces, network
// statements, neighbor statements — never edits or removes existing lines,
// which is the mechanical half of ConfMask's functional-equivalence
// guarantee.
package netbuild

import (
	"fmt"
	"net/netip"

	"confmask/internal/config"
	"confmask/internal/netaddr"
)

// LinkOpts controls AddP2PLink.
type LinkOpts struct {
	// CostA/CostB set `ip ospf cost` on the two new interfaces; 0 leaves
	// the default cost.
	CostA, CostB int
	// Injected marks the new interfaces as anonymization artifacts
	// (bookkeeping only; never rendered).
	Injected bool
	// NoProtocol suppresses protocol registration (interfaces only).
	NoProtocol bool
}

// AddP2PLink allocates a fresh /31 from pool and configures matching
// interfaces on devices a and b. The subnet is registered with the routing
// protocols of both devices: OSPF/RIP network statements when both ends run
// the same IGP and are in the same BGP AS (or no BGP); eBGP neighbor
// statements in both directions when the devices are BGP speakers of
// different ASes.
func AddP2PLink(cfg *config.Network, pool *netaddr.Pool, a, b string, opts LinkOpts) (netip.Prefix, error) {
	da := cfg.Device(a)
	db := cfg.Device(b)
	if da == nil || db == nil {
		return netip.Prefix{}, fmt.Errorf("netbuild: unknown device %q or %q", a, b)
	}
	pfx, addrA, addrB, err := pool.AllocP2P()
	if err != nil {
		return netip.Prefix{}, err
	}
	ifA := &config.Interface{
		Name:        da.NextInterfaceName(),
		Addr:        netip.PrefixFrom(addrA, 31),
		Description: "to-" + b,
		OSPFCost:    opts.CostA,
		Injected:    opts.Injected,
	}
	ifB := &config.Interface{
		Name:        db.NextInterfaceName(),
		Addr:        netip.PrefixFrom(addrB, 31),
		Description: "to-" + a,
		OSPFCost:    opts.CostB,
		Injected:    opts.Injected,
	}
	da.Interfaces = append(da.Interfaces, ifA)
	db.Interfaces = append(db.Interfaces, ifB)
	if opts.NoProtocol {
		return pfx, nil
	}

	crossAS := da.BGP != nil && db.BGP != nil && da.BGP.ASN != db.BGP.ASN
	if crossAS {
		da.BGP.Neighbors = append(da.BGP.Neighbors, &config.BGPNeighbor{Addr: addrB, RemoteAS: db.BGP.ASN})
		db.BGP.Neighbors = append(db.BGP.Neighbors, &config.BGPNeighbor{Addr: addrA, RemoteAS: da.BGP.ASN})
		return pfx, nil
	}
	registerIGP(da, pfx)
	registerIGP(db, pfx)
	return pfx, nil
}

// registerIGP adds a network statement for pfx to the device's IGP.
func registerIGP(d *config.Device, pfx netip.Prefix) {
	switch {
	case d.OSPF != nil:
		d.OSPF.Networks = append(d.OSPF.Networks, pfx)
	case d.EIGRP != nil:
		d.EIGRP.Networks = append(d.EIGRP.Networks, pfx)
	case d.RIP != nil:
		d.RIP.Networks = append(d.RIP.Networks, pfx)
	}
}

// HostOpts controls AddHostLAN.
type HostOpts struct {
	// Injected marks the new host and interfaces as anonymization
	// artifacts.
	Injected bool
	// AdvertiseBGP additionally originates the LAN from the router's BGP
	// process (required for inter-AS reachability of the host).
	AdvertiseBGP bool
}

// AddHostLAN allocates a fresh /24, creates host device hostname attached
// to router, and registers the LAN with the router's IGP (and BGP when
// requested). It returns the LAN prefix.
func AddHostLAN(cfg *config.Network, pool *netaddr.Pool, hostname, router string, opts HostOpts) (netip.Prefix, error) {
	r := cfg.Device(router)
	if r == nil {
		return netip.Prefix{}, fmt.Errorf("netbuild: unknown router %q", router)
	}
	if cfg.Device(hostname) != nil {
		return netip.Prefix{}, fmt.Errorf("netbuild: device %q already exists", hostname)
	}
	pfx, gw, hostIP, err := pool.AllocLAN()
	if err != nil {
		return netip.Prefix{}, err
	}
	r.Interfaces = append(r.Interfaces, &config.Interface{
		Name:        r.NextInterfaceName(),
		Addr:        netip.PrefixFrom(gw, pfx.Bits()),
		Description: "to-" + hostname,
		Injected:    opts.Injected,
	})
	registerIGP(r, pfx)
	if opts.AdvertiseBGP && r.BGP != nil {
		r.BGP.Networks = append(r.BGP.Networks, pfx)
	}
	h := &config.Device{
		Hostname: hostname,
		Kind:     config.HostKind,
		Interfaces: []*config.Interface{{
			Name:     "eth0",
			Addr:     netip.PrefixFrom(hostIP, pfx.Bits()),
			Injected: opts.Injected,
		}},
		Statics: []config.StaticRoute{{
			Prefix:  netip.MustParsePrefix("0.0.0.0/0"),
			NextHop: gw,
		}},
	}
	cfg.Add(h)
	return pfx, nil
}

// AddExternalDestination originates an external equivalence-class prefix
// (§9 "Internet hosts") at a BGP-speaking router: a fresh /24 anchored by
// a Null0 discard static and announced via a BGP network statement — the
// standard way operators originate aggregates they do not host.
func AddExternalDestination(cfg *config.Network, pool *netaddr.Pool, router string) (netip.Prefix, error) {
	d := cfg.Device(router)
	if d == nil {
		return netip.Prefix{}, fmt.Errorf("netbuild: unknown router %q", router)
	}
	if d.BGP == nil {
		return netip.Prefix{}, fmt.Errorf("netbuild: external destinations require a BGP speaker (got %q)", router)
	}
	pfx, err := pool.Alloc(24)
	if err != nil {
		return netip.Prefix{}, err
	}
	d.Statics = append(d.Statics, config.StaticRoute{Prefix: pfx, Discard: true})
	d.BGP.Networks = append(d.BGP.Networks, pfx)
	return pfx, nil
}

// EnsureIBGPMesh adds the missing iBGP neighbor statements so that the BGP
// speakers within each AS form a full mesh. Sessions target the peer's
// first addressed interface. Existing sessions are kept; only absent ones
// are added.
func EnsureIBGPMesh(cfg *config.Network) {
	byAS := make(map[int][]string)
	for _, r := range cfg.Routers() {
		if d := cfg.Device(r); d.BGP != nil {
			byAS[d.BGP.ASN] = append(byAS[d.BGP.ASN], r)
		}
	}
	for asn, members := range byAS {
		for _, a := range members {
			da := cfg.Device(a)
			for _, b := range members {
				if a == b {
					continue
				}
				db := cfg.Device(b)
				peerAddr := firstAddr(db)
				if !peerAddr.IsValid() {
					continue
				}
				if hasNeighbor(da.BGP, peerAddr) {
					continue
				}
				da.BGP.Neighbors = append(da.BGP.Neighbors, &config.BGPNeighbor{Addr: peerAddr, RemoteAS: asn})
			}
		}
	}
}

func firstAddr(d *config.Device) netip.Addr {
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() {
			return i.Addr.Addr()
		}
	}
	return netip.Addr{}
}

func hasNeighbor(b *config.BGP, addr netip.Addr) bool {
	for _, nb := range b.Neighbors {
		if nb.Addr == addr {
			return true
		}
	}
	return false
}

// PoolFor returns a prefix pool that avoids every prefix already used by
// the network's configurations.
func PoolFor(cfg *config.Network) *netaddr.Pool {
	return netaddr.NewPool(cfg.UsedPrefixes(), nil)
}
