package netbuild

import (
	"net/netip"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netaddr"
)

func router(name string, asn int) *config.Device {
	d := &config.Device{Hostname: name, Kind: config.RouterKind}
	d.OSPF = &config.OSPF{ProcessID: 1, InFilters: map[string]string{}}
	if asn > 0 {
		d.BGP = &config.BGP{ASN: asn}
	}
	return d
}

func TestAddP2PLinkSameAS(t *testing.T) {
	cfg := config.NewNetwork()
	cfg.Add(router("a", 0))
	cfg.Add(router("b", 0))
	pool := netaddr.NewPool(nil, nil)
	pfx, err := AddP2PLink(cfg, pool, "a", "b", LinkOpts{CostA: 7, Injected: true})
	if err != nil {
		t.Fatal(err)
	}
	da := cfg.Device("a")
	db := cfg.Device("b")
	if len(da.Interfaces) != 1 || len(db.Interfaces) != 1 {
		t.Fatal("interfaces not added")
	}
	if !da.Interfaces[0].Injected || da.Interfaces[0].OSPFCost != 7 {
		t.Fatalf("interface attrs wrong: %+v", da.Interfaces[0])
	}
	// The /31 must be registered with OSPF on both sides.
	foundA, foundB := false, false
	for _, n := range da.OSPF.Networks {
		if n == pfx {
			foundA = true
		}
	}
	for _, n := range db.OSPF.Networks {
		if n == pfx {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatal("link prefix not registered with OSPF")
	}
	if da.Interfaces[0].Addr.Masked() != pfx || db.Interfaces[0].Addr.Masked() != pfx {
		t.Fatal("interface addresses not in the allocated prefix")
	}
	if da.Interfaces[0].Addr.Addr() == db.Interfaces[0].Addr.Addr() {
		t.Fatal("both ends share an address")
	}
}

func TestAddP2PLinkCrossAS(t *testing.T) {
	cfg := config.NewNetwork()
	cfg.Add(router("a", 100))
	cfg.Add(router("b", 200))
	pool := netaddr.NewPool(nil, nil)
	if _, err := AddP2PLink(cfg, pool, "a", "b", LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	da := cfg.Device("a")
	db := cfg.Device("b")
	if len(da.BGP.Neighbors) != 1 || da.BGP.Neighbors[0].RemoteAS != 200 {
		t.Fatalf("eBGP neighbor missing on a: %+v", da.BGP.Neighbors)
	}
	if len(db.BGP.Neighbors) != 1 || db.BGP.Neighbors[0].RemoteAS != 100 {
		t.Fatalf("eBGP neighbor missing on b: %+v", db.BGP.Neighbors)
	}
	// Cross-AS links must NOT join the IGP.
	if len(da.OSPF.Networks) != 0 || len(db.OSPF.Networks) != 0 {
		t.Fatal("cross-AS link leaked into OSPF")
	}
}

func TestAddP2PLinkErrors(t *testing.T) {
	cfg := config.NewNetwork()
	cfg.Add(router("a", 0))
	pool := netaddr.NewPool(nil, nil)
	if _, err := AddP2PLink(cfg, pool, "a", "missing", LinkOpts{}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestAddHostLAN(t *testing.T) {
	cfg := config.NewNetwork()
	cfg.Add(router("gw", 100))
	pool := netaddr.NewPool(nil, nil)
	pfx, err := AddHostLAN(cfg, pool, "h1", "gw", HostOpts{AdvertiseBGP: true, Injected: true})
	if err != nil {
		t.Fatal(err)
	}
	h := cfg.Device("h1")
	if h == nil || h.Kind != config.HostKind {
		t.Fatal("host not created")
	}
	if len(h.Statics) != 1 || h.Statics[0].Prefix != netip.MustParsePrefix("0.0.0.0/0") {
		t.Fatalf("host default route wrong: %+v", h.Statics)
	}
	gw := cfg.Device("gw")
	if gw.Interface(gw.Interfaces[0].Name) == nil || !gw.Interfaces[0].Injected {
		t.Fatal("gateway interface missing or not marked injected")
	}
	inBGP := false
	for _, n := range gw.BGP.Networks {
		if n == pfx {
			inBGP = true
		}
	}
	if !inBGP {
		t.Fatal("LAN not originated into BGP")
	}
	if _, err := AddHostLAN(cfg, pool, "h1", "gw", HostOpts{}); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if _, err := AddHostLAN(cfg, pool, "h2", "missing", HostOpts{}); err == nil {
		t.Fatal("unknown router accepted")
	}
}

func TestEnsureIBGPMesh(t *testing.T) {
	cfg := config.NewNetwork()
	for i, n := range []string{"a", "b", "c"} {
		r := router(n, 500)
		r.Interfaces = append(r.Interfaces, &config.Interface{
			Name: "lo0",
			Addr: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 9, byte(i + 1), 1}), 32),
		})
		cfg.Add(r)
	}
	EnsureIBGPMesh(cfg)
	for _, n := range []string{"a", "b", "c"} {
		if got := len(cfg.Device(n).BGP.Neighbors); got != 2 {
			t.Fatalf("%s has %d iBGP neighbors, want 2", n, got)
		}
	}
	// Idempotent.
	EnsureIBGPMesh(cfg)
	for _, n := range []string{"a", "b", "c"} {
		if got := len(cfg.Device(n).BGP.Neighbors); got != 2 {
			t.Fatalf("EnsureIBGPMesh not idempotent: %s has %d", n, got)
		}
	}
}

func TestPoolFor(t *testing.T) {
	cfg := config.NewNetwork()
	r := router("a", 0)
	r.Interfaces = append(r.Interfaces, &config.Interface{
		Name: "g0", Addr: netip.MustParsePrefix("10.0.0.1/24"),
	})
	cfg.Add(r)
	pool := PoolFor(cfg)
	pfx, err := pool.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if pfx.Overlaps(netip.MustParsePrefix("10.0.0.0/24")) {
		t.Fatalf("pool allocated used space: %v", pfx)
	}
}
