// Package netgen constructs the eight evaluation networks of the paper's
// Table 2 and provides a general Builder for assembling Cisco-style
// configuration sets from topology descriptions.
//
// Networks A–C in the paper use real (proprietary) enterprise, university,
// and backbone configurations; D–F are built from Topology Zoo graphs; G–H
// are fat-trees. This package synthesizes all eight at the paper's
// router/host/edge counts — see DESIGN.md for the substitution rationale.
package netgen

import (
	"fmt"
	"net/netip"

	"confmask/internal/config"
	"confmask/internal/netaddr"
	"confmask/internal/netbuild"
)

// Proto selects the routing protocol mix of a generated network.
type Proto int

const (
	// OSPF generates a single-domain OSPF network.
	OSPF Proto = iota
	// RIP generates a single-domain RIP network.
	RIP
	// EIGRP generates a single-domain EIGRP network (AS 100).
	EIGRP
	// BGPOSPF generates a multi-AS network running OSPF inside each AS
	// and BGP between ASes (with an iBGP full mesh per AS).
	BGPOSPF
)

// Builder incrementally assembles a configuration set.
type Builder struct {
	proto Proto
	cfg   *config.Network
	pool  *netaddr.Pool
	err   error
}

// NewBuilder returns a Builder for the given protocol mix.
func NewBuilder(proto Proto) *Builder {
	return &Builder{
		proto: proto,
		cfg:   config.NewNetwork(),
		pool:  netaddr.NewPool(nil, nil),
	}
}

// Router adds a router. For BGPOSPF networks use RouterAS instead.
func (b *Builder) Router(name string) *Builder { return b.RouterAS(name, 0) }

// RouterAS adds a router in the given AS (BGPOSPF networks only; other
// protocols ignore asn).
func (b *Builder) RouterAS(name string, asn int) *Builder {
	if b.err != nil {
		return b
	}
	if b.cfg.Device(name) != nil {
		b.err = fmt.Errorf("netgen: duplicate device %q", name)
		return b
	}
	d := &config.Device{Hostname: name, Kind: config.RouterKind, Extra: routerBoilerplate()}
	switch b.proto {
	case OSPF:
		d.OSPF = &config.OSPF{ProcessID: 1, InFilters: map[string]string{}}
	case RIP:
		d.RIP = &config.RIP{InFilters: map[string]string{}}
	case EIGRP:
		d.EIGRP = &config.EIGRP{ASN: 100, InFilters: map[string]string{}}
	case BGPOSPF:
		d.OSPF = &config.OSPF{ProcessID: 1, InFilters: map[string]string{}}
		if asn <= 0 {
			b.err = fmt.Errorf("netgen: router %q in BGPOSPF network needs an AS number", name)
			return b
		}
		d.BGP = &config.BGP{ASN: asn}
	}
	b.cfg.Add(d)
	return b
}

// Link connects two routers with a fresh /31 and default costs.
func (b *Builder) Link(a, c string) *Builder { return b.LinkCost(a, c, 0, 0) }

// LinkCost connects two routers with explicit OSPF costs per direction
// (0 keeps the protocol default).
func (b *Builder) LinkCost(a, c string, costA, costC int) *Builder {
	if b.err != nil {
		return b
	}
	_, err := netbuild.AddP2PLink(b.cfg, b.pool, a, c, netbuild.LinkOpts{CostA: costA, CostB: costC})
	if err != nil {
		b.err = err
	}
	return b
}

// Host attaches a host to a router on a fresh /24 LAN; in BGPOSPF networks
// the LAN is also originated into BGP.
func (b *Builder) Host(host, router string) *Builder {
	if b.err != nil {
		return b
	}
	_, err := netbuild.AddHostLAN(b.cfg, b.pool, host, router, netbuild.HostOpts{
		AdvertiseBGP: b.proto == BGPOSPF,
	})
	if err != nil {
		b.err = err
	}
	return b
}

// routerBoilerplate returns the management configuration every generated
// router carries. Real enterprise configurations are dominated by such
// lines (AAA, logging, SNMP, VTY, QoS defaults); including them keeps the
// generated networks' per-device line counts near the paper's Table 2 and
// exercises the requirement that anonymization passes unknown lines
// through untouched.
func routerBoilerplate() []string {
	return []string{
		"service timestamps debug datetime msec",
		"service timestamps log datetime msec",
		"service password-encryption",
		"no ip domain lookup",
		"ip cef",
		"ip ssh version 2",
		"login block-for 120 attempts 3 within 60",
		"aaa new-model",
		"aaa authentication login default local",
		"aaa authorization exec default local",
		"clock timezone UTC 0 0",
		"ntp server 10.255.255.251",
		"ntp server 10.255.255.252",
		"logging buffered 64000",
		"logging host 10.255.255.250",
		"logging trap informational",
		"snmp-server community netops RO",
		"snmp-server location core-site",
		"snmp-server enable traps config",
		"spanning-tree mode rapid-pvst",
		"line console 0",
		"line vty 0 4",
		"transport input ssh",
		"exec-timeout 10 0",
		"banner motd ^authorized access only^",
		"archive log config",
		"memory free low-watermark processor 65536",
	}
}

// Build finalizes the network (completing the iBGP mesh for BGPOSPF) and
// returns it, or the first construction error.
func (b *Builder) Build() (*config.Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.proto == BGPOSPF {
		netbuild.EnsureIBGPMesh(b.cfg)
	}
	return b.cfg, nil
}

// MustBuild is Build for tests and generators with static inputs.
func (b *Builder) MustBuild() *config.Network {
	cfg, err := b.Build()
	if err != nil {
		panic(err)
	}
	return cfg
}

// HostPrefixOf returns the LAN prefix of a host in a built network.
func HostPrefixOf(cfg *config.Network, host string) (netip.Prefix, bool) {
	d := cfg.Device(host)
	if d == nil || d.Kind != config.HostKind {
		return netip.Prefix{}, false
	}
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() {
			return i.Addr.Masked(), true
		}
	}
	return netip.Prefix{}, false
}
