package netgen

import (
	"fmt"
	"math/rand"

	"confmask/internal/config"
)

// Spec identifies one evaluation network of the paper's Table 2.
type Spec struct {
	ID    string // "A".."H"
	Name  string
	Type  string // "BGP+OSPF" or "OSPF"
	Build func() (*config.Network, error)
}

// Catalog returns the eight evaluation networks in Table 2 order.
//
// Networks A–C substitute synthetic BGP+OSPF configurations for the
// paper's proprietary enterprise/university/backbone files at the same
// router/host/edge counts; D–F substitute deterministic generators for
// the Topology Zoo graphs (Bics, Columbus, USCarrier) at the same scale;
// G–H are fat-trees (see DESIGN.md).
func Catalog() []Spec {
	return []Spec{
		{ID: "A", Name: "Enterprise", Type: "BGP+OSPF", Build: Enterprise},
		{ID: "B", Name: "University", Type: "BGP+OSPF", Build: University},
		{ID: "C", Name: "Backbone", Type: "BGP+OSPF", Build: Backbone},
		{ID: "D", Name: "Bics", Type: "OSPF", Build: Bics},
		{ID: "E", Name: "Columbus", Type: "OSPF", Build: Columbus},
		{ID: "F", Name: "USCarrier", Type: "OSPF", Build: USCarrier},
		{ID: "G", Name: "FatTree04", Type: "OSPF", Build: FatTree04},
		{ID: "H", Name: "FatTree08", Type: "OSPF", Build: FatTree08},
	}
}

// SmallCatalog returns the networks small enough for quick experiments and
// CI-speed tests (A–C plus the fat-trees).
func SmallCatalog() []Spec {
	all := Catalog()
	return []Spec{all[0], all[1], all[2], all[6]}
}

// ByID returns the catalog entry with the given ID or name, searching the
// Table 2 catalog and then the scale catalog.
func ByID(id string) (Spec, error) {
	for _, s := range Catalog() {
		if s.ID == id || s.Name == id {
			return s, nil
		}
	}
	for _, s := range ScaleCatalog() {
		if s.ID == id || s.Name == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("netgen: unknown network %q", id)
}

// Enterprise is network A: 10 routers, 8 hosts, 26 links over 3 ASes.
func Enterprise() (*config.Network, error) {
	b := NewBuilder(BGPOSPF)
	for i := 1; i <= 4; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65001)
	}
	for i := 5; i <= 7; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65002)
	}
	for i := 8; i <= 10; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65003)
	}
	// Intra-AS (11 links).
	b.Link("r1", "r2").LinkCost("r2", "r3", 5, 5).Link("r3", "r4").Link("r4", "r1").LinkCost("r1", "r3", 1, 1)
	b.Link("r5", "r6").Link("r6", "r7").LinkCost("r5", "r7", 20, 20)
	b.Link("r8", "r9").Link("r9", "r10").Link("r8", "r10")
	// Inter-AS (7 links).
	b.Link("r4", "r5").Link("r7", "r8").Link("r10", "r1").Link("r3", "r6")
	b.Link("r2", "r9").Link("r6", "r9").Link("r4", "r8")
	// Hosts (8).
	b.Host("h1", "r1").Host("h2", "r2").Host("h3", "r5").Host("h4", "r6")
	b.Host("h5", "r7").Host("h6", "r8").Host("h7", "r9").Host("h8", "r10")
	return b.Build()
}

// University is network B: 13 routers, 8 hosts, 25 links over 3 ASes.
func University() (*config.Network, error) {
	b := NewBuilder(BGPOSPF)
	for i := 1; i <= 5; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65010)
	}
	for i := 6; i <= 9; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65020)
	}
	for i := 10; i <= 13; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65030)
	}
	// Intra-AS (11 links).
	b.Link("r1", "r2").Link("r2", "r3").LinkCost("r3", "r4", 2, 2).Link("r4", "r5").Link("r5", "r1")
	b.Link("r6", "r7").Link("r7", "r8").Link("r8", "r9")
	b.Link("r10", "r11").LinkCost("r11", "r12", 5, 5).Link("r12", "r13")
	// Inter-AS (6 links).
	b.Link("r1", "r6").Link("r2", "r7").Link("r3", "r10").Link("r4", "r11").Link("r5", "r9").Link("r13", "r6")
	// Hosts (8).
	b.Host("h1", "r2").Host("h2", "r4").Host("h3", "r6").Host("h4", "r8")
	b.Host("h5", "r10").Host("h6", "r12").Host("h7", "r13").Host("h8", "r7")
	return b.Build()
}

// Backbone is network C: 11 routers, 9 hosts, 22 links over 3 ASes.
func Backbone() (*config.Network, error) {
	b := NewBuilder(BGPOSPF)
	for i := 1; i <= 4; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65100)
	}
	for i := 5; i <= 8; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65200)
	}
	for i := 9; i <= 11; i++ {
		b.RouterAS(fmt.Sprintf("r%d", i), 65300)
	}
	// Intra-AS (10 links).
	b.Link("r1", "r2").Link("r2", "r3").Link("r3", "r4").LinkCost("r4", "r1", 3, 3)
	b.Link("r5", "r6").Link("r6", "r7").Link("r7", "r8").Link("r8", "r5")
	b.Link("r9", "r10").Link("r10", "r11")
	// Inter-AS (3 links).
	b.Link("r4", "r5").Link("r8", "r9").Link("r11", "r1")
	// Hosts (9).
	b.Host("h1", "r1").Host("h2", "r2").Host("h3", "r3").Host("h4", "r5").Host("h5", "r6")
	b.Host("h6", "r7").Host("h7", "r9").Host("h8", "r10").Host("h9", "r11")
	return b.Build()
}

// Bics is network D: 49 routers, 98 hosts, 162 links (zoo-scale, OSPF).
func Bics() (*config.Network, error) { return zooNet(49, 64, 98, 0xB1C5) }

// Columbus is network E: 86 routers, 68 hosts, 169 links.
func Columbus() (*config.Network, error) { return zooNet(86, 101, 68, 0xC0) }

// USCarrier is network F: 161 routers, 58 hosts, 378 links.
func USCarrier() (*config.Network, error) { return zooNet(161, 320, 58, 0x05CA) }

// zooNet deterministically generates an OSPF network shaped like a
// Topology Zoo carrier graph: a ring backbone (every zoo graph is
// connected and sparse) plus random chords up to the target link count,
// with a mix of link costs, and hosts spread round-robin across routers.
func zooNet(routers, rrLinks, hosts int, seed int64) (*config.Network, error) {
	if rrLinks < routers {
		return nil, fmt.Errorf("netgen: need at least %d router links for a ring, got %d", routers, rrLinks)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(OSPF)
	names := make([]string, routers)
	for i := range names {
		names[i] = fmt.Sprintf("r%03d", i)
		b.Router(names[i])
	}
	type pair struct{ a, b int }
	used := make(map[pair]bool)
	addLink := func(i, j int, cost int) {
		if i > j {
			i, j = j, i
		}
		used[pair{i, j}] = true
		b.LinkCost(names[i], names[j], cost, cost)
	}
	costs := []int{0, 0, 1, 5, 20}
	for i := 0; i < routers; i++ {
		addLink(i, (i+1)%routers, costs[rng.Intn(len(costs))])
	}
	// Chords are biased toward a small hub set, giving the degree-skewed
	// structure of real carrier graphs (a few POPs concentrate links) —
	// which is what makes k-degree anonymization non-trivial.
	hubs := routers/12 + 2
	for added := routers; added < rrLinks; {
		i := rng.Intn(routers)
		j := rng.Intn(routers)
		if rng.Float64() < 0.6 {
			j = rng.Intn(hubs) * (routers / hubs)
		}
		if i == j {
			continue
		}
		a, c := i, j
		if a > c {
			a, c = c, a
		}
		if used[pair{a, c}] {
			continue
		}
		addLink(i, j, costs[rng.Intn(len(costs))])
		added++
	}
	for h := 0; h < hosts; h++ {
		b.Host(fmt.Sprintf("h%03d", h), names[h%routers])
	}
	return b.Build()
}

// FatTree04 is network G: a k=4 fat-tree — 4 core, 8 aggregation, and
// 8 edge routers (20 total), 16 hosts, 48 links.
func FatTree04() (*config.Network, error) { return fatTree(4, 4) }

// FatTree08 is network H: an 8-pod fat-tree with 8 core routers — 72
// routers, 64 hosts, 320 links, matching the paper's Table 2 counts.
func FatTree08() (*config.Network, error) { return fatTree(8, 8) }

// fatTree builds a fat-tree with the given pod count and core count. Each
// pod has pods/2 aggregation and pods/2 edge routers; every edge router
// connects to every aggregation router in its pod; aggregation router p
// (position within pod) connects to cores (2p+c) mod cores for
// c ∈ 0..cores/2−1; every edge router hosts two end hosts.
func fatTree(pods, cores int) (*config.Network, error) {
	b := NewBuilder(OSPF)
	half := pods / 2
	for c := 0; c < cores; c++ {
		b.Router(fmt.Sprintf("core%d", c))
	}
	for p := 0; p < pods; p++ {
		for i := 0; i < half; i++ {
			b.Router(fmt.Sprintf("agg%d-%d", p, i))
			b.Router(fmt.Sprintf("edge%d-%d", p, i))
		}
	}
	coreLinks := cores / 2
	for p := 0; p < pods; p++ {
		for i := 0; i < half; i++ {
			agg := fmt.Sprintf("agg%d-%d", p, i)
			for j := 0; j < half; j++ {
				b.Link(fmt.Sprintf("edge%d-%d", p, j), agg)
			}
			for c := 0; c < coreLinks; c++ {
				b.Link(agg, fmt.Sprintf("core%d", (2*i+c)%cores))
			}
		}
	}
	for p := 0; p < pods; p++ {
		for i := 0; i < half; i++ {
			edge := fmt.Sprintf("edge%d-%d", p, i)
			b.Host(fmt.Sprintf("h%d-%d-0", p, i), edge)
			b.Host(fmt.Sprintf("h%d-%d-1", p, i), edge)
		}
	}
	return b.Build()
}
