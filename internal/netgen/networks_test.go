package netgen

import (
	"testing"

	"confmask/internal/config"
	"confmask/internal/sim"
)

// wantCounts is Table 2 of the paper.
var wantCounts = map[string]struct{ R, H, E int }{
	"A": {10, 8, 26},
	"B": {13, 8, 25},
	"C": {11, 9, 22},
	"D": {49, 98, 162},
	"E": {86, 68, 169},
	"F": {161, 58, 378},
	"G": {20, 16, 48},
	"H": {72, 64, 320},
}

func TestCatalogMatchesTable2(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.ID+"-"+spec.Name, func(t *testing.T) {
			cfg, err := spec.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			n, err := sim.Build(cfg)
			if err != nil {
				t.Fatalf("sim build: %v", err)
			}
			g := n.Topology()
			want := wantCounts[spec.ID]
			if got := len(cfg.Routers()); got != want.R {
				t.Errorf("routers = %d, want %d", got, want.R)
			}
			if got := len(cfg.Hosts()); got != want.H {
				t.Errorf("hosts = %d, want %d", got, want.H)
			}
			if got := g.NumEdges(); got != want.E {
				t.Errorf("links = %d, want %d", got, want.E)
			}
			if !g.RouterSubgraph().Connected() {
				t.Error("router graph disconnected")
			}
		})
	}
}

func TestCatalogFullReachability(t *testing.T) {
	for _, spec := range Catalog() {
		if spec.ID == "F" && testing.Short() {
			continue
		}
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			cfg, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			snap, err := sim.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hosts := cfg.Hosts()
			// Sample pairs for the big networks; all pairs for small.
			stride := 1
			if len(hosts) > 20 {
				stride = 7
			}
			for i := 0; i < len(hosts); i += stride {
				for j := 0; j < len(hosts); j += stride {
					if i == j {
						continue
					}
					ps := snap.Trace(hosts[i], hosts[j])
					ok := false
					for _, p := range ps {
						if p.Status == sim.Delivered {
							ok = true
						} else {
							t.Fatalf("%s→%s has non-delivered path %v", hosts[i], hosts[j], p)
						}
					}
					if !ok {
						t.Fatalf("%s→%s unreachable", hosts[i], hosts[j])
					}
				}
			}
		})
	}
}

func TestZooNetDeterministic(t *testing.T) {
	a, err := Bics()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bics()
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Render(), b.Render()
	for name, text := range ra {
		if rb[name] != text {
			t.Fatalf("device %s differs across builds", name)
		}
	}
}

func TestZooNetEdgeCountError(t *testing.T) {
	if _, err := zooNet(10, 5, 3, 1); err == nil {
		t.Fatal("expected error when links < ring size")
	}
}

func TestFatTreeECMP(t *testing.T) {
	cfg, err := FatTree04()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-pod traffic in a fat-tree must load-balance over multiple
	// equal-cost paths.
	ps := snap.Trace("h0-0-0", "h3-1-1")
	if len(ps) < 2 {
		t.Fatalf("expected ECMP across pods, got %d paths", len(ps))
	}
	for _, p := range ps {
		if p.Status != sim.Delivered {
			t.Fatalf("bad path %v", p)
		}
	}
	// Same-edge traffic stays local.
	local := snap.Trace("h0-0-0", "h0-0-1")
	if len(local) != 1 || len(local[0].Hops) != 3 {
		t.Fatalf("same-edge path = %v", local)
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("FatTree04"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(OSPF)
	b.Router("r1").Router("r1")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate router accepted")
	}
	b2 := NewBuilder(BGPOSPF)
	b2.RouterAS("r1", 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("BGP router without ASN accepted")
	}
	b3 := NewBuilder(OSPF)
	b3.Link("missing", "also-missing")
	if _, err := b3.Build(); err == nil {
		t.Fatal("link between unknown routers accepted")
	}
}

func TestHostPrefixOf(t *testing.T) {
	cfg, err := Enterprise()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := HostPrefixOf(cfg, "h1"); !ok {
		t.Fatal("host prefix missing")
	}
	if _, ok := HostPrefixOf(cfg, "r1"); ok {
		t.Fatal("router should not have a host prefix")
	}
	if _, ok := HostPrefixOf(cfg, "nope"); ok {
		t.Fatal("unknown device should not have a host prefix")
	}
}

func TestSmallCatalog(t *testing.T) {
	small := SmallCatalog()
	if len(small) != 4 {
		t.Fatalf("small catalog = %d entries", len(small))
	}
	want := map[string]bool{"A": true, "B": true, "C": true, "G": true}
	for _, s := range small {
		if !want[s.ID] {
			t.Fatalf("unexpected entry %s", s.ID)
		}
	}
}

func TestEIGRPBuilder(t *testing.T) {
	b := NewBuilder(EIGRP)
	b.Router("r1").Router("r2")
	b.Link("r1", "r2")
	b.Host("h1", "r1").Host("h2", "r2")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.Device("r1")
	if d.EIGRP == nil || d.EIGRP.ASN != 100 {
		t.Fatalf("EIGRP process missing: %+v", d)
	}
	if len(d.EIGRP.Networks) != 2 { // link + host LAN
		t.Fatalf("EIGRP networks = %v", d.EIGRP.Networks)
	}
	snap, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := snap.Trace("h1", "h2")
	if len(ps) != 1 || ps[0].Status != sim.Delivered {
		t.Fatalf("EIGRP network unreachable: %v", ps)
	}
}

func TestGeneratedConfigsParse(t *testing.T) {
	cfg, err := University()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := config.ParseNetwork(cfg.Render())
	if err != nil {
		t.Fatalf("generated configs do not parse: %v", err)
	}
	if len(parsed.Devices) != len(cfg.Devices) {
		t.Fatalf("device count changed across parse")
	}
}
