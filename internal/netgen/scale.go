package netgen

import (
	"fmt"
	"math/rand"

	"confmask/internal/config"
)

// This file holds the scale-evaluation generators: networks an order of
// magnitude beyond the paper's Table 2, used by the thousand-router-scale
// benchmark (`confmask-bench -only scale`) and the partition-parallel
// anonymization tests. They are deliberately not part of Catalog() —
// every existing experiment and pinned test keeps its exact network set —
// but ByID resolves them, so the daemon and CLI can submit them directly.

// ScaleCatalog returns the scale-evaluation networks, smallest first.
func ScaleCatalog() []Spec {
	return []Spec{
		{ID: "S1", Name: "FatTree16", Type: "OSPF", Build: FatTree16},
		{ID: "S2", Name: "MultiRegion10x30", Type: "OSPF", Build: MultiRegion10x30},
		{ID: "S3", Name: "FatTree32", Type: "OSPF", Build: FatTree32},
		{ID: "S4", Name: "MultiRegion32x32", Type: "OSPF", Build: MultiRegion32x32},
	}
}

// FatTree16 is a 16-pod fat-tree with 16 core routers: 272 routers
// (16 core + 128 aggregation + 128 edge), 256 hosts, 2304 links.
func FatTree16() (*config.Network, error) { return fatTree(16, 16) }

// FatTree32 is a 32-pod fat-tree with 32 core routers: 1056 routers
// (32 core + 512 aggregation + 512 edge), 1024 hosts, 17408 links — the
// thousand-router point of the scale trajectory.
func FatTree32() (*config.Network, error) { return fatTree(32, 32) }

// MultiRegion10x30 is a 10-region carrier-style network of 300 routers
// and 100 hosts; see multiRegion.
func MultiRegion10x30() (*config.Network, error) { return multiRegion(10, 30, 10, 0x4E57) }

// MultiRegion32x32 is a 32-region network of 1024 routers and 128 hosts.
func MultiRegion32x32() (*config.Network, error) { return multiRegion(32, 32, 4, 0x7A11) }

// multiRegion deterministically generates an OSPF network shaped like a
// multi-region Topology-Zoo carrier: `regions` regions of `perRegion`
// routers each. Router 0 of a region is its gateway POP: it connects to
// every third interior router of its own region and carries all
// inter-region traffic over a backbone ring (plus a few seeded backbone
// chords) between gateways. Interior routers form a ring with seeded
// chords, like zooNet. Hosts spread round-robin across each region's
// interior routers.
//
// The shape is what the partition-parallel anonymizer is built for:
// gateways are the only high-degree routers, and removing them leaves one
// connected component per region with no cross-region edges.
func multiRegion(regions, perRegion, hostsPerRegion int, seed int64) (*config.Network, error) {
	if regions < 2 || perRegion < 6 {
		return nil, fmt.Errorf("netgen: multiRegion needs ≥ 2 regions of ≥ 6 routers, got %d×%d", regions, perRegion)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(OSPF)
	name := func(r, i int) string { return fmt.Sprintf("mr%02d-%03d", r, i) }
	for r := 0; r < regions; r++ {
		for i := 0; i < perRegion; i++ {
			b.Router(name(r, i))
		}
	}
	costs := []int{0, 0, 1, 5, 20}
	used := make(map[[2]string]bool)
	link := func(a, c string) bool {
		k := [2]string{a, c}
		if a > c {
			k = [2]string{c, a}
		}
		if used[k] {
			return false
		}
		used[k] = true
		w := costs[rng.Intn(len(costs))]
		b.LinkCost(a, c, w, w)
		return true
	}
	for r := 0; r < regions; r++ {
		gw := name(r, 0)
		// Interior ring over routers 1..perRegion-1.
		for i := 1; i < perRegion; i++ {
			j := i + 1
			if j == perRegion {
				j = 1
			}
			link(name(r, i), name(r, j))
		}
		// Gateway uplinks: every third interior router homes to the POP.
		for i := 1; i < perRegion; i += 3 {
			link(gw, name(r, i))
		}
		// A few seeded interior chords for degree diversity.
		interior := perRegion - 1
		for c := 0; c < interior/6; {
			i := 1 + rng.Intn(interior)
			step := 2 + rng.Intn(interior-3)
			j := 1 + (i-1+step)%interior
			if link(name(r, i), name(r, j)) {
				c++
			}
		}
	}
	// Backbone ring over gateways, plus seeded chords between non-adjacent
	// gateways.
	for r := 0; r < regions; r++ {
		link(name(r, 0), name((r+1)%regions, 0))
	}
	for c := 0; c < regions/3; {
		r1 := rng.Intn(regions)
		r2 := (r1 + 2 + rng.Intn(regions-3)) % regions
		if link(name(r1, 0), name(r2, 0)) {
			c++
		}
	}
	for r := 0; r < regions; r++ {
		for h := 0; h < hostsPerRegion; h++ {
			b.Host(fmt.Sprintf("mh%02d-%03d", r, h), name(r, 1+h%(perRegion-1)))
		}
	}
	return b.Build()
}
