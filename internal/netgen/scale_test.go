package netgen

import (
	"fmt"
	"testing"

	"confmask/internal/sim"
)

// TestFatTreeInvariants pins the closed-form counts of fatTree(k, c):
// c core + k·(k/2) aggregation + k·(k/2) edge routers, two hosts per edge
// router, and k·(k/2)² edge-agg + k·(k/2)·(c/2) agg-core + k² host links.
func TestFatTreeInvariants(t *testing.T) {
	for _, tc := range []struct{ k, c int }{{4, 4}, {8, 8}, {16, 16}} {
		tc := tc
		t.Run(fmt.Sprintf("k%d", tc.k), func(t *testing.T) {
			t.Parallel()
			cfg, err := fatTree(tc.k, tc.c)
			if err != nil {
				t.Fatal(err)
			}
			n, err := sim.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			g := n.Topology()
			half := tc.k / 2
			wantR := tc.c + 2*tc.k*half
			wantH := 2 * tc.k * half
			wantE := tc.k*half*half + tc.k*half*(tc.c/2) + wantH
			if got := len(cfg.Routers()); got != wantR {
				t.Errorf("routers = %d, want %d", got, wantR)
			}
			if got := len(cfg.Hosts()); got != wantH {
				t.Errorf("hosts = %d, want %d", got, wantH)
			}
			if got := g.NumEdges(); got != wantE {
				t.Errorf("links = %d, want %d", got, wantE)
			}
			if !g.RouterSubgraph().Connected() {
				t.Error("router graph disconnected")
			}
		})
	}
}

// TestMultiRegionInvariants pins the multi-region generator's counts:
// every link-placement loop retries until its quota of distinct links is
// placed, so the totals are exact, not probabilistic.
func TestMultiRegionInvariants(t *testing.T) {
	for _, tc := range []struct {
		regions, perRegion, hosts int
		seed                      int64
	}{
		{10, 30, 10, 0x4E57}, // MultiRegion10x30
		{32, 32, 4, 0x7A11},  // MultiRegion32x32
		{4, 12, 6, 42},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%dx%d", tc.regions, tc.perRegion), func(t *testing.T) {
			t.Parallel()
			cfg, err := multiRegion(tc.regions, tc.perRegion, tc.hosts, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			n, err := sim.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			g := n.Topology()
			interior := tc.perRegion - 1
			uplinks := (interior-1)/3 + 1 // i = 1, 4, 7, ...
			perRegionLinks := interior + uplinks + interior/6
			wantE := tc.regions*perRegionLinks + tc.regions + tc.regions/3 + tc.regions*tc.hosts
			if got := len(cfg.Routers()); got != tc.regions*tc.perRegion {
				t.Errorf("routers = %d, want %d", got, tc.regions*tc.perRegion)
			}
			if got := len(cfg.Hosts()); got != tc.regions*tc.hosts {
				t.Errorf("hosts = %d, want %d", got, tc.regions*tc.hosts)
			}
			if got := g.NumEdges(); got != wantE {
				t.Errorf("links = %d, want %d", got, wantE)
			}
			if !g.RouterSubgraph().Connected() {
				t.Error("router graph disconnected")
			}
		})
	}
}

// TestScaleCatalogReachability asserts pairwise reachability on the
// data plane of the scale networks small enough for CI: every sampled
// ordered host pair has only delivered paths. The thousand-router entries
// are covered at build level by the invariant tests.
func TestScaleCatalogReachability(t *testing.T) {
	for _, spec := range ScaleCatalog() {
		if spec.Name == "FatTree32" || spec.Name == "MultiRegion32x32" {
			continue // thousand-router scale: benchmark territory, not unit tests
		}
		if testing.Short() && spec.Name != "MultiRegion10x30" {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			snap, err := sim.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hosts := cfg.Hosts()
			stride := 1
			if len(hosts) > 20 {
				stride = 7
			}
			for i := 0; i < len(hosts); i += stride {
				for j := 0; j < len(hosts); j += stride {
					if i == j {
						continue
					}
					ps := snap.Trace(hosts[i], hosts[j])
					ok := false
					for _, p := range ps {
						if p.Status == sim.Delivered {
							ok = true
						} else {
							t.Fatalf("%s→%s has non-delivered path %v", hosts[i], hosts[j], p)
						}
					}
					if !ok {
						t.Fatalf("%s→%s unreachable", hosts[i], hosts[j])
					}
				}
			}
		})
	}
}

// TestMultiRegionDeterministic pins byte-identical regeneration.
func TestMultiRegionDeterministic(t *testing.T) {
	a, err := MultiRegion10x30()
	if err != nil {
		t.Fatal(err)
	}
	b, err := MultiRegion10x30()
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Render(), b.Render()
	if len(ra) != len(rb) {
		t.Fatal("device sets differ across builds")
	}
	for name, text := range ra {
		if rb[name] != text {
			t.Fatalf("device %s differs across builds", name)
		}
	}
}

// TestMultiRegionErrors covers the parameter guard.
func TestMultiRegionErrors(t *testing.T) {
	if _, err := multiRegion(1, 30, 2, 1); err == nil {
		t.Fatal("expected error for a single region")
	}
	if _, err := multiRegion(4, 3, 2, 1); err == nil {
		t.Fatal("expected error for tiny regions")
	}
}

// TestScaleByID makes the scale networks addressable like the Table 2
// catalog entries.
func TestScaleByID(t *testing.T) {
	for _, want := range []string{"FatTree16", "S2", "MultiRegion32x32"} {
		if _, err := ByID(want); err != nil {
			t.Fatalf("ByID(%q): %v", want, err)
		}
	}
}
