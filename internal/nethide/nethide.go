// Package nethide reimplements the topology-obfuscation core of NetHide
// (Meier et al., USENIX Security 2018), the data-plane anonymization
// baseline ConfMask is compared against in Figs. 8–9 of the paper.
//
// NetHide publishes a *virtual* topology V derived from the physical
// topology P and answers path queries (traceroute) from per-destination
// forwarding trees computed in V. Its objective trades security (reducing
// flow density over physical links so attackers cannot find bottlenecks)
// against usability (path similarity). The full system solves an ILP over
// candidate topologies; this reimplementation reproduces the behavioral
// property the comparison depends on: forwarding paths are recomputed in
// an obfuscated topology, so most host-to-host paths are *not* preserved
// exactly, and waypoint/load-balance specifications break (the paper
// measures ≤30% exactly-kept paths and ~65% kept specifications).
//
// The obfuscation here follows NetHide's link-level moves — adding virtual
// links between physically close routers (which shortens detours and
// flattens flow density) — selected greedily under a similarity budget
// rather than by ILP. See DESIGN.md for the substitution note.
package nethide

import (
	"math/rand"
	"sort"

	"confmask/internal/sim"
	"confmask/internal/topology"
)

// Options tunes the obfuscator.
type Options struct {
	// FlipFraction is the number of virtual links to add, as a fraction
	// of the physical router-link count. Default 0.4 with a minimum of 4
	// links, calibrated so path preservation stays under ~30% even on
	// the smallest evaluation networks, matching the paper's Fig. 8
	// observation about NetHide.
	FlipFraction float64
	// Seed drives candidate selection.
	Seed int64
}

// DefaultOptions mirrors the paper's comparison setting.
func DefaultOptions() Options { return Options{FlipFraction: 0.4} }

// Result is an obfuscated network view.
type Result struct {
	// Virtual is the published topology: all physical nodes, physical
	// links, plus the added virtual links.
	Virtual *topology.Graph
	// AddedLinks are the virtual links, in insertion order.
	AddedLinks []topology.Edge
	// next[dst][node] is the forwarding tree: the next hop of node toward
	// dst in the virtual topology.
	next map[string]map[string]string
}

// Obfuscate derives the virtual topology and forwarding trees from the
// physical topology g (routers and hosts as produced by sim's topology
// extraction).
func Obfuscate(g *topology.Graph, opts Options) *Result {
	if opts.FlipFraction <= 0 {
		opts.FlipFraction = DefaultOptions().FlipFraction
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	v := g.Clone()

	// Candidate virtual links: router pairs at physical distance 2 — the
	// links that reroute the most traffic while keeping paths plausible
	// (NetHide's accuracy metric favors small path edits).
	routers := v.NodesOf(topology.Router)
	var cands []topology.Edge
	seen := make(map[topology.Edge]bool)
	for _, r := range routers {
		for _, n1 := range g.Neighbors(r) {
			if g.KindOf(n1) != topology.Router {
				continue
			}
			for _, n2 := range g.Neighbors(n1) {
				if n2 == r || g.KindOf(n2) != topology.Router || g.HasEdge(r, n2) {
					continue
				}
				e := topology.CanonEdge(r, n2)
				if !seen[e] {
					seen[e] = true
					cands = append(cands, e)
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].A != cands[j].A {
			return cands[i].A < cands[j].A
		}
		return cands[i].B < cands[j].B
	})
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	budget := int(opts.FlipFraction * float64(g.RouterSubgraph().NumEdges()))
	if budget < 4 {
		budget = 4
	}
	res := &Result{Virtual: v}
	for _, e := range cands {
		if len(res.AddedLinks) >= budget {
			break
		}
		if err := v.AddEdge(e.A, e.B); err == nil {
			res.AddedLinks = append(res.AddedLinks, e)
		}
	}

	res.buildForwardingTrees()
	return res
}

// buildForwardingTrees computes, per destination node, a BFS shortest-path
// tree in the virtual topology with deterministic (lexicographic)
// tie-breaking — NetHide's per-destination forwarding-tree model.
func (r *Result) buildForwardingTrees() {
	r.next = make(map[string]map[string]string)
	for _, dst := range r.Virtual.Nodes() {
		nx := make(map[string]string)
		// BFS from dst; next hop of v toward dst is its BFS parent.
		depth := map[string]int{dst: 0}
		queue := []string{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range r.Virtual.Neighbors(cur) {
				// Hosts never forward transit traffic.
				if r.Virtual.KindOf(cur) == topology.Host && cur != dst {
					continue
				}
				if _, ok := depth[nb]; ok {
					continue
				}
				depth[nb] = depth[cur] + 1
				nx[nb] = cur
				queue = append(queue, nb)
			}
		}
		r.next[dst] = nx
	}
}

// Path returns the claimed forwarding path from src to dst in the virtual
// topology (inclusive of both endpoints), or nil when disconnected.
func (r *Result) Path(src, dst string) []string {
	nx := r.next[dst]
	if nx == nil {
		return nil
	}
	path := []string{src}
	cur := src
	for cur != dst {
		n, ok := nx[cur]
		if !ok {
			return nil
		}
		path = append(path, n)
		cur = n
		if len(path) > r.Virtual.NumNodes() {
			return nil
		}
	}
	return path
}

// TraceFrom answers a single path query in the simulator's form, making
// Result a spec.PathOracle so the same specification miner runs on
// NetHide and ConfMask outputs.
func (r *Result) TraceFrom(src, dst string) []sim.Path {
	if p := r.Path(src, dst); p != nil {
		return []sim.Path{{Hops: p, Status: sim.Delivered}}
	}
	return []sim.Path{{Hops: []string{src}, Status: sim.BlackHoled}}
}

// DataPlane exposes the obfuscated paths for every ordered pair of the
// given hosts in the simulator's data-plane form, so the same spec-mining
// and path-comparison machinery applies to NetHide and ConfMask outputs.
func (r *Result) DataPlane(hosts []string) *sim.DataPlane {
	dp := &sim.DataPlane{Pairs: make(map[sim.Pair][]sim.Path)}
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			key := sim.Pair{Src: s, Dst: d}
			if p := r.Path(s, d); p != nil {
				dp.Pairs[key] = []sim.Path{{Hops: p, Status: sim.Delivered}}
			} else {
				dp.Pairs[key] = []sim.Path{{Hops: []string{s}, Status: sim.BlackHoled}}
			}
		}
	}
	return dp
}
