package nethide

import (
	"testing"

	"confmask/internal/netgen"
	"confmask/internal/sim"
	"confmask/internal/topology"
)

func fatTreeTopo(t *testing.T) (*topology.Graph, *sim.DataPlane, []string) {
	t.Helper()
	cfg, err := netgen.FatTree04()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snap.Net.Topology(), snap.ExtractDataPlane(), cfg.Hosts()
}

func TestObfuscateAddsVirtualLinks(t *testing.T) {
	g, _, _ := fatTreeTopo(t)
	res := Obfuscate(g, Options{Seed: 1})
	if len(res.AddedLinks) == 0 {
		t.Fatal("no virtual links added")
	}
	// Virtual topology is a supergraph of the physical one.
	for _, e := range g.Edges() {
		if !res.Virtual.HasEdge(e.A, e.B) {
			t.Fatalf("physical edge %v missing from virtual topology", e)
		}
	}
	// Every added link is genuinely new and router-to-router.
	for _, e := range res.AddedLinks {
		if g.HasEdge(e.A, e.B) {
			t.Fatalf("added link %v already existed", e)
		}
		if res.Virtual.KindOf(e.A) != topology.Router || res.Virtual.KindOf(e.B) != topology.Router {
			t.Fatalf("added link %v touches a host", e)
		}
	}
}

func TestForwardingTreesDeliver(t *testing.T) {
	g, _, hosts := fatTreeTopo(t)
	res := Obfuscate(g, Options{Seed: 2})
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			p := res.Path(s, d)
			if p == nil {
				t.Fatalf("no path %s→%s", s, d)
			}
			if p[0] != s || p[len(p)-1] != d {
				t.Fatalf("bad endpoints %v", p)
			}
			// No transit through other hosts.
			for _, hop := range p[1 : len(p)-1] {
				if res.Virtual.KindOf(hop) == topology.Host {
					t.Fatalf("path %v transits host %s", p, hop)
				}
			}
		}
	}
}

func TestObfuscationBreaksMostPaths(t *testing.T) {
	g, origDP, hosts := fatTreeTopo(t)
	res := Obfuscate(g, Options{Seed: 3})
	kept := sim.ExactlyKeptFraction(origDP, res.DataPlane(hosts), hosts)
	if kept > 0.3 {
		t.Fatalf("NetHide kept %.0f%% of paths; the paper's comparison expects <30%%", 100*kept)
	}
}

func TestObfuscateDeterministic(t *testing.T) {
	g, _, _ := fatTreeTopo(t)
	a := Obfuscate(g, Options{Seed: 42})
	b := Obfuscate(g, Options{Seed: 42})
	if len(a.AddedLinks) != len(b.AddedLinks) {
		t.Fatal("nondeterministic link count")
	}
	for i := range a.AddedLinks {
		if a.AddedLinks[i] != b.AddedLinks[i] {
			t.Fatal("nondeterministic link selection")
		}
	}
}

func TestObfuscateDoesNotMutateInput(t *testing.T) {
	g, _, _ := fatTreeTopo(t)
	edges := g.NumEdges()
	Obfuscate(g, Options{Seed: 5})
	if g.NumEdges() != edges {
		t.Fatal("physical topology mutated")
	}
}

func TestDataPlaneDisconnected(t *testing.T) {
	g := topology.New()
	g.AddNode("r1", topology.Router)
	g.AddNode("r2", topology.Router)
	g.AddNode("ha", topology.Host)
	g.AddNode("hb", topology.Host)
	_ = g.AddEdge("ha", "r1")
	_ = g.AddEdge("hb", "r2") // r1 and r2 are not connected
	res := Obfuscate(g, Options{Seed: 1, FlipFraction: 0.5})
	dp := res.DataPlane([]string{"ha", "hb"})
	ps := dp.Pairs[sim.Pair{Src: "ha", Dst: "hb"}]
	if len(ps) != 1 || ps[0].Status != sim.BlackHoled {
		t.Fatalf("expected black hole for disconnected pair, got %v", ps)
	}
}
