package query

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"confmask/internal/config"
	"confmask/internal/sim"
)

// Options configures an Engine.
type Options struct {
	// Baseline is the original (pre-anonymization) network's snapshot;
	// required for pathdiff queries, unused otherwise.
	Baseline *sim.Snapshot
	// Workers bounds the fan-out of Run; 0 selects GOMAXPROCS. As
	// everywhere in this codebase, parallelism never changes results:
	// workers fill index-addressed slots.
	Workers int
	// Timeout is the per-query budget; a query that exceeds it reports an
	// error Result instead of an answer. Zero means no limit.
	Timeout time.Duration
}

// Engine answers verification queries over a simulated snapshot. All
// answers are served from the snapshot's per-destination path engines, so
// repeated queries toward the same destination share enumeration work and
// a warmed engine answers batches in cache-lookup time.
type Engine struct {
	snap      *sim.Snapshot
	base      *sim.Snapshot
	hosts     map[string]bool
	baseHosts map[string]bool
	workers   int
	timeout   time.Duration
	queries   atomic.Int64
}

// New builds an engine over snap.
func New(snap *sim.Snapshot, opts Options) *Engine {
	hostSet := func(s *sim.Snapshot) map[string]bool {
		if s == nil {
			return nil
		}
		m := make(map[string]bool)
		for _, h := range s.Hosts() {
			m[h] = true
		}
		return m
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		snap:      snap,
		base:      opts.Baseline,
		hosts:     hostSet(snap),
		baseHosts: hostSet(opts.Baseline),
		workers:   w,
		timeout:   opts.Timeout,
	}
}

// FromConfigs parses a rendered configuration set (Cisco-IOS-style or
// Junos-style, auto-detected off the lexicographically first file) and
// simulates it, returning the snapshot an Engine serves from. This is how
// the daemon rebuilds query state from a journaled job: the original
// request configs and the anonymized result configs are both plain text.
func FromConfigs(configs map[string]string, parallelism int) (*sim.Snapshot, error) {
	if len(configs) == 0 {
		return nil, errors.New("query: empty configuration set")
	}
	keys := make([]string, 0, len(configs))
	for k := range configs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var net *config.Network
	var err error
	if config.DetectSyntax(configs[keys[0]]) == "junos" {
		net, err = config.ParseJunosNetwork(configs)
	} else {
		net, err = config.ParseNetwork(configs)
	}
	if err != nil {
		return nil, err
	}
	return sim.SimulateOpts(net, sim.Options{Parallelism: parallelism})
}

// Stats reports work counters: total queries evaluated, and how the
// snapshot served what-if traces (see sim.WhatIfStats).
type Stats struct {
	Queries        int64 `json:"queries"`
	WhatIfRetraced int64 `json:"whatif_retraced"`
	WhatIfReused   int64 `json:"whatif_reused"`
}

// Stats returns the engine's counters.
func (e *Engine) Stats() Stats {
	retraced, reused := e.snap.WhatIfStats()
	return Stats{Queries: e.queries.Load(), WhatIfRetraced: retraced, WhatIfReused: reused}
}

// Run answers a batch. Result i answers query i; the output is identical
// at any worker count, entry for entry — workers only fill
// index-addressed slots. Per-query failures (unknown device, malformed
// failure, timeout) land in Result.Error; Run itself never fails.
func (e *Engine) Run(ctx context.Context, qs []Query) []Result {
	out := make([]Result, len(qs))
	workers := e.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i := range qs {
			out[i] = e.eval(ctx, i, qs[i])
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				out[i] = e.eval(ctx, i, qs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// eval answers one query.
func (e *Engine) eval(ctx context.Context, idx int, q Query) Result {
	e.queries.Add(1)
	r := Result{Index: idx, ID: q.ID, Kind: q.Kind}
	if e.timeout != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	if err := e.validate(q); err != nil {
		r.Error = err.Error()
		return r
	}
	if err := ctx.Err(); err != nil {
		r.Error = "query aborted: " + err.Error()
		return r
	}
	switch q.Kind {
	case Reachability:
		ps := e.snap.TraceFrom(q.Src, q.Dst)
		r.Status, r.Delivered = classify(ps)
		r.Paths = len(ps)
		r.Holds = r.Delivered > 0
	case Isolation:
		ps := e.snap.TraceFrom(q.Src, q.Dst)
		r.Status, r.Delivered = classify(ps)
		r.Paths = len(ps)
		r.Holds = r.Delivered == 0
	case Waypoint:
		ps := e.snap.TraceFrom(q.Src, q.Dst)
		r.Status, r.Delivered = classify(ps)
		r.Paths = len(ps)
		r.Holds = r.Delivered > 0
		for _, p := range ps {
			if p.Status != sim.Delivered {
				continue
			}
			through := false
			for _, h := range p.Hops {
				if h == q.Via {
					through = true
					break
				}
			}
			if !through {
				r.Holds = false
				break
			}
		}
	case PathDiff:
		anon := e.snap.TraceFrom(q.Src, q.Dst)
		if err := ctx.Err(); err != nil {
			r.Error = "query aborted: " + err.Error()
			return r
		}
		orig := e.base.TraceFrom(q.Src, q.Dst)
		r.Status, r.Delivered = classify(anon)
		r.Paths = len(anon)
		r.Holds = samePathSets(orig, anon)
	case WhatIf:
		f, err := q.failure()
		if err != nil {
			r.Error = err.Error()
			return r
		}
		baseline := e.snap.TraceFrom(q.Src, q.Dst)
		if err := ctx.Err(); err != nil {
			r.Error = "query aborted: " + err.Error()
			return r
		}
		ps := e.snap.TraceUnderFailure(q.Src, q.Dst, f)
		r.Status, r.Delivered = classify(ps)
		r.Paths = len(ps)
		r.Holds = r.Delivered > 0
		r.Changed = !samePathSets(baseline, ps)
	}
	return r
}

// validate rejects malformed queries with per-query errors. Device
// membership is checked against the snapshot's shared device table
// (sim.Snapshot.HasDevice), never by probing FIBs.
func (e *Engine) validate(q Query) error {
	switch q.Kind {
	case Reachability, Waypoint, PathDiff, Isolation, WhatIf:
	case "":
		return errors.New("missing kind")
	default:
		return fmt.Errorf("unknown kind %q", q.Kind)
	}
	if q.Src == "" || q.Dst == "" {
		return errors.New("src and dst are required")
	}
	if !e.snap.HasDevice(q.Src) {
		return fmt.Errorf("unknown src device %q", q.Src)
	}
	if !e.hosts[q.Dst] {
		return fmt.Errorf("dst %q is not a host", q.Dst)
	}
	switch q.Kind {
	case Waypoint:
		if q.Via == "" {
			return errors.New("waypoint query needs via")
		}
		if !e.snap.HasDevice(q.Via) {
			return fmt.Errorf("unknown via device %q", q.Via)
		}
	case PathDiff:
		if e.base == nil {
			return errors.New("pathdiff needs a baseline (original) snapshot")
		}
		if !e.base.HasDevice(q.Src) {
			return fmt.Errorf("src %q not in the original network", q.Src)
		}
		if !e.baseHosts[q.Dst] {
			return fmt.Errorf("dst %q not a host of the original network", q.Dst)
		}
	case WhatIf:
		f, err := q.failure()
		if err != nil {
			return err
		}
		for _, dev := range []string{f.Node, f.LinkA, f.LinkB} {
			if dev != "" && !e.snap.HasDevice(dev) {
				return fmt.Errorf("unknown failed device %q", dev)
			}
		}
	}
	return nil
}
