// Package query is the privacy-preserving verification query engine: it
// answers batches of verification predicates over the cached data-plane
// snapshots of a completed anonymization job, without re-simulation.
//
// This is the consumer side of ConfMask's bargain (and the direction
// Seagull frames as privacy-preserving network verification): the party
// receiving anonymized configurations should be able to *verify*
// properties — reachability, waypointing, isolation, behavior under
// failure — against the shared network, and those answers should match
// the hidden original often enough to be useful. The engine serves every
// predicate from the Snapshot's per-destination path engines, so a batch
// costs cache lookups, not simulations; the attacker-vs-verifier
// benchmark (internal/experiments) quantifies how much utility survives
// each anonymization setting against how much an attacker recovers.
package query

import (
	"fmt"
	"strings"

	"confmask/internal/sim"
)

// Kind names a verification predicate.
type Kind string

const (
	// Reachability asks whether at least one forwarding path from Src is
	// delivered to Dst.
	Reachability Kind = "reachability"
	// Waypoint asks whether Src can reach Dst AND every delivered path
	// traverses the device Via.
	Waypoint Kind = "waypoint"
	// PathDiff asks whether the original and anonymized networks forward
	// Src→Dst along byte-identical path sets (requires an engine built
	// with a baseline snapshot).
	PathDiff Kind = "pathdiff"
	// Isolation asks whether no delivered path exists from Src to Dst.
	Isolation Kind = "isolation"
	// WhatIf asks whether Src still reaches Dst after a single link or
	// node failure, with the pre-failure FIBs (no reconvergence — see
	// sim.TraceUnderFailure for the failure model).
	WhatIf Kind = "whatif"
)

// Query is one verification predicate. Src may be any device (host or
// router); Dst must be a host. Via (waypoint) is any device. Exactly one
// of FailNode / FailLink is required for whatif; FailLink is written
// "a<->b".
type Query struct {
	ID       string `json:"id,omitempty"`
	Kind     Kind   `json:"kind"`
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	Via      string `json:"via,omitempty"`
	FailNode string `json:"fail_node,omitempty"`
	FailLink string `json:"fail_link,omitempty"`
}

// failure derives the sim failure from the whatif fields.
func (q Query) failure() (sim.Failure, error) {
	var f sim.Failure
	f.Node = q.FailNode
	if q.FailLink != "" {
		a, b, ok := strings.Cut(q.FailLink, "<->")
		if !ok {
			return f, fmt.Errorf("fail_link %q: want \"a<->b\"", q.FailLink)
		}
		f.LinkA, f.LinkB = a, b
	}
	if err := f.Validate(); err != nil {
		return f, err
	}
	return f, nil
}

// Result is the engine's answer to one query. Holds is the predicate
// verdict; Status classifies the (anonymized-side) path set as delivered,
// blackholed, looped, mixed, or none; Changed is whatif-only and reports
// whether the failure altered the path set at all. A malformed query gets
// Error set and zero values elsewhere — errors are per-query, never
// batch-fatal, so batches answer deterministically regardless of which
// entries are valid.
type Result struct {
	Index     int    `json:"index"`
	ID        string `json:"id,omitempty"`
	Kind      Kind   `json:"kind"`
	Holds     bool   `json:"holds"`
	Status    string `json:"status,omitempty"`
	Paths     int    `json:"paths,omitempty"`
	Delivered int    `json:"delivered,omitempty"`
	Changed   bool   `json:"changed,omitempty"`
	Error     string `json:"error,omitempty"`
}

// classify summarizes a canonical path set.
func classify(ps []sim.Path) (status string, delivered int) {
	if len(ps) == 0 {
		return "none", 0
	}
	counts := [3]int{}
	for _, p := range ps {
		switch p.Status {
		case sim.Delivered:
			counts[0]++
		case sim.Looped:
			counts[1]++
		default:
			counts[2]++
		}
	}
	switch {
	case counts[0] == len(ps):
		return "delivered", counts[0]
	case counts[1] == len(ps):
		return "looped", 0
	case counts[2] == len(ps):
		return "blackholed", 0
	default:
		return "mixed", counts[0]
	}
}

// samePathSets reports whether two canonical (sorted) path lists are
// identical.
func samePathSets(a, b []sim.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}
