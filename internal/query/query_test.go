package query

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"confmask/internal/netgen"
	"confmask/internal/sim"
)

func mustSnap(t testing.TB, name string, parallelism int) *sim.Snapshot {
	t.Helper()
	spec, err := netgen.ByID(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sim.SimulateOpts(cfg, sim.Options{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// mixedBatch builds a deterministic batch cycling through every kind,
// drawn from the snapshot's real hosts, devices, and links. PathDiff
// queries are emitted only when withDiff is set (the engine then needs a
// baseline).
func mixedBatch(snap *sim.Snapshot, n int, seed int64, withDiff bool) []Query {
	rng := rand.New(rand.NewSource(seed))
	hosts := snap.Hosts()
	devices := snap.Devices()
	links := snap.Net.Links
	pair := func() (string, string) {
		s := hosts[rng.Intn(len(hosts))]
		d := hosts[rng.Intn(len(hosts))]
		for d == s {
			d = hosts[rng.Intn(len(hosts))]
		}
		return s, d
	}
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		src, dst := pair()
		q := Query{ID: fmt.Sprintf("q%04d", i), Src: src, Dst: dst}
		switch i % 5 {
		case 0:
			q.Kind = Reachability
		case 1:
			q.Kind = Waypoint
			q.Via = devices[rng.Intn(len(devices))]
		case 2:
			q.Kind = Isolation
		case 3:
			q.Kind = WhatIf
			if rng.Intn(2) == 0 && len(links) > 0 {
				l := links[rng.Intn(len(links))]
				q.FailLink = l.A.Device + "<->" + l.B.Device
			} else {
				q.FailNode = devices[rng.Intn(len(devices))]
			}
		case 4:
			if withDiff {
				q.Kind = PathDiff
			} else {
				q.Kind = Reachability
			}
		}
		out = append(out, q)
	}
	return out
}

// TestWaypointECMPFanOut pins waypoint semantics on the fat-tree's ECMP
// spread: cross-pod traffic fans out over both pod aggregation routers,
// so no single aggregation router is a waypoint, while the shared edge
// routers are.
func TestWaypointECMPFanOut(t *testing.T) {
	snap := mustSnap(t, "G", 0) // FatTree04
	e := New(snap, Options{})
	ctx := context.Background()

	// Sanity: the pair actually fans out.
	if ps := snap.Trace("h0-0-0", "h3-1-1"); len(ps) < 2 {
		t.Fatalf("expected ECMP fan-out, got %d paths", len(ps))
	}

	run1 := func(q Query) Result {
		rs := e.Run(ctx, []Query{q})
		if rs[0].Error != "" {
			t.Fatalf("query %+v errored: %s", q, rs[0].Error)
		}
		return rs[0]
	}

	// The source's edge router is on every path.
	r := run1(Query{Kind: Waypoint, Src: "h0-0-0", Dst: "h3-1-1", Via: "edge0-0"})
	if !r.Holds {
		t.Fatalf("edge0-0 should be a waypoint for h0-0-0->h3-1-1: %+v", r)
	}
	// The destination's edge router too.
	r = run1(Query{Kind: Waypoint, Src: "h0-0-0", Dst: "h3-1-1", Via: "edge3-1"})
	if !r.Holds {
		t.Fatalf("edge3-1 should be a waypoint: %+v", r)
	}
	// No single aggregation router catches all ECMP branches.
	for _, via := range []string{"agg0-0", "agg0-1", "agg3-0", "agg3-1"} {
		r = run1(Query{Kind: Waypoint, Src: "h0-0-0", Dst: "h3-1-1", Via: via})
		if r.Holds {
			t.Fatalf("%s must not be a waypoint under ECMP fan-out", via)
		}
	}
	// Same-edge traffic never climbs to the core.
	r = run1(Query{Kind: Waypoint, Src: "h0-0-0", Dst: "h0-0-1", Via: "core0"})
	if r.Holds {
		t.Fatal("core0 must not be a waypoint for same-edge traffic")
	}
	if r.Delivered == 0 {
		t.Fatal("same-edge traffic should be delivered")
	}
}

// TestWhatIfQuerySemantics exercises the failure model through the query
// layer: ECMP absorbs a single aggregation link failure, while failing
// the destination's only edge router black-holes the pair.
func TestWhatIfQuerySemantics(t *testing.T) {
	snap := mustSnap(t, "G", 0)
	e := New(snap, Options{})
	ctx := context.Background()

	rs := e.Run(ctx, []Query{
		{Kind: WhatIf, Src: "h0-0-0", Dst: "h3-1-1", FailLink: "edge0-0<->agg0-0"},
		{Kind: WhatIf, Src: "h0-0-0", Dst: "h3-1-1", FailNode: "edge3-1"},
		{Kind: WhatIf, Src: "h0-0-0", Dst: "h0-0-1", FailNode: "core0"},
	})
	for i, r := range rs {
		if r.Error != "" {
			t.Fatalf("query %d errored: %s", i, r.Error)
		}
	}
	// ECMP survives one agg link: still delivered, but the path set shrank.
	if !rs[0].Holds || !rs[0].Changed || rs[0].Status != "delivered" {
		t.Fatalf("agg-link failure: %+v, want holds+changed+delivered", rs[0])
	}
	// Losing the destination edge router is fatal.
	if rs[1].Holds || rs[1].Status != "blackholed" || !rs[1].Changed {
		t.Fatalf("edge failure: %+v, want blackholed", rs[1])
	}
	// Same-edge traffic never touches the core: unchanged.
	if !rs[2].Holds || rs[2].Changed {
		t.Fatalf("core failure must not affect same-edge traffic: %+v", rs[2])
	}
}

// TestBatchByteIdenticalAcrossParallelism is the determinism pin: the
// JSON-rendered batch results are byte-identical between a sequential
// engine over a sequentially simulated snapshot and a parallel engine
// over a parallel-simulated one.
func TestBatchByteIdenticalAcrossParallelism(t *testing.T) {
	batchOn := func(workers, parallelism int) []byte {
		snap := mustSnap(t, "G", parallelism)
		e := New(snap, Options{Workers: workers, Baseline: snap})
		qs := mixedBatch(snap, 400, 71, true)
		rs := e.Run(context.Background(), qs)
		buf, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	seq := batchOn(1, 1)
	par := batchOn(8, 0)
	if string(seq) != string(par) {
		t.Fatal("batch results differ between parallelism settings")
	}
}

// TestQueryValidationErrors checks that malformed queries fail per-query,
// deterministically, without poisoning the rest of the batch.
func TestQueryValidationErrors(t *testing.T) {
	snap := mustSnap(t, "A", 1)
	e := New(snap, Options{})
	hosts := snap.Hosts()
	rs := e.Run(context.Background(), []Query{
		{Kind: Reachability, Src: "nope", Dst: hosts[0]},
		{Kind: Reachability, Src: hosts[0], Dst: "router-not-host"},
		{Kind: Waypoint, Src: hosts[0], Dst: hosts[1]},
		{Kind: WhatIf, Src: hosts[0], Dst: hosts[1], FailLink: "garbled"},
		{Kind: WhatIf, Src: hosts[0], Dst: hosts[1]},
		{Kind: PathDiff, Src: hosts[0], Dst: hosts[1]},
		{Kind: "bogus", Src: hosts[0], Dst: hosts[1]},
		{Src: hosts[0], Dst: hosts[1]},
		{Kind: Reachability, Src: hosts[0], Dst: hosts[1]},
	})
	for i, r := range rs[:8] {
		if r.Error == "" {
			t.Fatalf("query %d should have errored: %+v", i, r)
		}
	}
	if rs[8].Error != "" || !rs[8].Holds {
		t.Fatalf("valid trailing query should still answer: %+v", rs[8])
	}
}

// TestQueryAbort covers the cancellation paths: an already-cancelled
// batch context and a negative per-query budget both yield per-query
// error results, never panics or partial batches.
func TestQueryAbort(t *testing.T) {
	snap := mustSnap(t, "A", 1)
	hosts := snap.Hosts()
	qs := []Query{{Kind: Reachability, Src: hosts[0], Dst: hosts[1]}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs := New(snap, Options{}).Run(ctx, qs)
	if rs[0].Error == "" {
		t.Fatalf("cancelled batch should error per query: %+v", rs[0])
	}

	rs = New(snap, Options{Timeout: -time.Nanosecond}).Run(context.Background(), qs)
	if rs[0].Error == "" {
		t.Fatalf("expired budget should error per query: %+v", rs[0])
	}
}

// TestThousandPredicateBatchFatTree08 is the acceptance criterion: a
// 1,000-predicate mixed batch on FatTree08 answered from a warmed
// snapshot must cost less than one full data-plane extraction, and its
// what-if queries must re-trace only dirty destinations.
func TestThousandPredicateBatchFatTree08(t *testing.T) {
	if testing.Short() {
		t.Skip("FatTree08 batch in -short mode")
	}
	// Fresh snapshot: time a full extraction (engine + memo build for all
	// 64 destinations).
	cold := mustSnap(t, "H", 0)
	start := time.Now()
	cold.ExtractDataPlane()
	extraction := time.Since(start)

	// The same snapshot is now warm: a mixed 1k batch must be cheaper
	// than the extraction that warmed it.
	e := New(cold, Options{Baseline: cold})
	qs := mixedBatch(cold, 1000, 2026, true)
	start = time.Now()
	rs := e.Run(context.Background(), qs)
	batch := time.Since(start)

	for i, r := range rs {
		if r.Error != "" {
			t.Fatalf("query %d errored: %s", i, r.Error)
		}
	}
	if batch >= extraction {
		t.Fatalf("1k-predicate batch took %v, want under one extraction (%v)", batch, extraction)
	}

	// What-if accounting: the batch contains ~200 what-if predicates; the
	// engine must have reused cached results for sources that provably
	// cannot reach the failure instead of re-tracing everything.
	st := e.Stats()
	whatifs := 0
	for _, q := range qs {
		if q.Kind == WhatIf {
			whatifs++
		}
	}
	if st.Queries != int64(len(qs)) {
		t.Fatalf("stats queries = %d, want %d", st.Queries, len(qs))
	}
	if st.WhatIfRetraced+st.WhatIfReused == 0 || st.WhatIfRetraced+st.WhatIfReused > int64(whatifs) {
		t.Fatalf("what-if counters %d/%d inconsistent with %d what-if queries",
			st.WhatIfRetraced, st.WhatIfReused, whatifs)
	}
	if st.WhatIfReused == 0 {
		t.Fatal("expected some what-if queries to reuse cached results (clean destinations)")
	}
	if st.WhatIfRetraced == 0 {
		t.Fatal("expected some what-if queries to re-trace (dirty destinations)")
	}
	t.Logf("extraction=%v batch=%v whatif retraced=%d reused=%d",
		extraction, batch, st.WhatIfRetraced, st.WhatIfReused)
}

// TestFromConfigs round-trips a rendered catalog network through the
// parse+simulate helper the daemon uses.
func TestFromConfigs(t *testing.T) {
	spec, err := netgen.ByID("A")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := FromConfigs(cfg.Render(), 1)
	if err != nil {
		t.Fatal(err)
	}
	hosts := snap.Hosts()
	if len(hosts) < 2 {
		t.Fatalf("expected hosts, got %v", hosts)
	}
	e := New(snap, Options{})
	rs := e.Run(context.Background(), []Query{{Kind: Reachability, Src: hosts[0], Dst: hosts[1]}})
	if rs[0].Error != "" {
		t.Fatalf("reachability on parsed net errored: %s", rs[0].Error)
	}

	if _, err := FromConfigs(nil, 1); err == nil {
		t.Fatal("empty config set should error")
	}
}

// BenchmarkQueryBatch measures a warmed 256-predicate mixed batch on
// FatTree04 — the per-query cost of the cache-lookup path.
func BenchmarkQueryBatch(b *testing.B) {
	spec, err := netgen.ByID("G")
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	snap, err := sim.SimulateOpts(cfg, sim.Options{Parallelism: 0})
	if err != nil {
		b.Fatal(err)
	}
	snap.ExtractDataPlane()
	e := New(snap, Options{Baseline: snap})
	qs := mixedBatch(snap, 256, 9, true)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(ctx, qs)
	}
}
