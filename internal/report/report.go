// Package report renders a human-readable audit of an anonymization run.
// Before sharing the output bundle, a data holder reviews: what was added
// (fake links, hosts, routers, filters), the utility cost, whether
// functional equivalence was re-verified, and — importantly — a
// self-check that runs this repository's de-anonymization attacks
// (internal/attack) against the about-to-be-shared configurations, so a
// leaky output (e.g. produced by a strawman strategy) is caught before it
// leaves the building.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"confmask/internal/anonymize"
	"confmask/internal/attack"
	"confmask/internal/config"
	"confmask/internal/sim"
	"confmask/internal/topology"
)

// Audit is the assembled review document data.
type Audit struct {
	GeneratedFor string // free-form label (e.g. input directory)
	Options      anonymize.Options
	Report       *anonymize.Report

	// Equivalent is true when re-simulation confirmed functional
	// equivalence; EquivalenceNote carries the failure detail otherwise.
	Equivalent      bool
	EquivalenceNote string

	// Self-check results over the anonymized output.
	UnconfiguredLinks []attack.LinkSuspicion
	DeadLinks         []attack.LinkSuspicion
	DeadLinkTruePos   int
	DenyPatternSites  int
	MaxReidentConf    float64

	Devices int
	Lines   config.Stats
}

// Build assembles an Audit for an anonymization run: orig and anon are the
// input and output networks, rep the pipeline report.
func Build(label string, orig, anon *config.Network, opts anonymize.Options, rep *anonymize.Report) (*Audit, error) {
	a := &Audit{
		GeneratedFor: label,
		Options:      opts,
		Report:       rep,
		Devices:      len(anon.Devices),
		Lines:        anon.LineStats(),
	}

	// Re-verify functional equivalence independently of the pipeline.
	so, err := sim.Simulate(orig)
	if err != nil {
		return nil, fmt.Errorf("report: simulate original: %w", err)
	}
	sa, err := sim.Simulate(anon)
	if err != nil {
		return nil, fmt.Errorf("report: simulate anonymized: %w", err)
	}
	hosts := orig.Hosts()
	diffs := sim.DiffPairs(so.DataPlaneFor(hosts), sa.DataPlaneFor(hosts), hosts)
	a.Equivalent = len(diffs) == 0
	if !a.Equivalent {
		a.EquivalenceNote = fmt.Sprintf("%d host pairs forward differently (first: %s→%s)", len(diffs), diffs[0].Src, diffs[0].Dst)
	}

	// Attack self-check.
	if a.UnconfiguredLinks, err = attack.UnconfiguredInterfaces(anon); err != nil {
		return nil, err
	}
	if a.DeadLinks, err = attack.LargeCostLinks(anon); err != nil {
		return nil, err
	}
	a.DeadLinkTruePos = attack.ScoreLinks(a.DeadLinks, rep.FakeEdges).TruePositives
	a.DenyPatternSites = len(attack.SharedDenyPattern(anon, 2))

	shared := sa.Net.Topology()
	for _, r := range shared.NodesOf(topology.Router) {
		if _, conf := attack.DegreeReidentification(shared, shared.RouterDegree(r)); conf > a.MaxReidentConf {
			a.MaxReidentConf = conf
		}
	}
	return a, nil
}

// BuildFromNetworks assembles an Audit when no pipeline report is at hand
// (e.g. auditing a bundle produced earlier): the change inventory is
// reconstructed by diffing the two networks. Timing and iteration counts
// are unavailable in this mode and render as zero.
func BuildFromNetworks(label string, orig, anon *config.Network, opts anonymize.Options) (*Audit, error) {
	so, err := sim.Build(orig)
	if err != nil {
		return nil, fmt.Errorf("report: original view: %w", err)
	}
	sa, err := sim.Build(anon)
	if err != nil {
		return nil, fmt.Errorf("report: anonymized view: %w", err)
	}
	ot := so.Topology()
	at := sa.Topology()

	rep := &anonymize.Report{
		AddedLines: anon.LineStats().Sub(orig.LineStats()),
		TotalLines: anon.LineStats().Total(),
		UC:         config.UtilityUC(orig, anon),
	}
	origRouters := make(map[string]bool)
	for _, r := range orig.Routers() {
		origRouters[r] = true
	}
	for _, e := range topology.DiffEdges(ot.RouterSubgraph(), at.RouterSubgraph()) {
		rep.FakeEdges = append(rep.FakeEdges, e)
	}
	origHosts := make(map[string]bool)
	for _, h := range orig.Hosts() {
		origHosts[h] = true
	}
	for _, h := range anon.Hosts() {
		if !origHosts[h] {
			rep.FakeHosts = append(rep.FakeHosts, h)
		}
	}
	for _, r := range anon.Routers() {
		if !origRouters[r] {
			rep.FakeRouters = append(rep.FakeRouters, r)
		}
	}
	rep.EquivFilters = rep.AddedLines.Filter
	return Build(label, orig, anon, opts, rep)
}

// Safe reports whether the audit found no red flags: equivalence holds, no
// fake link is identifiable by the structural attacks, and degree
// re-identification confidence stays within 1/k_R.
func (a *Audit) Safe() bool {
	return a.Equivalent &&
		len(a.UnconfiguredLinks) == 0 &&
		a.DeadLinkTruePos == 0 &&
		a.MaxReidentConf <= 1.0/float64(a.Options.KR)+1e-9
}

// Markdown renders the audit as a Markdown document.
func (a *Audit) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# ConfMask anonymization audit — %s\n\n", a.GeneratedFor)
	verdict := "**SAFE TO SHARE** (no red flags)"
	if !a.Safe() {
		verdict = "**REVIEW REQUIRED** (red flags below)"
	}
	fmt.Fprintf(&b, "Verdict: %s\n\n", verdict)

	b.WriteString("## Parameters\n\n")
	fmt.Fprintf(&b, "- k_R (topology anonymity): %d\n", a.Options.KR)
	fmt.Fprintf(&b, "- k_H (route anonymity): %d\n", a.Options.KH)
	fmt.Fprintf(&b, "- noise probability p: %g\n", a.Options.NoiseP)
	fmt.Fprintf(&b, "- strategy: %v; seed: %d\n", a.Options.Strategy, a.Options.Seed)
	if a.Options.FakeRouters > 0 {
		fmt.Fprintf(&b, "- scale obfuscation: %d fake routers\n", a.Options.FakeRouters)
	}

	b.WriteString("\n## What was added\n\n")
	fmt.Fprintf(&b, "- fake links: %d (%s)\n", len(a.Report.FakeEdges), edgeList(a.Report.FakeEdges, 6))
	fmt.Fprintf(&b, "- fake hosts: %d\n", len(a.Report.FakeHosts))
	if len(a.Report.FakeRouters) > 0 {
		fmt.Fprintf(&b, "- fake routers: %d (%s)\n", len(a.Report.FakeRouters), strings.Join(head(a.Report.FakeRouters, 6), ", "))
	}
	fmt.Fprintf(&b, "- route filters: %d equivalence + %d anonymity\n", a.Report.EquivFilters, a.Report.AnonFilters)
	fmt.Fprintf(&b, "- injected lines: %d interface, %d protocol, %d filter (U_C = %.3f over %d total lines)\n",
		a.Report.AddedLines.Interface, a.Report.AddedLines.Protocol, a.Report.AddedLines.Filter, a.Report.UC, a.Lines.Total())
	fmt.Fprintf(&b, "- pipeline time: %v (%d equivalence iterations)\n",
		a.Report.Timing.Total().Round(time.Millisecond), a.Report.EquivIterations)

	b.WriteString("\n## Utility: functional equivalence\n\n")
	if a.Equivalent {
		b.WriteString("- re-simulation confirms every original host-to-host path is preserved exactly\n")
	} else {
		fmt.Fprintf(&b, "- **FAILED**: %s\n", a.EquivalenceNote)
	}

	b.WriteString("\n## Privacy self-check (attacks run against the output)\n\n")
	flag := func(bad bool) string {
		if bad {
			return " ⚠"
		}
		return ""
	}
	fmt.Fprintf(&b, "- unconfigured-interface detection: %d links flagged%s\n", len(a.UnconfiguredLinks), flag(len(a.UnconfiguredLinks) > 0))
	fmt.Fprintf(&b, "- SPT dead-link detection: %d fake links identified (of %d flagged)%s\n", a.DeadLinkTruePos, len(a.DeadLinks), flag(a.DeadLinkTruePos > 0))
	fmt.Fprintf(&b, "- shared-deny-pattern sites: %d\n", a.DenyPatternSites)
	fmt.Fprintf(&b, "- max degree re-identification confidence: %.3f (bound 1/k_R = %.3f)%s\n",
		a.MaxReidentConf, 1.0/float64(a.Options.KR), flag(a.MaxReidentConf > 1.0/float64(a.Options.KR)+1e-9))

	fmt.Fprintf(&b, "\n## Inventory\n\n- %d devices in the shared bundle\n", a.Devices)
	return b.String()
}

func edgeList(es []topology.Edge, max int) string {
	var out []string
	for i, e := range es {
		if i == max {
			out = append(out, "…")
			break
		}
		out = append(out, e.A+"–"+e.B)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

func head(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
