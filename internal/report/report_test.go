package report

import (
	"strings"
	"testing"

	"confmask/internal/anonymize"
	"confmask/internal/netgen"
)

func TestAuditSafeOutput(t *testing.T) {
	cfg, err := netgen.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	opts := anonymize.DefaultOptions()
	opts.KR = 4
	opts.Seed = 5
	anon, rep, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build("backbone-test", cfg, anon, opts, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equivalent {
		t.Fatalf("equivalence failed: %s", a.EquivalenceNote)
	}
	if !a.Safe() {
		t.Fatalf("ConfMask output should audit safe: %+v", a)
	}
	md := a.Markdown()
	for _, want := range []string{
		"SAFE TO SHARE",
		"k_R (topology anonymity): 4",
		"fake hosts: 9",
		"every original host-to-host path is preserved exactly",
		"re-identification confidence",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAuditFlagsTamperedOutput(t *testing.T) {
	cfg, err := netgen.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	opts := anonymize.DefaultOptions()
	opts.KR = 4
	opts.Seed = 5
	anon, rep, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: delete a prefix-list so a host pair forwards differently.
	tampered := anon.Clone()
	for _, name := range tampered.Routers() {
		d := tampered.Device(name)
		if len(d.PrefixLists) > 0 {
			d.PrefixLists = nil
			if d.OSPF != nil {
				d.OSPF.InFilters = map[string]string{}
			}
			if d.BGP != nil {
				for _, nb := range d.BGP.Neighbors {
					nb.DistributeListIn = ""
				}
			}
		}
	}
	a, err := Build("tampered", cfg, tampered, opts, rep)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equivalent {
		t.Skip("filter removal did not change forwarding on this seed")
	}
	if a.Safe() {
		t.Fatal("tampered output must not audit safe")
	}
	if !strings.Contains(a.Markdown(), "REVIEW REQUIRED") {
		t.Fatal("markdown verdict missing")
	}
}

func TestBuildFromNetworks(t *testing.T) {
	cfg, err := netgen.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	opts := anonymize.DefaultOptions()
	opts.KR = 4
	opts.Seed = 5
	anon, rep, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstructed audit must agree with the pipeline-report audit on
	// the inventory and the verdict.
	a1, err := Build("direct", cfg, anon, opts, rep)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := BuildFromNetworks("reconstructed", cfg, anon, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Safe() != a2.Safe() {
		t.Fatalf("verdicts differ: %v vs %v", a1.Safe(), a2.Safe())
	}
	if len(a1.Report.FakeHosts) != len(a2.Report.FakeHosts) {
		t.Fatalf("fake hosts %d vs %d", len(a1.Report.FakeHosts), len(a2.Report.FakeHosts))
	}
	if len(a2.Report.FakeEdges) == 0 {
		t.Fatal("reconstruction found no fake edges")
	}
	if a2.Report.UC <= 0 || a2.Report.UC >= 1 {
		t.Fatalf("reconstructed U_C = %v", a2.Report.UC)
	}
}

func TestAuditFakeRouters(t *testing.T) {
	cfg, err := netgen.FatTree04()
	if err != nil {
		t.Fatal(err)
	}
	opts := anonymize.DefaultOptions()
	opts.Seed = 2
	opts.FakeRouters = 2
	anon, rep, err := anonymize.Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build("ft", cfg, anon, opts, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Safe() {
		t.Fatalf("scale-obfuscated output should audit safe: unconf=%d deadTP=%d reid=%v",
			len(a.UnconfiguredLinks), a.DeadLinkTruePos, a.MaxReidentConf)
	}
	if !strings.Contains(a.Markdown(), "fake routers: 2") {
		t.Fatal("fake routers missing from audit")
	}
}
