package service

// Multi-node (worker fleet) behavior: two Servers sharing one journal
// directory, lease-fenced job ownership, coordinator takeover of dead
// owners, tenant fairness, and submit rate limiting. Takeover is driven
// deterministically through the cluster.lease.expire fault point and the
// exported Rescan hook — no test below waits out a lease TTL.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"confmask/internal/faults"
)

// postJobTenant submits a job under an explicit X-Tenant header.
func postJobTenant(t *testing.T, ts *httptest.Server, req *Request, tenant string) (*http.Response, Status) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

// countJournal replays a job directory and tallies its event log.
func countJournal(t *testing.T, jl *journal, id string) (rj *replayedJob, starts, dones int) {
	t.Helper()
	rj = jl.replayOne(id)
	if rj == nil || rj.req == nil {
		t.Fatalf("job %s journal did not replay: %+v", id, rj)
	}
	for _, e := range rj.events {
		if e.Message == "started" {
			starts++
		}
		if e.Message == "done" {
			dones++
		}
	}
	return rj, starts, dones
}

// TestClusterExpiredLeaseTakeover is the killed-owner path: node A freezes
// mid-equivalence holding a live lease (the on-disk state a SIGKILL leaves,
// minus the actual kill), node B's coordinator is told the lease is expired
// via the cluster.lease.expire fault point, requeues the job, claims epoch
// 2, and finishes it byte-identical to an uninterrupted run — resuming from
// the checkpoint A persisted, not from scratch.
func TestClusterExpiredLeaseTakeover(t *testing.T) {
	t.Cleanup(faults.Reset)
	dir := t.TempDir()
	entered := make(chan struct{})
	freeze := make(chan struct{}) // never closed: A stays frozen, abandoned
	var once sync.Once
	s1, err := Open(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		NodeID: "node-a", RescanInterval: time.Hour,
		StageHook: func(id, stage string, iter int) {
			if stage == "equivalence" {
				once.Do(func() { close(entered) })
				<-freeze
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	defer ts1.Close()

	req := testRequest(t, 201)
	_, st := postJob(t, ts1, req)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached equivalence on node A")
	}

	// Node B joins the fleet while A's lease is still live: replay must
	// leave the leased job alone.
	s2, err := Open(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		NodeID: "node-b", RescanInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if got := getStatus(t, ts2, st.ID); got.State == StateDone || got.State == StateFailed {
		t.Fatalf("leased foreign job replayed terminal on B: %+v", got)
	}

	// Declare A dead: the fault point makes B's Claimable treat A's live
	// lease as expired, deterministically, without waiting out a TTL.
	faults.Arm("cluster.lease.expire", faults.Injection{Mode: faults.ModeError, Message: "lease declared expired"})
	s2.Rescan()

	final := waitState(t, ts2, st.ID, StateDone)
	if final.Restarts != 1 {
		t.Fatalf("taken-over job restarts = %d, want 1", final.Restarts)
	}
	if final.Owner != "node-b" || final.LeaseEpoch != 2 {
		t.Fatalf("taken-over job owner/epoch = %s/%d, want node-b/2", final.Owner, final.LeaseEpoch)
	}
	if final.Tenant != DefaultTenant {
		t.Fatalf("tenant = %q, want %q", final.Tenant, DefaultTenant)
	}
	assertIdentical(t, ts2, st.ID, directRun(t, req), "job taken over after owner death")

	m := metricsSnapshot(t, ts2)
	if got := metricInt(t, m, "leases_expired_total"); got != 1 {
		t.Fatalf("leases_expired_total = %d, want 1", got)
	}
	if got := metricInt(t, m, "jobs_requeued_total"); got != 1 {
		t.Fatalf("jobs_requeued_total = %d, want 1", got)
	}

	// The journal's newest claim is B's epoch-2 record, and the takeover
	// resumed rather than restarted: exactly two starts, one done.
	rj, starts, dones := countJournal(t, s2.journal, st.ID)
	if rj.owner != "node-b" || rj.leaseEpoch != 2 {
		t.Fatalf("journal owner/epoch = %s/%d, want node-b/2", rj.owner, rj.leaseEpoch)
	}
	if starts != 2 || dones != 1 {
		t.Fatalf("journal has %d starts / %d dones, want 2/1", starts, dones)
	}
}

// TestClusterFencedStaleOwnerCannotCorrupt is the split-brain path: node A
// is alive but frozen (a GC pause, a hung NFS write) while node B takes its
// job over. When A wakes it must discover it is fenced — its run fails with
// a structured "lease lost" reason, its journal writes are refused and
// counted, and the replayed journal shows only B's authoritative history.
func TestClusterFencedStaleOwnerCannotCorrupt(t *testing.T) {
	t.Cleanup(faults.Reset)
	dir := t.TempDir()
	entered := make(chan struct{})
	freeze := make(chan struct{})
	var once sync.Once
	s1, err := Open(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		NodeID: "node-a", RescanInterval: time.Hour,
		// A fast heartbeat so the frozen owner notices the fence promptly
		// once it wakes; the test's ordering never depends on it firing.
		Heartbeat: 50 * time.Millisecond,
		StageHook: func(id, stage string, iter int) {
			if stage == "equivalence" {
				once.Do(func() { close(entered) })
				<-freeze
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Shutdown(context.Background())
	ts1 := httptest.NewServer(s1)
	defer ts1.Close()

	req := testRequest(t, 211)
	_, st := postJob(t, ts1, req)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached equivalence on node A")
	}

	s2, err := Open(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		NodeID: "node-b", RescanInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	faults.Arm("cluster.lease.expire", faults.Injection{Mode: faults.ModeError, Message: "lease declared expired"})
	s2.Rescan()
	waitState(t, ts2, st.ID, StateDone)
	faults.Reset()
	want := fetchResult(t, ts2, st.ID)

	// Wake the stale owner. Every durable write it attempts from here is
	// refused — its run must unwind as fenced, not overwrite B's result.
	close(freeze)
	deadline := time.Now().Add(30 * time.Second)
	var stale Status
	for {
		stale = getStatus(t, ts1, st.ID)
		if stale.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale owner's run never terminated: %+v", stale)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stale.State != StateFailed {
		t.Fatalf("stale owner's run ended %s, want failed", stale.State)
	}
	if !bytes.Contains([]byte(stale.Error), []byte("lease lost")) {
		t.Fatalf("stale owner's failure reason: %q, want a lease-lost reason", stale.Error)
	}
	m1 := metricsSnapshot(t, ts1)
	if got := metricInt(t, m1, "fencing_rejects_total"); got < 1 {
		t.Fatalf("fencing_rejects_total on stale owner = %d, want >= 1", got)
	}

	// The journal is B's history: epoch 2, one done, no failed event from
	// A's voided run, and the stored result still byte-identical.
	rj, _, dones := countJournal(t, s2.journal, st.ID)
	if rj.owner != "node-b" || rj.leaseEpoch != 2 {
		t.Fatalf("journal owner/epoch = %s/%d, want node-b/2", rj.owner, rj.leaseEpoch)
	}
	if rj.state != StateDone || dones != 1 {
		t.Fatalf("journal state %s with %d dones, want done/1 — stale owner corrupted the journal", rj.state, dones)
	}
	for _, e := range rj.events {
		if e.State == StateFailed {
			t.Fatalf("stale owner's failed event survived replay: %+v", e)
		}
	}
	got := fetchResult(t, ts2, st.ID)
	for name, text := range want {
		if got[name] != text {
			t.Fatalf("config %s changed after stale owner woke", name)
		}
	}
}

// TestClusterDrainDuringClaim races a graceful Shutdown on node A against
// node B's coordinator claiming A's jobs: the drain releases the lease and
// journals a requeue while B rescans continuously. The job must run exactly
// once more (no loss, no double-run) and finish byte-identical. Run under
// -race in CI.
func TestClusterDrainDuringClaim(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s1, err := Open(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		NodeID: "node-a", RescanInterval: time.Hour,
		StageHook: func(id, stage string, iter int) {
			if stage == "equivalence" {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	defer ts1.Close()
	s2, err := Open(Config{
		Workers: 2, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		NodeID: "node-b", RescanInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	req := testRequest(t, 221)
	_, st := postJob(t, ts1, req)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached equivalence on node A")
	}

	// B's coordinator hammers the journal root for the whole drain window:
	// every interleaving of {A holds lease, A writes requeue, A releases}
	// with a rescan must be safe.
	stopScan := make(chan struct{})
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		for {
			select {
			case <-stopScan:
				return
			default:
				s2.Rescan()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Drain A with an expired deadline: the running job is stopped and
	// requeued. The pipeline is parked in the StageHook, so release it once
	// the draining event is durable (the same dance as the drain tests).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	drained := make(chan struct{})
	go func() { s1.Shutdown(ctx); close(drained) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		events := jobEvents(t, ts1, st.ID)
		if hasEvent(events, func(e Event) bool { return e.State == StateDraining || e.Message == "draining: server shutting down" }) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never saw a draining event")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	<-drained

	final := waitState(t, ts2, st.ID, StateDone)
	close(stopScan)
	<-scanDone
	if final.Owner != "node-b" || final.LeaseEpoch != 2 {
		t.Fatalf("owner/epoch after drain takeover = %s/%d, want node-b/2", final.Owner, final.LeaseEpoch)
	}
	assertIdentical(t, ts2, st.ID, directRun(t, req), "job drained from A and claimed by B")

	// Exactly once: one start on A, one on B, a single done record.
	_, starts, dones := countJournal(t, s2.journal, st.ID)
	if starts != 2 || dones != 1 {
		t.Fatalf("journal has %d starts / %d dones, want 2/1", starts, dones)
	}
}

// TestClusterTenantFairnessAndRateLimit floods tenant alpha past its token
// bucket and then past the queue, with tenant beta submitting one job:
// alpha's over-rate submit gets 429 + Retry-After, beta's job is admitted
// under its own bucket, and the deficit-round-robin scheduler dispatches
// beta's job before alpha's backlog drains.
func TestClusterTenantFairnessAndRateLimit(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	started := []string{}
	seen := map[string]bool{}
	s := New(Config{
		Workers: 1, QueueDepth: 16, JobTimeout: 2 * time.Minute,
		SchedQuantum: 1, TenantQuota: 1,
		TenantRate: 0.001, TenantBurst: 3,
		StageHook: func(id, stage string, iter int) {
			mu.Lock()
			if !seen[id] {
				seen[id] = true
				started = append(started, id)
			}
			mu.Unlock()
			<-gate // blocks until the gate opens, then never again
		},
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	// alpha's burst of three is admitted; the first runs (frozen in the
	// hook), two queue behind it.
	var alpha []Status
	for i := 0; i < 3; i++ {
		resp, st := postJobTenant(t, ts, testRequest(t, int64(231+i)), "alpha")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("alpha submit %d: %s", i, resp.Status)
		}
		if st.Tenant != "alpha" {
			t.Fatalf("alpha job tenant = %q", st.Tenant)
		}
		alpha = append(alpha, st)
	}
	waitState(t, ts, alpha[0].ID, StateRunning)

	// The fourth alpha submit is over the bucket: 429 with a whole-seconds
	// Retry-After.
	resp4, _ := postJobTenant(t, ts, testRequest(t, 234), "alpha")
	if resp4.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %s, want 429", resp4.Status)
	}
	ra := resp4.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
	}

	// beta has its own bucket and its own queue.
	respB, stB := postJobTenant(t, ts, testRequest(t, 235), "beta")
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("beta submit: %s", respB.Status)
	}

	m := metricsSnapshot(t, ts)
	if got := metricInt(t, m, "rate_limited_total"); got != 1 {
		t.Fatalf("rate_limited_total = %d, want 1", got)
	}
	depths, ok := m["tenant_queue_depth"].(map[string]any)
	if !ok || depths["alpha"] != float64(2) || depths["beta"] != float64(1) {
		t.Fatalf("tenant_queue_depth = %v, want alpha:2 beta:1", m["tenant_queue_depth"])
	}

	// Open the gate: everything runs. DRR must interleave beta's one job
	// into alpha's backlog instead of letting the flood finish first.
	close(gate)
	for _, st := range alpha {
		waitState(t, ts, st.ID, StateDone)
	}
	waitState(t, ts, stB.ID, StateDone)

	mu.Lock()
	order := append([]string(nil), started...)
	mu.Unlock()
	pos := func(id string) int {
		for i, v := range order {
			if v == id {
				return i
			}
		}
		return -1
	}
	if pos(stB.ID) < 0 || pos(stB.ID) > pos(alpha[2].ID) {
		t.Fatalf("start order %v: beta's job (%s) ran after alpha's whole backlog", order, stB.ID)
	}
}

// TestClusterListPagination covers the GET /v1/jobs paging contract:
// ?limit= pages newest-first with next_after cursors, ?state= filters, and
// malformed parameters are 400s. The default page cap (200) and maximum
// (1000) are compile-time constants asserted here so a silent change to
// either shows up as a test failure.
func TestClusterListPagination(t *testing.T) {
	if defaultListLimit != 200 || maxListLimit != 1000 {
		t.Fatalf("documented list caps changed: default %d (want 200), max %d (want 1000)", defaultListLimit, maxListLimit)
	}
	gate := make(chan struct{})
	s := New(Config{
		Workers: 1, QueueDepth: 16, JobTimeout: 2 * time.Minute,
		StageHook: func(id, stage string, iter int) { <-gate },
	})
	defer s.Shutdown(context.Background())
	defer close(gate)
	ts := httptest.NewServer(s)
	defer ts.Close()

	ids := map[string]bool{}
	var first Status
	for i := 0; i < 5; i++ {
		resp, st := postJob(t, ts, testRequest(t, int64(241+i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		ids[st.ID] = true
		if i == 0 {
			first = st
		}
	}
	waitState(t, ts, first.ID, StateRunning) // 1 running, 4 queued

	type page struct {
		Jobs      []Status `json:"jobs"`
		NextAfter string   `json:"next_after"`
	}
	getPage := func(query string) (page, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var p page
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
				t.Fatal(err)
			}
		}
		return p, resp.StatusCode
	}

	// Walk the whole list two at a time: every job exactly once, newest
	// first, with a cursor on every truncated page.
	walked := map[string]bool{}
	cursor := ""
	pages := 0
	for {
		q := "?limit=2"
		if cursor != "" {
			q += "&after=" + cursor
		}
		p, code := getPage(q)
		if code != http.StatusOK {
			t.Fatalf("page %d: status %d", pages, code)
		}
		pages++
		prev := ""
		for _, st := range p.Jobs {
			if walked[st.ID] {
				t.Fatalf("job %s appeared on two pages", st.ID)
			}
			if prev != "" && st.ID >= prev {
				t.Fatalf("page not sorted newest-first: %s then %s", prev, st.ID)
			}
			prev = st.ID
			walked[st.ID] = true
		}
		if p.NextAfter == "" {
			break
		}
		cursor = p.NextAfter
		if pages > 10 {
			t.Fatal("pagination never terminated")
		}
	}
	if len(walked) != len(ids) {
		t.Fatalf("pagination walked %d jobs, want %d", len(walked), len(ids))
	}

	if p, code := getPage("?state=queued"); code != http.StatusOK || len(p.Jobs) != 4 {
		t.Fatalf("state=queued: code %d, %d jobs, want 4", code, len(p.Jobs))
	}
	if p, code := getPage("?state=running"); code != http.StatusOK || len(p.Jobs) != 1 {
		t.Fatalf("state=running: code %d, %d jobs, want 1", code, len(p.Jobs))
	}
	for _, bad := range []string{"?state=bogus", "?limit=0", "?limit=-3", "?limit=abc"} {
		if _, code := getPage(bad); code != http.StatusBadRequest {
			t.Fatalf("GET /v1/jobs%s: code %d, want 400", bad, code)
		}
	}
	// An explicit limit beyond the maximum is clamped, not rejected.
	if _, code := getPage("?limit=99999"); code != http.StatusOK {
		t.Fatalf("over-max limit: code %d, want 200 (clamped)", code)
	}
}

// TestClusterHealthzIdentity pins the healthz/metrics fleet-identity
// fields: node_id and lease counts appear, and every pre-fleet field keeps
// its name and type so existing monitoring keeps parsing.
func TestClusterHealthzIdentity(t *testing.T) {
	s, err := Open(Config{Workers: 1, QueueDepth: 4, DataDir: t.TempDir(), NodeID: "node-x", RescanInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["durable"] != true {
		t.Fatalf("healthz pre-fleet fields changed: %v", hz)
	}
	for _, key := range []string{"workers", "queue_capacity", "uptime_seconds"} {
		if _, ok := hz[key].(float64); !ok {
			t.Fatalf("healthz field %q missing or wrong type: %v", key, hz[key])
		}
	}
	if hz["node_id"] != "node-x" {
		t.Fatalf("healthz node_id = %v, want node-x", hz["node_id"])
	}
	if v, ok := hz["leases_held"].(float64); !ok || v != 0 {
		t.Fatalf("healthz leases_held = %v, want 0", hz["leases_held"])
	}

	m := metricsSnapshot(t, ts)
	if m["node_id"] != "node-x" {
		t.Fatalf("metrics node_id = %v, want node-x", m["node_id"])
	}
	for _, key := range []string{"leases_expired_total", "fencing_rejects_total", "rate_limited_total", "leases_held", "jobs_submitted_total", "queue_depth"} {
		if _, ok := m[key].(float64); !ok {
			t.Fatalf("metrics field %q missing: %v", key, m[key])
		}
	}
	if _, ok := m["tenant_queue_depth"].(map[string]any); !ok {
		t.Fatalf("metrics tenant_queue_depth missing: %v", m["tenant_queue_depth"])
	}
}
