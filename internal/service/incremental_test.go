package service

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// editedRequest clones req's configs, appends a cosmetic (passthrough) line
// to one device, and returns the edited request plus the device it touched.
func editedRequest(t *testing.T, req *Request, line string) (*Request, string) {
	t.Helper()
	edited := make(map[string]string, len(req.Configs))
	names := make([]string, 0, len(req.Configs))
	for k, v := range req.Configs {
		edited[k] = v
		names = append(names, k)
	}
	if len(names) == 0 {
		t.Fatal("empty bundle")
	}
	// Deterministic device pick: the lexically smallest name.
	dev := names[0]
	for _, n := range names[1:] {
		if n < dev {
			dev = n
		}
	}
	edited[dev] += line + "\n"
	return &Request{Configs: edited, Options: req.Options, BaseJob: req.BaseJob}, dev
}

// TestIncrementalResubmission is the tentpole round trip on an in-memory
// server: a completed job seeds a cosmetically edited resubmission (named
// base and auto-discovered base), the incremental result is byte-identical
// to a from-scratch run, and status, events, and metrics all record the
// reuse.
func TestIncrementalResubmission(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	base := testRequest(t, 61)
	_, stBase := postJob(t, ts, base)
	waitState(t, ts, stBase.ID, StateDone)

	inc, dev := editedRequest(t, base, "snmp-server community rev2 RO")
	inc.BaseJob = stBase.ID
	_, stInc := postJob(t, ts, inc)
	final := waitState(t, ts, stInc.ID, StateDone)

	if final.BaseJob != stBase.ID {
		t.Fatalf("status base_job = %q, want %s", final.BaseJob, stBase.ID)
	}
	wantStages := []string{"preprocess", "topology", "equivalence", "anonymity"}
	if len(final.ReusedStages) != len(wantStages) {
		t.Fatalf("reused_stages = %v, want %v", final.ReusedStages, wantStages)
	}
	for i, w := range wantStages {
		if final.ReusedStages[i] != w {
			t.Fatalf("reused_stages = %v, want %v", final.ReusedStages, wantStages)
		}
	}
	assertIdentical(t, ts, stInc.ID, directRun(t, inc), "incremental job")
	events := jobEvents(t, ts, stInc.ID)
	if !hasEvent(events, func(e Event) bool {
		return e.BaseJob == stBase.ID && len(e.ReusedStages) == 4 &&
			strings.Contains(e.Message, dev)
	}) {
		t.Fatalf("no incremental seed event naming base %s and device %s: %+v", stBase.ID, dev, events)
	}
	m := metricsSnapshot(t, ts)
	if got := metricInt(t, m, "jobs_incremental_total"); got != 1 {
		t.Fatalf("jobs_incremental_total = %d, want 1", got)
	}
	if got := metricInt(t, m, "stages_reused_total"); got != 4 {
		t.Fatalf("stages_reused_total = %d, want 4", got)
	}
	if got := metricInt(t, m, "incremental_fallbacks_total"); got != 0 {
		t.Fatalf("incremental_fallbacks_total = %d, want 0", got)
	}

	// Auto discovery: a further edit of the same device overlaps the
	// original and the first incremental job equally (every device but the
	// edited one), so the newest-wins tie break must pick the incremental
	// job — whose retained checkpoint is the one imported at its own seed
	// time, proving edit-of-edit chains work.
	inc2, _ := editedRequest(t, base, "snmp-server community rev3 RO")
	inc2.BaseJob = "auto"
	_, stInc2 := postJob(t, ts, inc2)
	final2 := waitState(t, ts, stInc2.ID, StateDone)
	if final2.BaseJob != stInc.ID {
		t.Fatalf("auto base = %q, want newest candidate %s", final2.BaseJob, stInc.ID)
	}
	assertIdentical(t, ts, stInc2.ID, directRun(t, inc2), "auto-based job")
	m = metricsSnapshot(t, ts)
	if got := metricInt(t, m, "jobs_incremental_total"); got != 2 {
		t.Fatalf("jobs_incremental_total = %d, want 2", got)
	}
}

// TestIncrementalFallbackOnSemanticEdit pins the safety property: a
// resubmission whose edit changes routing semantics must NOT reuse the base
// checkpoint — it falls back to a full run with an event naming the reason,
// and still produces the correct output.
func TestIncrementalFallbackOnSemanticEdit(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	base := testRequest(t, 65)
	_, stBase := postJob(t, ts, base)
	waitState(t, ts, stBase.ID, StateDone)

	inc, _ := editedRequest(t, base, "ip route 203.0.113.0 255.255.255.0 Null0")
	inc.BaseJob = stBase.ID
	_, stInc := postJob(t, ts, inc)
	final := waitState(t, ts, stInc.ID, StateDone)

	if final.BaseJob != "" {
		t.Fatalf("semantic edit reused base %q", final.BaseJob)
	}
	assertIdentical(t, ts, stInc.ID, directRun(t, inc), "fallback job")
	events := jobEvents(t, ts, stInc.ID)
	if !hasEvent(events, func(e Event) bool {
		return strings.Contains(e.Message, "falling back to full run") &&
			strings.Contains(e.Message, "changed semantically")
	}) {
		t.Fatalf("no fallback event with reason: %+v", events)
	}
	m := metricsSnapshot(t, ts)
	if got := metricInt(t, m, "incremental_fallbacks_total"); got != 1 {
		t.Fatalf("incremental_fallbacks_total = %d, want 1", got)
	}
	if got := metricInt(t, m, "jobs_incremental_total"); got != 0 {
		t.Fatalf("jobs_incremental_total = %d, want 0", got)
	}

	// A base job that never existed is a caller bug, rejected at submit.
	bad := &Request{Configs: inc.Configs, Options: inc.Options, BaseJob: "j999999-nope"}
	resp, _ := postJob(t, ts, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown base job submit: %s, want 400", resp.Status)
	}
}

// TestShutdownClosesEventFollowers holds a job mid-equivalence, attaches a
// live follower to its event stream, and shuts the server down: the
// follower must see a clean end-of-stream while the job is still
// non-terminal, instead of holding shutdown hostage.
func TestShutdownClosesEventFollowers(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := New(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute,
		StageHook: func(id, stage string, iter int) {
			if stage == "equivalence" {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, st := postJob(t, ts, testRequest(t, 71))
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached equivalence")
	}

	type followEnd struct {
		lines int
		err   error
	}
	ended := make(chan followEnd, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			ended <- followEnd{0, err}
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		n := 0
		for sc.Scan() {
			n++
		}
		ended <- followEnd{n, sc.Err()}
	}()
	// Let the follower drain the replay and block in the live-follow
	// select; the assertion below holds either way.
	time.Sleep(50 * time.Millisecond)

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(expired) }()

	select {
	case end := <-ended:
		if end.err != nil {
			t.Fatalf("follower stream did not end cleanly: %v", end.err)
		}
		if end.lines == 0 {
			t.Fatal("follower saw no events before shutdown")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower still blocked 10s after shutdown")
	}
	// The stream ended because of shutdown, not because the job finished:
	// its pipeline is still frozen inside the stage hook.
	if cur := getStatus(t, ts, st.ID); cur.State.Terminal() {
		t.Fatalf("job already terminal (%s) when the follower stream ended", cur.State)
	}

	close(release)
	<-shutdownDone
	if cur := getStatus(t, ts, st.ID); !cur.State.Terminal() {
		t.Fatalf("job not terminal after shutdown: %s", cur.State)
	}
}

// TestIncrementalReplayAfterCrash is the SIGKILL story for incremental
// jobs: a resubmission seeded from a foreign base checkpoint crashes
// mid-render (server abandoned without shutdown), and a fresh daemon on the
// same data dir replays it back into the same incremental resume — the
// imported checkpoint was journaled before the pipeline started — finishing
// byte-identical to an uninterrupted from-scratch run.
func TestIncrementalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{})
	// Never released: server A stays frozen like a crashed process.
	release := make(chan struct{})
	var renders atomic.Int32
	var once sync.Once
	s, err := Open(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		StageHook: func(id, stage string, iter int) {
			// The first render belongs to the base job's full run; the
			// second is the incremental job, whose all-stages-reused fast
			// path makes render its only progress callback.
			if stage == "render" && renders.Add(1) == 2 {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	base := testRequest(t, 81)
	_, stBase := postJob(t, ts, base)
	waitState(t, ts, stBase.ID, StateDone)

	inc, _ := editedRequest(t, base, "snmp-server community crashed RO")
	inc.BaseJob = stBase.ID
	_, stInc := postJob(t, ts, inc)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("incremental job never reached render")
	}
	m := metricsSnapshot(t, ts)
	if got := metricInt(t, m, "jobs_incremental_total"); got != 1 {
		t.Fatalf("jobs_incremental_total before crash = %d, want 1", got)
	}
	// No shutdown: the frozen server's journal is exactly what kill -9
	// leaves behind.

	s2, err := Open(Config{Workers: 2, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	final := waitState(t, ts2, stInc.ID, StateDone)
	if final.Restarts != 1 {
		t.Fatalf("replayed job restarts = %d, want 1", final.Restarts)
	}
	if final.BaseJob != stBase.ID {
		t.Fatalf("replayed status base_job = %q, want %s", final.BaseJob, stBase.ID)
	}
	if len(final.ReusedStages) != 4 {
		t.Fatalf("replayed reused_stages = %v, want 4 stages", final.ReusedStages)
	}
	assertIdentical(t, ts2, stInc.ID, directRun(t, inc), "incremental job crashed mid-render")
	events := jobEvents(t, ts2, stInc.ID)
	if !hasEvent(events, func(e Event) bool { return e.BaseJob == stBase.ID }) {
		t.Fatalf("replayed events lost the incremental seed record: %+v", events)
	}
}
