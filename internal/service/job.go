// Package service implements confmaskd's anonymization job service: an
// in-memory job store with content-hash deduplication, a bounded FIFO
// queue drained by a worker pool, per-job timeouts and cancellation, an
// NDJSON progress stream per job, and an HTTP/JSON API
// (POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/jobs/{id}/events,
// GET /v1/jobs/{id}/result, DELETE /v1/jobs/{id}, GET /healthz,
// GET /metrics).
//
// The service runs the same pipeline as the library — each job is one
// confmask.AnonymizeContext call — so a daemon result is byte-identical
// to an in-process run with the same configs, options, and seed.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"confmask"
)

// State is a job lifecycle state. Transitions:
//
//	queued → running → done | failed | cancelled
//	queued → cancelled            (cancelled before a worker picked it up)
//	running → draining → requeued (graceful drain with a journal: the job
//	                               resumes after the next daemon start)
//	queued → requeued             (drain with a journal, job never ran)
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateDraining marks a running job whose daemon is shutting down; its
	// pipeline is being stopped so the job can requeue durably.
	StateDraining State = "draining"
	// StateRequeued is terminal for this process: the job is journaled and
	// will re-enter the queue when a daemon next opens the same data dir.
	StateRequeued State = "requeued"
)

// Terminal reports whether no further transitions can happen in this
// process. Requeued counts: the job only moves again after a restart.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateRequeued
}

// Request is the POST /v1/jobs payload: the configuration bundle to
// anonymize plus pipeline options. Equal requests (same configs, same
// options — including the seed) hash identically and dedup to one job.
type Request struct {
	Configs map[string]string `json:"configs"`
	Options confmask.Options  `json:"options"`
	// BaseJob requests incremental anonymization: the ID of a completed
	// job this submission is an edit of, or "auto" to discover the best
	// base by per-device manifest overlap. When the edit turns out to be
	// decision-identical (see confmask.ImportCheckpoint), the worker seeds
	// the pipeline from the base job's checkpoint and skips every stage it
	// covers; otherwise the job falls back to a full run with an event
	// naming the reason. Deliberately excluded from the dedup hash: the
	// base only changes how the result is computed, never what it is.
	BaseJob string `json:"base_job,omitempty"`
	// Tenant is the submitting tenant, taken from the X-Tenant header
	// (never from the request body — the server overwrites whatever the
	// client put here). Persisted in the journal's submitted record so a
	// replayed job rejoins its tenant's queue.
	Tenant string `json:"tenant,omitempty"`
}

// manifestOf content-addresses each config file of a bundle: file label →
// sha256 hex of its text. Submissions store it in the journal next to the
// bundle hash; manifest diffs give the edited-device set for incremental
// base resolution.
func manifestOf(configs map[string]string) map[string]string {
	m := make(map[string]string, len(configs))
	for name, text := range configs {
		sum := sha256.Sum256([]byte(text))
		m[name] = hex.EncodeToString(sum[:])
	}
	return m
}

// manifestOverlap counts the (file, content-hash) pairs two manifests
// share.
func manifestOverlap(a, b map[string]string) int {
	n := 0
	for name, sum := range a {
		if b[name] == sum {
			n++
		}
	}
	return n
}

// hash returns the content hash used for job deduplication: a sha256 over
// the sorted configuration files and the JSON encoding of the options
// (Options.Progress is a func and excluded from JSON, so it cannot affect
// the hash).
func (r *Request) hash() string {
	h := sha256.New()
	names := make([]string, 0, len(r.Configs))
	for name := range r.Configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "%d:%s%d:%s", len(name), name, len(r.Configs[name]), r.Configs[name])
	}
	opts, _ := json.Marshal(r.Options)
	h.Write(opts)
	return hex.EncodeToString(h.Sum(nil))
}

// Event is one record of a job's NDJSON progress stream: a state
// transition, a pipeline stage transition, or an Algorithm 1 iteration.
type Event struct {
	// Seq numbers events per job from 1; clients resume a dropped stream
	// with ?after=<seq>.
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	// State is the job state at the time of the event.
	State State `json:"state"`
	// Stage is the pipeline stage ("preprocess", "topology",
	// "equivalence", "anonymity", "render") for progress events.
	Stage string `json:"stage,omitempty"`
	// Iteration is the Algorithm 1 / strawman fixing iteration (≥ 1) for
	// "equivalence" progress events.
	Iteration int `json:"iteration,omitempty"`
	// PrevStage and PrevStageMS report the just-completed stage and its
	// wall-clock duration, on the event that closes it: the next stage's
	// progress event, or the terminal event for the last stage. Together
	// with the /metrics stage histograms they give per-stage timing
	// without diffing event timestamps.
	PrevStage   string `json:"prev_stage,omitempty"`
	PrevStageMS int64  `json:"prev_stage_ms,omitempty"`
	// PrevStageAllocBytes is the heap allocated while PrevStage ran
	// (process-wide TotalAlloc delta; concurrent jobs share the counter,
	// so treat it as attribution only on an otherwise idle daemon).
	PrevStageAllocBytes uint64 `json:"prev_stage_alloc_bytes,omitempty"`
	// Message annotates non-progress events ("queued", "cancel
	// requested", ...).
	Message string `json:"message,omitempty"`
	// Error carries the failure reason on the terminal event of a failed
	// job.
	Error string `json:"error,omitempty"`
	// BaseJob and ReusedStages appear on the event announcing that the job
	// was seeded from another job's checkpoint: the base job's ID and the
	// pipeline stages the seed lets this job skip.
	BaseJob      string   `json:"base_job,omitempty"`
	ReusedStages []string `json:"reused_stages,omitempty"`
	// Tenant, Owner, and LeaseEpoch identify whose job this is and which
	// node wrote the event under which fencing epoch. Events written
	// before any claim carry epoch 0; replay discards events whose epoch
	// predates a later claim (a fenced-out owner's late writes).
	Tenant     string `json:"tenant,omitempty"`
	Owner      string `json:"owner,omitempty"`
	LeaseEpoch int    `json:"lease_epoch,omitempty"`
}

// Status is the GET /v1/jobs/{id} document: a point-in-time snapshot of a
// job.
type Status struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	InputHash string     `json:"input_hash"`
	Devices   int        `json:"devices"`
	Stage     string     `json:"stage,omitempty"`
	Iteration int        `json:"iteration,omitempty"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	// Restarts counts how many daemon starts have executed this job before
	// the current one (0 for a job born in this process).
	Restarts int `json:"restarts,omitempty"`
	// Tenant is the submitting tenant; Owner and LeaseEpoch name the node
	// holding (or last holding) the job's lease and its fencing epoch.
	Tenant     string `json:"tenant,omitempty"`
	Owner      string `json:"owner,omitempty"`
	LeaseEpoch int    `json:"lease_epoch,omitempty"`
	// BaseJob and ReusedStages identify the completed job whose checkpoint
	// seeded this one and the stages that seed skipped (incremental
	// resubmission; absent for full runs).
	BaseJob      string   `json:"base_job,omitempty"`
	ReusedStages []string `json:"reused_stages,omitempty"`
	// Report is present once the job is done.
	Report *confmask.Report `json:"report,omitempty"`
}

// job is the store's internal record. All fields behind mu; events grows
// append-only so streamers can hold an index into it across unlocks.
type job struct {
	mu      sync.Mutex
	changed chan struct{} // closed+replaced on every mutation (broadcast)

	id      string
	hash    string
	req     *Request
	devices int

	state     State
	stage     string
	iteration int
	events    []Event

	created  time.Time
	started  time.Time
	finished time.Time

	result map[string]string
	report *confmask.Report
	errMsg string

	// cancelRequested is set by DELETE; a queued job dies before running,
	// a running job's pipeline context is cancelled via cancel.
	cancelRequested bool
	cancel          func()

	// jw journals every event when the service runs with a data dir.
	jw *jobJournal
	// resume holds the stage checkpoint recovered from the journal or
	// imported from a base job; the worker hands it to the pipeline so the
	// job skips the stages it covers.
	resume *confmask.Checkpoint
	// manifest content-addresses the request's config files (file label →
	// sha256 hex); incremental base resolution diffs manifests to find the
	// edited devices.
	manifest map[string]string
	// lastCP is the newest checkpoint the pipeline emitted (or replay
	// recovered); completed jobs keep it so later submissions can seed
	// from it.
	lastCP *confmask.Checkpoint
	// baseJob and reusedStages record a successful incremental seed for
	// status reporting.
	baseJob      string
	reusedStages []string
	// restarts counts prior daemon starts that executed this job.
	restarts int
	// draining marks a job cancelled by a graceful drain (not by a user);
	// the worker classifies the resulting context.Canceled as requeued.
	draining bool
	// tombstone marks a job replayed from a corrupt journal whose output
	// is unrecoverable; result and query endpoints answer 410 Gone so
	// clients can tell "lost" from "never existed". Immutable after
	// replay.
	tombstone bool
	// tenant routes the job through its tenant's scheduler queue; never
	// empty (absent X-Tenant maps to "default").
	tenant string
	// owner and leaseEpoch mirror the job's current (or last known) lease:
	// every event appended while they are set carries them, which is what
	// lets replay fence out a stale owner's late writes.
	owner      string
	leaseEpoch int
	// queued marks the job as sitting in the scheduler, so the coordinator
	// rescan never double-enqueues it.
	queued bool
}

// normalizeTenant maps the empty tenant (pre-fleet journals, direct
// construction) to the default tenant.
func normalizeTenant(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

func newJob(id string, req *Request, now time.Time) *job {
	j := &job{
		id:       id,
		hash:     req.hash(),
		req:      req,
		devices:  len(req.Configs),
		state:    StateQueued,
		created:  now,
		changed:  make(chan struct{}),
		manifest: manifestOf(req.Configs),
		tenant:   normalizeTenant(req.Tenant),
	}
	j.appendEventLocked(Event{State: StateQueued, Message: "queued", Time: now})
	return j
}

// appendEventLocked numbers and stores an event, journals it when a
// journal is attached, and wakes streamers. The caller must hold mu (or,
// for newJob, be the only reference holder). Journal append failures are
// sticky inside the jobJournal; the worker surfaces them as a job failure
// rather than blocking the event path here.
func (j *job) appendEventLocked(e Event) {
	e.Seq = len(j.events) + 1
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	// Stamp tenancy and ownership: the lease epoch on the journaled copy
	// is what lets replay discard a fenced-out owner's late writes.
	if e.Tenant == "" {
		e.Tenant = j.tenant
	}
	if e.Owner == "" && j.owner != "" {
		e.Owner, e.LeaseEpoch = j.owner, j.leaseEpoch
	}
	j.events = append(j.events, e)
	if j.jw != nil {
		_ = j.jw.appendEvent(e)
	}
	close(j.changed)
	j.changed = make(chan struct{})
}

// attachJournal starts journaling the job, first writing the events that
// accumulated before attachment (the "queued" event at minimum).
func (j *job) attachJournal(jw *jobJournal) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range j.events {
		if err := jw.appendEvent(e); err != nil {
			return err
		}
	}
	j.jw = jw
	return nil
}

// journalErr reports the job journal's sticky failure, nil when the job is
// not journaled or the journal is healthy.
func (j *job) journalErr() error {
	j.mu.Lock()
	jw := j.jw
	j.mu.Unlock()
	if jw == nil {
		return nil
	}
	return jw.Err()
}

// newJobFromReplay rebuilds a job from its journal. The replayed event
// history is kept verbatim so streamers see the job's full life across
// restarts; resumable jobs additionally get a "recovered" marker event
// (journaled by the caller once the journal is reattached).
func newJobFromReplay(rj *replayedJob) *job {
	j := &job{
		id:       rj.id,
		hash:     rj.hash,
		req:      rj.req,
		state:    rj.state,
		stage:    rj.stage,
		created:  rj.created,
		changed:  make(chan struct{}),
		events:   rj.events,
		result:   rj.result,
		report:   rj.report,
		errMsg:   rj.errMsg,
		resume:   rj.checkpoint,
		lastCP:   rj.checkpoint,
		manifest: rj.manifest,
		restarts: rj.starts,
		// A corrupt journal with a still-readable result can serve its
		// output; anything else corrupt cannot, ever again.
		tombstone:  rj.corrupt && rj.result == nil,
		owner:      rj.owner,
		leaseEpoch: rj.leaseEpoch,
	}
	if rj.req != nil {
		j.devices = len(rj.req.Configs)
		j.tenant = normalizeTenant(rj.req.Tenant)
	} else {
		j.tenant = DefaultTenant
	}
	if j.hash == "" && rj.req != nil {
		j.hash = rj.req.hash()
	}
	if j.manifest == nil && rj.req != nil {
		j.manifest = manifestOf(rj.req.Configs)
	}
	for _, e := range rj.events {
		switch {
		case e.Message == "started" && j.started.IsZero():
			j.started = e.Time
		case e.State.Terminal():
			j.finished = e.Time
		}
		if e.BaseJob != "" {
			j.baseJob, j.reusedStages = e.BaseJob, e.ReusedStages
		}
	}
	return j
}

// reattachJournal resumes journaling on an already-journaled job (replay
// path): unlike attachJournal it does not rewrite history, because the
// journal on disk already holds it.
func (j *job) reattachJournal(jw *jobJournal) {
	j.mu.Lock()
	j.jw = jw
	j.mu.Unlock()
}

// journalHandle returns the attached journal, nil when none.
func (j *job) journalHandle() *jobJournal {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.jw
}

// markRecovered returns a replayed job to the queued state and records the
// recovery on its (already reattached) journal. Any prior lease stamp is
// void: ownership restarts with the next claim.
func (j *job) markRecovered() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateQueued
	j.stage, j.iteration = "", 0
	j.cancelRequested = false
	j.cancel = nil
	j.draining = false
	j.owner, j.leaseEpoch = "", 0
	msg := fmt.Sprintf("recovered: requeued by daemon restart %d", j.restarts)
	if j.resume != nil {
		msg += ", resuming after " + j.resume.Stage + " checkpoint"
	}
	j.appendEventLocked(Event{State: StateQueued, Message: msg})
}

// setLease stamps the job with its claimed lease; every event from here to
// the terminal one carries the owner and fencing epoch.
func (j *job) setLease(owner string, epoch int) {
	j.mu.Lock()
	j.owner, j.leaseEpoch = owner, epoch
	j.mu.Unlock()
}

// setInQueue flags whether the job sits in the scheduler.
func (j *job) setInQueue(v bool) {
	j.mu.Lock()
	j.queued = v
	j.mu.Unlock()
}

// inQueue reports whether the job sits in the scheduler.
func (j *job) inQueue() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.queued
}

// adoptReplay refreshes a known job in place from a fresh journal replay —
// the coordinator path for jobs another node progressed or finished. The
// in-place update (same *job, same changed-channel protocol) keeps local
// event streamers attached across the adoption. Running or locally
// terminal jobs are left untouched: local truth wins for jobs this node
// owns, and requeued is the one terminal state adoption may overwrite.
func (j *job) adoptReplay(rj *replayedJob) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateRunning || j.state == StateDraining {
		return
	}
	if j.state.Terminal() && j.state != StateRequeued && !rj.state.Terminal() {
		return
	}
	if len(rj.events) < len(j.events) {
		// The disk replay is behind what this node already saw (a racing
		// append); adopting it would rewind streamers.
		return
	}
	j.state = rj.state
	j.stage, j.iteration = rj.stage, rj.iter
	j.events = rj.events
	j.errMsg = rj.errMsg
	j.restarts = rj.starts
	j.owner, j.leaseEpoch = rj.owner, rj.leaseEpoch
	if rj.checkpoint != nil {
		j.resume, j.lastCP = rj.checkpoint, rj.checkpoint
	}
	if rj.result != nil {
		j.result, j.report = rj.result, rj.report
	}
	for _, e := range rj.events {
		switch {
		case e.Message == "started" && j.started.IsZero():
			j.started = e.Time
		case e.State.Terminal():
			j.finished = e.Time
		}
	}
	close(j.changed)
	j.changed = make(chan struct{})
}

// noteDraining flags the job as being stopped by a graceful drain and
// emits the draining event. No-op once terminal.
func (j *job) noteDraining() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.draining {
		return
	}
	j.draining = true
	if j.state == StateRunning {
		j.state = StateDraining
	}
	j.appendEventLocked(Event{State: j.state, Message: "draining: daemon shutting down"})
}

// isTombstone reports whether the job's output was lost to journal
// corruption (set only at replay, so no lock is needed after Open).
func (j *job) isTombstone() bool { return j.tombstone }

// setLastCheckpoint retains the newest pipeline checkpoint in memory so the
// job can later serve as an incremental base even without a journal.
func (j *job) setLastCheckpoint(cp *confmask.Checkpoint) {
	j.mu.Lock()
	j.lastCP = cp
	j.mu.Unlock()
}

// lastCheckpoint returns the newest retained checkpoint, nil when none.
func (j *job) lastCheckpoint() *confmask.Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastCP
}

// noteIncremental records a successful incremental seed: the base job, the
// stages its checkpoint lets this job skip, and the edited devices, as both
// job state and a journaled event (Message non-empty → fsync boundary, so
// the seed decision is durable before the pipeline starts).
func (j *job) noteIncremental(baseID string, stages, edited []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.baseJob, j.reusedStages = baseID, stages
	j.appendEventLocked(Event{
		State:        j.state,
		BaseJob:      baseID,
		ReusedStages: stages,
		Message: fmt.Sprintf("incremental: reusing stages %v from base job %s (%d device(s) edited: %v)",
			stages, baseID, len(edited), edited),
	})
}

// noteIncrementalFallback records that a requested incremental seed could
// not be used and the job is running in full, with the reason.
func (j *job) noteIncrementalFallback(reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(Event{
		State:   j.state,
		Message: "incremental: falling back to full run: " + reason,
	})
}

// isDraining reports whether the job is being drained.
func (j *job) isDraining() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.draining
}

// setProgress records a pipeline stage transition as an event; prevStage
// and prevDur describe the stage the transition closed (prevStage "" when
// none, e.g. the first stage or an iteration within one stage).
func (j *job) setProgress(stage string, iteration int, prevStage string, prevDur time.Duration, prevAlloc uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return // a late callback after cancellation; drop it
	}
	j.stage, j.iteration = stage, iteration
	e := Event{State: j.state, Stage: stage, Iteration: iteration}
	if prevStage != "" {
		e.PrevStage, e.PrevStageMS = prevStage, prevDur.Milliseconds()
		e.PrevStageAllocBytes = prevAlloc
	}
	j.appendEventLocked(e)
}

// start transitions queued → running; it returns false when the job was
// cancelled while still in the queue.
func (j *job) start(cancel func(), now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelRequested {
		j.state = StateCancelled
		j.finished = now
		j.errMsg = "cancelled before start"
		j.appendEventLocked(Event{State: StateCancelled, Message: "cancelled before start", Time: now})
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.appendEventLocked(Event{State: StateRunning, Message: "started", Time: now})
	return true
}

// finish records the terminal state once the pipeline returned; prevStage
// and prevDur close the last open pipeline stage ("" when none ran).
func (j *job) finish(state State, result map[string]string, report *confmask.Report, errMsg string, now time.Time, prevStage string, prevDur time.Duration, prevAlloc uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.finished = now
	j.result = result
	j.report = report
	j.errMsg = errMsg
	j.stage, j.iteration = "", 0
	j.cancel = nil
	e := Event{State: state, Time: now}
	if prevStage != "" {
		e.PrevStage, e.PrevStageMS = prevStage, prevDur.Milliseconds()
		e.PrevStageAllocBytes = prevAlloc
	}
	switch state {
	case StateDone:
		e.Message = "done"
	case StateCancelled:
		e.Message = "cancelled"
	case StateRequeued:
		e.Message = "requeued: will resume at next daemon start"
	default:
		e.Error = errMsg
	}
	j.appendEventLocked(e)
}

// requestCancel marks the job for cancellation. It reports whether the
// request was accepted (false once the job is already terminal).
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	if !j.cancelRequested {
		j.cancelRequested = true
		j.appendEventLocked(Event{State: j.state, Message: "cancel requested"})
		if j.cancel != nil {
			j.cancel()
		}
	}
	return true
}

// cancelPipeline cancels the job's running pipeline context without
// setting cancelRequested — the drain path, where the stop is the
// daemon's doing and the job must classify as requeued, not cancelled.
func (j *job) cancelPipeline() {
	j.mu.Lock()
	c := j.cancel
	j.mu.Unlock()
	if c != nil {
		c()
	}
}

// status snapshots the job for the API.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		State:      j.state,
		InputHash:  j.hash,
		Devices:    j.devices,
		Stage:      j.stage,
		Iteration:  j.iteration,
		Created:    j.created,
		Error:      j.errMsg,
		Report:     j.report,
		Restarts:   j.restarts,
		Tenant:     j.tenant,
		Owner:      j.owner,
		LeaseEpoch: j.leaseEpoch,
	}
	st.BaseJob = j.baseJob
	st.ReusedStages = append([]string(nil), j.reusedStages...)
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// eventsSince returns the events after seq, the current state, and a
// channel closed on the next mutation — everything a streamer needs to
// replay and then follow without busy-waiting.
func (j *job) eventsSince(seq int) ([]Event, State, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if seq < len(j.events) {
		out = append(out, j.events[seq:]...)
	}
	return out, j.state, j.changed
}

// store is the in-memory job index with dedup by (tenant, request content
// hash) — tenants never dedup into each other's jobs, which would leak
// one tenant's job IDs and results to another.
type store struct {
	mu     sync.Mutex
	jobs   map[string]*job
	byHash map[string]string // tenant + "\x00" + request hash → job ID
	seq    int
}

func newStore() *store {
	return &store{jobs: make(map[string]*job), byHash: make(map[string]string)}
}

// dedupKey scopes the content hash to a tenant.
func dedupKey(tenant, hash string) string { return tenant + "\x00" + hash }

// add registers a job for req, deduplicating against the tenant's live
// jobs: when a queued, running, or done job exists for the same tenant and
// content hash, that job is returned with existing=true. Failed and
// cancelled jobs do not block resubmission.
func (s *store) add(req *Request, now time.Time) (j *job, existing bool) {
	hash := req.hash()
	key := dedupKey(normalizeTenant(req.Tenant), hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.byHash[key]; ok {
		return s.jobs[id], true
	}
	s.seq++
	id := fmt.Sprintf("j%06d-%s", s.seq, hash[:8])
	j = newJob(id, req, now)
	s.jobs[id] = j
	s.byHash[key] = id
	return j, false
}

// put registers a replayed job under its original ID, keeping the dedup
// index consistent: done, queued, and running-again jobs reclaim their
// hash so resubmissions dedup across restarts; failed and cancelled jobs
// do not. The seq counter advances past the replayed ID so new jobs never
// collide with journaled ones.
func (s *store) put(j *job, indexHash bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	if indexHash && j.hash != "" {
		s.byHash[dedupKey(j.tenant, j.hash)] = j.id
	}
	if n := jobSeq(j.id); n > s.seq {
		s.seq = n
	}
}

// get looks a job up by ID.
func (s *store) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// remove deletes a job entirely (used when enqueueing fails after add).
func (s *store) remove(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, j.id)
	key := dedupKey(j.tenant, j.hash)
	if s.byHash[key] == j.id {
		delete(s.byHash, key)
	}
}

// unindexHash drops the dedup entry of a failed or cancelled job so an
// identical resubmission starts fresh; the job itself stays queryable.
func (s *store) unindexHash(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := dedupKey(j.tenant, j.hash)
	if s.byHash[key] == j.id {
		delete(s.byHash, key)
	}
}

// closeJournals closes every attached job journal (end of Shutdown).
func (s *store) closeJournals() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.jw != nil {
			j.jw.close()
			j.jw = nil
		}
		j.mu.Unlock()
	}
}

// all snapshots every job (auto-base scanning).
func (s *store) all() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	return out
}

// list returns every job's status, newest first.
func (s *store) list() []Status {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}
