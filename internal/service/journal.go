package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"confmask"
	"confmask/internal/cluster"
	"confmask/internal/faults"
)

// The journal makes confmaskd crash-safe. Every job owns a directory under
// <data-dir>/jobs/<job-id>/ holding:
//
//	journal.ndjson   append-only NDJSON: one "submitted" record carrying
//	                 the full request, then one "event" record per job
//	                 event (state transitions and stage progress)
//	checkpoint.json  the latest pipeline stage checkpoint (atomic
//	                 write-then-rename), enabling resume-from-stage
//	result.json      the anonymized configs + report of a done job
//	                 (atomic write-then-rename)
//
// The journal is fsync'd at state boundaries (submission, started,
// terminal events, requeue) and buffered in between: losing a progress
// event to a crash costs nothing — the job restarts or resumes anyway —
// while losing a state transition could strand or duplicate a job.
//
// On startup the service replays every job directory: terminal jobs become
// queryable records, queued jobs re-enqueue, and running/draining/requeued
// jobs restart — from their last stage checkpoint when one exists.

// retryPolicy retries transient I/O with capped exponential backoff plus
// full jitter. All journal and checkpoint writes go through it.
type retryPolicy struct {
	attempts int           // total tries (≥ 1)
	base     time.Duration // backoff before the 2nd try
	cap      time.Duration // backoff ceiling
}

func defaultRetryPolicy() retryPolicy {
	return retryPolicy{attempts: 4, base: 25 * time.Millisecond, cap: time.Second}
}

// do runs f up to p.attempts times. Between tries it sleeps
// min(cap, base·2^k) scaled by a uniform jitter in [0.5, 1.0) — enough to
// de-synchronize retry storms without making tests slow or flaky.
func (p retryPolicy) do(label string, f func() error) error {
	if p.attempts < 1 {
		p.attempts = 1
	}
	var err error
	backoff := p.base
	for attempt := 1; ; attempt++ {
		if err = f(); err == nil {
			return nil
		}
		if attempt >= p.attempts {
			return fmt.Errorf("%s: %d attempts exhausted: %w", label, p.attempts, err)
		}
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		time.Sleep(sleep)
		backoff *= 2
		if backoff > p.cap {
			backoff = p.cap
		}
	}
}

// journalRecord is one NDJSON line of a job journal.
type journalRecord struct {
	// Type is "submitted" (first line, carries the request), "claim" (a
	// worker took lease ownership of the job), or "event".
	Type string    `json:"type"`
	Time time.Time `json:"time"`
	// Submission fields.
	ID      string   `json:"id,omitempty"`
	Hash    string   `json:"hash,omitempty"`
	Request *Request `json:"request,omitempty"`
	// Manifest content-addresses the submission's config files (file label
	// → sha256 hex), next to the whole-bundle Hash; incremental base
	// resolution diffs manifests across jobs.
	Manifest map[string]string `json:"manifest,omitempty"`
	// Event payload for Type == "event".
	Event *Event `json:"event,omitempty"`
	// Claim fields for Type == "claim": the owning node and its fencing
	// token. Replay drops event records whose LeaseEpoch predates the
	// newest claim — late writes from a fenced, possibly-frozen worker.
	Owner    string    `json:"owner,omitempty"`
	Epoch    int       `json:"epoch,omitempty"`
	Deadline time.Time `json:"deadline,omitempty"`
}

// resultDoc is the persisted form of a finished job's output.
type resultDoc struct {
	Configs map[string]string `json:"configs"`
	Report  *confmask.Report  `json:"report"`
}

// journal is the service-wide journal root.
type journal struct {
	root  string // <data-dir>/jobs
	retry retryPolicy
}

func openJournal(dataDir string, retry retryPolicy) (*journal, error) {
	root := filepath.Join(dataDir, "jobs")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{root: root, retry: retry}, nil
}

func (jl *journal) jobDir(id string) string { return filepath.Join(jl.root, id) }

// discard deletes a job's directory — the undo for create when the job
// cannot actually be accepted (queue full, attach failure).
func (jl *journal) discard(id string) { _ = os.RemoveAll(jl.jobDir(id)) }

// create starts a job's journal: its directory plus the fsync'd submitted
// record. A failure here means the submission must be rejected — a job the
// journal cannot remember is a job a crash would silently lose.
func (jl *journal) create(id string, req *Request, hash string, created time.Time) (*jobJournal, error) {
	dir := jl.jobDir(id)
	jw := &jobJournal{jl: jl, dir: dir}
	err := jl.retry.do("journal create "+id, func() error {
		if err := faults.Fire("service.journal.create"); err != nil {
			return err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.OpenFile(filepath.Join(dir, "journal.ndjson"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		jw.f = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := jw.append(journalRecord{Type: "submitted", Time: created, ID: id, Hash: hash, Request: req, Manifest: manifestOf(req.Configs)}, true); err != nil {
		jw.close()
		return nil, err
	}
	return jw, nil
}

// open reopens an existing job journal for appending (restart path).
func (jl *journal) open(id string) (*jobJournal, error) {
	dir := jl.jobDir(id)
	jw := &jobJournal{jl: jl, dir: dir}
	err := jl.retry.do("journal open "+id, func() error {
		f, err := os.OpenFile(filepath.Join(dir, "journal.ndjson"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		jw.f = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return jw, nil
}

// jobJournal appends one job's records. Append errors (after retries) are
// sticky: the job must fail — claiming durability while the journal is
// broken would be a lie — and Err surfaces the reason.
type jobJournal struct {
	jl  *journal
	dir string

	mu  sync.Mutex
	f   *os.File
	err error
	// fence, when set, gates every write on lease ownership: buffered
	// appends check the cheap local token (Valid), while fsync-boundary
	// appends, checkpoints, and results re-read the lease from disk
	// (Verify) — a frozen worker that lost its lease must not be able to
	// corrupt the new owner's journal with a late durable write.
	fence    *cluster.Handle
	onFenced func()
	fenced   bool
}

// Err returns the sticky failure, if any.
func (jw *jobJournal) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}

// setFence attaches a lease handle to the journal. onFenced fires once,
// the first time a write is rejected for lost ownership (metrics hook).
func (jw *jobJournal) setFence(h *cluster.Handle, onFenced func()) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	jw.fence = h
	jw.onFenced = onFenced
}

// checkFenceLocked validates lease ownership before a write. Durable
// writes re-verify against disk; buffered ones trust the local token.
// A fence rejection is sticky: once ownership is lost every later write
// fails too, and the run unwinds as fenced.
func (jw *jobJournal) checkFenceLocked(durable bool) error {
	if jw.fence == nil {
		return nil
	}
	var err error
	if durable {
		err = jw.fence.Verify()
	} else if !jw.fence.Valid() {
		err = cluster.ErrFenced
	}
	if err == nil {
		return nil
	}
	if !jw.fenced {
		jw.fenced = true
		if jw.onFenced != nil {
			jw.onFenced()
		}
	}
	jw.err = fmt.Errorf("journal write rejected: %w", err)
	return jw.err
}

// appendClaim journals (fsync'd) that a lease owner took the job over.
// Replay uses the newest claim's epoch as the fencing floor for events.
func (jw *jobJournal) appendClaim(owner string, epoch int, deadline time.Time) error {
	return jw.append(journalRecord{Type: "claim", Time: time.Now().UTC(), Owner: owner, Epoch: epoch, Deadline: deadline}, true)
}

// append writes one NDJSON record, fsyncing when sync is set. Failures are
// retried per the policy and then remembered as the sticky error.
func (jw *jobJournal) append(rec journalRecord, sync bool) error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return jw.err
	}
	if jw.f == nil {
		jw.err = errors.New("journal closed")
		return jw.err
	}
	if err := jw.checkFenceLocked(sync); err != nil {
		return err
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		jw.err = err
		return err
	}
	buf = append(buf, '\n')
	err = jw.jl.retry.do("journal append", func() error {
		if err := faults.Fire("service.journal.append"); err != nil {
			return err
		}
		_, err := jw.f.Write(buf)
		return err
	})
	if err != nil {
		jw.err = err
		return err
	}
	if sync {
		if err := jw.syncLocked(); err != nil {
			jw.err = err
			return err
		}
	}
	return nil
}

// appendEvent journals one job event. State-boundary events (anything with
// a message or an error — queued, started, terminal, requeued, draining)
// are fsync'd; bare progress events are buffered.
func (jw *jobJournal) appendEvent(e Event) error {
	boundary := e.Message != "" || e.Error != ""
	return jw.append(journalRecord{Type: "event", Time: e.Time, Event: &e}, boundary)
}

// syncLocked fsyncs the journal file. The "service.journal.sync" fault
// point can drop the fsync (ModeDrop): the write stays in the page cache,
// which is exactly the window a kill-and-restart chaos test wants open.
func (jw *jobJournal) syncLocked() error {
	if err := faults.Fire("service.journal.sync"); err != nil {
		if errors.Is(err, faults.ErrDropped) {
			return nil // fsync dropped: buffered write, no durability
		}
		return err
	}
	return jw.f.Sync()
}

// writeCheckpoint persists the latest stage checkpoint atomically
// (temp file, fsync, rename): a crash mid-write leaves the previous
// checkpoint intact, never a torn one.
func (jw *jobJournal) writeCheckpoint(cp *confmask.Checkpoint) error {
	jw.mu.Lock()
	if err := jw.checkFenceLocked(true); err != nil {
		jw.mu.Unlock()
		return err
	}
	jw.mu.Unlock()
	buf, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	err = jw.jl.retry.do("checkpoint write", func() error {
		if err := faults.Fire("service.checkpoint.write"); err != nil {
			return err
		}
		return atomicWrite(filepath.Join(jw.dir, "checkpoint.json"), buf)
	})
	if err != nil {
		jw.mu.Lock()
		jw.err = err
		jw.mu.Unlock()
	}
	return err
}

// writeResult persists a done job's output atomically.
func (jw *jobJournal) writeResult(configs map[string]string, report *confmask.Report) error {
	jw.mu.Lock()
	if err := jw.checkFenceLocked(true); err != nil {
		jw.mu.Unlock()
		return err
	}
	jw.mu.Unlock()
	buf, err := json.Marshal(resultDoc{Configs: configs, Report: report})
	if err != nil {
		return err
	}
	return jw.jl.retry.do("result write", func() error {
		if err := faults.Fire("service.result.write"); err != nil {
			return err
		}
		return atomicWrite(filepath.Join(jw.dir, "result.json"), buf)
	})
}

func (jw *jobJournal) close() {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.f != nil {
		_ = jw.f.Close()
		jw.f = nil
	}
}

// atomicWrite writes data to path via a same-directory temp file, fsync,
// and rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// replayedJob is one job reconstructed from its directory.
type replayedJob struct {
	id      string
	hash    string
	req     *Request
	created time.Time
	events  []Event
	state   State
	stage   string
	iter    int
	errMsg  string
	// starts counts "started" events: how many times some process began
	// executing this job. The restart watchdog fails jobs whose count
	// exceeds the cap instead of crash-looping the daemon on poison input.
	starts int
	// owner / leaseEpoch mirror the newest claim record: which node most
	// recently took lease ownership of this job, and its fencing token.
	owner      string
	leaseEpoch int
	checkpoint *confmask.Checkpoint
	manifest   map[string]string
	result     map[string]string
	report     *confmask.Report
	// corrupt is set when the journal was unreadable; the job surfaces as
	// failed with the parse error instead of silently disappearing.
	corrupt bool
}

// replay scans every job directory and reconstructs job states, sorted by
// job ID (submission order). A truncated final line — the signature of a
// crash mid-append — is tolerated and ignored.
func (jl *journal) replay() ([]*replayedJob, error) {
	entries, err := os.ReadDir(jl.root)
	if err != nil {
		return nil, fmt.Errorf("journal replay: %w", err)
	}
	var out []*replayedJob
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rj := jl.replayOne(e.Name())
		if rj != nil {
			out = append(out, rj)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out, nil
}

func (jl *journal) replayOne(id string) *replayedJob {
	dir := jl.jobDir(id)
	rj := &replayedJob{id: id, state: StateQueued}
	data, err := os.ReadFile(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		rj.corrupt = true
		rj.errMsg = fmt.Sprintf("journal unreadable: %v", err)
		return rj
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), 256<<20)
	complete := strings.HasSuffix(string(data), "\n")
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if !complete && len(lines) > 0 {
		lines = lines[:len(lines)-1] // torn tail from a crash mid-append
	}
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// A torn or corrupted interior line: everything before it is
			// trustworthy, everything after it is not.
			if rj.req == nil {
				rj.corrupt = true
				rj.errMsg = fmt.Sprintf("journal line %d corrupt: %v", i+1, err)
				return rj
			}
			break
		}
		switch rec.Type {
		case "submitted":
			rj.req = rec.Request
			rj.hash = rec.Hash
			rj.manifest = rec.Manifest
			rj.created = rec.Time
		case "claim":
			// The newest claim in file order is the current owner; O_APPEND
			// serializes records, so file order is claim order.
			rj.owner = rec.Owner
			rj.leaseEpoch = rec.Epoch
		case "event":
			if rec.Event == nil {
				continue
			}
			e := *rec.Event
			if e.LeaseEpoch > 0 && e.LeaseEpoch < rj.leaseEpoch {
				// A late buffered write from a fenced previous owner that
				// slipped in after the takeover's claim record: the new
				// owner's history is authoritative, so drop it.
				continue
			}
			rj.events = append(rj.events, e)
			rj.state = e.State
			if e.Stage != "" {
				rj.stage, rj.iter = e.Stage, e.Iteration
			}
			if e.State.Terminal() {
				rj.stage, rj.iter = "", 0
			}
			if e.Error != "" {
				rj.errMsg = e.Error
			}
			if e.Message == "started" {
				rj.starts++
			}
		}
	}
	if rj.req == nil {
		rj.corrupt = true
		if rj.errMsg == "" {
			rj.errMsg = "journal has no submitted record"
		}
		return rj
	}
	// Renumber: the torn-tail trim may have dropped events, and replayed
	// seq numbers must stay dense for streamers.
	for i := range rj.events {
		rj.events[i].Seq = i + 1
	}
	if cp, err := readCheckpoint(dir); err == nil {
		rj.checkpoint = cp
	}
	if rj.state == StateDone {
		if res, err := readResult(dir); err == nil {
			rj.result = res.Configs
			rj.report = res.Report
		} else {
			// Terminal "done" without a readable result: the job cannot
			// serve its output, so resurface it as failed.
			rj.state = StateFailed
			rj.errMsg = fmt.Sprintf("result lost: %v", err)
			rj.corrupt = true
		}
	}
	return rj
}

func readCheckpoint(dir string) (*confmask.Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, "checkpoint.json"))
	if err != nil {
		return nil, err
	}
	var cp confmask.Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

func readResult(dir string) (*resultDoc, error) {
	data, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		return nil, err
	}
	var res resultDoc
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// jobSeq extracts the numeric sequence from a job ID ("j000042-..." → 42).
func jobSeq(id string) int {
	if !strings.HasPrefix(id, "j") {
		return 0
	}
	rest := id[1:]
	if dash := strings.IndexByte(rest, '-'); dash >= 0 {
		rest = rest[:dash]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0
	}
	return n
}
