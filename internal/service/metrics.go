package service

import (
	"encoding/json"
	"expvar"
	"runtime"
	"sync"
	"time"
)

// histogram is a fixed-bucket wall-clock histogram in the expvar spirit:
// cheap to update, rendered as JSON on GET /metrics.
type histogram struct {
	mu  sync.Mutex
	n   int64
	sum time.Duration
	// counts[i] counts observations ≤ histogramBounds[i]; the last bucket
	// is +Inf.
	counts [len(histogramBounds) + 1]int64
}

var histogramBounds = [...]time.Duration{
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
	time.Minute,
}

func (h *histogram) observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	h.sum += d
	for i, b := range histogramBounds {
		if d <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(histogramBounds)]++
}

// MarshalJSON renders {"count":N,"total_ms":T,"buckets":{"le_10ms":...}}.
func (h *histogram) MarshalJSON() ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := map[string]int64{
		"le_10ms":  h.counts[0],
		"le_100ms": h.counts[1],
		"le_1s":    h.counts[2],
		"le_10s":   h.counts[3],
		"le_1m":    h.counts[4],
		"inf":      h.counts[5],
	}
	return json.Marshal(map[string]any{
		"count":    h.n,
		"total_ms": h.sum.Milliseconds(),
		"buckets":  buckets,
	})
}

// metrics aggregates the daemon's counters. The expvar types give atomic
// counters with expvar semantics, but instances are deliberately not
// published to the global expvar registry so that many Servers (tests!)
// can coexist in one process; GET /metrics renders them instead.
type metrics struct {
	JobsSubmitted expvar.Int // accepted POSTs, dedup hits excluded
	JobsDeduped   expvar.Int // POSTs answered by an existing job
	JobsRejected  expvar.Int // POSTs refused with 429 (queue full)
	JobsRunning   expvar.Int // gauge
	JobsDone      expvar.Int
	JobsFailed    expvar.Int
	JobsCancelled expvar.Int
	JobsPanicked  expvar.Int // pipeline panics converted to job failures
	JobsRequeued  expvar.Int // drained jobs journaled for the next start
	JobsRecovered expvar.Int // jobs re-enqueued by journal replay
	JournalErrors expvar.Int // journal/checkpoint writes that exhausted retries
	QueueDepth    expvar.Int // gauge
	QueriesTotal  expvar.Int // verification predicates answered
	QueryCacheHit expvar.Int // query batches served by an already-built engine

	JobsIncremental      expvar.Int // jobs seeded from another job's checkpoint
	StagesReused         expvar.Int // pipeline stages skipped via a base checkpoint
	IncrementalFallbacks expvar.Int // base-job requests that fell back to a full run

	LeasesExpired  expvar.Int // expired/released leases observed by the coordinator
	FencingRejects expvar.Int // journal writes refused for lost lease ownership
	RateLimited    expvar.Int // submits refused 429 by the per-tenant rate limiter
	LeasesHeld     expvar.Int // gauge: leases this node currently holds

	stageMu sync.Mutex
	stages  map[string]*histogram // per-stage wall clock
}

func newMetrics() *metrics {
	return &metrics{stages: make(map[string]*histogram)}
}

// observeStage records one wall-clock sample for a pipeline stage.
func (m *metrics) observeStage(stage string, d time.Duration) {
	m.stageMu.Lock()
	h, ok := m.stages[stage]
	if !ok {
		h = &histogram{}
		m.stages[stage] = h
	}
	m.stageMu.Unlock()
	h.observe(d)
}

// snapshot renders every counter and histogram as one JSON-able document.
func (m *metrics) snapshot() map[string]any {
	m.stageMu.Lock()
	stages := make(map[string]*histogram, len(m.stages))
	for k, v := range m.stages {
		stages[k] = v
	}
	m.stageMu.Unlock()
	return map[string]any{
		"jobs_submitted_total":        m.JobsSubmitted.Value(),
		"jobs_deduped_total":          m.JobsDeduped.Value(),
		"jobs_rejected_total":         m.JobsRejected.Value(),
		"jobs_done_total":             m.JobsDone.Value(),
		"jobs_failed_total":           m.JobsFailed.Value(),
		"jobs_cancelled_total":        m.JobsCancelled.Value(),
		"jobs_panicked_total":         m.JobsPanicked.Value(),
		"jobs_requeued_total":         m.JobsRequeued.Value(),
		"jobs_recovered_total":        m.JobsRecovered.Value(),
		"journal_errors_total":        m.JournalErrors.Value(),
		"jobs_running":                m.JobsRunning.Value(),
		"queue_depth":                 m.QueueDepth.Value(),
		"queries_total":               m.QueriesTotal.Value(),
		"query_cache_hits_total":      m.QueryCacheHit.Value(),
		"jobs_incremental_total":      m.JobsIncremental.Value(),
		"stages_reused_total":         m.StagesReused.Value(),
		"incremental_fallbacks_total": m.IncrementalFallbacks.Value(),
		"leases_expired_total":        m.LeasesExpired.Value(),
		"fencing_rejects_total":       m.FencingRejects.Value(),
		"rate_limited_total":          m.RateLimited.Value(),
		"leases_held":                 m.LeasesHeld.Value(),
		"stage_seconds":               stages,
		// Live-heap gauge, read at render time: the number an operator
		// watches while a thousand-router job runs. Cumulative per-stage
		// allocation rides on job events (prev_stage_alloc_bytes).
		"heap_inuse_bytes": heapInuse(),
	}
}

// heapInuse reads the live-heap gauge from the runtime.
func heapInuse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// stageTimer turns the pipeline's progress callbacks into per-stage
// duration and allocation samples: each transition closes the previous
// stage's clock and allocation window. One timer lives per job run, called
// only from that job's worker goroutine. The allocation delta is
// process-wide TotalAlloc, so concurrent jobs bleed into each other's
// numbers — the event field documents this; exact per-stage attribution
// comes from the pipeline's own Report.StageAlloc.
type stageTimer struct {
	m     *metrics
	stage string
	start time.Time
	alloc uint64
}

// transition switches the open stage clock, returning the stage it closed,
// its wall-clock duration, and the bytes allocated while it was open (""
// when no stage ended) so callers can put the sample on the job's event
// log as well.
func (t *stageTimer) transition(stage string, now time.Time) (closed string, d time.Duration, alloc uint64) {
	if t.stage == stage {
		return "", 0, 0 // equivalence iterations stay within one stage clock
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if t.stage != "" {
		closed, d, alloc = t.stage, now.Sub(t.start), ms.TotalAlloc-t.alloc
		t.m.observeStage(closed, d)
	}
	t.stage, t.start, t.alloc = stage, now, ms.TotalAlloc
	return closed, d, alloc
}

// finish closes the clock of the last open stage.
func (t *stageTimer) finish(now time.Time) (closed string, d time.Duration, alloc uint64) {
	return t.transition("", now)
}
