package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"confmask/internal/query"
)

// This file is the daemon side of the verification query API:
// POST /v1/jobs/{id}/query takes a JSON batch of predicates and streams
// NDJSON results. Everything is served from cached state — the first
// batch against a job parses and simulates the job's original and
// anonymized configuration sets once (both are already in memory or in
// the journal's result document), and every later batch reuses that
// engine, whose per-destination path caches make each predicate a
// lookup. queries_total counts predicates answered;
// query_cache_hits_total counts batches that found the engine already
// built.

// queryBatch is the request payload.
type queryBatch struct {
	Queries []query.Query `json:"queries"`
}

// queryEntry is the per-job engine cache slot. The once makes concurrent
// first batches build the engine exactly once; err is sticky so a job
// whose configs cannot be re-simulated fails every batch the same way.
type queryEntry struct {
	once sync.Once
	eng  *query.Engine
	err  error
}

// queryEntryFor returns the job's cache slot, reporting whether it
// already existed (the metric's definition of a cache hit).
func (s *Server) queryEntryFor(id string) (*queryEntry, bool) {
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	if s.queryCache == nil {
		s.queryCache = make(map[string]*queryEntry)
	}
	ent, ok := s.queryCache[id]
	if !ok {
		ent = &queryEntry{}
		s.queryCache[id] = ent
	}
	return ent, ok
}

// buildQueryEngine re-simulates the job's two networks — the original
// from the submitted configs, the anonymized from the result — and wires
// them into an engine (original as pathdiff baseline). Deterministic:
// same job, same engine, regardless of which daemon start builds it.
func (s *Server) buildQueryEngine(j *job) (*query.Engine, error) {
	j.mu.Lock()
	req, result := j.req, j.result
	j.mu.Unlock()
	if req == nil || len(req.Configs) == 0 {
		return nil, errors.New("job request unavailable")
	}
	if len(result) == 0 {
		return nil, errors.New("job result unavailable")
	}
	par := req.Options.Parallelism
	if par == 0 {
		par = s.cfg.Parallelism
	}
	orig, err := query.FromConfigs(req.Configs, par)
	if err != nil {
		return nil, fmt.Errorf("re-simulating original configs: %w", err)
	}
	anon, err := query.FromConfigs(result, par)
	if err != nil {
		return nil, fmt.Errorf("re-simulating anonymized configs: %w", err)
	}
	return query.New(anon, query.Options{Baseline: orig, Timeout: s.cfg.QueryTimeout}), nil
}

// handleQuery answers a verification batch for a done job: 404 unknown,
// 410 journal-tombstoned, 409 not done, 400 malformed/empty/oversized
// batch. Results stream as NDJSON in query order (chunked flushes), and
// are byte-identical for a given job and batch across restarts and
// parallelism settings. A trailing stats line reports the engine's
// counters for the batch.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if j.isTombstone() {
		writeError(w, http.StatusGone, "job %q output lost: %s", j.id, j.status().Error)
		return
	}
	st := j.status()
	if st.State != StateDone {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("job is %s, not done", st.State),
			"state": st.State,
		})
		return
	}
	var batch queryBatch
	body := http.MaxBytesReader(w, r.Body, 32<<20)
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "invalid query batch: %v", err)
		return
	}
	if len(batch.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "query batch is empty")
		return
	}
	if len(batch.Queries) > s.cfg.MaxQueryBatch {
		writeError(w, http.StatusBadRequest, "query batch of %d exceeds limit %d",
			len(batch.Queries), s.cfg.MaxQueryBatch)
		return
	}

	ent, hit := s.queryEntryFor(j.id)
	if hit {
		s.metrics.QueryCacheHit.Add(1)
	}
	ent.once.Do(func() { ent.eng, ent.err = s.buildQueryEngine(j) })
	if ent.err != nil {
		writeError(w, http.StatusInternalServerError, "cannot build query engine: %v", ent.err)
		return
	}
	s.metrics.QueriesTotal.Add(int64(len(batch.Queries)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	// Evaluate and stream in fixed chunks: clients see progress on long
	// batches, and the emitted byte stream stays independent of chunking
	// (results are written strictly in query order).
	const chunk = 128
	before := ent.eng.Stats()
	qs := batch.Queries
	for off := 0; off < len(qs); off += chunk {
		end := off + chunk
		if end > len(qs) {
			end = len(qs)
		}
		results := ent.eng.Run(r.Context(), qs[off:end])
		for i := range results {
			results[i].Index += off
			if err := enc.Encode(&results[i]); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	after := ent.eng.Stats()
	_ = enc.Encode(map[string]any{
		"stats": query.Stats{
			Queries:        after.Queries - before.Queries,
			WhatIfRetraced: after.WhatIfRetraced - before.WhatIfRetraced,
			WhatIfReused:   after.WhatIfReused - before.WhatIfReused,
		},
	})
	if flusher != nil {
		flusher.Flush()
	}
}
