package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"confmask/internal/query"
)

// postQuery POSTs a query batch and returns the response plus its full
// body (NDJSON on success, a JSON error document otherwise).
func postQuery(t *testing.T, ts *httptest.Server, id string, batch any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// testBatch builds a mixed batch over the request's own network: host
// names come from simulating the submitted configs, so they exist in
// both the original and (real hosts survive anonymization) the
// anonymized snapshot. The last query is deliberately malformed.
func testBatch(t *testing.T, req *Request) []query.Query {
	t.Helper()
	snap, err := query.FromConfigs(req.Configs, 1)
	if err != nil {
		t.Fatal(err)
	}
	hosts := snap.Hosts()
	if len(hosts) < 3 {
		t.Fatalf("test network has %d hosts, need 3", len(hosts))
	}
	return []query.Query{
		{ID: "reach", Kind: query.Reachability, Src: hosts[0], Dst: hosts[1]},
		{ID: "way", Kind: query.Waypoint, Src: hosts[0], Dst: hosts[1], Via: hosts[0]},
		{ID: "iso", Kind: query.Isolation, Src: hosts[0], Dst: hosts[1]},
		{ID: "diff", Kind: query.PathDiff, Src: hosts[0], Dst: hosts[1]},
		{ID: "whatif", Kind: query.WhatIf, Src: hosts[0], Dst: hosts[1], FailNode: hosts[2]},
		{ID: "bad", Kind: "bogus", Src: hosts[0], Dst: hosts[1]},
	}
}

// splitNDJSON decodes a query response body into per-query results and
// the trailing stats line.
func splitNDJSON(t *testing.T, data []byte) ([]query.Result, query.Stats) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON body has %d lines: %q", len(lines), data)
	}
	var results []query.Result
	for _, line := range lines[:len(lines)-1] {
		var r query.Result
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("result line %q: %v", line, err)
		}
		results = append(results, r)
	}
	var tail struct {
		Stats *query.Stats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil || tail.Stats == nil {
		t.Fatalf("trailing stats line %q: %v", lines[len(lines)-1], err)
	}
	return results, *tail.Stats
}

// TestQueryEndpoint exercises POST /v1/jobs/{id}/query end to end:
// request validation errors, the NDJSON result stream, the trailing
// stats line, engine caching across batches, and the two metrics.
func TestQueryEndpoint(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, JobTimeout: 2 * time.Minute, MaxQueryBatch: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := testRequest(t, 61)
	_, st := postJob(t, ts, req)
	waitState(t, ts, st.ID, StateDone)
	qs := testBatch(t, req)
	batch := map[string]any{"queries": qs}

	// Rejections first: unknown job, empty batch, oversized batch,
	// malformed JSON.
	if resp, _ := postQuery(t, ts, "j999999-deadbeef", batch); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s, want 404", resp.Status)
	}
	if resp, _ := postQuery(t, ts, st.ID, map[string]any{"queries": []query.Query{}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %s, want 400", resp.Status)
	}
	big := make([]query.Query, 9)
	for i := range big {
		big[i] = qs[0]
	}
	if resp, _ := postQuery(t, ts, st.ID, map[string]any{"queries": big}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: %s, want 400", resp.Status)
	}
	r, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %s, want 400", r.Status)
	}

	// The real batch. Every well-formed query answers without error; the
	// bogus-kind query reports a per-query error instead of failing the
	// batch.
	resp, body := postQuery(t, ts, st.ID, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s: %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	results, stats := splitNDJSON(t, body)
	if len(results) != len(qs) {
		t.Fatalf("%d results for %d queries", len(results), len(qs))
	}
	for i, res := range results {
		if res.Index != i || res.ID != qs[i].ID || res.Kind != qs[i].Kind {
			t.Fatalf("result %d out of order: %+v vs query %+v", i, res, qs[i])
		}
	}
	for _, res := range results[:len(results)-1] {
		if res.Error != "" {
			t.Fatalf("query %s failed: %s", res.ID, res.Error)
		}
	}
	if results[len(results)-1].Error == "" {
		t.Fatal("bogus-kind query did not report an error")
	}
	if !results[0].Holds {
		t.Fatalf("reachability does not hold: %+v", results[0])
	}
	if !results[1].Holds {
		t.Fatalf("waypoint via src does not hold: %+v", results[1])
	}
	if results[2].Holds {
		t.Fatalf("isolation holds on a reachable pair: %+v", results[2])
	}
	if stats.Queries != int64(len(qs)) {
		t.Fatalf("stats line counted %d queries, want %d", stats.Queries, len(qs))
	}

	// Second identical batch: the per-query result lines are
	// byte-identical (warm caches change timing, never answers) and the
	// engine cache reports a hit.
	resp2, body2 := postQuery(t, ts, st.ID, batch)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second query: %s", resp2.Status)
	}
	cut := func(b []byte) []byte { return b[:bytes.LastIndexByte(bytes.TrimSuffix(b, []byte("\n")), '\n')+1] }
	if !bytes.Equal(cut(body), cut(body2)) {
		t.Fatalf("result lines differ across batches:\n%s\nvs\n%s", cut(body), cut(body2))
	}

	m := metricsSnapshot(t, ts)
	if n := metricInt(t, m, "queries_total"); n != 2*int64(len(qs)) {
		t.Fatalf("queries_total = %d, want %d", n, 2*len(qs))
	}
	if n := metricInt(t, m, "query_cache_hits_total"); n != 1 {
		t.Fatalf("query_cache_hits_total = %d, want 1", n)
	}
}

// TestQueryConflictWhenNotDone asserts a running job answers 409 with
// its state, and starts answering once done.
func TestQueryConflictWhenNotDone(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := New(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute,
		StageHook: func(id, stage string, iter int) {
			if stage == "equivalence" {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := testRequest(t, 62)
	_, st := postJob(t, ts, req)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached equivalence")
	}
	batch := map[string]any{"queries": []query.Query{{Kind: query.Reachability, Src: "a", Dst: "b"}}}
	resp, body := postQuery(t, ts, st.ID, batch)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("query on running job: %s, want 409", resp.Status)
	}
	var conflict struct {
		State State `json:"state"`
	}
	if err := json.Unmarshal(body, &conflict); err != nil || conflict.State != StateRunning {
		t.Fatalf("conflict body %s (err %v), want state running", body, err)
	}

	close(release)
	waitState(t, ts, st.ID, StateDone)
	resp2, _ := postQuery(t, ts, st.ID, map[string]any{"queries": testBatch(t, req)})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query after done: %s", resp2.Status)
	}
}

// TestQueryTombstoneGone plants an unreadable journal and asserts both
// the result and query endpoints answer 410 Gone — the job is known but
// its output is unrecoverable, which is different from 404.
func TestQueryTombstoneGone(t *testing.T) {
	dir := t.TempDir()
	id := "j000001-deadbeef"
	jobDir := filepath.Join(dir, "jobs", id)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "journal.ndjson"), []byte("not ndjson at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	st := getStatus(t, ts, id)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("tombstone status %s (error %q), want failed with reason", st.State, st.Error)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Fatalf("result on tombstone: %s, want 410", r.Status)
	}
	batch := map[string]any{"queries": []query.Query{{Kind: query.Reachability, Src: "a", Dst: "b"}}}
	resp, body := postQuery(t, ts, id, batch)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("query on tombstone: %s, want 410", resp.Status)
	}
	if !bytes.Contains(body, []byte("output lost")) {
		t.Fatalf("410 body %s does not explain the loss", body)
	}
}

// TestQueryByteIdenticalAcrossReplay runs a job to completion, queries
// it, abandons the daemon kill -9 style (no shutdown, journal still
// open), replays the data directory in a second daemon, and asserts the
// identical batch yields a byte-identical NDJSON response — including
// the stats line, because the rebuilt engine does the same work.
func TestQueryByteIdenticalAcrossReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := testRequest(t, 63)
	_, st := postJob(t, ts, req)
	waitState(t, ts, st.ID, StateDone)
	batch := map[string]any{"queries": testBatch(t, req)}
	resp1, body1 := postQuery(t, ts, st.ID, batch)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("query before replay: %s: %s", resp1.Status, body1)
	}
	// No shutdown: the first daemon keeps its journal open, exactly the
	// state a kill -9 leaves behind.

	s2, err := Open(Config{Workers: 2, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	if st2 := getStatus(t, ts2, st.ID); st2.State != StateDone {
		t.Fatalf("replayed job state %s, want done", st2.State)
	}
	resp2, body2 := postQuery(t, ts2, st.ID, batch)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query after replay: %s: %s", resp2.Status, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("query responses differ across replay:\n%s\nvs\n%s", body1, body2)
	}
}
