package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"confmask"
	"confmask/internal/faults"
)

// directRun computes the reference output for a request: the uninterrupted
// in-process pipeline with the same configs, options, and seed.
func directRun(t *testing.T, req *Request) map[string]string {
	t.Helper()
	out, _, err := confmask.Anonymize(req.Configs, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// fetchResult pulls a done job's configs from the API.
func fetchResult(t *testing.T, ts *httptest.Server, id string) map[string]string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %s", id, resp.Status)
	}
	var doc struct {
		Configs map[string]string `json:"configs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Configs
}

// assertIdentical fails unless the job's result is byte-identical to the
// uninterrupted reference run.
func assertIdentical(t *testing.T, ts *httptest.Server, id string, want map[string]string, label string) {
	t.Helper()
	got := fetchResult(t, ts, id)
	if len(got) != len(want) {
		t.Fatalf("%s: %d configs, want %d", label, len(got), len(want))
	}
	for name, text := range want {
		if got[name] != text {
			t.Fatalf("%s: config %s differs from uninterrupted run", label, name)
		}
	}
}

// jobEvents pulls a job's full event replay (no follow).
func jobEvents(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events?follow=false")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []Event
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func hasEvent(events []Event, pred func(Event) bool) bool {
	for _, e := range events {
		if pred(e) {
			return true
		}
	}
	return false
}

func metricsSnapshot(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func metricInt(t *testing.T, m map[string]any, key string) int64 {
	t.Helper()
	v, ok := m[key].(float64)
	if !ok {
		t.Fatalf("metric %s missing or not a number: %v", key, m[key])
	}
	return int64(v)
}

// TestDrainRequeueResume is the graceful path of crash safety: a drain
// deadline stops a running job with draining → requeued events, the
// journal keeps its last stage checkpoint, and a fresh server on the same
// data dir resumes both the interrupted job and the still-queued one to
// results byte-identical to an uninterrupted run.
func TestDrainRequeueResume(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s, err := Open(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		StageHook: func(id, stage string, iter int) {
			if stage == "equivalence" {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	reqA, reqB := testRequest(t, 31), testRequest(t, 32)
	_, stA := postJob(t, ts, reqA)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job A never reached equivalence")
	}
	_, stB := postJob(t, ts, reqB)

	// Drain with an already-expired deadline: the running job must be
	// stopped and requeued, not cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() { s.Shutdown(ctx); close(done) }()
	// The shutdown path marks the job draining, then cancels its pipeline;
	// the pipeline is parked in the StageHook, so release it once the
	// draining event is on the books.
	deadline := time.Now().Add(10 * time.Second)
	for {
		events := jobEvents(t, ts, stA.ID)
		if hasEvent(events, func(e Event) bool { return strings.Contains(e.Message, "draining") }) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never saw a draining event")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	<-done

	if st := getStatus(t, ts, stA.ID); st.State != StateRequeued {
		t.Fatalf("running job drained to %s, want requeued", st.State)
	}
	if st := getStatus(t, ts, stB.ID); st.State != StateRequeued {
		t.Fatalf("queued job drained to %s, want requeued", st.State)
	}
	eventsA := jobEvents(t, ts, stA.ID)
	if !hasEvent(eventsA, func(e Event) bool { return strings.Contains(e.Message, "draining") }) ||
		!hasEvent(eventsA, func(e Event) bool { return strings.Contains(e.Message, "requeued") }) {
		t.Fatalf("job A events missing draining/requeued pair: %+v", eventsA)
	}
	// The interrupted job got past topology, so its checkpoint must be on
	// disk for the next start to resume from.
	if _, err := os.Stat(filepath.Join(dir, "jobs", stA.ID, "checkpoint.json")); err != nil {
		t.Fatalf("no checkpoint persisted for drained job: %v", err)
	}
	ts.Close()

	// Restart against the same data dir: both jobs replay and complete.
	s2, err := Open(Config{Workers: 2, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	finalA := waitState(t, ts2, stA.ID, StateDone)
	finalB := waitState(t, ts2, stB.ID, StateDone)
	if finalA.Restarts != 1 {
		t.Fatalf("job A restarts = %d, want 1", finalA.Restarts)
	}
	if finalB.Restarts != 0 {
		t.Fatalf("job B restarts = %d, want 0 (it never started)", finalB.Restarts)
	}
	assertIdentical(t, ts2, stA.ID, directRun(t, reqA), "drained+resumed job")
	assertIdentical(t, ts2, stB.ID, directRun(t, reqB), "requeued queued job")
	m := metricsSnapshot(t, ts2)
	if got := metricInt(t, m, "jobs_recovered_total"); got != 2 {
		t.Fatalf("jobs_recovered_total = %d, want 2", got)
	}
	// The resumed job must announce it is continuing from a checkpoint.
	eventsA2 := jobEvents(t, ts2, stA.ID)
	if !hasEvent(eventsA2, func(e Event) bool { return strings.Contains(e.Message, "resuming after") }) {
		t.Fatal("resumed job has no resuming-from-checkpoint event")
	}
}

// TestReplayFromAbandonedServer simulates a daemon crash without the
// courtesy of a drain: server A is frozen mid-equivalence (its journal
// shows a running job and a queued one, like a SIGKILL would leave) and
// simply abandoned; server B opens the same data dir and must finish both
// jobs byte-identically. The strawman2 strategy is used for job A so the
// resumed run exercises DataPlaneForDirty against re-derived (not
// journaled) FilterDiff state.
func TestReplayFromAbandonedServer(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{})
	// Never released: server A stays frozen for the life of the test
	// binary, like a crashed process that simply stopped. Releasing it at
	// cleanup would let its pipeline run concurrently with later tests
	// (and consume their one-shot fault injections).
	release := make(chan struct{})
	var once sync.Once
	s, err := Open(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir,
		StageHook: func(id, stage string, iter int) {
			if stage == "equivalence" {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	reqA, reqB := testRequest(t, 41), testRequest(t, 42)
	reqA.Options.Strategy = "strawman2"
	reqA.Options.NoiseP = 0.5
	_, stA := postJob(t, ts, reqA)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job A never reached equivalence")
	}
	_, stB := postJob(t, ts, reqB)
	// No shutdown: server A stays frozen holding its journal, exactly the
	// on-disk state a kill -9 leaves behind.

	s2, err := Open(Config{Workers: 2, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	finalA := waitState(t, ts2, stA.ID, StateDone)
	if finalA.Restarts != 1 {
		t.Fatalf("crashed job restarts = %d, want 1", finalA.Restarts)
	}
	waitState(t, ts2, stB.ID, StateDone)
	assertIdentical(t, ts2, stA.ID, directRun(t, reqA), "job interrupted mid-equivalence")
	assertIdentical(t, ts2, stB.ID, directRun(t, reqB), "job queued at crash")
}

// TestPanicIsolation injects a panic into one job's pipeline and asserts
// the blast radius is exactly that job: it fails with the captured stack,
// the daemon keeps serving, /metrics counts the panic, and the next job
// completes normally.
func TestPanicIsolation(t *testing.T) {
	t.Cleanup(faults.Reset)
	faults.Arm("anonymize.stage.equivalence", faults.Injection{Mode: faults.ModePanic, Message: "injected chaos", On: 1})
	s := New(Config{Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, stA := postJob(t, ts, testRequest(t, 51))
	deadline := time.Now().Add(30 * time.Second)
	var finalA Status
	for {
		finalA = getStatus(t, ts, stA.ID)
		if finalA.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("panicked job never terminated")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if finalA.State != StateFailed {
		t.Fatalf("panicked job ended %s, want failed", finalA.State)
	}
	if !strings.Contains(finalA.Error, "panic:") || !strings.Contains(finalA.Error, "injected chaos") {
		t.Fatalf("panic reason not captured: %q", finalA.Error)
	}
	if !strings.Contains(finalA.Error, "goroutine") {
		t.Fatalf("stack trace not captured: %q", finalA.Error)
	}

	// Daemon must still be healthy and able to run the next job.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %s", resp.Status)
	}
	_, stB := postJob(t, ts, testRequest(t, 52))
	waitState(t, ts, stB.ID, StateDone)
	m := metricsSnapshot(t, ts)
	if got := metricInt(t, m, "jobs_panicked_total"); got != 1 {
		t.Fatalf("jobs_panicked_total = %d, want 1", got)
	}
	if got := metricInt(t, m, "jobs_done_total"); got != 1 {
		t.Fatalf("jobs_done_total = %d, want 1", got)
	}
}

// TestJournalCreateFailureRejectsSubmit arms a persistent error at the
// journal-create fault point: a submission that cannot be made durable
// must be refused (500), and once the fault clears the same submission
// goes through.
func TestJournalCreateFailureRejectsSubmit(t *testing.T) {
	t.Cleanup(faults.Reset)
	s, err := Open(Config{Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	faults.Arm("service.journal.create", faults.Injection{Mode: faults.ModeError, Message: "disk on fire"})
	resp, _ := postJob(t, ts, testRequest(t, 61))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("unjournalable submit: %s, want 500", resp.Status)
	}
	m := metricsSnapshot(t, ts)
	if got := metricInt(t, m, "journal_errors_total"); got == 0 {
		t.Fatal("journal_errors_total not incremented")
	}

	faults.Reset()
	resp2, st := postJob(t, ts, testRequest(t, 61))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after fault cleared: %s", resp2.Status)
	}
	waitState(t, ts, st.ID, StateDone)
}

// TestWatchdogFailsSilentStage arms a delay far past the stage watchdog
// budget: the watchdog must cancel the job with a structured reason naming
// the stage, not leave it running or report a bare "cancelled".
func TestWatchdogFailsSilentStage(t *testing.T) {
	t.Cleanup(faults.Reset)
	faults.Arm("anonymize.stage.equivalence", faults.Injection{Mode: faults.ModeDelay, Delay: 3 * time.Second, On: 1})
	s := New(Config{Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute, StageTimeout: 200 * time.Millisecond})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, st := postJob(t, ts, testRequest(t, 71))
	deadline := time.Now().Add(30 * time.Second)
	var final Status
	for {
		final = getStatus(t, ts, st.ID)
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdogged job never terminated")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.State != StateFailed {
		t.Fatalf("stalled job ended %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "watchdog") {
		t.Fatalf("failure reason not structured: %q", final.Error)
	}
}

// TestMaxRestartsGivesUp hand-crafts a journal whose job already ran in
// three prior daemon starts; replay must fail it with a structured reason
// instead of crash-looping a poison job forever.
func TestMaxRestartsGivesUp(t *testing.T) {
	dir := t.TempDir()
	req := testRequest(t, 81)
	id := "j000007-" + req.hash()[:8]
	jobDir := filepath.Join(dir, "jobs", id)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	recs := []journalRecord{
		{Type: "submitted", Time: now, ID: id, Hash: req.hash(), Request: req},
		{Type: "event", Time: now, Event: &Event{Seq: 1, State: StateQueued, Message: "queued"}},
		{Type: "event", Time: now, Event: &Event{Seq: 2, State: StateRunning, Message: "started"}},
		{Type: "event", Time: now, Event: &Event{Seq: 3, State: StateRunning, Message: "started"}},
		{Type: "event", Time: now, Event: &Event{Seq: 4, State: StateRunning, Message: "started"}},
	}
	var buf []byte
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(filepath.Join(jobDir, "journal.ndjson"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(Config{Workers: 1, MaxRestarts: 3, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()
	st := getStatus(t, ts, id)
	if st.State != StateFailed {
		t.Fatalf("poison job replayed to %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "giving up") {
		t.Fatalf("poison job reason: %q", st.Error)
	}
}

// TestTruncatedJournalTailTolerated appends a torn half-record — what a
// crash mid-append leaves — and asserts replay drops the torn line but
// keeps the job, which then runs to completion.
func TestTruncatedJournalTailTolerated(t *testing.T) {
	dir := t.TempDir()
	req := testRequest(t, 91)
	id := "j000003-" + req.hash()[:8]
	jobDir := filepath.Join(dir, "jobs", id)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	recs := []journalRecord{
		{Type: "submitted", Time: now, ID: id, Hash: req.hash(), Request: req},
		{Type: "event", Time: now, Event: &Event{Seq: 1, State: StateQueued, Message: "queued"}},
	}
	var buf []byte
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	buf = append(buf, []byte(`{"type":"event","time":"2026-0`)...) // torn mid-append
	if err := os.WriteFile(filepath.Join(jobDir, "journal.ndjson"), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()
	waitState(t, ts, id, StateDone)
	assertIdentical(t, ts, id, directRun(t, req), "job with torn journal tail")
}

// TestRetryAfterOn429 asserts the queue-full rejection carries the
// Retry-After header the client backoff honors.
func TestRetryAfterOn429(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		Workers: 1, QueueDepth: 1, JobTimeout: 2 * time.Minute,
		StageHook: func(id, stage string, iter int) { <-release },
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, stA := postJob(t, ts, testRequest(t, 95))
	waitState(t, ts, stA.ID, StateRunning)
	postJob(t, ts, testRequest(t, 96)) // fills the queue

	body, _ := json.Marshal(testRequest(t, 97))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	close(release)
	waitState(t, ts, stA.ID, StateDone)
}

// TestCancelMidAlgorithm2 cancels a job while Algorithm 2 (route
// anonymity) is running; the repair loop's per-round context check must
// observe it and the job must end cancelled with no result.
func TestCancelMidAlgorithm2(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := New(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute,
		StageHook: func(id, stage string, iter int) {
			if stage == "anonymity" {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := testRequest(t, 99)
	req.Options.KH = 3
	req.Options.NoiseP = 0.5
	_, st := postJob(t, ts, req)
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached Algorithm 2")
	}
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %s", delResp.Status)
	}
	close(release)
	final := waitState(t, ts, st.ID, StateCancelled)
	if final.Report != nil {
		t.Fatal("cancelled job has a report")
	}
	r, _ := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: %s, want 409", r.Status)
	}
}
