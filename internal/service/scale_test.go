package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"confmask"
	"confmask/internal/anonymize"
	"confmask/internal/config"
)

// TestDaemonFatTree16 submits the S1 scale network (FatTree16: 272
// routers, 256 hosts) through the full daemon surface with a generous
// stage timeout, asserts every pipeline stage surfaced as an event, and
// pins the result byte-identical to a direct anonymize.RunContext with
// the same parameters — the daemon adds journaling and transport around
// the pipeline, never nondeterminism. Skipped under -short.
func TestDaemonFatTree16(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon-level FatTree16 test skipped in short mode")
	}
	configs, err := confmask.GenerateExample("FatTree16")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:      1,
		QueueDepth:   2,
		JobTimeout:   8 * time.Minute,
		StageTimeout: 5 * time.Minute,
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := &Request{
		Configs: configs,
		Options: confmask.Options{KR: 6, KH: 2, NoiseP: 0.1, Seed: 424},
	}
	resp, st := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}

	// waitState's default deadline fits the small nets; FatTree16 needs
	// its own, scaled to the pipeline (≈25 s here, minutes with -race).
	deadline := time.Now().Add(6 * time.Minute)
	var final Status
	for {
		final = getStatus(t, ts, st.ID)
		if final.State == StateDone {
			break
		}
		if final.State.Terminal() {
			t.Fatalf("job ended %s (error %q), want done", final.State, final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", final.State)
		}
		time.Sleep(250 * time.Millisecond)
	}

	// Every pipeline stage must have surfaced as a progress event.
	events := jobEvents(t, ts, st.ID)
	for _, stage := range []string{"preprocess", "topology", "equivalence", "anonymity", "render"} {
		if !hasEvent(events, func(e Event) bool { return e.Stage == stage }) {
			t.Fatalf("no event for stage %q", stage)
		}
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", r.Status)
	}
	var res struct {
		Configs map[string]string `json:"configs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}

	cfg, err := config.ParseNetwork(configs)
	if err != nil {
		t.Fatal(err)
	}
	opts := anonymize.DefaultOptions()
	opts.Seed = 424
	direct, _, err := anonymize.RunContext(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Render()
	if len(res.Configs) != len(want) {
		t.Fatalf("daemon result has %d configs, direct RunContext %d", len(res.Configs), len(want))
	}
	for name, text := range want {
		if res.Configs[name] != text {
			t.Fatalf("config %s differs between daemon and direct RunContext", name)
		}
	}
}
