package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"confmask"
	"confmask/internal/faults"
)

// Config sizes a Server. The zero value is usable: every field has a
// default.
type Config struct {
	// Workers is the number of concurrent anonymization jobs. Default 2.
	Workers int
	// QueueDepth bounds the FIFO backlog of accepted-but-not-running
	// jobs; a full queue rejects submissions with 429. Default 64.
	QueueDepth int
	// JobTimeout is the per-job wall-clock budget; jobs past it fail
	// with a timeout error. Default 15 minutes.
	JobTimeout time.Duration
	// Parallelism is the default per-job simulation parallelism, applied
	// when a job request leaves Options.Parallelism at 0. Zero keeps the
	// engine default (GOMAXPROCS). Results are identical at any setting.
	Parallelism int
	// StageHook, when non-nil, observes every job progress callback
	// synchronously on the job's worker goroutine. Test instrumentation:
	// a blocking hook holds the pipeline inside a stage, which is how
	// the tests freeze a job mid-Algorithm-1 deterministically.
	StageHook func(jobID, stage string, iteration int)
	// DataDir, when non-empty, makes the service durable: submissions and
	// job events are journaled under DataDir/jobs, stage checkpoints are
	// persisted, and a daemon restarted against the same directory replays
	// its jobs — finished ones become queryable again, unfinished ones
	// re-enqueue and resume from their last checkpoint. Empty keeps the
	// original in-memory behavior.
	DataDir string
	// StageTimeout is the watchdog budget for a single pipeline stage to
	// show progress; a stage silent for longer fails the job with a
	// structured reason. Default 10 minutes; ≤ 0 keeps the default, so
	// the watchdog is always on (JobTimeout still caps the whole job).
	StageTimeout time.Duration
	// MaxStageIterations caps Algorithm 1 / repair iterations within one
	// stage before the watchdog declares the job divergent. Default 10000.
	MaxStageIterations int
	// MaxRestarts caps how many daemon starts may execute one job before
	// replay gives up and fails it — the defense against poison jobs that
	// crash the daemon deterministically. Default 3.
	MaxRestarts int
	// MaxQueryBatch caps the number of predicates one POST
	// /v1/jobs/{id}/query may carry; larger batches are rejected with
	// 400. Default 4096.
	MaxQueryBatch int
	// QueryTimeout is the per-predicate evaluation budget inside a query
	// batch; a predicate past it answers with a per-query error instead
	// of an answer. Default 10 seconds.
	QueryTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.StageTimeout <= 0 {
		c.StageTimeout = 10 * time.Minute
	}
	if c.MaxStageIterations <= 0 {
		c.MaxStageIterations = 10000
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.MaxQueryBatch <= 0 {
		c.MaxQueryBatch = 4096
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	return c
}

// Server is the anonymization service: an http.Handler plus the worker
// pool behind it. Create with New, serve with net/http, stop with
// Shutdown.
type Server struct {
	cfg     Config
	store   *store
	metrics *metrics
	journal *journal // nil without a DataDir
	queue   chan *job
	quit    chan struct{}
	workers sync.WaitGroup
	mux     *http.ServeMux
	started time.Time

	mu           sync.Mutex
	shuttingDown bool
	running      map[string]*job // jobs currently on a worker

	// queryMu guards queryCache: one lazily built query engine per done
	// job (see query.go in this package).
	queryMu    sync.Mutex
	queryCache map[string]*queryEntry
}

// New builds a Server and starts its worker pool. It panics when the
// journal in cfg.DataDir cannot be opened; daemons that want to handle
// that error use Open.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a Server, replays the journal when cfg.DataDir is set, and
// starts the worker pool. Jobs found queued, running, draining, or
// requeued in the journal re-enter the queue (resuming from their last
// stage checkpoint); jobs already run by cfg.MaxRestarts prior daemons
// fail instead of crash-looping.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   newStore(),
		metrics: newMetrics(),
		quit:    make(chan struct{}),
		mux:     http.NewServeMux(),
		started: time.Now(),
		running: make(map[string]*job),
	}
	var backlog []*job
	if cfg.DataDir != "" {
		jl, err := openJournal(cfg.DataDir, defaultRetryPolicy())
		if err != nil {
			return nil, err
		}
		s.journal = jl
		backlog, err = s.replayJournal()
		if err != nil {
			return nil, err
		}
	}
	// The queue must absorb the whole replayed backlog without blocking
	// startup, even when it exceeds the configured depth.
	depth := cfg.QueueDepth
	if len(backlog) > depth {
		depth = len(backlog)
	}
	s.queue = make(chan *job, depth)
	for _, j := range backlog {
		s.queue <- j
		s.metrics.QueueDepth.Add(1)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/query", s.handleQuery)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// replayJournal rebuilds the store from the journal and returns the jobs
// that must run (again). Terminal jobs become queryable records; corrupt
// journals surface as failed jobs rather than vanishing.
func (s *Server) replayJournal() ([]*job, error) {
	replayed, err := s.journal.replay()
	if err != nil {
		return nil, err
	}
	var backlog []*job
	for _, rj := range replayed {
		j := newJobFromReplay(rj)
		switch {
		case rj.corrupt && rj.req == nil:
			// Not even the submission survived; keep a queryable tombstone.
			j.state = StateFailed
			s.store.put(j, false)
			s.metrics.JournalErrors.Add(1)
		case rj.state == StateDone, rj.state == StateFailed, rj.state == StateCancelled:
			s.store.put(j, rj.state == StateDone)
			if rj.corrupt {
				s.metrics.JournalErrors.Add(1)
			}
		default: // queued, running, draining, requeued → run again
			jw, err := s.journal.open(j.id)
			if err != nil {
				return nil, err
			}
			j.reattachJournal(jw)
			if j.restarts >= s.cfg.MaxRestarts {
				j.finish(StateFailed, nil, nil, fmt.Sprintf(
					"job ran in %d daemon starts without completing (max %d); giving up",
					j.restarts, s.cfg.MaxRestarts), time.Now(), "", 0, 0)
				s.store.put(j, false)
				s.metrics.JobsFailed.Add(1)
				continue
			}
			j.markRecovered()
			s.store.put(j, true)
			s.metrics.JobsRecovered.Add(1)
			backlog = append(backlog, j)
		}
	}
	return backlog, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new submissions are accepted and
// workers finish their running jobs. When ctx fires first, running jobs
// are stopped — with a journal (DataDir set) they are drained and
// requeued (draining → requeued events, resumable from their last
// checkpoint at the next start); without one they are cancelled.
// Still-queued jobs likewise requeue durably or cancel. The journal is
// flushed (every requeue event is an fsync'd state boundary) before
// Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.shuttingDown {
		s.shuttingDown = true
		close(s.quit)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: stop the jobs still running and wait for the
		// pipelines to observe the dead context.
		err = ctx.Err()
		s.mu.Lock()
		for _, j := range s.running {
			if s.journal != nil {
				j.noteDraining()
				j.cancelPipeline()
			} else {
				j.requestCancel()
			}
		}
		s.mu.Unlock()
		<-done
	}

	// Workers are gone; whatever is left in the queue never ran.
	for {
		select {
		case j := <-s.queue:
			s.metrics.QueueDepth.Add(-1)
			if s.journal != nil {
				j.noteDraining()
				j.finish(StateRequeued, nil, nil, "", time.Now(), "", 0, 0)
				s.metrics.JobsRequeued.Add(1)
			} else {
				j.requestCancel()
				j.finish(StateCancelled, nil, nil, "server shutting down", time.Now(), "", 0, 0)
				s.store.unindexHash(j)
				s.metrics.JobsCancelled.Add(1)
			}
		default:
			s.store.closeJournals()
			return err
		}
	}
}

// worker pulls jobs off the FIFO queue until shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.metrics.QueueDepth.Add(-1)
			s.run(j)
		}
	}
}

// panicError wraps a panic recovered at the worker boundary; the captured
// stack rides along so the job's terminal event carries it.
type panicError struct {
	val   string
	stack string
}

func (e *panicError) Error() string { return "panic: " + e.val }

// journalFailure marks a cancellation caused by the job's own journal
// becoming unwritable: durability was promised and can no longer be kept.
type journalFailure struct{ err error }

func (e *journalFailure) Error() string { return "journal failure: " + e.err.Error() }
func (e *journalFailure) Unwrap() error { return e.err }

// run executes one job: per-job timeout, per-stage watchdog, progress
// plumbed into the event stream and stage histograms, stage checkpoints
// persisted to the journal, panics isolated to the job, and the terminal
// state classified from the pipeline error plus the cancellation cause.
func (s *Server) run(j *job) {
	tctx, cancelTimeout := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancelTimeout()
	ctx, cancelCause := context.WithCancelCause(tctx)
	defer cancelCause(nil)
	if !j.start(func() { cancelCause(context.Canceled) }, time.Now()) {
		// Cancelled while queued.
		s.store.unindexHash(j)
		s.metrics.JobsCancelled.Add(1)
		return
	}
	s.mu.Lock()
	s.running[j.id] = j
	s.mu.Unlock()
	s.metrics.JobsRunning.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.running, j.id)
		s.mu.Unlock()
		s.metrics.JobsRunning.Add(-1)
	}()
	j.mu.Lock()
	jw, resume := j.jw, j.resume
	j.mu.Unlock()
	// Incremental resubmission: a job that names (or auto-discovers) a
	// completed base and has no checkpoint of its own yet tries to seed
	// from the base's. A crash-replayed incremental job already carries
	// the imported checkpoint (persisted below before the pipeline ran)
	// and resumes from it like any other.
	if j.req.BaseJob != "" && resume == nil {
		s.resolveBase(j)
		j.mu.Lock()
		resume = j.resume
		j.mu.Unlock()
	}

	// Stage watchdog: a pipeline stage that stops emitting progress
	// callbacks for StageTimeout gets the job cancelled with a structured
	// reason. Progress kicks reset the clock.
	kick := make(chan string, 8)
	wdStop := make(chan struct{})
	go func() {
		stage := "startup"
		t := time.NewTimer(s.cfg.StageTimeout)
		defer t.Stop()
		for {
			select {
			case <-wdStop:
				return
			case stage = <-kick:
				if !t.Stop() {
					select {
					case <-t.C:
					default:
					}
				}
				t.Reset(s.cfg.StageTimeout)
			case <-t.C:
				cancelCause(fmt.Errorf("watchdog: stage %q made no progress for %v", stage, s.cfg.StageTimeout))
				return
			}
		}
	}()
	defer close(wdStop)

	timer := &stageTimer{m: s.metrics}
	opts := j.req.Options
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	opts.Progress = func(stage string, iteration int) {
		now := time.Now()
		closed, d, alloc := timer.transition(stage, now)
		j.setProgress(stage, iteration, closed, d, alloc)
		// Stage-level fault points fire on the pipeline goroutine, inside
		// the worker's recover boundary: a ModePanic here must fail only
		// this job.
		if err := faults.Fire("anonymize.stage." + stage); err != nil {
			cancelCause(fmt.Errorf("fault injection: stage %s: %w", stage, err))
		}
		if err := j.journalErr(); err != nil {
			cancelCause(&journalFailure{err: err})
		}
		if iteration > s.cfg.MaxStageIterations {
			cancelCause(fmt.Errorf("watchdog: stage %q exceeded %d iterations", stage, s.cfg.MaxStageIterations))
		}
		select {
		case kick <- stage:
		default:
		}
		if s.cfg.StageHook != nil {
			s.cfg.StageHook(j.id, stage, iteration)
		}
	}
	opts.Resume = resume
	opts.Checkpoint = func(cp *confmask.Checkpoint) {
		// Tee every checkpoint into the job record — completed jobs keep
		// their final checkpoint so later submissions can seed from it,
		// journaled or not.
		j.setLastCheckpoint(cp)
		if jw != nil {
			if err := jw.writeCheckpoint(cp); err != nil {
				cancelCause(&journalFailure{err: err})
			}
		}
	}
	result, report, err := s.execute(ctx, j.req.Configs, opts)
	now := time.Now()
	closed, d, alloc := timer.finish(now)
	if err == nil {
		if jerr := j.journalErr(); jerr != nil {
			err = &journalFailure{err: jerr}
		} else if jw != nil {
			if werr := jw.writeResult(result, report); werr != nil {
				err = &journalFailure{err: werr}
			}
		}
	}
	cause := context.Cause(ctx)
	var pe *panicError
	var jf *journalFailure
	switch {
	case err == nil:
		// The final checkpoint is deliberately kept, in memory and on
		// disk: it is what incremental resubmissions seed from.
		j.finish(StateDone, result, report, "", now, closed, d, alloc)
		s.metrics.JobsDone.Add(1)
	case errors.As(err, &pe):
		s.metrics.JobsPanicked.Add(1)
		j.finish(StateFailed, nil, nil, pe.Error()+"\n"+pe.stack, now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	case errors.As(err, &jf):
		s.metrics.JournalErrors.Add(1)
		j.finish(StateFailed, nil, nil, jf.Error(), now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	case errors.Is(err, context.Canceled):
		switch {
		case s.journal != nil && j.isDraining():
			j.finish(StateRequeued, nil, nil, "", now, closed, d, alloc)
			s.metrics.JobsRequeued.Add(1)
		case cause != nil && !errors.Is(cause, context.Canceled):
			// Watchdog, journal, or injected fault: the cause carries the
			// structured reason.
			if errors.As(cause, &jf) {
				s.metrics.JournalErrors.Add(1)
			}
			j.finish(StateFailed, nil, nil, cause.Error(), now, closed, d, alloc)
			s.store.unindexHash(j)
			s.metrics.JobsFailed.Add(1)
		default:
			j.finish(StateCancelled, nil, nil, "cancelled", now, closed, d, alloc)
			s.store.unindexHash(j)
			s.metrics.JobsCancelled.Add(1)
		}
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, nil, nil, fmt.Sprintf("job exceeded timeout %v", s.cfg.JobTimeout), now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	default:
		j.finish(StateFailed, nil, nil, err.Error(), now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	}
}

// resolveBase resolves a job's BaseJob request into an imported checkpoint
// on j.resume. On success it journals the imported checkpoint before the
// pipeline starts (so a SIGKILL mid-run replays into the same incremental
// resume), emits the seed event carrying base_job/reused_stages, and bumps
// the incremental metrics. Any gate failure falls back to a full run with
// an event naming the reason — incremental is an optimization, never a
// correctness risk.
func (s *Server) resolveBase(j *job) {
	var base *job
	var reason string
	if j.req.BaseJob == "auto" {
		if base = s.findAutoBase(j); base == nil {
			reason = "no completed compatible base job found"
		}
	} else if b, ok := s.store.get(j.req.BaseJob); ok {
		base = b
	} else {
		reason = fmt.Sprintf("unknown base job %q", j.req.BaseJob)
	}
	if base != nil {
		st := base.status()
		cp := base.lastCheckpoint()
		switch {
		case base.isTombstone():
			reason = fmt.Sprintf("base job %s lost its output to journal corruption", base.id)
		case st.State != StateDone:
			reason = fmt.Sprintf("base job %s is %s, not done", base.id, st.State)
		case cp == nil:
			reason = fmt.Sprintf("base job %s has no retained checkpoint", base.id)
		default:
			imported, edited, err := confmask.ImportCheckpoint(cp, base.req.Configs, j.req.Configs, j.req.Options)
			if err == nil {
				stages := reusedStagesFor(imported.Stage)
				j.noteIncremental(base.id, stages, edited)
				j.mu.Lock()
				j.resume = imported
				j.lastCP = imported
				jw := j.jw
				j.mu.Unlock()
				if jw != nil {
					if werr := jw.writeCheckpoint(imported); werr != nil {
						// The sticky journal error fails the job through the
						// usual progress-path check; nothing more to do here.
						return
					}
				}
				s.metrics.JobsIncremental.Add(1)
				s.metrics.StagesReused.Add(int64(len(stages)))
				return
			}
			reason = err.Error()
			if cls := confmask.ClassifyEdit(base.req.Configs, j.req.Configs); cls != "" {
				reason += " (" + cls + ")"
			}
		}
	}
	j.noteIncrementalFallback(reason)
	s.metrics.IncrementalFallbacks.Add(1)
}

// findAutoBase picks the completed, checkpointed job with the largest
// per-device manifest overlap whose options produce comparable output;
// ties go to the newest job. Nil when nothing overlaps at all.
func (s *Server) findAutoBase(j *job) *job {
	var best *job
	bestOverlap := 0
	for _, cand := range s.store.all() {
		if cand.id == j.id || cand.isTombstone() {
			continue
		}
		if cand.status().State != StateDone || cand.lastCheckpoint() == nil {
			continue
		}
		if cand.req == nil || !sameOutputOptions(cand.req.Options, j.req.Options) {
			continue
		}
		ov := manifestOverlap(cand.manifest, j.manifest)
		if ov > bestOverlap || (ov == bestOverlap && ov > 0 && best != nil && cand.id > best.id) {
			best, bestOverlap = cand, ov
		}
	}
	return best
}

// sameOutputOptions reports whether two option sets produce the same
// anonymization decisions for the same input. Parallelism is excluded
// (results are byte-identical at any worker count).
func sameOutputOptions(a, b confmask.Options) bool {
	return a.KR == b.KR && a.KH == b.KH && a.NoiseP == b.NoiseP &&
		a.Seed == b.Seed && a.Strategy == b.Strategy &&
		a.FakeRouters == b.FakeRouters && a.OutputSyntax == b.OutputSyntax
}

// reusedStagesFor lists the pipeline stages a checkpoint at the given
// stage lets a resumed run skip. Preprocessing counts: a checkpoint
// covering every baseline consumer skips the simulation too.
func reusedStagesFor(stage string) []string {
	switch stage {
	case "anonymity":
		return []string{"preprocess", "topology", "equivalence", "anonymity"}
	case "equivalence":
		return []string{"preprocess", "topology", "equivalence"}
	case "topology":
		return []string{"topology"}
	default:
		return nil
	}
}

// execute is the worker's panic isolation boundary: one job's pipeline
// runs inside it, and a panic anywhere in that pipeline — including fault
// injections and progress callbacks — converts to a *panicError for that
// job alone. The daemon and its other workers keep running.
func (s *Server) execute(ctx context.Context, configs map[string]string, opts confmask.Options) (result map[string]string, report *confmask.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, report = nil, nil
			err = &panicError{val: fmt.Sprint(r), stack: string(debug.Stack())}
		}
	}()
	if err := faults.Fire("worker.run"); err != nil {
		return nil, nil, err
	}
	return confmask.AnonymizeContext(ctx, configs, opts)
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a job: 202 on enqueue, 200 when deduplicated to an
// existing job, 429 when the queue is full, 503 when shutting down.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, 128<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, "request has no configs")
		return
	}
	if req.BaseJob != "" && req.BaseJob != "auto" {
		// An explicitly named base must at least exist now; whether it is
		// done and checkpointed is re-checked at run time (it may still be
		// running), falling back to a full run if not.
		if _, ok := s.store.get(req.BaseJob); !ok {
			writeError(w, http.StatusBadRequest, "unknown base job %q", req.BaseJob)
			return
		}
	}
	// Zero-valued options fields fall back to the paper defaults inside
	// the pipeline itself, so an empty "options" object is valid.

	// Everything from the dedup check to the queue send happens under mu
	// so a concurrent Shutdown cannot strand a job in the queue.
	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	j, existing := s.store.add(&req, time.Now())
	if existing {
		s.mu.Unlock()
		s.metrics.JobsDeduped.Add(1)
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	if s.journal != nil {
		// The submission is only accepted once it is durable: journal dir,
		// fsync'd submitted record, and the queued event on disk.
		jw, err := s.journal.create(j.id, &req, j.hash, j.created)
		if err == nil {
			if aerr := j.attachJournal(jw); aerr != nil {
				jw.close()
				err = aerr
			}
		}
		if err != nil {
			s.store.remove(j)
			s.journal.discard(j.id)
			s.mu.Unlock()
			s.metrics.JournalErrors.Add(1)
			writeError(w, http.StatusInternalServerError, "cannot journal job: %v", err)
			return
		}
	}
	select {
	case s.queue <- j:
		s.metrics.QueueDepth.Add(1)
	default:
		s.store.remove(j)
		if s.journal != nil {
			s.journal.discard(j.id)
		}
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		// Retry-After tells well-behaved clients (confmask submit among
		// them) how long to back off before resubmitting.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued); retry later", s.cfg.QueueDepth)
		return
	}
	s.mu.Unlock()
	s.metrics.JobsSubmitted.Add(1)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.list()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's event log as NDJSON: full replay (or
// from ?after=SEQ), then live follow until the job reaches a terminal
// state or the client disconnects. ?follow=false stops after the replay.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		// Atoi, not Sscanf: %d scans a leading integer and ignores
		// trailing garbage, silently accepting values like "3x".
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad after=%q", v)
			return
		}
		after = n
	}
	follow := r.URL.Query().Get("follow") != "false"

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		events, state, changed := j.eventsSince(after)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
			after = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if state.Terminal() || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.quit:
			// Graceful shutdown: close follower streams of non-terminal
			// jobs instead of holding http.Server.Shutdown hostage. The
			// client sees a clean end-of-stream and reconnects with
			// ?after=<seq> once a daemon is back.
			return
		}
	}
}

// handleResult returns the anonymized configurations of a done job; 409
// with the current state otherwise.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.isTombstone() {
		writeError(w, http.StatusGone, "job %q output lost: %s", j.id, j.status().Error)
		return
	}
	st := j.status()
	if st.State != StateDone {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("job is %s, not done", st.State),
			"state": st.State,
		})
		return
	}
	j.mu.Lock()
	result := j.result
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      st.ID,
		"configs": result,
		"report":  st.Report,
	})
}

// handleCancel requests cancellation: a queued job dies before starting,
// a running job's context is cancelled and the pipeline notices within
// one Algorithm 1 iteration. 409 once the job is already terminal.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !j.requestCancel() {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("job already %s", j.status().State),
			"state": j.status().State,
		})
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	down := s.shuttingDown
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if down {
		status = "shutting_down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"workers":        s.cfg.Workers,
		"queue_capacity": s.cfg.QueueDepth,
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"durable":        s.journal != nil,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot())
}
