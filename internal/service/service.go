package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"regexp"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"confmask"
	"confmask/internal/cluster"
	"confmask/internal/faults"
)

// Config sizes a Server. The zero value is usable: every field has a
// default.
type Config struct {
	// Workers is the number of concurrent anonymization jobs. Default 2.
	Workers int
	// QueueDepth bounds the FIFO backlog of accepted-but-not-running
	// jobs; a full queue rejects submissions with 429. Default 64.
	QueueDepth int
	// JobTimeout is the per-job wall-clock budget; jobs past it fail
	// with a timeout error. Default 15 minutes.
	JobTimeout time.Duration
	// Parallelism is the default per-job simulation parallelism, applied
	// when a job request leaves Options.Parallelism at 0. Zero keeps the
	// engine default (GOMAXPROCS). Results are identical at any setting.
	Parallelism int
	// StageHook, when non-nil, observes every job progress callback
	// synchronously on the job's worker goroutine. Test instrumentation:
	// a blocking hook holds the pipeline inside a stage, which is how
	// the tests freeze a job mid-Algorithm-1 deterministically.
	StageHook func(jobID, stage string, iteration int)
	// DataDir, when non-empty, makes the service durable: submissions and
	// job events are journaled under DataDir/jobs, stage checkpoints are
	// persisted, and a daemon restarted against the same directory replays
	// its jobs — finished ones become queryable again, unfinished ones
	// re-enqueue and resume from their last checkpoint. Empty keeps the
	// original in-memory behavior.
	DataDir string
	// StageTimeout is the watchdog budget for a single pipeline stage to
	// show progress; a stage silent for longer fails the job with a
	// structured reason. Default 10 minutes; ≤ 0 keeps the default, so
	// the watchdog is always on (JobTimeout still caps the whole job).
	StageTimeout time.Duration
	// MaxStageIterations caps Algorithm 1 / repair iterations within one
	// stage before the watchdog declares the job divergent. Default 10000.
	MaxStageIterations int
	// MaxRestarts caps how many daemon starts may execute one job before
	// replay gives up and fails it — the defense against poison jobs that
	// crash the daemon deterministically. Default 3.
	MaxRestarts int
	// MaxQueryBatch caps the number of predicates one POST
	// /v1/jobs/{id}/query may carry; larger batches are rejected with
	// 400. Default 4096.
	MaxQueryBatch int
	// QueryTimeout is the per-predicate evaluation budget inside a query
	// batch; a predicate past it answers with a per-query error instead
	// of an answer. Default 10 seconds.
	QueryTimeout time.Duration

	// NodeID identifies this server in a worker fleet sharing one DataDir.
	// It defaults to the hostname — stable across restarts, so a restarted
	// daemon reclaims its own leases immediately. Run more than one daemon
	// per host against the same DataDir only with distinct explicit IDs.
	NodeID string
	// LeaseTTL is how long a job lease lives without a heartbeat renewal;
	// a node silent past it loses its jobs to the fleet. Default 15s.
	LeaseTTL time.Duration
	// Heartbeat is the lease renewal period. Default LeaseTTL/3.
	Heartbeat time.Duration
	// RescanInterval is how often the coordinator loop rescans the journal
	// root for jobs abandoned by other nodes (expired or released leases)
	// and for jobs submitted to peers. Default = Heartbeat. Tests set it
	// huge and drive Rescan directly.
	RescanInterval time.Duration
	// TenantQuota caps concurrently running jobs per tenant on this node;
	// excess jobs wait in their tenant queue. 0 = unlimited.
	TenantQuota int
	// TenantRate is the per-tenant submit rate limit in jobs/second; a
	// tenant over it gets 429 + Retry-After. 0 = unlimited.
	TenantRate float64
	// TenantBurst is the rate limiter's bucket size. Default
	// max(1, ceil(TenantRate)).
	TenantBurst float64
	// SchedQuantum is the deficit-round-robin quantum in device units: the
	// share each tenant earns per scheduler visit. Default 64.
	SchedQuantum int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.StageTimeout <= 0 {
		c.StageTimeout = 10 * time.Minute
	}
	if c.MaxStageIterations <= 0 {
		c.MaxStageIterations = 10000
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.MaxQueryBatch <= 0 {
		c.MaxQueryBatch = 4096
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 10 * time.Second
	}
	if c.NodeID == "" {
		if host, err := os.Hostname(); err == nil && host != "" {
			c.NodeID = host
		} else {
			c.NodeID = "node"
		}
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.LeaseTTL / 3
	}
	if c.RescanInterval <= 0 {
		c.RescanInterval = c.Heartbeat
	}
	if c.TenantBurst < 1 {
		c.TenantBurst = math.Ceil(c.TenantRate)
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.SchedQuantum <= 0 {
		c.SchedQuantum = 64
	}
	return c
}

// Server is the anonymization service: an http.Handler plus the worker
// pool behind it. Create with New, serve with net/http, stop with
// Shutdown.
type Server struct {
	cfg     Config
	store   *store
	metrics *metrics
	journal *journal                // nil without a DataDir
	leases  *cluster.Manager        // nil without a DataDir
	limiter *cluster.RateLimiter    // nil when TenantRate is 0
	sched   *cluster.Scheduler[*job]
	quit    chan struct{}
	workers sync.WaitGroup
	coord   sync.WaitGroup
	mux     *http.ServeMux
	started time.Time

	mu           sync.Mutex
	shuttingDown bool
	running      map[string]*job // jobs currently on a worker

	// queryMu guards queryCache: one lazily built query engine per done
	// job (see query.go in this package).
	queryMu    sync.Mutex
	queryCache map[string]*queryEntry
}

// New builds a Server and starts its worker pool. It panics when the
// journal in cfg.DataDir cannot be opened; daemons that want to handle
// that error use Open.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a Server, replays the journal when cfg.DataDir is set, and
// starts the worker pool. Jobs found queued, running, draining, or
// requeued in the journal re-enter the queue (resuming from their last
// stage checkpoint); jobs already run by cfg.MaxRestarts prior daemons
// fail instead of crash-looping.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   newStore(),
		metrics: newMetrics(),
		quit:    make(chan struct{}),
		mux:     http.NewServeMux(),
		started: time.Now(),
		running: make(map[string]*job),
	}
	s.sched = cluster.NewScheduler[*job](cluster.SchedOptions{
		Capacity: cfg.QueueDepth,
		Quantum:  cfg.SchedQuantum,
		Quota:    cfg.TenantQuota,
	})
	if cfg.TenantRate > 0 {
		s.limiter = cluster.NewRateLimiter(cfg.TenantRate, cfg.TenantBurst)
	}
	if cfg.DataDir != "" {
		jl, err := openJournal(cfg.DataDir, defaultRetryPolicy())
		if err != nil {
			return nil, err
		}
		s.journal = jl
		s.leases = cluster.NewManager(cfg.NodeID, cfg.LeaseTTL)
		backlog, err := s.replayJournal()
		if err != nil {
			return nil, err
		}
		// Replayed jobs exist durably already: they bypass the capacity
		// bound, which only sheds load from fresh submissions.
		for _, j := range backlog {
			s.enqueue(j, true)
		}
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/query", s.handleQuery)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	if s.journal != nil {
		s.coord.Add(1)
		go s.coordinator()
	}
	return s, nil
}

// NodeID returns the server's resolved worker-fleet identity.
func (s *Server) NodeID() string { return s.cfg.NodeID }

// enqueue puts a job on the scheduler. force bypasses the capacity bound
// (replay and coordinator requeues — jobs that already exist durably must
// never be shed). It reports whether the job was queued.
func (s *Server) enqueue(j *job, force bool) bool {
	j.setInQueue(true)
	var ok bool
	if force {
		ok = s.sched.PushForce(j.tenant, j, j.devices)
	} else {
		ok = s.sched.Push(j.tenant, j, j.devices)
	}
	if ok {
		s.metrics.QueueDepth.Add(1)
	} else {
		j.setInQueue(false)
	}
	return ok
}

// replayJournal rebuilds the store from the journal and returns the jobs
// that must run (again). Terminal jobs become queryable records; corrupt
// journals surface as failed jobs rather than vanishing.
func (s *Server) replayJournal() ([]*job, error) {
	replayed, err := s.journal.replay()
	if err != nil {
		return nil, err
	}
	var backlog []*job
	for _, rj := range replayed {
		j := newJobFromReplay(rj)
		switch {
		case rj.corrupt && rj.req == nil:
			// Not even the submission survived; keep a queryable tombstone.
			j.state = StateFailed
			s.store.put(j, false)
			s.metrics.JournalErrors.Add(1)
		case rj.state == StateDone, rj.state == StateFailed, rj.state == StateCancelled:
			s.store.put(j, rj.state == StateDone)
			if rj.corrupt {
				s.metrics.JournalErrors.Add(1)
			}
		default: // queued, running, draining, requeued → run again
			if lease, err := s.leases.Read(s.journal.jobDir(j.id)); err == nil && !s.leases.Claimable(lease) {
				// Another node's live lease: the job is running elsewhere.
				// Register it read-only; the coordinator requeues it here
				// only if that lease expires or is released unfinished.
				s.store.put(j, true)
				continue
			}
			jw, err := s.journal.open(j.id)
			if err != nil {
				return nil, err
			}
			j.reattachJournal(jw)
			if j.restarts >= s.cfg.MaxRestarts {
				j.finish(StateFailed, nil, nil, fmt.Sprintf(
					"job ran in %d daemon starts without completing (max %d); giving up",
					j.restarts, s.cfg.MaxRestarts), time.Now(), "", 0, 0)
				s.store.put(j, false)
				s.metrics.JobsFailed.Add(1)
				continue
			}
			j.markRecovered()
			s.store.put(j, true)
			s.metrics.JobsRecovered.Add(1)
			backlog = append(backlog, j)
		}
	}
	return backlog, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new submissions are accepted and
// workers finish their running jobs. When ctx fires first, running jobs
// are stopped — with a journal (DataDir set) they are drained and
// requeued (draining → requeued events, resumable from their last
// checkpoint at the next start); without one they are cancelled.
// Still-queued jobs likewise requeue durably or cancel. The journal is
// flushed (every requeue event is an fsync'd state boundary) before
// Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.shuttingDown {
		s.shuttingDown = true
		close(s.quit)
		// Closing the scheduler wakes workers blocked in Next; jobs still
		// queued stay queued and are drained below once workers are gone.
		s.sched.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		s.coord.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: stop the jobs still running and wait for the
		// pipelines to observe the dead context.
		err = ctx.Err()
		s.mu.Lock()
		for _, j := range s.running {
			if s.journal != nil {
				j.noteDraining()
				j.cancelPipeline()
			} else {
				j.requestCancel()
			}
		}
		s.mu.Unlock()
		<-done
	}

	// Workers are gone; whatever is left in the queues never ran.
	for _, j := range s.sched.DrainAll() {
		s.metrics.QueueDepth.Add(-1)
		j.setInQueue(false)
		if s.journal != nil {
			j.noteDraining()
			j.finish(StateRequeued, nil, nil, "", time.Now(), "", 0, 0)
			s.metrics.JobsRequeued.Add(1)
		} else {
			j.requestCancel()
			j.finish(StateCancelled, nil, nil, "server shutting down", time.Now(), "", 0, 0)
			s.store.unindexHash(j)
			s.metrics.JobsCancelled.Add(1)
		}
	}
	s.store.closeJournals()
	return err
}

// worker pulls jobs off the deficit-round-robin scheduler until shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, tenant, ok := s.sched.Next()
		if !ok {
			return // scheduler closed: shutting down
		}
		s.metrics.QueueDepth.Add(-1)
		j.setInQueue(false)
		s.run(j)
		s.sched.Done(tenant)
	}
}

// coordinator periodically rescans the journal root for work this node
// should pick up: jobs submitted through peer nodes, jobs whose owner's
// lease expired or was released unfinished, and jobs another node finished
// (their local records refresh to the terminal state).
func (s *Server) coordinator() {
	defer s.coord.Done()
	t := time.NewTicker(s.cfg.RescanInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.Rescan()
		}
	}
}

// Rescan runs one coordinator pass synchronously. Exported so tests (and
// operators via future endpoints) can drive takeover deterministically
// instead of waiting out the rescan ticker.
func (s *Server) Rescan() {
	if s.journal == nil || s.leases == nil {
		return
	}
	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	entries, err := os.ReadDir(s.journal.root)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		s.rescanJob(e.Name())
	}
}

// rescanJob reconciles one job directory against this node's store.
func (s *Server) rescanJob(id string) {
	s.mu.Lock()
	_, runningHere := s.running[id]
	down := s.shuttingDown
	s.mu.Unlock()
	if runningHere || down {
		return
	}
	j, known := s.store.get(id)
	if known {
		if j.isTombstone() || j.inQueue() {
			return
		}
		if st := j.status(); st.State.Terminal() && st.State != StateRequeued {
			return
		}
	}
	rj := s.journal.replayOne(id)
	if rj == nil {
		return
	}
	if rj.corrupt && rj.req == nil {
		if !known {
			j = newJobFromReplay(rj)
			j.state = StateFailed
			s.store.put(j, false)
			s.metrics.JournalErrors.Add(1)
		}
		return
	}
	if !known {
		j = newJobFromReplay(rj)
	}
	if rj.state.Terminal() && rj.state != StateRequeued {
		// Another node finished it: adopt the terminal record so status,
		// result, and dedup answer here too.
		if known {
			j.adoptReplay(rj)
		}
		s.store.put(j, rj.state == StateDone)
		return
	}
	// Non-terminal on disk and not running here: claimable means the owner
	// crashed (expired), drained (released), or the job never ran. Requeue
	// on this node; an unexpired foreign lease leaves it alone.
	dir := s.journal.jobDir(id)
	lease, err := s.leases.Read(dir)
	if err != nil {
		return
	}
	if !s.leases.Claimable(lease) {
		if known {
			j.adoptReplay(rj)
		}
		s.store.put(j, true)
		return
	}
	if known {
		j.adoptReplay(rj)
	}
	if j.restarts >= s.cfg.MaxRestarts {
		if !known {
			j.finish(StateFailed, nil, nil, fmt.Sprintf(
				"job ran in %d daemon starts without completing (max %d); giving up",
				j.restarts, s.cfg.MaxRestarts), time.Now(), "", 0, 0)
			s.store.put(j, false)
			s.metrics.JobsFailed.Add(1)
		}
		return
	}
	if expired := lease.Epoch > 0 && !lease.Released; expired {
		s.metrics.LeasesExpired.Add(1)
	}
	if j.journalHandle() == nil {
		jw, err := s.journal.open(id)
		if err != nil {
			return
		}
		j.reattachJournal(jw)
	}
	j.markRecovered()
	s.store.put(j, true)
	s.metrics.JobsRequeued.Add(1)
	s.enqueue(j, true)
}

// panicError wraps a panic recovered at the worker boundary; the captured
// stack rides along so the job's terminal event carries it.
type panicError struct {
	val   string
	stack string
}

func (e *panicError) Error() string { return "panic: " + e.val }

// journalFailure marks a cancellation caused by the job's own journal
// becoming unwritable: durability was promised and can no longer be kept.
type journalFailure struct{ err error }

func (e *journalFailure) Error() string { return "journal failure: " + e.err.Error() }
func (e *journalFailure) Unwrap() error { return e.err }

// fencedError marks a cancellation caused by this node losing the job's
// lease: a newer epoch exists, so another node owns the job now and every
// local write is refused. The job fails locally without touching the
// journal — the new owner's run is the authoritative one.
type fencedError struct{ err error }

func (e *fencedError) Error() string { return "lease lost: " + e.err.Error() }
func (e *fencedError) Unwrap() error { return e.err }

// isFenced reports whether an error chain bottoms out in a fencing
// rejection, wherever it surfaced: heartbeat renewal, a journal append, a
// checkpoint or result write.
func isFenced(err error) bool { return err != nil && errors.Is(err, cluster.ErrFenced) }

// run executes one job: per-job timeout, per-stage watchdog, progress
// plumbed into the event stream and stage histograms, stage checkpoints
// persisted to the journal, panics isolated to the job, and the terminal
// state classified from the pipeline error plus the cancellation cause.
func (s *Server) run(j *job) {
	tctx, cancelTimeout := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancelTimeout()
	ctx, cancelCause := context.WithCancelCause(tctx)
	defer cancelCause(nil)
	// Register as running before claiming the lease: the coordinator skips
	// jobs in this map, so the claim window is invisible to rescans.
	s.mu.Lock()
	s.running[j.id] = j
	s.mu.Unlock()
	s.metrics.JobsRunning.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.running, j.id)
		s.mu.Unlock()
		s.metrics.JobsRunning.Add(-1)
	}()

	// In a fleet, ownership comes first: no lease, no execution. A failed
	// claim (another node owns the job, a claim is in flight, or fault
	// injection refused it) leaves the job queued; a later rescan requeues
	// it here if the owner gives it up.
	var lease *cluster.Handle
	if s.leases != nil {
		h, err := s.leases.Acquire(s.journal.jobDir(j.id))
		if err != nil {
			return
		}
		lease = h
		defer lease.Release()
		s.metrics.LeasesHeld.Add(1)
		defer s.metrics.LeasesHeld.Add(-1)
		j.setLease(h.Owner(), h.Epoch())
		// Heartbeat: renew until the job ends. A renewal failure means the
		// lease is lost — cancel the pipeline with the fencing cause.
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			t := time.NewTicker(s.cfg.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					if err := lease.Renew(); err != nil {
						cancelCause(&fencedError{err: err})
						return
					}
				}
			}
		}()
	}

	j.mu.Lock()
	jw, resume := j.jw, j.resume
	j.mu.Unlock()
	if lease != nil && jw != nil {
		// From here on the journal carries the fencing token: buffered
		// appends check the lease locally, fsync-boundary appends and the
		// checkpoint/result writes re-verify it on disk. The claim record
		// goes first so replay orders every later event under this epoch.
		jw.setFence(lease, func() { s.metrics.FencingRejects.Add(1) })
		if err := jw.appendClaim(lease.Owner(), lease.Epoch(), lease.Deadline()); err != nil {
			cancelCause(&journalFailure{err: err})
		}
		if lease.Epoch() > 1 {
			// Taking over from a previous owner: its last checkpoint may be
			// newer than the one this node replayed at startup. The re-read
			// is what makes the resumed run byte-identical to the dead
			// owner's continuation.
			if cp, err := readCheckpoint(s.journal.jobDir(j.id)); err == nil && cp != nil {
				j.mu.Lock()
				j.resume, j.lastCP = cp, cp
				j.mu.Unlock()
				resume = cp
			}
		}
	}
	if !j.start(func() { cancelCause(context.Canceled) }, time.Now()) {
		// Cancelled while queued.
		s.store.unindexHash(j)
		s.metrics.JobsCancelled.Add(1)
		return
	}
	// Incremental resubmission: a job that names (or auto-discovers) a
	// completed base and has no checkpoint of its own yet tries to seed
	// from the base's. A crash-replayed incremental job already carries
	// the imported checkpoint (persisted below before the pipeline ran)
	// and resumes from it like any other.
	if j.req.BaseJob != "" && resume == nil {
		s.resolveBase(j)
		j.mu.Lock()
		resume = j.resume
		j.mu.Unlock()
	}

	// Stage watchdog: a pipeline stage that stops emitting progress
	// callbacks for StageTimeout gets the job cancelled with a structured
	// reason. Progress kicks reset the clock.
	kick := make(chan string, 8)
	wdStop := make(chan struct{})
	go func() {
		stage := "startup"
		t := time.NewTimer(s.cfg.StageTimeout)
		defer t.Stop()
		for {
			select {
			case <-wdStop:
				return
			case stage = <-kick:
				if !t.Stop() {
					select {
					case <-t.C:
					default:
					}
				}
				t.Reset(s.cfg.StageTimeout)
			case <-t.C:
				cancelCause(fmt.Errorf("watchdog: stage %q made no progress for %v", stage, s.cfg.StageTimeout))
				return
			}
		}
	}()
	defer close(wdStop)

	timer := &stageTimer{m: s.metrics}
	opts := j.req.Options
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	opts.Progress = func(stage string, iteration int) {
		now := time.Now()
		closed, d, alloc := timer.transition(stage, now)
		j.setProgress(stage, iteration, closed, d, alloc)
		// Stage-level fault points fire on the pipeline goroutine, inside
		// the worker's recover boundary: a ModePanic here must fail only
		// this job.
		if err := faults.Fire("anonymize.stage." + stage); err != nil {
			cancelCause(fmt.Errorf("fault injection: stage %s: %w", stage, err))
		}
		if err := j.journalErr(); err != nil {
			cancelCause(&journalFailure{err: err})
		}
		if iteration > s.cfg.MaxStageIterations {
			cancelCause(fmt.Errorf("watchdog: stage %q exceeded %d iterations", stage, s.cfg.MaxStageIterations))
		}
		select {
		case kick <- stage:
		default:
		}
		if s.cfg.StageHook != nil {
			s.cfg.StageHook(j.id, stage, iteration)
		}
	}
	opts.Resume = resume
	opts.Checkpoint = func(cp *confmask.Checkpoint) {
		// Tee every checkpoint into the job record — completed jobs keep
		// their final checkpoint so later submissions can seed from it,
		// journaled or not.
		j.setLastCheckpoint(cp)
		if jw != nil {
			if err := jw.writeCheckpoint(cp); err != nil {
				cancelCause(&journalFailure{err: err})
			}
		}
	}
	result, report, err := s.execute(ctx, j.req.Configs, opts)
	now := time.Now()
	closed, d, alloc := timer.finish(now)
	if err == nil {
		if jerr := j.journalErr(); jerr != nil {
			err = &journalFailure{err: jerr}
		} else if jw != nil {
			if werr := jw.writeResult(result, report); werr != nil {
				err = &journalFailure{err: werr}
			}
		}
	}
	cause := context.Cause(ctx)
	var pe *panicError
	var jf *journalFailure
	switch {
	case err == nil:
		// The final checkpoint is deliberately kept, in memory and on
		// disk: it is what incremental resubmissions seed from.
		j.finish(StateDone, result, report, "", now, closed, d, alloc)
		s.metrics.JobsDone.Add(1)
	case isFenced(err) || isFenced(cause):
		// This node lost the lease mid-run: a newer epoch owns the job.
		// The local record fails for visibility, but the journal is left
		// alone — the fence already refused this node's writes, and the
		// new owner's run is the authoritative history.
		j.finish(StateFailed, nil, nil,
			"lease lost: job taken over by a newer claim; this node's run is void", now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	case errors.As(err, &pe):
		s.metrics.JobsPanicked.Add(1)
		j.finish(StateFailed, nil, nil, pe.Error()+"\n"+pe.stack, now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	case errors.As(err, &jf):
		s.metrics.JournalErrors.Add(1)
		j.finish(StateFailed, nil, nil, jf.Error(), now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	case errors.Is(err, context.Canceled):
		switch {
		case s.journal != nil && j.isDraining():
			j.finish(StateRequeued, nil, nil, "", now, closed, d, alloc)
			s.metrics.JobsRequeued.Add(1)
		case cause != nil && !errors.Is(cause, context.Canceled):
			// Watchdog, journal, or injected fault: the cause carries the
			// structured reason.
			if errors.As(cause, &jf) {
				s.metrics.JournalErrors.Add(1)
			}
			j.finish(StateFailed, nil, nil, cause.Error(), now, closed, d, alloc)
			s.store.unindexHash(j)
			s.metrics.JobsFailed.Add(1)
		default:
			j.finish(StateCancelled, nil, nil, "cancelled", now, closed, d, alloc)
			s.store.unindexHash(j)
			s.metrics.JobsCancelled.Add(1)
		}
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, nil, nil, fmt.Sprintf("job exceeded timeout %v", s.cfg.JobTimeout), now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	default:
		j.finish(StateFailed, nil, nil, err.Error(), now, closed, d, alloc)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	}
}

// resolveBase resolves a job's BaseJob request into an imported checkpoint
// on j.resume. On success it journals the imported checkpoint before the
// pipeline starts (so a SIGKILL mid-run replays into the same incremental
// resume), emits the seed event carrying base_job/reused_stages, and bumps
// the incremental metrics. Any gate failure falls back to a full run with
// an event naming the reason — incremental is an optimization, never a
// correctness risk.
func (s *Server) resolveBase(j *job) {
	var base *job
	var reason string
	if j.req.BaseJob == "auto" {
		if base = s.findAutoBase(j); base == nil {
			reason = "no completed compatible base job found"
		}
	} else if b, ok := s.store.get(j.req.BaseJob); ok {
		base = b
	} else {
		reason = fmt.Sprintf("unknown base job %q", j.req.BaseJob)
	}
	if base != nil {
		st := base.status()
		cp := base.lastCheckpoint()
		switch {
		case base.isTombstone():
			reason = fmt.Sprintf("base job %s lost its output to journal corruption", base.id)
		case st.State != StateDone:
			reason = fmt.Sprintf("base job %s is %s, not done", base.id, st.State)
		case cp == nil:
			reason = fmt.Sprintf("base job %s has no retained checkpoint", base.id)
		default:
			imported, edited, err := confmask.ImportCheckpoint(cp, base.req.Configs, j.req.Configs, j.req.Options)
			if err == nil {
				stages := reusedStagesFor(imported.Stage)
				j.noteIncremental(base.id, stages, edited)
				j.mu.Lock()
				j.resume = imported
				j.lastCP = imported
				jw := j.jw
				j.mu.Unlock()
				if jw != nil {
					if werr := jw.writeCheckpoint(imported); werr != nil {
						// The sticky journal error fails the job through the
						// usual progress-path check; nothing more to do here.
						return
					}
				}
				s.metrics.JobsIncremental.Add(1)
				s.metrics.StagesReused.Add(int64(len(stages)))
				return
			}
			reason = err.Error()
			if cls := confmask.ClassifyEdit(base.req.Configs, j.req.Configs); cls != "" {
				reason += " (" + cls + ")"
			}
		}
	}
	j.noteIncrementalFallback(reason)
	s.metrics.IncrementalFallbacks.Add(1)
}

// findAutoBase picks the completed, checkpointed job with the largest
// per-device manifest overlap whose options produce comparable output;
// ties go to the newest job. Nil when nothing overlaps at all.
func (s *Server) findAutoBase(j *job) *job {
	var best *job
	bestOverlap := 0
	for _, cand := range s.store.all() {
		if cand.id == j.id || cand.isTombstone() {
			continue
		}
		if cand.status().State != StateDone || cand.lastCheckpoint() == nil {
			continue
		}
		if cand.req == nil || !sameOutputOptions(cand.req.Options, j.req.Options) {
			continue
		}
		ov := manifestOverlap(cand.manifest, j.manifest)
		if ov > bestOverlap || (ov == bestOverlap && ov > 0 && best != nil && cand.id > best.id) {
			best, bestOverlap = cand, ov
		}
	}
	return best
}

// sameOutputOptions reports whether two option sets produce the same
// anonymization decisions for the same input. Parallelism is excluded
// (results are byte-identical at any worker count).
func sameOutputOptions(a, b confmask.Options) bool {
	return a.KR == b.KR && a.KH == b.KH && a.NoiseP == b.NoiseP &&
		a.Seed == b.Seed && a.Strategy == b.Strategy &&
		a.FakeRouters == b.FakeRouters && a.OutputSyntax == b.OutputSyntax
}

// reusedStagesFor lists the pipeline stages a checkpoint at the given
// stage lets a resumed run skip. Preprocessing counts: a checkpoint
// covering every baseline consumer skips the simulation too.
func reusedStagesFor(stage string) []string {
	switch stage {
	case "anonymity":
		return []string{"preprocess", "topology", "equivalence", "anonymity"}
	case "equivalence":
		return []string{"preprocess", "topology", "equivalence"}
	case "topology":
		return []string{"topology"}
	default:
		return nil
	}
}

// execute is the worker's panic isolation boundary: one job's pipeline
// runs inside it, and a panic anywhere in that pipeline — including fault
// injections and progress callbacks — converts to a *panicError for that
// job alone. The daemon and its other workers keep running.
func (s *Server) execute(ctx context.Context, configs map[string]string, opts confmask.Options) (result map[string]string, report *confmask.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, report = nil, nil
			err = &panicError{val: fmt.Sprint(r), stack: string(debug.Stack())}
		}
	}()
	if err := faults.Fire("worker.run"); err != nil {
		return nil, nil, err
	}
	return confmask.AnonymizeContext(ctx, configs, opts)
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// tenantPattern validates X-Tenant values: short, path- and header-safe.
var tenantPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// DefaultTenant is the tenant jobs land under when X-Tenant is absent.
const DefaultTenant = "default"

// handleSubmit accepts a job: 202 on enqueue, 200 when deduplicated to an
// existing job, 429 when the tenant is over its submit rate or the queue
// is full (both with Retry-After), 503 when shutting down. The X-Tenant
// header routes the job to its tenant's queue; absent means "default".
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = DefaultTenant
	}
	if !tenantPattern.MatchString(tenant) {
		writeError(w, http.StatusBadRequest, "invalid X-Tenant %q: want 1-64 chars of [A-Za-z0-9._-]", tenant)
		return
	}
	if s.limiter != nil {
		if ok, retry := s.limiter.Allow(tenant, time.Now()); !ok {
			s.metrics.RateLimited.Add(1)
			secs := int(math.Ceil(retry.Seconds()))
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests,
				"tenant %q over submit rate (%.3g jobs/s); retry in %ds", tenant, s.cfg.TenantRate, secs)
			return
		}
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, 128<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	req.Tenant = tenant
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, "request has no configs")
		return
	}
	if req.BaseJob != "" && req.BaseJob != "auto" {
		// An explicitly named base must at least exist now; whether it is
		// done and checkpointed is re-checked at run time (it may still be
		// running), falling back to a full run if not.
		if _, ok := s.store.get(req.BaseJob); !ok {
			writeError(w, http.StatusBadRequest, "unknown base job %q", req.BaseJob)
			return
		}
	}
	// Zero-valued options fields fall back to the paper defaults inside
	// the pipeline itself, so an empty "options" object is valid.

	// Everything from the dedup check to the queue send happens under mu
	// so a concurrent Shutdown cannot strand a job in the queue.
	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	j, existing := s.store.add(&req, time.Now())
	if existing {
		s.mu.Unlock()
		s.metrics.JobsDeduped.Add(1)
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	if s.journal != nil {
		// The submission is only accepted once it is durable: journal dir,
		// fsync'd submitted record, and the queued event on disk.
		jw, err := s.journal.create(j.id, &req, j.hash, j.created)
		if err == nil {
			if aerr := j.attachJournal(jw); aerr != nil {
				jw.close()
				err = aerr
			}
		}
		if err != nil {
			s.store.remove(j)
			s.journal.discard(j.id)
			s.mu.Unlock()
			s.metrics.JournalErrors.Add(1)
			writeError(w, http.StatusInternalServerError, "cannot journal job: %v", err)
			return
		}
	}
	if !s.enqueue(j, false) {
		s.store.remove(j)
		if s.journal != nil {
			s.journal.discard(j.id)
		}
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		// Retry-After tells well-behaved clients (confmask submit among
		// them) how long to back off before resubmitting.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued); retry later", s.cfg.QueueDepth)
		return
	}
	s.mu.Unlock()
	s.metrics.JobsSubmitted.Add(1)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// defaultListLimit caps GET /v1/jobs pages when ?limit= is absent. A
// long-lived daemon accumulates unbounded job history; the cap keeps one
// list call from serializing all of it.
const defaultListLimit = 200

// maxListLimit bounds ?limit= explicitly asked for.
const maxListLimit = 1000

// handleList pages through job statuses, newest first. ?state= filters by
// job state, ?limit= sizes the page (default 200, max 1000), ?after=<id>
// resumes below that job ID. A truncated page carries next_after: pass it
// back as ?after= for the next page.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit=%q: want a positive integer", v)
			return
		}
		limit = n
		if limit > maxListLimit {
			limit = maxListLimit
		}
	}
	var stateFilter State
	if v := q.Get("state"); v != "" {
		stateFilter = State(v)
		switch stateFilter {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateDraining, StateRequeued:
		default:
			writeError(w, http.StatusBadRequest, "bad state=%q", v)
			return
		}
	}
	after := q.Get("after")

	all := s.store.list() // newest (largest ID) first
	jobs := make([]Status, 0, limit)
	nextAfter := ""
	for _, st := range all {
		if after != "" && st.ID >= after {
			continue
		}
		if stateFilter != "" && st.State != stateFilter {
			continue
		}
		if len(jobs) == limit {
			// One more match exists beyond the page: report the cursor.
			nextAfter = jobs[len(jobs)-1].ID
			break
		}
		jobs = append(jobs, st)
	}
	resp := map[string]any{"jobs": jobs}
	if nextAfter != "" {
		resp["next_after"] = nextAfter
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's event log as NDJSON: full replay (or
// from ?after=SEQ), then live follow until the job reaches a terminal
// state or the client disconnects. ?follow=false stops after the replay.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		// Atoi, not Sscanf: %d scans a leading integer and ignores
		// trailing garbage, silently accepting values like "3x".
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad after=%q", v)
			return
		}
		after = n
	}
	follow := r.URL.Query().Get("follow") != "false"

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		events, state, changed := j.eventsSince(after)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
			after = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if state.Terminal() || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.quit:
			// Graceful shutdown: close follower streams of non-terminal
			// jobs instead of holding http.Server.Shutdown hostage. The
			// client sees a clean end-of-stream and reconnects with
			// ?after=<seq> once a daemon is back.
			return
		}
	}
}

// handleResult returns the anonymized configurations of a done job; 409
// with the current state otherwise.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.isTombstone() {
		writeError(w, http.StatusGone, "job %q output lost: %s", j.id, j.status().Error)
		return
	}
	st := j.status()
	if st.State != StateDone {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("job is %s, not done", st.State),
			"state": st.State,
		})
		return
	}
	j.mu.Lock()
	result := j.result
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      st.ID,
		"configs": result,
		"report":  st.Report,
	})
}

// handleCancel requests cancellation: a queued job dies before starting,
// a running job's context is cancelled and the pipeline notices within
// one Algorithm 1 iteration. 409 once the job is already terminal.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !j.requestCancel() {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("job already %s", j.status().State),
			"state": j.status().State,
		})
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	down := s.shuttingDown
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if down {
		status = "shutting_down"
		code = http.StatusServiceUnavailable
	}
	// The pre-fleet fields keep their names and types; per-node identity
	// rides alongside so `curl /healthz` tells fleet members apart.
	writeJSON(w, code, map[string]any{
		"status":         status,
		"workers":        s.cfg.Workers,
		"queue_capacity": s.cfg.QueueDepth,
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"durable":        s.journal != nil,
		"node_id":        s.cfg.NodeID,
		"leases_held":    s.metrics.LeasesHeld.Value(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	snap["node_id"] = s.cfg.NodeID
	snap["tenant_queue_depth"] = s.sched.Depths()
	writeJSON(w, http.StatusOK, snap)
}
