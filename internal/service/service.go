package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"confmask"
)

// Config sizes a Server. The zero value is usable: every field has a
// default.
type Config struct {
	// Workers is the number of concurrent anonymization jobs. Default 2.
	Workers int
	// QueueDepth bounds the FIFO backlog of accepted-but-not-running
	// jobs; a full queue rejects submissions with 429. Default 64.
	QueueDepth int
	// JobTimeout is the per-job wall-clock budget; jobs past it fail
	// with a timeout error. Default 15 minutes.
	JobTimeout time.Duration
	// Parallelism is the default per-job simulation parallelism, applied
	// when a job request leaves Options.Parallelism at 0. Zero keeps the
	// engine default (GOMAXPROCS). Results are identical at any setting.
	Parallelism int
	// StageHook, when non-nil, observes every job progress callback
	// synchronously on the job's worker goroutine. Test instrumentation:
	// a blocking hook holds the pipeline inside a stage, which is how
	// the tests freeze a job mid-Algorithm-1 deterministically.
	StageHook func(jobID, stage string, iteration int)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	return c
}

// Server is the anonymization service: an http.Handler plus the worker
// pool behind it. Create with New, serve with net/http, stop with
// Shutdown.
type Server struct {
	cfg     Config
	store   *store
	metrics *metrics
	queue   chan *job
	quit    chan struct{}
	workers sync.WaitGroup
	mux     *http.ServeMux
	started time.Time

	mu           sync.Mutex
	shuttingDown bool
	running      map[string]*job // jobs currently on a worker
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   newStore(),
		metrics: newMetrics(),
		queue:   make(chan *job, cfg.QueueDepth),
		quit:    make(chan struct{}),
		mux:     http.NewServeMux(),
		started: time.Now(),
		running: make(map[string]*job),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new submissions are accepted, workers
// finish their running jobs, still-queued jobs are marked cancelled. When
// ctx fires first, running jobs are cancelled too and Shutdown waits for
// the workers to notice (one Algorithm 1 iteration at most).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.shuttingDown {
		s.shuttingDown = true
		close(s.quit)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: abort the jobs still running and wait for the
		// pipelines to observe the dead context.
		err = ctx.Err()
		s.mu.Lock()
		for _, j := range s.running {
			j.requestCancel()
		}
		s.mu.Unlock()
		<-done
	}

	// Workers are gone; whatever is left in the queue never ran.
	for {
		select {
		case j := <-s.queue:
			s.metrics.QueueDepth.Add(-1)
			j.requestCancel()
			j.finish(StateCancelled, nil, nil, "server shutting down", time.Now(), "", 0)
			s.store.unindexHash(j)
			s.metrics.JobsCancelled.Add(1)
		default:
			return err
		}
	}
}

// worker pulls jobs off the FIFO queue until shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.metrics.QueueDepth.Add(-1)
			s.run(j)
		}
	}
}

// run executes one job: per-job timeout, progress plumbed into the job's
// event stream and the stage histograms, terminal state classified from
// the pipeline error.
func (s *Server) run(j *job) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()
	if !j.start(cancel, time.Now()) {
		// Cancelled while queued.
		s.store.unindexHash(j)
		s.metrics.JobsCancelled.Add(1)
		return
	}
	s.mu.Lock()
	s.running[j.id] = j
	s.mu.Unlock()
	s.metrics.JobsRunning.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.running, j.id)
		s.mu.Unlock()
		s.metrics.JobsRunning.Add(-1)
	}()

	timer := &stageTimer{m: s.metrics}
	opts := j.req.Options
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	opts.Progress = func(stage string, iteration int) {
		now := time.Now()
		closed, d := timer.transition(stage, now)
		j.setProgress(stage, iteration, closed, d)
		if s.cfg.StageHook != nil {
			s.cfg.StageHook(j.id, stage, iteration)
		}
	}
	result, report, err := confmask.AnonymizeContext(ctx, j.req.Configs, opts)
	now := time.Now()
	closed, d := timer.finish(now)
	switch {
	case err == nil:
		j.finish(StateDone, result, report, "", now, closed, d)
		s.metrics.JobsDone.Add(1)
	case errors.Is(err, context.Canceled):
		j.finish(StateCancelled, nil, nil, "cancelled", now, closed, d)
		s.store.unindexHash(j)
		s.metrics.JobsCancelled.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, nil, nil, fmt.Sprintf("job exceeded timeout %v", s.cfg.JobTimeout), now, closed, d)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	default:
		j.finish(StateFailed, nil, nil, err.Error(), now, closed, d)
		s.store.unindexHash(j)
		s.metrics.JobsFailed.Add(1)
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a job: 202 on enqueue, 200 when deduplicated to an
// existing job, 429 when the queue is full, 503 when shutting down.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body := http.MaxBytesReader(w, r.Body, 128<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, "request has no configs")
		return
	}
	// Zero-valued options fields fall back to the paper defaults inside
	// the pipeline itself, so an empty "options" object is valid.

	// Everything from the dedup check to the queue send happens under mu
	// so a concurrent Shutdown cannot strand a job in the queue.
	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	j, existing := s.store.add(&req, time.Now())
	if existing {
		s.mu.Unlock()
		s.metrics.JobsDeduped.Add(1)
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	select {
	case s.queue <- j:
		s.metrics.QueueDepth.Add(1)
	default:
		s.store.remove(j)
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued); retry later", s.cfg.QueueDepth)
		return
	}
	s.mu.Unlock()
	s.metrics.JobsSubmitted.Add(1)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.list()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's event log as NDJSON: full replay (or
// from ?after=SEQ), then live follow until the job reaches a terminal
// state or the client disconnects. ?follow=false stops after the replay.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		// Atoi, not Sscanf: %d scans a leading integer and ignores
		// trailing garbage, silently accepting values like "3x".
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad after=%q", v)
			return
		}
		after = n
	}
	follow := r.URL.Query().Get("follow") != "false"

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		events, state, changed := j.eventsSince(after)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
			after = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if state.Terminal() || !follow {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult returns the anonymized configurations of a done job; 409
// with the current state otherwise.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := j.status()
	if st.State != StateDone {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("job is %s, not done", st.State),
			"state": st.State,
		})
		return
	}
	j.mu.Lock()
	result := j.result
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      st.ID,
		"configs": result,
		"report":  st.Report,
	})
}

// handleCancel requests cancellation: a queued job dies before starting,
// a running job's context is cancelled and the pipeline notices within
// one Algorithm 1 iteration. 409 once the job is already terminal.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !j.requestCancel() {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("job already %s", j.status().State),
			"state": j.status().State,
		})
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	down := s.shuttingDown
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if down {
		status = "shutting_down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"workers":        s.cfg.Workers,
		"queue_capacity": s.cfg.QueueDepth,
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot())
}
