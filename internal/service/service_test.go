package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"confmask"
)

// testRequest builds a small job request with a distinguishing seed.
func testRequest(t *testing.T, seed int64) *Request {
	t.Helper()
	configs, err := confmask.GenerateExample("Enterprise")
	if err != nil {
		t.Fatal(err)
	}
	return &Request{
		Configs: configs,
		Options: confmask.Options{KR: 6, KH: 2, NoiseP: 0.1, Seed: seed},
	}
}

func postJob(t *testing.T, ts *httptest.Server, req *Request) (*http.Response, Status) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", id, resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...State) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if st.State.Terminal() {
			t.Fatalf("job %s ended %s (error %q), want %v", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return Status{}
}

func TestSubmitPollResultRoundTrip(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := testRequest(t, 5)
	resp, st := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit status: %+v", st)
	}
	final := waitState(t, ts, st.ID, StateDone)
	if final.Report == nil || final.Report.Iterations < 1 {
		t.Fatalf("done without report: %+v", final.Report)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatalf("missing timestamps: %+v", final)
	}

	// Result must verify against the input and be byte-identical to a
	// direct in-process run with the same seed.
	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", r.Status)
	}
	var res struct {
		Configs map[string]string `json:"configs"`
		Report  *confmask.Report  `json:"report"`
	}
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if err := confmask.Verify(req.Configs, res.Configs); err != nil {
		t.Fatalf("daemon result fails verification: %v", err)
	}
	direct, _, err := confmask.Anonymize(req.Configs, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(res.Configs) {
		t.Fatalf("daemon result has %d configs, direct run %d", len(res.Configs), len(direct))
	}
	for name, text := range direct {
		if res.Configs[name] != text {
			t.Fatalf("config %s differs from direct run with same seed", name)
		}
	}

	// Identical resubmission dedups to the same completed job.
	resp2, st2 := postJob(t, ts, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("dedup submit: %s, want 200", resp2.Status)
	}
	if st2.ID != st.ID || st2.State != StateDone {
		t.Fatalf("dedup returned %s/%s, want %s/done", st2.ID, st2.State, st.ID)
	}
	// A different seed is a different job.
	resp3, st3 := postJob(t, ts, testRequest(t, 6))
	if resp3.StatusCode != http.StatusAccepted || st3.ID == st.ID {
		t.Fatalf("distinct request not accepted as new job: %s %s", resp3.Status, st3.ID)
	}
	waitState(t, ts, st3.ID, StateDone)

	// Metrics reflect the runs.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(mr.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if n := m["jobs_done_total"].(float64); n < 2 {
		t.Fatalf("jobs_done_total = %v", n)
	}
	if n := m["jobs_deduped_total"].(float64); n != 1 {
		t.Fatalf("jobs_deduped_total = %v", n)
	}
	stages := m["stage_seconds"].(map[string]any)
	if _, ok := stages["equivalence"]; !ok {
		t.Fatalf("no equivalence stage histogram: %v", stages)
	}
	if n := m["heap_inuse_bytes"].(float64); n <= 0 {
		t.Fatalf("heap_inuse_bytes = %v, want > 0", n)
	}

	// Per-stage memory attribution: the report carries exact TotalAlloc
	// deltas, and stage-transition events carry the process-wide delta of
	// the stage they close.
	if res.Report == nil || len(res.Report.StageAlloc) == 0 {
		t.Fatalf("report missing StageAlloc: %+v", res.Report)
	}
	if res.Report.StageAlloc["equivalence"] == 0 {
		t.Fatalf("StageAlloc has no equivalence bytes: %v", res.Report.StageAlloc)
	}
	if !hasEvent(jobEvents(t, ts, st.ID), func(e Event) bool {
		return e.PrevStageAllocBytes > 0
	}) {
		t.Fatal("no event carries prev_stage_alloc_bytes")
	}
}

func TestEventsStream(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, st := postJob(t, ts, testRequest(t, 7))
	// Follow the stream live: it must replay from "queued" and close by
	// itself at the terminal event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 5 {
		t.Fatalf("only %d events", len(events))
	}
	for i, e := range events {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if events[0].Message != "queued" || events[len(events)-1].State != StateDone {
		t.Fatalf("stream = %+v", events)
	}
	stages := map[string]int{}
	maxIter := 0
	for _, e := range events {
		if e.Stage != "" {
			stages[e.Stage]++
		}
		if e.Stage == "equivalence" && e.Iteration > maxIter {
			maxIter = e.Iteration
		}
	}
	for _, want := range []string{"preprocess", "topology", "equivalence", "anonymity", "render"} {
		if stages[want] == 0 {
			t.Fatalf("no %s event (got %v)", want, stages)
		}
	}
	if maxIter < 1 {
		t.Fatal("no Algorithm 1 iteration count in events")
	}

	// Resume: ?after=N&follow=false returns only the tail.
	resp2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d&follow=false", ts.URL, st.ID, len(events)-1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	tail, _ := bufio.NewReader(resp2.Body).ReadString('\n')
	var last Event
	if err := json.Unmarshal([]byte(tail), &last); err != nil || last.Seq != len(events) {
		t.Fatalf("resume tail = %q (err %v)", tail, err)
	}
}

func TestCancelMidAlgorithm1(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := New(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute,
		// Freeze the pipeline inside Algorithm 1's first iteration until
		// the test has issued the cancel.
		StageHook: func(id, stage string, iter int) {
			if stage == "equivalence" {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, st := postJob(t, ts, testRequest(t, 8))
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached Algorithm 1")
	}
	if got := getStatus(t, ts, st.ID); got.State != StateRunning || got.Stage != "equivalence" {
		t.Fatalf("mid-Algorithm-1 status = %s/%s", got.State, got.Stage)
	}

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %s", delResp.Status)
	}
	close(release) // pipeline resumes, must observe the dead context

	final := waitState(t, ts, st.ID, StateCancelled)
	if final.Report != nil {
		t.Fatal("cancelled job has a report")
	}
	// A cancelled job must not block an identical resubmission.
	resp2, st2 := postJob(t, ts, testRequest(t, 8))
	if resp2.StatusCode != http.StatusAccepted || st2.ID == st.ID {
		t.Fatalf("resubmit after cancel: %s, id %s (old %s)", resp2.Status, st2.ID, st.ID)
	}
	waitState(t, ts, st2.ID, StateDone)

	// Cancelling a terminal job is a 409.
	delReq2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	delResp2, err := http.DefaultClient.Do(delReq2)
	if err != nil {
		t.Fatal(err)
	}
	delResp2.Body.Close()
	if delResp2.StatusCode != http.StatusConflict {
		t.Fatalf("cancel terminal job: %s, want 409", delResp2.Status)
	}
}

func TestQueueSaturationReturns429(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		Workers: 1, QueueDepth: 1, JobTimeout: 2 * time.Minute,
		StageHook: func(id, stage string, iter int) { <-release },
	})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, stA := postJob(t, ts, testRequest(t, 11))
	waitState(t, ts, stA.ID, StateRunning) // worker occupied, queue empty

	respB, stB := postJob(t, ts, testRequest(t, 12))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %s", respB.Status)
	}
	respC, _ := postJob(t, ts, testRequest(t, 13))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %s, want 429", respC.Status)
	}

	close(release)
	waitState(t, ts, stA.ID, StateDone)
	waitState(t, ts, stB.ID, StateDone)

	// The rejected request left no trace, so it can be submitted again.
	respC2, stC2 := postJob(t, ts, testRequest(t, 13))
	if respC2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after 429: %s", respC2.Status)
	}
	waitState(t, ts, stC2.ID, StateDone)
}

func TestGracefulShutdownDrains(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := New(Config{
		Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute,
		StageHook: func(id, stage string, iter int) {
			once.Do(func() { close(entered) })
			<-release
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, running := postJob(t, ts, testRequest(t, 21))
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("first job never started")
	}
	_, queued := postJob(t, ts, testRequest(t, 22))

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// New submissions are refused while draining.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := postJob(t, ts, testRequest(t, 23))
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still accepted during shutdown: %s", resp.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release) // let the running job finish
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := getStatus(t, ts, running.ID); st.State != StateDone {
		t.Fatalf("running job drained to %s, want done", st.State)
	}
	if st := getStatus(t, ts, queued.ID); st.State != StateCancelled {
		t.Fatalf("queued job ended %s, want cancelled", st.State)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %s", resp.Status)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"configs":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty configs: %s", resp.Status)
	}
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
	}

	// An unparseable (but non-empty) bundle fails the job, not the API.
	resp2, st := postJob(t, ts, &Request{Configs: map[string]string{"x": "interface Y\n"}})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("bad bundle submit: %s", resp2.Status)
	}
	final := waitState(t, ts, st.ID, StateFailed)
	if final.Error == "" {
		t.Fatal("failed job carries no error")
	}
	// Result of a failed job is a conflict.
	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("result of failed job: %s, want 409", r.Status)
	}
	// healthz answers ok.
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", h.Status)
	}
}
