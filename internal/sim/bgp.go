package sim

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"confmask/internal/config"
)

// bgpSession is one configured BGP adjacency, directed receiver-side: the
// owner router has a `neighbor` statement pointing at peerAddr on peer.
type bgpSession struct {
	owner    string
	peer     string
	peerAddr netip.Addr
	ebgp     bool
	link     *Link // direct link carrying an eBGP session (nil for iBGP)
	nb       *config.BGPNeighbor
}

// bgpRoute is a BGP RIB entry during iteration.
type bgpRoute struct {
	prefix   netip.Prefix
	asPath   []int
	peer     string // router the route was learned from; "" when local
	fromIBGP bool
	peerID   netip.Addr
}

func (r bgpRoute) key() string {
	parts := make([]string, 0, len(r.asPath)+3)
	parts = append(parts, r.prefix.String(), r.peer, fmt.Sprint(r.fromIBGP))
	for _, a := range r.asPath {
		parts = append(parts, fmt.Sprint(a))
	}
	return strings.Join(parts, "|")
}

// bgpState carries the converged BGP view.
type bgpState struct {
	sessions []bgpSession
	best     map[string]map[netip.Prefix]bgpRoute // router → prefix → best
}

// discoverSessions finds every configured neighbor whose address resolves
// to an interface of a BGP speaker with the matching AS number.
func (n *Net) discoverSessions() []bgpSession {
	var out []bgpSession
	for _, r := range n.Cfg.Routers() {
		d := n.Cfg.Device(r)
		if d.BGP == nil {
			continue
		}
		for _, nb := range d.BGP.Neighbors {
			peer, iface := n.deviceByAddr(nb.Addr)
			if peer == "" || peer == r {
				continue
			}
			pd := n.Cfg.Device(peer)
			if pd.BGP == nil || pd.BGP.ASN != nb.RemoteAS {
				continue
			}
			s := bgpSession{
				owner:    r,
				peer:     peer,
				peerAddr: nb.Addr,
				ebgp:     pd.BGP.ASN != d.BGP.ASN,
				nb:       nb,
			}
			if s.ebgp {
				// eBGP requires the session to ride a direct link so the
				// peer is a valid next hop.
				for _, l := range n.linksOf[r] {
					o, _ := l.Other(r)
					if o.Device == peer && o.Iface == iface {
						s.link = l
						break
					}
				}
				if s.link == nil {
					continue
				}
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].owner != out[j].owner {
			return out[i].owner < out[j].owner
		}
		return out[i].peerAddr.Compare(out[j].peerAddr) < 0
	})
	return out
}

// deviceByAddr finds the device and interface owning an address.
func (n *Net) deviceByAddr(a netip.Addr) (string, string) {
	for _, name := range n.Cfg.Names() {
		d := n.Cfg.Device(name)
		if i := d.InterfaceByAddr(a); i != nil {
			return name, i.Name
		}
	}
	return "", ""
}

// routerID returns the effective BGP router ID of a device.
func routerID(d *config.Device) netip.Addr {
	if d.BGP != nil && d.BGP.RouterID.IsValid() {
		return d.BGP.RouterID
	}
	var best netip.Addr
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() && (!best.IsValid() || i.Addr.Addr().Compare(best) > 0) {
			best = i.Addr.Addr()
		}
	}
	return best
}

// runBGP iterates the BGP propagation and decision process to a fixed
// point. The decision order is shortest AS path, then eBGP over iBGP, then
// lowest IGP metric to the egress router, then lowest peer router ID — the
// standard process restricted to the attributes our configs express.
func (n *Net) runBGP(igp *ospfState, workers int) *bgpState {
	st := &bgpState{best: make(map[string]map[netip.Prefix]bgpRoute)}
	st.sessions = n.coreFor(workers).sessions

	var speakers []string
	asOf := make(map[string]int)
	for _, r := range n.Cfg.Routers() {
		if d := n.Cfg.Device(r); d.BGP != nil {
			speakers = append(speakers, r)
			asOf[r] = d.BGP.ASN
		}
	}
	if len(speakers) == 0 {
		return st
	}

	// Local originations: a network statement is originated when the
	// router can actually reach the prefix (connected or via its IGP),
	// mirroring IOS's RIB-presence requirement.
	origin := make(map[string][]bgpRoute)
	for _, r := range speakers {
		d := n.Cfg.Device(r)
		for _, p := range d.BGP.Networks {
			if !n.routerReaches(igp, r, p) {
				continue
			}
			origin[r] = append(origin[r], bgpRoute{prefix: p, peer: "", peerID: routerID(d)})
		}
	}

	// sessionsTo[q] lists sessions on which q receives advertisements.
	sessionsTo := make(map[string][]bgpSession)
	for _, s := range st.sessions {
		sessionsTo[s.owner] = append(sessionsTo[s.owner], s)
	}

	adjIn := make(map[string]map[string]map[netip.Prefix]bgpRoute, len(speakers))
	for _, r := range speakers {
		adjIn[r] = make(map[string]map[netip.Prefix]bgpRoute)
	}

	computeBest := func(r string) map[netip.Prefix]bgpRoute {
		cands := make(map[netip.Prefix][]bgpRoute)
		for _, o := range origin[r] {
			cands[o.prefix] = append(cands[o.prefix], o)
		}
		for _, routes := range adjIn[r] {
			for p, rt := range routes {
				cands[p] = append(cands[p], rt)
			}
		}
		best := make(map[netip.Prefix]bgpRoute, len(cands))
		for p, cs := range cands {
			best[p] = n.bgpSelect(igp, r, cs)
		}
		return best
	}

	// Per-router best computation only reads origin and adj-RIB-in, so the
	// fan-out writes index-addressed slots and the merged result matches a
	// sequential run (bgpSelect's comparator is a total order).
	recompute := func() {
		bests := make([]map[netip.Prefix]bgpRoute, len(speakers))
		forEachIndex(workers, len(speakers), func(i int) {
			bests[i] = computeBest(speakers[i])
		})
		for i, r := range speakers {
			st.best[r] = bests[i]
		}
	}

	maxRounds := 4*len(speakers) + 10
	for round := 0; round < maxRounds; round++ {
		recompute()
		// Build next adj-RIB-in from current bests, synchronously.
		next := make(map[string]map[string]map[netip.Prefix]bgpRoute, len(speakers))
		for _, r := range speakers {
			next[r] = make(map[string]map[netip.Prefix]bgpRoute)
		}
		for _, s := range sessionsTo {
			for _, sess := range s {
				recv := sess.owner
				sender := sess.peer
				in := make(map[netip.Prefix]bgpRoute)
				for p, rt := range st.best[sender] {
					adv, ok := advertise(rt, asOf[sender], sess.ebgp, sender)
					if !ok {
						continue
					}
					// Receiver-side loop prevention.
					if containsAS(adv.asPath, asOf[recv]) {
						continue
					}
					// Inbound distribute-list on the receiving neighbor.
					if name := sess.nb.DistributeListIn; name != "" {
						if n.denies(n.Cfg.Device(recv), name, p) {
							continue
						}
					}
					in[p] = adv
				}
				next[recv][sender] = in
			}
		}
		if adjInEqual(adjIn, next) {
			adjIn = next
			break
		}
		adjIn = next
	}
	recompute()
	return st
}

// advertise transforms a best route for transmission over a session; ok is
// false when the route must not be sent (iBGP re-advertisement rule).
func advertise(rt bgpRoute, senderAS int, ebgp bool, sender string) (bgpRoute, bool) {
	if ebgp {
		out := rt
		out.asPath = append([]int{senderAS}, rt.asPath...)
		out.peer = sender
		out.fromIBGP = false
		return out, true
	}
	// iBGP: only locally originated or eBGP-learned routes propagate, and
	// next-hop-self makes the sender the egress for the receiver.
	if rt.fromIBGP {
		return bgpRoute{}, false
	}
	out := rt
	out.asPath = append([]int(nil), rt.asPath...)
	out.peer = sender
	out.fromIBGP = true
	return out, true
}

// bgpSelect applies the decision process to candidate routes.
func (n *Net) bgpSelect(igp *ospfState, r string, cs []bgpRoute) bgpRoute {
	best := cs[0]
	for _, c := range cs[1:] {
		if bgpBetter(n, igp, r, c, best) {
			best = c
		}
	}
	return best
}

func bgpBetter(n *Net, igp *ospfState, r string, a, b bgpRoute) bool {
	if len(a.asPath) != len(b.asPath) {
		return len(a.asPath) < len(b.asPath)
	}
	if a.fromIBGP != b.fromIBGP {
		return !a.fromIBGP
	}
	da := igpMetricTo(igp, r, a)
	db := igpMetricTo(igp, r, b)
	if da != db {
		return da < db
	}
	if c := a.peerID.Compare(b.peerID); c != 0 {
		return c < 0
	}
	return a.peer < b.peer
}

func igpMetricTo(igp *ospfState, r string, rt bgpRoute) int {
	if !rt.fromIBGP || rt.peer == "" || rt.peer == r {
		return 0
	}
	if d, ok := igp.dist.Dist(r, rt.peer); ok {
		return d
	}
	return 1 << 30
}

// routerReaches reports whether router r has a connected, static, or IGP
// route to p (the RIB-presence requirement of a BGP network statement).
func (n *Net) routerReaches(igp *ospfState, r string, p netip.Prefix) bool {
	d := n.Cfg.Device(r)
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() && i.Addr.Masked() == p {
			return true
		}
	}
	for _, s := range d.Statics {
		if s.Prefix == p {
			return true
		}
	}
	if t, ok := igp.routes[r]; ok {
		if _, ok := t[p]; ok {
			return true
		}
	}
	return false
}

func containsAS(path []int, as int) bool {
	for _, a := range path {
		if a == as {
			return true
		}
	}
	return false
}

func adjInEqual(a, b map[string]map[string]map[netip.Prefix]bgpRoute) bool {
	if len(a) != len(b) {
		return false
	}
	for r, pa := range a {
		pb, ok := b[r]
		if !ok || len(pa) != len(pb) {
			return false
		}
		for peer, ra := range pa {
			rb, ok := pb[peer]
			if !ok || len(ra) != len(rb) {
				return false
			}
			for p, x := range ra {
				y, ok := rb[p]
				if !ok || x.key() != y.key() {
					return false
				}
			}
		}
	}
	return true
}

// bgpFIBRoutes converts converged BGP bests into FIB routes for router r.
func (st *bgpState) bgpFIBRoutes(n *Net, igp *ospfState, r string) []*Route {
	var out []*Route
	for p, rt := range st.best[r] {
		if rt.peer == "" {
			continue // locally originated; connected/IGP covers forwarding
		}
		if !rt.fromIBGP {
			// eBGP: forward directly to the session peer.
			var link *Link
			for _, s := range st.sessions {
				if s.owner == r && s.peer == rt.peer && s.ebgp {
					link = s.link
					break
				}
			}
			if link == nil {
				continue
			}
			local, _ := link.Local(r)
			out = append(out, &Route{
				Prefix:   p,
				Source:   SrcEBGP,
				Metric:   len(rt.asPath),
				NextHops: []NextHop{{Device: rt.peer, Iface: local.Iface}},
			})
			continue
		}
		// iBGP: resolve recursively through the IGP toward the egress.
		// Interface distribute-lists apply to the resolved next hops at
		// installation time: when the IGP offers equal-cost paths over a
		// fake link, ConfMask's per-interface filter for this destination
		// rejects that branch (the SFE "rejected" clause) while the real
		// branches stay installed.
		d := n.Cfg.Device(r)
		var nhs []NextHop
		for _, nh := range igp.nextHopsToRouter(n, r, rt.peer) {
			if n.filterDeniesOSPF(d, nh.Iface, p) {
				continue
			}
			nhs = append(nhs, nh)
		}
		if len(nhs) == 0 {
			continue
		}
		out = append(out, &Route{Prefix: p, Source: SrcIBGP, Metric: len(rt.asPath), NextHops: nhs})
	}
	return out
}
