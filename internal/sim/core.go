package sim

import (
	"net/netip"
	"sort"
)

// simCore is the filter-independent part of a simulation: everything that
// depends only on devices, interfaces, links, protocol enablement, and
// costs — never on route filters. It is derived once per Net (lazily, on
// the first SimulateNet call) and survives InvalidateFilters, which is what
// lets Algorithm 1 re-simulate after adding distribute-list entries without
// re-running link discovery, SPF, or session discovery.
//
// The contract mirrors the paper's Algorithm 1: the fixing loop only adds
// route filters, so the link-state database, the SPF distances, the
// distance-vector adjacencies, and the BGP session graph are all invariant
// across iterations. Any mutation beyond filters (interfaces, links,
// neighbors, costs, protocol enablement) requires a fresh Build.
type simCore struct {
	ospf *ospfCore
	// ospfLinks / ripLinks / eigrpLinks hold, per router, the incident
	// links over which the protocol exchanges routes (both endpoint
	// interfaces enabled), in linksOf order.
	ospfLinks  map[string][]*Link
	ripLinks   map[string][]*Link
	eigrpLinks map[string][]*Link
	// ripSpeakers / eigrpSpeakers list the routers running each
	// distance-vector protocol, in Routers() order.
	ripSpeakers   []string
	eigrpSpeakers []string
	// sessions is the discovered BGP session graph.
	sessions []bgpSession
}

// ospfCore is the link-state part of the OSPF computation: filters only
// remove next-hop candidates at RIB-installation time (IOS semantics), so
// the cost graph, the SPF distances, and the per-prefix distances are all
// filter-independent.
type ospfCore struct {
	// speakers lists the OSPF routers in Routers() order.
	speakers []string
	// graph is the directed cost graph over OSPF adjacencies.
	graph *wgraph
	// dist[r][x] is the SPF distance between routers in the same OSPF
	// domain; routers in different domains are mutually unreachable.
	dist map[string]map[string]int
	// prefixes is every prefix advertised into OSPF, sorted.
	prefixes []netip.Prefix
	// distP[p][r] is the cheapest cost from router r to prefix p.
	distP map[netip.Prefix]map[string]int
}

// coreFor returns the Net's filter-independent core, building it on first
// use. The once-init makes concurrent SimulateNet calls on the same Net
// safe; workers only sizes the pool used for the initial SPF fan-out.
func (n *Net) coreFor(workers int) *simCore {
	n.coreOnce.Do(func() { n.core = n.buildCore(workers) })
	return n.core
}

// buildCore derives the filter-independent simulation state.
func (n *Net) buildCore(workers int) *simCore {
	c := &simCore{
		ospfLinks:  make(map[string][]*Link),
		ripLinks:   make(map[string][]*Link),
		eigrpLinks: make(map[string][]*Link),
	}
	for _, r := range n.Cfg.Routers() {
		d := n.Cfg.Device(r)
		if d.RIP != nil {
			c.ripSpeakers = append(c.ripSpeakers, r)
		}
		if d.EIGRP != nil {
			c.eigrpSpeakers = append(c.eigrpSpeakers, r)
		}
		for _, l := range n.linksOf[r] {
			if n.ospfLinkEnabled(l) {
				c.ospfLinks[r] = append(c.ospfLinks[r], l)
			}
			if n.ripLinkEnabled(l) {
				c.ripLinks[r] = append(c.ripLinks[r], l)
			}
			if n.eigrpLinkEnabled(l) {
				c.eigrpLinks[r] = append(c.eigrpLinks[r], l)
			}
		}
	}
	c.sessions = n.discoverSessions()
	c.ospf = n.buildOSPFCore(workers)
	return c
}

// adv is one stub-prefix advertisement into OSPF: the advertising router
// and the advertising interface's cost.
type adv struct {
	router string
	cost   int
}

// buildOSPFCore computes the link-state view: the cost graph, all-pairs
// SPF distances, and per-prefix distances.
func (n *Net) buildOSPFCore(workers int) *ospfCore {
	c := &ospfCore{
		graph: newWGraph(),
		dist:  make(map[string]map[string]int),
		distP: make(map[netip.Prefix]map[string]int),
	}
	for _, r := range n.Cfg.Routers() {
		if n.Cfg.Device(r).OSPF != nil {
			c.speakers = append(c.speakers, r)
		}
	}
	if len(c.speakers) == 0 {
		return c
	}

	// Directed cost graph over enabled router-router links.
	for _, l := range n.Links {
		if !n.ospfLinkEnabled(l) {
			continue
		}
		ia := n.Cfg.Device(l.A.Device).Interface(l.A.Iface)
		ib := n.Cfg.Device(l.B.Device).Interface(l.B.Iface)
		c.graph.add(l.A.Device, l.B.Device, ia.Cost(), l)
		c.graph.add(l.B.Device, l.A.Device, ib.Cost(), l)
	}
	c.dist = c.graph.allPairs(c.speakers, workers)

	// Advertised stub prefixes: every enabled connected interface prefix,
	// at the advertising interface's cost.
	advs := make(map[netip.Prefix][]adv)
	for _, r := range c.speakers {
		d := n.Cfg.Device(r)
		for _, i := range d.Interfaces {
			if ospfEnabled(d, i) {
				p := i.Addr.Masked()
				advs[p] = append(advs[p], adv{router: r, cost: i.Cost()})
			}
		}
	}
	c.prefixes = sortedPrefixes(advs)

	// distP[p][r]: cheapest cost from router r to prefix p; independent
	// per prefix, so the fan-out writes index-addressed slots.
	dps := make([]map[string]int, len(c.prefixes))
	forEachIndex(workers, len(c.prefixes), func(i int) {
		dp := make(map[string]int)
		for _, a := range advs[c.prefixes[i]] {
			for r := range c.dist {
				da, ok := c.dist[r][a.router]
				if !ok {
					continue
				}
				total := da + a.cost
				if cur, ok := dp[r]; !ok || total < cur {
					dp[r] = total
				}
			}
		}
		dps[i] = dp
	})
	for i, p := range c.prefixes {
		c.distP[p] = dps[i]
	}
	return c
}

// sortedPrefixes returns the map's keys in address order.
func sortedPrefixes[V any](m map[netip.Prefix]V) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
