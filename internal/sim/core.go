package sim

import (
	"net/netip"
	"sort"
)

// simCore is the filter-independent part of a simulation: everything that
// depends only on devices, interfaces, links, protocol enablement, and
// costs — never on route filters. It is derived once per Net (lazily, on
// the first SimulateNet call) and survives InvalidateFilters, which is what
// lets Algorithm 1 re-simulate after adding distribute-list entries without
// re-running link discovery, SPF, or session discovery.
//
// The contract mirrors the paper's Algorithm 1: the fixing loop only adds
// route filters, so the link-state database, the SPF distances, the
// distance-vector adjacencies, and the BGP session graph are all invariant
// across iterations. Any mutation beyond filters (interfaces, links,
// neighbors, costs, protocol enablement) requires a fresh Build.
type simCore struct {
	ospf *ospfCore
	// ospfLinks / ripLinks / eigrpLinks hold, per router, the incident
	// links over which the protocol exchanges routes (both endpoint
	// interfaces enabled), in linksOf order.
	ospfLinks  map[string][]*Link
	ripLinks   map[string][]*Link
	eigrpLinks map[string][]*Link
	// ripSpeakers / eigrpSpeakers list the routers running each
	// distance-vector protocol, in Routers() order.
	ripSpeakers   []string
	eigrpSpeakers []string
	// sessions is the discovered BGP session graph.
	sessions []bgpSession
}

// ospfCore is the link-state part of the OSPF computation: filters only
// remove next-hop candidates at RIB-installation time (IOS semantics), so
// the cost graph, the SPF distances, and the per-prefix advertisements are
// all filter-independent. Per-prefix distance rows are NOT materialized
// here — runOSPF streams them per destination shard from the DistMatrix
// (one pooled []int32 row per in-flight prefix), so core memory is the
// CSR graph plus the distance rows actually touched, never O(prefixes ×
// routers).
type ospfCore struct {
	// speakers lists the OSPF routers in Routers() order.
	speakers []string
	// t interns the speakers; fwd/dist index nodes by its IDs.
	t *interner
	// fwd is the directed cost graph over OSPF adjacencies in CSR form.
	fwd *csrGraph
	// dist is the all-pairs SPF view with on-demand destination rows.
	dist *DistMatrix
	// prefixes is every prefix advertised into OSPF, sorted.
	prefixes []netip.Prefix
	// advs[p] lists the stub-prefix advertisements for p.
	advs map[netip.Prefix][]adv
}

// coreFor returns the Net's filter-independent core, building it on first
// use. The once-init makes concurrent SimulateNet calls on the same Net
// safe; workers only sizes the pool used for the initial SPF fan-out.
func (n *Net) coreFor(workers int) *simCore {
	n.coreOnce.Do(func() { n.core = n.buildCore(workers) })
	return n.core
}

// buildCore derives the filter-independent simulation state.
func (n *Net) buildCore(workers int) *simCore {
	c := &simCore{
		ospfLinks:  make(map[string][]*Link),
		ripLinks:   make(map[string][]*Link),
		eigrpLinks: make(map[string][]*Link),
	}
	for _, r := range n.Cfg.Routers() {
		d := n.Cfg.Device(r)
		if d.RIP != nil {
			c.ripSpeakers = append(c.ripSpeakers, r)
		}
		if d.EIGRP != nil {
			c.eigrpSpeakers = append(c.eigrpSpeakers, r)
		}
		for _, l := range n.linksOf[r] {
			if n.ospfLinkEnabled(l) {
				c.ospfLinks[r] = append(c.ospfLinks[r], l)
			}
			if n.ripLinkEnabled(l) {
				c.ripLinks[r] = append(c.ripLinks[r], l)
			}
			if n.eigrpLinkEnabled(l) {
				c.eigrpLinks[r] = append(c.eigrpLinks[r], l)
			}
		}
	}
	c.sessions = n.discoverSessions()
	c.ospf = n.buildOSPFCore()
	return c
}

// adv is one stub-prefix advertisement into OSPF: the advertising router
// (as an interned id) and the advertising interface's cost.
type adv struct {
	router int32
	cost   int32
}

// buildOSPFCore computes the link-state view: the interned speaker table,
// the CSR cost graph, the on-demand all-pairs DistMatrix, and the
// per-prefix advertisements. No distances are computed here — rows
// materialize lazily as the route computation touches them.
func (n *Net) buildOSPFCore() *ospfCore {
	c := &ospfCore{advs: make(map[netip.Prefix][]adv)}
	for _, r := range n.Cfg.Routers() {
		if n.Cfg.Device(r).OSPF != nil {
			c.speakers = append(c.speakers, r)
		}
	}
	if len(c.speakers) == 0 {
		return c
	}

	// Every node of the cost graph is a speaker (ospfLinkEnabled requires
	// OSPF on both endpoints), so interning the speakers covers the graph
	// and isolated speakers alike.
	c.t = internNames(c.speakers)

	// Directed cost graph over enabled router-router links.
	var edges []csrEdge
	for _, l := range n.Links {
		if !n.ospfLinkEnabled(l) {
			continue
		}
		ia := n.Cfg.Device(l.A.Device).Interface(l.A.Iface)
		ib := n.Cfg.Device(l.B.Device).Interface(l.B.Iface)
		ai, _ := c.t.id(l.A.Device)
		bi, _ := c.t.id(l.B.Device)
		edges = append(edges, csrEdge{from: ai, to: bi, cost: clampCost32(ia.Cost()), link: l})
		edges = append(edges, csrEdge{from: bi, to: ai, cost: clampCost32(ib.Cost()), link: l})
	}
	c.fwd = buildCSR(c.t, edges)
	c.dist = newDistMatrix(c.fwd.reverse())

	// Advertised stub prefixes: every enabled connected interface prefix,
	// at the advertising interface's cost.
	for _, r := range c.speakers {
		d := n.Cfg.Device(r)
		ri, _ := c.t.id(r)
		for _, i := range d.Interfaces {
			if ospfEnabled(d, i) {
				p := i.Addr.Masked()
				c.advs[p] = append(c.advs[p], adv{router: ri, cost: clampCost32(i.Cost())})
			}
		}
	}
	c.prefixes = sortedPrefixes(c.advs)
	return c
}

// sortedPrefixes returns the map's keys in address order.
func sortedPrefixes[V any](m map[netip.Prefix]V) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
