package sim

import (
	"net/netip"
	"runtime"
	"sort"
	"sync"
)

// This file is the per-destination data-plane engine. For a fixed
// destination, every device's forwarding choice is a single FIB lookup, so
// the devices form a successor graph toward that destination; the path set
// from any source is the source's suffix set in that graph. The engine
// computes each device's suffix set once via a memoized DFS instead of
// re-walking shared path suffixes for every source — the recursive
// per-pair walker redid exactly that work for every source behind the same
// gateway, and re-derived every Path.Key O(log n) times inside its sort
// comparator on top.
//
// Memoization is only sound where the walk outcome is independent of how
// the walk arrived:
//
//   - Around forwarding loops the recursive walker truncates a path when
//     it revisits a device already on the *current* walk, so the emitted
//     hop sequence depends on the entry point. A cycle-taint pass (DFS
//     over the successor graph) marks every node on or upstream of a
//     cycle as loopy; loopy nodes fall back to the exact recursive walk.
//   - Past maxTraceDepth the walker truncates with Looped status, so a
//     suffix is only spliced in when prefix+suffix provably fits the
//     depth budget (maxLen, the longest memoized suffix, is tracked per
//     node). Deeper prefixes fall back too.
//
// Everything else — ECMP branch order, the maxTracePaths cap, Delivered /
// Looped / BlackHoled classification, final canonical sort — reproduces
// the recursive walker byte for byte; the dataplane tests pin that on the
// evaluation networks and on randomized topologies with injected loops
// and black holes.
//
// Devices are addressed by dense index (the Snapshot's shared device
// table) rather than name, and suffix sets are stored structurally (each
// entry references the child entry it extends) rather than as materialized
// hop lists, so building a destination's memo costs a handful of
// allocations per node instead of several per path.

// nodeKind classifies a device in one destination's successor graph.
type nodeKind int8

const (
	// transitNode forwards toward the destination via succ.
	transitNode nodeKind = iota
	// deliveredNode is the destination itself.
	deliveredNode
	// blackholeNode has no route to the destination (including the
	// Null0 discard pseudo-device and devices outside the network).
	blackholeNode
)

// destNode is one device's state in a destination's successor graph.
type destNode struct {
	kind nodeKind
	// loopy marks nodes on a forwarding cycle or upstream of one; their
	// suffix sets depend on walk history and are never memoized.
	loopy bool
	// maxLen is the longest memoized suffix (hop count including this
	// node); valid only for non-loopy nodes. A suffix set is spliced
	// into a walk only when prefixLen+maxLen fits maxTraceDepth.
	maxLen int
	// succ is the ordered next-hop index list — rt.NextHops order, the
	// order the recursive walker branches in.
	succ []int32
	// memo is the node's path-suffix set (each suffix starts at this
	// node), capped at maxTracePaths; nil until built. Non-loopy suffix
	// sets are never empty, so nil is unambiguous.
	memo *memoSet
}

// memoSet is one node's suffix set in DFS emission order (the order the
// recursive walker enumerates branches, which is what the maxTracePaths
// truncation is defined over), plus a permutation sorting it canonically.
//
// Suffixes are stored structurally, not materialized: entry j is the
// node's own name followed by entry sub[j] of node child[j] (child < 0
// terminates). Hops and Path.Key strings therefore exist nowhere in the
// memo — a suffix set costs five parallel slices per node instead of a
// string per hop per path, and the big win is at interior nodes, whose
// suffixes are only ever building blocks. Sources materialize their own
// path lists once in viewOf.
//
// The canonical order is built incrementally from the children's:
// prepending the same device to every suffix of a child rewrites each key
// from "<status>:<hops>" to "<status>:<dev>><hops>", which changes no
// pairwise comparison (status strings are mutually non-prefix and compared
// identically in both forms, and within one status the "<dev>>" prefix is
// shared) — so the parent's canonical order is a k-way merge of the
// children's, comparing child suffixes directly. cmpSuffix performs that
// comparison over the virtual joined strings without building them.
type memoSet struct {
	status []PathStatus
	child  []int32 // suffix continuation node, -1 when this entry is terminal
	sub    []int32 // entry index within child's memo
	length []int32 // hop count including this node
	order  []int32 // entry indices, canonically sorted
}

// statusOrder gives each Status the rank its String() has in lexicographic
// order ("blackholed" < "delivered" < "looped"), so suffix comparisons
// match Path.Key comparisons without building the strings.
func statusOrder(s PathStatus) int {
	switch s {
	case BlackHoled:
		return 0
	case Delivered:
		return 1
	default:
		return 2
	}
}

// joinIter streams the chunks of a memoized suffix's virtually joined hop
// string: name, ">", name, ">", ..., name.
type joinIter struct {
	e        *destEngine
	node, ei int32
	sep      bool
}

func (it *joinIter) next() (string, bool) {
	if it.sep {
		it.sep = false
		return ">", true
	}
	if it.node < 0 {
		return "", false
	}
	name := it.e.nameAt[it.node]
	m := it.e.nodes[it.node].memo
	it.node, it.ei = m.child[it.ei], m.sub[it.ei]
	it.sep = it.node >= 0
	return name, true
}

// cmpSuffix compares entry ai of node an's memo against entry bi of node
// bn's, in exactly the order their Path.Key strings would compare. Sibling
// suffixes diverge at the first hop (the two child devices), so the chunk
// walk almost always terminates immediately.
func (e *destEngine) cmpSuffix(an, ai, bn, bi int32) int {
	ma, mb := e.nodes[an].memo, e.nodes[bn].memo
	if ra, rb := statusOrder(ma.status[ai]), statusOrder(mb.status[bi]); ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	ita := joinIter{e: e, node: an, ei: ai}
	itb := joinIter{e: e, node: bn, ei: bi}
	ca, oka := ita.next()
	cb, okb := itb.next()
	for {
		switch {
		case !oka && !okb:
			return 0
		case !oka:
			return -1
		case !okb:
			return 1
		}
		n := len(ca)
		if len(cb) < n {
			n = len(cb)
		}
		if pa, pb := ca[:n], cb[:n]; pa != pb {
			if pa < pb {
				return -1
			}
			return 1
		}
		ca, cb = ca[n:], cb[n:]
		if len(ca) == 0 {
			ca, oka = ita.next()
		}
		if len(cb) == 0 {
			cb, okb = itb.next()
		}
	}
}

// materialize builds the hop list of one memoized suffix.
func (e *destEngine) materialize(node, ei int32) []string {
	hops := make([]string, e.nodes[node].memo.length[ei])
	for k := 0; node >= 0; k++ {
		hops[k] = e.nameAt[node]
		m := e.nodes[node].memo
		node, ei = m.child[ei], m.sub[ei]
	}
	return hops
}

// appendSuffix appends one memoized suffix's hops to dst.
func (e *destEngine) appendSuffix(dst []string, node, ei int32) []string {
	for node >= 0 {
		dst = append(dst, e.nameAt[node])
		m := e.nodes[node].memo
		node, ei = m.child[ei], m.sub[ei]
	}
	return dst
}

// viewOf materializes a node's canonical (sorted) path list and 128-bit
// fingerprint from its memo. The canonical key bytes are streamed through
// the engine's reusable scratch buffer and hashed — never retained as a
// string. Callers hold mu.
func (e *destEngine) viewOf(i int32) ([]Path, Digest) {
	m := e.nodes[i].memo
	ps := make([]Path, len(m.order))
	buf := e.scratch[:0]
	for k, j := range m.order {
		hops := e.materialize(i, j)
		ps[k] = Path{Hops: hops, Status: m.status[j]}
		if k > 0 {
			buf = append(buf, '\n')
		}
		buf = append(buf, m.status[j].String()...)
		buf = append(buf, ':')
		for h, name := range hops {
			if h > 0 {
				buf = append(buf, '>')
			}
			buf = append(buf, name...)
		}
	}
	e.scratch = buf[:0]
	return ps, digestOfBytes(buf)
}

// digestFor returns only the fingerprint of the canonical path set from
// src, streaming the key bytes out of the suffix memos without
// materializing a single hop list. scratch is a caller-owned reusable
// buffer, returned (possibly grown) for the next call. Unlike pathsFor
// the result is not cached in bySrc — digest-only extraction queries each
// source exactly once per destination.
func (e *destEngine) digestFor(src string, scratch []byte) (Digest, []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.bySrc[src]; ok {
		return r.fp, scratch
	}
	if !e.built {
		e.build()
	}
	i := e.indexOf(src)
	if n := &e.nodes[i]; n.loopy || n.maxLen > maxTraceDepth {
		// Loop/deep fallback: the walk must enumerate paths anyway, so go
		// through the caching path.
		_, fp := e.pathsForLocked(src)
		return fp, scratch
	}
	m := e.memoOf(i)
	buf := scratch[:0]
	for k, j := range m.order {
		if k > 0 {
			buf = append(buf, '\n')
		}
		buf = append(buf, m.status[j].String()...)
		buf = append(buf, ':')
		it := joinIter{e: e, node: i, ei: j}
		for chunk, ok := it.next(); ok; chunk, ok = it.next() {
			buf = append(buf, chunk...)
		}
	}
	return digestOfBytes(buf), buf[:0]
}

// delivInfo is one node's delivered-reachability census over its capped
// suffix set: the number of suffixes the maxTracePaths cap admits (count)
// and whether any admitted suffix is Delivered (del). It mirrors memoOf's
// cap arithmetic exactly — child c contributes min(len(c), cap-total)
// DFS-ordered entries — without building the memo, so a delivery check is
// O(nodes) per destination instead of O(paths × hops).
type delivInfo struct {
	count int32
	del   bool
}

// delivInfoOf computes (caching) the census for a non-loopy node whose
// downstream region is a DAG; the recursion is bounded by maxLen, like
// memoOf. Callers hold mu.
func (e *destEngine) delivInfoOf(i int32) delivInfo {
	for len(e.dinfoOK) < len(e.nodes) {
		// Sized to the node table, which indexOf may have grown since the
		// last census (out-of-config trace starts).
		e.dinfoOK = append(e.dinfoOK, false)
		e.dinfo = append(e.dinfo, delivInfo{})
	}
	if e.dinfoOK[i] {
		return e.dinfo[i]
	}
	n := &e.nodes[i]
	var di delivInfo
	switch n.kind {
	case deliveredNode:
		di = delivInfo{count: 1, del: true}
	case blackholeNode:
		di = delivInfo{count: 1}
	default:
		total := int32(0)
		for _, s := range n.succ {
			sub := e.delivInfoOf(s)
			c := sub.count
			if total+c > maxTracePaths {
				c = maxTracePaths - total
			}
			if c == sub.count {
				// Whole child admitted: its census applies as-is.
				di.del = di.del || sub.del
			} else if c > 0 && sub.del {
				// Cap truncates this child mid-way: whether a Delivered
				// suffix survives depends on its position in the child's
				// DFS order, so fall back to the memo for the truncated
				// child alone (still cap-bounded work).
				m := e.memoOf(s)
				for _, st := range m.status[:c] {
					if st == Delivered {
						di.del = true
						break
					}
				}
			}
			total += c
			if total >= maxTracePaths {
				break
			}
		}
		di.count = total
	}
	e.dinfoOK[i] = true
	e.dinfo[i] = di
	return di
}

// deliveredTraceLocked is the loop/deep fallback for delivered-only
// queries: the exact trace enumeration — same suffix-splice condition,
// same maxTracePaths / maxTraceDepth truncation, same branch order — but
// tracking only the emitted-path count and whether any emitted path is
// Delivered, so no hop list, Path value, or key string is ever built.
// (The repair loop of Algorithm 2 lives here: noise filters make
// per-router OSPF choices inconsistent, so the twinned network is full
// of forwarding loops and nearly every source takes this fallback.)
// Returns as soon as a Delivered path is found: later paths cannot
// retract delivery. Callers hold mu.
func (e *destEngine) deliveredTraceLocked(start int32) bool {
	onStack := make([]bool, len(e.nodes))
	emitted := int32(0)
	del := false
	var walk func(cur int32, depth int)
	walk = func(cur int32, depth int) {
		if del || emitted >= maxTracePaths {
			return
		}
		n := &e.nodes[cur]
		if !n.loopy && depth+n.maxLen <= maxTraceDepth {
			// Suffix splice: trace emits min(len(memo), cap-emitted)
			// entries of the node's DFS-ordered suffix set. The census
			// count is exactly the memo length, so the whole-set case
			// needs no memo at all; a cap truncation scans the memo's
			// status prefix, like delivInfoOf's truncated-child case.
			need := maxTracePaths - emitted
			di := e.delivInfoOf(cur)
			if di.count <= need {
				emitted += di.count
				del = del || di.del
				return
			}
			if di.del {
				for _, st := range e.memoOf(cur).status[:need] {
					if st == Delivered {
						del = true
						break
					}
				}
			}
			emitted = maxTracePaths
			return
		}
		depth++
		if n.kind == deliveredNode {
			emitted++
			del = true
			return
		}
		// Walker truncations each emit exactly one non-Delivered path
		// (Looped on revisit or depth, BlackHoled on no-route), so the
		// distinctions collapse for a delivered-only count.
		if onStack[cur] || depth > maxTraceDepth || n.kind == blackholeNode {
			emitted++
			return
		}
		onStack[cur] = true
		for _, s := range n.succ {
			walk(s, depth)
		}
		onStack[cur] = false
	}
	walk(start, 0)
	return del
}

// deliveredFromLocked reports whether at least one path from src toward
// the destination is Delivered — exactly delivered-status membership in
// pathsForLocked(src), via the census for the memoizable region and the
// count-only trace for loopy/deep sources. Callers hold mu.
func (e *destEngine) deliveredFromLocked(src string) bool {
	if r, ok := e.bySrc[src]; ok {
		for _, p := range r.paths {
			if p.Status == Delivered {
				return true
			}
		}
		return false
	}
	if !e.built {
		e.build()
	}
	i := e.indexOf(src)
	if n := &e.nodes[i]; n.loopy || n.maxLen > maxTraceDepth {
		return e.deliveredTraceLocked(i)
	}
	return e.delivInfoOf(i).del
}

// DeliveredFrom reports, for each source, whether at least one forwarding
// path from it toward dst is delivered — element i answers for srcs[i],
// with the exact semantics of scanning TraceFrom(srcs[i], dst) for a
// Delivered path (including the maxTracePaths truncation), computed
// without materializing hop lists for the acyclic in-depth region.
// Unknown destinations yield all-false, like TraceFrom's nil result.
func (s *Snapshot) DeliveredFrom(dst string, srcs []string) []bool {
	out := make([]bool, len(srcs))
	e := s.engineFor(dst)
	if e == nil {
		return out
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, src := range srcs {
		out[i] = e.deliveredFromLocked(src)
	}
	return out
}

// srcResult is a finished per-source trace: canonically sorted paths plus
// the fingerprint EqualOver-style comparisons use.
type srcResult struct {
	paths []Path
	fp    Digest
}

// destEngine holds one destination's successor graph, per-node suffix
// memos, and finished per-source results. All lazy state is guarded by mu
// so concurrent TraceFrom calls on the same destination are safe; distinct
// destinations never share an engine.
type destEngine struct {
	snap    *Snapshot
	dst     string
	dstPfx  netip.Prefix
	dstAddr netip.Addr

	mu    sync.Mutex
	built bool
	// nameAt/idxOf map between device names and node indices. idxOf is
	// the Snapshot's shared (read-only) table covering configured
	// devices; out-of-config devices reached as successors or trace
	// starts (e.g. the Null0 discard device) get engine-local indices in
	// extra and append to nameAt/nodes.
	nameAt []string
	idxOf  map[string]int32
	extra  map[string]int32
	nodes  []destNode
	bySrc  map[string]srcResult
	// dinfo/dinfoOK cache the per-node delivered census (see delivInfo),
	// filled lazily per node like the suffix memos and re-grown when
	// indexOf appends out-of-config nodes.
	dinfo   []delivInfo
	dinfoOK []bool
	// scratch is the reusable canonical-key byte buffer viewOf hashes
	// through; guarded by mu like the rest of the lazy state.
	scratch []byte
	// failRes caches finished what-if traces per (failure, src); see
	// whatif.go.
	failRes map[string]srcResult
}

// deviceIndex returns the Snapshot's shared device table (built once,
// race-free across concurrently building engines): the configured device
// names and the name → dense index map.
func (s *Snapshot) deviceIndex() ([]string, map[string]int32) {
	s.devOnce.Do(func() {
		names := s.Net.Cfg.Names()
		idx := make(map[string]int32, len(names))
		for i, name := range names {
			idx[name] = int32(i)
		}
		s.devNames, s.devIdx = names, idx
	})
	return s.devNames, s.devIdx
}

// Devices returns every configured device name in the Snapshot's dense
// device-table order. The slice is shared with the data-plane engines:
// callers must treat it as read-only.
func (s *Snapshot) Devices() []string {
	names, _ := s.deviceIndex()
	return names
}

// HasDevice reports whether name is a configured device of the network.
func (s *Snapshot) HasDevice(name string) bool {
	_, idx := s.deviceIndex()
	_, ok := idx[name]
	return ok
}

// Hosts returns the network's host device names in sorted order.
func (s *Snapshot) Hosts() []string { return s.Net.Cfg.Hosts() }

// engineFor returns the Snapshot's cached engine for dst, creating it on
// first use; nil when dst is not a known host. The engine's graph is
// derived lazily on the first trace, so creating engines is cheap and the
// expensive per-destination analysis happens on the worker that owns the
// destination.
func (s *Snapshot) engineFor(dst string) *destEngine {
	s.destMu.Lock()
	defer s.destMu.Unlock()
	if s.destEngines == nil {
		s.destEngines = make(map[string]*destEngine)
	}
	e, ok := s.destEngines[dst]
	if !ok {
		if pfx, known := s.Net.HostPrefix[dst]; known {
			e = &destEngine{snap: s, dst: dst, dstPfx: pfx, dstAddr: hostAddr(s.Net, dst)}
		}
		s.destEngines[dst] = e // nil for unknown destinations, cached too
	}
	return e
}

// transientEngineFor builds an engine for dst without registering it in
// the Snapshot's cache: digest-only extraction (PairDigestsFor) creates
// one engine per destination and drops it as soon as that destination's
// column is hashed, so the successor graph and suffix-memo storage are
// reclaimed instead of accumulating one retained engine per host. Returns
// nil when dst is not a known host, like engineFor.
func (s *Snapshot) transientEngineFor(dst string) *destEngine {
	pfx, known := s.Net.HostPrefix[dst]
	if !known {
		return nil
	}
	return &destEngine{snap: s, dst: dst, dstPfx: pfx, dstAddr: hostAddr(s.Net, dst)}
}

// traceWorkers resolves the worker-pool size for destination-sharded
// extraction: the Parallelism the Snapshot was simulated with, or
// GOMAXPROCS for Snapshots assembled without options.
func (s *Snapshot) traceWorkers() int {
	if s.workers > 0 {
		return s.workers
	}
	return runtime.GOMAXPROCS(0)
}

// pathsFor returns the canonical path set and fingerprint from src toward
// the engine's destination, computing it at most once per source.
//
// The common case — src not on or upstream of a forwarding loop, longest
// path within the depth budget — sorts the src node's memoized suffix set
// directly: the Path values are shared with every other source whose walk
// passes through src, which is what makes extraction cheaper than
// per-pair walking. The loop/deep fallback runs the hybrid recursive walk
// instead.
func (e *destEngine) pathsFor(src string) ([]Path, Digest) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pathsForLocked(src)
}

// pathsForLocked is pathsFor for callers already holding mu.
func (e *destEngine) pathsForLocked(src string) ([]Path, Digest) {
	if r, ok := e.bySrc[src]; ok {
		return r.paths, r.fp
	}
	if !e.built {
		e.build()
	}
	var ps []Path
	var fp Digest
	i := e.indexOf(src)
	if n := &e.nodes[i]; !n.loopy && n.maxLen <= maxTraceDepth {
		e.memoOf(i)
		ps, fp = e.viewOf(i)
	} else {
		ps, fp = sortPathsByKey(e.trace(i))
	}
	if e.bySrc == nil {
		e.bySrc = make(map[string]srcResult)
	}
	e.bySrc[src] = srcResult{paths: ps, fp: fp}
	return ps, fp
}

// routeToward replicates the recursive walker's FIB choice: an exact hit
// on the destination prefix is the LPM result (host LANs are the most
// specific prefixes in the model); the linear scan only runs for
// aggregated/default routes.
func (e *destEngine) routeToward(dev string) *Route {
	fib := e.snap.FIBs[dev]
	if fib == nil {
		return nil
	}
	if exact := fib[e.dstPfx]; exact != nil {
		return exact
	}
	return fib.Lookup(e.dstAddr)
}

// classify derives a device's node kind and successor names.
func (e *destEngine) classify(dev string) (nodeKind, []NextHop) {
	if dev == e.dst {
		return deliveredNode, nil
	}
	rt := e.routeToward(dev)
	if rt == nil || len(rt.NextHops) == 0 {
		return blackholeNode, nil
	}
	return transitNode, rt.NextHops
}

// indexOf returns (allocating on demand) the node index for a device,
// including devices outside the configured set — the walker treats those
// as black holes, exactly like the recursive walker's nil-FIB case.
// Callers hold mu; any held *destNode pointer is invalid afterwards.
func (e *destEngine) indexOf(dev string) int32 {
	if i, ok := e.idxOf[dev]; ok {
		return i
	}
	if i, ok := e.extra[dev]; ok {
		return i
	}
	kind, nhs := e.classify(dev)
	var succ []int32
	if kind == transitNode {
		succ = make([]int32, len(nhs))
		for k, nh := range nhs {
			succ[k] = e.indexOf(nh.Device)
		}
	}
	i := int32(len(e.nodes))
	e.nodes = append(e.nodes, destNode{kind: kind, succ: succ})
	e.nameAt = append(e.nameAt, dev)
	if e.extra == nil {
		e.extra = make(map[string]int32)
	}
	e.extra[dev] = i
	return i
}

// build derives the successor graph over every configured device and runs
// the cycle-taint + max-suffix-length analysis. Callers hold mu.
func (e *destEngine) build() {
	e.built = true
	names, idx := e.snap.deviceIndex()
	e.idxOf = idx
	e.nameAt = append(make([]string, 0, len(names)+1), names...)
	e.nodes = make([]destNode, len(names), len(names)+1)
	nhLists := make([][]NextHop, len(names))
	for i, name := range names {
		e.nodes[i].kind, nhLists[i] = e.classify(name)
	}
	for i, nhs := range nhLists {
		if len(nhs) == 0 {
			continue
		}
		succ := make([]int32, len(nhs))
		for k, nh := range nhs {
			// indexOf appends out-of-config successors (the Null0
			// discard device) as terminal black holes.
			succ[k] = e.indexOf(nh.Device)
		}
		e.nodes[i].succ = succ
	}

	// Iterative three-color DFS. A gray target is a back edge: the target
	// is on a cycle, and the current node reaches it. Propagation happens
	// at pop time — every successor is finalized (or gray, handled at the
	// encounter) by then — which also finalizes maxLen for the non-loopy
	// region in the same pass.
	const (
		white = uint8(0)
		gray  = uint8(1)
		black = uint8(2)
	)
	color := make([]uint8, len(e.nodes))
	type frame struct {
		node int32
		next int
	}
	var stack []frame
	for root := int32(0); root < int32(len(e.nodes)); root++ {
		if color[root] != white {
			continue
		}
		stack = append(stack[:0], frame{node: root})
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			n := &e.nodes[f.node]
			if f.next < len(n.succ) {
				s := n.succ[f.next]
				f.next++
				sn := &e.nodes[s]
				switch color[s] {
				case white:
					color[s] = gray
					stack = append(stack, frame{node: s})
				case gray:
					// Back edge: s is on a cycle and f.node reaches it.
					sn.loopy = true
					n.loopy = true
				default: // black: finalized
					if sn.loopy {
						n.loopy = true
					}
				}
				continue
			}
			// Finalize.
			maxLen := 1
			for _, s := range n.succ {
				sn := &e.nodes[s]
				if sn.loopy || color[s] == gray {
					n.loopy = true
				}
				if sn.maxLen >= maxLen {
					maxLen = sn.maxLen + 1
				}
			}
			if !n.loopy {
				n.maxLen = maxLen
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
}

// memoOf returns (building on demand) a node's suffix set, capped at
// maxTracePaths in DFS emission order (exactly the recursive walker's
// first-N truncation, since children are concatenated in next-hop order
// and each child's memo is itself DFS-ordered). Entries only reference the
// child entry they extend; the canonical order derives incrementally from
// the children (see memoSet). Only called for non-loopy nodes, whose
// downstream region is a DAG, so the recursion is bounded by maxLen.
// Callers hold mu.
func (e *destEngine) memoOf(i int32) *memoSet {
	n := &e.nodes[i]
	if n.memo != nil {
		return n.memo
	}
	if n.kind != transitNode {
		status := BlackHoled
		if n.kind == deliveredNode {
			status = Delivered
		}
		n.memo = &memoSet{
			status: []PathStatus{status},
			child:  []int32{-1},
			sub:    []int32{-1},
			length: []int32{1},
			order:  []int32{0},
		}
		return n.memo
	}

	// Pass 1: resolve children and apply the global path cap. Child c
	// contributes its first cnt[c] DFS entries — the walker's first-N
	// truncation.
	subs := make([]*memoSet, len(n.succ))
	for k, s := range n.succ {
		subs[k] = e.memoOf(s)
	}
	cnt := make([]int, len(subs))
	offset := make([]int32, len(subs))
	total := 0
	for ci, sub := range subs {
		c := len(sub.status)
		if total+c > maxTracePaths {
			c = maxTracePaths - total
		}
		cnt[ci] = c
		offset[ci] = int32(total)
		total += c
	}

	// Pass 2: emit in DFS order.
	m := &memoSet{
		status: make([]PathStatus, 0, total),
		child:  make([]int32, 0, total),
		sub:    make([]int32, 0, total),
		length: make([]int32, 0, total),
	}
	for ci, sub := range subs {
		c := n.succ[ci]
		for di := 0; di < cnt[ci]; di++ {
			m.status = append(m.status, sub.status[di])
			m.child = append(m.child, c)
			m.sub = append(m.sub, int32(di))
			m.length = append(m.length, sub.length[di]+1)
		}
	}

	// Pass 3: canonical order via k-way merge of the children's sorted
	// orders, comparing child suffixes (equivalent to parent-key order).
	m.order = make([]int32, 0, total)
	ptrs := make([]int, len(subs))
	for len(m.order) < total {
		best := -1
		for ci, sub := range subs {
			p := ptrs[ci]
			// Skip entries the cap excluded from this node.
			for p < len(sub.order) && int(sub.order[p]) >= cnt[ci] {
				p++
			}
			ptrs[ci] = p
			if p >= len(sub.order) {
				continue
			}
			if best < 0 || e.cmpSuffix(n.succ[ci], sub.order[p], n.succ[best], subs[best].order[ptrs[best]]) < 0 {
				best = ci
			}
		}
		m.order = append(m.order, offset[best]+subs[best].order[ptrs[best]])
		ptrs[best]++
	}
	n.memo = m
	return m
}

// trace is the loop/deep fallback: it enumerates every forwarding path
// from the start node with the exact recursive-walker semantics, splicing
// memoized suffix sets back in wherever that provably matches (node not
// loopy, depth budget fits, and — by the taint analysis — no suffix can
// revisit a walk ancestor). Output order is the walker's DFS order,
// unsorted. Callers hold mu.
func (e *destEngine) trace(start int32) []Path {
	var out []Path
	onStack := make([]bool, len(e.nodes))
	var walk func(cur int32, hops []string)
	walk = func(cur int32, hops []string) {
		if len(out) >= maxTracePaths {
			return
		}
		n := &e.nodes[cur]
		if !n.loopy && len(hops)+n.maxLen <= maxTraceDepth {
			m := e.memoOf(cur)
			for j := range m.status {
				if len(out) >= maxTracePaths {
					return
				}
				full := make([]string, 0, len(hops)+int(m.length[j]))
				full = append(full, hops...)
				full = e.appendSuffix(full, cur, int32(j))
				out = append(out, Path{Hops: full, Status: m.status[j]})
			}
			return
		}
		// Otherwise: the seed recursive walk, check for check.
		hops = append(hops, e.nameAt[cur])
		if n.kind == deliveredNode {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Delivered})
			return
		}
		if onStack[cur] {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Looped})
			return
		}
		if len(hops) > maxTraceDepth {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Looped})
			return
		}
		if n.kind == blackholeNode {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: BlackHoled})
			return
		}
		onStack[cur] = true
		for _, s := range n.succ {
			walk(s, hops)
		}
		onStack[cur] = false
	}
	walk(start, nil)
	return out
}

// sortPathsByKey orders paths canonically, deriving each Key exactly once
// (the recursive walker recomputed both keys inside the comparator), and
// returns the 128-bit canonical fingerprint alongside. The sorted keys
// are hashed through one exactly-sized transient buffer instead of being
// joined into a retained string. The input slice is not reordered —
// memoized slices are shared across sources.
func sortPathsByKey(ps []Path) ([]Path, Digest) {
	if len(ps) == 0 {
		return ps, Digest{}
	}
	keys := make([]string, len(ps))
	idx := make([]int, len(ps))
	size := len(ps) - 1
	for i, p := range ps {
		keys[i] = p.Key()
		idx[i] = i
		size += len(keys[i])
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sorted := make([]Path, len(ps))
	buf := make([]byte, 0, size)
	for i, j := range idx {
		sorted[i] = ps[j]
		if i > 0 {
			buf = append(buf, '\n')
		}
		buf = append(buf, keys[j]...)
	}
	return sorted, digestOfBytes(buf)
}
