package sim

import (
	"testing"

	"confmask/internal/config"
	"confmask/internal/netgen"
)

// The extraction benchmarks compare four ways of producing the same
// DataPlane on the two reference networks:
//
//	naive       per-pair recursive walk (the seed algorithm, traceNaive)
//	seq         destination-sharded engine, one worker
//	par4 /      destination-sharded engine over the worker pool
//	gomaxprocs
//	dirty       one filter-mutation round re-tracing only dirty destinations
//
// The seq-vs-naive ratio is the memoization win alone; dirty-vs-seq is the
// per-round win of Algorithm 2's and strawman 2's fixing loops.

func benchNetworks(b *testing.B) []struct {
	name string
	cfg  *config.Network
} {
	b.Helper()
	backbone, err := netgen.Backbone()
	if err != nil {
		b.Fatal(err)
	}
	fatTree, err := netgen.FatTree08()
	if err != nil {
		b.Fatal(err)
	}
	return []struct {
		name string
		cfg  *config.Network
	}{
		{"Backbone", backbone},
		{"FatTree08", fatTree},
	}
}

// coldSnapshot shares base's simulated FIBs but carries empty trace
// caches, so each iteration pays the full extraction instead of reading
// the per-destination cache of the previous one.
func coldSnapshot(base *Snapshot, workers int) *Snapshot {
	return &Snapshot{Net: base.Net, FIBs: base.FIBs, OSPFDist: base.OSPFDist, workers: workers}
}

func BenchmarkExtractDataPlane(b *testing.B) {
	for _, net := range benchNetworks(b) {
		cfg := net.cfg
		base, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		hosts := cfg.Hosts()

		b.Run(net.name+"/naive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, src := range hosts {
					for _, dst := range hosts {
						if src != dst {
							base.traceNaive(src, dst)
						}
					}
				}
			}
		})
		for _, v := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"par4", 4}, {"gomaxprocs", 0}} {
			b.Run(net.name+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					coldSnapshot(base, v.workers).DataPlaneFor(hosts)
				}
			})
		}

		b.Run(net.name+"/dirty", func(b *testing.B) {
			view, err := Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			snap := SimulateNet(view)
			prev := snap.DataPlaneFor(hosts)
			gw := view.GatewayOf[hosts[0]]
			d := cfg.Device(gw)
			if len(d.Interfaces) == 0 {
				b.Skip("gateway has no interfaces")
			}
			iface := d.Interfaces[0].Name
			pfx := view.HostPrefix[hosts[0]]
			if !attachIGPDeny(d, iface, pfx) {
				b.Skipf("gateway %s runs no IGP", gw)
			}
			d.PrefixList("TST-" + iface).RemoveDeny(pfx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Toggle one deny so every round carries exactly one dirty
				// destination, like a fixing-loop iteration.
				if i%2 == 0 {
					d.EnsurePrefixList("TST-" + iface).Deny(pfx)
				} else {
					d.PrefixList("TST-" + iface).RemoveDeny(pfx)
				}
				diff := view.InvalidateFilters()
				next := SimulateNetOpts(view, Options{Parallelism: 1})
				b.StartTimer()
				prev = next.DataPlaneForDirty(hosts, prev, diff)
			}
		})
	}
}
