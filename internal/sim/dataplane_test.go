package sim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netgen"
)

// These tests pin the destination-sharded engine to the seed per-pair
// recursive walker (kept as traceNaive): every path set must be
// byte-identical — hop for hop, status for status, in canonical order —
// on the full evaluation catalog, on randomized topologies, on FIBs
// mutated to contain forwarding loops, black holes, and over-depth
// chains, and under dirty-destination reuse.

// naiveDataPlane extracts the data plane with the reference walker.
func naiveDataPlane(s *Snapshot, hosts []string) map[Pair][]Path {
	out := make(map[Pair][]Path)
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			out[Pair{Src: src, Dst: dst}] = s.traceNaive(src, dst)
		}
	}
	return out
}

// samePaths reports whether two canonical path lists are byte-identical.
func samePaths(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Status != b[i].Status || len(a[i].Hops) != len(b[i].Hops) {
			return false
		}
		for j := range a[i].Hops {
			if a[i].Hops[j] != b[i].Hops[j] {
				return false
			}
		}
	}
	return true
}

// assertDataPlaneMatchesNaive compares an engine-built DataPlane against
// the reference walker pair by pair, including the precomputed
// fingerprints.
func assertDataPlaneMatchesNaive(t *testing.T, s *Snapshot, hosts []string, dp *DataPlane) {
	t.Helper()
	want := naiveDataPlane(s, hosts)
	if len(dp.Pairs) != len(want) {
		t.Fatalf("pair count = %d, want %d", len(dp.Pairs), len(want))
	}
	for k, wantPaths := range want {
		got := dp.Pairs[k]
		if !samePaths(got, wantPaths) {
			t.Fatalf("pair %v: engine paths differ from naive walker\n got: %v\nwant: %v", k, got, wantPaths)
		}
		if fp := dp.pairDigest(k); fp != digestOfKey(pathSetKey(wantPaths)) {
			t.Fatalf("pair %v: fingerprint %x != digest of pathSetKey %q", k, fp, pathSetKey(wantPaths))
		}
	}
}

// TestDataPlaneEngineMatchesNaiveCatalog is the acceptance pin: on all
// eight evaluation networks, at every parallelism setting, the engine's
// DataPlane is byte-identical to the seed recursive walker.
func TestDataPlaneEngineMatchesNaiveCatalog(t *testing.T) {
	for _, spec := range netgen.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4, 0} {
				snap, err := SimulateOpts(cfg, Options{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				dp := snap.ExtractDataPlane()
				assertDataPlaneMatchesNaive(t, snap, cfg.Hosts(), dp)
			}
		})
	}
}

// randomSimNet mirrors the anonymize package's netgen fuzz harness: a
// random connected topology (spanning tree plus chords), random OSPF
// costs, hosts on random routers.
func randomSimNet(t *testing.T, proto netgen.Proto, rng *rand.Rand) *config.Network {
	t.Helper()
	n := 6 + rng.Intn(12)
	b := netgen.NewBuilder(proto)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("r%02d", i)
		b.Router(names[i])
	}
	type edge struct{ a, b int }
	used := map[edge]bool{}
	link := func(i, j int) {
		if i == j {
			return
		}
		a, c := i, j
		if a > c {
			a, c = c, a
		}
		if used[edge{a, c}] {
			return
		}
		used[edge{a, c}] = true
		cost := 0
		if proto == netgen.OSPF && rng.Intn(2) == 0 {
			cost = 1 + rng.Intn(20)
		}
		b.LinkCost(names[i], names[j], cost, cost)
	}
	for i := 1; i < n; i++ {
		link(i, rng.Intn(i))
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		link(rng.Intn(n), rng.Intn(n))
	}
	hosts := 2 + rng.Intn(3)
	for h := 0; h < hosts; h++ {
		b.Host(fmt.Sprintf("h%02d", h), names[rng.Intn(n)])
	}
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestDataPlaneEngineMatchesNaiveRandom fuzzes converged topologies:
// full extraction at random parallelism plus TraceFrom from every device
// (Algorithm 2's router-sourced traces) must match the walker.
func TestDataPlaneEngineMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4021))
	protos := []netgen.Proto{netgen.OSPF, netgen.RIP, netgen.EIGRP}
	for trial := 0; trial < 12; trial++ {
		proto := protos[trial%len(protos)]
		cfg := randomSimNet(t, proto, rng)
		snap, err := SimulateOpts(cfg, Options{Parallelism: rng.Intn(5)})
		if err != nil {
			t.Fatal(err)
		}
		hosts := cfg.Hosts()
		assertDataPlaneMatchesNaive(t, snap, hosts, snap.DataPlaneFor(hosts))
		for _, dev := range cfg.Names() {
			for _, dst := range hosts {
				got := snap.TraceFrom(dev, dst)
				want := snap.traceNaive(dev, dst)
				if !samePaths(got, want) {
					t.Fatalf("trial %d: TraceFrom(%s, %s)\n got: %v\nwant: %v", trial, dev, dst, got, want)
				}
			}
		}
	}
}

// TestDataPlaneEngineLoopsAndBlackHoles mutates converged FIBs into
// pathological ones — rewired next hops forming forwarding loops
// (including self-loops), deleted routes, discard next hops — and checks
// the engine still matches the walker's Looped/BlackHoled classification
// and truncation exactly.
func TestDataPlaneEngineLoopsAndBlackHoles(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 20; trial++ {
		cfg := randomSimNet(t, netgen.OSPF, rng)
		snap, err := SimulateOpts(cfg, Options{Parallelism: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		hosts := cfg.Hosts()
		routers := cfg.Routers()
		// Corrupt a handful of (router, host-prefix) FIB entries before
		// the first trace builds any engine.
		for m := 0; m < 2+rng.Intn(6); m++ {
			r := routers[rng.Intn(len(routers))]
			h := hosts[rng.Intn(len(hosts))]
			pfx := snap.Net.HostPrefix[h]
			fib := snap.FIBs[r]
			if fib == nil {
				continue
			}
			switch rng.Intn(4) {
			case 0: // forwarding loop (possibly self-loop)
				tgt := routers[rng.Intn(len(routers))]
				fib[pfx] = &Route{Prefix: pfx, Source: SrcOSPF, NextHops: []NextHop{{Device: tgt}}}
			case 1: // ECMP loop: two rewired branches
				t1 := routers[rng.Intn(len(routers))]
				t2 := routers[rng.Intn(len(routers))]
				fib[pfx] = &Route{Prefix: pfx, Source: SrcOSPF, NextHops: sortNextHops([]NextHop{{Device: t1}, {Device: t2, Iface: "x"}})}
			case 2: // black hole: no route at all
				delete(fib, pfx)
			case 3: // discard next hop
				fib[pfx] = &Route{Prefix: pfx, Source: SrcStatic, NextHops: []NextHop{{Device: DiscardDevice, Iface: "Null0"}}}
			}
		}
		assertDataPlaneMatchesNaive(t, snap, hosts, snap.DataPlaneFor(hosts))
		for _, dev := range cfg.Names() {
			for _, dst := range hosts {
				got := snap.TraceFrom(dev, dst)
				want := snap.traceNaive(dev, dst)
				if !samePaths(got, want) {
					t.Fatalf("trial %d: TraceFrom(%s, %s) after FIB corruption\n got: %v\nwant: %v", trial, dev, dst, got, want)
				}
			}
		}
	}
}

// TestDataPlaneEngineDeepPaths drives paths past maxTraceDepth (a chain
// longer than the depth budget) so the walker's Looped truncation and the
// engine's depth-gated splice are exercised against each other.
func TestDataPlaneEngineDeepPaths(t *testing.T) {
	b := netgen.NewBuilder(netgen.OSPF)
	n := maxTraceDepth + 8
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("c%03d", i)
		b.Router(names[i])
	}
	for i := 1; i < n; i++ {
		b.Link(names[i-1], names[i])
	}
	b.Host("ha", names[0])
	b.Host("hz", names[n-1])
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := SimulateOpts(cfg, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	hosts := cfg.Hosts()
	assertDataPlaneMatchesNaive(t, snap, hosts, snap.DataPlaneFor(hosts))
	// Also from mid-chain routers: prefixes of every length around the
	// depth boundary.
	for _, dev := range names {
		for _, dst := range hosts {
			got := snap.TraceFrom(dev, dst)
			want := snap.traceNaive(dev, dst)
			if !samePaths(got, want) {
				t.Fatalf("TraceFrom(%s, %s)\n got: %v\nwant: %v", dev, dst, got, want)
			}
		}
	}
}

// attachIGPDeny adds (or extends) an inbound distribute-list denying pfx
// on one interface of the device, whichever IGP the device runs.
func attachIGPDeny(d *config.Device, iface string, pfx netip.Prefix) bool {
	var filters map[string]string
	switch {
	case d.OSPF != nil:
		if d.OSPF.InFilters == nil {
			d.OSPF.InFilters = make(map[string]string)
		}
		filters = d.OSPF.InFilters
	case d.RIP != nil:
		if d.RIP.InFilters == nil {
			d.RIP.InFilters = make(map[string]string)
		}
		filters = d.RIP.InFilters
	case d.EIGRP != nil:
		if d.EIGRP.InFilters == nil {
			d.EIGRP.InFilters = make(map[string]string)
		}
		filters = d.EIGRP.InFilters
	default:
		return false
	}
	name, ok := filters[iface]
	if !ok {
		name = "TST-" + iface
		filters[iface] = name
	}
	d.EnsurePrefixList(name).Deny(pfx)
	return true
}

// TestDataPlaneForDirtyRandom is the dirty-destination property test:
// after each random filter mutation, DataPlaneForDirty carrying the
// previous result forward must equal a from-scratch naive extraction, and
// clean destinations must actually reuse the prior path slices.
func TestDataPlaneForDirtyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	protos := []netgen.Proto{netgen.OSPF, netgen.RIP, netgen.EIGRP}
	for trial := 0; trial < 9; trial++ {
		proto := protos[trial%len(protos)]
		cfg := randomSimNet(t, proto, rng)
		view, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap := SimulateNetOpts(view, Options{Parallelism: 1 + rng.Intn(4)})
		hosts := cfg.Hosts()
		prev := snap.DataPlaneFor(hosts)
		assertDataPlaneMatchesNaive(t, snap, hosts, prev)

		routers := cfg.Routers()
		var denied []struct {
			dev  string
			list string
			pfx  netip.Prefix
		}
		for round := 0; round < 6; round++ {
			// Mutate: mostly add a deny, sometimes remove one again.
			if len(denied) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(denied))
				d := cfg.Device(denied[i].dev)
				if pl := d.PrefixList(denied[i].list); pl != nil {
					pl.RemoveDeny(denied[i].pfx)
				}
				denied = append(denied[:i], denied[i+1:]...)
			} else {
				r := routers[rng.Intn(len(routers))]
				h := hosts[rng.Intn(len(hosts))]
				d := cfg.Device(r)
				if len(d.Interfaces) == 0 {
					continue
				}
				iface := d.Interfaces[rng.Intn(len(d.Interfaces))].Name
				pfx := snap.Net.HostPrefix[h]
				if !attachIGPDeny(d, iface, pfx) {
					continue
				}
				denied = append(denied, struct {
					dev  string
					list string
					pfx  netip.Prefix
				}{r, "TST-" + iface, pfx})
			}

			diff := view.InvalidateFilters()
			snap = SimulateNetOpts(view, Options{Parallelism: 1 + rng.Intn(4)})
			got := snap.DataPlaneForDirty(hosts, prev, diff)
			assertDataPlaneMatchesNaive(t, snap, hosts, got)

			// Clean destinations must carry the previous slices forward,
			// not re-trace.
			for _, dst := range hosts {
				if diff.Affects(snap.Net.HostPrefix[dst]) {
					continue
				}
				for _, src := range hosts {
					if src == dst {
						continue
					}
					k := Pair{Src: src, Dst: dst}
					if len(prev.Pairs[k]) == 0 {
						continue
					}
					if &got.Pairs[k][0] != &prev.Pairs[k][0] {
						t.Fatalf("trial %d round %d: clean pair %v was re-traced", trial, round, k)
					}
				}
			}
			prev = got
		}
	}
}

// TestFilterDiffReporting pins the diff semantics: no mutation → Empty;
// adding a deny dirties exactly that prefix; detaching the list dirties
// it again; unrelated destinations are unaffected.
func TestFilterDiffReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := randomSimNet(t, netgen.OSPF, rng)
	view, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := view.InvalidateFilters(); !d.Empty() {
		t.Fatalf("no-op InvalidateFilters: diff not empty (all=%v prefixes=%v)", d.All(), d.Prefixes())
	}

	hosts := cfg.Hosts()
	h0, h1 := hosts[0], hosts[1]
	pfx := view.HostPrefix[h0]
	r := view.GatewayOf[h1]
	d := cfg.Device(r)
	iface := d.Interfaces[0].Name
	if !attachIGPDeny(d, iface, pfx) {
		t.Fatalf("could not attach filter on %s", r)
	}
	diff := view.InvalidateFilters()
	if diff.All() || diff.Empty() {
		t.Fatalf("add-deny diff: all=%v empty=%v", diff.All(), diff.Empty())
	}
	if !diff.Affects(pfx) {
		t.Fatalf("diff does not affect denied prefix %v", pfx)
	}
	if other := view.HostPrefix[h1]; diff.Affects(other) {
		t.Fatalf("diff affects unrelated prefix %v", other)
	}

	// Detach the list without touching its rules: attachment diff.
	delete(d.OSPF.InFilters, iface)
	diff = view.InvalidateFilters()
	if !diff.Affects(pfx) {
		t.Fatalf("detach diff does not affect %v", pfx)
	}
	if d2 := view.InvalidateFilters(); !d2.Empty() {
		t.Fatalf("idle diff after detach not empty")
	}
}

// TestDataPlaneForDirtyBGP covers the eBGP attachment path on the
// Backbone network: a distribute-list denial on a BGP session must be
// reported dirty and the dirty extraction must match the walker.
func TestDataPlaneForDirtyBGP(t *testing.T) {
	cfg, err := netgen.Backbone()
	if err != nil {
		t.Fatal(err)
	}
	view, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := SimulateNet(view)
	hosts := cfg.Hosts()
	prev := snap.DataPlaneFor(hosts)

	// Find a router with a BGP neighbor and deny some host's prefix
	// inbound on that session.
	var dev *config.Device
	for _, r := range cfg.Routers() {
		d := cfg.Device(r)
		if d.BGP != nil && len(d.BGP.Neighbors) > 0 {
			dev = d
			break
		}
	}
	if dev == nil {
		t.Skip("Backbone has no BGP neighbors")
	}
	nb := dev.BGP.Neighbors[0]
	pfx := view.HostPrefix[hosts[0]]
	if nb.DistributeListIn == "" {
		nb.DistributeListIn = "TST-BGP"
	}
	dev.EnsurePrefixList(nb.DistributeListIn).Deny(pfx)

	diff := view.InvalidateFilters()
	if !diff.Affects(pfx) {
		t.Fatalf("BGP deny not reported dirty for %v", pfx)
	}
	snap = SimulateNet(view)
	got := snap.DataPlaneForDirty(hosts, prev, diff)
	assertDataPlaneMatchesNaive(t, snap, hosts, got)
}
