package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"confmask/internal/netgen"
)

// wantDelivered is the reference semantics: scan the full trace.
func wantDelivered(ps []Path) bool {
	for _, p := range ps {
		if p.Status == Delivered {
			return true
		}
	}
	return false
}

// TestDeliveredFromMatchesTrace pins DeliveredFrom to delivered-status
// membership of TraceFrom on randomized topologies with injected loops,
// black holes, and discard routes — checking the census path (queried
// before any trace caches paths) and the cached-result path (queried
// again after TraceFrom ran) separately.
func TestDeliveredFromMatchesTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7042))
	for trial := 0; trial < 12; trial++ {
		cfg := randomSimNet(t, netgen.OSPF, rng)
		snap, err := SimulateOpts(cfg, Options{Parallelism: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		hosts := cfg.Hosts()
		routers := cfg.Routers()
		for m := 0; m < 2+rng.Intn(6); m++ {
			r := routers[rng.Intn(len(routers))]
			h := hosts[rng.Intn(len(hosts))]
			pfx := snap.Net.HostPrefix[h]
			fib := snap.FIBs[r]
			if fib == nil {
				continue
			}
			switch rng.Intn(4) {
			case 0:
				tgt := routers[rng.Intn(len(routers))]
				fib[pfx] = &Route{Prefix: pfx, Source: SrcOSPF, NextHops: []NextHop{{Device: tgt}}}
			case 1:
				t1 := routers[rng.Intn(len(routers))]
				t2 := routers[rng.Intn(len(routers))]
				fib[pfx] = &Route{Prefix: pfx, Source: SrcOSPF, NextHops: sortNextHops([]NextHop{{Device: t1}, {Device: t2, Iface: "x"}})}
			case 2:
				delete(fib, pfx)
			case 3:
				fib[pfx] = &Route{Prefix: pfx, Source: SrcStatic, NextHops: []NextHop{{Device: DiscardDevice, Iface: "Null0"}}}
			}
		}
		devs := cfg.Names()
		for _, dst := range hosts {
			// Census path: no traces have run for this destination yet.
			got := snap.DeliveredFrom(dst, devs)
			for i, dev := range devs {
				if want := wantDelivered(snap.traceNaive(dev, dst)); got[i] != want {
					t.Fatalf("trial %d: DeliveredFrom(%s)[%s] = %v, want %v (census path)", trial, dst, dev, got[i], want)
				}
			}
			// Cached path: TraceFrom populated bySrc; answers must agree.
			for _, dev := range devs {
				snap.TraceFrom(dev, dst)
			}
			again := snap.DeliveredFrom(dst, devs)
			for i, dev := range devs {
				if again[i] != got[i] {
					t.Fatalf("trial %d: DeliveredFrom(%s)[%s] changed after trace caching", trial, dst, dev)
				}
			}
		}
		// Unknown destinations answer all-false, like TraceFrom's nil.
		for _, v := range snap.DeliveredFrom("no-such-host", devs) {
			if v {
				t.Fatal("unknown destination reported delivered")
			}
		}
	}
}

// TestDeliveredFromDeepChain drives the loopy/deep fallback: a chain
// longer than maxTraceDepth forces the walker's Looped truncation, and
// DeliveredFrom must agree with the trace on every chain position.
func TestDeliveredFromDeepChain(t *testing.T) {
	b := netgen.NewBuilder(netgen.OSPF)
	n := maxTraceDepth + 8
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("c%03d", i)
		b.Router(names[i])
	}
	for i := 0; i+1 < n; i++ {
		b.Link(names[i], names[i+1])
	}
	b.Host("h0", names[n-1])
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := snap.DeliveredFrom("h0", names)
	for i, dev := range names {
		if want := wantDelivered(snap.TraceFrom(dev, "h0")); got[i] != want {
			t.Fatalf("DeliveredFrom[%s] = %v, want %v", dev, got[i], want)
		}
	}
}
