package sim

import "confmask/internal/config"

// DiffNetworks derives a FilterDiff between two independent network
// snapshots, without requiring them to be successive filter states of the
// same Net. Both snapshots are Built (which compiles their deny caches and
// captures filter state but runs no simulation), then their filter states
// are compared exactly as InvalidateFilters compares a Net against its own
// prior capture.
//
// The returned diff names the destination prefixes whose routing can
// change when oldCfg's filters are replaced by newCfg's; All() reports a
// structural change (a filter attached or detached) that cannot be scoped
// to specific prefixes. This is the cross-job analogue of DESIGN.md §8's
// within-job dirty-destination machinery: a daemon comparing an edited
// submission against a completed base job can use it to explain or bound
// how much of the base result an edit can disturb.
func DiffNetworks(oldCfg, newCfg *config.Network) (*FilterDiff, error) {
	on, err := Build(oldCfg)
	if err != nil {
		return nil, err
	}
	nn, err := Build(newCfg)
	if err != nil {
		return nil, err
	}
	return diffFilterStates(on.filterState, nn.filterState), nil
}
