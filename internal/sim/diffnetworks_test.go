package sim

import (
	"testing"
)

// TestDiffNetworksMatchesInvalidateFilters pins the cross-snapshot diff to
// the within-Net one: diffing an untouched clone is empty, and diffing a
// clone carrying a filter edit reports exactly the prefixes that
// InvalidateFilters reports when the same edit is applied in place.
func TestDiffNetworksMatchesInvalidateFilters(t *testing.T) {
	cfg := mustParse(t, figure2Network(t))
	clone := cfg.Clone()

	d, err := DiffNetworks(cfg, clone)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("identical snapshots: diff not empty (all=%v prefixes=%v)", d.All(), d.Prefixes())
	}

	view, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pfx := view.HostPrefix["h4"]
	r := view.GatewayOf["h1"]

	// Apply the same deny to the clone (cross-snapshot) and to the
	// original in place (within-Net) and require identical dirty sets.
	ed := clone.Device(r)
	if !attachIGPDeny(ed, ed.Interfaces[0].Name, pfx) {
		t.Fatalf("could not attach filter on %s", r)
	}
	cross, err := DiffNetworks(cfg, clone)
	if err != nil {
		t.Fatal(err)
	}

	od := cfg.Device(r)
	if !attachIGPDeny(od, od.Interfaces[0].Name, pfx) {
		t.Fatalf("could not attach filter on %s", r)
	}
	within := view.InvalidateFilters()

	if cross.All() != within.All() {
		t.Fatalf("All mismatch: cross=%v within=%v", cross.All(), within.All())
	}
	cp, wp := cross.Prefixes(), within.Prefixes()
	if len(cp) != len(wp) {
		t.Fatalf("prefix count mismatch: cross=%v within=%v", cp, wp)
	}
	for i := range cp {
		if cp[i] != wp[i] {
			t.Fatalf("prefix mismatch at %d: cross=%v within=%v", i, cp, wp)
		}
	}
	if !cross.Affects(pfx) {
		t.Fatalf("cross-snapshot diff misses denied prefix %v", pfx)
	}

	// Direction matters for nothing here (filter-state diff is
	// symmetric in what it marks), but both orders must at least agree
	// on the dirty set.
	rev, err := DiffNetworks(clone, mustParse(t, figure2Network(t)))
	if err != nil {
		t.Fatal(err)
	}
	if !rev.Affects(pfx) {
		t.Fatalf("reverse diff misses denied prefix %v", pfx)
	}
}
