package sim

import (
	"crypto/sha256"
	"sort"
)

// This file is the memory-bounded fingerprint layer of the data-plane
// engine. A pair's canonical path-set key — the sorted "<status>:<hops>"
// lines joined with "\n" — used to be materialized as one string per
// ordered host pair and retained for the lifetime of the DataPlane, which
// is O(H²) joined strings whose lengths grow with path count and depth.
// Fingerprints are now a fixed-size 128-bit digest of exactly that byte
// sequence: equality of digests stands in for equality of canonical keys
// everywhere only equality is needed (EqualOver, DiffPairs,
// ExactlyKeptFraction), while diff and repair still work over the exact
// materialized paths.
//
// The digest is the first 128 bits of SHA-256 over the canonical key
// bytes. Two distinct path sets collide with probability ~2⁻¹²⁸ per pair
// (~2⁻⁶⁴ birthday bound across any realistic number of compared pairs) —
// far below the failure rates of the hardware the pipeline runs on; see
// DESIGN.md §12 for the soundness argument.

// Digest is a 128-bit fingerprint of a pair's canonical path-set key. The
// zero value is reserved for the empty path set (no trace data), matching
// the empty canonical key.
type Digest [16]byte

// digestOfKey fingerprints an already-materialized canonical key string.
// It is the fallback for hand-assembled DataPlanes; the engine paths
// stream the same bytes without building the string.
func digestOfKey(key string) Digest {
	if len(key) == 0 {
		return Digest{}
	}
	sum := sha256.Sum256([]byte(key))
	var d Digest
	copy(d[:], sum[:16])
	return d
}

// digestOfBytes fingerprints canonical key content accumulated in a
// reusable scratch buffer.
func digestOfBytes(b []byte) Digest {
	if len(b) == 0 {
		return Digest{}
	}
	sum := sha256.Sum256(b)
	var d Digest
	copy(d[:], sum[:16])
	return d
}

// PairDigests is a fingerprint-only data plane: one Digest per ordered
// host pair, stored in a flat dense array (16 bytes per pair, no per-pair
// path or string storage). It answers the same equality questions as a
// full DataPlane at a peak heap cost that scales with topology size
// rather than with H² path data; callers that need the actual hop
// sequences (diff explanation, repair) materialize them separately.
type PairDigests struct {
	hosts []string
	index map[string]int
	// fps[j*len(hosts)+i] is the digest for Pair{Src: hosts[i], Dst:
	// hosts[j]}; diagonal slots stay zero.
	fps []Digest
}

// Hosts returns the host list the digests cover (shared; read-only).
func (pd *PairDigests) Hosts() []string { return pd.hosts }

// Digest returns the fingerprint for an ordered pair; ok is false when
// either host is outside the covered set.
func (pd *PairDigests) Digest(src, dst string) (Digest, bool) {
	i, oki := pd.index[src]
	j, okj := pd.index[dst]
	if !oki || !okj {
		return Digest{}, false
	}
	return pd.fps[j*len(pd.hosts)+i], true
}

// Equal reports whether two digest planes agree on every ordered pair of
// a's hosts — the digest analogue of EqualOver.
func (pd *PairDigests) Equal(other *PairDigests) bool {
	return len(pd.DiffPairs(other)) == 0
}

// DiffPairs returns the ordered pairs (drawn from pd's hosts) whose
// digests differ, in sorted order — the digest analogue of DiffPairs over
// full DataPlanes.
func (pd *PairDigests) DiffPairs(other *PairDigests) []Pair {
	var out []Pair
	for j, dst := range pd.hosts {
		for i, src := range pd.hosts {
			if i == j {
				continue
			}
			a := pd.fps[j*len(pd.hosts)+i]
			b, ok := other.Digest(src, dst)
			if !ok || a != b {
				out = append(out, Pair{Src: src, Dst: dst})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// PairDigestsFor computes the fingerprint of every ordered pair drawn
// from hosts without materializing any path: per destination it builds a
// transient successor-graph engine, streams each source's canonical key
// bytes out of the structural suffix memos, and releases the engine
// before moving on. Peak heap is bounded by the worker count times one
// destination's memo storage (which scales with topology size) plus the
// flat 16-byte-per-pair result — never by H² materialized paths. The
// digests are identical to the ones a full DataPlaneFor extraction
// computes for the same Snapshot.
func (s *Snapshot) PairDigestsFor(hosts []string) *PairDigests {
	return s.PairDigestsForSeeded(hosts, nil)
}

// digestColLen is the serialized size of one destination's digest
// column: one 16-byte digest per source, in hosts order.
func digestColLen(hosts []string) int { return len(hosts) * 16 }

// ExportColumns serializes the digest plane as per-destination columns:
// the column for destination d is the concatenation of the (src, d)
// digests for every src in the plane's hosts order (the zero diagonal
// slot included, so a column is always 16×len(hosts) bytes). Columns
// are the unit of reuse for checkpointed digest planes — a resumed job
// seeds PairDigestsForSeeded with the columns of destinations its edit
// left clean.
func (pd *PairDigests) ExportColumns() map[string][]byte {
	h := len(pd.hosts)
	out := make(map[string][]byte, h)
	for j, dst := range pd.hosts {
		col := make([]byte, 0, digestColLen(pd.hosts))
		for _, d := range pd.fps[j*h : (j+1)*h] {
			col = append(col, d[:]...)
		}
		out[dst] = col
	}
	return out
}

// PairDigestsForSeeded is PairDigestsFor with a per-destination seed: a
// destination whose seed column is present and well-formed (exactly
// 16×len(hosts) bytes, in hosts order — ExportColumns of a plane over
// the same host list) is decoded from the seed instead of extracted
// from the Snapshot; only the remaining destinations pay a
// successor-graph engine. Seed columns are trusted — the caller
// guarantees they came from an identical-decision Snapshot over the
// same hosts — and malformed or missing columns silently fall back to
// extraction, so a stale or partial seed degrades to correct work, not
// to wrong digests.
func (s *Snapshot) PairDigestsForSeeded(hosts []string, seed map[string][]byte) *PairDigests {
	pd := &PairDigests{
		hosts: hosts,
		index: make(map[string]int, len(hosts)),
		fps:   make([]Digest, len(hosts)*len(hosts)),
	}
	for i, h := range hosts {
		pd.index[h] = i
	}
	colLen := digestColLen(hosts)
	forEachIndex(s.traceWorkers(), len(hosts), func(j int) {
		dst := hosts[j]
		row := pd.fps[j*len(hosts) : (j+1)*len(hosts)]
		if col, ok := seed[dst]; ok && len(col) == colLen {
			for i := range row {
				copy(row[i][:], col[i*16:])
			}
			row[j] = Digest{} // diagonal stays reserved-zero regardless
			return
		}
		e := s.transientEngineFor(dst)
		if e == nil {
			return // unknown destination: zero digests, like Trace's nil
		}
		var scratch []byte
		for i, src := range hosts {
			if src == dst {
				continue
			}
			row[i], scratch = e.digestFor(src, scratch)
		}
	})
	return pd
}

// Digests derives the fingerprint-only view of an already-extracted
// DataPlane, reusing its precomputed per-pair digests.
func (dp *DataPlane) Digests(hosts []string) *PairDigests {
	pd := &PairDigests{
		hosts: hosts,
		index: make(map[string]int, len(hosts)),
		fps:   make([]Digest, len(hosts)*len(hosts)),
	}
	for i, h := range hosts {
		pd.index[h] = i
	}
	for j, dst := range hosts {
		for i, src := range hosts {
			if i == j {
				continue
			}
			pd.fps[j*len(hosts)+i] = dp.pairDigest(Pair{Src: src, Dst: dst})
		}
	}
	return pd
}
