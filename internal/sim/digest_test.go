package sim

import (
	"math/rand"
	"testing"

	"confmask/internal/netgen"
)

// TestPairDigestsMatchDataPlane pins the digest-only extraction path
// against the full extraction path: on every evaluation network,
// PairDigestsFor (transient engines, no path materialization) must
// produce exactly the digest the full DataPlane stores for every ordered
// pair — which the naive-walker tests already pin to pathSetKey.
func TestPairDigestsMatchDataPlane(t *testing.T) {
	for _, spec := range netgen.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4} {
				snap, err := SimulateOpts(cfg, Options{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				hosts := snap.Hosts()
				pd := snap.PairDigestsFor(hosts)
				dp := snap.DataPlaneFor(hosts)
				for _, src := range hosts {
					for _, dst := range hosts {
						if src == dst {
							continue
						}
						got, ok := pd.Digest(src, dst)
						if !ok {
							t.Fatalf("par %d: pair %s->%s missing from PairDigests", par, src, dst)
						}
						if want := dp.pairDigest(Pair{Src: src, Dst: dst}); got != want {
							t.Fatalf("par %d: pair %s->%s digest %x != full-extraction %x", par, src, dst, got, want)
						}
					}
				}
				if !pd.Equal(dp.Digests(hosts)) {
					t.Fatalf("par %d: PairDigests not Equal to DataPlane-derived digests", par)
				}
				if diff := pd.DiffPairs(dp.Digests(hosts)); len(diff) != 0 {
					t.Fatalf("par %d: unexpected digest diff %v", par, diff)
				}
			}
		})
	}
}

// TestPairDigestsLoopFallback exercises the digest path through the
// loop/deep fallback: corrupted FIBs with forwarding loops and black
// holes must digest identically via PairDigestsFor and full extraction.
func TestPairDigestsCorruptedFIBs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		cfg := randomSimNet(t, netgen.OSPF, rng)
		snap, err := SimulateOpts(cfg, Options{Parallelism: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		corruptFIBs(snap, rng)
		hosts := snap.Hosts()
		pd := snap.PairDigestsFor(hosts)
		dp := snap.DataPlaneFor(hosts)
		for _, src := range hosts {
			for _, dst := range hosts {
				if src == dst {
					continue
				}
				got, _ := pd.Digest(src, dst)
				if want := dp.pairDigest(Pair{Src: src, Dst: dst}); got != want {
					t.Fatalf("trial %d: pair %s->%s digest mismatch", trial, src, dst)
				}
			}
		}
	}
}

// TestPairDigestsDiffPairsMatchesDataPlane checks the digest diff against
// the full-plane diff across two genuinely different snapshots.
func TestPairDigestsDiffPairsMatchesDataPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSimNet(t, netgen.OSPF, rng)
	snapA, err := SimulateOpts(a, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := SimulateOpts(a, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	corruptFIBs(snapB, rng)
	hosts := snapA.Hosts()
	wantDiff := DiffPairs(snapA.DataPlaneFor(hosts), snapB.DataPlaneFor(hosts), hosts)
	gotDiff := snapA.PairDigestsFor(hosts).DiffPairs(snapB.PairDigestsFor(hosts))
	if len(gotDiff) != len(wantDiff) {
		t.Fatalf("digest diff %d pairs, full diff %d pairs", len(gotDiff), len(wantDiff))
	}
	for i := range gotDiff {
		if gotDiff[i] != wantDiff[i] {
			t.Fatalf("diff[%d] = %v, want %v", i, gotDiff[i], wantDiff[i])
		}
	}
	if eq := snapA.PairDigestsFor(hosts).Equal(snapB.PairDigestsFor(hosts)); eq != (len(wantDiff) == 0) {
		t.Fatalf("Equal = %v inconsistent with %d differing pairs", eq, len(wantDiff))
	}
}

// corruptFIBs injects loops and black holes the way the engine tests do:
// random next-hop rewrites between routers plus dropped routes.
func corruptFIBs(snap *Snapshot, rng *rand.Rand) {
	devs := snap.Devices()
	var routers []string
	for _, d := range devs {
		if snap.FIBs[d] != nil && len(snap.FIBs[d]) > 0 {
			routers = append(routers, d)
		}
	}
	for _, d := range routers {
		fib := snap.FIBs[d]
		for pfx, rt := range fib {
			switch rng.Intn(6) {
			case 0: // rewrite a next hop to a random router → possible loop
				if len(rt.NextHops) > 0 {
					nh := rt.NextHops[rng.Intn(len(rt.NextHops))]
					nh.Device = routers[rng.Intn(len(routers))]
					rt.NextHops[rng.Intn(len(rt.NextHops))] = nh
				}
			case 1: // drop the route → black hole
				delete(fib, pfx)
			}
		}
	}
}

// BenchmarkExtractDigestsFatTree08 measures digest-only extraction on
// FatTree08 (64 hosts, 4032 ordered pairs) — the memory-bounded path.
func BenchmarkExtractDigestsFatTree08(b *testing.B) {
	cfg, err := netgen.FatTree08()
	if err != nil {
		b.Fatal(err)
	}
	snap, err := Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	hosts := snap.Hosts()
	b.ReportAllocs()
	b.ResetTimer()
	// PairDigestsFor uses transient engines, so every iteration re-does
	// the full per-destination analysis — unlike DataPlaneFor, which would
	// serve iterations 2..N from the Snapshot's engine cache.
	for i := 0; i < b.N; i++ {
		_ = snap.PairDigestsFor(hosts)
	}
}

// BenchmarkSortPathsByKeyFatTree08 measures the canonical sort +
// fingerprint on real FatTree08 path sets; the digest path hashes through
// one exactly-sized buffer instead of retaining a joined key string.
func BenchmarkSortPathsByKeyFatTree08(b *testing.B) {
	cfg, err := netgen.FatTree08()
	if err != nil {
		b.Fatal(err)
	}
	snap, err := Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	hosts := snap.Hosts()
	dp := snap.DataPlaneFor(hosts)
	var sets [][]Path
	for _, ps := range dp.Pairs {
		if len(ps) > 0 {
			sets = append(sets, ps)
		}
		if len(sets) == 256 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sortPathsByKey(sets[i%len(sets)])
	}
}

// TestPairDigestsSeeded pins the seeded extraction path: well-formed seed
// columns are copied verbatim (proving reuse, via a deliberately corrupted
// column), malformed or extra columns fall back to extraction, and an
// ExportColumns round trip reproduces the unseeded plane exactly.
func TestPairDigestsSeeded(t *testing.T) {
	cfg, err := netgen.Enterprise()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts := snap.Hosts()
	want := snap.PairDigestsFor(hosts)
	cols := want.ExportColumns()
	if len(cols) != len(hosts) {
		t.Fatalf("ExportColumns: %d columns, want %d", len(cols), len(hosts))
	}

	// Full seed round trip: every pair identical, no extraction needed.
	seeded := snap.PairDigestsForSeeded(hosts, cols)
	if !seeded.Equal(want) || !want.Equal(seeded) {
		t.Fatal("fully seeded plane differs from extracted plane")
	}

	// Partial seed: drop one column; that destination is re-extracted.
	partial := make(map[string][]byte, len(cols))
	for d, c := range cols {
		partial[d] = c
	}
	delete(partial, hosts[0])
	if pd := snap.PairDigestsForSeeded(hosts, partial); !pd.Equal(want) {
		t.Fatal("partially seeded plane differs from extracted plane")
	}

	// Corrupted column: the seeded plane must reflect the corruption —
	// seed columns are trusted, never recomputed — which is the
	// observable proof that seeding skips extraction.
	corrupt := make(map[string][]byte, len(cols))
	for d, c := range cols {
		corrupt[d] = append([]byte(nil), c...)
	}
	victim := hosts[len(hosts)-1]
	corrupt[victim][0] ^= 0xff
	pd := snap.PairDigestsForSeeded(hosts, corrupt)
	var src string
	for _, h := range hosts {
		if h != victim {
			src = h
			break
		}
	}
	got, _ := pd.Digest(src, victim)
	if w, _ := want.Digest(src, victim); got == w {
		t.Fatal("corrupted seed column was recomputed instead of reused")
	}

	// Malformed column lengths fall back to extraction.
	bad := map[string][]byte{victim: corrupt[victim][:8]}
	if pd := snap.PairDigestsForSeeded(hosts, bad); !pd.Equal(want) {
		t.Fatal("short seed column was not ignored")
	}
	bad[victim] = append(corrupt[victim], 0)
	if pd := snap.PairDigestsForSeeded(hosts, bad); !pd.Equal(want) {
		t.Fatal("overlong seed column was not ignored")
	}
}
