package sim

import (
	"net/netip"

	"confmask/internal/config"
)

// eigrpEnabled reports whether an interface participates in the device's
// EIGRP process.
func eigrpEnabled(d *config.Device, i *config.Interface) bool {
	if d.EIGRP == nil || !i.Addr.IsValid() {
		return false
	}
	for _, nw := range d.EIGRP.Networks {
		if nw.Contains(i.Addr.Addr()) {
			return true
		}
	}
	return false
}

// eigrpLinkEnabled reports whether a router-router link exchanges EIGRP
// advertisements: both endpoint interfaces must be enabled and the
// processes must share an AS number (EIGRP only peers within an AS).
func (n *Net) eigrpLinkEnabled(l *Link) bool {
	da := n.Cfg.Device(l.A.Device)
	db := n.Cfg.Device(l.B.Device)
	if da.Kind != config.RouterKind || db.Kind != config.RouterKind {
		return false
	}
	if da.EIGRP == nil || db.EIGRP == nil || da.EIGRP.ASN != db.EIGRP.ASN {
		return false
	}
	ia := da.Interface(l.A.Iface)
	ib := db.Interface(l.B.Iface)
	return ia != nil && ib != nil && eigrpEnabled(da, ia) && eigrpEnabled(db, ib)
}

// runEIGRP computes EIGRP routes with synchronous distance-vector
// iteration. The metric is the simplified additive form of EIGRP's
// composite: the sum of interface delays along the path (the dominant
// term on uniform-bandwidth links), accumulated receiver-side on the
// incoming interface. Inbound distribute-lists drop matching
// advertisements — the distance-vector SFE condition 2 mechanism, exactly
// as for RIP.
func (n *Net) runEIGRP(workers int) map[string]map[netip.Prefix]*Route {
	out := make(map[string]map[netip.Prefix]*Route)

	core := n.coreFor(workers)
	speakers := core.eigrpSpeakers
	if len(speakers) == 0 {
		return out
	}

	vec := make(map[string]map[netip.Prefix]ripEntry, len(speakers))
	connectedOf := make(map[string]map[netip.Prefix]bool, len(speakers))
	for _, r := range speakers {
		d := n.Cfg.Device(r)
		v := make(map[netip.Prefix]ripEntry)
		conn := make(map[netip.Prefix]bool)
		for _, i := range d.Interfaces {
			if i.Addr.IsValid() {
				conn[i.Addr.Masked()] = true
			}
			if eigrpEnabled(d, i) {
				// Connected origination at the interface's own delay.
				v[i.Addr.Masked()] = ripEntry{metric: i.DelayValue()}
			}
		}
		vec[r] = v
		connectedOf[r] = conn
	}

	maxRounds := len(speakers) + 4
	for round := 0; round < maxRounds; round++ {
		nvs := make([]map[netip.Prefix]ripEntry, len(speakers))
		diffs := make([]bool, len(speakers))
		forEachIndex(workers, len(speakers), func(idx int) {
			r := speakers[idx]
			d := n.Cfg.Device(r)
			nv := make(map[netip.Prefix]ripEntry)
			for p, e := range vec[r] {
				if len(e.nextHops) == 0 {
					nv[p] = e // connected originations are authoritative
				}
			}
			for _, l := range core.eigrpLinks[r] {
				local, _ := l.Local(r)
				other, _ := l.Other(r)
				li := d.Interface(local.Iface)
				for p, e := range vec[other.Device] {
					if connectedOf[r][p] {
						continue
					}
					m := e.metric + li.DelayValue()
					if n.filterDeniesEIGRP(d, local.Iface, p) {
						continue
					}
					nh := NextHop{Device: other.Device, Iface: local.Iface}
					cur, ok := nv[p]
					switch {
					case !ok || m < cur.metric:
						nv[p] = ripEntry{metric: m, nextHops: []NextHop{nh}}
					case m == cur.metric && len(cur.nextHops) > 0:
						cur.nextHops = append(cur.nextHops, nh)
						nv[p] = cur
					}
				}
			}
			nvs[idx] = nv
			diffs[idx] = !ripVecEqual(vec[r], nv)
		})
		next := make(map[string]map[netip.Prefix]ripEntry, len(speakers))
		changed := false
		for i, r := range speakers {
			next[r] = nvs[i]
			changed = changed || diffs[i]
		}
		vec = next
		if !changed {
			break
		}
	}

	for _, r := range speakers {
		table := make(map[netip.Prefix]*Route)
		for p, e := range vec[r] {
			if len(e.nextHops) == 0 {
				continue
			}
			table[p] = &Route{Prefix: p, Source: SrcEIGRP, Metric: e.metric, NextHops: sortNextHops(e.nextHops)}
		}
		out[r] = table
	}
	return out
}

func (n *Net) filterDeniesEIGRP(d *config.Device, iface string, p netip.Prefix) bool {
	if d.EIGRP == nil {
		return false
	}
	name, ok := d.EIGRP.InFilters[iface]
	if !ok {
		return false
	}
	return n.denies(d, name, p)
}
