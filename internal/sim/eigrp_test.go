package sim

import (
	"testing"

	"confmask/internal/netgen"
)

func eigrpTriangle(t *testing.T) *Snapshot {
	t.Helper()
	b := netgen.NewBuilder(netgen.EIGRP)
	b.Router("r1").Router("r2").Router("r3")
	b.Link("r1", "r2").Link("r2", "r3").Link("r1", "r3")
	b.Host("h1", "r1").Host("h3", "r3")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return mustSim(t, cfg)
}

func TestEIGRPDirectPath(t *testing.T) {
	s := eigrpTriangle(t)
	p := singleDelivered(t, s, "h1", "h3")
	if !pathEquals(p, "h1", "r1", "r3", "h3") {
		t.Fatalf("EIGRP path = %v", p.Hops)
	}
	// The installed route must be an EIGRP route.
	rt := s.FIB("r1")[s.Net.HostPrefix["h3"]]
	if rt == nil || rt.Source != SrcEIGRP {
		t.Fatalf("route = %v, want eigrp", rt)
	}
}

func TestEIGRPDelayMetric(t *testing.T) {
	b := netgen.NewBuilder(netgen.EIGRP)
	b.Router("r1").Router("r2").Router("r3")
	b.Link("r1", "r2").Link("r2", "r3").Link("r1", "r3")
	b.Host("h1", "r1").Host("h3", "r3")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Penalize the direct r1→r3 interface: the two-hop path through r2
	// becomes cheaper (10+10+last-hop < 100+last-hop).
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := n.LinkBetween("r1", "r3")
	local, _ := l.Local("r1")
	cfg.Device("r1").Interface(local.Iface).Delay = 100
	s := mustSim(t, cfg)
	p := singleDelivered(t, s, "h1", "h3")
	if !pathEquals(p, "h1", "r1", "r2", "r3", "h3") {
		t.Fatalf("delay-steered path = %v", p.Hops)
	}
	// The reverse direction still uses the direct link: delay is applied
	// on the receiving interface only.
	back := singleDelivered(t, s, "h3", "h1")
	if !pathEquals(back, "h3", "r3", "r1", "h1") {
		t.Fatalf("reverse path = %v", back.Hops)
	}
}

func TestEIGRPFilterDivertsRoute(t *testing.T) {
	b := netgen.NewBuilder(netgen.EIGRP)
	b.Router("r1").Router("r2").Router("r3")
	b.Link("r1", "r2").Link("r2", "r3").Link("r1", "r3")
	b.Host("h1", "r1").Host("h3", "r3")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h3 := n.HostPrefix["h3"]
	l := n.LinkBetween("r1", "r3")
	local, _ := l.Local("r1")
	r1 := cfg.Device("r1")
	r1.EnsurePrefixList("F").Deny(h3)
	r1.EIGRP.InFilters[local.Iface] = "F"
	s := mustSim(t, cfg)
	p := singleDelivered(t, s, "h1", "h3")
	if !pathEquals(p, "h1", "r1", "r2", "r3", "h3") {
		t.Fatalf("filtered EIGRP path = %v", p.Hops)
	}
}

func TestEIGRPECMP(t *testing.T) {
	b := netgen.NewBuilder(netgen.EIGRP)
	b.Router("r1").Router("r2").Router("r3").Router("r4")
	b.Link("r1", "r2").Link("r2", "r4").Link("r1", "r3").Link("r3", "r4")
	b.Host("hs", "r1").Host("hd", "r4")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t, cfg)
	ps := s.Trace("hs", "hd")
	if len(ps) != 2 {
		t.Fatalf("expected 2 equal-metric EIGRP paths, got %v", ps)
	}
}

func TestEIGRPRoundTripThroughText(t *testing.T) {
	b := netgen.NewBuilder(netgen.EIGRP)
	b.Router("r1").Router("r2")
	b.Link("r1", "r2")
	b.Host("h1", "r1").Host("h2", "r2")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Device("r1").Interfaces[0].Delay = 25
	s1 := mustSim(t, cfg)
	reparsed := mustParse(t, cfg)
	s2 := mustSim(t, reparsed)
	hosts := cfg.Hosts()
	if !EqualOver(s1.ExtractDataPlane(), s2.ExtractDataPlane(), hosts) {
		t.Fatal("EIGRP data plane changed across render/parse round trip")
	}
	if reparsed.Device("r1").Interfaces[0].Delay != 25 {
		t.Fatal("delay lost in round trip")
	}
	if reparsed.Device("r1").EIGRP == nil || reparsed.Device("r1").EIGRP.ASN != 100 {
		t.Fatal("EIGRP process lost in round trip")
	}
}
