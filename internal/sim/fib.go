package sim

import (
	"net/netip"

	"confmask/internal/config"
)

// Simulate builds the network view from cfg and computes every device's
// FIB: connected and static routes plus OSPF, RIP, and BGP, merged by
// administrative distance. It is the ConfMask pipeline's replacement for a
// Batfish dataplane computation.
func Simulate(cfg *config.Network) (*Snapshot, error) {
	return SimulateOpts(cfg, Options{})
}

// SimulateOpts is Simulate with explicit engine options.
func SimulateOpts(cfg *config.Network, opts Options) (*Snapshot, error) {
	n, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return SimulateNetOpts(n, opts), nil
}

// SimulateNet computes FIBs over an already-built network view with
// default options. Between calls the view's configurations must either
// stay untouched or be mutated in filters only, followed by
// InvalidateFilters; any other change requires a fresh Build.
func SimulateNet(n *Net) *Snapshot {
	return SimulateNetOpts(n, Options{})
}

// SimulateNetOpts is SimulateNet with explicit engine options. The
// result is identical at any parallelism level: every fan-out writes
// index-addressed slots that are merged in deterministic order.
func SimulateNetOpts(n *Net, opts Options) *Snapshot {
	workers := opts.workers()
	igp := n.runOSPF(workers)
	rip := n.runRIP(workers)
	eigrp := n.runEIGRP(workers)
	bgp := n.runBGP(igp, workers)

	snap := &Snapshot{Net: n, FIBs: make(map[string]FIB, len(n.Cfg.Devices)), OSPFDist: igp.dist, workers: workers}
	names := n.Cfg.Names()
	fibs := make([]FIB, len(names))
	forEachIndex(workers, len(names), func(i int) {
		fibs[i] = n.deviceFIB(names[i], igp, rip, eigrp, bgp)
	})
	for i, name := range names {
		snap.FIBs[name] = fibs[i]
	}
	return snap
}

// deviceFIB assembles one device's FIB from the converged protocol
// states. It only reads n and the protocol results, so devices fan out
// independently.
func (n *Net) deviceFIB(name string, igp *ospfState, rip, eigrp map[string]map[netip.Prefix]*Route, bgp *bgpState) FIB {
	d := n.Cfg.Device(name)
	fib := make(FIB, len(igp.routes[name])+len(rip[name])+len(eigrp[name])+len(d.Interfaces))

	install := func(r *Route) {
		if len(r.NextHops) == 0 {
			return
		}
		cur, ok := fib[r.Prefix]
		if !ok || r.Source < cur.Source {
			fib[r.Prefix] = r
		}
	}

	// Connected routes: one per addressed interface subnet, with the
	// far ends of matching links as next hops.
	for _, i := range d.Interfaces {
		if !i.Addr.IsValid() {
			continue
		}
		p := i.Addr.Masked()
		var nhs []NextHop
		for _, l := range n.linksOf[name] {
			if l.Prefix != p {
				continue
			}
			local, _ := l.Local(name)
			if local.Iface != i.Name {
				continue
			}
			other, _ := l.Other(name)
			nhs = append(nhs, NextHop{Device: other.Device, Iface: i.Name})
		}
		if len(nhs) > 0 {
			install(&Route{Prefix: p, Source: SrcConnected, NextHops: sortNextHops(nhs)})
		}
	}

	// Static routes: resolve the next-hop address to a directly
	// connected neighbor. Null0 routes install as discard entries —
	// the anchor operators use to originate aggregates and external
	// equivalence-class prefixes into BGP.
	for _, s := range d.Statics {
		if s.Discard {
			install(&Route{Prefix: s.Prefix, Source: SrcStatic, NextHops: []NextHop{{Device: DiscardDevice, Iface: "Null0"}}})
			continue
		}
		if nh, ok := n.resolveDirect(name, s.NextHop); ok {
			install(&Route{Prefix: s.Prefix, Source: SrcStatic, NextHops: []NextHop{nh}})
		}
	}

	if d.Kind == config.RouterKind {
		for _, r := range bgp.bgpFIBRoutes(n, igp, name) {
			install(r)
		}
		for _, r := range eigrp[name] {
			install(r)
		}
		for _, r := range igp.routes[name] {
			install(r)
		}
		for _, r := range rip[name] {
			install(r)
		}
	}
	return fib
}

// resolveDirect finds the link of dev whose far-end address equals addr.
func (n *Net) resolveDirect(dev string, addr netip.Addr) (NextHop, bool) {
	for _, l := range n.linksOf[dev] {
		other, _ := l.Other(dev)
		if other.Addr == addr {
			local, _ := l.Local(dev)
			return NextHop{Device: other.Device, Iface: local.Iface}, true
		}
	}
	return NextHop{}, false
}
