package sim

import (
	"net/netip"

	"confmask/internal/config"
)

// Simulate builds the network view from cfg and computes every device's
// FIB: connected and static routes plus OSPF, RIP, and BGP, merged by
// administrative distance. It is the ConfMask pipeline's replacement for a
// Batfish dataplane computation.
func Simulate(cfg *config.Network) (*Snapshot, error) {
	n, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return SimulateNet(n), nil
}

// SimulateNet computes FIBs over an already-built network view. The view
// must not be mutated between calls; anonymization stages rebuild it after
// changing configurations.
func SimulateNet(n *Net) *Snapshot {
	igp := n.runOSPF()
	rip := n.runRIP()
	eigrp := n.runEIGRP()
	bgp := n.runBGP(igp)

	snap := &Snapshot{Net: n, FIBs: make(map[string]FIB, len(n.Cfg.Devices)), OSPFDist: igp.dist}
	for _, name := range n.Cfg.Names() {
		d := n.Cfg.Device(name)
		fib := make(FIB)

		install := func(r *Route) {
			if len(r.NextHops) == 0 {
				return
			}
			cur, ok := fib[r.Prefix]
			if !ok || r.Source < cur.Source {
				fib[r.Prefix] = r
			}
		}

		// Connected routes: one per addressed interface subnet, with the
		// far ends of matching links as next hops.
		for _, i := range d.Interfaces {
			if !i.Addr.IsValid() {
				continue
			}
			p := i.Addr.Masked()
			var nhs []NextHop
			for _, l := range n.linksOf[name] {
				if l.Prefix != p {
					continue
				}
				local, _ := l.Local(name)
				if local.Iface != i.Name {
					continue
				}
				other, _ := l.Other(name)
				nhs = append(nhs, NextHop{Device: other.Device, Iface: i.Name})
			}
			if len(nhs) > 0 {
				install(&Route{Prefix: p, Source: SrcConnected, NextHops: sortNextHops(nhs)})
			}
		}

		// Static routes: resolve the next-hop address to a directly
		// connected neighbor. Null0 routes install as discard entries —
		// the anchor operators use to originate aggregates and external
		// equivalence-class prefixes into BGP.
		for _, s := range d.Statics {
			if s.Discard {
				install(&Route{Prefix: s.Prefix, Source: SrcStatic, NextHops: []NextHop{{Device: DiscardDevice, Iface: "Null0"}}})
				continue
			}
			if nh, ok := n.resolveDirect(name, s.NextHop); ok {
				install(&Route{Prefix: s.Prefix, Source: SrcStatic, NextHops: []NextHop{nh}})
			}
		}

		if d.Kind == config.RouterKind {
			for _, r := range bgp.bgpFIBRoutes(n, igp, name) {
				install(r)
			}
			for _, r := range eigrp[name] {
				install(r)
			}
			for _, r := range igp.routes[name] {
				install(r)
			}
			for _, r := range rip[name] {
				install(r)
			}
		}
		snap.FIBs[name] = fib
	}
	return snap
}

// resolveDirect finds the link of dev whose far-end address equals addr.
func (n *Net) resolveDirect(dev string, addr netip.Addr) (NextHop, bool) {
	for _, l := range n.linksOf[dev] {
		other, _ := l.Other(dev)
		if other.Addr == addr {
			local, _ := l.Local(dev)
			return NextHop{Device: other.Device, Iface: local.Iface}, true
		}
	}
	return NextHop{}, false
}
