package sim

import (
	"net/netip"

	"confmask/internal/config"
)

// FilterDiff summarizes what changed between two filter views of a Net:
// the set of destination prefixes whose deny decision may have flipped
// anywhere in the network. InvalidateFilters returns one so callers can
// re-trace only the destinations a filter mutation can affect (see
// DataPlaneForDirty) and keep prior results for the rest.
//
// Soundness rests on the simulator's per-prefix filter independence:
// distribute-list filters act when a protocol installs a candidate route
// for a specific prefix (runOSPF/runRIP/runEIGRP consult filterDenies*
// per candidate prefix; bgpFIBRoutes filters each advertised prefix, and
// its iBGP next-hop resolution uses the filter-independent SPF state).
// A deny-decision change for prefix set P therefore only changes FIB
// entries whose prefix is in P, so a trace toward destination d can only
// change when some prefix in P overlaps d's LAN prefix. The property
// tests in dataplane_test.go exercise this end to end against full
// re-extraction.
//
// The diff is conservative: ranged (`le`) rule changes and attachment
// changes of ranged lists mark everything dirty, and a nil *FilterDiff
// also means "assume everything changed".
type FilterDiff struct {
	all      bool
	prefixes map[netip.Prefix]bool
}

// All reports whether every destination must be considered dirty.
func (d *FilterDiff) All() bool { return d == nil || d.all }

// Empty reports that no deny decision changed: every prior trace is still
// valid.
func (d *FilterDiff) Empty() bool { return d != nil && !d.all && len(d.prefixes) == 0 }

// Affects reports whether a trace toward a destination with the given LAN
// prefix may have changed. Invalid prefixes (unknown destinations) never
// overlap anything, but an all-dirty diff still reports them affected.
func (d *FilterDiff) Affects(pfx netip.Prefix) bool {
	if d.All() {
		return true
	}
	for q := range d.prefixes {
		if q.Overlaps(pfx) {
			return true
		}
	}
	return false
}

// Prefixes returns the changed prefixes in sorted order (nil when All).
func (d *FilterDiff) Prefixes() []netip.Prefix {
	if d.All() {
		return nil
	}
	return sortedPrefixes(d.prefixes)
}

func (d *FilterDiff) markAll() { d.all = true }

func (d *FilterDiff) mark(p netip.Prefix) {
	if d.all {
		return
	}
	if d.prefixes == nil {
		d.prefixes = make(map[netip.Prefix]bool)
	}
	d.prefixes[p] = true
}

// filterState is the filter view captured at Build/InvalidateFilters time:
// the compiled deny tables plus where each list is attached. Both matter —
// editing a list's rules changes decisions at existing attachment points,
// while attaching/detaching a list changes decisions without touching any
// rule.
type filterState struct {
	lists  map[string]*listEval // denyCache, shared not copied
	attach map[string]string    // attachment point → device-scoped list key
}

// captureFilterState snapshots the current attachment map alongside the
// freshly built deny cache.
func (n *Net) captureFilterState() *filterState {
	st := &filterState{lists: n.denyCache, attach: make(map[string]string)}
	add := func(dev, proto, point, list string) {
		if list == "" {
			return
		}
		// The value is the device-scoped list key so attachment moves
		// between same-named lists on different devices still diff.
		st.attach[dev+"\x00"+proto+"\x00"+point] = dev + "\x00" + list
	}
	for _, name := range n.Cfg.Names() {
		d := n.Cfg.Device(name)
		if d.OSPF != nil {
			for iface, list := range d.OSPF.InFilters {
				add(name, "ospf", iface, list)
			}
		}
		if d.RIP != nil {
			for iface, list := range d.RIP.InFilters {
				add(name, "rip", iface, list)
			}
		}
		if d.EIGRP != nil {
			for iface, list := range d.EIGRP.InFilters {
				add(name, "eigrp", iface, list)
			}
		}
		if d.BGP != nil {
			for _, nb := range d.BGP.Neighbors {
				add(name, "bgp", nb.Addr.String(), nb.DistributeListIn)
			}
		}
	}
	return st
}

// diffFilterStates computes which prefixes may have flipped a deny
// decision between two filter states.
func diffFilterStates(old, cur *filterState) *FilterDiff {
	d := &FilterDiff{}

	// Rule-content changes of lists present in either state.
	for key, ce := range cur.lists {
		diffListEvals(d, old.lists[key], ce)
		if d.all {
			return d
		}
	}
	for key, oe := range old.lists {
		if _, ok := cur.lists[key]; !ok {
			diffListEvals(d, oe, nil)
			if d.all {
				return d
			}
		}
	}

	// Attachment changes: a list newly applied (or removed, or swapped)
	// at a point changes the deny decision for every prefix either
	// involved list denies, without any rule edit.
	markListDenies := func(st *filterState, listKey string) {
		if listKey == "" {
			return
		}
		ev, ok := st.lists[listKey]
		if !ok {
			return // unknown list filters nothing
		}
		markEvalDenies(d, ev)
	}
	for point, cl := range cur.attach {
		if ol := old.attach[point]; ol != cl {
			markListDenies(old, ol)
			markListDenies(cur, cl)
			if d.all {
				return d
			}
		}
	}
	for point, ol := range old.attach {
		if _, ok := cur.attach[point]; !ok {
			markListDenies(old, ol)
			if d.all {
				return d
			}
		}
	}
	return d
}

// markEvalDenies marks every prefix a compiled list denies (conservatively
// everything for ranged lists).
func markEvalDenies(d *FilterDiff, ev *listEval) {
	if ev.ranged {
		d.markAll()
		return
	}
	for p, deny := range ev.exact {
		if deny {
			d.mark(p)
		}
	}
}

// diffListEvals marks the prefixes whose deny decision differs between two
// compiled versions of the same list (nil = list absent, denying nothing).
func diffListEvals(d *FilterDiff, a, b *listEval) {
	if a == nil && b == nil {
		return
	}
	if a == nil {
		markEvalDenies(d, b)
		return
	}
	if b == nil {
		markEvalDenies(d, a)
		return
	}
	if a.ranged || b.ranged {
		if !rulesEqual(a.rules, b.rules) || a.ranged != b.ranged {
			d.markAll()
		}
		return
	}
	for p, deny := range a.exact {
		if b.exact[p] != deny {
			d.mark(p)
		}
	}
	for p, deny := range b.exact {
		if a.exact[p] != deny {
			d.mark(p)
		}
	}
}

func rulesEqual(a, b []config.PrefixRule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
