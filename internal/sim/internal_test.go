package sim

import (
	"net/netip"
	"testing"
	"testing/quick"

	"confmask/internal/config"
)

// testMatrix builds a DistMatrix over the named nodes and directed edges.
func testMatrix(nodes []string, edges [][3]any) *DistMatrix {
	t := internNames(nodes)
	es := make([]csrEdge, 0, len(edges))
	for _, e := range edges {
		f, _ := t.id(e[0].(string))
		to, _ := t.id(e[1].(string))
		es = append(es, csrEdge{from: f, to: to, cost: int32(e[2].(int))})
	}
	return newDistMatrix(buildCSR(t, es).reverse())
}

func TestDistMatrixDijkstra(t *testing.T) {
	m := testMatrix([]string{"a", "b", "c", "d"}, [][3]any{
		{"a", "b", 1}, {"b", "c", 2}, {"a", "c", 10}, {"c", "d", 1},
	})
	want := map[string]int{"a": 0, "b": 1, "c": 3, "d": 4}
	for n, d := range want {
		got, ok := m.Dist("a", n)
		if !ok || got != d {
			t.Fatalf("dist a→%s = %d,%v, want %d", n, got, ok, d)
		}
	}
	if _, ok := m.Dist("a", "missing"); ok {
		t.Fatal("unknown node reachable")
	}
	if _, ok := m.Dist("d", "a"); ok {
		t.Fatal("unreachable pair reported reachable")
	}
}

func TestDistMatrixAsymmetric(t *testing.T) {
	// Different costs per direction, as OSPF allows.
	m := testMatrix([]string{"a", "b"}, [][3]any{{"a", "b", 1}, {"b", "a", 7}})
	if d, ok := m.Dist("a", "b"); !ok || d != 1 {
		t.Fatalf("a→b = %d,%v", d, ok)
	}
	if d, ok := m.Dist("b", "a"); !ok || d != 7 {
		t.Fatalf("b→a = %d,%v", d, ok)
	}
}

func TestDistMatrixIsolatedSpeaker(t *testing.T) {
	// A speaker with no enabled links is interned but reaches only itself,
	// like the old allPairs "extra sources" behavior.
	m := testMatrix([]string{"a", "b", "isolated"}, [][3]any{{"a", "b", 1}})
	if d, ok := m.Dist("isolated", "isolated"); !ok || d != 0 {
		t.Fatalf("self distance = %d,%v", d, ok)
	}
	if _, ok := m.Dist("isolated", "a"); ok {
		t.Fatal("isolated node reaches a")
	}
	if _, ok := m.Dist("a", "isolated"); ok {
		t.Fatal("a reaches isolated node")
	}
	if _, ok := (*DistMatrix)(nil).Dist("a", "b"); ok {
		t.Fatal("nil matrix must report unreachable")
	}
}

func TestSortNextHopsDedup(t *testing.T) {
	in := []NextHop{
		{Device: "b", Iface: "i1"},
		{Device: "a", Iface: "i2"},
		{Device: "b", Iface: "i1"},
		{Device: "a", Iface: "i1"},
	}
	got := sortNextHops(in)
	if len(got) != 3 {
		t.Fatalf("dedup failed: %v", got)
	}
	if got[0] != (NextHop{Device: "a", Iface: "i1"}) || got[2] != (NextHop{Device: "b", Iface: "i1"}) {
		t.Fatalf("order wrong: %v", got)
	}
}

// Property: sortNextHops is idempotent and never grows the slice.
func TestSortNextHopsProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		in := make([]NextHop, 0, len(raw))
		for _, v := range raw {
			in = append(in, NextHop{Device: string(rune('a' + v%5)), Iface: string(rune('x' + v%3))})
		}
		once := sortNextHops(append([]NextHop(nil), in...))
		twice := sortNextHops(append([]NextHop(nil), once...))
		if len(once) > len(in) || len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBGPBetterDecisionOrder(t *testing.T) {
	n := &Net{Cfg: config.NewNetwork()}
	igp := &ospfState{dist: testMatrix([]string{"r", "near", "far"}, [][3]any{
		{"r", "near", 1}, {"r", "far", 9},
	})}
	short := bgpRoute{asPath: []int{1}}
	long := bgpRoute{asPath: []int{1, 2}}
	if !bgpBetter(n, igp, "r", short, long) || bgpBetter(n, igp, "r", long, short) {
		t.Fatal("AS-path length must dominate")
	}
	ebgp := bgpRoute{asPath: []int{1}, fromIBGP: false, peer: "x"}
	ibgp := bgpRoute{asPath: []int{1}, fromIBGP: true, peer: "near"}
	if !bgpBetter(n, igp, "r", ebgp, ibgp) {
		t.Fatal("eBGP must beat iBGP at equal path length")
	}
	nearR := bgpRoute{asPath: []int{1}, fromIBGP: true, peer: "near"}
	farR := bgpRoute{asPath: []int{1}, fromIBGP: true, peer: "far"}
	if !bgpBetter(n, igp, "r", nearR, farR) {
		t.Fatal("lower IGP metric to egress must win")
	}
	a := bgpRoute{asPath: []int{1}, peer: "p1", peerID: netip.MustParseAddr("1.1.1.1")}
	b := bgpRoute{asPath: []int{1}, peer: "p2", peerID: netip.MustParseAddr("2.2.2.2")}
	if !bgpBetter(n, igp, "r", a, b) || bgpBetter(n, igp, "r", b, a) {
		t.Fatal("router-ID tiebreak wrong")
	}
}

func TestAdvertiseRules(t *testing.T) {
	origin := bgpRoute{prefix: netip.MustParsePrefix("10.1.0.0/24"), peer: ""}
	// eBGP prepends the sender AS.
	out, ok := advertise(origin, 65001, true, "s")
	if !ok || len(out.asPath) != 1 || out.asPath[0] != 65001 || out.fromIBGP {
		t.Fatalf("eBGP advertise = %+v", out)
	}
	// iBGP propagates local/eBGP-learned routes with next-hop-self.
	out, ok = advertise(origin, 65001, false, "s")
	if !ok || !out.fromIBGP || out.peer != "s" || len(out.asPath) != 0 {
		t.Fatalf("iBGP advertise = %+v", out)
	}
	// iBGP-learned routes are NOT re-advertised over iBGP.
	if _, ok := advertise(bgpRoute{fromIBGP: true}, 65001, false, "s"); ok {
		t.Fatal("iBGP re-advertisement must be suppressed")
	}
}

func TestContainsAS(t *testing.T) {
	if !containsAS([]int{1, 2, 3}, 2) || containsAS([]int{1, 3}, 2) || containsAS(nil, 1) {
		t.Fatal("containsAS wrong")
	}
}

func TestDeniesCache(t *testing.T) {
	d := &config.Device{Hostname: "r"}
	pl := d.EnsurePrefixList("L")
	p1 := netip.MustParsePrefix("10.1.0.0/24")
	p2 := netip.MustParsePrefix("10.2.0.0/24")
	pl.Deny(p1)
	pl.Rules = append(pl.Rules, config.PrefixRule{Seq: 100, Prefix: netip.MustParsePrefix("0.0.0.0/0"), Le: 32})
	cfg := config.NewNetwork()
	cfg.Add(d)
	n := &Net{Cfg: cfg}
	n.buildDenyCache()
	if !n.denies(d, "L", p1) {
		t.Fatal("deny missed")
	}
	if n.denies(d, "L", p2) {
		t.Fatal("phantom deny")
	}
	if n.denies(d, "MISSING", p1) {
		t.Fatal("missing list denied")
	}
	// Cached decision stays stable.
	if !n.denies(d, "L", p1) || n.denies(d, "L", p2) {
		t.Fatal("cache inconsistent")
	}
	// Filter mutations are invisible until InvalidateFilters re-derives
	// the cache — the contract Algorithm 1's incremental loop relies on.
	// Use a tail-free list: Deny appends, and a permit-any tail would
	// shadow the new rule under first-match-wins.
	plN := d.EnsurePrefixList("N")
	plN.Deny(p1)
	n.InvalidateFilters()
	plN.Deny(p2)
	if n.denies(d, "N", p2) {
		t.Fatal("cache updated without InvalidateFilters")
	}
	n.InvalidateFilters()
	if !n.denies(d, "N", p2) {
		t.Fatal("InvalidateFilters missed new deny")
	}
	plN.RemoveDeny(p2)
	n.InvalidateFilters()
	if n.denies(d, "N", p2) {
		t.Fatal("InvalidateFilters kept removed deny")
	}
}

func TestDeniesRangedDenyRule(t *testing.T) {
	// A deny carrying `le` must match every covered longer prefix — the
	// simulator used to skip all ranged rules, silently ignoring such
	// denies even though the rendered config enforces them.
	d := &config.Device{Hostname: "r"}
	pl := d.EnsurePrefixList("L")
	pl.Rules = append(pl.Rules,
		config.PrefixRule{Seq: 5, Deny: true, Prefix: netip.MustParsePrefix("10.1.0.0/16"), Le: 32},
		config.PrefixRule{Seq: 10, Prefix: netip.MustParsePrefix("0.0.0.0/0"), Le: 32},
	)
	cfg := config.NewNetwork()
	cfg.Add(d)
	n := &Net{Cfg: cfg}
	n.buildDenyCache()
	if !n.denies(d, "L", netip.MustParsePrefix("10.1.2.0/24")) {
		t.Fatal("ranged deny skipped")
	}
	if !n.denies(d, "L", netip.MustParsePrefix("10.1.0.0/16")) {
		t.Fatal("ranged deny missed exact prefix")
	}
	if n.denies(d, "L", netip.MustParsePrefix("10.2.0.0/24")) {
		t.Fatal("ranged deny over-matched")
	}
	// First-match-wins: an earlier exact permit shields a later ranged deny.
	pl2 := d.EnsurePrefixList("M")
	pl2.Rules = append(pl2.Rules,
		config.PrefixRule{Seq: 5, Prefix: netip.MustParsePrefix("10.1.2.0/24")},
		config.PrefixRule{Seq: 10, Deny: true, Prefix: netip.MustParsePrefix("10.1.0.0/16"), Le: 32},
	)
	n.InvalidateFilters()
	if n.denies(d, "M", netip.MustParsePrefix("10.1.2.0/24")) {
		t.Fatal("permit before ranged deny ignored")
	}
	if !n.denies(d, "M", netip.MustParsePrefix("10.1.3.0/24")) {
		t.Fatal("ranged deny after permit skipped")
	}
}

func TestRouteSourceOrderMatchesAdminDistance(t *testing.T) {
	order := []Source{SrcConnected, SrcStatic, SrcEBGP, SrcEIGRP, SrcOSPF, SrcRIP, SrcIBGP}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("source order broken at %v", order[i])
		}
	}
	names := map[Source]string{
		SrcConnected: "connected", SrcStatic: "static", SrcEBGP: "ebgp",
		SrcEIGRP: "eigrp", SrcOSPF: "ospf", SrcRIP: "rip", SrcIBGP: "ibgp",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestLinkAccessors(t *testing.T) {
	l := &Link{
		Prefix: netip.MustParsePrefix("10.0.0.0/31"),
		A:      End{Device: "a", Iface: "ia"},
		B:      End{Device: "b", Iface: "ib"},
	}
	if o, ok := l.Other("a"); !ok || o.Device != "b" {
		t.Fatal("Other(a) wrong")
	}
	if o, ok := l.Local("b"); !ok || o.Iface != "ib" {
		t.Fatal("Local(b) wrong")
	}
	if _, ok := l.Other("z"); ok {
		t.Fatal("Other(z) should fail")
	}
	if _, ok := l.Local("z"); ok {
		t.Fatal("Local(z) should fail")
	}
}

func TestPathStatusStrings(t *testing.T) {
	if Delivered.String() != "delivered" || Looped.String() != "looped" || BlackHoled.String() != "blackholed" {
		t.Fatal("status strings wrong")
	}
}

func TestFIBPrefixesSorted(t *testing.T) {
	f := make(FIB)
	for _, s := range []string{"10.2.0.0/24", "10.1.0.0/24", "10.1.0.0/16"} {
		p := netip.MustParsePrefix(s)
		f[p] = &Route{Prefix: p}
	}
	ps := f.Prefixes()
	if len(ps) != 3 || ps[0].String() != "10.1.0.0/16" || ps[2].String() != "10.2.0.0/24" {
		t.Fatalf("prefixes = %v", ps)
	}
}
