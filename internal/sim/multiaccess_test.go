package sim

import (
	"net/netip"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netgen"
)

// TestMultiAccessSegment: three routers on one /24 become a pairwise
// clique, and traffic crosses the segment in one hop.
func TestMultiAccessSegment(t *testing.T) {
	cfg := config.NewNetwork()
	lan := netip.MustParsePrefix("10.50.0.0/24")
	for i, name := range []string{"ra", "rb", "rc"} {
		d := &config.Device{Hostname: name, Kind: config.RouterKind}
		d.OSPF = &config.OSPF{ProcessID: 1, InFilters: map[string]string{}}
		d.Interfaces = append(d.Interfaces, &config.Interface{
			Name: "Ethernet0/0",
			Addr: netip.PrefixFrom(lan.Addr().Next(), 24),
		})
		// distinct addresses .1 .2 .3
		a := lan.Addr()
		for j := 0; j <= i; j++ {
			a = a.Next()
		}
		d.Interfaces[0].Addr = netip.PrefixFrom(a, 24)
		d.OSPF.Networks = append(d.OSPF.Networks, lan)
		cfg.Add(d)
	}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 pairwise links on the shared segment.
	if len(n.Links) != 3 {
		t.Fatalf("links = %d, want 3 (clique)", len(n.Links))
	}
	g := n.Topology()
	for _, e := range [][2]string{{"ra", "rb"}, {"rb", "rc"}, {"ra", "rc"}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing clique edge %v", e)
		}
	}
}

// TestParallelLinks: two /31s between the same pair of routers yield two
// links and ECMP across both.
func TestParallelLinks(t *testing.T) {
	b := netgen.NewBuilder(netgen.OSPF)
	b.Router("r1").Router("r2")
	b.Link("r1", "r2").Link("r1", "r2")
	b.Host("h1", "r1").Host("h2", "r2")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	routerLinks := 0
	for _, l := range n.Links {
		if cfg.Device(l.A.Device).Kind == config.RouterKind && cfg.Device(l.B.Device).Kind == config.RouterKind {
			routerLinks++
		}
	}
	if routerLinks != 2 {
		t.Fatalf("router links = %d, want 2 (parallel)", routerLinks)
	}
	snap := SimulateNet(n)
	rt := snap.FIB("r1")[n.HostPrefix["h2"]]
	if rt == nil || len(rt.NextHops) != 2 {
		t.Fatalf("expected ECMP over parallel links, got %v", rt)
	}
	// The trace still shows a single device-level path (both branches
	// traverse the same routers).
	ps := snap.Trace("h1", "h2")
	for _, p := range ps {
		if p.Status != Delivered {
			t.Fatalf("bad path %v", p)
		}
	}
}

// TestUnaddressedInterfacesIgnored: interfaces without addresses form no
// links and crash nothing.
func TestUnaddressedInterfacesIgnored(t *testing.T) {
	b := netgen.NewBuilder(netgen.OSPF)
	b.Router("r1").Router("r2")
	b.Link("r1", "r2")
	b.Host("h1", "r1").Host("h2", "r2")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Device("r1").Interfaces = append(cfg.Device("r1").Interfaces,
		&config.Interface{Name: "Shutdown0/9"})
	snap := mustSim(t, cfg)
	singleDelivered(t, snap, "h1", "h2")
}

// TestAsymmetricCostsAsymmetricPaths: forward and reverse paths may
// legitimately differ when per-direction costs differ; both must be
// preserved by their own FIBs.
func TestAsymmetricCostsAsymmetricPaths(t *testing.T) {
	b := netgen.NewBuilder(netgen.OSPF)
	b.Router("r1").Router("r2").Router("r3")
	// r1→r3 direct is cheap one way, expensive the other.
	b.LinkCost("r1", "r3", 1, 50)
	b.LinkCost("r1", "r2", 5, 5)
	b.LinkCost("r2", "r3", 5, 5)
	b.Host("h1", "r1").Host("h3", "r3")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t, cfg)
	fwd := singleDelivered(t, s, "h1", "h3")
	back := singleDelivered(t, s, "h3", "h1")
	if !pathEquals(fwd, "h1", "r1", "r3", "h3") {
		t.Fatalf("forward = %v", fwd.Hops)
	}
	if !pathEquals(back, "h3", "r3", "r2", "r1", "h1") {
		t.Fatalf("reverse = %v", back.Hops)
	}
}
