// Package sim is a from-scratch control-plane simulator for Cisco-IOS-style
// configurations — the substitute for Batfish in the ConfMask pipeline.
//
// It recovers the layer-3 topology from interface prefixes, computes
// per-router routing tables for OSPF (link-state SPF with ECMP), RIP
// (distance-vector), and BGP (decision process over eBGP/iBGP sessions with
// next-hop resolution through the intra-AS IGP), honors distribute-list
// route filters, and extracts the data plane: every host-to-host forwarding
// path, with equal-cost multipath fan-out, loop detection, and black-hole
// detection.
//
// The paper's algorithms only need four Batfish queries — topology, FIB
// entries, traceroute, and reachability — and this package answers exactly
// those for the protocol subset ConfMask supports.
package sim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"confmask/internal/config"
	"confmask/internal/topology"
)

// End is one side of a link: a device, the interface used, and its address.
type End struct {
	Device string
	Iface  string
	Addr   netip.Addr
}

// Link is a point-to-point layer-3 adjacency recovered from two interfaces
// configured in the same subnet.
type Link struct {
	Prefix netip.Prefix // the shared subnet, masked
	A, B   End
}

// Other returns the far end of the link as seen from dev; ok is false when
// dev is not an endpoint.
func (l *Link) Other(dev string) (End, bool) {
	switch dev {
	case l.A.Device:
		return l.B, true
	case l.B.Device:
		return l.A, true
	default:
		return End{}, false
	}
}

// Local returns the near end of the link as seen from dev.
func (l *Link) Local(dev string) (End, bool) {
	switch dev {
	case l.A.Device:
		return l.A, true
	case l.B.Device:
		return l.B, true
	default:
		return End{}, false
	}
}

// Net is the simulation view of a configuration set: devices plus the links
// recovered from matching interface prefixes.
type Net struct {
	Cfg   *config.Network
	Links []*Link

	linksOf map[string][]*Link
	// HostPrefix maps a host name to its LAN prefix; HostOfPrefix is the
	// inverse. GatewayOf maps a host to its attached router.
	HostPrefix   map[string]netip.Prefix
	HostOfPrefix map[netip.Prefix]string
	GatewayOf    map[string]string

	// denyCache precomputes per-(device, prefix-list) deny decisions at
	// Build time; the route computation consults filters once per
	// candidate next hop, so linear rule scans would dominate on
	// filter-heavy networks (e.g. the strawman-1 baseline). Because it
	// is filled eagerly and never written during simulation, concurrent
	// route workers read it without locks. After mutating filters (and
	// only filters), call InvalidateFilters to re-derive it; any other
	// configuration change requires a fresh Build.
	denyCache map[string]*listEval
	// filterState is the last captured filter view (deny tables plus
	// attachment points); InvalidateFilters diffs against it to report
	// which destination prefixes a filter mutation can affect.
	filterState *filterState

	// core caches the filter-independent simulation state (SPF, enabled
	// links, BGP sessions); built once on first use, kept across
	// InvalidateFilters. See simCore.
	coreOnce sync.Once
	core     *simCore
}

// listEval is the precomputed evaluation of one (device, prefix-list)
// pair. Most lists are a run of exact-match rules optionally closed by a
// permit-any tail; those collapse to a single map lookup. Lists carrying a
// ranged deny (a deny rule with `le`) — which the simulator used to drop
// silently even though the rendered config enforces them — fall back to a
// first-match scan of the full rule set.
type listEval struct {
	// exact holds the first-match decision per rule prefix; valid only
	// when ranged is false.
	exact map[netip.Prefix]bool
	// ranged marks lists needing the ordered scan; rules is then the
	// full rule list.
	ranged bool
	rules  []config.PrefixRule
}

// denies reports whether the named prefix list on the device denies p.
// Read-only after Build/InvalidateFilters, so safe from concurrent route
// workers.
func (n *Net) denies(d *config.Device, list string, p netip.Prefix) bool {
	ev, ok := n.denyCache[d.Hostname+"\x00"+list]
	if !ok {
		return false // unknown list: no match, permits
	}
	q := p.Masked()
	if !ev.ranged {
		return ev.exact[q]
	}
	for _, r := range ev.rules {
		if r.Prefix == q || (r.Le >= q.Bits() && r.Prefix.Overlaps(q) && r.Prefix.Bits() <= q.Bits()) {
			return r.Deny
		}
	}
	return false
}

// buildDenyCache precomputes the deny decision tables for every prefix
// list of every device.
func (n *Net) buildDenyCache() {
	cache := make(map[string]*listEval)
	for _, name := range n.Cfg.Names() {
		d := n.Cfg.Device(name)
		for _, pl := range d.PrefixLists {
			cache[name+"\x00"+pl.Name] = compileList(pl)
		}
	}
	n.denyCache = cache
}

// compileList classifies a prefix list: exact-only (possibly with a
// trailing ranged permit-any, which cannot flip any decision) gets the
// fast map; anything containing a ranged deny keeps the ordered rules.
func compileList(pl *config.PrefixList) *listEval {
	fast := true
	for i, r := range pl.Rules {
		if r.Le == 0 {
			continue
		}
		if !r.Deny && i == len(pl.Rules)-1 {
			continue // permit-any tail: unmatched prefixes permit anyway
		}
		fast = false
		break
	}
	if !fast {
		return &listEval{ranged: true, rules: append([]config.PrefixRule(nil), pl.Rules...)}
	}
	exact := make(map[netip.Prefix]bool, len(pl.Rules))
	for _, r := range pl.Rules {
		if r.Le > 0 {
			continue // the permit-any tail
		}
		if _, seen := exact[r.Prefix]; !seen {
			exact[r.Prefix] = r.Deny
		}
	}
	return &listEval{exact: exact}
}

// InvalidateFilters re-derives the filter view (the deny cache) from the
// current configurations. Call it after adding or removing distribute-list
// entries — the only mutation Algorithm 1 performs — to reuse this Net for
// another SimulateNet instead of rebuilding: link discovery, SPF, and BGP
// session discovery are filter-independent and stay cached. Mutating
// anything else (interfaces, links, neighbors, costs, protocol
// enablement) invalidates the whole view and requires a fresh Build.
//
// The returned FilterDiff reports which destination prefixes may see a
// different deny decision than under the previous view; pass it to
// Snapshot.DataPlaneForDirty to re-trace only affected destinations.
// Ignoring the result is always safe.
//
// Not safe concurrently with a running SimulateNet on the same Net.
func (n *Net) InvalidateFilters() *FilterDiff {
	old := n.filterState
	n.buildDenyCache()
	n.filterState = n.captureFilterState()
	if old == nil {
		return &FilterDiff{all: true}
	}
	return diffFilterStates(old, n.filterState)
}

// Build derives the simulation view from configurations. It returns an
// error for malformed inputs: a host without exactly one addressed
// interface or without an attached router.
func Build(cfg *config.Network) (*Net, error) {
	n := &Net{
		Cfg:          cfg,
		linksOf:      make(map[string][]*Link),
		HostPrefix:   make(map[string]netip.Prefix),
		HostOfPrefix: make(map[netip.Prefix]string),
		GatewayOf:    make(map[string]string),
	}

	// Group addressed interfaces by their masked subnet.
	type member struct {
		dev   string
		iface *config.Interface
	}
	groups := make(map[netip.Prefix][]member)
	for _, name := range cfg.Names() {
		d := cfg.Device(name)
		for _, i := range d.Interfaces {
			if !i.Addr.IsValid() {
				continue
			}
			p := i.Addr.Masked()
			groups[p] = append(groups[p], member{dev: name, iface: i})
		}
	}

	// Each subnet with ≥2 members yields pairwise links (a multi-access
	// segment becomes a clique, which preserves hop-by-hop reachability).
	for _, p := range sortedPrefixes(groups) {
		ms := groups[p]
		sort.Slice(ms, func(i, j int) bool { return ms[i].dev < ms[j].dev })
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				if ms[i].dev == ms[j].dev {
					continue
				}
				l := &Link{
					Prefix: p,
					A:      End{Device: ms[i].dev, Iface: ms[i].iface.Name, Addr: ms[i].iface.Addr.Addr()},
					B:      End{Device: ms[j].dev, Iface: ms[j].iface.Name, Addr: ms[j].iface.Addr.Addr()},
				}
				n.Links = append(n.Links, l)
				n.linksOf[l.A.Device] = append(n.linksOf[l.A.Device], l)
				n.linksOf[l.B.Device] = append(n.linksOf[l.B.Device], l)
			}
		}
	}

	// Host bookkeeping.
	for _, h := range cfg.Hosts() {
		d := cfg.Device(h)
		var addr *config.Interface
		for _, i := range d.Interfaces {
			if i.Addr.IsValid() {
				if addr != nil {
					return nil, fmt.Errorf("sim: host %s has multiple addressed interfaces", h)
				}
				addr = i
			}
		}
		if addr == nil {
			return nil, fmt.Errorf("sim: host %s has no addressed interface", h)
		}
		p := addr.Addr.Masked()
		n.HostPrefix[h] = p
		if prev, dup := n.HostOfPrefix[p]; dup {
			return nil, fmt.Errorf("sim: hosts %s and %s share prefix %v", prev, h, p)
		}
		n.HostOfPrefix[p] = h
		gw := ""
		for _, l := range n.linksOf[h] {
			other, _ := l.Other(h)
			if cfg.Device(other.Device).Kind == config.RouterKind {
				gw = other.Device
				break
			}
		}
		if gw == "" {
			return nil, fmt.Errorf("sim: host %s has no attached router", h)
		}
		n.GatewayOf[h] = gw
	}
	n.buildDenyCache()
	n.filterState = n.captureFilterState()
	return n, nil
}

// LinksOf returns the links incident to a device.
func (n *Net) LinksOf(dev string) []*Link { return n.linksOf[dev] }

// LinkBetween returns a link connecting a and b, or nil. When several
// parallel links exist the first (lowest subnet) is returned.
func (n *Net) LinkBetween(a, b string) *Link {
	for _, l := range n.linksOf[a] {
		if o, ok := l.Other(a); ok && o.Device == b {
			return l
		}
	}
	return nil
}

// Topology returns the layer-3 topology graph: every device is a node and
// every link an edge. This is exactly the graph an adversary reconstructs
// by parsing interface prefixes (§2.2 of the paper).
func (n *Net) Topology() *topology.Graph {
	g := topology.New()
	for _, name := range n.Cfg.Names() {
		k := topology.Router
		if n.Cfg.Device(name).Kind == config.HostKind {
			k = topology.Host
		}
		g.AddNode(name, k)
	}
	for _, l := range n.Links {
		_ = g.AddEdge(l.A.Device, l.B.Device)
	}
	return g
}

// ExternalDestinations returns the prefixes originated into routing via
// discard (Null0) statics — the "Internet destination" routing
// equivalence classes of the paper's §9: destinations that are not hosts
// inside the network but whose routes the anonymization must preserve.
// Sorted for determinism.
func (n *Net) ExternalDestinations() []netip.Prefix {
	seen := make(map[netip.Prefix]bool)
	for _, name := range n.Cfg.Names() {
		for _, s := range n.Cfg.Device(name).Statics {
			if s.Discard && s.Prefix.Bits() > 0 {
				seen[s.Prefix] = true
			}
		}
	}
	return sortedPrefixes(seen)
}

// RouterNeighbors returns, for a router, the set of adjacent routers in
// sorted order (hosts excluded).
func (n *Net) RouterNeighbors(r string) []string {
	seen := make(map[string]bool)
	for _, l := range n.linksOf[r] {
		o, _ := l.Other(r)
		if n.Cfg.Device(o.Device).Kind == config.RouterKind {
			seen[o.Device] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
