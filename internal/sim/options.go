package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures how a simulation executes. It never changes *what* is
// computed: for any Parallelism the resulting Snapshot is identical, entry
// for entry, to the sequential one — parallel workers only fill
// index-addressed slots that are merged deterministically afterwards.
type Options struct {
	// Parallelism bounds the worker pool fanning out per-router work
	// (per-speaker SPF, per-router route tables, per-device FIB
	// assembly). Zero or negative selects runtime.GOMAXPROCS(0); 1
	// forces the fully sequential path.
	Parallelism int
}

// workers resolves the effective pool size.
func (o Options) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// Workers is the exported view of the resolved pool size, for callers
// (the anonymization pipeline) that fan out their own per-router work at
// the same parallelism the engine uses.
func (o Options) Workers() int { return o.workers() }

// ForEachIndex runs fn(i) for every i in [0, n), fanning out across at
// most workers goroutines. Callers keep determinism by writing results
// only into slot i of a preallocated slice and merging after the join; fn
// must not touch mutable state shared between indices.
func ForEachIndex(workers, n int, fn func(i int)) { forEachIndex(workers, n, fn) }

// forEachIndex runs fn(i) for every i in [0, n), fanning out across at most
// workers goroutines. Callers keep determinism by writing results only into
// slot i of a preallocated slice and merging after the join; fn must not
// touch shared mutable state.
func forEachIndex(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
