package sim

import (
	"net/netip"
	"sync"

	"confmask/internal/config"
)

// ospfEnabled reports whether an interface participates in the device's
// OSPF process: a network statement must cover the interface address
// (Cisco network+wildcard matching).
func ospfEnabled(d *config.Device, i *config.Interface) bool {
	if d.OSPF == nil || !i.Addr.IsValid() {
		return false
	}
	for _, nw := range d.OSPF.Networks {
		if nw.Contains(i.Addr.Addr()) {
			return true
		}
	}
	return false
}

// ospfLinkEnabled reports whether a router-router link runs OSPF: both
// endpoint interfaces must be enabled.
func (n *Net) ospfLinkEnabled(l *Link) bool {
	da := n.Cfg.Device(l.A.Device)
	db := n.Cfg.Device(l.B.Device)
	if da.Kind != config.RouterKind || db.Kind != config.RouterKind {
		return false
	}
	ia := da.Interface(l.A.Iface)
	ib := db.Interface(l.B.Iface)
	return ia != nil && ib != nil && ospfEnabled(da, ia) && ospfEnabled(db, ib)
}

// ospfState is the computed link-state view shared by FIB construction and
// BGP next-hop resolution.
type ospfState struct {
	// dist is the all-pairs SPF view (on-demand destination rows).
	dist *DistMatrix
	// t interns the speakers; fwd indexes nodes by its IDs.
	t *interner
	// fwd is the directed cost graph over OSPF adjacencies.
	fwd *csrGraph
	// routes[r][p] is the OSPF route of router r to prefix p.
	routes map[string]map[netip.Prefix]*Route
}

// ospfRowPool recycles the per-prefix distance rows runOSPF streams: one
// live row per in-flight prefix shard, instead of a materialized
// prefixes × routers matrix.
var ospfRowPool = sync.Pool{New: func() any { return new([]int32) }}

func getOSPFRow(n int) []int32 {
	p := ospfRowPool.Get().(*[]int32)
	r := *p
	if cap(r) < n {
		r = make([]int32, n)
	}
	r = r[:n]
	for i := range r {
		r[i] = -1
	}
	return r
}

func putOSPFRow(r []int32) { ospfRowPool.Put(&r) }

// runOSPF computes OSPF routes for every OSPF-speaking router. The
// link-state view (interned cost graph, SPF distance rows) comes from the
// Net's cached core; only the filter-dependent route tables are
// recomputed.
//
// The computation is destination-sharded: for each advertised prefix, a
// pooled dense []int32 row of per-router distances to the prefix is
// streamed from the DistMatrix (min over the prefix's advertisers of the
// distance-to-advertiser row plus the advertising cost — exactly the old
// distP result, computed per shard and released when the shard finishes),
// and every speaker's candidate selection reads that row by interned
// neighbor id. A final router-sharded pass gathers each router's column
// into its route table. Both passes write index-addressed slots, so the
// output is identical at any worker count.
//
// Filters (distribute-list in on an interface) remove the corresponding
// next-hop candidates at RIB-installation time on the filtering router
// only; the link-state database itself is unaffected, matching IOS
// semantics and the "edge is rejected" clause of the paper's SFE
// conditions for link-state protocols.
func (n *Net) runOSPF(workers int) *ospfState {
	core := n.coreFor(workers)
	oc := core.ospf
	st := &ospfState{
		dist:   oc.dist,
		t:      oc.t,
		fwd:    oc.fwd,
		routes: make(map[string]map[netip.Prefix]*Route, len(oc.speakers)),
	}
	if len(oc.speakers) == 0 {
		return st
	}

	// Filter-independent per-speaker state, resolved once per run instead
	// of once per (prefix, link): the device, its connected prefixes, and
	// its candidate links with interned neighbor ids and local costs, in
	// core.ospfLinks order (the order the candidate scan has always
	// branched in).
	type linkCand struct {
		nb     int32 // neighbor speaker id
		nbName string
		iface  string // local interface name
		cost   int32  // local interface cost
	}
	S := len(oc.speakers)
	devs := make([]*config.Device, S)
	connected := make([]map[netip.Prefix]bool, S)
	cands := make([][]linkCand, S)
	forEachIndex(workers, S, func(si int) {
		r := oc.speakers[si]
		d := n.Cfg.Device(r)
		devs[si] = d
		conn := make(map[netip.Prefix]bool)
		for _, i := range d.Interfaces {
			if i.Addr.IsValid() {
				conn[i.Addr.Masked()] = true
			}
		}
		connected[si] = conn
		cs := make([]linkCand, 0, len(core.ospfLinks[r]))
		for _, l := range core.ospfLinks[r] {
			local, _ := l.Local(r)
			other, _ := l.Other(r)
			nb, _ := oc.t.id(other.Device)
			li := d.Interface(local.Iface)
			cs = append(cs, linkCand{nb: nb, nbName: other.Device, iface: local.Iface, cost: clampCost32(li.Cost())})
		}
		cands[si] = cs
	})

	// Destination-sharded candidate selection.
	P := len(oc.prefixes)
	routesByPrefix := make([][]*Route, P)
	forEachIndex(workers, P, func(pi int) {
		p := oc.prefixes[pi]
		dp := getOSPFRow(oc.t.size())
		for _, a := range oc.advs[p] {
			arow := oc.dist.rowTo(a.router)
			for s, das := range arow {
				if das < 0 {
					continue
				}
				if t := satAdd32(das, a.cost); dp[s] < 0 || t < dp[s] {
					dp[s] = t
				}
			}
		}
		// Routes and next-hop lists are arena-allocated per prefix (one
		// backing array each instead of one allocation per route), which
		// is what keeps the GC out of the way at 10⁶ routes. Slices into
		// the arenas are taken only after both are fully grown.
		out := make([]*Route, S)
		arena := make([]Route, 0, S)
		var nhArena []NextHop
		slot := make([]int32, S)
		type span struct{ start, end int32 }
		spans := make([]span, 0, S)
		for si := range oc.speakers {
			slot[si] = -1
			if connected[si][p] {
				continue // connected route wins; OSPF never overrides it
			}
			d := devs[si]
			best := int32(-1)
			start := int32(len(nhArena))
			for _, lc := range cands[si] {
				dn := dp[lc.nb]
				if dn < 0 {
					continue
				}
				cand := satAdd32(lc.cost, dn)
				if n.filterDeniesOSPF(d, lc.iface, p) {
					continue
				}
				switch {
				case best == -1 || cand < best:
					best = cand
					nhArena = append(nhArena[:start], NextHop{Device: lc.nbName, Iface: lc.iface})
				case cand == best:
					nhArena = append(nhArena, NextHop{Device: lc.nbName, Iface: lc.iface})
				}
			}
			if best >= 0 {
				seg := sortNextHops(nhArena[start:])
				nhArena = nhArena[:int(start)+len(seg)]
				slot[si] = int32(len(arena))
				arena = append(arena, Route{Prefix: p, Source: SrcOSPF, Metric: int(best)})
				spans = append(spans, span{start: start, end: int32(len(nhArena))})
			}
		}
		for si := range oc.speakers {
			if j := slot[si]; j >= 0 {
				sp := spans[j]
				arena[j].NextHops = nhArena[sp.start:sp.end:sp.end]
				out[si] = &arena[j]
			}
		}
		putOSPFRow(dp)
		routesByPrefix[pi] = out
	})

	// Router-sharded gather: each router's column becomes its table.
	tables := make([]map[netip.Prefix]*Route, S)
	forEachIndex(workers, S, func(si int) {
		table := make(map[netip.Prefix]*Route)
		for pi, p := range oc.prefixes {
			if rt := routesByPrefix[pi][si]; rt != nil {
				table[p] = rt
			}
		}
		tables[si] = table
	})
	for i, r := range oc.speakers {
		st.routes[r] = tables[i]
	}
	return st
}

// filterDeniesOSPF reports whether the device's OSPF inbound
// distribute-list on iface denies prefix p.
func (n *Net) filterDeniesOSPF(d *config.Device, iface string, p netip.Prefix) bool {
	if d.OSPF == nil {
		return false
	}
	name, ok := d.OSPF.InFilters[iface]
	if !ok {
		return false
	}
	return n.denies(d, name, p)
}

// nextHopsToRouter returns the OSPF first hops from router r toward router
// dst (used for BGP recursive next-hop resolution). Filters do not apply:
// resolution targets router-level reachability, not host prefixes. The
// scan walks dst's dense distance row plus r's CSR arcs — no map lookups.
func (st *ospfState) nextHopsToRouter(n *Net, r, dst string) []NextHop {
	if r == dst || st.t == nil {
		return nil
	}
	ri, okr := st.t.id(r)
	di, okd := st.t.id(dst)
	if !okr || !okd {
		return nil
	}
	row := st.dist.rowTo(di)
	target := row[ri]
	if target < 0 {
		return nil
	}
	var nhs []NextHop
	for _, a := range st.fwd.outArcs(ri) {
		dn := row[a.to]
		if dn < 0 {
			continue
		}
		if satAdd32(a.cost, dn) == target {
			local, _ := a.link.Local(r)
			nhs = append(nhs, NextHop{Device: st.t.names[a.to], Iface: local.Iface})
		}
	}
	return sortNextHops(nhs)
}
