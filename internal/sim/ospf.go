package sim

import (
	"net/netip"

	"confmask/internal/config"
)

// ospfEnabled reports whether an interface participates in the device's
// OSPF process: a network statement must cover the interface address
// (Cisco network+wildcard matching).
func ospfEnabled(d *config.Device, i *config.Interface) bool {
	if d.OSPF == nil || !i.Addr.IsValid() {
		return false
	}
	for _, nw := range d.OSPF.Networks {
		if nw.Contains(i.Addr.Addr()) {
			return true
		}
	}
	return false
}

// ospfLinkEnabled reports whether a router-router link runs OSPF: both
// endpoint interfaces must be enabled.
func (n *Net) ospfLinkEnabled(l *Link) bool {
	da := n.Cfg.Device(l.A.Device)
	db := n.Cfg.Device(l.B.Device)
	if da.Kind != config.RouterKind || db.Kind != config.RouterKind {
		return false
	}
	ia := da.Interface(l.A.Iface)
	ib := db.Interface(l.B.Iface)
	return ia != nil && ib != nil && ospfEnabled(da, ia) && ospfEnabled(db, ib)
}

// ospfState is the computed link-state view shared by FIB construction and
// BGP next-hop resolution.
type ospfState struct {
	// dist[r][x] is the SPF distance between routers in the same OSPF
	// domain; routers in different domains are mutually unreachable.
	dist map[string]map[string]int
	// graph is the directed cost graph over OSPF adjacencies.
	graph *wgraph
	// routes[r][p] is the OSPF route of router r to prefix p.
	routes map[string]map[netip.Prefix]*Route
}

// runOSPF computes OSPF routes for every OSPF-speaking router. The
// link-state view (cost graph, SPF distances, per-prefix distances) comes
// from the Net's cached core; only the per-router, filter-dependent route
// tables are recomputed, fanned out across the worker pool.
//
// Filters (distribute-list in on an interface) remove the corresponding
// next-hop candidates at RIB-installation time on the filtering router
// only; the link-state database itself is unaffected, matching IOS
// semantics and the "edge is rejected" clause of the paper's SFE
// conditions for link-state protocols.
func (n *Net) runOSPF(workers int) *ospfState {
	core := n.coreFor(workers)
	oc := core.ospf
	st := &ospfState{
		dist:   oc.dist,
		graph:  oc.graph,
		routes: make(map[string]map[netip.Prefix]*Route, len(oc.speakers)),
	}
	if len(oc.speakers) == 0 {
		return st
	}

	// Per-router route computation with hop-by-hop candidate selection;
	// routers are independent, so each worker fills its own table slot.
	tables := make([]map[netip.Prefix]*Route, len(oc.speakers))
	forEachIndex(workers, len(oc.speakers), func(idx int) {
		r := oc.speakers[idx]
		d := n.Cfg.Device(r)
		connected := make(map[netip.Prefix]bool)
		for _, i := range d.Interfaces {
			if i.Addr.IsValid() {
				connected[i.Addr.Masked()] = true
			}
		}
		table := make(map[netip.Prefix]*Route)
		for _, p := range oc.prefixes {
			if connected[p] {
				continue // connected route wins; OSPF never overrides it
			}
			best := -1
			var nhs []NextHop
			for _, l := range core.ospfLinks[r] {
				local, _ := l.Local(r)
				other, _ := l.Other(r)
				dn, ok := oc.distP[p][other.Device]
				if !ok {
					continue
				}
				li := d.Interface(local.Iface)
				cand := li.Cost() + dn
				if n.filterDeniesOSPF(d, local.Iface, p) {
					continue
				}
				switch {
				case best == -1 || cand < best:
					best = cand
					nhs = []NextHop{{Device: other.Device, Iface: local.Iface}}
				case cand == best:
					nhs = append(nhs, NextHop{Device: other.Device, Iface: local.Iface})
				}
			}
			if best >= 0 {
				table[p] = &Route{Prefix: p, Source: SrcOSPF, Metric: best, NextHops: sortNextHops(nhs)}
			}
		}
		tables[idx] = table
	})
	for i, r := range oc.speakers {
		st.routes[r] = tables[i]
	}
	return st
}

// filterDeniesOSPF reports whether the device's OSPF inbound
// distribute-list on iface denies prefix p.
func (n *Net) filterDeniesOSPF(d *config.Device, iface string, p netip.Prefix) bool {
	if d.OSPF == nil {
		return false
	}
	name, ok := d.OSPF.InFilters[iface]
	if !ok {
		return false
	}
	return n.denies(d, name, p)
}

// nextHopsToRouter returns the OSPF first hops from router r toward router
// dst (used for BGP recursive next-hop resolution). Filters do not apply:
// resolution targets router-level reachability, not host prefixes.
func (st *ospfState) nextHopsToRouter(n *Net, r, dst string) []NextHop {
	if r == dst {
		return nil
	}
	target, ok := st.dist[r][dst]
	if !ok {
		return nil
	}
	var nhs []NextHop
	for _, a := range st.graph.arcs[r] {
		dn, ok := st.dist[a.to][dst]
		if !ok {
			continue
		}
		if a.cost+dn == target {
			local, _ := a.link.Local(r)
			nhs = append(nhs, NextHop{Device: a.to, Iface: local.Iface})
		}
	}
	return sortNextHops(nhs)
}
