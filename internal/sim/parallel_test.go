package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netgen"
)

// fibFingerprint canonically serializes every device's FIB so two
// snapshots can be compared for exact equality.
func fibFingerprint(snap *Snapshot) string {
	var names []string
	for n := range snap.FIBs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fib := snap.FIBs[n]
		for _, p := range fib.Prefixes() {
			rt := fib[p]
			fmt.Fprintf(&b, "%s %v %v %d %v\n", n, p, rt.Source, rt.Metric, rt.NextHops)
		}
	}
	return b.String()
}

func catalogNets(t *testing.T) map[string]*config.Network {
	t.Helper()
	out := make(map[string]*config.Network)
	for _, s := range netgen.Catalog() {
		// The fat-trees dominate runtime; FatTree04 alone exercises the
		// same code paths.
		if s.ID == "H" {
			continue
		}
		cfg, err := s.Build()
		if err != nil {
			t.Fatalf("build %s: %v", s.ID, err)
		}
		out[s.ID] = cfg
	}
	return out
}

// TestParallelMatchesSequential: the worker-pool fan-out must be
// invisible in the result — every FIB identical to the sequential run,
// for every catalog network.
func TestParallelMatchesSequential(t *testing.T) {
	for id, cfg := range catalogNets(t) {
		seq, err := SimulateOpts(cfg, Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		want := fibFingerprint(seq)
		for _, workers := range []int{2, 4, 7} {
			par, err := SimulateOpts(cfg, Options{Parallelism: workers})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if got := fibFingerprint(par); got != want {
				t.Fatalf("%s: parallelism=%d FIBs differ from sequential", id, workers)
			}
		}
	}
}

// TestConcurrentSimulateNet drives two hazards under -race: concurrent
// SimulateNet calls on independent Nets (the confmaskd worker-pool
// shape), and concurrent calls on the SAME Net (core built once via
// sync.Once, deny cache read-only).
func TestConcurrentSimulateNet(t *testing.T) {
	cfg, err := netgen.ByID("C") // Backbone: OSPF + BGP
	if err != nil {
		t.Fatal(err)
	}
	net1, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Simulate(net1)
	if err != nil {
		t.Fatal(err)
	}
	want := fibFingerprint(ref)

	// Independent Nets in parallel.
	var wg sync.WaitGroup
	results := make([]string, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfgI, err := cfg.Build()
			if err != nil {
				t.Errorf("build: %v", err)
				return
			}
			n, err := Build(cfgI)
			if err != nil {
				t.Errorf("Build: %v", err)
				return
			}
			results[i] = fibFingerprint(SimulateNetOpts(n, Options{Parallelism: 3}))
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got != want {
			t.Fatalf("independent run %d diverged", i)
		}
	}

	// Same Net from several goroutines.
	shared, err := Build(net1)
	if err != nil {
		t.Fatal(err)
	}
	sameResults := make([]string, 4)
	for i := range sameResults {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sameResults[i] = fibFingerprint(SimulateNetOpts(shared, Options{Parallelism: 2}))
		}(i)
	}
	wg.Wait()
	for i, got := range sameResults {
		if got != want {
			t.Fatalf("shared-net run %d diverged", i)
		}
	}
}

// TestInvalidateFiltersMatchesRebuild: after a filters-only mutation,
// InvalidateFilters + SimulateNet must equal a full Build + Simulate —
// the contract Algorithm 1's incremental loop rests on.
func TestInvalidateFiltersMatchesRebuild(t *testing.T) {
	for id, cfg := range catalogNets(t) {
		view, err := Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		SimulateNet(view) // warm the cached core

		// Deny one advertised prefix at one router's first interface via
		// each configured IGP — the same mutation Algorithm 1 performs.
		mutated := false
		for _, r := range cfg.Routers() {
			d := cfg.Device(r)
			var iface string
			for _, i := range d.Interfaces {
				if i.Addr.IsValid() {
					iface = i.Name
					break
				}
			}
			if iface == "" {
				continue
			}
			var filters map[string]string
			switch {
			case d.OSPF != nil:
				if d.OSPF.InFilters == nil {
					d.OSPF.InFilters = map[string]string{}
				}
				filters = d.OSPF.InFilters
			case d.RIP != nil:
				if d.RIP.InFilters == nil {
					d.RIP.InFilters = map[string]string{}
				}
				filters = d.RIP.InFilters
			case d.EIGRP != nil:
				if d.EIGRP.InFilters == nil {
					d.EIGRP.InFilters = map[string]string{}
				}
				filters = d.EIGRP.InFilters
			default:
				continue
			}
			filters[iface] = "TEST-DENY"
			for _, h := range cfg.Hosts() {
				hd := cfg.Device(h)
				for _, i := range hd.Interfaces {
					if i.Addr.IsValid() {
						d.EnsurePrefixList("TEST-DENY").Deny(i.Addr.Masked())
						mutated = true
					}
				}
				break
			}
			break
		}
		if !mutated {
			continue
		}

		view.InvalidateFilters()
		incremental := fibFingerprint(SimulateNet(view))

		fresh, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if incremental != fibFingerprint(fresh) {
			t.Fatalf("%s: incremental filter update diverged from full rebuild", id)
		}
	}
}
