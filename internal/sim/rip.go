package sim

import (
	"net/netip"

	"confmask/internal/config"
)

// ripInfinity is the RIP unreachable metric.
const ripInfinity = 16

// ripEnabled reports whether an interface participates in the device's RIP
// process.
func ripEnabled(d *config.Device, i *config.Interface) bool {
	if d.RIP == nil || !i.Addr.IsValid() {
		return false
	}
	for _, nw := range d.RIP.Networks {
		if nw.Contains(i.Addr.Addr()) {
			return true
		}
	}
	return false
}

// ripLinkEnabled reports whether a router-router link exchanges RIP
// advertisements: both endpoint interfaces must be enabled.
func (n *Net) ripLinkEnabled(l *Link) bool {
	da := n.Cfg.Device(l.A.Device)
	db := n.Cfg.Device(l.B.Device)
	if da.Kind != config.RouterKind || db.Kind != config.RouterKind {
		return false
	}
	ia := da.Interface(l.A.Iface)
	ib := db.Interface(l.B.Iface)
	return ia != nil && ib != nil && ripEnabled(da, ia) && ripEnabled(db, ib)
}

// ripEntry is one distance-vector entry during iteration.
type ripEntry struct {
	metric   int
	nextHops []NextHop
}

// runRIP computes RIP routes with synchronous Bellman–Ford iteration until
// convergence. Inbound distribute-lists on the receiving interface drop the
// matching advertisements — the distance-vector SFE condition 2 mechanism.
// Within a round every router's next vector depends only on the previous
// round's vectors, so the per-router work fans out across the worker pool.
func (n *Net) runRIP(workers int) map[string]map[netip.Prefix]*Route {
	out := make(map[string]map[netip.Prefix]*Route)

	core := n.coreFor(workers)
	speakers := core.ripSpeakers
	if len(speakers) == 0 {
		return out
	}

	// Connected originations: every RIP-enabled interface prefix at
	// metric 1.
	vec := make(map[string]map[netip.Prefix]ripEntry, len(speakers))
	connectedOf := make(map[string]map[netip.Prefix]bool, len(speakers))
	for _, r := range speakers {
		d := n.Cfg.Device(r)
		v := make(map[netip.Prefix]ripEntry)
		conn := make(map[netip.Prefix]bool)
		for _, i := range d.Interfaces {
			if i.Addr.IsValid() {
				conn[i.Addr.Masked()] = true
			}
			if ripEnabled(d, i) {
				v[i.Addr.Masked()] = ripEntry{metric: 1}
			}
		}
		vec[r] = v
		connectedOf[r] = conn
	}

	// Synchronous rounds; the diameter bounds convergence, the cap guards
	// against pathological oscillation.
	maxRounds := len(speakers) + 4
	for round := 0; round < maxRounds; round++ {
		nvs := make([]map[netip.Prefix]ripEntry, len(speakers))
		diffs := make([]bool, len(speakers))
		forEachIndex(workers, len(speakers), func(idx int) {
			r := speakers[idx]
			d := n.Cfg.Device(r)
			nv := make(map[netip.Prefix]ripEntry)
			// Connected entries are authoritative.
			for p, e := range vec[r] {
				if e.metric == 1 && len(e.nextHops) == 0 {
					nv[p] = e
				}
			}
			for _, l := range core.ripLinks[r] {
				local, _ := l.Local(r)
				other, _ := l.Other(r)
				for p, e := range vec[other.Device] {
					if connectedOf[r][p] {
						continue
					}
					m := e.metric + 1
					if m >= ripInfinity {
						continue
					}
					if n.filterDeniesRIP(d, local.Iface, p) {
						continue
					}
					nh := NextHop{Device: other.Device, Iface: local.Iface}
					cur, ok := nv[p]
					switch {
					case !ok || m < cur.metric:
						nv[p] = ripEntry{metric: m, nextHops: []NextHop{nh}}
					case m == cur.metric && len(cur.nextHops) > 0:
						cur.nextHops = append(cur.nextHops, nh)
						nv[p] = cur
					}
				}
			}
			nvs[idx] = nv
			diffs[idx] = !ripVecEqual(vec[r], nv)
		})
		next := make(map[string]map[netip.Prefix]ripEntry, len(speakers))
		changed := false
		for i, r := range speakers {
			next[r] = nvs[i]
			changed = changed || diffs[i]
		}
		vec = next
		if !changed {
			break
		}
	}

	for _, r := range speakers {
		table := make(map[netip.Prefix]*Route)
		for p, e := range vec[r] {
			if len(e.nextHops) == 0 {
				continue // connected origination, not a RIP route
			}
			table[p] = &Route{Prefix: p, Source: SrcRIP, Metric: e.metric, NextHops: sortNextHops(e.nextHops)}
		}
		out[r] = table
	}
	return out
}

func (n *Net) filterDeniesRIP(d *config.Device, iface string, p netip.Prefix) bool {
	if d.RIP == nil {
		return false
	}
	name, ok := d.RIP.InFilters[iface]
	if !ok {
		return false
	}
	return n.denies(d, name, p)
}

func ripVecEqual(a, b map[netip.Prefix]ripEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for p, ea := range a {
		eb, ok := b[p]
		if !ok || ea.metric != eb.metric || len(ea.nextHops) != len(eb.nextHops) {
			return false
		}
		as := sortNextHops(append([]NextHop(nil), ea.nextHops...))
		bs := sortNextHops(append([]NextHop(nil), eb.nextHops...))
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	return true
}
