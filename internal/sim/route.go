package sim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
)

// Source identifies the protocol a route was installed from, ordered by
// Cisco administrative distance: lower wins.
type Source int

const (
	// SrcConnected is a directly connected subnet (AD 0).
	SrcConnected Source = iota
	// SrcStatic is a static route (AD 1).
	SrcStatic
	// SrcEBGP is an eBGP-learned route (AD 20).
	SrcEBGP
	// SrcEIGRP is an internal EIGRP route (AD 90).
	SrcEIGRP
	// SrcOSPF is an OSPF route (AD 110).
	SrcOSPF
	// SrcRIP is a RIP route (AD 120).
	SrcRIP
	// SrcIBGP is an iBGP-learned route (AD 200).
	SrcIBGP
)

func (s Source) String() string {
	switch s {
	case SrcConnected:
		return "connected"
	case SrcStatic:
		return "static"
	case SrcEBGP:
		return "ebgp"
	case SrcEIGRP:
		return "eigrp"
	case SrcOSPF:
		return "ospf"
	case SrcRIP:
		return "rip"
	case SrcIBGP:
		return "ibgp"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// DiscardDevice is the pseudo next-hop device of a Null0 discard route;
// traffic forwarded to it is dropped (it has no FIB), matching Null0
// semantics.
const DiscardDevice = "_null0_"

// NextHop is one forwarding choice of a FIB entry.
type NextHop struct {
	Device string // next device (router or host), or DiscardDevice
	Iface  string // outgoing interface on the current router
}

// Route is one FIB entry: the best route to Prefix after administrative-
// distance arbitration, possibly with multiple equal-cost next hops.
type Route struct {
	Prefix   netip.Prefix
	Source   Source
	Metric   int
	NextHops []NextHop
}

// sortNextHops orders next hops deterministically and removes duplicates.
func sortNextHops(nhs []NextHop) []NextHop {
	// Insertion sort: next-hop lists are ECMP-width (a handful of
	// entries), and the closure-free sort keeps the per-route cost out of
	// the allocator on the 10⁵–10⁶-route runs of the scale networks.
	for i := 1; i < len(nhs); i++ {
		for j := i; j > 0 && nextHopLess(nhs[j], nhs[j-1]); j-- {
			nhs[j], nhs[j-1] = nhs[j-1], nhs[j]
		}
	}
	out := nhs[:0]
	var prev NextHop
	for i, nh := range nhs {
		if i > 0 && nh == prev {
			continue
		}
		out = append(out, nh)
		prev = nh
	}
	return out
}

func nextHopLess(a, b NextHop) bool {
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	return a.Iface < b.Iface
}

// FIB is a router's forwarding table: destination prefix → best route.
type FIB map[netip.Prefix]*Route

// Lookup performs longest-prefix matching for addr.
func (f FIB) Lookup(addr netip.Addr) *Route {
	var best *Route
	for _, r := range f {
		if !r.Prefix.Contains(addr) {
			continue
		}
		if best == nil || r.Prefix.Bits() > best.Prefix.Bits() {
			best = r
		}
	}
	return best
}

// Prefixes returns the FIB's destination prefixes in sorted order.
func (f FIB) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(f))
	for p := range f {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// Snapshot is the result of simulating a configuration set: the derived
// network view and every router's FIB.
type Snapshot struct {
	Net  *Net
	FIBs map[string]FIB
	// OSPFDist is the SPF distance view between routers of the same OSPF
	// domain, with dense rows computed on demand per destination. ConfMask
	// reads it as min_cost(r, r′) when assigning fake-link costs (the
	// link-state SFE condition); nil for networks without OSPF speakers
	// (Dist is nil-safe).
	OSPFDist *DistMatrix

	// workers is the Parallelism the Snapshot was simulated with; it also
	// sizes the worker pool for destination-sharded data-plane extraction.
	workers int
	// destEngines caches one path-enumeration engine per destination host
	// (nil entries mark unknown destinations). FIBs are immutable once
	// simulated, so the cache is valid for the Snapshot's whole lifetime.
	destMu      sync.Mutex
	destEngines map[string]*destEngine
	// devNames/devIdx is the dense device index shared by all engines.
	devOnce  sync.Once
	devNames []string
	devIdx   map[string]int32
	// whatIfRetraced / whatIfReused count how what-if traces were served:
	// by re-walking a failure-pruned graph vs. reusing the cached
	// no-failure result. See WhatIfStats.
	whatIfRetraced atomic.Int64
	whatIfReused   atomic.Int64
}

// FIB returns the FIB of a device (nil when absent).
func (s *Snapshot) FIB(dev string) FIB { return s.FIBs[dev] }

// NextHopRouters returns the next-hop device names for dest prefix p at
// router r, in sorted order; nil when the router has no route.
func (s *Snapshot) NextHopRouters(r string, p netip.Prefix) []string {
	f := s.FIBs[r]
	if f == nil {
		return nil
	}
	rt := f[p]
	if rt == nil {
		return nil
	}
	out := make([]string, 0, len(rt.NextHops))
	for _, nh := range rt.NextHops {
		out = append(out, nh.Device)
	}
	sort.Strings(out)
	return out
}
